// Concurrent server throughput: the paper's echo-array workload served
// by a server runtime worker pool, with every call's residual plans
// resolved through the process-wide (sharded) SpecCache.
//
// Two runtimes share this harness, selected by --runtime:
//   * threaded — rpc::ServerRuntime: blocking listener threads feeding
//     a worker pool (PR 1's reference implementation);
//   * reactor  — rpc::EventServerRuntime: one epoll/poll event loop
//     multiplexing all sockets, recvmmsg datagram batches, workers only
//     ever see complete requests.
//
// What is measured per runtime:
//   * aggregate calls/sec at 1, 4 and 16 concurrent clients, for a
//     1-worker and a 4-worker server — the scaling the dispatch loop
//     buys once specialization is amortized through the cache;
//   * the SpecCache hit rate across the whole run (every call resolves
//     its plan through the cache; only the first call of each distinct
//     array shape builds).
//
// Each handler invocation dwells for a configurable simulated backend
// latency (default 200us, --dwell-us to change, 0 to disable).  That
// models the database/disk wait a real RPC server overlaps across its
// worker pool; with --dwell-us=0 on a single-core host the workload is
// pure CPU and worker scaling flattens out.
//
// --window N switches clients from closed-loop (one call in flight) to
// pipelined UDP bursts: each client blasts N generic-path calls, then
// collects N replies.  That is the workload the recvmmsg receive path
// and the sendmmsg reply batching pair up on — use it to measure the
// zero-copy dispatch + reply-batching win on the reactor runtime.
//
// --reactors N shards the reactor runtime across N event-loop threads
// (SO_REUSEPORT UDP + partitioned TCP conns); compare --reactors 1 vs 4
// under --window to measure the multi-reactor scaling once one event
// loop saturates.  Each JSON point records its `reactors` and `backend`
// so artifacts from different configurations stay distinguishable.
//
// --workers-per-shard N pins each reactor shard's worker pool size
// (default: the worker count splits across shards); --shared-queue
// collapses the shard-local queues back onto one global queue (the
// PR 4 shape) so the shard-local-vs-shared dispatch cost is directly
// A/B-measurable at equal thread counts.
//
// --tcp-depth N switches the workload from UDP to pipelined TCP: each
// client keeps N calls in flight on one connection (1 = classic
// closed-loop TCP).  Compare --tcp-depth 1 vs 8 to measure what
// overlapping execution under the ordered reply ring buys.
//
// Usage: bench_concurrent [--duration-ms N] [--dwell-us N] [--window N]
//                         [--reactors N] [--workers-per-shard N]
//                         [--shared-queue] [--tcp-depth N]
//                         [--runtime threaded|reactor|both] [--json PATH]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "bench/bench_util.h"
#include "common/endian.h"
#include "common/metrics.h"
#include "core/service.h"
#include "core/spec_cache.h"
#include "core/spec_client.h"
#include "net/tcp.h"
#include "net/udp.h"
#include "rpc/event_runtime.h"
#include "rpc/svc.h"
#include "xdr/xdrrec.h"

namespace tempo::bench {
namespace {

struct Point {
  std::string runtime;
  int workers = 0;
  int clients = 0;
  int reactors = 0;     // event-loop shards (1 for the threaded runtime)
  int workers_per_shard = 0;  // 0 = derived from workers
  int tcp_depth = 0;          // 0 = UDP workload
  bool shared_queue = false;
  std::string backend;  // "threads", "epoll", "poll" or "uring"
  // io_uring_enter syscalls across the measurement (0 on other
  // backends) — the bench's "syscalls per burst" evidence.
  std::int64_t uring_enters = 0;
  double calls_per_sec = 0.0;
  // Server-side end-to-end latency (recv to reply-send), read from the
  // runtime's per-shard histograms before stop().  count == 0 when
  // TEMPO_METRICS=0 (the overhead-A/B run) — the JSON still carries the
  // fields so both runs diff field-for-field.
  std::int64_t lat_count = 0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
  // Open-loop only: the offered Poisson rate and the CLIENT-observed
  // latency measured from each call's scheduled (not actual) send time,
  // so queueing delay from a lagging sender is charged to the server —
  // the standard coordinated-omission fix.
  double offered_per_sec = 0.0;
  std::int64_t client_lat_count = 0;
  double client_p50_us = 0.0;
  double client_p99_us = 0.0;
  double client_p999_us = 0.0;
};

struct Options {
  int duration_ms = 400;
  int dwell_us = 200;
  int window = 0;  // 0 = closed loop; N>0 = N pipelined calls per burst
  int reactors = 1;  // reactor-runtime shards
  int workers_per_shard = 0;  // 0 = derive from the workers total
  int tcp_depth = 0;  // 0 = UDP; N>0 = TCP with N pipelined calls/client
  bool shared_queue = false;  // reactor A/B: one global queue (PR 4 shape)
  double open_loop = 0.0;  // >0: offered calls/sec across clients (UDP)
  std::string runtime = "both";  // threaded | reactor | both
  std::string backend = "auto";  // reactor backend: auto|epoll|poll|uring
  bool sqpoll = false;           // uring only: IORING_SETUP_SQPOLL
  bool pin_shards = false;       // pin shard/worker threads to CPUs
  std::string json_path;         // empty = no JSON
};

constexpr std::uint32_t kArraySize = 100;
constexpr std::size_t kCacheShards = 8;

// One measurement: `clients` threads in closed loop against a runtime
// with `workers` workers, all sharing `cache`.  RuntimeT is
// rpc::ServerRuntime or rpc::EventServerRuntime; both expose the same
// start/stop/udp_addr surface.
template <typename RuntimeT, typename ConfigT>
Point run_point(const char* runtime_name, core::SpecCache& cache,
                int workers, int clients, const Options& opt) {
  rpc::SvcRegistry reg;
  core::CachedSpecService service(
      cache, echo_proc(), kProg, kVers,
      [&](std::span<const std::uint32_t>, std::span<const std::uint32_t> args,
          std::span<std::uint32_t> results) {
        std::copy(args.begin(), args.end(), results.begin());
        if (opt.dwell_us > 0) {
          std::this_thread::sleep_for(std::chrono::microseconds(opt.dwell_us));
        }
        return true;
      });
  service.install(reg);

  ConfigT cfg;
  cfg.workers = workers;
  cfg.enable_tcp = opt.tcp_depth > 0;
  cfg.enable_udp = opt.tcp_depth == 0;
  if constexpr (std::is_same_v<ConfigT, rpc::EventServerRuntimeConfig>) {
    cfg.reactors = opt.reactors;
    cfg.workers_per_shard = opt.workers_per_shard;
    cfg.shared_queue = opt.shared_queue;
    if (opt.tcp_depth > 0) cfg.tcp_pipeline_depth = opt.tcp_depth;
    if (opt.backend == "epoll") cfg.backend = rpc::EventBackend::kEpoll;
    if (opt.backend == "poll") cfg.backend = rpc::EventBackend::kPoll;
    if (opt.backend == "uring") cfg.backend = rpc::EventBackend::kUring;
    cfg.sqpoll = opt.sqpoll;
    cfg.pin_shards = opt.pin_shards;
  }
  RuntimeT runtime(reg, cfg);
  if (!runtime.start().is_ok()) {
    std::fprintf(stderr, "cannot start %s runtime\n", runtime_name);
    std::exit(1);
  }

  std::atomic<bool> go{false}, stop{false};
  std::atomic<std::int64_t> total_calls{0};
  std::atomic<int> errors{0};
  // Client-observed latency, open-loop mode only.  record() is
  // wait-free, so every client thread writes the same histogram.
  common::LatencyHistogram client_lat;

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      if (opt.tcp_depth > 0) {
        // Pipelined TCP: keep `tcp_depth` calls in flight on one
        // connection (1 = classic closed loop).  The server's ordered
        // reply ring overlaps their execution while keeping wire
        // order, so depth>1 measures exactly what pipelining buys.
        auto conn = net::TcpConn::connect(runtime.tcp_addr());
        if (!conn) {
          ++errors;
          return;
        }
        std::vector<std::int32_t> args(kArraySize);
        Rng rng(static_cast<std::uint64_t>(kArraySize));
        for (auto& a : args) a = static_cast<std::int32_t>(rng.next_u32());
        Bytes send_buf(65000), recv_buf(65000);
        const std::size_t len = generic_encode_call(
            args, 1, MutableByteSpan(send_buf.data() + 4,
                                     send_buf.size() - 4));
        store_be32(send_buf.data(), xdr::XdrRec::kLastFragFlag |
                                        static_cast<std::uint32_t>(len));
        std::uint32_t xid = 1;
        auto send_one = [&] {
          store_be32(send_buf.data() + 4, ++xid);  // xid: first call word
          return conn->write_all(ByteSpan(send_buf.data(), 4 + len)).is_ok();
        };
        auto read_exact = [&](std::uint8_t* dst, std::size_t n) {
          std::size_t off = 0;
          int empty_rounds = 0;
          while (off < n) {
            auto r = conn->read_some(MutableByteSpan(dst + off, n - off), 100);
            if (!r.is_ok()) {
              if (r.status().code() != StatusCode::kTimeout ||
                  ++empty_rounds >= 20) {
                return false;
              }
              continue;
            }
            empty_rounds = 0;
            off += *r;
          }
          return true;
        };
        while (!go.load(std::memory_order_acquire)) {
          std::this_thread::yield();
        }
        int outstanding = 0;
        for (; outstanding < opt.tcp_depth; ++outstanding) {
          if (!send_one()) {
            ++errors;
            return;
          }
        }
        std::int64_t mine = 0;
        while (!stop.load(std::memory_order_acquire)) {
          std::uint8_t rhdr[4];
          if (!read_exact(rhdr, 4)) {
            ++errors;
            total_calls += mine;
            return;
          }
          const std::uint32_t rlen =
              load_be32(rhdr) & ~xdr::XdrRec::kLastFragFlag;
          if (rlen > recv_buf.size() || !read_exact(recv_buf.data(), rlen)) {
            ++errors;
            total_calls += mine;
            return;
          }
          ++mine;
          --outstanding;
          if (!send_one()) {
            ++errors;
            total_calls += mine;
            return;
          }
          ++outstanding;
        }
        // Drain what is still in flight so the connection closes clean.
        for (; outstanding > 0; --outstanding) {
          std::uint8_t rhdr[4];
          if (!read_exact(rhdr, 4)) break;
          const std::uint32_t rlen =
              load_be32(rhdr) & ~xdr::XdrRec::kLastFragFlag;
          if (rlen > recv_buf.size() || !read_exact(recv_buf.data(), rlen)) {
            break;
          }
          ++mine;
        }
        total_calls += mine;
        return;
      }
      net::UdpSocket sock;
      if (!sock.ok()) {
        ++errors;
        return;
      }
      if (opt.open_loop > 0.0) {
        // Open-loop (fixed offered rate): send times follow a Poisson
        // process at rate/clients per client, independent of when
        // replies come back — so the measured latency is "what a user
        // arriving at this rate experiences", not the self-throttled
        // closed-loop number.  Latency is charged from the SCHEDULED
        // send instant (coordinated-omission-free).
        std::vector<std::int32_t> args(kArraySize);
        Rng rng(static_cast<std::uint64_t>(kArraySize + c));
        for (auto& a : args) a = static_cast<std::int32_t>(rng.next_u32());
        Bytes send_buf(65000), recv_buf(65000);
        const std::size_t len = generic_encode_call(
            args, 1, MutableByteSpan(send_buf.data(), send_buf.size()));
        const net::Addr server = runtime.udp_addr();
        const double per_client = opt.open_loop / clients;
        // Disambiguate xids across clients; replies echo the call xid.
        std::uint32_t xid = static_cast<std::uint32_t>(c + 1) << 24;
        std::unordered_map<std::uint32_t, std::int64_t> inflight;
        std::int64_t mine = 0;
        while (!go.load(std::memory_order_acquire)) {
          std::this_thread::yield();
        }
        std::int64_t next_ns = common::monotonic_ns();
        while (!stop.load(std::memory_order_acquire)) {
          const std::int64_t now = common::monotonic_ns();
          if (now >= next_ns) {
            store_be32(send_buf.data(), ++xid);
            if (sock.send_to(server, ByteSpan(send_buf.data(), len))
                    .is_ok()) {
              inflight.emplace(xid, next_ns);
            }
            // Exponential inter-arrival; 1-u keeps log() off exact 0.
            next_ns += static_cast<std::int64_t>(
                -std::log(1.0 - rng.next_double()) * 1e9 / per_client);
            continue;  // catch up if the schedule slipped
          }
          auto r = sock.recv_from(
              nullptr, MutableByteSpan(recv_buf.data(), recv_buf.size()),
              /*timeout_ms=*/0);
          if (r.is_ok() && *r >= 4) {
            const auto it = inflight.find(load_be32(recv_buf.data()));
            if (it != inflight.end()) {
              client_lat.record(common::monotonic_ns() - it->second);
              inflight.erase(it);
              ++mine;
            }
            continue;
          }
          // Nothing due and nothing arriving: sleep until the next
          // scheduled send (capped so stop() stays responsive).
          const std::int64_t wait =
              std::min<std::int64_t>(next_ns - common::monotonic_ns(),
                                     200'000);
          if (wait > 0) {
            std::this_thread::sleep_for(std::chrono::nanoseconds(wait));
          }
        }
        // Brief tail drain so in-flight replies still count.
        const std::int64_t drain_end = common::monotonic_ns() + 50'000'000;
        while (!inflight.empty() && common::monotonic_ns() < drain_end) {
          auto r = sock.recv_from(
              nullptr, MutableByteSpan(recv_buf.data(), recv_buf.size()),
              /*timeout_ms=*/5);
          if (!r.is_ok() || *r < 4) continue;
          const auto it = inflight.find(load_be32(recv_buf.data()));
          if (it != inflight.end()) {
            client_lat.record(common::monotonic_ns() - it->second);
            inflight.erase(it);
            ++mine;
          }
        }
        total_calls += mine;
        return;
      }
      if (opt.window > 0) {
        // Pipelined bursts: blast `window` calls, then drain the
        // replies.  This is the shape recvmmsg + sendmmsg batch on.
        std::vector<std::int32_t> args(kArraySize);
        Rng rng(static_cast<std::uint64_t>(kArraySize));
        for (auto& a : args) a = static_cast<std::int32_t>(rng.next_u32());
        Bytes send_buf(65000), recv_buf(65000);
        const std::size_t len = generic_encode_call(
            args, 1, MutableByteSpan(send_buf.data(), send_buf.size()));
        const net::Addr server = runtime.udp_addr();
        std::uint32_t xid = 1;
        std::int64_t mine = 0;
        int consecutive_empty = 0;
        while (!go.load(std::memory_order_acquire)) {
          std::this_thread::yield();
        }
        while (!stop.load(std::memory_order_acquire)) {
          for (int i = 0; i < opt.window; ++i) {
            store_be32(send_buf.data(), ++xid);  // xid is the first word
            if (!sock.send_to(server, ByteSpan(send_buf.data(), len))
                     .is_ok()) {
              ++errors;
              total_calls += mine;
              return;
            }
          }
          int got = 0;
          while (got < opt.window) {
            auto r = sock.recv_from(
                nullptr, MutableByteSpan(recv_buf.data(), recv_buf.size()),
                /*timeout_ms=*/200);
            if (!r.is_ok()) break;  // dropped under overload: move on
            ++got;
          }
          // An empty round can be overload or (on a starved host) the
          // server simply not being scheduled; only a sustained silence
          // is a real failure.
          consecutive_empty = got == 0 ? consecutive_empty + 1 : 0;
          if (consecutive_empty >= 10) {
            ++errors;
            total_calls += mine;
            return;
          }
          mine += got;
        }
        total_calls += mine;
        return;
      }
      core::SpecializedInterface iface = make_iface(kArraySize);
      core::SpecializedClient client(sock, runtime.udp_addr(), iface);
      std::vector<std::uint32_t> args(kArraySize), results(kArraySize);
      Rng rng(static_cast<std::uint64_t>(kArraySize));
      for (auto& a : args) a = rng.next_u32();
      while (!go.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      std::int64_t mine = 0;
      while (!stop.load(std::memory_order_acquire)) {
        if (!client.call(args, results).is_ok() || results != args) {
          ++errors;
          break;
        }
        ++mine;
      }
      total_calls += mine;
    });
  }

  go.store(true, std::memory_order_release);
  const auto t0 = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(std::chrono::milliseconds(opt.duration_ms));
  stop.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  // Read while the runtime is live: stop() tears the shards down and
  // backend() honestly reports "none" afterwards.
  std::string backend = "threads";
  std::int64_t uring_enters = 0;
  if constexpr (std::is_same_v<RuntimeT, rpc::EventServerRuntime>) {
    backend = runtime.backend();
    uring_enters = runtime.uring_enter_calls();
  }
  // Server-side end-to-end distribution, merged across shards and both
  // transports.  Empty (count 0) when TEMPO_METRICS=0.
  rpc::RuntimeLatencySnapshot lat = runtime.latency_snapshot();
  common::HistogramSnapshot e2e = lat.udp_e2e;
  e2e.merge(lat.tcp_e2e);
  runtime.stop();

  if (errors.load() != 0) {
    std::fprintf(stderr, "client errors at runtime=%s workers=%d clients=%d\n",
                 runtime_name, workers, clients);
    std::exit(1);
  }
  Point p;
  p.runtime = runtime_name;
  p.workers = workers;
  p.clients = clients;
  p.tcp_depth = opt.tcp_depth;
  if constexpr (std::is_same_v<RuntimeT, rpc::EventServerRuntime>) {
    p.reactors = opt.reactors;
    p.workers_per_shard = opt.workers_per_shard;
    p.shared_queue = opt.shared_queue;
    p.backend = backend;
    p.uring_enters = uring_enters;
  } else {
    p.reactors = 1;
    p.backend = "threads";
  }
  p.calls_per_sec = static_cast<double>(total_calls.load()) / secs;
  p.lat_count = static_cast<std::int64_t>(e2e.total());
  p.p50_us = static_cast<double>(e2e.p50()) / 1000.0;
  p.p99_us = static_cast<double>(e2e.p99()) / 1000.0;
  p.p999_us = static_cast<double>(e2e.p999()) / 1000.0;
  if (opt.open_loop > 0.0) {
    p.offered_per_sec = opt.open_loop;
    const common::HistogramSnapshot cl = client_lat.snapshot();
    p.client_lat_count = static_cast<std::int64_t>(cl.total());
    p.client_p50_us = static_cast<double>(cl.p50()) / 1000.0;
    p.client_p99_us = static_cast<double>(cl.p99()) / 1000.0;
    p.client_p999_us = static_cast<double>(cl.p999()) / 1000.0;
  }
  return p;
}

struct RuntimeReport {
  std::vector<Point> points;
  core::SpecCacheStats cache_stats;
};

template <typename RuntimeT, typename ConfigT>
RuntimeReport run_runtime(const char* name, const Options& opt) {
  core::SpecCache cache(64, kCacheShards);

  // --workers-per-shard pins the pool size exactly (the reactor
  // runtime ignores the legacy total when it is set), so the 1/4-worker
  // grid axis would run two identical configurations under different
  // labels: collapse it to the one true thread count.
  std::vector<int> worker_counts = {1, 4};
  if constexpr (std::is_same_v<ConfigT, rpc::EventServerRuntimeConfig>) {
    if (opt.workers_per_shard > 0) {
      worker_counts = {opt.workers_per_shard * opt.reactors};
    }
  }
  const std::vector<int> client_counts = {1, 4, 16};

  RuntimeReport report;
  for (int w : worker_counts) {
    for (int c : client_counts) {
      Point p = run_point<RuntimeT, ConfigT>(name, cache, w, c, opt);
      std::printf("%-10s %-10d %-10d %-10d %-8s %14.0f %10.0f %10.0f\n",
                  p.runtime.c_str(), p.workers, p.clients, p.reactors,
                  p.backend.c_str(), p.calls_per_sec, p.p50_us, p.p99_us);
      report.points.push_back(p);
    }
  }
  report.cache_stats = cache.stats();
  return report;
}

double rate_at(const std::vector<Point>& points, const std::string& runtime,
               int w, int c) {
  for (const auto& p : points) {
    if (p.runtime == runtime && p.workers == w && p.clients == c) {
      return p.calls_per_sec;
    }
  }
  return 0.0;
}

void run(const Options& opt) {
  bool want_threaded = opt.runtime == "threaded" || opt.runtime == "both";
  const bool want_reactor = opt.runtime == "reactor" || opt.runtime == "both";
  if (opt.tcp_depth > 0 && want_threaded) {
    // The threaded runtime parks one worker per connection, so any
    // point with clients > workers would sit in accept queues instead
    // of measuring dispatch: the TCP-depth comparison is reactor-only.
    std::printf("note: --tcp-depth is reactor-only; skipping threaded\n");
    want_threaded = false;
  }
  if (opt.open_loop > 0.0 && opt.tcp_depth > 0) {
    std::fprintf(stderr, "--open-loop is UDP-only (no --tcp-depth)\n");
    std::exit(2);
  }

  std::printf(
      "bench_concurrent: echo-array n=%u over loopback %s, "
      "dwell=%dus, %dms per point, cache shards=%zu, reactors=%d, "
      "backend=%s%s%s, workers/shard=%d, queue=%s, %s\n\n",
      kArraySize, opt.tcp_depth > 0 ? "TCP" : "UDP", opt.dwell_us,
      opt.duration_ms, kCacheShards, opt.reactors, opt.backend.c_str(),
      opt.sqpoll ? "+sqpoll" : "", opt.pin_shards ? "+pin" : "",
      opt.workers_per_shard,
      opt.shared_queue ? "shared" : "shard-local",
      opt.tcp_depth > 0
          ? "pipelined TCP"
          : (opt.window > 0 ? "pipelined bursts" : "closed loop"));
  if (opt.window > 0 && opt.tcp_depth == 0) {
    std::printf("burst window: %d calls in flight per client\n\n",
                opt.window);
  }
  if (opt.tcp_depth > 0) {
    std::printf("tcp pipeline depth: %d calls in flight per connection\n\n",
                opt.tcp_depth);
  }
  if (opt.open_loop > 0.0) {
    std::printf("open loop: %.0f offered calls/sec across clients\n\n",
                opt.open_loop);
  }
  std::printf("%-10s %-10s %-10s %-10s %-8s %14s %10s %10s\n", "runtime",
              "workers", "clients", "reactors", "backend", "calls/sec",
              "p50_us", "p99_us");

  std::vector<Point> points;
  core::SpecCacheStats cache_total;
  auto absorb = [&](const RuntimeReport& r) {
    points.insert(points.end(), r.points.begin(), r.points.end());
    cache_total.hits += r.cache_stats.hits;
    cache_total.misses += r.cache_stats.misses;
    cache_total.evictions += r.cache_stats.evictions;
    cache_total.build_failures += r.cache_stats.build_failures;
  };
  if (want_threaded) {
    absorb(run_runtime<rpc::ServerRuntime, rpc::ServerRuntimeConfig>(
        "threaded", opt));
  }
  if (want_reactor) {
    absorb(
        run_runtime<rpc::EventServerRuntime, rpc::EventServerRuntimeConfig>(
            "reactor", opt));
  }

  const double total = static_cast<double>(cache_total.hits) +
                       static_cast<double>(cache_total.misses);
  const double hit_rate =
      total > 0 ? static_cast<double>(cache_total.hits) / total : 0.0;
  std::printf("\nSpecCache: %lld hits, %lld misses, %lld evictions "
              "(hit rate %.4f)\n",
              static_cast<long long>(cache_total.hits),
              static_cast<long long>(cache_total.misses),
              static_cast<long long>(cache_total.evictions), hit_rate);

  if (opt.open_loop > 0.0) {
    // Open loop: throughput is pinned at the offered rate by design, so
    // the worker-scaling PASS/FAIL checks are meaningless — what the
    // mode reports is latency at that rate.
    for (const auto& p : points) {
      std::printf("%s w=%d c=%d: offered %.0f achieved %.0f — client "
                  "p50=%.0fus p99=%.0fus p999=%.0fus (%lld samples)\n",
                  p.runtime.c_str(), p.workers, p.clients, p.offered_per_sec,
                  p.calls_per_sec, p.client_p50_us, p.client_p99_us,
                  p.client_p999_us,
                  static_cast<long long>(p.client_lat_count));
    }
  } else {
    // Scaling self-checks at the most parallel client count.
    for (const char* name : {"threaded", "reactor"}) {
      const double r1 = rate_at(points, name, 1, 16);
      const double r4 = rate_at(points, name, 4, 16);
      if (r1 == 0.0 || r4 == 0.0) continue;  // axis not part of this run
      std::printf("%s scaling 1->4 workers @16 clients: %.0f -> %.0f "
                  "(%.2fx) %s\n",
                  name, r1, r4, r1 > 0 ? r4 / r1 : 0.0,
                  r4 > r1 ? "PASS" : "FAIL");
    }
    if (want_threaded && want_reactor) {
      const double rt = rate_at(points, "threaded", 4, 16);
      const double rr = rate_at(points, "reactor", 4, 16);
      std::printf("head-to-head @4 workers/16 clients: threaded %.0f vs "
                  "reactor %.0f (%.2fx) %s\n",
                  rt, rr, rt > 0 ? rr / rt : 0.0,
                  rr >= 0.9 * rt ? "PASS" : "FAIL");
    }
  }
  std::printf("cache hit rate >= 0.90: %s\n",
              hit_rate >= 0.90 ? "PASS" : "FAIL");

  if (!opt.json_path.empty()) {
    std::FILE* f = opt.json_path == "-"
                       ? stdout
                       : std::fopen(opt.json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", opt.json_path.c_str());
      std::exit(1);
    }
    JsonWriter jw(f);
    jw.begin_object();
    jw.schema("concurrent");
    jw.field("array_size", kArraySize);
    jw.field("dwell_us", opt.dwell_us);
    jw.field("duration_ms", opt.duration_ms);
    jw.field("cache_shards", kCacheShards);
    jw.field("window", opt.window);
    jw.field("reactors", opt.reactors);
    jw.field("workers_per_shard", opt.workers_per_shard);
    jw.field("tcp_depth", opt.tcp_depth);
    jw.field("queue", opt.shared_queue ? "shared" : "shard-local");
    jw.field("open_loop_per_sec", opt.open_loop);
    // Whether the server recorded latency histograms: the CI overhead
    // A/B diffs a metrics-on artifact against a TEMPO_METRICS=0 one.
    jw.field("metrics_enabled", common::metrics_enabled());
    jw.key_array("points");
    for (const Point& p : points) {
      jw.begin_object();
      jw.field("runtime", p.runtime);
      jw.field("workers", p.workers);
      jw.field("clients", p.clients);
      jw.field("reactors", p.reactors);
      jw.field("workers_per_shard", p.workers_per_shard);
      jw.field("tcp_depth", p.tcp_depth);
      jw.field("queue", p.shared_queue ? "shared" : "shard-local");
      jw.field("backend", p.backend);
      jw.field("uring_enters", p.uring_enters);
      jw.field("calls_per_sec", p.calls_per_sec);
      jw.field("lat_count", p.lat_count);
      jw.field("p50_us", p.p50_us);
      jw.field("p99_us", p.p99_us);
      jw.field("p999_us", p.p999_us);
      if (p.offered_per_sec > 0.0) {
        jw.field("offered_per_sec", p.offered_per_sec);
        jw.field("client_lat_count", p.client_lat_count);
        jw.field("client_p50_us", p.client_p50_us);
        jw.field("client_p99_us", p.client_p99_us);
        jw.field("client_p999_us", p.client_p999_us);
      }
      jw.end_object();
    }
    jw.end_array();
    jw.key_object("cache");
    jw.field("hits", cache_total.hits);
    jw.field("misses", cache_total.misses);
    jw.field("evictions", cache_total.evictions);
    jw.field("hit_rate", hit_rate);
    jw.end_object();
    jw.end_object();
    if (f != stdout) std::fclose(f);
  }
}

}  // namespace
}  // namespace tempo::bench

int main(int argc, char** argv) {
  tempo::bench::Options opt;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--duration-ms") == 0 && i + 1 < argc) {
      opt.duration_ms = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--dwell-us") == 0 && i + 1 < argc) {
      opt.dwell_us = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--window") == 0 && i + 1 < argc) {
      opt.window = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--reactors") == 0 && i + 1 < argc) {
      opt.reactors = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--workers-per-shard") == 0 &&
               i + 1 < argc) {
      opt.workers_per_shard = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--tcp-depth") == 0 && i + 1 < argc) {
      opt.tcp_depth = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--shared-queue") == 0) {
      opt.shared_queue = true;
    } else if (std::strcmp(argv[i], "--open-loop") == 0 && i + 1 < argc) {
      opt.open_loop = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--runtime") == 0 && i + 1 < argc) {
      opt.runtime = argv[++i];
    } else if (std::strncmp(argv[i], "--runtime=", 10) == 0) {
      opt.runtime = argv[i] + 10;
    } else if (std::strcmp(argv[i], "--backend") == 0 && i + 1 < argc) {
      opt.backend = argv[++i];
    } else if (std::strncmp(argv[i], "--backend=", 10) == 0) {
      opt.backend = argv[i] + 10;
    } else if (std::strcmp(argv[i], "--sqpoll") == 0) {
      opt.sqpoll = true;
    } else if (std::strcmp(argv[i], "--pin-shards") == 0) {
      opt.pin_shards = true;
    } else if (std::strcmp(argv[i], "--probe-uring") == 0) {
      // CI gate: exit 0 when the uring backend can run here, 3 when the
      // kernel (or TEMPO_URING=0) rules it out — lets workflows skip
      // the uring A/B leg without parsing bench output.
      const bool ok = tempo::rpc::EventServerRuntime::uring_supported();
      std::printf("uring %s\n", ok ? "supported" : "unsupported");
      return ok ? 0 : 3;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      opt.json_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--duration-ms N] [--dwell-us N] "
                   "[--window N] [--reactors N] [--workers-per-shard N] "
                   "[--shared-queue] [--tcp-depth N] [--open-loop RATE] "
                   "[--runtime threaded|reactor|both] "
                   "[--backend auto|epoll|poll|uring] [--sqpoll] "
                   "[--pin-shards] [--probe-uring] [--json PATH|-]\n",
                   argv[0]);
      return 2;
    }
  }
  if (opt.runtime != "threaded" && opt.runtime != "reactor" &&
      opt.runtime != "both") {
    std::fprintf(stderr, "unknown --runtime %s\n", opt.runtime.c_str());
    return 2;
  }
  if (opt.backend != "auto" && opt.backend != "epoll" &&
      opt.backend != "poll" && opt.backend != "uring") {
    std::fprintf(stderr, "unknown --backend %s\n", opt.backend.c_str());
    return 2;
  }
  if (opt.backend == "uring" &&
      !tempo::rpc::EventServerRuntime::uring_supported()) {
    std::fprintf(stderr, "--backend uring: not supported on this kernel\n");
    return 3;
  }
  tempo::bench::run(opt);
  return 0;
}
