// Plan -> native code lowering.  See compile.h for the design overview.
//
// The backend is split so each half stays testable:
//   fuse_plan()     Plan -> FusedProgram: unroll/merge/bake + eligibility.
//                   Pure data transformation, byte-exact semantics match
//                   with the plan executor is decided HERE.
//   emit_x86_64()   FusedProgram -> machine code bytes.  Pure byte
//   emit_aarch64()  generation; both emitters build on every host so the
//                   byte-level tests run everywhere, and the host arch
//                   only selects which one gets executed.
//   ExecMem         W^X page handling (mmap RW, copy, mprotect RX).
//
// Calling conventions of the generated stubs (SysV / AAPCS64):
//   encode: uint32_t fn(const uint32_t* words, uint32_t xid,
//                       uint8_t* out, const uint8_t* tmpl)
//   decode: uint32_t fn(const uint8_t* in, uint64_t inlen,
//                       uint32_t xid, uint32_t* words)
// The return value is the ExecStatus numeric code (0 ok, 1 fallback,
// 2 retry-xid), which keeps the wrapper a single cast.

#include "pe/compile.h"

#include <cstdlib>
#include <cstring>
#include <string>

#include "common/endian.h"
#include "pe/verify.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/mman.h>
#include <unistd.h>
#define TEMPO_JIT_HAVE_MMAP 1
#else
#define TEMPO_JIT_HAVE_MMAP 0
#endif

namespace tempo::pe {

namespace jit_internal {

namespace {

// Displacements are emitted as 32-bit immediates on both targets; cap
// well below INT32_MAX so offset+length arithmetic can never wrap.
constexpr std::uint64_t kMaxDisp = 1u << 30;

using K = FusedOp::K;

}  // namespace

// ---------------------------------------------------------------------------
// Stage 1: Plan -> FusedProgram
// ---------------------------------------------------------------------------

bool fuse_plan(const Plan& plan, FusedProgram* prog, std::string* why) {
  prog->is_encode = plan.is_encode;
  prog->out_size = plan.out_size;
  prog->expected_in = plan.expected_in;
  prog->words_needed = plan.words_needed;
  prog->ops.clear();
  prog->tmpl.clear();
  auto refuse = [&](const char* reason) {
    if (why != nullptr) *why = reason;
    return false;
  };
  // Memory safety is the verifier's job, not re-audited here: an
  // admitted plan's accesses provably stay inside out_size /
  // expected_in / words_needed on every loop iteration, so the lowering
  // below only checks what is JIT-specific — the disp32 displacement
  // range and template bake conflicts.
  const VerifyResult verdict = verify_plan(plan);
  if (!verdict.ok()) {
    if (why != nullptr) *why = verdict.to_string();
    return false;
  }
  if (plan.out_size > kMaxDisp || plan.expected_in > kMaxDisp ||
      plan.words_needed > kMaxDisp / 4) {
    return refuse("declared bounds exceed the jit displacement range");
  }
  std::vector<std::uint8_t> baked;
  if (plan.is_encode) {
    prog->tmpl.assign(plan.out_size, 0);
    baked.assign(plan.out_size, 0);
  }

  auto push_or_merge = [&](FusedOp op) {
    if (!prog->ops.empty()) {
      FusedOp& prev = prog->ops.back();
      const bool contiguous_tmpl = prev.k == K::kCopyTmpl &&
                                   op.k == K::kCopyTmpl &&
                                   op.off == prev.off + prev.b;
      // Bulk copies only chain when the earlier op had no pad tail
      // (b % 4 == 0) and both the buffer and the word-array sides are
      // contiguous; the merged op keeps the new op's pad.
      const bool contiguous_copy =
          (prev.k == K::kCopyArgBytes || prev.k == K::kCopyResBytes) &&
          op.k == prev.k && prev.b % 4 == 0 && op.off == prev.off + prev.b &&
          op.a == prev.a + prev.b;
      if (contiguous_tmpl || contiguous_copy) {
        prev.b += op.b;
        return;
      }
    }
    prog->ops.push_back(op);
  };

  // Lower one plan instruction with loop displacements already applied
  // (doff in bytes, dword in word slots).  Mirrors apply_encode /
  // apply_decode in plan.cpp op for op.  Direction consistency, loop
  // shape, and all buffer/slot bounds were proven by verify_plan above;
  // the only refusals left are disp32-range and template conflicts.
  auto lower_one = [&](const PInstr& ins, std::uint64_t doff,
                       std::uint64_t dword) -> bool {
    const std::uint64_t off = ins.off + doff;
    if (off > kMaxDisp) {
      return refuse("buffer offset exceeds the jit displacement range");
    }
    const auto off32 = static_cast<std::uint32_t>(off);
    switch (ins.op) {
      case POp::kPutConst: {
        std::uint8_t be[4];
        store_be32(be, static_cast<std::uint32_t>(ins.imm));
        for (int i = 0; i < 4; ++i) {
          // Two different constants landing on the same template byte
          // cannot share one image; bail (never happens for plans the
          // specializer emits, where const offsets are distinct).
          if (baked[off + i] && prog->tmpl[off + i] != be[i]) {
            return refuse("conflicting constants bake to one template byte");
          }
          prog->tmpl[off + i] = be[i];
          baked[off + i] = 1;
        }
        push_or_merge({K::kCopyTmpl, off32, 0, 4, 0});
        return true;
      }
      case POp::kPutWord: {
        const std::uint64_t sbytes = (ins.a + dword) * 4;
        push_or_merge(
            {K::kStoreWord, off32, static_cast<std::uint32_t>(sbytes), 0, 0});
        return true;
      }
      case POp::kPutXid:
        push_or_merge({K::kStoreXid, off32, 0, 0, 0});
        return true;
      case POp::kPutBytes: {
        const std::uint64_t src = ins.a + dword * 4;
        if (src > kMaxDisp) {
          return refuse("slot offset exceeds the jit displacement range");
        }
        push_or_merge({K::kCopyArgBytes, off32,
                       static_cast<std::uint32_t>(src), ins.b, 0});
        return true;
      }
      case POp::kGetWord: {
        const std::uint64_t dbytes = (ins.a + dword) * 4;
        push_or_merge(
            {K::kLoadWord, off32, static_cast<std::uint32_t>(dbytes), 0, 0});
        return true;
      }
      case POp::kSetWordConst: {
        const std::uint64_t dbytes = (ins.a + dword) * 4;
        push_or_merge({K::kSetWord, 0, static_cast<std::uint32_t>(dbytes), 0,
                       static_cast<std::uint32_t>(ins.imm)});
        return true;
      }
      case POp::kGetBytes: {
        const std::uint64_t dst = ins.a + dword * 4;
        if (dst > kMaxDisp) {
          return refuse("slot offset exceeds the jit displacement range");
        }
        push_or_merge({K::kCopyResBytes, off32,
                       static_cast<std::uint32_t>(dst), ins.b, 0});
        return true;
      }
      case POp::kGuardConstEq:
        // The executor compares against the low 32 bits of imm.
        prog->ops.push_back({K::kGuardEq, off32, 0, 0,
                             static_cast<std::uint32_t>(ins.imm)});
        return true;
      case POp::kGuardXid:
        prog->ops.push_back({K::kGuardXid, off32, 0, 0, 0});
        return true;
      case POp::kGuardBool:
        prog->ops.push_back({K::kGuardBool, off32, 0, 0, 0});
        return true;
      case POp::kGuardLen:
        prog->ops.push_back({K::kGuardLen, 0, 0, 0, ins.imm});
        return true;
      case POp::kLoop:
        // Unreachable: verify_plan rejected nested loops already.
        return refuse("nested loop");
    }
    return refuse("unknown op");
  };

  const std::size_t n = plan.instrs.size();
  std::size_t i = 0;
  while (i < n) {
    const PInstr& ins = plan.instrs[i];
    if (ins.op != POp::kLoop) {
      if (!lower_one(ins, 0, 0)) return false;
      ++i;
      continue;
    }
    const std::uint32_t iters = ins.a;
    const std::uint32_t body = ins.b;  // in-range: verify_plan checked
    const LoopStrides s = unpack_loop_strides(ins.imm);
    if (iters == 0 || body == 0) {  // executor skips the body entirely
      i += 1 + body;
      continue;
    }
    if (std::uint64_t{iters} * body <= kJitFullUnrollOps) {
      for (std::uint32_t it = 0; it < iters; ++it) {
        for (std::uint32_t j = 0; j < body; ++j) {
          if (!lower_one(plan.instrs[i + 1 + j],
                         std::uint64_t{it} * s.off_stride,
                         std::uint64_t{it} * s.word_stride)) {
            return false;
          }
        }
      }
    } else {
      // A kept loop runs its ops with displacement registers added; the
      // final-iteration displacement must itself stay in disp32 range.
      if (s.off_stride > kMaxDisp ||
          std::uint64_t{s.word_stride} * 4 > kMaxDisp ||
          std::uint64_t{iters - 1} * s.off_stride > kMaxDisp ||
          std::uint64_t{iters - 1} * s.word_stride * 4 > kMaxDisp) {
        return refuse("loop displacement exceeds the jit range");
      }
      prog->ops.push_back({K::kLoopBegin, 0, iters, 0, ins.imm});
      for (std::uint32_t j = 0; j < body; ++j) {
        if (!lower_one(plan.instrs[i + 1 + j], 0, 0)) return false;
      }
      prog->ops.push_back({K::kLoopEnd, 0, 0, 0, 0});
    }
    i += 1 + body;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Stage 2a: x86-64 emitter
// ---------------------------------------------------------------------------
//
// Register plan (SysV args are moved out of the rep-movsb registers up
// front, so rax/rcx/rdx/rsi/rdi stay free as scratch):
//   encode: r9 = words, r10d = xid, r11 = out,   r8 = tmpl
//   decode: r9 = in,    r10 = inlen, r11d = xid, r8 = words
// A residual loop pushes rbx/r12/r13: rbx = down-counter, r12 = buffer
// byte displacement, r13 = word-array byte displacement; memory
// operands then take the form [base + r12/r13 + disp32].

namespace {

constexpr int kRax = 0, kRcx = 1, kRdx = 2, kRbx = 3, kRsi = 6, kRdi = 7;
constexpr int kR8 = 8, kR9 = 9, kR10 = 10, kR11 = 11, kR12 = 12, kR13 = 13;

// Copies at or above this size use rep movsb; below it, an unrolled
// 8/4/2/1-byte mov sequence (no setup latency, no flag clobber).
constexpr std::uint32_t kRepMovsCutoff = 64;

class X86 {
 public:
  std::vector<std::uint8_t> code;

  struct Mem {
    int base;
    int index;  // -1 = none; scale is always 1
    std::int32_t disp;
  };

  std::size_t pos() const { return code.size(); }
  void u8(std::uint8_t b) { code.push_back(b); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void rex(bool w, int reg, int index, int base) {
    const std::uint8_t r =
        0x40 | (w ? 8 : 0) | (((reg >> 3) & 1) << 2) |
        ((index >= 0 ? (index >> 3) & 1 : 0) << 1) | ((base >> 3) & 1);
    if (r != 0x40) u8(r);
  }

  // ModRM (+ SIB) with a mandatory disp32: uniform and simple; the
  // stubs are straight-line enough that the size cost is noise.
  void modrm_mem(int reg, const Mem& m) {
    if (m.index >= 0) {
      u8(0x80 | ((reg & 7) << 3) | 4);
      u8(((m.index & 7) << 3) | (m.base & 7));  // scale = 1
    } else if ((m.base & 7) == 4) {
      u8(0x80 | ((reg & 7) << 3) | 4);
      u8(0x24);
    } else {
      u8(0x80 | ((reg & 7) << 3) | (m.base & 7));
    }
    u32(static_cast<std::uint32_t>(m.disp));
  }
  void modrm_reg(int reg, int rm) { u8(0xC0 | ((reg & 7) << 3) | (rm & 7)); }

  void mov_rr64(int dst, int src) {
    rex(true, src, -1, dst);
    u8(0x89);
    modrm_reg(src, dst);
  }
  void mov_rr32(int dst, int src) {
    rex(false, src, -1, dst);
    u8(0x89);
    modrm_reg(src, dst);
  }
  void load(int bits, int reg, const Mem& m) {
    if (bits == 16) u8(0x66);
    rex(bits == 64, reg, m.index, m.base);
    u8(bits == 8 ? 0x8A : 0x8B);
    modrm_mem(reg, m);
  }
  void store(int bits, const Mem& m, int reg) {
    if (bits == 16) u8(0x66);
    rex(bits == 64, reg, m.index, m.base);
    u8(bits == 8 ? 0x88 : 0x89);
    modrm_mem(reg, m);
  }
  void store8_imm(const Mem& m, std::uint8_t v) {
    rex(false, 0, m.index, m.base);
    u8(0xC6);
    modrm_mem(0, m);
    u8(v);
  }
  void store32_imm(const Mem& m, std::uint32_t v) {
    rex(false, 0, m.index, m.base);
    u8(0xC7);
    modrm_mem(0, m);
    u32(v);
  }
  void bswap32(int r) {
    rex(false, 0, -1, r);
    u8(0x0F);
    u8(0xC8 | (r & 7));
  }
  void mov_imm32(int r, std::uint32_t v) {
    rex(false, 0, -1, r);
    u8(0xB8 | (r & 7));
    u32(v);
  }
  void mov_imm64(int r, std::uint64_t v) {
    rex(true, 0, -1, r);
    u8(0xB8 | (r & 7));
    u64(v);
  }
  void lea(int r, const Mem& m) {
    rex(true, r, m.index, m.base);
    u8(0x8D);
    modrm_mem(r, m);
  }
  void add_r64_imm32(int r, std::int32_t v) {
    rex(true, 0, -1, r);
    u8(0x81);
    modrm_reg(0, r);
    u32(static_cast<std::uint32_t>(v));
  }
  void cmp_r32_imm32(int r, std::uint32_t v) {
    rex(false, 0, -1, r);
    u8(0x81);
    modrm_reg(7, r);
    u32(v);
  }
  void cmp_r64_imm32(int r, std::int32_t v) {
    rex(true, 0, -1, r);
    u8(0x81);
    modrm_reg(7, r);
    u32(static_cast<std::uint32_t>(v));
  }
  void cmp_rr32(int a, int b) {  // cmp a, b
    rex(false, b, -1, a);
    u8(0x39);
    modrm_reg(b, a);
  }
  void cmp_rr64(int a, int b) {
    rex(true, b, -1, a);
    u8(0x39);
    modrm_reg(b, a);
  }
  void xor_self32(int r) {
    rex(false, r, -1, r);
    u8(0x31);
    modrm_reg(r, r);
  }
  void dec32(int r) {
    rex(false, 0, -1, r);
    u8(0xFF);
    modrm_reg(1, r);
  }
  void push64(int r) {
    if (r >= 8) u8(0x41);
    u8(0x50 | (r & 7));
  }
  void pop64(int r) {
    if (r >= 8) u8(0x41);
    u8(0x58 | (r & 7));
  }
  void rep_movsb() {
    u8(0xF3);
    u8(0xA4);
  }
  void ret() { u8(0xC3); }

  // Forward jumps: emit with a zero rel32, patch once targets are laid
  // out.  Backward jumps know their target immediately.
  std::size_t jcc_fwd(std::uint8_t cc) {
    u8(0x0F);
    u8(0x80 | cc);
    const std::size_t at = pos();
    u32(0);
    return at;
  }
  std::size_t jmp_fwd() {
    u8(0xE9);
    const std::size_t at = pos();
    u32(0);
    return at;
  }
  void jcc_back(std::uint8_t cc, std::size_t target) {
    u8(0x0F);
    u8(0x80 | cc);
    u32(static_cast<std::uint32_t>(target - (pos() + 4)));
  }
  void patch(std::size_t at, std::size_t target) {
    const auto rel = static_cast<std::uint32_t>(target - (at + 4));
    for (int i = 0; i < 4; ++i) {
      code[at + i] = static_cast<std::uint8_t>(rel >> (8 * i));
    }
  }
};

constexpr std::uint8_t kCcNe = 5;  // jne
constexpr std::uint8_t kCcA = 7;   // ja (unsigned above)

void x86_copy(X86& a, int src_base, int src_idx, std::uint32_t src_off,
              int dst_base, int dst_idx, std::uint32_t dst_off,
              std::uint32_t len) {
  if (len >= kRepMovsCutoff) {
    a.lea(kRsi, {src_base, src_idx, static_cast<std::int32_t>(src_off)});
    a.lea(kRdi, {dst_base, dst_idx, static_cast<std::int32_t>(dst_off)});
    a.mov_imm32(kRcx, len);
    a.rep_movsb();  // DF is 0 on entry per the ABI
    return;
  }
  std::uint32_t o = 0;
  for (int bits : {64, 32, 16, 8}) {
    const std::uint32_t step = static_cast<std::uint32_t>(bits) / 8;
    while (len - o >= step) {
      a.load(bits, kRax,
             {src_base, src_idx, static_cast<std::int32_t>(src_off + o)});
      a.store(bits, {dst_base, dst_idx, static_cast<std::int32_t>(dst_off + o)},
              kRax);
      o += step;
      if (bits < 64) break;  // at most one of each tail size
    }
  }
}

}  // namespace

std::vector<std::uint8_t> emit_x86_64(const FusedProgram& p) {
  X86 a;
  bool has_loop = false;
  for (const FusedOp& op : p.ops) {
    if (op.k == K::kLoopBegin) has_loop = true;
  }
  if (has_loop) {
    a.push64(kRbx);
    a.push64(kR12);
    a.push64(kR13);
  }
  // Move args out of the scratch/string registers (see register plan).
  if (p.is_encode) {
    a.mov_rr64(kR9, kRdi);   // words
    a.mov_rr32(kR10, kRsi);  // xid
    a.mov_rr64(kR11, kRdx);  // out
    a.mov_rr64(kR8, kRcx);   // tmpl
  } else {
    a.mov_rr64(kR9, kRdi);   // in
    a.mov_rr64(kR10, kRsi);  // inlen
    a.mov_rr32(kR11, kRdx);  // xid
    a.mov_rr64(kR8, kRcx);   // words
  }
  const int buf = p.is_encode ? kR11 : kR9;  // out (encode) / in (decode)
  const int words = p.is_encode ? kR9 : kR8;

  enum Target { kFb = 0, kRx = 1, kEpi = 2 };
  std::vector<std::pair<std::size_t, Target>> fixups;
  auto jcc_to = [&](std::uint8_t cc, Target t) {
    fixups.emplace_back(a.jcc_fwd(cc), t);
  };

  bool in_loop = false;
  std::size_t loop_top = 0;
  LoopStrides loop_s;
  const auto bidx = [&]() { return in_loop ? kR12 : -1; };
  const auto widx = [&]() { return in_loop ? kR13 : -1; };
  const auto d32 = [](std::uint32_t v) { return static_cast<std::int32_t>(v); };

  for (const FusedOp& op : p.ops) {
    switch (op.k) {
      case K::kCopyTmpl:
        // Template bytes live at the iteration-0 offset; only the
        // output cursor advances across iterations.
        x86_copy(a, kR8, -1, op.off, kR11, bidx(), op.off, op.b);
        break;
      case K::kStoreWord:
        a.load(32, kRax, {words, widx(), d32(op.a)});
        a.bswap32(kRax);
        a.store(32, {buf, bidx(), d32(op.off)}, kRax);
        break;
      case K::kStoreXid:
        a.mov_rr32(kRax, kR10);
        a.bswap32(kRax);
        a.store(32, {buf, bidx(), d32(op.off)}, kRax);
        break;
      case K::kCopyArgBytes: {
        x86_copy(a, words, widx(), op.a, buf, bidx(), op.off, op.b);
        const auto padded = static_cast<std::uint32_t>(xdr_pad4(op.b));
        for (std::uint32_t i = op.b; i < padded; ++i) {
          a.store8_imm({buf, bidx(), d32(op.off + i)}, 0);
        }
        break;
      }
      case K::kLoadWord:
        a.load(32, kRax, {buf, bidx(), d32(op.off)});
        a.bswap32(kRax);
        a.store(32, {words, widx(), d32(op.a)}, kRax);
        break;
      case K::kSetWord:
        a.store32_imm({words, widx(), d32(op.a)},
                      static_cast<std::uint32_t>(op.imm));
        break;
      case K::kCopyResBytes: {
        x86_copy(a, buf, bidx(), op.off, words, widx(), op.a, op.b);
        const auto padded = static_cast<std::uint32_t>(xdr_pad4(op.b));
        for (std::uint32_t i = op.b; i < padded; ++i) {
          a.store8_imm({words, widx(), d32(op.a + i)}, 0);
        }
        break;
      }
      case K::kGuardEq:
        a.load(32, kRax, {buf, bidx(), d32(op.off)});
        a.bswap32(kRax);
        a.cmp_r32_imm32(kRax, static_cast<std::uint32_t>(op.imm));
        jcc_to(kCcNe, kFb);
        break;
      case K::kGuardXid:
        a.load(32, kRax, {buf, bidx(), d32(op.off)});
        a.bswap32(kRax);
        a.cmp_rr32(kRax, kR11);
        jcc_to(kCcNe, kRx);
        break;
      case K::kGuardBool:
        a.load(32, kRax, {buf, bidx(), d32(op.off)});
        a.bswap32(kRax);
        a.cmp_r32_imm32(kRax, 1);
        jcc_to(kCcA, kFb);
        break;
      case K::kGuardLen:
        if (op.imm <= 0x7FFFFFFFull) {
          a.cmp_r64_imm32(kR10, static_cast<std::int32_t>(op.imm));
        } else {
          a.mov_imm64(kRax, op.imm);
          a.cmp_rr64(kR10, kRax);
        }
        jcc_to(kCcNe, kFb);
        break;
      case K::kLoopBegin:
        a.mov_imm32(kRbx, op.a);
        a.xor_self32(kR12);
        a.xor_self32(kR13);
        loop_top = a.pos();
        loop_s = unpack_loop_strides(op.imm);
        in_loop = true;
        break;
      case K::kLoopEnd:
        a.add_r64_imm32(kR12, d32(loop_s.off_stride));
        a.add_r64_imm32(kR13, d32(loop_s.word_stride * 4));
        a.dec32(kRbx);
        a.jcc_back(kCcNe, loop_top);
        in_loop = false;
        break;
    }
  }

  a.xor_self32(kRax);  // ExecStatus::kOk
  fixups.emplace_back(a.jmp_fwd(), kEpi);
  const std::size_t fb_at = a.pos();
  a.mov_imm32(kRax, 1);  // ExecStatus::kFallback
  fixups.emplace_back(a.jmp_fwd(), kEpi);
  const std::size_t rx_at = a.pos();
  a.mov_imm32(kRax, 2);  // ExecStatus::kRetryXid
  const std::size_t epi_at = a.pos();
  if (has_loop) {
    a.pop64(kR13);
    a.pop64(kR12);
    a.pop64(kRbx);
  }
  a.ret();
  for (const auto& [at, t] : fixups) {
    a.patch(at, t == kFb ? fb_at : t == kRx ? rx_at : epi_at);
  }
  return std::move(a.code);
}

// ---------------------------------------------------------------------------
// Stage 2b: aarch64 emitter
// ---------------------------------------------------------------------------
//
// Args stay where AAPCS64 puts them (we never call out):
//   encode: x0 = words, w1 = xid, x2 = out,   x3 = tmpl
//   decode: x0 = in,    x1 = inlen, w2 = xid, x3 = words
// x9/x11 hold materialized addresses, x10 data, w12 copy counters;
// loops use w13 (counter), x14 (buffer disp), x15 (word disp).  All of
// x9-x15 are temporaries, so there is no prologue.  Addresses are
// always built with explicit adds and accessed at offset 0 — no scaled
// immediate offsets to get subtly wrong.

namespace {

class A64 {
 public:
  std::vector<std::uint8_t> code;

  std::size_t pos() const { return code.size(); }
  void ins(std::uint32_t w) {
    for (int i = 0; i < 4; ++i) {
      code.push_back(static_cast<std::uint8_t>(w >> (8 * i)));
    }
  }

  void movz_w(int rd, std::uint16_t imm, int hw) {
    ins(0x52800000u | (static_cast<std::uint32_t>(hw) << 21) |
        (static_cast<std::uint32_t>(imm) << 5) | static_cast<std::uint32_t>(rd));
  }
  void movk_w(int rd, std::uint16_t imm, int hw) {
    ins(0x72800000u | (static_cast<std::uint32_t>(hw) << 21) |
        (static_cast<std::uint32_t>(imm) << 5) | static_cast<std::uint32_t>(rd));
  }
  void movz_x(int rd, std::uint16_t imm, int hw) {
    ins(0xD2800000u | (static_cast<std::uint32_t>(hw) << 21) |
        (static_cast<std::uint32_t>(imm) << 5) | static_cast<std::uint32_t>(rd));
  }
  void movk_x(int rd, std::uint16_t imm, int hw) {
    ins(0xF2800000u | (static_cast<std::uint32_t>(hw) << 21) |
        (static_cast<std::uint32_t>(imm) << 5) | static_cast<std::uint32_t>(rd));
  }
  void mov_imm_w(int rd, std::uint32_t v) {
    movz_w(rd, static_cast<std::uint16_t>(v), 0);
    if (v >> 16) movk_w(rd, static_cast<std::uint16_t>(v >> 16), 1);
  }
  void mov_imm_x(int rd, std::uint64_t v) {
    movz_x(rd, static_cast<std::uint16_t>(v), 0);
    for (int hw = 1; hw < 4; ++hw) {
      const auto part = static_cast<std::uint16_t>(v >> (16 * hw));
      if (part) movk_x(rd, part, hw);
    }
  }
  void add_x(int rd, int rn, int rm) {
    ins(0x8B000000u | (static_cast<std::uint32_t>(rm) << 16) |
        (static_cast<std::uint32_t>(rn) << 5) | static_cast<std::uint32_t>(rd));
  }
  void mov_w(int rd, int rm) {  // orr wd, wzr, wm
    ins(0x2A0003E0u | (static_cast<std::uint32_t>(rm) << 16) |
        static_cast<std::uint32_t>(rd));
  }
  // Loads/stores at [Xn] (unsigned-immediate form, offset 0).
  void ldr_w0(int rt, int rn) {
    ins(0xB9400000u | (static_cast<std::uint32_t>(rn) << 5) |
        static_cast<std::uint32_t>(rt));
  }
  void str_w0(int rt, int rn) {
    ins(0xB9000000u | (static_cast<std::uint32_t>(rn) << 5) |
        static_cast<std::uint32_t>(rt));
  }
  // Post-indexed forms advance the address register, which is how the
  // copy loops and pad stores walk their cursors.
  void ldst_post(std::uint32_t base_opc, int rt, int rn, int imm) {
    ins(base_opc | ((static_cast<std::uint32_t>(imm) & 0x1FF) << 12) |
        (static_cast<std::uint32_t>(rn) << 5) | static_cast<std::uint32_t>(rt));
  }
  void ldr_x_post(int rt, int rn, int imm) { ldst_post(0xF8400400u, rt, rn, imm); }
  void str_x_post(int rt, int rn, int imm) { ldst_post(0xF8000400u, rt, rn, imm); }
  void ldr_w_post(int rt, int rn, int imm) { ldst_post(0xB8400400u, rt, rn, imm); }
  void str_w_post(int rt, int rn, int imm) { ldst_post(0xB8000400u, rt, rn, imm); }
  void ldrh_post(int rt, int rn, int imm) { ldst_post(0x78400400u, rt, rn, imm); }
  void strh_post(int rt, int rn, int imm) { ldst_post(0x78000400u, rt, rn, imm); }
  void ldrb_post(int rt, int rn, int imm) { ldst_post(0x38400400u, rt, rn, imm); }
  void strb_post(int rt, int rn, int imm) { ldst_post(0x38000400u, rt, rn, imm); }
  void rev_w(int rd, int rn) {
    ins(0x5AC00800u | (static_cast<std::uint32_t>(rn) << 5) |
        static_cast<std::uint32_t>(rd));
  }
  void cmp_w(int rn, int rm) {  // subs wzr, wn, wm
    ins(0x6B00001Fu | (static_cast<std::uint32_t>(rm) << 16) |
        (static_cast<std::uint32_t>(rn) << 5));
  }
  void cmp_x(int rn, int rm) {
    ins(0xEB00001Fu | (static_cast<std::uint32_t>(rm) << 16) |
        (static_cast<std::uint32_t>(rn) << 5));
  }
  void cmp_w_imm(int rn, std::uint32_t imm12) {  // subs wzr, wn, #imm
    ins(0x7100001Fu | (imm12 << 10) | (static_cast<std::uint32_t>(rn) << 5));
  }
  void subs_w_imm(int rd, int rn, std::uint32_t imm12) {
    ins(0x71000000u | (imm12 << 10) | (static_cast<std::uint32_t>(rn) << 5) |
        static_cast<std::uint32_t>(rd));
  }
  std::size_t bcond_fwd(int cond) {
    const std::size_t at = pos();
    ins(0x54000000u | static_cast<std::uint32_t>(cond));
    return at;
  }
  void bcond_back(int cond, std::size_t target) {
    const auto delta = static_cast<std::int64_t>(target - pos()) / 4;
    ins(0x54000000u | ((static_cast<std::uint32_t>(delta) & 0x7FFFF) << 5) |
        static_cast<std::uint32_t>(cond));
  }
  std::size_t b_fwd() {
    const std::size_t at = pos();
    ins(0x14000000u);
    return at;
  }
  void patch_bcond(std::size_t at, std::size_t target) {
    const auto delta =
        static_cast<std::uint32_t>((target - at) / 4) & 0x7FFFFu;
    std::uint32_t w = 0;
    for (int i = 0; i < 4; ++i) {
      w |= static_cast<std::uint32_t>(code[at + i]) << (8 * i);
    }
    w |= delta << 5;
    for (int i = 0; i < 4; ++i) {
      code[at + i] = static_cast<std::uint8_t>(w >> (8 * i));
    }
  }
  void patch_b(std::size_t at, std::size_t target) {
    const auto delta =
        static_cast<std::uint32_t>((target - at) / 4) & 0x3FFFFFFu;
    std::uint32_t w = 0;
    for (int i = 0; i < 4; ++i) {
      w |= static_cast<std::uint32_t>(code[at + i]) << (8 * i);
    }
    w |= delta;
    for (int i = 0; i < 4; ++i) {
      code[at + i] = static_cast<std::uint8_t>(w >> (8 * i));
    }
  }
  void ret() { ins(0xD65F03C0u); }
};

constexpr int kCondNe = 1;
constexpr int kCondHi = 8;
constexpr int kWzr = 31;

// Materialize base + off (+ disp register) into `dst`.
void a64_addr(A64& a, int dst, int base, std::uint32_t off, int disp_reg) {
  a.mov_imm_x(dst, off);
  a.add_x(dst, base, dst);
  if (disp_reg >= 0) a.add_x(dst, dst, disp_reg);
}

// Copy len bytes from the address in x9 to the address in x11; both
// registers end past the copied range (post-indexed walk).
void a64_copy(A64& a, std::uint32_t len) {
  const std::uint32_t n8 = len / 8;
  if (n8 > 4) {
    a.mov_imm_w(12, n8);
    const std::size_t top = a.pos();
    a.ldr_x_post(10, 9, 8);
    a.str_x_post(10, 11, 8);
    a.subs_w_imm(12, 12, 1);
    a.bcond_back(kCondNe, top);
  } else {
    for (std::uint32_t i = 0; i < n8; ++i) {
      a.ldr_x_post(10, 9, 8);
      a.str_x_post(10, 11, 8);
    }
  }
  if (len & 4) {
    a.ldr_w_post(10, 9, 4);
    a.str_w_post(10, 11, 4);
  }
  if (len & 2) {
    a.ldrh_post(10, 9, 2);
    a.strh_post(10, 11, 2);
  }
  if (len & 1) {
    a.ldrb_post(10, 9, 1);
    a.strb_post(10, 11, 1);
  }
}

}  // namespace

std::vector<std::uint8_t> emit_aarch64(const FusedProgram& p) {
  A64 a;
  // Encode: x0 = words, w1 = xid, x2 = out, x3 = tmpl.
  // Decode: x0 = in, x1 = inlen, w2 = xid, x3 = words.
  const int buf = p.is_encode ? 2 : 0;
  const int words = p.is_encode ? 0 : 3;
  const int xid = p.is_encode ? 1 : 2;

  enum Target { kFb = 0, kRx = 1 };
  std::vector<std::pair<std::size_t, Target>> fixups;

  bool in_loop = false;
  std::size_t loop_top = 0;
  LoopStrides loop_s;
  const auto bdisp = [&]() { return in_loop ? 14 : -1; };
  const auto wdisp = [&]() { return in_loop ? 15 : -1; };

  for (const FusedOp& op : p.ops) {
    switch (op.k) {
      case K::kCopyTmpl:
        a64_addr(a, 9, 3, op.off, -1);  // template: iteration-0 image
        a64_addr(a, 11, buf, op.off, bdisp());
        a64_copy(a, op.b);
        break;
      case K::kStoreWord:
        a64_addr(a, 9, words, op.a, wdisp());
        a.ldr_w0(10, 9);
        a.rev_w(10, 10);
        a64_addr(a, 11, buf, op.off, bdisp());
        a.str_w0(10, 11);
        break;
      case K::kStoreXid:
        a.mov_w(10, xid);
        a.rev_w(10, 10);
        a64_addr(a, 11, buf, op.off, bdisp());
        a.str_w0(10, 11);
        break;
      case K::kCopyArgBytes: {
        a64_addr(a, 9, words, op.a, wdisp());
        a64_addr(a, 11, buf, op.off, bdisp());
        a64_copy(a, op.b);
        const auto padded = static_cast<std::uint32_t>(xdr_pad4(op.b));
        for (std::uint32_t i = op.b; i < padded; ++i) {
          a.strb_post(kWzr, 11, 1);
        }
        break;
      }
      case K::kLoadWord:
        a64_addr(a, 9, buf, op.off, bdisp());
        a.ldr_w0(10, 9);
        a.rev_w(10, 10);
        a64_addr(a, 11, words, op.a, wdisp());
        a.str_w0(10, 11);
        break;
      case K::kSetWord:
        a.mov_imm_w(10, static_cast<std::uint32_t>(op.imm));
        a64_addr(a, 11, words, op.a, wdisp());
        a.str_w0(10, 11);
        break;
      case K::kCopyResBytes: {
        a64_addr(a, 9, buf, op.off, bdisp());
        a64_addr(a, 11, words, op.a, wdisp());
        a64_copy(a, op.b);
        const auto padded = static_cast<std::uint32_t>(xdr_pad4(op.b));
        for (std::uint32_t i = op.b; i < padded; ++i) {
          a.strb_post(kWzr, 11, 1);
        }
        break;
      }
      case K::kGuardEq:
        a64_addr(a, 9, buf, op.off, bdisp());
        a.ldr_w0(10, 9);
        a.rev_w(10, 10);
        a.mov_imm_w(12, static_cast<std::uint32_t>(op.imm));
        a.cmp_w(10, 12);
        fixups.emplace_back(a.bcond_fwd(kCondNe), kFb);
        break;
      case K::kGuardXid:
        a64_addr(a, 9, buf, op.off, bdisp());
        a.ldr_w0(10, 9);
        a.rev_w(10, 10);
        a.cmp_w(10, xid);
        fixups.emplace_back(a.bcond_fwd(kCondNe), kRx);
        break;
      case K::kGuardBool:
        a64_addr(a, 9, buf, op.off, bdisp());
        a.ldr_w0(10, 9);
        a.rev_w(10, 10);
        a.cmp_w_imm(10, 1);
        fixups.emplace_back(a.bcond_fwd(kCondHi), kFb);
        break;
      case K::kGuardLen:
        a.mov_imm_x(10, op.imm);
        a.cmp_x(1, 10);  // x1 = inlen
        fixups.emplace_back(a.bcond_fwd(kCondNe), kFb);
        break;
      case K::kLoopBegin:
        a.mov_imm_w(13, op.a);
        a.mov_imm_x(14, 0);
        a.mov_imm_x(15, 0);
        loop_top = a.pos();
        loop_s = unpack_loop_strides(op.imm);
        in_loop = true;
        break;
      case K::kLoopEnd:
        a.mov_imm_x(9, loop_s.off_stride);
        a.add_x(14, 14, 9);
        a.mov_imm_x(9, std::uint64_t{loop_s.word_stride} * 4);
        a.add_x(15, 15, 9);
        a.subs_w_imm(13, 13, 1);
        a.bcond_back(kCondNe, loop_top);
        in_loop = false;
        break;
    }
  }

  a.mov_imm_w(0, 0);  // ExecStatus::kOk
  a.ret();
  const std::size_t fb_at = a.pos();
  a.mov_imm_w(0, 1);  // ExecStatus::kFallback
  a.ret();
  const std::size_t rx_at = a.pos();
  a.mov_imm_w(0, 2);  // ExecStatus::kRetryXid
  a.ret();
  for (const auto& [at, t] : fixups) {
    a.patch_bcond(at, t == kFb ? fb_at : rx_at);
  }
  return std::move(a.code);
}

}  // namespace jit_internal

// ---------------------------------------------------------------------------
// Stage 3: executable memory + the public CompiledPlan wrapper
// ---------------------------------------------------------------------------

struct CompiledPlan::ExecMem {
  void* base = nullptr;
  std::size_t len = 0;

  ~ExecMem() {
#if TEMPO_JIT_HAVE_MMAP
    if (base != nullptr) ::munmap(base, len);
#endif
  }

  // W^X: the mapping is writable during the copy, executable after, and
  // never both.  Any failure returns null and the caller keeps the plan
  // executor — JIT availability is strictly best-effort.
  static std::unique_ptr<ExecMem> create(const std::vector<std::uint8_t>& code) {
#if TEMPO_JIT_HAVE_MMAP
    if (code.empty()) return nullptr;
    long page = ::sysconf(_SC_PAGESIZE);
    if (page <= 0) page = 4096;
    const std::size_t len =
        (code.size() + static_cast<std::size_t>(page) - 1) /
        static_cast<std::size_t>(page) * static_cast<std::size_t>(page);
    void* p = ::mmap(nullptr, len, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (p == MAP_FAILED) return nullptr;
    std::memcpy(p, code.data(), code.size());
    if (::mprotect(p, len, PROT_READ | PROT_EXEC) != 0) {
      ::munmap(p, len);
      return nullptr;
    }
    __builtin___clear_cache(static_cast<char*>(p),
                            static_cast<char*>(p) + code.size());
    auto mem = std::make_unique<ExecMem>();
    mem->base = p;
    mem->len = len;
    return mem;
#else
    (void)code;
    return nullptr;
#endif
  }
};

namespace {

using EncodeFn = std::uint32_t (*)(const std::uint32_t*, std::uint32_t,
                                   std::uint8_t*, const std::uint8_t*);
using DecodeFn = std::uint32_t (*)(const std::uint8_t*, std::uint64_t,
                                   std::uint32_t, std::uint32_t*);

}  // namespace

bool jit_supported_host() {
#if (defined(__x86_64__) || defined(__aarch64__)) && TEMPO_JIT_HAVE_MMAP
  return true;
#else
  return false;
#endif
}

bool jit_enabled_by_env() {
  static const bool enabled = [] {
    const char* e = std::getenv("TEMPO_PLAN_JIT");
    if (e == nullptr) return true;
    const std::string v(e);
    return !(v == "0" || v == "off" || v == "OFF" || v == "false" ||
             v == "no");
  }();
  return enabled;
}

CompiledPlan::~CompiledPlan() = default;

std::unique_ptr<CompiledPlan> CompiledPlan::compile(const Plan& plan) {
  if (!jit_supported_host()) return nullptr;
  jit_internal::FusedProgram prog;
  if (!jit_internal::fuse_plan(plan, &prog)) return nullptr;
  std::vector<std::uint8_t> code;
#if defined(__x86_64__)
  code = jit_internal::emit_x86_64(prog);
#elif defined(__aarch64__)
  code = jit_internal::emit_aarch64(prog);
#else
  return nullptr;
#endif
  auto mem = ExecMem::create(code);
  if (mem == nullptr) return nullptr;
  auto cp = std::unique_ptr<CompiledPlan>(new CompiledPlan());
  cp->mem_ = std::move(mem);
  cp->tmpl_ = std::move(prog.tmpl);
  cp->is_encode_ = plan.is_encode;
  cp->out_size_ = plan.out_size;
  cp->expected_in_ = plan.expected_in;
  cp->words_needed_ = plan.words_needed;
  cp->code_size_ = code.size();
  return cp;
}

ExecStatus CompiledPlan::run_encode(std::span<const std::uint32_t> words,
                                    std::uint32_t xid,
                                    MutableByteSpan out) const {
  if (!is_encode_) return ExecStatus::kFallback;
  // Identical precheck (and check order) to run_plan_encode.
  if (out.size() < out_size_ || words.size() < words_needed_) {
    return ExecStatus::kFallback;
  }
  const auto fn = reinterpret_cast<EncodeFn>(mem_->base);
  return static_cast<ExecStatus>(fn(words.data(), xid, out.data(),
                                    tmpl_.data()));
}

ExecStatus CompiledPlan::run_decode(ByteSpan in, std::uint32_t xid,
                                    std::span<std::uint32_t> words) const {
  if (is_encode_) return ExecStatus::kFallback;
  // Identical prechecks (and check order) to run_plan_decode.
  if (words.size() < words_needed_) return ExecStatus::kFallback;
  if (expected_in_ != 0 && in.size() < expected_in_) {
    return ExecStatus::kFallback;
  }
  const auto fn = reinterpret_cast<DecodeFn>(mem_->base);
  return static_cast<ExecStatus>(fn(in.data(), in.size(), xid, words.data()));
}

}  // namespace tempo::pe
