// common::BufferArena — the size-classed buffer pool both server
// runtimes draw their request/reply buffers from.  What matters here:
// size-class reuse (a recycled buffer actually comes back), bounded
// growth (the freelists cannot balloon past the configured cap),
// cross-thread recycle safety (take on one thread, recycle on another —
// the runtimes' normal case, pinned under TSan in CI), and honest
// hit/miss accounting (`arena_misses` in the runtimes is read straight
// from these counters).
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "common/arena.h"
#include "test_rng.h"

namespace tempo {
namespace {

using common::BufferArena;
using common::BufferArenaConfig;

TEST(BufferArena, TakeRoundsUpToClassSize) {
  BufferArena arena;
  Bytes b = arena.take(1000);
  EXPECT_EQ(b.size(), 4096u);  // smallest class
  Bytes c = arena.take(5000);
  EXPECT_EQ(c.size(), 8192u);
  Bytes d = arena.take(4096);
  EXPECT_EQ(d.size(), 4096u);  // exact class boundary stays in class
  EXPECT_EQ(arena.stats().misses, 3);
  EXPECT_EQ(arena.stats().hits, 0);
}

TEST(BufferArena, RecycledBufferIsReusedWithinItsClass) {
  BufferArena arena;
  Bytes b = arena.take(10000);  // 16 KiB class
  std::uint8_t* data = b.data();
  std::memset(b.data(), 0xAB, b.size());
  arena.recycle(std::move(b));

  // Any take that lands in the same class gets the pooled buffer back —
  // same storage, no allocation, contents NOT cleared.
  Bytes again = arena.take(9000);
  EXPECT_EQ(again.data(), data);
  EXPECT_EQ(again.size(), 16384u);
  EXPECT_EQ(again[0], 0xAB);
  const auto s = arena.stats();
  EXPECT_EQ(s.hits, 1);
  EXPECT_EQ(s.misses, 1);
  EXPECT_EQ(s.recycles, 1);
  EXPECT_EQ(s.bytes_pooled, 0);  // the one pooled buffer is out again

  // A different class is a different freelist: miss.
  Bytes other = arena.take(100);
  EXPECT_EQ(other.size(), 4096u);
  EXPECT_EQ(arena.stats().misses, 2);
}

TEST(BufferArena, GrowthIsBoundedPerClass) {
  BufferArenaConfig cfg;
  cfg.max_buffers_per_class = 2;
  BufferArena arena(cfg);

  std::vector<Bytes> bufs;
  for (int i = 0; i < 5; ++i) bufs.push_back(arena.take(4096));
  for (auto& b : bufs) arena.recycle(std::move(b));

  const auto s = arena.stats();
  EXPECT_EQ(s.recycles, 2);   // the bound
  EXPECT_EQ(s.discards, 3);   // everything past it is dropped
  EXPECT_EQ(s.bytes_pooled, 2 * 4096);
}

TEST(BufferArena, OversizeTakeFallsBackToHeapAndIsNeverPooled) {
  BufferArenaConfig cfg;
  cfg.max_class_bytes = 64 * 1024;
  BufferArena arena(cfg);

  Bytes big = arena.take(1u << 20);
  EXPECT_EQ(big.size(), 1u << 20);  // exactly what was asked, no class
  EXPECT_EQ(arena.stats().misses, 1);

  arena.recycle(std::move(big));
  const auto s = arena.stats();
  EXPECT_EQ(s.discards, 1);  // oversize one-offs don't enter freelists
  EXPECT_EQ(s.bytes_pooled, 0);
}

TEST(BufferArena, RecycleClassifiesByRoundingDown) {
  BufferArena arena;
  // A foreign buffer between classes is trimmed down to the class it
  // can safely serve (6000 bytes -> 4096 class), never rounded up —
  // a pooled buffer must be at least its class size.
  arena.recycle(Bytes(6000));
  Bytes b = arena.take(4096);
  EXPECT_EQ(b.size(), 4096u);
  EXPECT_EQ(arena.stats().hits, 1);

  // Below the smallest class there is nothing it can serve: discarded.
  arena.recycle(Bytes(100));
  EXPECT_EQ(arena.stats().discards, 1);

  // Empty recycles are ignored entirely (a moved-from buffer).
  arena.recycle(Bytes());
  EXPECT_EQ(arena.stats().discards, 1);
}

TEST(BufferArena, MissAccountingSeparatesColdAndOversize) {
  BufferArena arena;
  // Cold takes are misses; steady-state reuse is all hits.
  constexpr int kWarm = 8;
  std::vector<Bytes> bufs;
  for (int i = 0; i < kWarm; ++i) bufs.push_back(arena.take(60000));
  for (auto& b : bufs) arena.recycle(std::move(b));
  for (int round = 0; round < 10; ++round) {
    bufs.clear();
    for (int i = 0; i < kWarm; ++i) bufs.push_back(arena.take(60000));
    for (auto& b : bufs) arena.recycle(std::move(b));
  }
  const auto s = arena.stats();
  EXPECT_EQ(s.misses, kWarm);        // only the cold start allocated
  EXPECT_EQ(s.hits, 10 * kWarm);
  EXPECT_EQ(s.hits + s.misses, 11 * kWarm);
}

// The runtimes' shape: buffers taken on one thread (the reactor shard)
// are recycled on another (whichever worker served the request).  Run a
// producer/consumer pipeline plus take/recycle churn loops concurrently
// and require the books to balance exactly.  TSan CI runs this suite.
TEST(BufferArena, CrossThreadRecycleIsSafeAndBalanced) {
  BufferArenaConfig cfg;
  cfg.max_buffers_per_class = 64;
  BufferArena arena(cfg);

  constexpr int kProducers = 3;
  constexpr int kPerProducer = 400;

  std::mutex mu;
  std::condition_variable cv;
  std::deque<Bytes> handoff;
  std::atomic<int> produced{0};

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      test::Rng rng{0x5EEDu + static_cast<std::uint64_t>(p)};
      for (int i = 0; i < kPerProducer; ++i) {
        Bytes b = arena.take(1 + rng.below(60000));
        // Touch the buffer like a real request would; TSan flags any
        // take that aliased a buffer still owned elsewhere.
        b[0] = static_cast<std::uint8_t>(p);
        b[b.size() - 1] = static_cast<std::uint8_t>(i);
        {
          std::lock_guard<std::mutex> lock(mu);
          handoff.push_back(std::move(b));
        }
        ++produced;
        cv.notify_one();
      }
    });
  }
  // Consumer: recycles everything the producers hand over.
  threads.emplace_back([&] {
    int consumed = 0;
    while (consumed < kProducers * kPerProducer) {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return !handoff.empty(); });
      Bytes b = std::move(handoff.front());
      handoff.pop_front();
      lock.unlock();
      arena.recycle(std::move(b));
      ++consumed;
    }
  });
  // Churners: independent take/recycle loops racing the pipeline.
  for (int c = 0; c < 2; ++c) {
    threads.emplace_back([&, c] {
      test::Rng rng{0xABCDu + static_cast<std::uint64_t>(c)};
      for (int i = 0; i < 1000; ++i) {
        Bytes b = arena.take(1 + rng.below(20000));
        b[0] = 0xFF;
        arena.recycle(std::move(b));
      }
    });
  }
  for (auto& t : threads) t.join();

  const auto s = arena.stats();
  const std::int64_t takes =
      static_cast<std::int64_t>(kProducers) * kPerProducer + 2 * 1000;
  EXPECT_EQ(s.hits + s.misses, takes);            // every take accounted
  EXPECT_EQ(s.recycles + s.discards, takes);      // every buffer came back
  EXPECT_GE(s.bytes_pooled, 0);
  EXPECT_LE(s.bytes_pooled,
            static_cast<std::int64_t>(cfg.max_buffers_per_class) * 64 * 1024 *
                12);  // loose: every class at its bound
}

}  // namespace
}  // namespace tempo
