// XDR substrate tests: primitive round-trips, golden wire vectors
// (RFC 4506 layouts), overflow accounting, record-marked streams.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/endian.h"
#include "common/rng.h"
#include "xdr/primitives.h"
#include "xdr/xdrmem.h"
#include "xdr/xdrrec.h"

namespace tempo::xdr {
namespace {

class XdrMemPair {
 public:
  explicit XdrMemPair(std::size_t size = 1024) : buf_(size) {}

  XdrMem encoder() {
    return XdrMem(MutableByteSpan(buf_.data(), buf_.size()), XdrOp::kEncode);
  }
  XdrMem decoder(std::size_t len) {
    return XdrMem(MutableByteSpan(buf_.data(), len), XdrOp::kDecode);
  }
  Bytes& buf() { return buf_; }

 private:
  Bytes buf_;
};

TEST(XdrMem, PutGetLongGolden) {
  XdrMemPair p;
  auto enc = p.encoder();
  ASSERT_TRUE(enc.putlong(0x01020304));
  ASSERT_TRUE(enc.putlong(-1));
  EXPECT_EQ(enc.getpos(), 8u);
  // Big-endian on the wire.
  EXPECT_EQ(p.buf()[0], 0x01);
  EXPECT_EQ(p.buf()[1], 0x02);
  EXPECT_EQ(p.buf()[2], 0x03);
  EXPECT_EQ(p.buf()[3], 0x04);
  EXPECT_EQ(p.buf()[4], 0xFF);

  auto dec = p.decoder(8);
  std::int32_t a = 0, b = 0;
  ASSERT_TRUE(dec.getlong(&a));
  ASSERT_TRUE(dec.getlong(&b));
  EXPECT_EQ(a, 0x01020304);
  EXPECT_EQ(b, -1);
}

TEST(XdrMem, OverflowSemantics) {
  Bytes buf(7);  // less than two words
  XdrMem enc(MutableByteSpan(buf.data(), buf.size()), XdrOp::kEncode);
  EXPECT_TRUE(enc.putlong(1));
  EXPECT_FALSE(enc.putlong(2));  // x_handy went negative
  // Like the original: once x_handy is negative the stream stays dead.
  EXPECT_FALSE(enc.putlong(3));
}

TEST(XdrMem, SetposGetposInline) {
  Bytes buf(64);
  XdrMem x(MutableByteSpan(buf.data(), buf.size()), XdrOp::kEncode);
  ASSERT_TRUE(x.putlong(1));
  const std::size_t mark = x.getpos();
  ASSERT_TRUE(x.putlong(2));
  ASSERT_TRUE(x.setpos(mark));
  ASSERT_TRUE(x.putlong(7));
  EXPECT_EQ(load_be32(buf.data() + 4), 7u);

  std::uint8_t* inl = x.inline_bytes(8);
  ASSERT_NE(inl, nullptr);
  EXPECT_EQ(inl, buf.data() + 8);
  EXPECT_EQ(x.inline_bytes(3), nullptr);       // not a multiple of 4
  EXPECT_EQ(x.inline_bytes(1 << 20), nullptr); // too big
}

TEST(Primitives, IntRoundTripExtremes) {
  for (std::int32_t v : {std::numeric_limits<std::int32_t>::min(), -1, 0, 1,
                         std::numeric_limits<std::int32_t>::max()}) {
    XdrMemPair p;
    auto enc = p.encoder();
    std::int32_t in = v;
    ASSERT_TRUE(xdr_int(enc, in));
    auto dec = p.decoder(4);
    std::int32_t out = 0;
    ASSERT_TRUE(xdr_int(dec, out));
    EXPECT_EQ(out, v);
  }
}

TEST(Primitives, HyperGolden) {
  XdrMemPair p;
  auto enc = p.encoder();
  std::int64_t v = 0x0102030405060708ll;
  ASSERT_TRUE(xdr_hyper(enc, v));
  // Most significant word first.
  EXPECT_EQ(load_be32(p.buf().data()), 0x01020304u);
  EXPECT_EQ(load_be32(p.buf().data() + 4), 0x05060708u);
  auto dec = p.decoder(8);
  std::int64_t out = 0;
  ASSERT_TRUE(xdr_hyper(dec, out));
  EXPECT_EQ(out, v);
}

TEST(Primitives, ShortRangeChecks) {
  XdrMemPair p;
  auto enc = p.encoder();
  std::int32_t wide = 70000;  // out of i16 range
  ASSERT_TRUE(xdr_long(enc, wide));
  auto dec = p.decoder(4);
  std::int16_t s = 0;
  EXPECT_FALSE(xdr_short(dec, s));
}

TEST(Primitives, BoolStrictness) {
  XdrMemPair p;
  auto enc = p.encoder();
  std::int32_t two = 2;
  ASSERT_TRUE(xdr_long(enc, two));
  auto dec = p.decoder(4);
  bool b = false;
  EXPECT_FALSE(xdr_bool(dec, b));  // RFC 4506: only 0 or 1
}

TEST(Primitives, FloatDoubleRoundTrip) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    XdrMemPair p;
    auto enc = p.encoder();
    float f = static_cast<float>(rng.next_double() * 1e6 - 5e5);
    double d = rng.next_double() * 1e12 - 5e11;
    float f_in = f;
    double d_in = d;
    ASSERT_TRUE(xdr_float(enc, f_in));
    ASSERT_TRUE(xdr_double(enc, d_in));
    auto dec = p.decoder(12);
    float f_out = 0;
    double d_out = 0;
    ASSERT_TRUE(xdr_float(dec, f_out));
    ASSERT_TRUE(xdr_double(dec, d_out));
    EXPECT_EQ(f_out, f);
    EXPECT_EQ(d_out, d);
  }
  // NaN and infinities survive bit-exactly.
  XdrMemPair p;
  auto enc = p.encoder();
  float nanf = std::numeric_limits<float>::quiet_NaN();
  double inf = std::numeric_limits<double>::infinity();
  ASSERT_TRUE(xdr_float(enc, nanf));
  ASSERT_TRUE(xdr_double(enc, inf));
  auto dec = p.decoder(12);
  float f_out = 0;
  double d_out = 0;
  ASSERT_TRUE(xdr_float(dec, f_out));
  ASSERT_TRUE(xdr_double(dec, d_out));
  EXPECT_TRUE(std::isnan(f_out));
  EXPECT_TRUE(std::isinf(d_out));
}

TEST(Primitives, OpaquePaddingGolden) {
  XdrMemPair p;
  auto enc = p.encoder();
  Bytes data = {0xAA, 0xBB, 0xCC, 0xDD, 0xEE};
  ASSERT_TRUE(xdr_opaque(enc, MutableByteSpan(data.data(), data.size())));
  EXPECT_EQ(enc.getpos(), 8u);  // 5 bytes padded to 8
  EXPECT_EQ(p.buf()[4], 0xEE);
  EXPECT_EQ(p.buf()[5], 0x00);
  EXPECT_EQ(p.buf()[6], 0x00);
  EXPECT_EQ(p.buf()[7], 0x00);
}

TEST(Primitives, StringGoldenAndBounds) {
  XdrMemPair p;
  auto enc = p.encoder();
  std::string s = "hello";
  ASSERT_TRUE(xdr_string(enc, s, 32));
  EXPECT_EQ(enc.getpos(), 12u);  // 4 length + 8 padded body
  EXPECT_EQ(load_be32(p.buf().data()), 5u);
  EXPECT_EQ(p.buf()[4], 'h');
  EXPECT_EQ(p.buf()[9], 0x00);  // padding

  auto dec = p.decoder(12);
  std::string out;
  ASSERT_TRUE(xdr_string(dec, out, 32));
  EXPECT_EQ(out, "hello");

  // Decode-side bound enforcement: max_len 4 rejects length 5.
  auto dec2 = p.decoder(12);
  std::string out2;
  EXPECT_FALSE(xdr_string(dec2, out2, 4));

  // Encode-side bound enforcement.
  auto enc2 = p.encoder();
  std::string big(100, 'x');
  EXPECT_FALSE(xdr_string(enc2, big, 10));
}

TEST(Primitives, BytesVarOpaque) {
  XdrMemPair p;
  auto enc = p.encoder();
  Bytes in = {1, 2, 3};
  ASSERT_TRUE(xdr_bytes(enc, in, 100));
  auto dec = p.decoder(enc.getpos());
  Bytes out;
  ASSERT_TRUE(xdr_bytes(dec, out, 100));
  EXPECT_EQ(out, in);
}

TEST(Primitives, ArrayAndVectorRoundTrip) {
  XdrMemPair p(8192);
  auto enc = p.encoder();
  std::vector<std::int32_t> in = {5, -4, 3, -2, 1};
  ASSERT_TRUE(xdr_array<std::int32_t>(enc, in, 100, &xdr_int));
  EXPECT_EQ(enc.getpos(), 4u + 20u);

  auto dec = p.decoder(enc.getpos());
  std::vector<std::int32_t> out;
  ASSERT_TRUE(xdr_array<std::int32_t>(dec, out, 100, &xdr_int));
  EXPECT_EQ(out, in);

  // Bound enforcement on decode.
  auto dec2 = p.decoder(24);
  std::vector<std::int32_t> out2;
  EXPECT_FALSE(xdr_array<std::int32_t>(dec2, out2, 4, &xdr_int));

  // FREE releases storage.
  XdrMem freer(MutableByteSpan(p.buf().data(), 0), XdrOp::kFree);
  ASSERT_TRUE(xdr_array<std::int32_t>(freer, out, 100, &xdr_int));
  EXPECT_TRUE(out.empty());
}

TEST(Primitives, OptionalRoundTrip) {
  XdrMemPair p;
  auto enc = p.encoder();
  std::optional<std::int32_t> some = 42, none;
  ASSERT_TRUE(xdr_optional<std::int32_t>(enc, some, &xdr_int));
  ASSERT_TRUE(xdr_optional<std::int32_t>(enc, none, &xdr_int));
  EXPECT_EQ(enc.getpos(), 12u);  // (flag+value) + flag

  auto dec = p.decoder(12);
  std::optional<std::int32_t> o1, o2 = 9;
  ASSERT_TRUE(xdr_optional<std::int32_t>(dec, o1, &xdr_int));
  ASSERT_TRUE(xdr_optional<std::int32_t>(dec, o2, &xdr_int));
  ASSERT_TRUE(o1.has_value());
  EXPECT_EQ(*o1, 42);
  EXPECT_FALSE(o2.has_value());
}

TEST(Primitives, EnumRoundTrip) {
  enum class Color : std::int32_t { kRed = 0, kBlue = 5 };
  XdrMemPair p;
  auto enc = p.encoder();
  Color c = Color::kBlue;
  ASSERT_TRUE(xdr_enum(enc, c));
  auto dec = p.decoder(4);
  Color out = Color::kRed;
  ASSERT_TRUE(xdr_enum(dec, out));
  EXPECT_EQ(out, Color::kBlue);
}

// ---- record-marked streams (RPC over TCP) ------------------------------

struct Pipe {
  Bytes data;
  std::size_t read_pos = 0;

  RecWriter writer() {
    return [this](ByteSpan b) {
      data.insert(data.end(), b.begin(), b.end());
      return true;
    };
  }
  // Reader that returns at most `chunk` bytes per call (exercises
  // partial reads).
  RecReader reader(std::size_t chunk = 3) {
    return [this, chunk](MutableByteSpan out) -> std::size_t {
      const std::size_t avail = data.size() - read_pos;
      const std::size_t n = std::min({avail, out.size(), chunk});
      std::copy(data.begin() + static_cast<std::ptrdiff_t>(read_pos),
                data.begin() + static_cast<std::ptrdiff_t>(read_pos + n),
                out.begin());
      read_pos += n;
      return n;
    };
  }
};

TEST(XdrRec, SingleFragmentRoundTrip) {
  Pipe pipe;
  XdrRec enc(XdrOp::kEncode, pipe.writer(), nullptr);
  for (std::int32_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(enc.putlong(i * 3));
  }
  ASSERT_TRUE(enc.end_of_record());
  // Header: last-fragment flag + length 40.
  EXPECT_EQ(load_be32(pipe.data.data()), 0x80000000u | 40u);

  XdrRec dec(XdrOp::kDecode, nullptr, pipe.reader());
  for (std::int32_t i = 0; i < 10; ++i) {
    std::int32_t v = -1;
    ASSERT_TRUE(dec.getlong(&v));
    EXPECT_EQ(v, i * 3);
  }
  EXPECT_TRUE(dec.at_end_of_record());
  std::int32_t extra;
  EXPECT_FALSE(dec.getlong(&extra));  // reading past the record fails
}

TEST(XdrRec, MultiFragmentAndSkip) {
  Pipe pipe;
  XdrRec enc(XdrOp::kEncode, pipe.writer(), nullptr, /*frag_size=*/8);
  for (std::int32_t i = 0; i < 6; ++i) {
    ASSERT_TRUE(enc.putlong(100 + i));  // forces several fragments
  }
  ASSERT_TRUE(enc.end_of_record());
  // Second record.
  ASSERT_TRUE(enc.putlong(777));
  ASSERT_TRUE(enc.end_of_record());

  XdrRec dec(XdrOp::kDecode, nullptr, pipe.reader(5));
  std::int32_t v = 0;
  ASSERT_TRUE(dec.getlong(&v));
  EXPECT_EQ(v, 100);
  // Skip the rest of record 1, land on record 2.
  ASSERT_TRUE(dec.skip_record());
  ASSERT_TRUE(dec.getlong(&v));
  EXPECT_EQ(v, 777);
}

TEST(XdrRec, BrokenPipeFails) {
  XdrRec enc(XdrOp::kEncode, [](ByteSpan) { return false; }, nullptr);
  ASSERT_TRUE(enc.putlong(1));       // buffered
  EXPECT_FALSE(enc.end_of_record()); // flush hits the broken sink

  XdrRec dec(XdrOp::kDecode, nullptr,
             [](MutableByteSpan) -> std::size_t { return 0; });
  std::int32_t v;
  EXPECT_FALSE(dec.getlong(&v));
}

// Property: random mixed sequences round-trip through xdrmem.
class MixedRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MixedRoundTrip, EncodeDecode) {
  Rng rng(GetParam());
  XdrMemPair p(16384);
  auto enc = p.encoder();

  std::vector<std::int32_t> ints;
  std::vector<std::uint64_t> hypers;
  std::vector<std::string> strings;
  const int n = 1 + static_cast<int>(rng.next_below(30));
  for (int i = 0; i < n; ++i) {
    std::int32_t a = static_cast<std::int32_t>(rng.next_u32());
    std::uint64_t h = rng.next_u64();
    std::string s(rng.next_below(20), 'q');
    ints.push_back(a);
    hypers.push_back(h);
    strings.push_back(s);
    ASSERT_TRUE(xdr_int(enc, a));
    ASSERT_TRUE(xdr_u_hyper(enc, h));
    ASSERT_TRUE(xdr_string(enc, s, 64));
  }

  auto dec = p.decoder(enc.getpos());
  for (int i = 0; i < n; ++i) {
    std::int32_t a;
    std::uint64_t h;
    std::string s;
    ASSERT_TRUE(xdr_int(dec, a));
    ASSERT_TRUE(xdr_u_hyper(dec, h));
    ASSERT_TRUE(xdr_string(dec, s, 64));
    EXPECT_EQ(a, ints[static_cast<std::size_t>(i)]);
    EXPECT_EQ(h, hypers[static_cast<std::size_t>(i)]);
    EXPECT_EQ(s, strings[static_cast<std::size_t>(i)]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MixedRoundTrip,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

}  // namespace
}  // namespace tempo::xdr
