// Reactor subsystem tests: fd readiness + cross-thread post on both
// backends, the event-driven server runtime end-to-end over loopback
// UDP and TCP (same workloads as the threaded ServerRuntime e2e in
// test_spec_cache.cpp), datagram batch draining, slow-peer isolation
// (a trickling TCP peer must not delay anyone else), and the
// ServerRuntime::stop() drain regression.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/endian.h"
#include "core/service.h"
#include "core/spec_cache.h"
#include "core/spec_client.h"
#include "core/stubspec.h"
#include "net/reactor.h"
#include "net/tcp.h"
#include "net/udp.h"
#include "rpc/client.h"
#include "rpc/event_runtime.h"
#include "rpc/rpc_msg.h"
#include "rpc/svc.h"
#include "xdr/primitives.h"
#include "xdr/xdrmem.h"
#include "xdr/xdrrec.h"

namespace tempo {
namespace {

constexpr std::uint32_t kProg = 0x20000888;
constexpr std::uint32_t kVers = 1;
constexpr std::uint32_t kProc = 7;

idl::ProcDef echo_array_proc(std::uint32_t bound = 2000) {
  idl::ProcDef proc;
  proc.name = "ECHO";
  proc.number = kProc;
  proc.arg_type = idl::t_array_var(idl::t_int(), bound);
  proc.res_type = idl::t_array_var(idl::t_int(), bound);
  return proc;
}

core::SpecConfig cfg_for(std::uint32_t n) {
  core::SpecConfig cfg;
  cfg.arg_counts = {n};
  cfg.res_counts = {n};
  return cfg;
}

// ---------------------------------------------------- Reactor basics ---

class ReactorBackends
    : public ::testing::TestWithParam<net::ReactorBackend> {};

TEST_P(ReactorBackends, PipeReadinessAndCrossThreadPost) {
  if (GetParam() == net::ReactorBackend::kUring &&
      !net::Reactor::uring_supported()) {
    GTEST_SKIP() << "io_uring unavailable on this kernel";
  }
  net::Reactor r(GetParam());
  ASSERT_TRUE(r.ok());
  switch (GetParam()) {
    case net::ReactorBackend::kAuto:
      // On Linux the default backend must be epoll.
#if defined(__linux__)
      EXPECT_STREQ(r.backend(), "epoll");
#endif
      break;
    case net::ReactorBackend::kPoll:
      EXPECT_STREQ(r.backend(), "poll");
      break;
    case net::ReactorBackend::kUring:
      EXPECT_STREQ(r.backend(), "uring");
      break;
    default:
      break;
  }

  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  int reads_seen = 0;
  ASSERT_TRUE(r.add(fds[0], net::kEventRead, [&](unsigned events) {
    EXPECT_TRUE(events & net::kEventRead);
    char buf[8];
    (void)!::read(fds[0], buf, sizeof(buf));
    ++reads_seen;
  }));

  EXPECT_EQ(r.poll_once(0), 0);  // nothing ready yet
  ASSERT_EQ(::write(fds[1], "x", 1), 1);
  EXPECT_EQ(r.poll_once(1000), 1);
  EXPECT_EQ(reads_seen, 1);

  // post() runs on the reactor thread and pops a blocked poll.
  std::atomic<bool> ran{false};
  std::thread poster([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    r.post([&] { ran.store(true); });
  });
  const auto t0 = std::chrono::steady_clock::now();
  while (!ran.load() &&
         std::chrono::steady_clock::now() - t0 < std::chrono::seconds(2)) {
    r.poll_once(500);
  }
  poster.join();
  EXPECT_TRUE(ran.load());

  EXPECT_TRUE(r.remove(fds[0]));
  EXPECT_FALSE(r.remove(fds[0]));  // already gone
  ::close(fds[0]);
  ::close(fds[1]);
}

INSTANTIATE_TEST_SUITE_P(Backends, ReactorBackends,
                         ::testing::Values(net::ReactorBackend::kAuto,
                                           net::ReactorBackend::kPoll,
                                           net::ReactorBackend::kUring),
                         [](const auto& info) {
                           switch (info.param) {
                             case net::ReactorBackend::kPoll: return "poll";
                             case net::ReactorBackend::kUring: return "uring";
                             default: return "auto";
                           }
                         });

// ------------------------------------------- event runtime e2e (UDP) ---

class EventRuntimeBackends
    : public ::testing::TestWithParam<rpc::EventBackend> {};

TEST_P(EventRuntimeBackends, CachedServiceOverLoopbackUdp) {
  if (GetParam() == rpc::EventBackend::kUring &&
      !rpc::EventServerRuntime::uring_supported()) {
    GTEST_SKIP() << "io_uring unavailable on this kernel";
  }
  core::SpecCache cache(32, /*shards=*/4);

  rpc::SvcRegistry reg;
  core::CachedSpecService service(
      cache, echo_array_proc(), kProg, kVers,
      [](std::span<const std::uint32_t>, std::span<const std::uint32_t> args,
         std::span<std::uint32_t> results) {
        std::copy(args.begin(), args.end(), results.begin());
        return true;
      });
  service.install(reg);

  rpc::EventServerRuntimeConfig cfg;
  cfg.workers = 4;
  cfg.backend = GetParam();
  rpc::EventServerRuntime runtime(reg, cfg);
  ASSERT_TRUE(runtime.start().is_ok());
  if (GetParam() == rpc::EventBackend::kPoll) {
    EXPECT_STREQ(runtime.backend(), "poll");
  } else if (GetParam() == rpc::EventBackend::kUring) {
    EXPECT_STREQ(runtime.backend(), "uring");
  }

  const std::vector<std::uint32_t> sizes = {25, 50, 100};
  constexpr int kCallsPerClient = 30;
  std::atomic<int> bad{0};
  std::vector<std::thread> clients;
  for (auto n : sizes) {
    clients.emplace_back([&, n] {
      auto iface = core::SpecializedInterface::build(echo_array_proc(), kProg,
                                                     kVers, cfg_for(n));
      if (!iface.is_ok()) {
        ++bad;
        return;
      }
      net::UdpSocket sock;
      if (!sock.ok()) {
        ++bad;
        return;
      }
      core::SpecializedClient client(sock, runtime.udp_addr(), *iface);
      std::vector<std::uint32_t> args(n), results(n, 0);
      for (std::uint32_t i = 0; i < n; ++i) args[i] = n * 1000 + i;
      for (int round = 0; round < kCallsPerClient; ++round) {
        std::fill(results.begin(), results.end(), 0);
        Status st = client.call(args, results);
        if (!st.is_ok() || results != args) {
          ++bad;
          return;
        }
      }
    });
  }
  for (auto& t : clients) t.join();

  EXPECT_EQ(bad.load(), 0);
  EXPECT_EQ(cache.stats().misses, static_cast<std::int64_t>(sizes.size()));
  EXPECT_GE(runtime.stats().udp_datagrams.load(),
            static_cast<std::int64_t>(sizes.size()) * kCallsPerClient);
  EXPECT_GE(runtime.stats().udp_batches.load(), 1);
  runtime.stop();
}

INSTANTIATE_TEST_SUITE_P(Backends, EventRuntimeBackends,
                         ::testing::Values(rpc::EventBackend::kAuto,
                                           rpc::EventBackend::kPoll,
                                           rpc::EventBackend::kUring),
                         [](const auto& info) {
                           switch (info.param) {
                             case rpc::EventBackend::kPoll: return "poll";
                             case rpc::EventBackend::kUring: return "uring";
                             default: return "auto";
                           }
                         });

// Work stealing must be wakeup-driven: with the periodic re-sweep tick
// stretched far past the test's lifetime, a sharded runtime still
// completes an imbalanced workload promptly (idle shards are woken
// explicitly when a sibling's queue grows a backlog), and zero steals
// are attributed to the tick.
TEST(EventServerRuntime, StealingIsWakeupDrivenNotTickDriven) {
  core::SpecCache cache(32, /*shards=*/4);
  rpc::SvcRegistry reg;
  core::CachedSpecService service(
      cache, echo_array_proc(), kProg, kVers,
      [](std::span<const std::uint32_t>, std::span<const std::uint32_t> args,
         std::span<std::uint32_t> results) {
        std::copy(args.begin(), args.end(), results.begin());
        return true;
      });
  service.install(reg);

  rpc::EventServerRuntimeConfig cfg;
  cfg.reactors = 4;
  cfg.workers_per_shard = 1;
  cfg.steal_tick_ms = 5000;  // far beyond the test: the tick cannot help
  rpc::EventServerRuntime runtime(reg, cfg);
  ASSERT_TRUE(runtime.start().is_ok());

  constexpr std::uint32_t kN = 50;
  constexpr int kClients = 4;
  constexpr int kCalls = 40;
  std::atomic<int> bad{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      auto iface = core::SpecializedInterface::build(echo_array_proc(), kProg,
                                                     kVers, cfg_for(kN));
      net::UdpSocket sock;
      if (!iface.is_ok() || !sock.ok()) {
        ++bad;
        return;
      }
      core::SpecializedClient client(sock, runtime.udp_addr(), *iface);
      std::vector<std::uint32_t> args(kN), results(kN, 0);
      for (std::uint32_t i = 0; i < kN; ++i) args[i] = i;
      for (int round = 0; round < kCalls; ++round) {
        if (!client.call(args, results).is_ok() || results != args) {
          ++bad;
          return;
        }
      }
    });
  }
  for (auto& t : clients) t.join();

  EXPECT_EQ(bad.load(), 0);
  EXPECT_GE(runtime.stats().udp_datagrams.load(), kClients * kCalls);
  EXPECT_EQ(runtime.stats().tick_steals.load(), 0);
  runtime.stop();
}

// ------------------------------------------- event runtime e2e (TCP) ---

TEST(EventServerRuntime, CachedServiceOverTcpStream) {
  core::SpecCache cache(32, /*shards=*/4);

  rpc::SvcRegistry reg;
  core::CachedSpecService service(
      cache, echo_array_proc(), kProg, kVers,
      [](std::span<const std::uint32_t>, std::span<const std::uint32_t> args,
         std::span<std::uint32_t> results) {
        std::copy(args.begin(), args.end(), results.begin());
        return true;
      });
  service.install(reg);

  rpc::EventServerRuntimeConfig cfg;
  cfg.workers = 2;
  rpc::EventServerRuntime runtime(reg, cfg);
  ASSERT_TRUE(runtime.start().is_ok());

  const std::uint32_t n = 40;
  rpc::TcpClient client(runtime.tcp_addr(), kProg, kVers);
  ASSERT_TRUE(client.ok());
  for (int round = 0; round < 5; ++round) {
    std::vector<std::int32_t> sent(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      sent[i] = static_cast<std::int32_t>(round * 100 + i);
    }
    std::vector<std::int32_t> got;
    Status st = client.call(
        kProc,
        [&](xdr::XdrStream& x) {
          std::uint32_t count = n;
          if (!xdr::xdr_u_int(x, count)) return false;
          for (auto& v : sent) {
            if (!xdr::xdr_int(x, v)) return false;
          }
          return true;
        },
        [&](xdr::XdrStream& x) {
          std::uint32_t count = 0;
          if (!xdr::xdr_u_int(x, count) || count != n) return false;
          got.resize(count);
          for (auto& v : got) {
            if (!xdr::xdr_int(x, v)) return false;
          }
          return true;
        });
    ASSERT_TRUE(st.is_ok()) << st.to_string();
    ASSERT_EQ(got, sent);
  }

  EXPECT_EQ(runtime.stats().tcp_connections.load(), 1);
  EXPECT_EQ(runtime.stats().tcp_calls.load(), 5);
  EXPECT_EQ(cache.stats().misses, 1);
  // A reactor-assembled record is one contiguous buffer, so unlike the
  // threaded runtime's xdrrec stream the residual decode plan can
  // XDR_INLINE the arguments: TCP requests hit the fast path too.
  EXPECT_GT(service.stats().fast_path.load(), 0);
  runtime.stop();
}

// ------------------------------------------------- UDP burst batching ---

TEST(EventServerRuntime, DrainsDatagramBurstsInBatches) {
  rpc::SvcRegistry reg;
  reg.register_proc(kProg, kVers, kProc,
                    [](xdr::XdrStream& in, xdr::XdrStream& out) {
                      std::int32_t v = 0;
                      if (!xdr::xdr_int(in, v)) return false;
                      return xdr::xdr_int(out, v);
                    });

  rpc::EventServerRuntimeConfig cfg;
  cfg.workers = 2;
  cfg.enable_tcp = false;
  rpc::EventServerRuntime runtime(reg, cfg);
  ASSERT_TRUE(runtime.start().is_ok());

  // Blast a burst without waiting for replies, then collect them all.
  constexpr int kBurst = 24;
  net::UdpSocket sock;
  ASSERT_TRUE(sock.ok());
  Bytes msg(256);
  for (int i = 0; i < kBurst; ++i) {
    xdr::XdrMem x(MutableByteSpan(msg.data(), msg.size()),
                  xdr::XdrOp::kEncode);
    rpc::CallHeader hdr;
    hdr.xid = 0x1000u + static_cast<std::uint32_t>(i);
    hdr.prog = kProg;
    hdr.vers = kVers;
    hdr.proc = kProc;
    std::int32_t v = i;
    ASSERT_TRUE(rpc::xdr_call_header(x, hdr));
    ASSERT_TRUE(xdr::xdr_int(x, v));
    ASSERT_TRUE(
        sock.send_to(runtime.udp_addr(), ByteSpan(msg.data(), x.getpos()))
            .is_ok());
  }
  int replies = 0;
  Bytes reply(256);
  while (replies < kBurst) {
    auto got = sock.recv_from(
        nullptr, MutableByteSpan(reply.data(), reply.size()), 2000);
    if (!got.is_ok()) break;
    ++replies;
  }
  EXPECT_EQ(replies, kBurst);
  EXPECT_GE(runtime.stats().udp_datagrams.load(), kBurst);
  // The whole point of recv_many: far fewer wakeups than datagrams.
  EXPECT_LE(runtime.stats().udp_batches.load(),
            runtime.stats().udp_datagrams.load());
  // Replies flush through per-worker sendmmsg accumulators: at least
  // one batch happened, never more batches than replies, and on
  // loopback nothing may be dropped — every send either succeeded
  // first try or survived the reactor retry.
  EXPECT_GE(runtime.stats().udp_reply_batches.load(), 1);
  EXPECT_LE(runtime.stats().udp_reply_batches.load(),
            static_cast<std::int64_t>(kBurst));
  EXPECT_EQ(runtime.stats().reply_send_failures.load(), 0);
  runtime.stop();
}

// -------------------------------------- large-record replies (bugfix) ---

// Reply buffers used to be hard-capped at 65000 bytes while the
// runtimes accept records up to max_record_bytes (1 MB): a handler
// echoing a ~600 KB array back failed to encode its reply and the
// client saw GARBAGE_ARGS.  Both runtimes must now serve it.
template <typename RuntimeT, typename ConfigT>
void expect_large_tcp_echo_works() {
  rpc::SvcRegistry reg;
  reg.register_proc(kProg, kVers, kProc,
                    [](xdr::XdrStream& in, xdr::XdrStream& out) {
                      std::uint32_t count = 0;
                      if (!xdr::xdr_u_int(in, count) || count > (1u << 18)) {
                        return false;
                      }
                      if (!xdr::xdr_u_int(out, count)) return false;
                      for (std::uint32_t i = 0; i < count; ++i) {
                        std::int32_t v = 0;
                        if (!xdr::xdr_int(in, v) || !xdr::xdr_int(out, v)) {
                          return false;
                        }
                      }
                      return true;
                    });

  ConfigT cfg;
  cfg.workers = 2;
  cfg.enable_udp = false;
  RuntimeT runtime(reg, cfg);
  ASSERT_TRUE(runtime.start().is_ok());

  const std::uint32_t n = 150000;  // ~600 KB of payload each way
  rpc::TcpClient client(runtime.tcp_addr(), kProg, kVers);
  ASSERT_TRUE(client.ok());
  std::vector<std::int32_t> sent(n), got;
  for (std::uint32_t i = 0; i < n; ++i) {
    sent[i] = static_cast<std::int32_t>(i * 2654435761u);
  }
  Status st = client.call(
      kProc,
      [&](xdr::XdrStream& x) {
        std::uint32_t count = n;
        if (!xdr::xdr_u_int(x, count)) return false;
        for (auto& v : sent) {
          if (!xdr::xdr_int(x, v)) return false;
        }
        return true;
      },
      [&](xdr::XdrStream& x) {
        std::uint32_t count = 0;
        if (!xdr::xdr_u_int(x, count) || count != n) return false;
        got.resize(count);
        for (auto& v : got) {
          if (!xdr::xdr_int(x, v)) return false;
        }
        return true;
      });
  ASSERT_TRUE(st.is_ok()) << st.to_string();
  EXPECT_EQ(got, sent);
  EXPECT_EQ(reg.stats().protocol_errors.load(), 0);
  runtime.stop();
}

TEST(EventServerRuntime, LargeTcpEchoReply) {
  expect_large_tcp_echo_works<rpc::EventServerRuntime,
                              rpc::EventServerRuntimeConfig>();
}

TEST(ServerRuntime, LargeTcpEchoReply) {
  expect_large_tcp_echo_works<rpc::ServerRuntime, rpc::ServerRuntimeConfig>();
}

// TCP replies are not bounded by their request: a read-style procedure
// turns a tiny call into a large result.  Every TCP adapter provisions
// kMaxStreamReplyBytes, so this must work on both runtimes too.
template <typename RuntimeT, typename ConfigT>
void expect_large_reply_from_small_request_works() {
  rpc::SvcRegistry reg;
  reg.register_proc(kProg, kVers, kProc,
                    [](xdr::XdrStream& in, xdr::XdrStream& out) {
                      std::uint32_t count = 0;  // "read N ints" request
                      if (!xdr::xdr_u_int(in, count) || count > (1u << 18)) {
                        return false;
                      }
                      if (!xdr::xdr_u_int(out, count)) return false;
                      for (std::uint32_t i = 0; i < count; ++i) {
                        std::int32_t v = static_cast<std::int32_t>(i ^ count);
                        if (!xdr::xdr_int(out, v)) return false;
                      }
                      return true;
                    });

  ConfigT cfg;
  cfg.workers = 2;
  cfg.enable_udp = false;
  RuntimeT runtime(reg, cfg);
  ASSERT_TRUE(runtime.start().is_ok());

  const std::uint32_t n = 150000;  // ~40-byte call, ~600 KB reply
  rpc::TcpClient client(runtime.tcp_addr(), kProg, kVers);
  ASSERT_TRUE(client.ok());
  std::vector<std::int32_t> got;
  Status st = client.call(
      kProc,
      [&](xdr::XdrStream& x) {
        std::uint32_t count = n;
        return xdr::xdr_u_int(x, count);
      },
      [&](xdr::XdrStream& x) {
        std::uint32_t count = 0;
        if (!xdr::xdr_u_int(x, count) || count != n) return false;
        got.resize(count);
        for (auto& v : got) {
          if (!xdr::xdr_int(x, v)) return false;
        }
        return true;
      });
  ASSERT_TRUE(st.is_ok()) << st.to_string();
  ASSERT_EQ(got.size(), static_cast<std::size_t>(n));
  for (std::uint32_t i = 0; i < n; ++i) {
    ASSERT_EQ(got[i], static_cast<std::int32_t>(i ^ n));
  }
  EXPECT_EQ(reg.stats().protocol_errors.load(), 0);
  runtime.stop();
}

TEST(EventServerRuntime, LargeReplyFromSmallRequest) {
  expect_large_reply_from_small_request_works<rpc::EventServerRuntime,
                                              rpc::EventServerRuntimeConfig>();
}

TEST(ServerRuntime, LargeReplyFromSmallRequest) {
  expect_large_reply_from_small_request_works<rpc::ServerRuntime,
                                              rpc::ServerRuntimeConfig>();
}

// A TCP record that goes ready while the worker queue is full must be
// re-dispatched once the queue drains, even though no further fd event
// or completion fires for that connection (the reactor ticks while any
// conn is parked).
TEST(EventServerRuntime, QueueFullTcpRecordIsRetriedNotParkedForever) {
  std::atomic<int> served{0};
  rpc::SvcRegistry reg;
  reg.register_proc(kProg, kVers, kProc,
                    [&](xdr::XdrStream& in, xdr::XdrStream& out) {
                      std::int32_t v = 0;
                      if (!xdr::xdr_int(in, v)) return false;
                      // Slow handler so the 1-slot queue stays full
                      // while the TCP record arrives.
                      std::this_thread::sleep_for(
                          std::chrono::milliseconds(150));
                      ++served;
                      return xdr::xdr_int(out, v);
                    });

  rpc::EventServerRuntimeConfig cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 1;
  rpc::EventServerRuntime runtime(reg, cfg);
  ASSERT_TRUE(runtime.start().is_ok());

  // Two datagrams: the first occupies the only worker, the second fills
  // the only queue slot.
  net::UdpSocket sock;
  ASSERT_TRUE(sock.ok());
  Bytes msg(64);
  for (int i = 0; i < 2; ++i) {
    xdr::XdrMem x(MutableByteSpan(msg.data(), msg.size()),
                  xdr::XdrOp::kEncode);
    rpc::CallHeader hdr;
    hdr.xid = 0x2000u + static_cast<std::uint32_t>(i);
    hdr.prog = kProg;
    hdr.vers = kVers;
    hdr.proc = kProc;
    std::int32_t v = i;
    ASSERT_TRUE(rpc::xdr_call_header(x, hdr));
    ASSERT_TRUE(xdr::xdr_int(x, v));
    ASSERT_TRUE(
        sock.send_to(runtime.udp_addr(), ByteSpan(msg.data(), x.getpos()))
            .is_ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
  }

  // Now a TCP request arrives while the queue is still full.
  Status st;
  std::thread tcp([&] {
    rpc::TcpClient client(runtime.tcp_addr(), kProg, kVers);
    if (!client.ok()) {
      st = unavailable("connect failed");
      return;
    }
    st = client.call(
        kProc,
        [](xdr::XdrStream& x) {
          std::int32_t v = 7;
          return xdr::xdr_int(x, v);
        },
        [](xdr::XdrStream& x) {
          std::int32_t v = 0;
          return xdr::xdr_int(x, v) && v == 7;
        });
  });
  tcp.join();

  EXPECT_TRUE(st.is_ok()) << st.to_string();
  EXPECT_EQ(served.load(), 3);
  runtime.stop();
}

// A record bigger than any UDP datagram (the reactor allows records up
// to max_record_bytes) must flow through dispatch without corrupting
// the per-thread scratch buffers, and the server must stay healthy.
TEST(EventServerRuntime, OversizedRecordDoesNotCorruptServer) {
  rpc::SvcRegistry reg;
  reg.register_proc(kProg, kVers, kProc,
                    [](xdr::XdrStream& in, xdr::XdrStream& out) {
                      std::int32_t v = 0;
                      if (!xdr::xdr_int(in, v)) return false;
                      return xdr::xdr_int(out, v);
                    });

  rpc::EventServerRuntimeConfig cfg;
  cfg.workers = 2;
  rpc::EventServerRuntime runtime(reg, cfg);
  ASSERT_TRUE(runtime.start().is_ok());

  // 100 KB of garbage in one record: larger than the 65000-byte UDP
  // scratch, smaller than max_record_bytes.  The dispatch fails (no
  // valid header) and the request is dropped — but nothing may crash.
  {
    auto conn = net::TcpConn::connect(runtime.tcp_addr());
    ASSERT_NE(conn, nullptr);
    constexpr std::uint32_t kBig = 100000;
    Bytes frame(4 + kBig, 0xAB);
    store_be32(frame.data(), xdr::XdrRec::kLastFragFlag | kBig);
    ASSERT_TRUE(conn->write_all(ByteSpan(frame.data(), frame.size())).is_ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    conn->close();
  }

  // The server still answers correctly afterwards.
  rpc::TcpClient client(runtime.tcp_addr(), kProg, kVers);
  ASSERT_TRUE(client.ok());
  Status st = client.call(
      kProc,
      [](xdr::XdrStream& x) {
        std::int32_t v = 99;
        return xdr::xdr_int(x, v);
      },
      [](xdr::XdrStream& x) {
        std::int32_t v = 0;
        return xdr::xdr_int(x, v) && v == 99;
      });
  EXPECT_TRUE(st.is_ok()) << st.to_string();
  runtime.stop();
}

// ------------------------------------------------ slow-peer isolation ---

// A peer that trickles one byte every 10 ms holds its connection open
// for the whole test without ever completing a record.  On the
// threaded runtime this pins a worker; on the reactor runtime only the
// reassembly buffer grows.  Concurrent UDP and TCP callers must keep
// their p99 latency far below the trickle cadence.
TEST(EventServerRuntime, SlowPeerDoesNotStallOtherClients) {
  core::SpecCache cache(32, /*shards=*/4);
  rpc::SvcRegistry reg;
  core::CachedSpecService service(
      cache, echo_array_proc(), kProg, kVers,
      [](std::span<const std::uint32_t>, std::span<const std::uint32_t> args,
         std::span<std::uint32_t> results) {
        std::copy(args.begin(), args.end(), results.begin());
        return true;
      });
  service.install(reg);

  rpc::EventServerRuntimeConfig cfg;
  cfg.workers = 2;
  rpc::EventServerRuntime runtime(reg, cfg);
  ASSERT_TRUE(runtime.start().is_ok());

  std::atomic<bool> stop_trickle{false};
  std::thread trickler([&] {
    auto conn = net::TcpConn::connect(runtime.tcp_addr());
    if (!conn) return;
    // A valid record header promising 4000 payload bytes, delivered one
    // byte at a time.
    std::uint8_t header[4];
    store_be32(header, xdr::XdrRec::kLastFragFlag | 4000u);
    std::size_t sent = 0;
    while (!stop_trickle.load()) {
      const std::uint8_t byte = sent < 4 ? header[sent] : 0;
      if (!conn->write_all(ByteSpan(&byte, 1)).is_ok()) break;
      ++sent;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    conn->close();
  });

  // Give the trickler a head start so its connection is live first.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  constexpr int kCalls = 150;
  std::vector<double> udp_lat_ms, tcp_lat_ms;
  std::atomic<int> bad{0};

  std::thread udp_caller([&] {
    const std::uint32_t n = 50;
    auto iface = core::SpecializedInterface::build(echo_array_proc(), kProg,
                                                   kVers, cfg_for(n));
    net::UdpSocket sock;
    if (!iface.is_ok() || !sock.ok()) {
      ++bad;
      return;
    }
    core::SpecializedClient client(sock, runtime.udp_addr(), *iface);
    std::vector<std::uint32_t> args(n), results(n);
    for (std::uint32_t i = 0; i < n; ++i) args[i] = i;
    udp_lat_ms.reserve(kCalls);
    for (int i = 0; i < kCalls; ++i) {
      const auto t0 = std::chrono::steady_clock::now();
      if (!client.call(args, results).is_ok() || results != args) {
        ++bad;
        return;
      }
      udp_lat_ms.push_back(std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - t0)
                               .count());
    }
  });

  std::thread tcp_caller([&] {
    const std::uint32_t n = 50;
    rpc::TcpClient client(runtime.tcp_addr(), kProg, kVers);
    if (!client.ok()) {
      ++bad;
      return;
    }
    tcp_lat_ms.reserve(kCalls);
    for (int i = 0; i < kCalls; ++i) {
      std::vector<std::int32_t> sent(n, i), got;
      const auto t0 = std::chrono::steady_clock::now();
      Status st = client.call(
          kProc,
          [&](xdr::XdrStream& x) {
            std::uint32_t count = n;
            if (!xdr::xdr_u_int(x, count)) return false;
            for (auto& v : sent) {
              if (!xdr::xdr_int(x, v)) return false;
            }
            return true;
          },
          [&](xdr::XdrStream& x) {
            std::uint32_t count = 0;
            if (!xdr::xdr_u_int(x, count) || count != n) return false;
            got.resize(count);
            for (auto& v : got) {
              if (!xdr::xdr_int(x, v)) return false;
            }
            return true;
          });
      if (!st.is_ok() || got != sent) {
        ++bad;
        return;
      }
      tcp_lat_ms.push_back(std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - t0)
                               .count());
    }
  });

  udp_caller.join();
  tcp_caller.join();
  stop_trickle.store(true);
  trickler.join();

  ASSERT_EQ(bad.load(), 0);
  ASSERT_EQ(udp_lat_ms.size(), static_cast<std::size_t>(kCalls));
  ASSERT_EQ(tcp_lat_ms.size(), static_cast<std::size_t>(kCalls));

  auto p99 = [](std::vector<double> v) {
    const auto idx = static_cast<std::ptrdiff_t>(
        (v.size() * 99) / 100 == v.size() ? v.size() - 1 : (v.size() * 99) /
                                                               100);
    std::nth_element(v.begin(), v.begin() + idx, v.end());
    return v[static_cast<std::size_t>(idx)];
  };
  // The trickling peer advances one byte per 10 ms for the whole run;
  // an un-isolated runtime would show multi-second stalls.  200 ms is
  // orders of magnitude above a healthy loopback round trip but far
  // below any cross-connection stall, and tolerates CI scheduling
  // noise.
  EXPECT_LT(p99(udp_lat_ms), 200.0);
  EXPECT_LT(p99(tcp_lat_ms), 200.0);
  runtime.stop();
}

// ----------------------------------------- multi-reactor sharding ------

// Raw-conn helpers for the adversarial TCP tests: build a framed
// echo-int call record and read one framed reply off the wire.
Bytes framed_int_call(std::uint32_t xid, std::int32_t v) {
  Bytes msg(128);
  xdr::XdrMem x(MutableByteSpan(msg.data() + 4, msg.size() - 4),
                xdr::XdrOp::kEncode);
  rpc::CallHeader hdr;
  hdr.xid = xid;
  hdr.prog = kProg;
  hdr.vers = kVers;
  hdr.proc = kProc;
  EXPECT_TRUE(rpc::xdr_call_header(x, hdr));
  EXPECT_TRUE(xdr::xdr_int(x, v));
  store_be32(msg.data(),
             xdr::XdrRec::kLastFragFlag |
                 static_cast<std::uint32_t>(x.getpos()));
  msg.resize(4 + x.getpos());
  return msg;
}

// Reads one record-marked reply; empty on timeout/disconnect.
Bytes read_framed_reply(net::TcpConn& conn, int timeout_ms = 3000) {
  auto read_exact = [&](std::uint8_t* dst, std::size_t n) {
    std::size_t off = 0;
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    while (off < n && std::chrono::steady_clock::now() < deadline) {
      auto r = conn.read_some(MutableByteSpan(dst + off, n - off), 50);
      if (!r.is_ok()) {
        if (r.status().code() != StatusCode::kTimeout) return false;
        continue;
      }
      if (*r == 0) return false;
      off += *r;
    }
    return off == n;
  };
  std::uint8_t hdr[4];
  if (!read_exact(hdr, 4)) return {};
  const std::uint32_t word = load_be32(hdr);
  const std::uint32_t len = word & ~xdr::XdrRec::kLastFragFlag;
  Bytes body(len);
  if (len > 0 && !read_exact(body.data(), len)) return {};
  return body;
}

// N reactor shards, each with its own event loop and (with REUSEPORT)
// its own UDP socket; TCP connections partition across shards by fd.
// The whole client mix of the single-loop e2e must still be served, and
// the per-shard stats must aggregate into one coherent view.
TEST(EventServerRuntime, MultiReactorServesUdpAndTcpAcrossShards) {
  core::SpecCache cache(32, /*shards=*/4);
  rpc::SvcRegistry reg;
  core::CachedSpecService service(
      cache, echo_array_proc(), kProg, kVers,
      [](std::span<const std::uint32_t>, std::span<const std::uint32_t> args,
         std::span<std::uint32_t> results) {
        std::copy(args.begin(), args.end(), results.begin());
        return true;
      });
  service.install(reg);

  rpc::EventServerRuntimeConfig cfg;
  cfg.workers = 4;
  cfg.reactors = 4;
  rpc::EventServerRuntime runtime(reg, cfg);
  ASSERT_TRUE(runtime.start().is_ok());
  EXPECT_EQ(runtime.reactor_count(), 4);
#if defined(__linux__)
  // Every Linux this project supports has SO_REUSEPORT (3.9+): the UDP
  // plane must actually shard, not silently fall back.
  EXPECT_TRUE(runtime.udp_sharded());
#endif

  const std::vector<std::uint32_t> sizes = {25, 50, 75, 100};
  constexpr int kCallsPerClient = 25;
  constexpr int kTcpClients = 3;
  constexpr int kTcpCallsPerClient = 10;
  std::atomic<int> bad{0};

  std::vector<std::thread> clients;
  for (auto n : sizes) {
    clients.emplace_back([&, n] {
      auto iface = core::SpecializedInterface::build(echo_array_proc(), kProg,
                                                     kVers, cfg_for(n));
      net::UdpSocket sock;
      if (!iface.is_ok() || !sock.ok()) {
        ++bad;
        return;
      }
      core::SpecializedClient client(sock, runtime.udp_addr(), *iface);
      std::vector<std::uint32_t> args(n), results(n, 0);
      for (std::uint32_t i = 0; i < n; ++i) args[i] = n * 1000 + i;
      for (int round = 0; round < kCallsPerClient; ++round) {
        std::fill(results.begin(), results.end(), 0);
        if (!client.call(args, results).is_ok() || results != args) {
          ++bad;
          return;
        }
      }
    });
  }
  for (int t = 0; t < kTcpClients; ++t) {
    clients.emplace_back([&, t] {
      rpc::TcpClient client(runtime.tcp_addr(), kProg, kVers);
      if (!client.ok()) {
        ++bad;
        return;
      }
      const std::uint32_t n = 30;
      for (int round = 0; round < kTcpCallsPerClient; ++round) {
        std::vector<std::int32_t> sent(n, t * 100 + round), got;
        Status st = client.call(
            kProc,
            [&](xdr::XdrStream& x) {
              std::uint32_t count = n;
              if (!xdr::xdr_u_int(x, count)) return false;
              for (auto& v : sent) {
                if (!xdr::xdr_int(x, v)) return false;
              }
              return true;
            },
            [&](xdr::XdrStream& x) {
              std::uint32_t count = 0;
              if (!xdr::xdr_u_int(x, count) || count != n) return false;
              got.resize(count);
              for (auto& v : got) {
                if (!xdr::xdr_int(x, v)) return false;
              }
              return true;
            });
        if (!st.is_ok() || got != sent) {
          ++bad;
          return;
        }
      }
    });
  }
  for (auto& t : clients) t.join();

  EXPECT_EQ(bad.load(), 0);
  // Stats aggregate across shards into one coherent set of counters.
  EXPECT_GE(runtime.stats().udp_datagrams.load(),
            static_cast<std::int64_t>(sizes.size()) * kCallsPerClient);
  EXPECT_EQ(runtime.stats().tcp_connections.load(), kTcpClients);
  EXPECT_EQ(runtime.stats().tcp_calls.load(),
            kTcpClients * kTcpCallsPerClient);
  EXPECT_EQ(runtime.stats().reply_send_failures.load(), 0);
  runtime.stop();
}

// Regression: EventServerRuntime::stop() with N>1 shards must drain
// in-flight requests on EVERY shard.  Eight connections partition over
// four shards (round-robin assignment puts exactly two on each); each
// has one request queued behind two slow workers when stop() lands.  A
// drain that only joined or flushed shard 0 would orphan the replies
// owned by shards 1..3 and fail 6 of the 8 calls.
TEST(EventServerRuntime, MultiShardStopDrainsEveryShard) {
  rpc::SvcRegistry reg;
  reg.register_proc(kProg, kVers, kProc,
                    [](xdr::XdrStream& in, xdr::XdrStream& out) {
                      std::int32_t v = 0;
                      if (!xdr::xdr_int(in, v)) return false;
                      std::this_thread::sleep_for(
                          std::chrono::milliseconds(100));
                      return xdr::xdr_int(out, v);
                    });

  rpc::EventServerRuntimeConfig cfg;
  cfg.workers = 2;
  cfg.reactors = 4;
  cfg.enable_udp = false;
  rpc::EventServerRuntime runtime(reg, cfg);
  ASSERT_TRUE(runtime.start().is_ok());

  constexpr int kConns = 8;
  std::vector<Status> statuses(kConns, unavailable("not run"));
  std::vector<std::thread> threads;
  for (int i = 0; i < kConns; ++i) {
    threads.emplace_back([&, i] {
      rpc::TcpClient client(runtime.tcp_addr(), kProg, kVers);
      if (!client.ok()) {
        statuses[static_cast<std::size_t>(i)] = unavailable("connect failed");
        return;
      }
      statuses[static_cast<std::size_t>(i)] = client.call(
          kProc,
          [&](xdr::XdrStream& x) {
            std::int32_t v = 1000 + i;
            return xdr::xdr_int(x, v);
          },
          [&](xdr::XdrStream& x) {
            std::int32_t v = 0;
            return xdr::xdr_int(x, v) && v == 1000 + i;
          });
    });
  }
  // Let every request reach the worker queue (records parse and push
  // immediately; only two can be in a handler at once).
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  runtime.stop();  // must drain all shards, not just shard 0
  for (auto& t : threads) t.join();

  for (int i = 0; i < kConns; ++i) {
    EXPECT_TRUE(statuses[static_cast<std::size_t>(i)].is_ok())
        << "conn " << i << ": "
        << statuses[static_cast<std::size_t>(i)].to_string();
  }
}

// ------------------------------------- pipelined TCP (reply ring) ------

// With tcp_pipeline_depth > 1, several requests of ONE connection
// execute concurrently across the shard's workers — but the wire must
// behave exactly as if they ran one at a time.  Make the first
// requests deliberately slow so later ones FINISH first, then require
// every reply to come back in send order with its own XID and its own
// payload.  (Depth 1 is the serial regression: same assertions hold.)
TEST(EventServerRuntime, PipelinedTcpRepliesStayInWireOrder) {
  rpc::SvcRegistry reg;
  reg.register_proc(kProg, kVers, kProc,
                    [](xdr::XdrStream& in, xdr::XdrStream& out) {
                      std::int32_t v = 0;
                      if (!xdr::xdr_int(in, v)) return false;
                      // Earlier requests dwell longer: without the
                      // ordered reply ring, reply v would overtake
                      // reply v-1 on the wire.
                      if (v < 6) {
                        std::this_thread::sleep_for(
                            std::chrono::milliseconds(30 - 5 * v));
                      }
                      return xdr::xdr_int(out, v);
                    });

  for (const int depth : {8, 1}) {
    rpc::EventServerRuntimeConfig cfg;
    cfg.workers = 4;
    cfg.tcp_pipeline_depth = depth;
    cfg.enable_udp = false;
    rpc::EventServerRuntime runtime(reg, cfg);
    ASSERT_TRUE(runtime.start().is_ok());

    auto conn = net::TcpConn::connect(runtime.tcp_addr());
    ASSERT_NE(conn, nullptr);

    constexpr int kCalls = 32;
    Bytes wire;
    for (int i = 0; i < kCalls; ++i) {
      Bytes frame(256);
      xdr::XdrMem x(MutableByteSpan(frame.data() + 4, frame.size() - 4),
                    xdr::XdrOp::kEncode);
      rpc::CallHeader hdr;
      hdr.xid = 0x7A000000u + static_cast<std::uint32_t>(i);
      hdr.prog = kProg;
      hdr.vers = kVers;
      hdr.proc = kProc;
      std::int32_t v = i;
      ASSERT_TRUE(rpc::xdr_call_header(x, hdr));
      ASSERT_TRUE(xdr::xdr_int(x, v));
      store_be32(frame.data(), xdr::XdrRec::kLastFragFlag |
                                   static_cast<std::uint32_t>(x.getpos()));
      wire.insert(wire.end(), frame.begin(),
                  frame.begin() + static_cast<std::ptrdiff_t>(4 + x.getpos()));
    }
    // One burst: every call is on the socket before the first slow
    // handler finishes.
    ASSERT_TRUE(conn->write_all(ByteSpan(wire.data(), wire.size())).is_ok());

    auto read_exact = [&](std::uint8_t* dst, std::size_t n) {
      std::size_t off = 0;
      const auto give_up =
          std::chrono::steady_clock::now() + std::chrono::seconds(10);
      while (off < n && std::chrono::steady_clock::now() < give_up) {
        auto r = conn->read_some(MutableByteSpan(dst + off, n - off), 50);
        if (!r.is_ok()) {
          if (r.status().code() != StatusCode::kTimeout) return false;
          continue;
        }
        if (*r == 0) return false;
        off += *r;
      }
      return off == n;
    };

    for (int i = 0; i < kCalls; ++i) {
      std::uint8_t rhdr[4];
      ASSERT_TRUE(read_exact(rhdr, 4)) << "depth=" << depth << " call " << i;
      const std::uint32_t rlen = load_be32(rhdr) & ~xdr::XdrRec::kLastFragFlag;
      Bytes reply(rlen);
      ASSERT_TRUE(read_exact(reply.data(), rlen));
      // Strict wire order: reply i IS call i.
      EXPECT_EQ(load_be32(reply.data()),
                0x7A000000u + static_cast<std::uint32_t>(i))
          << "depth=" << depth;
      // The last word is the echoed int.
      EXPECT_EQ(load_be32(reply.data() + rlen - 4),
                static_cast<std::uint32_t>(i));
    }
    EXPECT_EQ(runtime.stats().tcp_calls.load(), kCalls);
    // Steady state runs on recycled arena slices: after 32 calls the
    // pool must be serving takes, not the allocator.
    EXPECT_GT(runtime.arena_stats().hits, 0);
    runtime.stop();
  }
}

// ------------------------------------------ adversarial TCP peers ------

// A peer that dies mid-record — either inside the 4-byte fragment
// header or inside the promised payload — must be reaped without
// disturbing anyone, and the server must keep serving.
TEST(EventServerRuntime, MidRecordDisconnectLeavesServerHealthy) {
  rpc::SvcRegistry reg;
  reg.register_proc(kProg, kVers, kProc,
                    [](xdr::XdrStream& in, xdr::XdrStream& out) {
                      std::int32_t v = 0;
                      if (!xdr::xdr_int(in, v)) return false;
                      return xdr::xdr_int(out, v);
                    });

  rpc::EventServerRuntimeConfig cfg;
  cfg.workers = 2;
  cfg.reactors = 2;
  rpc::EventServerRuntime runtime(reg, cfg);
  ASSERT_TRUE(runtime.start().is_ok());

  {
    // Dies two bytes into the fragment header.
    auto conn = net::TcpConn::connect(runtime.tcp_addr());
    ASSERT_NE(conn, nullptr);
    const std::uint8_t half_header[2] = {0x80, 0x00};
    ASSERT_TRUE(conn->write_all(ByteSpan(half_header, 2)).is_ok());
    conn->close();
  }
  {
    // Promises 4000 payload bytes, delivers 100, dies.
    auto conn = net::TcpConn::connect(runtime.tcp_addr());
    ASSERT_NE(conn, nullptr);
    Bytes partial(4 + 100, 0x42);
    store_be32(partial.data(), xdr::XdrRec::kLastFragFlag | 4000u);
    ASSERT_TRUE(conn->write_all(ByteSpan(partial.data(), partial.size()))
                    .is_ok());
    conn->close();
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // The server still answers a well-behaved client.
  rpc::TcpClient client(runtime.tcp_addr(), kProg, kVers);
  ASSERT_TRUE(client.ok());
  Status st = client.call(
      kProc,
      [](xdr::XdrStream& x) {
        std::int32_t v = 123;
        return xdr::xdr_int(x, v);
      },
      [](xdr::XdrStream& x) {
        std::int32_t v = 0;
        return xdr::xdr_int(x, v) && v == 123;
      });
  EXPECT_TRUE(st.is_ok()) << st.to_string();
  EXPECT_EQ(runtime.stats().tcp_connections.load(), 3);
  runtime.stop();
}

// A record trickled one byte per write must still assemble into exactly
// one served call with a correct reply — the reassembly path crosses
// ~50 reads instead of one.
TEST(EventServerRuntime, OneByteTrickleStillCompletesTheCall) {
  rpc::SvcRegistry reg;
  reg.register_proc(kProg, kVers, kProc,
                    [](xdr::XdrStream& in, xdr::XdrStream& out) {
                      std::int32_t v = 0;
                      if (!xdr::xdr_int(in, v)) return false;
                      return xdr::xdr_int(out, v);
                    });

  rpc::EventServerRuntimeConfig cfg;
  cfg.workers = 2;
  rpc::EventServerRuntime runtime(reg, cfg);
  ASSERT_TRUE(runtime.start().is_ok());

  auto conn = net::TcpConn::connect(runtime.tcp_addr());
  ASSERT_NE(conn, nullptr);
  const Bytes call = framed_int_call(0xAA55, 777);
  for (std::size_t i = 0; i < call.size(); ++i) {
    ASSERT_TRUE(conn->write_all(ByteSpan(call.data() + i, 1)).is_ok());
  }
  const Bytes reply = read_framed_reply(*conn);
  ASSERT_GE(reply.size(), 12u);
  EXPECT_EQ(load_be32(reply.data()), 0xAA55u);  // xid
  // Echoed int is the last word of a SUCCESS reply.
  EXPECT_EQ(load_be32(reply.data() + reply.size() - 4), 777u);
  EXPECT_EQ(runtime.stats().tcp_calls.load(), 1);
  EXPECT_EQ(runtime.stats().conn_resets.load(), 0);
  runtime.stop();
}

// A peer that fires pipelined read-style requests and never reads a
// byte of its replies: the write buffer absorbs what the socket won't
// take (counted in write_stalls), and at max_write_buffer the peer is
// reset (counted in conn_resets) — it can never OOM the server or
// wedge a reactor shard.
TEST(EventServerRuntime, PeerThatNeverReadsIsStalledThenCapped) {
  // Read-style proc: a tiny call asking for `count` ints back.
  rpc::SvcRegistry reg;
  reg.register_proc(kProg, kVers, kProc,
                    [](xdr::XdrStream& in, xdr::XdrStream& out) {
                      std::uint32_t count = 0;
                      if (!xdr::xdr_u_int(in, count) || count > (1u << 18)) {
                        return false;
                      }
                      if (!xdr::xdr_u_int(out, count)) return false;
                      for (std::uint32_t i = 0; i < count; ++i) {
                        std::int32_t v = static_cast<std::int32_t>(i);
                        if (!xdr::xdr_int(out, v)) return false;
                      }
                      return true;
                    });

  rpc::EventServerRuntimeConfig cfg;
  cfg.workers = 2;
  cfg.max_write_buffer = 256 * 1024;  // small cap so the test converges
  rpc::EventServerRuntime runtime(reg, cfg);
  ASSERT_TRUE(runtime.start().is_ok());

  auto conn = net::TcpConn::connect(runtime.tcp_addr());
  ASSERT_NE(conn, nullptr);
  // 40 requests, each producing a ~128 KB reply (~5 MB total): far more
  // than kernel socket buffers + max_write_buffer can hold.
  constexpr std::uint32_t kReplyInts = 32768;
  for (int i = 0; i < 40; ++i) {
    Bytes msg(128);
    xdr::XdrMem x(MutableByteSpan(msg.data() + 4, msg.size() - 4),
                  xdr::XdrOp::kEncode);
    rpc::CallHeader hdr;
    hdr.xid = 0x5000u + static_cast<std::uint32_t>(i);
    hdr.prog = kProg;
    hdr.vers = kVers;
    hdr.proc = kProc;
    std::uint32_t count = kReplyInts;
    ASSERT_TRUE(rpc::xdr_call_header(x, hdr));
    ASSERT_TRUE(xdr::xdr_u_int(x, count));
    store_be32(msg.data(), xdr::XdrRec::kLastFragFlag |
                               static_cast<std::uint32_t>(x.getpos()));
    if (!conn->write_all(ByteSpan(msg.data(), 4 + x.getpos())).is_ok()) {
      break;  // already reset: fine, that is the expected endgame
    }
  }

  // Never read.  The server must stall-account, then cut us off.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (runtime.stats().conn_resets.load() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(runtime.stats().conn_resets.load(), 1);
  EXPECT_GE(runtime.stats().write_stalls.load(), 1);

  // Nobody else was harmed: a fresh, well-behaved client is served.
  rpc::TcpClient client(runtime.tcp_addr(), kProg, kVers);
  ASSERT_TRUE(client.ok());
  std::uint32_t got = 0;
  Status st = client.call(
      kProc,
      [](xdr::XdrStream& x) {
        std::uint32_t count = 3;
        return xdr::xdr_u_int(x, count);
      },
      [&](xdr::XdrStream& x) {
        if (!xdr::xdr_u_int(x, got) || got != 3) return false;
        for (std::uint32_t i = 0; i < got; ++i) {
          std::int32_t v = 0;
          if (!xdr::xdr_int(x, v)) return false;
        }
        return true;
      });
  EXPECT_TRUE(st.is_ok()) << st.to_string();
  runtime.stop();
}

// -------------------------------- ServerRuntime shutdown drain (fix) ---

// Regression: stop() must serve already-queued jobs, not drop them.  A
// single worker is busy with a slow call while a second connection's
// request is queued; stop() arrives before the worker ever picks the
// second connection up.  The queued request's bytes are already in the
// socket buffer, so the drain contract says it still gets a reply.
TEST(ServerRuntime, StopDrainsQueuedRequests) {
  rpc::SvcRegistry reg;
  reg.register_proc(kProg, kVers, kProc,
                    [](xdr::XdrStream& in, xdr::XdrStream& out) {
                      std::int32_t v = 0;
                      if (!xdr::xdr_int(in, v)) return false;
                      std::this_thread::sleep_for(
                          std::chrono::milliseconds(200));
                      return xdr::xdr_int(out, v);
                    });

  rpc::ServerRuntimeConfig cfg;
  cfg.workers = 1;
  cfg.enable_udp = false;
  rpc::ServerRuntime runtime(reg, cfg);
  ASSERT_TRUE(runtime.start().is_ok());

  auto one_call = [&](Status* out) {
    rpc::TcpClient client(runtime.tcp_addr(), kProg, kVers);
    if (!client.ok()) {
      *out = unavailable("connect failed");
      return;
    }
    *out = client.call(
        kProc,
        [](xdr::XdrStream& x) {
          std::int32_t v = 42;
          return xdr::xdr_int(x, v);
        },
        [](xdr::XdrStream& x) {
          std::int32_t v = 0;
          return xdr::xdr_int(x, v) && v == 42;
        });
  };

  Status st_a, st_b;
  std::thread a([&] { one_call(&st_a); });
  // Let A's connection occupy the only worker (it sleeps 200 ms inside
  // the handler), then park B's fully-sent request in the queue.
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  std::thread b([&] { one_call(&st_b); });
  std::this_thread::sleep_for(std::chrono::milliseconds(60));

  runtime.stop();  // must drain B, not drop it
  a.join();
  b.join();

  EXPECT_TRUE(st_a.is_ok()) << st_a.to_string();
  EXPECT_TRUE(st_b.is_ok()) << st_b.to_string();
}

}  // namespace
}  // namespace tempo
