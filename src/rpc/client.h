// RPC clients — ports of Sun's clnt_udp.c / clnt_tcp.c call paths.
//
// UdpClient::call() is the generic clntudp_call(): marshal the call
// header and arguments through the layered XDR path, send, then wait
// with per-try timeout and retransmission until a reply with a matching
// XID arrives.  TcpClient::call() is clnttcp_call() over a record-marked
// stream (no retransmission; TCP is reliable).
//
// The specialized client (core/spec_client.h) replaces the marshaling
// steps with residual plans but keeps this module's wire behaviour —
// that is the paper's whole point: same protocol, specialized code.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "common/status.h"
#include "net/tcp.h"
#include "net/transport.h"
#include "rpc/rpc_msg.h"
#include "xdr/xdrmem.h"
#include "xdr/xdrrec.h"

namespace tempo::rpc {

// xdrproc_t analogs bound to the caller's argument/result objects.
using ArgEncoder = std::function<bool(xdr::XdrStream&)>;
using ResDecoder = std::function<bool(xdr::XdrStream&)>;

struct CallOptions {
  int retry_timeout_ms = 300;   // per-try wait before retransmission
  int total_timeout_ms = 3000;  // overall deadline
  OpaqueAuth cred;              // AUTH_NONE by default
  OpaqueAuth verf;
};

// Maximum UDP payload we ever send/expect (UDPMSGSIZE analog, sized for
// the paper's 2000-int arrays with room to spare).
inline constexpr std::size_t kMaxUdpMessage = 65000;

struct ClientStats {
  std::int64_t calls = 0;
  std::int64_t retransmissions = 0;
  std::int64_t stale_replies = 0;  // XID mismatches discarded
};

class UdpClient {
 public:
  UdpClient(net::DatagramTransport& transport, net::Addr server,
            std::uint32_t prog, std::uint32_t vers, CallOptions opts = {});

  // One remote call through the generic layered path.
  Status call(std::uint32_t proc, const ArgEncoder& encode_args,
              const ResDecoder& decode_results);

  const ClientStats& stats() const { return stats_; }
  std::uint32_t last_xid() const { return xid_; }

 private:
  net::DatagramTransport& transport_;
  net::Addr server_;
  std::uint32_t prog_, vers_;
  CallOptions opts_;
  std::uint32_t xid_;
  ClientStats stats_;
  Bytes send_buf_;
  Bytes recv_buf_;
};

class TcpClient {
 public:
  // Connects on construction; check ok().
  TcpClient(net::Addr server, std::uint32_t prog, std::uint32_t vers,
            CallOptions opts = {});

  bool ok() const { return conn_ != nullptr; }

  Status call(std::uint32_t proc, const ArgEncoder& encode_args,
              const ResDecoder& decode_results);

  std::uint32_t last_xid() const { return xid_; }

 private:
  std::unique_ptr<net::TcpConn> conn_;
  std::uint32_t prog_, vers_;
  CallOptions opts_;
  std::uint32_t xid_;
};

// Shared reply-header triage: maps an already-decoded ReplyHeader to a
// Status (OK means accepted/success and results follow).
Status reply_header_to_status(const ReplyHeader& hdr);

// Seed for a new client's XID stream: `clock_us` (the microsecond
// clock, like clntudp_create's gettimeofday seed) mixed with a
// process-wide counter so clients constructed in the same microsecond
// — trivially common on a multicore host — still start distinct
// streams.  The clock is a parameter so the same-clock case is
// deterministically testable.
std::uint32_t initial_xid_seed(std::uint32_t clock_us);

}  // namespace tempo::rpc
