// Minimal raw-syscall io_uring wrapper for the reactor's uring backend.
//
// Deliberately not liburing: the container toolchain only guarantees
// kernel headers, so the ring setup/mmap/enter dance is written out
// against <linux/io_uring.h> directly.  The wrapper owns
//
//   * the SQ/CQ rings of one io_uring instance (one per Reactor),
//   * a single registered provided-buffer ring (IORING_REGISTER_PBUF_RING)
//     whose slots the runtime maps onto BufferArena slices, and
//   * the user_data tag convention that multiplexes reactor-internal
//     completions (poll, wake, cancel) and runtime completions (UDP/TCP
//     multishot recv, linked UDP sends) over one CQ.
//
// Compile-time gate: TEMPO_HAVE_URING is 1 only when the kernel headers
// declare multishot receive (IORING_RECV_MULTISHOT, kernel >= 6.0
// headers).  Without it the class still exists but every operation
// reports failure, so call sites need no #ifdefs beyond probing
// supported().  At runtime, supported() additionally probes the live
// kernel (io_uring may be compiled out or seccomp-filtered) and honors
// the TEMPO_URING=0 kill switch.
#pragma once

#include <sys/socket.h>

#include <atomic>
#include <cstdint>
#include <vector>

#if defined(__linux__) && __has_include(<linux/io_uring.h>)
#include <linux/io_uring.h>
#if defined(IORING_RECV_MULTISHOT)
#define TEMPO_HAVE_URING 1
#endif
#endif
#ifndef TEMPO_HAVE_URING
#define TEMPO_HAVE_URING 0
#endif

namespace tempo::net {

// One reaped completion.  res/flags are verbatim from the CQE; for
// buffer-select ops the chosen buffer id is flags >> IORING_CQE_BUFFER_SHIFT.
struct UringCqe {
  std::uint64_t user_data = 0;
  std::int32_t res = 0;
  std::uint32_t flags = 0;
};

// user_data layout: tag in the top 8 bits, payload in the low 56.  Tags
// 1..7 are reactor-internal; the runtime uses kUringTagUser and up.
inline constexpr int kUringTagShift = 56;
inline constexpr std::uint64_t kUringPayloadMask =
    (std::uint64_t{1} << kUringTagShift) - 1;

inline constexpr std::uint64_t uring_user_data(std::uint64_t tag,
                                               std::uint64_t payload) {
  return (tag << kUringTagShift) | (payload & kUringPayloadMask);
}
inline constexpr std::uint64_t uring_tag(std::uint64_t ud) {
  return ud >> kUringTagShift;
}
inline constexpr std::uint64_t uring_payload(std::uint64_t ud) {
  return ud & kUringPayloadMask;
}

inline constexpr std::uint64_t kUringTagPoll = 1;    // reactor fd poll
inline constexpr std::uint64_t kUringTagWake = 2;    // wakeup eventfd poll
inline constexpr std::uint64_t kUringTagIgnore = 3;  // fire-and-forget ops
inline constexpr std::uint64_t kUringTagUser = 8;    // first runtime tag

class Uring {
 public:
  // Cached runtime probe: ring setup succeeds, the kernel reports the
  // op set of a >= 6.0 kernel (multishot recv/recvmsg), EXT_ARG timed
  // waits work, and a provided-buffer ring registers.  TEMPO_URING=0
  // in the environment forces false (kill switch for fleet rollback).
  static bool supported();

  // sq_entries is rounded up by the kernel; the CQ is sized 4x to ride
  // out multishot completion bursts (NODROP handles overflow anyway).
  // sqpoll asks for IORING_SETUP_SQPOLL and silently falls back to a
  // plain ring when the kernel refuses it.
  Uring(unsigned sq_entries, bool sqpoll);
  ~Uring();

  Uring(const Uring&) = delete;
  Uring& operator=(const Uring&) = delete;

  bool ok() const { return ring_fd_ >= 0; }
  bool sqpoll_active() const { return sqpoll_; }

  // ---- SQE preparation ------------------------------------------------
  // Each prep_* claims one SQE (flushing a full SQ with a submit if
  // needed) and returns false only when the ring is unusable.  Prepared
  // SQEs sit in the SQ until the next submit()/submit_and_wait().

  // One-shot poll (level-triggered semantics restored by re-arming
  // after dispatch).  poll_mask is POLLIN/POLLOUT/....
  bool prep_poll_add(int fd, unsigned poll_mask, std::uint64_t ud);
  bool prep_poll_remove(std::uint64_t target_ud, std::uint64_t ud);
  // IORING_OP_ASYNC_CANCEL of every op matching target_ud.
  bool prep_cancel(std::uint64_t target_ud, std::uint64_t ud);
  // Multishot recvmsg with buffer select from the registered ring.  mh
  // must stay alive while the op is armed; only msg_namelen is consumed
  // (completions carry io_uring_recvmsg_out + name + payload in the
  // selected buffer).
  bool prep_recvmsg_multishot(int fd, struct msghdr* mh, std::uint64_t ud);
  // Multishot recv (stream sockets) with buffer select.
  bool prep_recv_multishot(int fd, std::uint64_t ud);
  // sendmsg; link=true sets IOSQE_IO_LINK so consecutive sends form one
  // ordered chain (the uring replacement for a sendmmsg batch).  mh and
  // everything it points at must stay alive until the CQE.
  bool prep_sendmsg(int fd, const struct msghdr* mh, std::uint64_t ud,
                    bool link);

  // ---- Registered provided-buffer ring -------------------------------
  // One group per Uring.  entries must be a power of two.
  bool setup_buf_ring(unsigned entries);
  unsigned buf_ring_entries() const { return buf_entries_; }
  // Stages addr/len under buffer id bid; visible to the kernel only
  // after buf_ring_commit() (release-store of the ring tail).
  void buf_ring_add(unsigned short bid, void* addr, unsigned len);
  void buf_ring_commit();

  // ---- Submission / completion ---------------------------------------
  // Flushes prepared SQEs.  Returns number submitted (0 is fine under
  // SQPOLL where the kernel thread picks them up without a syscall).
  int submit();
  // Submits, then waits for >= 1 CQE (timeout_ms < 0 blocks, 0 polls),
  // then drains the CQ into out.  Returns the number of CQEs reaped.
  int submit_and_wait(int timeout_ms, std::vector<UringCqe>& out);
  // Drains the CQ without waiting.
  int reap(std::vector<UringCqe>& out);

  // io_uring_enter invocations so far — the "syscalls per burst" number
  // the bench reports.  Relaxed atomic: the bench reads it from another
  // thread while the reactor runs.
  std::int64_t enter_calls() const {
    return enter_calls_.load(std::memory_order_relaxed);
  }

 private:
#if TEMPO_HAVE_URING
  struct io_uring_sqe* get_sqe();
  int enter(unsigned to_submit, unsigned min_complete, unsigned flags,
            const void* arg, std::size_t argsz);

  int ring_fd_ = -1;
  bool sqpoll_ = false;
  std::uint32_t features_ = 0;
  std::atomic<std::int64_t> enter_calls_{0};

  // SQ ring
  void* sq_ring_ptr_ = nullptr;
  std::size_t sq_ring_len_ = 0;
  unsigned* sq_head_ = nullptr;
  unsigned* sq_tail_ = nullptr;
  unsigned sq_mask_ = 0;
  unsigned sq_entries_ = 0;
  unsigned* sq_flags_ = nullptr;
  unsigned* sq_array_ = nullptr;
  struct io_uring_sqe* sqes_ = nullptr;
  std::size_t sqes_len_ = 0;
  unsigned sq_pending_ = 0;  // prepared but not yet submitted

  // CQ ring
  void* cq_ring_ptr_ = nullptr;  // == sq_ring_ptr_ with FEAT_SINGLE_MMAP
  std::size_t cq_ring_len_ = 0;
  unsigned* cq_head_ = nullptr;
  unsigned* cq_tail_ = nullptr;
  unsigned cq_mask_ = 0;
  struct io_uring_cqe* cqes_ = nullptr;

  // Provided-buffer ring (group id 0)
  struct io_uring_buf_ring* buf_ring_ = nullptr;
  std::size_t buf_ring_len_ = 0;
  unsigned buf_entries_ = 0;
  unsigned buf_pending_ = 0;  // staged adds since the last commit
  unsigned short buf_tail_ = 0;
#else
  std::atomic<std::int64_t> enter_calls_{0};
  unsigned buf_entries_ = 0;
  bool sqpoll_ = false;
  int ring_fd_ = -1;
#endif
};

}  // namespace tempo::net
