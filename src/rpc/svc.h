// RPC server side — port of Sun's svc.c / svc_udp.c / svc_tcp.c.
//
// SvcRegistry holds the dispatch table ((prog, vers, proc) -> handler)
// and implements the transport-independent request->reply transform,
// including every protocol error reply (RPC_MISMATCH, AUTH_ERROR,
// PROG_UNAVAIL, PROG_MISMATCH, PROC_UNAVAIL, GARBAGE_ARGS).
// UdpServer / TcpServer bind it to transports; SimEndpoint handlers bind
// it to the simulated network.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <tuple>
#include <variant>
#include <vector>

#include "common/arena.h"
#include "common/metrics.h"
#include "common/status.h"
#include "net/simnet.h"
#include "net/tcp.h"
#include "net/transport.h"
#include "net/udp.h"
#include "rpc/rpc_msg.h"
#include "xdr/xdrmem.h"

namespace tempo::rpc {

// Decodes arguments from `args_in` and encodes results into `res_out`.
// Returning false yields a GARBAGE_ARGS reply.
using SvcHandler =
    std::function<bool(xdr::XdrStream& args_in, xdr::XdrStream& res_out)>;

// Optional credential gate; non-kOk yields an AUTH_ERROR rejection.
using AuthChecker = std::function<AuthStat(const OpaqueAuth& cred)>;

// ---- reply-buffer sizing rule (shared by every transport adapter) ----
//
// A reply buffer must never be smaller than the classic UDP message
// size, and for transports that accept larger records (the reactor
// runtime's TCP records go up to max_record_bytes = 1 MB) it must scale
// with the request: an echo-style handler produces a reply about as
// large as its request, so a fixed 65000-byte scratch silently breaks
// any large-record reply (the handler's encode fails and the client
// sees GARBAGE_ARGS).  kReplyHeadroom covers the reply header of
// procedures whose results exceed their arguments by a bounded amount.
inline constexpr std::size_t kMinReplyBytes = 65000;  // UDPMSGSIZE analog
inline constexpr std::size_t kReplyHeadroom = 1024;
inline std::size_t reply_capacity(std::size_t request_size) {
  const std::size_t scaled = request_size + kReplyHeadroom;
  return scaled < kMinReplyBytes ? kMinReplyBytes : scaled;
}
// The record-stream (xdrrec) server paths cannot see the request size
// before dispatch, so they provision for the largest record the reactor
// runtime accepts (EventServerRuntimeConfig::max_record_bytes default).
inline constexpr std::size_t kMaxStreamReplyBytes =
    (1u << 20) + kReplyHeadroom;

// Atomic so concurrent worker threads (ServerRuntime) can dispatch
// through one registry without a stats race; single-threaded callers
// read the fields exactly as before.
struct SvcStats {
  std::atomic<std::int64_t> requests{0};
  std::atomic<std::int64_t> success{0};
  std::atomic<std::int64_t> protocol_errors{0};  // any non-SUCCESS reply
  std::atomic<std::int64_t> undecodable{0};  // header garbled: no reply
};

class SvcRegistry {
 public:
  // Registration folds this registry's dispatch counters into the
  // process-wide metrics registry (svc.* in metrics().snapshot());
  // the source unregisters with the registry object.
  SvcRegistry();

  void register_proc(std::uint32_t prog, std::uint32_t vers,
                     std::uint32_t proc, SvcHandler handler);
  void unregister_program(std::uint32_t prog);
  void set_auth_checker(AuthChecker checker) { auth_ = std::move(checker); }

  // Core transform: reads one call message from `in`, writes the full
  // reply message into `out`.  Returns false iff the request was so
  // malformed that no reply can be produced (caller drops it).
  //
  // Thread-safety: dispatch/handle_datagram may run concurrently from
  // many threads PROVIDED registration is finished first (the handler
  // table is read-only while serving, exactly like Sun's svc.c, whose
  // dispatch table is built before svc_run).
  bool dispatch(xdr::XdrStream& in, xdr::XdrMem& out);

  // Zero-copy dispatch: decodes the call IN PLACE from `request` — the
  // caller-owned receive buffer is neither copied nor cleared — and
  // encodes the reply into `reply_out` (size it with reply_capacity()).
  // Returns the number of reply bytes written; 0 means the request was
  // undecodable and must be dropped (a real reply always carries at
  // least a header, so 0 is unambiguous).  Buffer contract (see
  // src/rpc/README.md): the registry only reads `request`, and the
  // caller must keep both spans exclusively owned by the dispatching
  // thread until the call returns.
  std::size_t handle_request(ByteSpan request, MutableByteSpan reply_out);

  // Convenience for datagram transports: request bytes -> reply bytes.
  // Empty result means "drop".  This is the generic copy path — the
  // request is copied into per-thread scratch (after the optional
  // paper-faithful bzero) and the reply is copied out; the runtimes'
  // hot paths use handle_request instead.
  Bytes handle_datagram(ByteSpan request);

  const SvcStats& stats() const { return stats_; }

  // When true (default, faithful to the original), the generic
  // handle_datagram path clears its receive scratch before each request
  // — the bzero the paper names as a round-trip cost (§5 "Round-trip
  // RPC").  The zero-copy handle_request path never clears or copies,
  // regardless of this knob.
  void set_clear_input_buffer(bool on) { clear_input_ = on; }

 private:
  using Key = std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>;
  std::map<Key, SvcHandler> handlers_;
  std::map<std::uint32_t, std::pair<std::uint32_t, std::uint32_t>>
      version_bounds_;  // prog -> [low, high]
  AuthChecker auth_;
  SvcStats stats_;
  bool clear_input_ = true;
  // Last member: unregisters before anything it reads is destroyed.
  common::MetricsRegistry::SourceHandle metrics_source_;
};

// Per-request latency distributions, merged across a runtime's shards
// (both server runtimes return one; see "Observability" in
// src/rpc/README.md for the stage taxonomy).  All values nanoseconds.
struct RuntimeLatencySnapshot {
  common::HistogramSnapshot queue;    // wire receive -> worker pop
  common::HistogramSnapshot handle;   // dispatch duration in the worker
  common::HistogramSnapshot udp_e2e;  // wire receive -> reply handed to wire
  common::HistogramSnapshot tcp_e2e;  // record assembled -> reply emitted
};

// Serves a DatagramTransport (real UDP socket or polled sim endpoint).
class UdpServer {
 public:
  UdpServer(net::DatagramTransport& transport, SvcRegistry& registry)
      : transport_(transport), registry_(registry) {}

  // Serve at most one request; false on timeout.
  bool poll_once(int timeout_ms);
  // Loop until `stop` becomes true (run this on a thread).
  void serve(const std::atomic<bool>& stop);

 private:
  net::DatagramTransport& transport_;
  SvcRegistry& registry_;
  Bytes recv_buf_ = Bytes(net::kMaxDatagramBytes);
};

// Installs a SimEndpoint handler so requests dispatch inline while the
// simulated network is pumped.  Reply send cost is charged to the link.
void attach_sim_server(net::SimEndpoint* endpoint, SvcRegistry& registry);

// ---------------------------------------------------------------------------
// ServerRuntime — the concurrent successor of the one-socket loops above.
//
// One runtime owns a UDP socket and a TCP listener on loopback, plus a
// small worker pool.  Two listener threads feed a bounded job queue:
//   * the UDP thread turns each datagram into a job (peer, bytes);
//   * the TCP thread turns each accepted connection into a job that a
//     worker serves with the record-marked (xdrrec) call loop until the
//     peer closes.
// Workers run SvcRegistry::dispatch, which is concurrency-safe once
// registration is done.  Handlers that resolve residual plans through a
// core::SpecCache (see core::CachedSpecService) make this the paper's
// specialization machinery under a real multi-client load: first call
// of a shape builds/fetches the specialization, later calls run
// straight-line residual code, and ExecStatus::kFallback drops any
// individual call to the generic interpreter path.
//
// Overload behavior: when the queue is full, UDP jobs are dropped (the
// client retransmits — classic datagram semantics) and TCP accepts are
// deferred; `stats().overload_drops` counts the former.
// ---------------------------------------------------------------------------

struct ServerRuntimeConfig {
  int workers = 4;
  std::uint16_t udp_port = 0;  // 0 = ephemeral
  std::uint16_t tcp_port = 0;
  bool enable_udp = true;
  bool enable_tcp = true;
  std::size_t queue_capacity = 1024;
  // stop() keeps serving already-received requests for at most this
  // long; a peer that keeps transmitting cannot hold shutdown hostage.
  int drain_timeout_ms = 2000;
};

struct ServerRuntimeStats {
  std::atomic<std::int64_t> udp_datagrams{0};
  std::atomic<std::int64_t> tcp_connections{0};
  std::atomic<std::int64_t> tcp_calls{0};
  std::atomic<std::int64_t> overload_drops{0};
};

class ServerRuntime {
 public:
  explicit ServerRuntime(SvcRegistry& registry, ServerRuntimeConfig cfg = {});
  ~ServerRuntime();

  ServerRuntime(const ServerRuntime&) = delete;
  ServerRuntime& operator=(const ServerRuntime&) = delete;

  // Binds sockets and spawns listener + worker threads.  Call after all
  // register_proc calls.  Fails if a socket cannot bind.
  Status start();
  // Idempotent; joins every thread.  Drains rather than drops: jobs
  // already queued are still served — datagrams get replies, and queued
  // TCP connections serve every request whose bytes have already
  // arrived — before the workers exit (bounded by drain_timeout_ms).
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  net::Addr udp_addr() const;
  net::Addr tcp_addr() const;
  const ServerRuntimeStats& stats() const { return stats_; }
  // The runtime's buffer pool: `misses` is `arena_misses` — takes the
  // pool could not serve and had to send to the allocator.
  common::BufferArenaStats arena_stats() const { return arena_.stats(); }

  // Latency distributions recorded while serving (UDP path; the
  // blocking xdrrec TCP path interleaves socket waits with dispatch,
  // so it contributes calls/counters but no per-request histograms).
  // Valid after stop() too — histograms persist with the runtime.
  RuntimeLatencySnapshot latency_snapshot() const;
  // The whole process in one call: this runtime's counters and
  // histograms plus every other registered component (registry
  // dispatch stats, spec cache, services, arena) via the global
  // metrics registry.
  common::MetricsSnapshot metrics_snapshot() const {
    return common::metrics().snapshot();
  }

 private:
  // `payload` is an arena buffer with `len` valid bytes; the worker
  // recycles it after dispatch, so the datagram intake path neither
  // allocates nor copies per request.
  struct DatagramJob {
    net::Addr peer;
    Bytes payload;
    std::size_t len = 0;
    std::int64_t recv_ns = 0;  // monotonic_ns at socket receive
  };
  struct ConnJob {
    std::unique_ptr<net::TcpConn> conn;
  };
  using Job = std::variant<DatagramJob, ConnJob>;

  // Moves from `job` only on success, so a dropped datagram's arena
  // buffer stays with the caller.
  bool push_job(Job& job, bool droppable);
  void udp_listen_loop();
  void tcp_accept_loop();
  void worker_loop();
  void serve_connection(net::TcpConn& conn);

  SvcRegistry& registry_;
  ServerRuntimeConfig cfg_;
  ServerRuntimeStats stats_;
  // Every receive payload and reply scratch comes from here (the same
  // buffer contract as the event runtime's per-shard arenas; this
  // runtime is unsharded so one pool serves all threads).
  common::BufferArena arena_;
  // Latency histograms (this runtime is unsharded: shard 0 of the
  // taxonomy).  Wait-free to record from every worker concurrently.
  common::LatencyHistogram queue_hist_;
  common::LatencyHistogram handle_hist_;
  common::LatencyHistogram udp_e2e_hist_;
  // Cached from common::metrics_enabled() at start(): when false the
  // hot path takes no clock reads and records nothing.
  bool metrics_on_ = false;

  std::unique_ptr<net::UdpSocket> udp_;
  std::unique_ptr<net::TcpListener> tcp_;

  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  // True once both listener threads have been joined: only then is the
  // queue final, and only then may an idle worker exit.  Without this
  // gate a listener could push one last accepted job after every
  // worker had already seen an empty queue and left — a drop.
  std::atomic<bool> intake_done_{false};
  // Steady-clock nanoseconds after which draining connections give up;
  // written (before stopping_ flips) in stop(), read by workers.
  std::atomic<std::int64_t> drain_deadline_ns_{0};
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Job> queue_;
  std::vector<std::thread> worker_threads_;
  std::vector<std::thread> listener_threads_;
  // Last member: the global-registry source reads stats_/histograms/
  // arena_, so it must unregister before they are destroyed.
  common::MetricsRegistry::SourceHandle metrics_source_;
};

// Accepts loopback TCP connections and serves record-marked calls.
class TcpServer {
 public:
  TcpServer(net::TcpListener& listener, SvcRegistry& registry)
      : listener_(listener), registry_(registry) {}

  // Accept one connection and serve calls on it until the peer closes
  // or `stop` becomes true.  Returns number of calls served.
  int serve_one_connection(const std::atomic<bool>& stop,
                           int accept_timeout_ms = 2000);
  // Loop accepting connections until stopped.
  void serve(const std::atomic<bool>& stop);

 private:
  net::TcpListener& listener_;
  SvcRegistry& registry_;
};

}  // namespace tempo::rpc
