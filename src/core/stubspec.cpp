#include "core/stubspec.h"

#include "pe/verify.h"

namespace tempo::core {

namespace {

std::map<std::string, std::int64_t> count_bindings(
    const char* prefix, const std::vector<std::uint32_t>& counts) {
  std::map<std::string, std::int64_t> out;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    out[prefix + std::to_string(i)] = counts[i];
  }
  return out;
}

}  // namespace

Result<SpecializedInterface> SpecializedInterface::build(
    const idl::ProcDef& proc, std::uint32_t prog, std::uint32_t vers,
    SpecConfig config) {
  SpecializedInterface out;
  out.config_ = config;

  TEMPO_ASSIGN_OR_RETURN(corpus,
                         pe::build_interface_corpus(proc, prog, vers));
  if (corpus.arg_counts != config.arg_counts.size()) {
    return Status(invalid_argument(
        "interface needs " + std::to_string(corpus.arg_counts) +
        " pinned argument counts, got " +
        std::to_string(config.arg_counts.size())));
  }
  if (corpus.res_counts != config.res_counts.size()) {
    return Status(invalid_argument(
        "interface needs " + std::to_string(corpus.res_counts) +
        " pinned result counts, got " +
        std::to_string(config.res_counts.size())));
  }

  TEMPO_ASSIGN_OR_RETURN(
      arg_slots, pe::type_slots(*proc.arg_type, config.arg_counts));
  TEMPO_ASSIGN_OR_RETURN(
      res_slots, pe::type_slots(*proc.res_type, config.res_counts));
  out.arg_slots_ = arg_slots;
  out.res_slots_ = res_slots;

  const auto arg_binds = count_bindings("cnt", config.arg_counts);
  const auto res_binds = count_bindings("rcnt", config.res_counts);

  // Client encode: x_op=ENCODE, full buffer capacity, xid dynamic.
  {
    pe::SpecInput in;
    in.static_scalars = arg_binds;
    in.ref_params = {{"argsp", 0}};
    in.dynamic_scalars = {pe::kXidVar};
    in.xdrs = {/*x_op=*/0, /*x_handy=*/config.buffer_bytes, 0};
    in.options.unroll_factor = config.unroll_factor;
    TEMPO_ASSIGN_OR_RETURN(
        plan, pe::specialize(corpus.program, corpus.encode_call, in));
    out.encode_call_ = std::move(plan);
  }
  // Client reply decode: x_op=DECODE, handy armed by the inlen guard.
  {
    pe::SpecInput in;
    in.static_scalars = res_binds;
    in.ref_params = {{"resp", 0}};
    in.dynamic_scalars = {pe::kXidVar, pe::kInlenVar};
    in.xdrs = {/*x_op=*/1, /*x_handy=*/0, 0};
    in.options.unroll_factor = config.unroll_factor;
    TEMPO_ASSIGN_OR_RETURN(
        plan, pe::specialize(corpus.program, corpus.decode_reply, in));
    out.decode_reply_ = std::move(plan);
  }
  // Server args decode.
  {
    pe::SpecInput in;
    in.static_scalars = arg_binds;
    in.ref_params = {{"argsp", 0}};
    in.dynamic_scalars = {pe::kInlenVar};
    in.xdrs = {/*x_op=*/1, /*x_handy=*/0, 0};
    in.options.unroll_factor = config.unroll_factor;
    TEMPO_ASSIGN_OR_RETURN(
        plan, pe::specialize(corpus.program, corpus.decode_args, in));
    out.decode_args_ = std::move(plan);
  }
  // Server results encode.
  {
    pe::SpecInput in;
    in.static_scalars = res_binds;
    in.ref_params = {{"resp", 0}};
    in.dynamic_scalars = {};
    in.xdrs = {/*x_op=*/0, /*x_handy=*/config.buffer_bytes, 0};
    in.options.unroll_factor = config.unroll_factor;
    TEMPO_ASSIGN_OR_RETURN(
        plan, pe::specialize(corpus.program, corpus.encode_results, in));
    out.encode_results_ = std::move(plan);
  }

  // Admission pass (TEMPO_PLAN_VERIFY, always-on in debug): every plan
  // is statically verified against its declared contract before it — or
  // a stub compiled from it — can ever run.  A rejection fails the
  // whole build with the verifier's diagnostics (negative-cached by
  // SpecCache like any other ineligible shape); callers keep the
  // generic path, which is exactly the guarded-specialization contract.
  TEMPO_RETURN_IF_ERROR(pe::verify_admit(out.encode_call_, "encode_call"));
  TEMPO_RETURN_IF_ERROR(pe::verify_admit(out.decode_reply_, "decode_reply"));
  TEMPO_RETURN_IF_ERROR(pe::verify_admit(out.decode_args_, "decode_args"));
  TEMPO_RETURN_IF_ERROR(
      pe::verify_admit(out.encode_results_, "encode_results"));

  // Third tier: lower each plan to a native stub.  Strictly
  // best-effort — any null (unsupported host, W^X failure, plan outside
  // the compilable subset) leaves that entry point on the plan executor.
  if (config.enable_jit && pe::jit_enabled_by_env() &&
      pe::jit_supported_host()) {
    out.encode_call_jit_ = pe::CompiledPlan::compile(out.encode_call_);
    out.decode_reply_jit_ = pe::CompiledPlan::compile(out.decode_reply_);
    out.decode_args_jit_ = pe::CompiledPlan::compile(out.decode_args_);
    out.encode_results_jit_ = pe::CompiledPlan::compile(out.encode_results_);
  }

  out.corpus_ = std::move(corpus);
  return out;
}

pe::ExecStatus SpecializedInterface::exec_encode_call(
    std::span<const std::uint32_t> words, std::uint32_t xid,
    MutableByteSpan out) const {
  if (encode_call_jit_) return encode_call_jit_->run_encode(words, xid, out);
  return pe::run_plan_encode(encode_call_, words, xid, out, nullptr);
}

pe::ExecStatus SpecializedInterface::exec_decode_reply(
    ByteSpan in, std::uint32_t xid, std::span<std::uint32_t> words) const {
  if (decode_reply_jit_) return decode_reply_jit_->run_decode(in, xid, words);
  return pe::run_plan_decode(decode_reply_, in, xid, words, nullptr);
}

pe::ExecStatus SpecializedInterface::exec_decode_args(
    ByteSpan in, std::span<std::uint32_t> words) const {
  if (decode_args_jit_) {
    return decode_args_jit_->run_decode(in, /*xid=*/0, words);
  }
  return pe::run_plan_decode(decode_args_, in, /*xid=*/0, words, nullptr);
}

pe::ExecStatus SpecializedInterface::exec_encode_results(
    std::span<const std::uint32_t> words, MutableByteSpan out) const {
  if (encode_results_jit_) {
    return encode_results_jit_->run_encode(words, /*xid=*/0, out);
  }
  return pe::run_plan_encode(encode_results_, words, /*xid=*/0, out, nullptr);
}

int SpecializedInterface::jit_stub_count() const {
  return (encode_call_jit_ ? 1 : 0) + (decode_reply_jit_ ? 1 : 0) +
         (decode_args_jit_ ? 1 : 0) + (encode_results_jit_ ? 1 : 0);
}

std::size_t SpecializedInterface::packed_code_bytes() const {
  return encode_call_.packed_code_bytes() +
         decode_reply_.packed_code_bytes() + decode_args_.packed_code_bytes() +
         encode_results_.packed_code_bytes();
}

std::size_t SpecializedInterface::compiled_code_bytes() const {
  std::size_t total = 0;
  for (const auto* jit : {encode_call_jit_.get(), decode_reply_jit_.get(),
                          decode_args_jit_.get(), encode_results_jit_.get()}) {
    if (jit != nullptr) total += jit->code_size();
  }
  return total;
}

Result<std::string> SpecializedInterface::annotated_encode_listing() const {
  pe::BtaDivision division;
  division.dynamic_params = {pe::kXidVar};
  division.ref_params = {"argsp"};
  division.known_fields = {{"x_op", 0}};  // the encode context
  TEMPO_ASSIGN_OR_RETURN(
      bta, pe::analyze_binding_times(corpus_.program, corpus_.encode_call,
                                     division));
  return pe::annotated_to_string(bta);
}

std::size_t SpecializedInterface::specialized_code_bytes() const {
  return encode_call_.code_bytes() + decode_reply_.code_bytes() +
         decode_args_.code_bytes() + encode_results_.code_bytes();
}

std::size_t SpecializedInterface::generic_code_bytes() const {
  return pe::ir_code_size(corpus_.program);
}

}  // namespace tempo::core
