// Memory-buffer XDR stream — port of Sun's xdrmem.c.
//
// This is the stream the paper's Figures 3 and 5 are about: every
// putlong/getlong decrements `x_handy` and tests it for overflow before
// touching the buffer.  The specializer folds that accounting away when
// the message layout is static.
#pragma once

#include <cstdint>

#include "xdr/xdr.h"

namespace tempo::xdr {

class XdrMem final : public XdrStream {
 public:
  // The stream neither owns nor resizes the buffer (exactly like
  // xdrmem_create over a caller-supplied char*).
  XdrMem(MutableByteSpan buffer, XdrOp op)
      : XdrStream(op),
        base_(buffer.data()),
        private_(buffer.data()),
        handy_(static_cast<std::int64_t>(buffer.size())),
        size_(buffer.size()) {}

  // Decode-only view over const caller-owned bytes — the zero-copy
  // dispatch path reads receive buffers in place without copying them
  // into mutable scratch first.  An encode op over a const buffer is a
  // caller bug; the stream then starts exhausted so every put fails
  // instead of writing through the const view.
  XdrMem(ByteSpan buffer, XdrOp op)
      : XdrStream(op),
        base_(const_cast<std::uint8_t*>(buffer.data())),
        private_(base_),
        handy_(op == XdrOp::kEncode
                   ? -1
                   : static_cast<std::int64_t>(buffer.size())),
        size_(op == XdrOp::kEncode ? 0 : buffer.size()) {}

  bool putlong(std::int32_t v) override;
  bool getlong(std::int32_t* v) override;
  bool putbytes(ByteSpan data) override;
  bool getbytes(MutableByteSpan out) override;
  std::size_t getpos() const override;
  bool setpos(std::size_t pos) override;
  std::uint8_t* inline_bytes(std::size_t n) override;

  // Bytes consumed so far (== getpos for this stream).
  std::size_t position() const { return getpos(); }
  // Remaining capacity, the x_handy field.
  std::int64_t handy() const { return handy_; }

 private:
  std::uint8_t* base_;
  std::uint8_t* private_;  // x_private: next read/write location
  std::int64_t handy_;     // x_handy: space left
  std::size_t size_;
};

}  // namespace tempo::xdr
