// Simulated-network tests: delivery, virtual-time accounting, fault
// injection determinism, handler (server) endpoints.
#include <gtest/gtest.h>

#include "net/simnet.h"

namespace tempo::net {
namespace {

Bytes msg(std::initializer_list<std::uint8_t> b) { return Bytes(b); }

TEST(SimNet, DeliversInOrderWithLatency) {
  LinkParams p;
  p.latency_us = 100.0;
  p.bandwidth_mbps = 100.0;
  p.per_packet_cpu_us = 0.0;
  SimNetwork net(p);
  auto* a = net.create_endpoint();
  auto* b = net.create_endpoint();

  Bytes m1 = msg({1, 2, 3, 4});
  ASSERT_TRUE(a->send_to(b->local_addr(), ByteSpan(m1.data(), m1.size()))
                  .is_ok());

  Bytes out(16);
  Addr src;
  auto got = b->recv_from(&src, MutableByteSpan(out.data(), out.size()),
                          kBlockForever);
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(*got, 4u);
  EXPECT_EQ(src, a->local_addr());
  EXPECT_EQ(out[0], 1);

  // Virtual time advanced by latency + serialization: 100us + 32 bits /
  // 100 Mb/s = 100.32 us.
  EXPECT_NEAR(static_cast<double>(net.now()), 100320.0, 1.0);
}

TEST(SimNet, RecvTimesOutInVirtualTime) {
  SimNetwork net;
  auto* a = net.create_endpoint();
  Bytes out(4);
  auto got = a->recv_from(nullptr, MutableByteSpan(out.data(), out.size()),
                          /*timeout_ms=*/50);
  EXPECT_EQ(got.status().code(), StatusCode::kTimeout);
  EXPECT_GE(net.now(), 50'000'000);  // clock advanced to the deadline
}

TEST(SimNet, HandlerEndpointsProcessInline) {
  SimNetwork net;
  auto* server = net.create_endpoint(2049);
  auto* client = net.create_endpoint();

  // Echo server: send back whatever arrives.
  server->set_handler([server](const Addr& src, ByteSpan payload) {
    Bytes bump(payload.begin(), payload.end());
    for (auto& x : bump) x += 1;
    ASSERT_TRUE(server->send_to(src, ByteSpan(bump.data(), bump.size()))
                    .is_ok());
  });

  Bytes m = msg({10, 20, 30});
  ASSERT_TRUE(client
                  ->send_to(server->local_addr(),
                            ByteSpan(m.data(), m.size()))
                  .is_ok());
  Bytes out(8);
  auto got = client->recv_from(nullptr,
                               MutableByteSpan(out.data(), out.size()),
                               kBlockForever);
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(*got, 3u);
  EXPECT_EQ(out[0], 11);
  EXPECT_EQ(out[2], 31);
}

TEST(SimNet, DropAndDuplicateAreDeterministic) {
  auto run_once = [](std::uint64_t seed) {
    LinkParams p;
    p.drop_prob = 0.3;
    p.dup_prob = 0.2;
    SimNetwork net(p, seed);
    auto* a = net.create_endpoint();
    auto* b = net.create_endpoint();
    int delivered = 0;
    for (int i = 0; i < 100; ++i) {
      Bytes m = msg({static_cast<std::uint8_t>(i)});
      EXPECT_TRUE(
          a->send_to(b->local_addr(), ByteSpan(m.data(), m.size())).is_ok());
    }
    net.pump();
    Bytes out(4);
    while (b->recv_from(nullptr, MutableByteSpan(out.data(), out.size()), 0)
               .is_ok()) {
      ++delivered;
    }
    return std::pair<int, std::int64_t>(delivered, net.packets_dropped());
  };
  const auto [d1, drop1] = run_once(42);
  const auto [d2, drop2] = run_once(42);
  EXPECT_EQ(d1, d2);  // same seed, same fate
  EXPECT_EQ(drop1, drop2);
  EXPECT_GT(drop1, 10);
  EXPECT_LT(drop1, 60);
  const auto [d3, drop3] = run_once(43);
  EXPECT_TRUE(d3 != d1 || drop3 != drop1);  // different seed, different plan
}

TEST(SimNet, CorruptionFlipsBytes) {
  LinkParams p;
  p.corrupt_prob = 1.0;  // corrupt every packet
  SimNetwork net(p, 7);
  auto* a = net.create_endpoint();
  auto* b = net.create_endpoint();
  Bytes m = msg({0x55, 0x55, 0x55, 0x55});
  ASSERT_TRUE(
      a->send_to(b->local_addr(), ByteSpan(m.data(), m.size())).is_ok());
  Bytes out(4);
  auto got = b->recv_from(nullptr, MutableByteSpan(out.data(), out.size()),
                          kBlockForever);
  ASSERT_TRUE(got.is_ok());
  int flipped = 0;
  for (auto x : out) {
    if (x != 0x55) ++flipped;
  }
  EXPECT_EQ(flipped, 1);  // exactly one byte XOR'd
}

TEST(SimNet, LinkProfilesOrdering) {
  // The ATM/IPX profile must cost more per packet than Fast Ethernet —
  // that ordering drives the Table 2 platform gap.
  const LinkParams atm = LinkParams::atm_ipx();
  const LinkParams eth = LinkParams::ethernet_pc();
  EXPECT_GT(atm.latency_us + atm.per_packet_cpu_us,
            eth.latency_us + eth.per_packet_cpu_us);
  EXPECT_EQ(atm.bandwidth_mbps, eth.bandwidth_mbps);  // both "100 Mb/s"
}

TEST(SimNet, UnknownDestinationIsSilentlyLost) {
  SimNetwork net;
  auto* a = net.create_endpoint();
  Bytes m = msg({1});
  EXPECT_TRUE(
      a->send_to(Addr{0x7F000001, 9999}, ByteSpan(m.data(), m.size()))
          .is_ok());
  net.pump();  // no crash, nothing delivered
  EXPECT_EQ(net.packets_sent(), 1);
}

}  // namespace
}  // namespace tempo::net
