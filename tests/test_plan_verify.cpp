// The Plan IR static verifier (src/pe/verify.h).
//
// Two halves:
//   * a must-reject corpus of hand-built malformed plans, each pinned
//     to the specific diagnostic the verifier must raise — including
//     the exact shape of the PR-6 words_needed under-count (a kept
//     loop whose bulk-op body touches more slots than the plan
//     declares), which the verifier must catch STATICALLY, before any
//     executor run could trip ASan;
//   * an admit-everything pass over real specializer output — the
//     paper's echo corpus and randomized plan-eligible shapes — which
//     must verify clean in paranoid mode.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/spec_cache.h"
#include "core/stubspec.h"
#include "idl/interp.h"
#include "pe/layout.h"
#include "pe/verify.h"

namespace tempo {
namespace {

using pe::PInstr;
using pe::Plan;
using pe::POp;
using pe::VerifyCode;
using pe::VerifyResult;

constexpr std::uint32_t kProg = 0x20000DD1;
constexpr std::uint32_t kVers = 3;
constexpr std::uint32_t kProcNum = 9;

bool has_issue(const VerifyResult& res, VerifyCode code) {
  for (const auto& issue : res.issues) {
    if (issue.code == code) return true;
  }
  return false;
}

// Every issue the must-reject corpus pins must also surface in the
// human diagnostics (that string is what verify_admit / the JIT's
// refusal path report).
void expect_rejected(const Plan& plan, VerifyCode code) {
  const VerifyResult res = pe::verify_plan(plan);
  EXPECT_FALSE(res.ok());
  EXPECT_TRUE(has_issue(res, code))
      << "expected " << pe::verify_code_name(code) << ", got: "
      << res.to_string();
  EXPECT_NE(res.to_string().find(pe::verify_code_name(code)),
            std::string::npos);
}

// ---- must-reject corpus ------------------------------------------------

// The PR-6 regression, distilled: a kept loop whose body is a bulk
// kGetBytes.  Each iteration advances two word slots; 20 iterations
// touch slots [0, 40), but the plan declares words_needed = 33 (the
// pre-fix extrapolation).  The executor would write slots 33..39 of a
// caller vector sized exactly words_needed — the verifier must reject
// the plan outright, with the slot numbers in the diagnostic.
TEST(PlanVerifyReject, LoopBulkSlotOverflow) {
  Plan plan;
  plan.is_encode = false;
  plan.expected_in = 4 + 20 * 8;
  plan.words_needed = 33;  // under-counted; the loop really needs 40
  plan.instrs = {
      {POp::kGuardLen, 0, 0, 0, plan.expected_in},
      {POp::kLoop, 0, /*iters=*/20, /*body=*/1,
       pack_loop_strides(pe::LoopStrides{/*off=*/8, /*word=*/2})},
      {POp::kGetBytes, /*off=*/4, /*slot bytes=*/0, /*len=*/8, 0},
  };
  const VerifyResult res = pe::verify_plan(plan);
  expect_rejected(plan, VerifyCode::kSlotOverflow);
  // With the honest slot count the same plan is fine.
  plan.words_needed = 40;
  EXPECT_TRUE(pe::verify_plan(plan).ok());
  // The facts must report the true high-water mark either way.
  EXPECT_EQ(res.facts.slot_end, 40u);  // 20 iterations * 2 slots
}

// A loop whose extrapolated byte offset exceeds 32 bits: the executor
// computes it * off_stride in uint32, which would silently wrap and
// alias low offsets.  The verifier must flag the loop itself.
TEST(PlanVerifyReject, StrideOverflow) {
  Plan plan;
  plan.is_encode = true;
  plan.out_size = 64;
  plan.words_needed = 4;
  plan.instrs = {
      {POp::kLoop, 0, /*iters=*/0x20000, /*body=*/1,
       pack_loop_strides(pe::LoopStrides{/*off=*/0x40000, /*word=*/0})},
      {POp::kPutWord, 0, 0, 0, 0},
  };
  expect_rejected(plan, VerifyCode::kStrideOverflow);

  // Word-stride variant: slot displacement (stride * 4 bytes) wraps.
  plan.instrs[0].imm =
      pack_loop_strides(pe::LoopStrides{/*off=*/0, /*word=*/0x60000000});
  expect_rejected(plan, VerifyCode::kStrideOverflow);
}

// Direction mixing: the executor's run-time "unexpected op" branch is
// supposed to be unreachable for admitted plans, so the verifier must
// reject both polarities.
TEST(PlanVerifyReject, DirectionMixed) {
  Plan encode;
  encode.is_encode = true;
  encode.out_size = 4;
  encode.words_needed = 1;
  encode.instrs = {{POp::kGetWord, 0, 0, 0, 0}};
  expect_rejected(encode, VerifyCode::kDirectionMixed);

  Plan decode;
  decode.is_encode = false;
  decode.expected_in = 4;
  decode.words_needed = 1;
  decode.instrs = {
      {POp::kGuardLen, 0, 0, 0, 4},
      {POp::kPutConst, 0, 0, 0, 7},
  };
  expect_rejected(decode, VerifyCode::kDirectionMixed);
}

// Out-of-bounds displacements, both buffers.  A 4-byte store starting
// at out_size - 3 overhangs by one byte and must be caught even though
// its offset is in range.
TEST(PlanVerifyReject, OutOfBoundsDisplacement) {
  Plan encode;
  encode.is_encode = true;
  encode.out_size = 8;
  encode.words_needed = 1;
  encode.instrs = {
      {POp::kPutConst, 0, 0, 0, 1},
      {POp::kPutWord, /*off=*/5, 0, 0, 0},  // writes [5, 9) past 8
  };
  expect_rejected(encode, VerifyCode::kOutOfBoundsOut);

  Plan decode;
  decode.is_encode = false;
  decode.expected_in = 8;
  decode.words_needed = 2;
  decode.instrs = {
      {POp::kGuardLen, 0, 0, 0, 8},
      {POp::kGetWord, /*off=*/8, 0, 0, 0},  // reads [8, 12) past 8
  };
  expect_rejected(decode, VerifyCode::kOutOfBoundsIn);

  // Loop-extrapolated variant: in range for iteration 0, out of range
  // only at the final iteration.
  Plan loop;
  loop.is_encode = true;
  loop.out_size = 4 * 10;
  loop.words_needed = 11;
  loop.instrs = {
      {POp::kLoop, 0, /*iters=*/11, /*body=*/1,
       pack_loop_strides(pe::LoopStrides{/*off=*/4, /*word=*/1})},
      {POp::kPutWord, 0, 0, 0, 0},  // iteration 10 writes [40, 44)
  };
  expect_rejected(loop, VerifyCode::kOutOfBoundsOut);
}

// A kLoop body extending past the instruction stream: the executor
// would walk off the vector.
TEST(PlanVerifyReject, TruncatedLoopBody) {
  Plan plan;
  plan.is_encode = true;
  plan.out_size = 8;
  plan.words_needed = 2;
  plan.instrs = {
      {POp::kLoop, 0, /*iters=*/2, /*body=*/3,
       pack_loop_strides(pe::LoopStrides{4, 1})},
      {POp::kPutWord, 0, 0, 0, 0},  // only one body instruction exists
  };
  expect_rejected(plan, VerifyCode::kTruncatedLoopBody);
}

// Nested kLoop: the executor interprets the stream flat, so a nested
// loop header would be run as a (misinterpreted) body op.
TEST(PlanVerifyReject, NestedLoop) {
  Plan plan;
  plan.is_encode = true;
  plan.out_size = 16;
  plan.words_needed = 4;
  plan.instrs = {
      {POp::kLoop, 0, /*iters=*/2, /*body=*/2,
       pack_loop_strides(pe::LoopStrides{8, 2})},
      {POp::kLoop, 0, /*iters=*/2, /*body=*/1,
       pack_loop_strides(pe::LoopStrides{4, 1})},
      {POp::kPutWord, 0, 0, 0, 0},
  };
  expect_rejected(plan, VerifyCode::kNestedLoop);
}

// A decode plan that reads input without any declared length: the
// executor SKIPS its in.size() precheck when expected_in == 0, so such
// a plan would read past short payloads unchecked.
TEST(PlanVerifyReject, MissingLenContract) {
  Plan plan;
  plan.is_encode = false;
  plan.expected_in = 0;
  plan.words_needed = 1;
  plan.instrs = {{POp::kGetWord, 0, 0, 0, 0}};
  expect_rejected(plan, VerifyCode::kMissingLenContract);

  // kSetWordConst never touches the buffer, so a read-free decode plan
  // with expected_in == 0 is legitimate (e.g. a fully-static reply).
  Plan pure;
  pure.is_encode = false;
  pure.expected_in = 0;
  pure.words_needed = 1;
  pure.instrs = {{POp::kSetWordConst, 0, 0, 0, 42}};
  EXPECT_TRUE(pe::verify_plan(pure).ok());
}

// The §6.2 inlen guard and the executor's precheck must agree.
TEST(PlanVerifyReject, GuardLenMismatch) {
  Plan plan;
  plan.is_encode = false;
  plan.expected_in = 12;
  plan.words_needed = 1;
  plan.instrs = {
      {POp::kGuardLen, 0, 0, 0, /*imm=*/16},  // guard says 16, plan says 12
      {POp::kGetWord, 0, 0, 0, 0},
  };
  expect_rejected(plan, VerifyCode::kGuardLenMismatch);
}

// An encode plan leaving a provable gap would send the caller's
// uninitialized buffer bytes onto the wire.
TEST(PlanVerifyReject, IncompleteOutput) {
  Plan plan;
  plan.is_encode = true;
  plan.out_size = 12;
  plan.words_needed = 1;
  plan.instrs = {
      {POp::kPutConst, 0, 0, 0, 1},
      {POp::kPutWord, /*off=*/8, 0, 0, 0},  // [4, 8) never written
  };
  expect_rejected(plan, VerifyCode::kIncompleteOutput);

  // Filling the gap makes the same plan verify clean, with exact
  // coverage reported in the facts.
  plan.instrs.push_back({POp::kPutConst, /*off=*/4, 0, 0, 0});
  const VerifyResult res = pe::verify_plan(plan);
  EXPECT_TRUE(res.ok()) << res.to_string();
  EXPECT_TRUE(res.facts.coverage_exact);
  EXPECT_EQ(res.facts.out_end, 12u);
}

// Bulk-op pad tails count: kPutBytes writes pad4(b) output bytes, so a
// 5-byte payload at out_size - 5 overhangs via its zero pad.
TEST(PlanVerifyReject, PadTailOverhang) {
  Plan plan;
  plan.is_encode = true;
  plan.out_size = 9;  // 4 + 5 payload bytes, but pad4(5) = 8
  plan.words_needed = 2;
  plan.instrs = {
      {POp::kPutConst, 0, 0, 0, 5},
      {POp::kPutBytes, /*off=*/4, /*bytes=*/0, /*len=*/5, 0},
  };
  expect_rejected(plan, VerifyCode::kOutOfBoundsOut);
  plan.out_size = 12;  // room for the pad
  EXPECT_TRUE(pe::verify_plan(plan).ok());
}

// ---- admit-everything: real specializer output -------------------------

idl::ProcDef echo_proc() {
  idl::ProcDef proc;
  proc.name = "ECHO";
  proc.number = kProcNum;
  proc.arg_type = idl::t_array_var(idl::t_int(), 2048);
  proc.res_type = idl::t_array_var(idl::t_int(), 2048);
  return proc;
}

void expect_iface_verifies(const core::SpecializedInterface& iface,
                           const std::string& trace) {
  const struct {
    const char* name;
    const pe::Plan& plan;
  } plans[] = {{"encode_call", iface.encode_call_plan()},
               {"decode_reply", iface.decode_reply_plan()},
               {"decode_args", iface.decode_args_plan()},
               {"encode_results", iface.encode_results_plan()}};
  for (const auto& p : plans) {
    const VerifyResult res = pe::verify_plan(p.plan);
    EXPECT_TRUE(res.ok()) << trace << " " << p.name << ": "
                          << res.to_string();
    if (p.plan.is_encode) {
      // Specializer encode plans are exactly-covering by construction.
      EXPECT_TRUE(res.facts.coverage_exact) << trace << " " << p.name;
      EXPECT_EQ(res.facts.out_end, p.plan.out_size) << trace << " " << p.name;
    } else {
      // Decode plans always carry the §6.2 length contract.
      EXPECT_TRUE(res.facts.has_len_guard) << trace << " " << p.name;
      EXPECT_GT(p.plan.expected_in, 0u) << trace << " " << p.name;
    }
  }
}

TEST(PlanVerifyAdmit, PaperEchoCorpus) {
  pe::set_verify_mode(pe::VerifyMode::kParanoid);
  for (std::uint32_t n : {20u, 100u, 250u, 500u, 1000u, 2000u}) {
    for (std::uint32_t unroll : {0u, 4u}) {
      core::SpecConfig cfg;
      cfg.arg_counts = {n};
      cfg.res_counts = {n};
      cfg.unroll_factor = unroll;
      auto iface = core::SpecializedInterface::build(echo_proc(), kProg,
                                                     kVers, cfg);
      ASSERT_TRUE(iface.is_ok()) << iface.status().to_string();
      expect_iface_verifies(*iface, "echo n=" + std::to_string(n) +
                                        " unroll=" + std::to_string(unroll));
    }
  }
  pe::set_verify_mode(pe::VerifyMode::kAdmit);
}

// Same generator the three-tier differential test uses: every
// plan-eligible shape the specializer can produce must admit cleanly in
// paranoid mode.  (A verifier that rejects valid plans would silently
// push traffic back onto the generic path — this is the
// false-positive guard.)
idl::TypePtr random_eligible_type(Rng& rng, int depth, bool allow_var) {
  using namespace idl;
  const std::uint32_t kinds = depth >= 2 ? 8u : (allow_var ? 11u : 10u);
  switch (rng.next_below(kinds)) {
    case 0: return t_int();
    case 1: return t_uint();
    case 2: return t_bool();
    case 3: return t_hyper();
    case 4: return t_uhyper();
    case 5: return t_float();
    case 6: return t_double();
    case 7: return t_opaque_fixed(1 + rng.next_below(17));
    case 8: {
      std::vector<Field> fields;
      const std::uint32_t n = 1 + rng.next_below(4);
      for (std::uint32_t i = 0; i < n; ++i) {
        fields.push_back({"f" + std::to_string(i),
                          random_eligible_type(rng, depth + 1, allow_var)});
      }
      return t_struct("s" + std::to_string(depth), std::move(fields));
    }
    case 9:
      return t_array_fixed(random_eligible_type(rng, depth + 1, false),
                           1 + rng.next_below(6));
    default:
      return t_array_var(random_eligible_type(rng, depth + 1, false),
                         1 + rng.next_below(300));
  }
}

TEST(PlanVerifyAdmit, RandomizedShapes) {
  pe::set_verify_mode(pe::VerifyMode::kParanoid);
  Rng rng(0x5EC0DE5u);
  for (int iter = 0; iter < 32; ++iter) {
    const idl::TypePtr type = random_eligible_type(rng, 0, /*allow_var=*/true);
    idl::ProcDef proc;
    proc.name = "verify";
    proc.number = kProcNum;
    proc.arg_type = type;
    proc.res_type = type;

    const idl::Value value = idl::random_value(*type, rng, 12);
    std::vector<std::uint32_t> counts;
    ASSERT_TRUE(pe::collect_counts(*type, value, counts).is_ok());

    core::SpecConfig cfg;
    cfg.arg_counts = counts;
    cfg.res_counts = counts;
    static constexpr std::uint32_t kUnrolls[] = {0, 1, 4, 250};
    cfg.unroll_factor = kUnrolls[iter % 4];
    auto iface = core::SpecializedInterface::build(proc, kProg, kVers, cfg);
    ASSERT_TRUE(iface.is_ok()) << iface.status().to_string();
    expect_iface_verifies(*iface, "iter=" + std::to_string(iter));
  }
  pe::set_verify_mode(pe::VerifyMode::kAdmit);
}

// ---- the admission pass and its knob -----------------------------------

Plan bad_plan() {
  Plan plan;
  plan.is_encode = true;
  plan.out_size = 4;
  plan.words_needed = 1;
  plan.instrs = {{POp::kPutWord, /*off=*/4, 0, 0, 0}};  // [4, 8) past 4
  return plan;
}

TEST(PlanVerifyAdmit, AdmissionKnob) {
  const Plan bad = bad_plan();

  pe::set_verify_mode(pe::VerifyMode::kOff);
  EXPECT_TRUE(pe::verify_admit(bad, "encode_call").is_ok());

  pe::set_verify_mode(pe::VerifyMode::kAdmit);
  const std::int64_t before = pe::verify_reject_count();
  const Status rejected = pe::verify_admit(bad, "encode_call");
  EXPECT_FALSE(rejected.is_ok());
  EXPECT_EQ(rejected.code(), StatusCode::kOutOfRange);
  // The entry point and the diagnostic both ride in the message.
  EXPECT_NE(rejected.message().find("encode_call"), std::string::npos);
  EXPECT_NE(rejected.message().find(
                pe::verify_code_name(VerifyCode::kOutOfBoundsOut)),
            std::string::npos);
  EXPECT_EQ(pe::verify_reject_count(), before + 1);

  // A good plan admits in every mode.
  Plan good = bad;
  good.instrs[0].off = 0;  // writes exactly [0, 4) = out_size
  EXPECT_TRUE(pe::verify_admit(good, "encode_call").is_ok());
  pe::set_verify_mode(pe::VerifyMode::kParanoid);
  EXPECT_TRUE(pe::verify_admit(good, "encode_call").is_ok());
  pe::set_verify_mode(pe::VerifyMode::kAdmit);
}

// End-to-end through the cache: paranoid mode re-verifies at publish,
// and a clean corpus must yield zero spec_cache.verify_rejects.
TEST(PlanVerifyAdmit, SpecCachePassesCleanCorpus) {
  pe::set_verify_mode(pe::VerifyMode::kParanoid);
  core::SpecCache cache(/*capacity=*/8);
  core::SpecConfig cfg;
  cfg.arg_counts = {64};
  cfg.res_counts = {64};
  for (int i = 0; i < 3; ++i) {
    auto r = cache.get_or_build(echo_proc(), kProg, kVers, cfg);
    ASSERT_TRUE(r.is_ok());
  }
  const core::SpecCacheStats st = cache.stats();
  EXPECT_EQ(st.misses, 1);
  EXPECT_EQ(st.verify_rejects, 0);
  EXPECT_EQ(st.build_failures, 0);
  pe::set_verify_mode(pe::VerifyMode::kAdmit);
}

}  // namespace
}  // namespace tempo
