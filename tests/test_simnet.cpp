// Simulated-network tests: delivery, virtual-time accounting, fault
// injection determinism, handler (server) endpoints, and the specialized
// RPC client's behaviour under drop/duplicate/reorder schedules.
#include <gtest/gtest.h>

#include <vector>

#include "core/generic_client.h"
#include "core/service.h"
#include "core/spec_client.h"
#include "core/stubspec.h"
#include "net/simnet.h"
#include "rpc/svc.h"

namespace tempo::net {
namespace {

Bytes msg(std::initializer_list<std::uint8_t> b) { return Bytes(b); }

TEST(SimNet, DeliversInOrderWithLatency) {
  LinkParams p;
  p.latency_us = 100.0;
  p.bandwidth_mbps = 100.0;
  p.per_packet_cpu_us = 0.0;
  SimNetwork net(p);
  auto* a = net.create_endpoint();
  auto* b = net.create_endpoint();

  Bytes m1 = msg({1, 2, 3, 4});
  ASSERT_TRUE(a->send_to(b->local_addr(), ByteSpan(m1.data(), m1.size()))
                  .is_ok());

  Bytes out(16);
  Addr src;
  auto got = b->recv_from(&src, MutableByteSpan(out.data(), out.size()),
                          kBlockForever);
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(*got, 4u);
  EXPECT_EQ(src, a->local_addr());
  EXPECT_EQ(out[0], 1);

  // Virtual time advanced by latency + serialization: 100us + 32 bits /
  // 100 Mb/s = 100.32 us.
  EXPECT_NEAR(static_cast<double>(net.now()), 100320.0, 1.0);
}

TEST(SimNet, RecvTimesOutInVirtualTime) {
  SimNetwork net;
  auto* a = net.create_endpoint();
  Bytes out(4);
  auto got = a->recv_from(nullptr, MutableByteSpan(out.data(), out.size()),
                          /*timeout_ms=*/50);
  EXPECT_EQ(got.status().code(), StatusCode::kTimeout);
  EXPECT_GE(net.now(), 50'000'000);  // clock advanced to the deadline
}

TEST(SimNet, HandlerEndpointsProcessInline) {
  SimNetwork net;
  auto* server = net.create_endpoint(2049);
  auto* client = net.create_endpoint();

  // Echo server: send back whatever arrives.
  server->set_handler([server](const Addr& src, ByteSpan payload) {
    Bytes bump(payload.begin(), payload.end());
    for (auto& x : bump) x += 1;
    ASSERT_TRUE(server->send_to(src, ByteSpan(bump.data(), bump.size()))
                    .is_ok());
  });

  Bytes m = msg({10, 20, 30});
  ASSERT_TRUE(client
                  ->send_to(server->local_addr(),
                            ByteSpan(m.data(), m.size()))
                  .is_ok());
  Bytes out(8);
  auto got = client->recv_from(nullptr,
                               MutableByteSpan(out.data(), out.size()),
                               kBlockForever);
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(*got, 3u);
  EXPECT_EQ(out[0], 11);
  EXPECT_EQ(out[2], 31);
}

TEST(SimNet, DropAndDuplicateAreDeterministic) {
  auto run_once = [](std::uint64_t seed) {
    LinkParams p;
    p.drop_prob = 0.3;
    p.dup_prob = 0.2;
    SimNetwork net(p, seed);
    auto* a = net.create_endpoint();
    auto* b = net.create_endpoint();
    int delivered = 0;
    for (int i = 0; i < 100; ++i) {
      Bytes m = msg({static_cast<std::uint8_t>(i)});
      EXPECT_TRUE(
          a->send_to(b->local_addr(), ByteSpan(m.data(), m.size())).is_ok());
    }
    net.pump();
    Bytes out(4);
    while (b->recv_from(nullptr, MutableByteSpan(out.data(), out.size()), 0)
               .is_ok()) {
      ++delivered;
    }
    return std::pair<int, std::int64_t>(delivered, net.packets_dropped());
  };
  const auto [d1, drop1] = run_once(42);
  const auto [d2, drop2] = run_once(42);
  EXPECT_EQ(d1, d2);  // same seed, same fate
  EXPECT_EQ(drop1, drop2);
  EXPECT_GT(drop1, 10);
  EXPECT_LT(drop1, 60);
  const auto [d3, drop3] = run_once(43);
  EXPECT_TRUE(d3 != d1 || drop3 != drop1);  // different seed, different plan
}

TEST(SimNet, CorruptionFlipsBytes) {
  LinkParams p;
  p.corrupt_prob = 1.0;  // corrupt every packet
  SimNetwork net(p, 7);
  auto* a = net.create_endpoint();
  auto* b = net.create_endpoint();
  Bytes m = msg({0x55, 0x55, 0x55, 0x55});
  ASSERT_TRUE(
      a->send_to(b->local_addr(), ByteSpan(m.data(), m.size())).is_ok());
  Bytes out(4);
  auto got = b->recv_from(nullptr, MutableByteSpan(out.data(), out.size()),
                          kBlockForever);
  ASSERT_TRUE(got.is_ok());
  int flipped = 0;
  for (auto x : out) {
    if (x != 0x55) ++flipped;
  }
  EXPECT_EQ(flipped, 1);  // exactly one byte XOR'd
}

TEST(SimNet, LinkProfilesOrdering) {
  // The ATM/IPX profile must cost more per packet than Fast Ethernet —
  // that ordering drives the Table 2 platform gap.
  const LinkParams atm = LinkParams::atm_ipx();
  const LinkParams eth = LinkParams::ethernet_pc();
  EXPECT_GT(atm.latency_us + atm.per_packet_cpu_us,
            eth.latency_us + eth.per_packet_cpu_us);
  EXPECT_EQ(atm.bandwidth_mbps, eth.bandwidth_mbps);  // both "100 Mb/s"
}

TEST(SimNet, UnknownDestinationIsSilentlyLost) {
  SimNetwork net;
  auto* a = net.create_endpoint();
  Bytes m = msg({1});
  EXPECT_TRUE(
      a->send_to(Addr{0x7F000001, 9999}, ByteSpan(m.data(), m.size()))
          .is_ok());
  net.pump();  // no crash, nothing delivered
  EXPECT_EQ(net.packets_sent(), 1);
}

// ---- RPC fault schedules over the simulated link --------------------------
//
// The guarded-specialization contract (paper §6.2) under packet faults:
//  * a duplicated reply shows up while the client waits for the *next*
//    call's reply — the residual decode plan's XID guard fires
//    ExecStatus::kRetryXid and the client keeps waiting (counted in
//    stats().stale_replies), never decoding stale bytes into results;
//  * a dropped request or reply drives the retransmission path;
//  * because stale datagrams are exactly "reordered" traffic from an
//    earlier exchange, the duplicate schedules double as reorder
//    schedules from the client's point of view.
// In every case the specialized client must produce the same results as
// the generic layered client run against the identical fault plan.

namespace {

constexpr std::uint32_t kFaultProg = 0x20000778;
constexpr std::uint32_t kFaultVers = 1;

idl::ProcDef fault_echo_proc() {
  idl::ProcDef proc;
  proc.name = "ECHO";
  proc.number = 7;
  proc.arg_type = idl::t_array_var(idl::t_int(), 256);
  proc.res_type = idl::t_array_var(idl::t_int(), 256);
  return proc;
}

// Generic echo server on a sim endpoint.
void attach_echo_server(SimEndpoint* ep, rpc::SvcRegistry& reg) {
  const auto t = fault_echo_proc().arg_type;
  core::register_value_handler(reg, kFaultProg, kFaultVers, 7, t, t,
                               [](const idl::Value& v) -> Result<idl::Value> {
                                 return v;
                               });
  rpc::attach_sim_server(ep, reg);
}

TEST(SimNetRpcFaults, DuplicatedRepliesSurfaceAsStaleRetries) {
  const std::uint32_t n = 16;
  core::SpecConfig cfg;
  cfg.arg_counts = {n};
  cfg.res_counts = {n};
  auto iface = core::SpecializedInterface::build(fault_echo_proc(),
                                                 kFaultProg, kFaultVers, cfg);
  ASSERT_TRUE(iface.is_ok());

  LinkParams p;
  p.dup_prob = 1.0;  // every datagram delivered twice
  SimNetwork net(p, /*fault_seed=*/11);
  auto* server_ep = net.create_endpoint();
  auto* client_ep = net.create_endpoint();
  rpc::SvcRegistry reg;
  attach_echo_server(server_ep, reg);

  core::SpecializedClient client(*client_ep, server_ep->local_addr(),
                                 *iface);
  std::vector<std::uint32_t> args(n), results(n, 0);
  for (int round = 0; round < 8; ++round) {
    for (std::uint32_t i = 0; i < n; ++i) {
      args[i] = static_cast<std::uint32_t>(round * 1000 + i);
    }
    std::fill(results.begin(), results.end(), 0);
    Status st = client.call(args, results);
    ASSERT_TRUE(st.is_ok()) << st.to_string();
    ASSERT_EQ(results, args);  // stale duplicates never leak into results
  }
  // Duplicates of earlier replies arrived with old XIDs: the plan's XID
  // guard surfaced them as kRetryXid, not as data.
  EXPECT_GT(client.stats().stale_replies, 0);
}

TEST(SimNetRpcFaults, DropScheduleDrivesRetransmission) {
  const std::uint32_t n = 16;
  core::SpecConfig cfg;
  cfg.arg_counts = {n};
  cfg.res_counts = {n};
  auto iface = core::SpecializedInterface::build(fault_echo_proc(),
                                                 kFaultProg, kFaultVers, cfg);
  ASSERT_TRUE(iface.is_ok());

  LinkParams p;
  p.drop_prob = 0.35;
  SimNetwork net(p, /*fault_seed=*/42);
  auto* server_ep = net.create_endpoint();
  auto* client_ep = net.create_endpoint();
  rpc::SvcRegistry reg;
  attach_echo_server(server_ep, reg);

  core::SpecializedClient client(*client_ep, server_ep->local_addr(),
                                 *iface);
  std::vector<std::uint32_t> args(n), results(n, 0);
  for (int round = 0; round < 10; ++round) {
    for (std::uint32_t i = 0; i < n; ++i) {
      args[i] = static_cast<std::uint32_t>(round * 77 + i);
    }
    std::fill(results.begin(), results.end(), 0);
    Status st = client.call(args, results);
    ASSERT_TRUE(st.is_ok()) << st.to_string();
    ASSERT_EQ(results, args);
  }
  EXPECT_GT(client.stats().retransmissions, 0);
}

// Same seeded drop+duplicate schedule, specialized vs generic client:
// both must converge to identical results call for call.
TEST(SimNetRpcFaults, SpecializedMatchesGenericOnSameSchedule) {
  const std::uint32_t n = 12;
  constexpr int kCalls = 12;
  LinkParams p;
  p.drop_prob = 0.3;
  p.dup_prob = 0.5;
  constexpr std::uint64_t kSeed = 77;

  auto make_args = [&](int round) {
    std::vector<std::uint32_t> args(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      args[i] = static_cast<std::uint32_t>(round * 31 + i * 7);
    }
    return args;
  };

  // Specialized run.
  std::vector<std::vector<std::uint32_t>> spec_results;
  {
    core::SpecConfig cfg;
    cfg.arg_counts = {n};
    cfg.res_counts = {n};
    auto iface = core::SpecializedInterface::build(
        fault_echo_proc(), kFaultProg, kFaultVers, cfg);
    ASSERT_TRUE(iface.is_ok());
    SimNetwork net(p, kSeed);
    auto* server_ep = net.create_endpoint();
    auto* client_ep = net.create_endpoint();
    rpc::SvcRegistry reg;
    attach_echo_server(server_ep, reg);
    core::SpecializedClient client(*client_ep, server_ep->local_addr(),
                                   *iface);
    for (int round = 0; round < kCalls; ++round) {
      const auto args = make_args(round);
      std::vector<std::uint32_t> results(n, 0);
      Status st = client.call(args, results);
      ASSERT_TRUE(st.is_ok()) << "call " << round << ": " << st.to_string();
      spec_results.push_back(results);
    }
  }

  // Generic run on a fresh network with the identical fault plan.
  {
    const auto t = fault_echo_proc().arg_type;
    SimNetwork net(p, kSeed);
    auto* server_ep = net.create_endpoint();
    auto* client_ep = net.create_endpoint();
    rpc::SvcRegistry reg;
    attach_echo_server(server_ep, reg);
    core::GenericValueClient client(*client_ep, server_ep->local_addr(),
                                    kFaultProg, kFaultVers);
    for (int round = 0; round < kCalls; ++round) {
      const auto args = make_args(round);
      idl::Value arg;
      idl::ValueList elems;
      for (auto a : args) {
        idl::Value e;
        e.v = static_cast<std::int32_t>(a);
        elems.push_back(e);
      }
      arg.v = elems;
      auto res = client.call(7, *t, arg, *t);
      ASSERT_TRUE(res.is_ok()) << "call " << round << ": "
                               << res.status().to_string();
      const auto& list = res->as<idl::ValueList>();
      ASSERT_EQ(list.size(), n);
      std::vector<std::uint32_t> results(n);
      for (std::uint32_t i = 0; i < n; ++i) {
        results[i] =
            static_cast<std::uint32_t>(list[i].as<std::int32_t>());
      }
      // Never corrupted, and identical to the specialized run.
      EXPECT_EQ(results, spec_results[static_cast<std::size_t>(round)])
          << "call " << round;
      EXPECT_EQ(results, args) << "call " << round;
    }
  }
}

}  // namespace

}  // namespace
}  // namespace tempo::net
