// RPC server side — port of Sun's svc.c / svc_udp.c / svc_tcp.c.
//
// SvcRegistry holds the dispatch table ((prog, vers, proc) -> handler)
// and implements the transport-independent request->reply transform,
// including every protocol error reply (RPC_MISMATCH, AUTH_ERROR,
// PROG_UNAVAIL, PROG_MISMATCH, PROC_UNAVAIL, GARBAGE_ARGS).
// UdpServer / TcpServer bind it to transports; SimEndpoint handlers bind
// it to the simulated network.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <tuple>

#include "common/status.h"
#include "net/simnet.h"
#include "net/tcp.h"
#include "net/transport.h"
#include "rpc/rpc_msg.h"
#include "xdr/xdrmem.h"

namespace tempo::rpc {

// Decodes arguments from `args_in` and encodes results into `res_out`.
// Returning false yields a GARBAGE_ARGS reply.
using SvcHandler =
    std::function<bool(xdr::XdrStream& args_in, xdr::XdrStream& res_out)>;

// Optional credential gate; non-kOk yields an AUTH_ERROR rejection.
using AuthChecker = std::function<AuthStat(const OpaqueAuth& cred)>;

struct SvcStats {
  std::int64_t requests = 0;
  std::int64_t success = 0;
  std::int64_t protocol_errors = 0;  // any non-SUCCESS reply
  std::int64_t undecodable = 0;      // header garbled: no reply possible
};

class SvcRegistry {
 public:
  void register_proc(std::uint32_t prog, std::uint32_t vers,
                     std::uint32_t proc, SvcHandler handler);
  void unregister_program(std::uint32_t prog);
  void set_auth_checker(AuthChecker checker) { auth_ = std::move(checker); }

  // Core transform: reads one call message from `in`, writes the full
  // reply message into `out`.  Returns false iff the request was so
  // malformed that no reply can be produced (caller drops it).
  bool dispatch(xdr::XdrStream& in, xdr::XdrMem& out);

  // Convenience for datagram transports: request bytes -> reply bytes.
  // Empty result means "drop".
  Bytes handle_datagram(ByteSpan request);

  const SvcStats& stats() const { return stats_; }

  // When true (default, faithful to the original), the datagram path
  // clears its receive scratch before each request — the bzero the paper
  // names as a round-trip cost (§5 "Round-trip RPC").
  void set_clear_input_buffer(bool on) { clear_input_ = on; }

 private:
  using Key = std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>;
  std::map<Key, SvcHandler> handlers_;
  std::map<std::uint32_t, std::pair<std::uint32_t, std::uint32_t>>
      version_bounds_;  // prog -> [low, high]
  AuthChecker auth_;
  SvcStats stats_;
  bool clear_input_ = true;
  Bytes scratch_out_;
};

// Serves a DatagramTransport (real UDP socket or polled sim endpoint).
class UdpServer {
 public:
  UdpServer(net::DatagramTransport& transport, SvcRegistry& registry)
      : transport_(transport), registry_(registry) {}

  // Serve at most one request; false on timeout.
  bool poll_once(int timeout_ms);
  // Loop until `stop` becomes true (run this on a thread).
  void serve(const std::atomic<bool>& stop);

 private:
  net::DatagramTransport& transport_;
  SvcRegistry& registry_;
  Bytes recv_buf_ = Bytes(65000);
};

// Installs a SimEndpoint handler so requests dispatch inline while the
// simulated network is pumped.  Reply send cost is charged to the link.
void attach_sim_server(net::SimEndpoint* endpoint, SvcRegistry& registry);

// Accepts loopback TCP connections and serves record-marked calls.
class TcpServer {
 public:
  TcpServer(net::TcpListener& listener, SvcRegistry& registry)
      : listener_(listener), registry_(registry) {}

  // Accept one connection and serve calls on it until the peer closes
  // or `stop` becomes true.  Returns number of calls served.
  int serve_one_connection(const std::atomic<bool>& stop,
                           int accept_timeout_ms = 2000);
  // Loop accepting connections until stopped.
  void serve(const std::atomic<bool>& stop);

 private:
  net::TcpListener& listener_;
  SvcRegistry& registry_;
};

}  // namespace tempo::rpc
