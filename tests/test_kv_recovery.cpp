// WAL crash-recovery suite (src/kv/wal.h): kill-after-partial-append,
// corrupt/torn tail bytes, broken sequence chains, double-replay
// idempotence — in every case recovery must restore EXACTLY the
// committed prefix (the pinned acceptance regression for this
// subsystem) and truncate the torn tail so appends continue cleanly.
#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/endian.h"
#include "kv/repl.h"
#include "kv/service.h"
#include "kv/wal.h"

namespace tempo {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "kv_recovery_" + name + "_" +
         std::to_string(::getpid());
}

Bytes read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  return Bytes(std::istreambuf_iterator<char>(f),
               std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const Bytes& bytes) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f.write(reinterpret_cast<const char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
}

// Collects replayed (seq, payload) pairs.
struct Replayed {
  std::vector<std::pair<std::uint64_t, Bytes>> records;
  auto replay_fn() {
    return [this](std::uint64_t seq, ByteSpan payload) {
      records.emplace_back(seq, Bytes(payload.begin(), payload.end()));
    };
  }
};

Bytes payload_for(int i) {
  const std::string s = "record-" + std::to_string(i) + "-" +
                        std::string(static_cast<std::size_t>(i % 37), 'p');
  return Bytes(s.begin(), s.end());
}

TEST(KvWal, CommitReplayRoundTrip) {
  const std::string path = temp_path("roundtrip");
  std::remove(path.c_str());
  {
    auto wal = kv::Wal::open(path, {}, nullptr);
    ASSERT_TRUE(wal.is_ok());
    for (int i = 0; i < 20; ++i) {
      auto seq = (*wal)->commit(payload_for(i));
      ASSERT_TRUE(seq.is_ok());
      EXPECT_EQ(*seq, static_cast<std::uint64_t>(i + 1));
    }
    EXPECT_EQ((*wal)->durable_seq(), 20u);
  }
  Replayed got;
  kv::WalRecovery rec;
  auto wal = kv::Wal::open(path, {}, got.replay_fn(), &rec);
  ASSERT_TRUE(wal.is_ok());
  EXPECT_EQ(rec.last_seq, 20u);
  EXPECT_EQ(rec.records, 20u);
  EXPECT_EQ(rec.truncated_bytes, 0u);
  ASSERT_EQ(got.records.size(), 20u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(got.records[static_cast<std::size_t>(i)].first,
              static_cast<std::uint64_t>(i + 1));
    EXPECT_EQ(got.records[static_cast<std::size_t>(i)].second,
              payload_for(i));
  }
  // Appends continue the recovered chain.
  auto seq = (*wal)->commit(payload_for(20));
  ASSERT_TRUE(seq.is_ok());
  EXPECT_EQ(*seq, 21u);
  std::remove(path.c_str());
}

TEST(KvWal, KillAfterPartialAppendRecoversCommittedPrefix) {
  const std::string path = temp_path("partial");
  std::remove(path.c_str());
  {
    auto wal = kv::Wal::open(path, {}, nullptr);
    ASSERT_TRUE(wal.is_ok());
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE((*wal)->commit(payload_for(i)).is_ok());
    }
  }
  // Simulate a crash mid-append: cut into the last frame's body.
  Bytes file = read_file(path);
  const std::size_t whole = file.size();
  file.resize(whole - 3);
  write_file(path, file);

  Replayed got;
  kv::WalRecovery rec;
  {
    auto wal = kv::Wal::open(path, {}, got.replay_fn(), &rec);
    ASSERT_TRUE(wal.is_ok());
    EXPECT_EQ(rec.records, 4u);
    EXPECT_EQ(rec.last_seq, 4u);
    EXPECT_GT(rec.truncated_bytes, 0u);
    // The torn record's sequence is reassigned to the NEXT commit.
    auto seq = (*wal)->commit(payload_for(99));
    ASSERT_TRUE(seq.is_ok());
    EXPECT_EQ(*seq, 5u);
  }
  // After truncation + new append the log replays clean: 4 old + 1 new.
  Replayed again;
  kv::WalRecovery rec2;
  auto wal = kv::Wal::open(path, {}, again.replay_fn(), &rec2);
  ASSERT_TRUE(wal.is_ok());
  EXPECT_EQ(rec2.records, 5u);
  EXPECT_EQ(rec2.truncated_bytes, 0u);
  EXPECT_EQ(again.records.back().second, payload_for(99));
  std::remove(path.c_str());
}

TEST(KvWal, CorruptTailByteDropsOnlyTheTornFrame) {
  const std::string path = temp_path("corrupt");
  std::remove(path.c_str());
  std::vector<std::size_t> frame_starts;
  {
    auto wal = kv::Wal::open(path, {}, nullptr);
    ASSERT_TRUE(wal.is_ok());
    std::size_t off = 0;
    for (int i = 0; i < 3; ++i) {
      frame_starts.push_back(off);
      ASSERT_TRUE((*wal)->commit(payload_for(i)).is_ok());
      off += 16 + payload_for(i).size();
    }
  }
  // Flip one payload byte in the LAST frame: its CRC must now fail.
  Bytes file = read_file(path);
  file[frame_starts[2] + 16] ^= 0x40;
  write_file(path, file);

  Replayed got;
  kv::WalRecovery rec;
  {
    auto wal = kv::Wal::open(path, {}, got.replay_fn(), &rec);
    ASSERT_TRUE(wal.is_ok());
    EXPECT_EQ(rec.records, 2u);
    EXPECT_GT(rec.truncated_bytes, 0u);
  }
  // Torn-tail truncation happened on disk.
  EXPECT_EQ(read_file(path).size(), frame_starts[2]);
  std::remove(path.c_str());
}

TEST(KvWal, BrokenSequenceChainEndsTheCommittedPrefix) {
  const std::string path = temp_path("seqchain");
  std::remove(path.c_str());
  {
    auto wal = kv::Wal::open(path, {}, nullptr);
    ASSERT_TRUE(wal.is_ok());
    ASSERT_TRUE((*wal)->commit(payload_for(0)).is_ok());
    ASSERT_TRUE((*wal)->commit(payload_for(1)).is_ok());
  }
  // Hand-craft a frame with a VALID crc but seq 9 (chain expects 3).
  Bytes file = read_file(path);
  const Bytes payload = payload_for(2);
  Bytes frame(16 + payload.size());
  store_be32(frame.data(), static_cast<std::uint32_t>(payload.size()));
  store_be64(frame.data() + 8, 9);
  std::copy(payload.begin(), payload.end(), frame.begin() + 16);
  store_be32(frame.data() + 4,
             kv::crc32_ieee(0, ByteSpan(frame.data() + 8,
                                        8 + payload.size())));
  file.insert(file.end(), frame.begin(), frame.end());
  write_file(path, file);

  Replayed got;
  kv::WalRecovery rec;
  auto wal = kv::Wal::open(path, {}, got.replay_fn(), &rec);
  ASSERT_TRUE(wal.is_ok());
  EXPECT_EQ(rec.records, 2u);
  EXPECT_EQ(rec.last_seq, 2u);
  EXPECT_EQ(rec.truncated_bytes, frame.size());
  std::remove(path.c_str());
}

TEST(KvWal, GroupCommitFromManyThreadsStaysContiguousAndDurable) {
  const std::string path = temp_path("group");
  std::remove(path.c_str());
  constexpr int kThreads = 8;
  constexpr int kPerThread = 25;
  {
    auto wal = kv::Wal::open(path, {}, nullptr);
    ASSERT_TRUE(wal.is_ok());
    std::vector<std::thread> threads;
    std::atomic<int> failures{0};
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&wal, &failures, t] {
        for (int i = 0; i < kPerThread; ++i) {
          auto seq = (*wal)->commit(payload_for(t * kPerThread + i));
          if (!seq.is_ok() || *seq == 0) failures.fetch_add(1);
        }
      });
    }
    for (auto& th : threads) th.join();
    EXPECT_EQ(failures.load(), 0);
    EXPECT_EQ((*wal)->durable_seq(),
              static_cast<std::uint64_t>(kThreads * kPerThread));
    const auto& stats = (*wal)->stats();
    EXPECT_EQ(stats.records.load(), kThreads * kPerThread);
    // fsync count never exceeds record count; with 8 concurrent
    // committers it is nearly always far below (group commit).
    EXPECT_LE(stats.fsyncs.load(), stats.records.load());
  }
  // The concurrent interleaving still produced one contiguous chain.
  Replayed got;
  kv::WalRecovery rec;
  auto wal = kv::Wal::open(path, {}, got.replay_fn(), &rec);
  ASSERT_TRUE(wal.is_ok());
  EXPECT_EQ(rec.records, static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(rec.truncated_bytes, 0u);
  for (std::size_t i = 0; i < got.records.size(); ++i) {
    EXPECT_EQ(got.records[i].first, i + 1);  // contiguous from 1
  }
  std::remove(path.c_str());
}

// The pinned acceptance regression: after a simulated crash mid-commit,
// a recovered KvService is byte-identical to the committed prefix —
// and replaying twice changes nothing (idempotence).
TEST(KvRecovery, RecoveredServiceMatchesCommittedPrefixExactly) {
  const std::string dir = temp_path("svc");
  std::remove((dir + "/kv-shard-0.wal").c_str());
  ::mkdir(dir.c_str(), 0755);

  kv::KvService::Options opts;
  opts.shards = 1;
  opts.wal_dir = dir;
  std::map<std::string, std::string> committed;
  {
    auto svc = kv::KvService::open(opts);
    ASSERT_TRUE(svc.is_ok());
    for (int i = 0; i < 30; ++i) {
      const std::string k = "key-" + std::to_string(i % 10);
      const std::string v = "val-" + std::to_string(i);
      ASSERT_TRUE((*svc)->put(k, v).is_ok());
    }
    ASSERT_TRUE((*svc)->del("key-3").is_ok());
    committed = (*svc)->store(0).dump();
  }
  const std::string wal_path = dir + "/kv-shard-0.wal";

  // Crash mid-commit: a partial frame lands at the tail.
  Bytes file = read_file(wal_path);
  const Bytes committed_file = file;  // the clean prefix
  Bytes torn = file;
  torn.push_back(0x00);  // len word fragment
  torn.push_back(0x01);
  write_file(wal_path, torn);

  kv::KvService::RecoveryInfo info;
  {
    auto svc = kv::KvService::open(opts, &info);
    ASSERT_TRUE(svc.is_ok());
    EXPECT_EQ(info.truncated_bytes, 2u);
    // Byte-identical to the committed prefix.
    EXPECT_EQ((*svc)->store(0).dump(), committed);
    EXPECT_EQ((*svc)->store(0).stats().duplicate_applies.load(), 0);
  }
  // Recovery truncated the torn bytes: the file is the clean prefix
  // again, so a SECOND replay is byte-identical too (idempotence).
  EXPECT_EQ(read_file(wal_path), committed_file);
  {
    kv::KvService::RecoveryInfo info2;
    auto svc = kv::KvService::open(opts, &info2);
    ASSERT_TRUE(svc.is_ok());
    EXPECT_EQ(info2.truncated_bytes, 0u);
    EXPECT_EQ((*svc)->store(0).dump(), committed);
  }
  std::remove(wal_path.c_str());
}

// fsync=false is the bench/teaching mode: still framed, still
// recoverable from whatever reached the page cache.
TEST(KvWal, NoFsyncModeStillFramesAndRecovers) {
  const std::string path = temp_path("nofsync");
  std::remove(path.c_str());
  kv::Wal::Options wopts;
  wopts.fsync = false;
  {
    auto wal = kv::Wal::open(path, wopts, nullptr);
    ASSERT_TRUE(wal.is_ok());
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE((*wal)->commit(payload_for(i)).is_ok());
    }
    EXPECT_EQ((*wal)->stats().fsyncs.load(), 0);
  }
  Replayed got;
  auto wal = kv::Wal::open(path, wopts, got.replay_fn());
  ASSERT_TRUE(wal.is_ok());
  EXPECT_EQ(got.records.size(), 10u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tempo
