// Deterministic splitmix64 RNG shared by the fault/stress harnesses:
// one instance per client/proxy, seed-stable across platforms, so a
// failing schedule is exactly reproducible from its seed.
#pragma once

#include <cstdint>

namespace tempo::test {

struct Rng {
  std::uint64_t s;
  std::uint64_t next() {
    std::uint64_t z = (s += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  std::uint32_t below(std::uint32_t n) {
    return static_cast<std::uint32_t>(next() % n);
  }
  // True with probability p (53 uniform mantissa bits).
  bool chance(double p) {
    if (p <= 0.0) return false;
    return static_cast<double>(next() >> 11) / 9007199254740992.0 < p;
  }
};

}  // namespace tempo::test
