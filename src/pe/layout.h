// Flattened user-data layout for specialized stubs.
//
// Residual plans do not walk C++ objects; they copy between the wire
// buffer and a flat block of 32-bit slots whose layout is a *static*
// function of the interface type (plus the per-specialization array
// counts).  This mirrors what Tempo's residual C code does: it addresses
// argument memory at fixed offsets computed at specialization time.
//
// Layout rules (preorder over the type):
//  * int/uint/bool/enum/float: 1 slot (float bits in the slot),
//  * hyper/uhyper/double: 2 slots, most-significant word first,
//  * fixed opaque[n]: pad4(n)/4 slots holding the raw bytes,
//  * struct: fields in order,
//  * fixed array[n]: n * slots(elem),
//  * variable array<bound>: count0 * slots(elem) where count0 is the
//    *specialization-time* count (the count itself is not stored in the
//    block; the plan writes it as a constant),
//  * string / optional / union: not plan-eligible (the specializing stub
//    front end falls back to the generic path for these).
#pragma once

#include <cstdint>
#include <span>

#include "common/status.h"
#include "idl/types.h"
#include "idl/value.h"

namespace tempo::pe {

using Slots = std::vector<std::uint32_t>;

// True if the type can be laid out as slots (everything except
// string/optional/union/var-opaque anywhere inside).
bool plan_eligible(const idl::Type& t);

// Number of variable-array counts that must be pinned at specialization
// time (preorder).  Nested variable arrays (a var array inside a var
// array element) are not eligible; this returns kInvalidArgument then.
Result<std::uint32_t> count_params(const idl::Type& t);

// Slot count given pinned counts (consumed in preorder).
Result<std::int64_t> type_slots(const idl::Type& t,
                                std::span<const std::uint32_t> counts);

// Value -> slots.  Fails if the value's variable-array sizes do not
// match `counts` (the run-time guard for guarded specialization).
Status flatten_value(const idl::Type& t, const idl::Value& v,
                     std::span<const std::uint32_t> counts, Slots& out);

// Slots -> value (sizes taken from `counts`).
Result<idl::Value> unflatten_value(const idl::Type& t,
                                   std::span<const std::uint32_t> counts,
                                   std::span<const std::uint32_t> slots);

// Extracts the preorder var-array counts actually present in a value
// (used to check against the specialization's pinned counts).
Status collect_counts(const idl::Type& t, const idl::Value& v,
                      std::vector<std::uint32_t>& out);

}  // namespace tempo::pe
