// Cost model for the simulated legacy platform ("ipx-sim").
//
// Substitution note (see DESIGN.md §3): the paper's first testbed is a
// 40 MHz Sun IPX 4/50 whose marshaling time is dominated by memory
// traffic at large array sizes, which is why the measured speedup peaks
// near 250 elements and then *decreases* (paper §5, Fig 6-5).  We model
// that machine with an event-count cost model: the generic IR interpreter
// and the residual-plan executor report events (calls, dispatches,
// overflow checks, ALU ops, buffer bytes moved, residual-code bytes
// fetched) and this model converts the event vector into virtual time.
//
// Two capacity effects matter for the paper's curves:
//  * data cache: buffer bytes beyond the D-cache size cost extra
//    (memory-bound regime, Fig 6-5 decline on the IPX),
//  * instruction cache: residual code beyond the I-cache size costs
//    extra per executed residual op (Table 4: full unrolling of large
//    arrays loses to 250-wide partial unrolling).
#pragma once

#include <cstdint>

namespace tempo {

// Events observed while executing one marshaling / unmarshaling run.
struct CostEvents {
  std::int64_t calls = 0;            // function-call/return pairs
  std::int64_t dispatches = 0;       // interpretive branches (x_op tests, op-table indirections)
  std::int64_t overflow_checks = 0;  // x_handy decrement-and-test
  std::int64_t alu_ops = 0;          // arithmetic / pointer bumps / byte swaps
  std::int64_t buffer_bytes = 0;     // payload bytes moved to or from the XDR buffer
  std::int64_t code_bytes = 0;       // distinct residual/generic code bytes touched (footprint)
  std::int64_t executed_op_bytes = 0;// residual code bytes *fetched* (per executed op)

  CostEvents& operator+=(const CostEvents& o) {
    calls += o.calls;
    dispatches += o.dispatches;
    overflow_checks += o.overflow_checks;
    alu_ops += o.alu_ops;
    buffer_bytes += o.buffer_bytes;
    code_bytes += o.code_bytes;
    executed_op_bytes += o.executed_op_bytes;
    return *this;
  }
};

// Per-event cycle prices plus cache capacities.  Defaults approximate a
// 40 MHz SPARC IPX: ~25 ns/cycle, 64 KB unified cache modelled as split
// 8 KB I / 8 KB D for capacity effects (conservative; only the *shape*
// of the resulting curves is asserted, never absolute 1997 numbers).
// Calibrated against the paper's own Table 1 IPX column, which implies:
// generic marshaling costs ~78 cycles/int *flat* across sizes (call
// chains dominate, not memory), while the specialized cost/int grows
// from ~21 to ~28 cycles as the fully-unrolled residual code overflows
// the I-cache — that growth, plus header amortization at small sizes,
// produces the 2.75 -> 3.75 -> 2.85 speedup arc.
struct CostParams {
  double ns_per_cycle = 25.0;      // 40 MHz
  double cycles_call = 16.0;       // register window save/restore + jump
  double cycles_dispatch = 6.0;    // compare + conditional branch
  double cycles_overflow_check = 5.0;
  double cycles_alu = 1.0;
  double cycles_per_buffer_byte_cached = 1.0;   // load/store hitting cache
  double cycles_per_buffer_byte_memory = 2.75;  // miss to DRAM
  double cycles_per_code_byte_fetch_base = 0.3; // residual-op fetch, cached
  double cycles_per_code_byte_fetch_miss = 0.35; // extra when beyond I-cache
  std::int64_t dcache_bytes = 64 * 1024;  // unified cache; payload fits
  std::int64_t icache_bytes = 8 * 1024;   // effective I-stream share
  // Fixed per-operation cost (call setup, buffer arming) — dominates the
  // small-array rows on the Pentium testbed (its Table 1 speedup starts
  // at only 1.2 despite the same per-int ratio).
  double fixed_overhead_us = 0.0;

  static CostParams ipx_sunos();
  // 166 MHz Pentium / Linux: same event prices in cycles, 6 ns cycles,
  // larger caches (the PC speedup curve "only bends", §5), and a large
  // fixed per-call overhead.
  static CostParams p166_linux();
};

// Convert an event vector into virtual nanoseconds under `params`.
double cost_to_ns(const CostEvents& ev, const CostParams& params);

}  // namespace tempo
