// EventServerRuntime — the reactor-based successor of ServerRuntime.
//
// ServerRuntime (svc.h) burns one blocking thread per listener and
// parks a whole worker on each TCP connection, so a peer that trickles
// bytes pins a worker for its connection's lifetime.  This runtime puts
// every socket behind net::Reactor shards instead, and keeps a
// request's whole life — recv, decode, specialize-lookup, execute,
// reply — on one shard:
//
//   * N reactor shards (cfg.reactors), each with its OWN event loop
//     thread, its own SO_REUSEPORT-bound UDP socket (the kernel
//     disperses inbound datagrams across the group by flow hash), its
//     own partition of the accepted TCP connections, its own
//     common::BufferArena feeding every request/reply buffer, AND its
//     own worker pool (cfg.workers_per_shard) with its own bounded job
//     queue — the per-request path crosses no global lock.  Idle
//     workers steal from sibling shards' queues so a skewed flow-hash
//     dispersal cannot strand capacity (stats().work_steals counts);
//     cfg.shared_queue collapses all queues onto shard 0 for A/B
//     comparison against the PR 4 single-shared-queue shape;
//   * every UDP socket is non-blocking and drained in recvmmsg batches —
//     one syscall per burst, not per datagram — and replies flush back
//     out through per-worker, per-shard accumulators and sendmmsg
//     (UdpSocket::send_many) on the shard that received the request, so
//     a burst pairs one syscall per batch in BOTH directions;
//   * the TCP listener lives on shard 0; an accepted connection is
//     handed round-robin to its owning shard by posting the socket to
//     that shard's reactor, which wraps and owns it from then on.  Each
//     connection carries its own record-reassembly buffer and
//     pending-write buffer on its owning shard — a slow peer therefore
//     delays nobody but itself;
//   * TCP connections are PIPELINED: up to cfg.tcp_pipeline_depth
//     requests of one connection execute concurrently across the
//     shard's workers, while a per-connection ordered reply ring
//     (slot reserved at dispatch, flushed strictly in sequence)
//     preserves wire order exactly as if the calls had run one at a
//     time;
//   * workers dispatch through SvcRegistry::handle_request — decoding
//     each request IN PLACE from the receive buffer and encoding the
//     reply into an arena buffer, no scratch memset/memcpy — and post
//     framed TCP replies back to the connection's owning shard, which
//     writes them without ever blocking (leftover bytes wait for
//     writability).
//
// Because a TCP request reaches the worker as one contiguous record,
// argument decode goes through XdrMem — XDR_INLINE succeeds and the
// residual-plan fast path engages on TCP too, which the xdrrec stream
// of the threaded runtime could never offer.
//
// Ownership (see src/net/README.md for the full model): each shard's
// reactor thread exclusively owns that shard's connection state;
// workers only ever own a request's buffer plus the (shard, conn_id,
// seq) triple naming its origin; handoff back is by that shard's
// Reactor::post().  Buffers recycle into the origin shard's arena from
// whichever thread finishes with them (the arena is the one
// cross-thread-safe piece, one mutex per size class).  Stats are
// process-wide atomics every shard adds into, so stats() aggregates
// across shards by construction.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <variant>
#include <vector>

#include "common/arena.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/trace.h"
#include "net/reactor.h"
#include "net/tcp.h"
#include "net/udp.h"
#include "rpc/svc.h"

namespace tempo::rpc {

// Reactor backend every shard uses.  kAuto prefers io_uring when the
// running kernel supports everything the backend needs (multishot
// recv + provided buffer rings, probed once at startup) and otherwise
// falls back to epoll — kernels without io_uring, seccomp-filtered
// containers, and the TEMPO_URING=0 kill switch all land on the epoll
// path with no configuration change.
enum class EventBackend { kAuto, kEpoll, kPoll, kUring };

struct EventServerRuntimeConfig {
  // Total workers across all shards, split as evenly as possible
  // (remainder to the low shards; with workers < reactors the high
  // shards get none and their queues drain through stealing siblings).
  // Ignored when workers_per_shard is set.
  int workers = 4;
  // Exact worker count PER SHARD; 0 derives it from `workers`.
  int workers_per_shard = 0;
  // Reactor shards.  Each shard runs its own event loop thread with its
  // own SO_REUSEPORT UDP socket, its own slice of the TCP connections,
  // its own worker pool + job queue and its own buffer arena; 1 keeps
  // the single-loop behaviour of PR 2/3.
  int reactors = 1;
  // A/B knob: route every job through shard 0's queue (the PR 4 shape —
  // one shared queue serving all shards) instead of shard-local queues.
  // Workers all home on shard 0; the bench compares the two.
  bool shared_queue = false;
  // Requests of ONE TCP connection allowed in flight concurrently; the
  // per-connection reply ring keeps wire order.  1 restores strictly
  // serial per-connection execution.
  int tcp_pipeline_depth = 8;
  std::uint16_t udp_port = 0;  // 0 = ephemeral
  std::uint16_t tcp_port = 0;
  bool enable_udp = true;
  bool enable_tcp = true;
  // Capacity of EACH shard's job queue (of the one shared queue under
  // shared_queue).
  std::size_t queue_capacity = 1024;
  // Datagrams pulled per recvmmsg syscall.
  int udp_batch = 32;
  // Per-connection caps; a peer exceeding either is reset.
  std::size_t max_record_bytes = 1u << 20;
  std::size_t max_write_buffer = 4u << 20;
  // Backpressure: once this many complete records queue on one
  // connection, the reactor stops reading it (TCP flow control pushes
  // back on the peer) until dispatch catches up.
  std::size_t max_pipelined_records = 64;
  // Reactor backend (see EventBackend).  kUring is a hard request: if
  // the kernel probe fails the shard reactors fall back to epoll and
  // backend() reports what actually runs.
  EventBackend backend = EventBackend::kAuto;
  // uring only: IORING_SETUP_SQPOLL — a kernel thread consumes the SQ,
  // so a steady-state burst submits with ZERO syscalls (the enter only
  // waits for completions).  Costs one spinning kernel thread per
  // shard; off by default.
  bool sqpoll = false;
  // uring only: provided-buffer ring slots per shard (rounded to a
  // power of two).  Each slot holds one arena slice of the datagram
  // size class, shared by UDP and TCP multishot receives.
  int uring_buffers = 64;
  // Pin each shard's reactor thread and its home workers to CPU
  // (shard_index % hardware_concurrency).  Keeps a request's cache
  // lines on one core end to end; off by default because it backfires
  // on oversubscribed hosts.
  bool pin_shards = false;
  // Idle workers re-sweep sibling queues after this many ms even
  // without a wakeup.  Stealing is wakeup-driven (push paths notify a
  // sibling); the tick is only the safety net, and stats().tick_steals
  // counts how often it actually rescued a job.
  int steal_tick_ms = 50;
  // Test hook: exercise the portable poll(2) backend on Linux too.
  // Equivalent to backend = kPoll (kept for older call sites; wins
  // over `backend` when set).
  bool force_poll_backend = false;
  // stop() waits this long for queued work to finish before tearing
  // down the pool.
  int drain_timeout_ms = 2000;
  // Request-stage tracing: trace 1 in trace_sample requests (0 = off;
  // falls back to the TEMPO_TRACE_SAMPLE env var when 0) into
  // per-shard rings of trace_ring records each.  See "Observability"
  // in src/rpc/README.md for the stage taxonomy.
  std::uint32_t trace_sample = 0;
  std::size_t trace_ring = 256;
};

struct EventServerRuntimeStats {
  std::atomic<std::int64_t> udp_datagrams{0};
  std::atomic<std::int64_t> udp_batches{0};  // recv_many calls that got >0
  std::atomic<std::int64_t> udp_reply_batches{0};  // send_many flushes
  // Replies the kernel refused on first send (EWOULDBLOCK on the
  // non-blocking socket, ENOBUFS, ...), handed to the reactor for one
  // retry — and the ones still refused there, which are dropped.
  std::atomic<std::int64_t> reply_send_retries{0};
  std::atomic<std::int64_t> reply_send_failures{0};
  std::atomic<std::int64_t> tcp_connections{0};
  std::atomic<std::int64_t> tcp_calls{0};
  std::atomic<std::int64_t> overload_drops{0};  // queue-full datagram drops
  std::atomic<std::int64_t> conn_resets{0};  // peers cut off at a cap
  // Times a connection flush left bytes buffered because the socket
  // stopped accepting (the peer is not reading fast enough).  Grows
  // while a reply sits in out_buf waiting for writability; a reset at
  // max_write_buffer is the cap this stall accounting leads up to.
  std::atomic<std::int64_t> write_stalls{0};
  // Jobs an idle worker popped from a SIBLING shard's queue.  Zero when
  // inbound load spreads evenly; growth means the flow hash (or a hot
  // connection) is skewing work onto fewer shards than exist.
  std::atomic<std::int64_t> work_steals{0};
  // Of those, steals found only by the periodic steal_tick_ms re-sweep
  // (the worker's wait timed out; nobody woke it).  Nonzero means a
  // push path failed to wake a stealer — the tick is meant to be a
  // safety net, not the delivery mechanism.
  std::atomic<std::int64_t> tick_steals{0};
};

class EventServerRuntime {
 public:
  explicit EventServerRuntime(SvcRegistry& registry,
                              EventServerRuntimeConfig cfg = {});
  ~EventServerRuntime();

  EventServerRuntime(const EventServerRuntime&) = delete;
  EventServerRuntime& operator=(const EventServerRuntime&) = delete;

  // Binds sockets, registers them with the per-shard reactors and
  // spawns the reactor threads + per-shard worker pools.  Call after
  // all register_proc calls.
  Status start();
  // Stops intake on every shard, drains queued requests (bounded by
  // drain_timeout_ms), then joins everything.  Idempotent.
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  net::Addr udp_addr() const;
  net::Addr tcp_addr() const;
  const EventServerRuntimeStats& stats() const { return stats_; }
  // Aggregate of every shard arena (valid between start() and stop()).
  // `misses` is the runtimes' `arena_misses`: takes the pool could not
  // serve and had to send to the allocator.
  common::BufferArenaStats arena_stats() const;
  const char* backend() const;
  // True when cfg.backend = kUring (or kAuto) can actually select the
  // io_uring backend on this kernel.
  static bool uring_supported() { return net::Reactor::uring_supported(); }
  // Total io_uring_enter syscalls across shards (0 on other backends;
  // valid between start() and stop()) — the bench divides by calls to
  // report syscalls per request.
  std::int64_t uring_enter_calls() const;
  // Shards actually running (valid between start() and stop()).
  int reactor_count() const { return static_cast<int>(shards_.size()); }
  // Worker threads actually running across all shards.
  int worker_count() const { return worker_count_; }
  // True when every shard owns its own SO_REUSEPORT UDP socket; false
  // in the single-receiving-socket fallback (or with reactors == 1).
  bool udp_sharded() const { return udp_sharded_; }

  // Per-shard latency distributions merged across shards (valid
  // between start() and stop(), like arena_stats()): queue wait,
  // dispatch duration, and end-to-end per transport.  Recording is a
  // wait-free bucket increment per sample and is disabled wholesale
  // by TEMPO_METRICS=0.
  RuntimeLatencySnapshot latency_snapshot() const;
  // The whole process in one call: this runtime's counters and shard
  // histograms plus every other registered component (registry
  // dispatch stats, spec cache, services, arenas) via the global
  // metrics registry.
  common::MetricsSnapshot metrics_snapshot() const {
    return common::metrics().snapshot();
  }
  // Sampled stage traces (empty when trace_sample was 0).  The
  // tracer survives stop(), so post-run inspection works.
  std::vector<common::TraceRecord> trace_snapshot() const {
    return tracer_ ? tracer_->snapshot() : std::vector<common::TraceRecord>{};
  }
  const common::Tracer* tracer() const { return tracer_.get(); }

 private:
  // One complete record (or a reply frame): an arena buffer plus how
  // many of its bytes are valid.  Arena buffers keep their class size
  // for life — valid lengths ride alongside instead of resizing, so
  // recycling never zero-fills.
  struct Chunk {
    Bytes buf;
    std::size_t len = 0;
    // monotonic_ns when the record finished assembling (requests) or,
    // copied through to the reply frame, when its request arrived —
    // what the tcp_e2e histogram measures at emit.  0 = unstamped.
    std::int64_t recv_ns = 0;
  };

  // One slot of a connection's ordered reply ring: reserved when the
  // request dispatches (seq), filled by whichever worker finishes it,
  // emitted strictly in seq order.  len == 0 marks "no reply" (an
  // undecodable request) — the slot still occupies its place so later
  // replies cannot jump the order.
  struct ReplySlot {
    bool ready = false;
    Chunk frame;
  };

  // ---- connection state (owning shard's reactor thread only) ----------
  struct Conn {
    std::uint64_t id = 0;
    std::size_t shard = 0;  // owning shard index, fixed for life
    std::unique_ptr<net::TcpConn> sock;
    unsigned interest = net::kEventRead;
    // Record-marking reassembly (RFC 1057 §10): 4-byte fragment header,
    // then payload; top bit marks the record's last fragment.
    std::uint32_t frag_remaining = 0;
    bool frag_header_pending = true;
    bool last_frag = false;
    Bytes header_partial;       // < 4 buffered header bytes
    Chunk record;               // record being assembled (arena buffer)
    std::deque<Chunk> ready_records;  // complete, awaiting dispatch
    // Pipelined execution: seqs [emit_seq, next_seq) are in flight (at
    // most tcp_pipeline_depth), ring[seq % depth] is seq's reply slot.
    std::uint64_t next_seq = 0;   // assigned at dispatch
    std::uint64_t emit_seq = 0;   // next seq to append to out_buf
    std::size_t inflight = 0;
    std::vector<ReplySlot> ring;
    bool stalled = false;       // a ready record hit a full worker queue
    Bytes out_buf;              // framed replies not yet written
    std::size_t out_off = 0;    // [out_off, out_len) awaits the socket
    std::size_t out_len = 0;
    bool peer_eof = false;      // stop reading; flush, then close
    // uring backend only: read interest is a multishot IORING_OP_RECV
    // instead of a poll.  urecv_armed tracks the in-flight op,
    // urecv_cancel a pending ASYNC_CANCEL (backpressure pause); both
    // reconcile against `interest` in uring_sync_conn_recv.
    bool urecv_armed = false;
    bool urecv_cancel = false;
  };

  // One datagram per job: the recvmmsg batch amortizes the syscall, but
  // each request schedules on its own worker so a batch never serializes
  // behind one thread.  The payload buffer is an arena buffer with
  // `len` valid bytes; the worker recycles it into the origin shard's
  // arena, so the receive path neither allocates nor zero-fills in
  // steady state.  `shard` names the socket the datagram arrived on —
  // the reply goes back out through that shard's socket (and its
  // reactor on retry).
  struct UdpDatagramJob {
    std::size_t shard = 0;
    net::Addr src;
    Bytes payload;
    std::size_t len = 0;
    // Stamped once per recvmmsg batch (shared by the whole batch, so
    // the receive path pays one clock read per syscall, not per
    // datagram); 0 with metrics off.
    std::int64_t recv_ns = 0;
    // Payload starts at payload.data() + off: zero for the recvmmsg
    // path, the io_uring_recvmsg_out header size for uring multishot
    // completions (the datagram stays in the buffer the kernel filled;
    // nothing is memmoved).
    std::size_t off = 0;
  };
  struct TcpRequestJob {
    std::size_t shard = 0;
    std::uint64_t conn_id = 0;
    std::uint64_t seq = 0;  // this request's slot in the conn's ring
    Chunk record;
  };
  using Job = std::variant<UdpDatagramJob, TcpRequestJob>;

  // uring-backend state of one shard (defined in the .cpp; present only
  // on shards whose reactor actually runs the uring backend): the
  // provided-buffer ring's arena slices, the persistent multishot
  // recvmsg header, the in-flight linked-send slots, and the batch
  // accumulators the CQE drain hook flushes.
  struct ShardUring;

  // One reactor shard: an event loop thread plus everything it
  // exclusively owns, and its slice of the execution pipeline (worker
  // pool + bounded job queue + buffer arena).  Shards live in
  // unique_ptrs so Shard* captures in reactor callbacks stay stable.
  struct Shard {
    // Both out of line: ShardUring is incomplete here, and the inline
    // bodies would instantiate its destructor (unwind cleanup).
    Shard(std::size_t idx, net::ReactorBackend be, bool sqpoll);
    ~Shard();
    std::size_t index;
    net::Reactor reactor;
    std::unique_ptr<ShardUring> uring;  // null unless backend() == uring
    std::unique_ptr<net::UdpSocket> udp;  // null on non-receiving shards
    std::unordered_map<std::uint64_t, Conn> conns;
    std::uint64_t next_conn_id = 1;  // ids are per-shard; (shard, id) is
                                     // the global connection name
    bool intake_closed = false;
    std::vector<std::uint64_t> stalled_conns;
    // recvmmsg batch buffers, reused across on_udp_readable calls;
    // reactor-thread-only, so no lock.
    std::vector<std::vector<net::Datagram>> batch_pool;
    // Every request/reply buffer this shard hands out; recycled from
    // whichever thread finishes with a buffer (thread-safe).
    common::BufferArena arena;
    // Latency distributions for requests that ORIGINATED on this shard
    // (a stealing worker records into the origin shard's histograms,
    // so the per-shard attribution follows the traffic, not the
    // thread).  Wait-free to record from any worker.
    common::LatencyHistogram queue_hist;
    common::LatencyHistogram handle_hist;
    common::LatencyHistogram udp_e2e_hist;
    common::LatencyHistogram tcp_e2e_hist;
    // ---- shard-local execution pipeline ----
    std::mutex q_mu;
    std::condition_variable q_cv;
    std::deque<Job> queue TEMPO_GUARDED_BY(q_mu);
    // Workers homed on this shard's queue.  home_workers mirrors the
    // count and is written once in start() BEFORE any thread runs:
    // push paths read it while stop() tears the vector down, so they
    // must never touch `workers` itself.
    std::vector<std::thread> workers;
    int home_workers = 0;
    std::thread thread;
  };

  // Wakes one worker of a SIBLING shard so a backlog (or a queue on a
  // worker-less shard) gets stolen promptly instead of waiting for the
  // idle-tick fallback.
  void wake_stealer(std::size_t except);

  // One encoded-but-unsent UDP reply in a worker's accumulator: `buf`
  // is an arena buffer with `len` valid bytes.  Accumulated replies
  // flush through UdpSocket::send_many so a served burst costs one
  // sendmmsg, pairing with the recvmmsg receive path.  Accumulators are
  // kept per shard so each flush goes out the right socket (work
  // stealing means a worker can hold replies for several shards).
  struct UdpReply {
    net::Addr dst;
    Bytes buf;
    std::size_t len = 0;
    std::int64_t recv_ns = 0;  // request's receive stamp, for udp_e2e
  };
  // Per-worker accumulator: one reply vector per shard plus the total
  // across shards (the flush threshold is global so a worker never sits
  // on more than a batch's worth of replies).
  struct ReplyAccumulator {
    std::vector<std::vector<UdpReply>> per_shard;
    std::size_t total = 0;
  };

  // ---- reactor-shard handlers (run on that shard's thread) ------------
  void shard_loop(Shard& s);
  void on_udp_readable(Shard& s);
  void on_accept_ready();  // shard 0 only (owns the listener)
  // Wraps a handed-off fd into a Conn owned by shard `s`.
  void adopt_conn(Shard& s, int fd);
  void on_conn_event(Shard& s, std::uint64_t id, unsigned events);
  void read_conn(Shard& s, Conn& conn);
  bool parse_records(Shard& s, Conn& conn,
                     ByteSpan chunk);  // false = protocol violation
  void dispatch_ready(Shard& s, Conn& conn);
  void retry_stalled(Shard& s);    // re-dispatch conns parked on a full queue
  void flush_conn(Shard& s, Conn& conn);  // non-blocking write of out_buf
  void finish_conn_if_idle(Shard& s, Conn& conn);
  void destroy_conn(Shard& s, std::uint64_t id);
  void set_conn_interest(Shard& s, Conn& conn, unsigned interest);
  // A worker finished seq for conn_id: fill its ring slot, emit every
  // consecutively-complete reply into out_buf in order.
  void on_reply(Shard& s, std::uint64_t conn_id, std::uint64_t seq,
                Chunk frame);
  // Appends frame's valid bytes to c.out_buf (arena-backed, grown via
  // the shard arena); false when the write-buffer cap was exceeded and
  // the connection was destroyed.
  bool append_out(Shard& s, Conn& c, Chunk frame);
  void close_intake(Shard& s);     // stop reading new requests on `s`

  // ---- uring backend (owning shard's reactor thread only) -------------
  // Builds ShardUring: registers the provided-buffer ring, fills it
  // with pinned arena slices, arms the UDP multishot recvmsg, installs
  // the CQE handler + drain hook.  No-op unless the shard's reactor
  // runs the uring backend.
  void setup_shard_uring(Shard& s);
  void on_uring_cqe(Shard& s, std::uint64_t ud, std::int32_t res,
                    std::uint32_t flags);
  // The per-poll batch point: pushes accumulated datagram jobs under
  // one queue lock, re-arms terminated multishot ops, commits buffer
  // ring refills.
  void uring_drain_end(Shard& s);
  void on_udp_recv_cqe(Shard& s, std::int32_t res, std::uint32_t flags);
  void on_tcp_recv_cqe(Shard& s, std::uint64_t conn_id, std::int32_t res,
                       std::uint32_t flags);
  void on_udp_send_cqe(Shard& s, std::uint64_t slot, std::int32_t res);
  // Reconciles a connection's desired read interest with the armed
  // multishot recv (arm / cancel / re-arm after cancel completes).
  void uring_sync_conn_recv(Shard& s, Conn& c);
  // Reactor-thread continuation of flush_udp_replies for uring shards:
  // one linked SQE chain per bucket instead of one sendmmsg.
  void uring_send_bucket(Shard& s, std::vector<UdpReply> bucket);
  // End-of-shard-loop drain: cancel armed receives, wait for every
  // in-flight SQE's CQE (bounded), then unpin + recycle the ring's
  // arena slices.  A kernel-referenced buffer is never recycled.
  void uring_teardown(Shard& s);

  // ---- worker side ----------------------------------------------------
  // The queue a job originating on shard `origin` is pushed to (shard 0
  // under cfg.shared_queue).
  Shard& job_queue_shard(std::size_t origin) {
    return *shards_[cfg_.shared_queue ? 0 : origin];
  }
  // Moves from `job` only on success so a failed push can be retried.
  bool push_job(std::size_t origin, Job& job);
  // Queues the first n entries of `batch` as individual jobs under one
  // lock acquisition; returns how many fit (the rest are drops).
  // `recv_ns` stamps every job of the batch (one clock read per
  // recvmmsg, shared across its datagrams).
  int push_datagram_jobs(Shard& s, std::vector<net::Datagram>& batch, int n,
                         std::int64_t recv_ns);
  bool try_pop(std::size_t shard_idx, Job& out);
  // no_thread_safety_analysis: parks on q_cv through a unique_lock that
  // is unlocked mid-scope, which the scope-based checker cannot follow.
  void worker_loop(std::size_t home) TEMPO_NO_THREAD_SAFETY_ANALYSIS;
  // Serves one datagram with the zero-copy span path; the reply lands
  // in `acc` (flushed by flush_udp_replies), not on the wire yet.
  void serve_udp_datagram(UdpDatagramJob& job, ReplyAccumulator& acc,
                          std::uint16_t worker_id);
  // One send_many per non-empty shard bucket; refused tails are retried
  // once on that shard's reactor before counting as reply_send_failures.
  void flush_udp_replies(ReplyAccumulator& acc);
  // `scratch` is the worker's persistent stream-reply encode buffer
  // (grown through `scratch_arena`, the worker's home arena): the
  // encode needs kMaxStreamReplyBytes of headroom, but only the framed
  // bytes travel — in a right-sized arena frame — so deep pipelines
  // circulate small buffers, not 1 MB provisions.
  void serve_tcp_request(TcpRequestJob& job, Bytes& scratch,
                         common::BufferArena& scratch_arena,
                         std::uint16_t worker_id);
  std::vector<net::Datagram> take_batch_buffer(Shard& s);
  void recycle_batch_buffer(Shard& s, std::vector<net::Datagram> buf);

  SvcRegistry& registry_;
  EventServerRuntimeConfig cfg_;
  EventServerRuntimeStats stats_;

  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<net::TcpListener> tcp_;
  bool udp_sharded_ = false;
  int worker_count_ = 0;
  std::size_t pipeline_depth_ = 1;  // sanitized cfg.tcp_pipeline_depth
  // Round-robin accept counter (shard 0's thread only).
  std::size_t next_conn_shard_ = 0;

  std::atomic<bool> running_{false};
  std::atomic<bool> reactor_stop_{false};
  std::atomic<bool> workers_stop_{false};
  std::atomic<std::int64_t> pending_jobs_{0};
  // Round-robin cursor for wake_stealer (any pushing thread).
  std::atomic<std::size_t> steal_wake_rr_{0};

  // Observability (tentpole).  metrics_on_ caches metrics_enabled() at
  // start() so the hot path never reads the environment; worker_seq_
  // hands each worker thread a small id for trace attribution.
  bool metrics_on_ = false;
  std::unique_ptr<common::Tracer> tracer_;
  std::atomic<int> worker_seq_{0};
  // Last member on purpose: the source callback reads shards_ and
  // stats_, so it must unregister before anything it touches dies.
  common::MetricsRegistry::SourceHandle metrics_source_;
};

}  // namespace tempo::rpc
