// Tests for the type-safe C++ XDR layer (xdr/typed.h): Codec
// resolution, the member-function protocol, container codecs, and
// cross-checks against the C-style primitives (same bytes).
#include <gtest/gtest.h>

#include <array>

#include "common/rng.h"
#include "xdr/typed.h"
#include "xdr/xdrmem.h"

namespace tempo::xdr {
namespace {

struct Point {
  std::int32_t x = 0, y = 0;
  bool xdr(XdrStream& s) { return proc_all(s, x, y); }
  bool operator==(const Point&) const = default;
};

struct Telemetry {
  std::uint64_t timestamp = 0;
  std::vector<Point> track;
  std::optional<std::string> label;
  std::array<double, 3> axes{};
  bool valid = false;

  bool xdr(XdrStream& s) {
    return proc_all(s, timestamp, track, label, axes, valid);
  }
  bool operator==(const Telemetry&) const = default;
};

enum class Mode : std::int32_t { kIdle = 0, kActive = 3 };

template <typename T>
Bytes encode_bytes(T& v) {
  Bytes buf(4096);
  XdrMem s(MutableByteSpan(buf.data(), buf.size()), XdrOp::kEncode);
  EXPECT_TRUE(encode(s, v));
  buf.resize(s.getpos());
  return buf;
}

template <typename T>
T decode_bytes(const Bytes& wire) {
  Bytes copy = wire;
  XdrMem s(MutableByteSpan(copy.data(), copy.size()), XdrOp::kDecode);
  T out{};
  EXPECT_TRUE(decode(s, out));
  return out;
}

TEST(Typed, ScalarsMatchPrimitives) {
  std::int32_t i = -42;
  Bytes via_typed = encode_bytes(i);

  Bytes buf(8);
  XdrMem s(MutableByteSpan(buf.data(), buf.size()), XdrOp::kEncode);
  std::int32_t j = -42;
  ASSERT_TRUE(xdr_int(s, j));
  buf.resize(s.getpos());
  EXPECT_EQ(via_typed, buf);
}

TEST(Typed, MemberProtocolRoundTrip) {
  Point p{3, -7};
  Bytes wire = encode_bytes(p);
  EXPECT_EQ(wire.size(), 8u);
  EXPECT_EQ(decode_bytes<Point>(wire), p);
}

TEST(Typed, NestedAggregateRoundTrip) {
  Rng rng(2026);
  for (int round = 0; round < 25; ++round) {
    Telemetry t;
    t.timestamp = rng.next_u64();
    t.track.resize(rng.next_below(6));
    for (auto& pt : t.track) {
      pt = Point{static_cast<std::int32_t>(rng.next_u32()),
                 static_cast<std::int32_t>(rng.next_u32())};
    }
    if (rng.next_bool()) t.label = "sensor-" + std::to_string(round);
    for (auto& a : t.axes) a = rng.next_double();
    t.valid = rng.next_bool();

    Bytes wire = encode_bytes(t);
    EXPECT_EQ(decode_bytes<Telemetry>(wire), t) << "round " << round;
  }
}

TEST(Typed, EnumCodec) {
  Mode m = Mode::kActive;
  Bytes wire = encode_bytes(m);
  ASSERT_EQ(wire.size(), 4u);
  EXPECT_EQ(wire[3], 3);
  EXPECT_EQ(decode_bytes<Mode>(wire), Mode::kActive);
}

TEST(Typed, OptionalAbsentPresent) {
  std::optional<std::int32_t> none, some = 9;
  Bytes w1 = encode_bytes(none);
  Bytes w2 = encode_bytes(some);
  EXPECT_EQ(w1.size(), 4u);
  EXPECT_EQ(w2.size(), 8u);
  EXPECT_FALSE(decode_bytes<std::optional<std::int32_t>>(w1).has_value());
  EXPECT_EQ(*decode_bytes<std::optional<std::int32_t>>(w2), 9);
}

TEST(Typed, VectorDefensiveCap) {
  // A hostile count must be rejected before allocation.
  Bytes wire(8, 0);
  wire[0] = 0x7F;  // count = 0x7F000000
  XdrMem s(MutableByteSpan(wire.data(), wire.size()), XdrOp::kDecode);
  std::vector<std::int32_t> v;
  EXPECT_FALSE(proc(s, v));
}

TEST(Typed, FreeReleasesContainers) {
  Telemetry t;
  t.track.resize(3);
  t.label = "x";
  XdrMem s(MutableByteSpan(), XdrOp::kFree);
  EXPECT_TRUE(proc(s, t));
  EXPECT_TRUE(t.track.empty());
  EXPECT_FALSE(t.label.has_value());
}

TEST(Typed, DecodeTruncationFails) {
  Telemetry t;
  t.track.resize(2);
  Bytes wire = encode_bytes(t);
  for (std::size_t cut = 0; cut + 4 < wire.size(); cut += 4) {
    Bytes copy(wire.begin(), wire.begin() + static_cast<std::ptrdiff_t>(cut));
    XdrMem s(MutableByteSpan(copy.data(), copy.size()), XdrOp::kDecode);
    Telemetry out;
    EXPECT_FALSE(decode(s, out)) << "cut=" << cut;
  }
}

TEST(Typed, DirectionGuards) {
  Point p{1, 2};
  Bytes buf(64);
  XdrMem enc(MutableByteSpan(buf.data(), buf.size()), XdrOp::kEncode);
  EXPECT_FALSE(decode(enc, p));  // decode() on an encode stream
  XdrMem dec(MutableByteSpan(buf.data(), 8), XdrOp::kDecode);
  EXPECT_FALSE(encode(dec, p));
}

}  // namespace
}  // namespace tempo::xdr
