// Static verification of residual plans — the admission pass that turns
// the executor/JIT safety story from "tested" into "checked".
//
// A Plan is a tiny straight-line/loop program over two buffers (`in` or
// `out`) and a word-slot array, with every offset, length and stride
// folded in at specialization time.  That makes its memory behavior
// statically decidable: an abstract interpreter can compute the EXACT
// byte ranges and slot ranges every op will touch — including kLoop
// bodies across all iterations, in closed form from the packed strides,
// never by expanding iterations — and check them against the plan's
// declared contract (out_size / expected_in / words_needed) before the
// plan or its compiled stub ever runs.
//
// The verifier proves, for an admitted plan:
//   * direction consistency — an encode plan contains only encode ops,
//     a decode plan only decode/guard ops (the executor's "reject at
//     run time" default branch becomes unreachable);
//   * loop well-formedness — every kLoop body lies fully inside the
//     instruction stream and contains no nested kLoop (matching the
//     executor's flat interpretation of the stream);
//   * output bounds — every byte written by an encode op, at every loop
//     iteration, lies inside [0, out_size);
//   * input bounds — every byte read by a decode/guard op lies inside
//     [0, expected_in); a decode plan that reads the buffer without
//     declaring expected_in (no length contract at all) is rejected,
//     because run_plan_decode skips its length precheck when
//     expected_in == 0;
//   * slot bounds — every word slot read or written (including the
//     pad4 tail a bulk op memsets) lies inside [0, words_needed);
//   * no displacement wrap — all of the above is computed in 64-bit
//     arithmetic and must fit the declared 32-bit contract, so the
//     executor's uint32 offset arithmetic (off + it*stride) can never
//     wrap for an admitted plan;
//   * guard sanity — a kGuardLen's immediate equals the declared
//     expected_in (the §6.2 guard and the precheck must agree), and
//     guards only appear in decode plans (kGuardXid is additionally
//     the only op allowed to return kRetryXid, so an admitted encode
//     plan can only ever produce kOk);
//   * output completeness — when coverage is exactly decidable (always
//     true for specializer-emitted plans), an encode plan writes every
//     byte of [0, out_size); a gap would leak the caller's
//     uninitialized buffer bytes onto the wire.
//
// What the executor and the JIT may assume after admission is written
// up in src/pe/README.md ("Safety argument").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "pe/plan.h"

namespace tempo::pe {

// Why a plan was rejected.  Stable identifiers: tests pin them, the
// JIT's refusal diagnostics and spec_cache.verify_rejects surface them.
enum class VerifyCode : std::uint8_t {
  kDirectionMixed,    // decode op in an encode plan or vice versa
  kTruncatedLoopBody, // kLoop body extends past the instruction stream
  kNestedLoop,        // kLoop inside a kLoop body
  kOutOfBoundsOut,    // write past out_size (any iteration)
  kOutOfBoundsIn,     // read past expected_in (any iteration)
  kSlotOverflow,      // word-slot access past words_needed
  kStrideOverflow,    // loop-extrapolated offset exceeds the 32-bit
                      // contract (the executor's uint32 math would wrap)
  kMissingLenContract,// decode plan reads input but expected_in == 0
  kGuardLenMismatch,  // kGuardLen imm != declared expected_in
  kIncompleteOutput,  // encode plan provably leaves out_size gaps
};

const char* verify_code_name(VerifyCode code);

struct VerifyIssue {
  VerifyCode code = VerifyCode::kDirectionMixed;
  std::size_t instr_index = 0;  // offending instruction (stream index)
  std::string detail;           // human diagnostic with the numbers

  std::string to_string() const;
};

// Exact bounds the abstract interpretation computed.  For an admitted
// plan these are facts the executor and the JIT may rely on; fuse_plan
// consumes them instead of re-auditing op by op.
struct VerifyFacts {
  std::uint64_t out_end = 0;    // 1 + highest output byte written
  std::uint64_t in_end = 0;     // 1 + highest input byte read
  std::uint64_t slot_end = 0;   // 1 + highest word slot touched
  std::uint32_t loop_count = 0; // kLoop instructions in the stream
  std::uint64_t max_loop_iters = 0;
  bool reads_input = false;     // any op loads from `in`
  bool has_len_guard = false;   // a kGuardLen is present
  // True when output coverage was exactly decidable (it always is for
  // specializer-emitted plans); kIncompleteOutput can only be raised —
  // and completeness only relied on — when this is set.
  bool coverage_exact = false;
};

struct VerifyResult {
  VerifyFacts facts;
  std::vector<VerifyIssue> issues;

  bool ok() const { return issues.empty(); }
  // "verified" or the first issue's diagnostic (all issues if several).
  std::string to_string() const;
};

// Statically verifies `plan` against its declared contract.  Pure
// function of the plan; cost is O(instrs), independent of loop
// iteration counts.
VerifyResult verify_plan(const Plan& plan);

// ---------------------------------------------------------------------------
// The TEMPO_PLAN_VERIFY knob
//
//   0  off       — no admission pass (release builds may opt out)
//   1  admit     — verify every plan once at spec build; a rejected
//                  plan fails the build (negative-cached like any
//                  other ineligible shape).  The default.
//   2  paranoid  — additionally re-verify on every SpecCache publish
//                  (ready-entry insert and hot-slot publication), so a
//                  corrupted-in-flight plan cannot reach the hit path.
//
// Debug builds (NDEBUG unset) clamp the effective mode to at least 1:
// the admission pass is always on where assertions are.

enum class VerifyMode : std::uint8_t { kOff = 0, kAdmit = 1, kParanoid = 2 };

// Effective process-wide mode: TEMPO_PLAN_VERIFY (read once) with the
// debug clamp applied, unless overridden by set_verify_mode().
VerifyMode verify_mode();

// Test/bench override of the process-wide mode (the A/B datapoint in
// bench_marshaling flips this instead of re-execing with a new
// environment).  The debug clamp does NOT apply to explicit overrides.
void set_verify_mode(VerifyMode mode);

// Process-wide count of plans rejected by the admission pass (all
// SpecializedInterface::build calls; what spec_cache.verify_rejects
// surfaces per cache via its build-failure accounting).
std::int64_t verify_reject_count();

// The admission pass itself: verifies `plan` unless the effective mode
// is kOff, bumps the process-wide reject counter on failure, and
// returns kOutOfRange carrying the verifier diagnostics (`what` names
// the entry point in the message).  SpecCache recognizes a build
// failure with StatusCode::kOutOfRange as a verify reject.
Status verify_admit(const Plan& plan, const char* what);

}  // namespace tempo::pe
