// Primitive and composite XDR codecs — ports of Sun's xdr.c filters.
//
// Every function keeps the original's shape: a run-time switch on the
// stream's x_op selecting encode / decode / free (paper Fig. 2).  That
// dispatch — multiplied by one call per scalar across several
// micro-layers — is the interpretive overhead the specializer removes.
//
// Convention: bool return (the bool_t of the original).  Decode failures
// leave the output object in a valid but unspecified state, as the
// original does.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <type_traits>
#include <vector>

#include "common/bytes.h"
#include "xdr/xdr.h"

namespace tempo::xdr {

// ---- scalars ----------------------------------------------------------

// xdr_long: the canonical example (paper Fig. 2).  XDR "long" is exactly
// 32 bits on the wire regardless of the host's long.
bool xdr_long(XdrStream& xdrs, std::int32_t& v);
bool xdr_u_long(XdrStream& xdrs, std::uint32_t& v);

// xdr_int / xdr_u_int: on 32-bit-int hosts these forward to xdr_long —
// the "machine dependent switch on integer size" of Fig. 1.
bool xdr_int(XdrStream& xdrs, std::int32_t& v);
bool xdr_u_int(XdrStream& xdrs, std::uint32_t& v);

bool xdr_short(XdrStream& xdrs, std::int16_t& v);
bool xdr_u_short(XdrStream& xdrs, std::uint16_t& v);

// 64-bit quantities (two wire units, most significant first).
bool xdr_hyper(XdrStream& xdrs, std::int64_t& v);
bool xdr_u_hyper(XdrStream& xdrs, std::uint64_t& v);

// XDR booleans are a full wire unit carrying 0 or 1.
bool xdr_bool(XdrStream& xdrs, bool& v);

// IEEE-754 single / double precision.
bool xdr_float(XdrStream& xdrs, float& v);
bool xdr_double(XdrStream& xdrs, double& v);

// Enumerations travel as signed 32-bit values.
template <typename E>
  requires std::is_enum_v<E>
bool xdr_enum(XdrStream& xdrs, E& v) {
  std::int32_t raw = static_cast<std::int32_t>(v);
  if (!xdr_long(xdrs, raw)) return false;
  v = static_cast<E>(raw);
  return true;
}

// xdr_void: no data; always succeeds (used for nullary procedures).
bool xdr_void(XdrStream& xdrs);

// ---- opaque data ------------------------------------------------------

// Fixed-length opaque: raw bytes plus zero padding to a 4-byte boundary.
bool xdr_opaque(XdrStream& xdrs, MutableByteSpan data);

// Variable-length opaque: u32 length, bytes, padding.  Decode rejects
// lengths above max_len (protocol defence, as in the original).
bool xdr_bytes(XdrStream& xdrs, Bytes& data, std::uint32_t max_len);

// Counted string: u32 length, bytes (no NUL on the wire), padding.
bool xdr_string(XdrStream& xdrs, std::string& s, std::uint32_t max_len);

// ---- composites -------------------------------------------------------

// Element codec signature, the xdrproc_t analog.
template <typename T>
using XdrProc = bool (*)(XdrStream&, T&);

// xdr_vector: fixed-length array (count known from the type, not the wire).
template <typename T>
bool xdr_vector(XdrStream& xdrs, T* elems, std::size_t count,
                XdrProc<T> proc) {
  for (std::size_t i = 0; i < count; ++i) {
    if (!proc(xdrs, elems[i])) return false;
  }
  return true;
}

// xdr_array: variable-length array (u32 count on the wire, bounded).
template <typename T>
bool xdr_array(XdrStream& xdrs, std::vector<T>& v, std::uint32_t max_len,
               XdrProc<T> proc) {
  std::uint32_t count = static_cast<std::uint32_t>(v.size());
  if (!xdr_u_int(xdrs, count)) return false;
  switch (xdrs.op()) {
    case XdrOp::kDecode:
      if (count > max_len) return false;
      v.assign(count, T{});
      break;
    case XdrOp::kEncode:
      if (count > max_len) return false;
      break;
    case XdrOp::kFree:
      v.clear();
      return true;
  }
  return xdr_vector(xdrs, v.data(), count, proc);
}

// xdr_pointer / optional-data: a bool discriminant then the payload.
template <typename T>
bool xdr_optional(XdrStream& xdrs, std::optional<T>& v, XdrProc<T> proc) {
  bool present = v.has_value();
  if (!xdr_bool(xdrs, present)) return false;
  if (xdrs.op() == XdrOp::kFree) {
    v.reset();
    return true;
  }
  if (!present) {
    if (xdrs.op() == XdrOp::kDecode) v.reset();
    return true;
  }
  if (xdrs.op() == XdrOp::kDecode && !v.has_value()) v.emplace();
  return proc(xdrs, *v);
}

}  // namespace tempo::xdr
