// Real UDP datagram transport over the host's loopback interface.
#pragma once

#include <vector>

#include "net/transport.h"

namespace tempo::net {

// One received datagram.  `payload` stays at full datagram size and
// `len` carries the received byte count — recv_many() never shrinks the
// buffers, so reused batches perform no allocation AND no resize
// zero-fill on the hot path.
struct Datagram {
  Addr src;
  Bytes payload;
  std::size_t len = 0;
};

class UdpSocket final : public DatagramTransport {
 public:
  // Binds to 127.0.0.1:port (0 = ephemeral).  Check ok() before use.
  explicit UdpSocket(std::uint16_t port = 0);
  ~UdpSocket() override;

  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;

  bool ok() const { return fd_ >= 0; }

  Status send_to(const Addr& dst, ByteSpan payload) override;
  Result<std::size_t> recv_from(Addr* src, MutableByteSpan out,
                                int timeout_ms) override;
  Addr local_addr() const override { return local_; }

  // The raw socket, for readiness registration (net::Reactor).
  int fd() const { return fd_; }
  // Switch the socket to O_NONBLOCK; recv_from/recv_many then return
  // immediately instead of waiting.
  Status set_nonblocking(bool on);

  // Batched non-blocking receive: drains up to max_msgs datagrams in
  // one syscall (recvmmsg(2) on Linux; a recvfrom(MSG_DONTWAIT) loop —
  // one syscall per datagram — elsewhere).  Grows `out` as needed and
  // records each received length in Datagram::len (payload buffers are
  // never shrunk).  Returns the number of datagrams received; 0 means
  // the socket had nothing pending.
  int recv_many(std::vector<Datagram>& out, int max_msgs);

 private:
  int fd_ = -1;
  Addr local_;
};

}  // namespace tempo::net
