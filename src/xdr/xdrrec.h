// Record-marked XDR stream — port of Sun's xdrrec.c (RFC 1057 §10).
//
// TCP is a byte stream, so RPC-over-TCP frames each message as a
// sequence of *fragments*.  Each fragment starts with a 4-byte header:
// bit 31 set means "last fragment of the record", bits 30..0 carry the
// fragment length.  The encode side accumulates into a send buffer and
// flushes a fragment when full or at end_of_record(); the decode side
// pulls fragments on demand and enforces record boundaries.
#pragma once

#include <cstdint>
#include <functional>

#include "xdr/xdr.h"

namespace tempo::xdr {

// Writes all of `data` to the byte sink; false on transport failure.
using RecWriter = std::function<bool(ByteSpan)>;
// Reads up to out.size() bytes; returns bytes read, 0 on EOF/failure.
using RecReader = std::function<std::size_t(MutableByteSpan)>;

class XdrRec final : public XdrStream {
 public:
  static constexpr std::size_t kDefaultFragSize = 4000;  // SENDSIZE analog
  static constexpr std::uint32_t kLastFragFlag = 0x80000000u;

  XdrRec(XdrOp op, RecWriter writer, RecReader reader,
         std::size_t frag_size = kDefaultFragSize);

  bool putlong(std::int32_t v) override;
  bool getlong(std::int32_t* v) override;
  bool putbytes(ByteSpan data) override;
  bool getbytes(MutableByteSpan out) override;
  std::size_t getpos() const override;
  bool setpos(std::size_t pos) override;  // unsupported: record streams are sequential
  std::uint8_t* inline_bytes(std::size_t n) override;

  // --- encode side ----------------------------------------------------
  // Flush the current fragment; `last` marks the end of the record
  // (xdrrec_endofrecord).
  bool end_of_record(bool last = true);

  // --- decode side ----------------------------------------------------
  // Discard the rest of the current record and position at the start of
  // the next one (xdrrec_skiprecord).
  bool skip_record();
  // True once the last fragment of the current record is fully consumed.
  bool at_end_of_record() const {
    return last_frag_seen_ && frag_remaining_ == 0;
  }

 private:
  bool flush_fragment(bool last);
  // Ensure the decode side has an open fragment with >= 1 byte left.
  bool refill();
  bool read_exact(MutableByteSpan out);

  RecWriter writer_;
  RecReader reader_;

  // Encode state.
  Bytes send_buf_;
  std::size_t send_used_ = 0;

  // Decode state.
  std::uint32_t frag_remaining_ = 0;
  bool last_frag_seen_ = false;
  bool frag_header_pending_ = true;  // next read must parse a header
  std::size_t consumed_ = 0;         // total payload bytes consumed (getpos)
};

}  // namespace tempo::xdr
