// Credential builders: AUTH_NONE and AUTH_SYS (RFC 1057 appendix A).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rpc/rpc_msg.h"

namespace tempo::rpc {

struct AuthSysParams {
  std::uint32_t stamp = 0;
  std::string machine_name;  // <= 255 bytes
  std::uint32_t uid = 0;
  std::uint32_t gid = 0;
  std::vector<std::uint32_t> gids;  // <= 16 entries
};

OpaqueAuth make_auth_none();
// Returns a credential whose body is the XDR encoding of `params`.
OpaqueAuth make_auth_sys(const AuthSysParams& params);
// Parses an AUTH_SYS credential body; false if malformed.
bool parse_auth_sys(ByteSpan body, AuthSysParams* out);

}  // namespace tempo::rpc
