// Cross-validation: the library contains three independent
// implementations of the same wire format —
//   A. the layered C++ XDR stack (src/xdr + src/rpc), the "original",
//   B. the IR corpus run by the interpreter (src/pe), Tempo's input,
//   C. the residual plans (specializer output), Tempo's output,
// plus D, the compile-time template stubs.  Any disagreement between
// them is a bug in the reproduction, so: byte-for-byte equality on
// randomized interfaces and values, both directions.
#include <gtest/gtest.h>

#include "common/endian.h"
#include "core/stubspec.h"
#include "core/tspec.h"
#include "idl/interp.h"
#include "pe/interp.h"
#include "pe/layout.h"
#include "rpc/rpc_msg.h"
#include "xdr/xdrmem.h"

namespace tempo {
namespace {

constexpr std::uint32_t kProg = 0x20000777;
constexpr std::uint32_t kVers = 2;

// A: full call message through the layered C++ path.
Bytes cpp_encode_call(std::uint32_t proc_num, std::uint32_t xid,
                      const idl::Type& arg_type, const idl::Value& arg) {
  Bytes buf(65000);
  xdr::XdrMem x(MutableByteSpan(buf.data(), buf.size()), xdr::XdrOp::kEncode);
  rpc::CallHeader hdr;
  hdr.xid = xid;
  hdr.prog = kProg;
  hdr.vers = kVers;
  hdr.proc = proc_num;
  EXPECT_TRUE(rpc::xdr_call_header(x, hdr));
  EXPECT_TRUE(idl::encode_value(x, arg_type, arg));
  buf.resize(x.getpos());
  return buf;
}

// B: the IR corpus, interpreted.
Bytes ir_encode_call(const pe::InterfaceCorpus& corpus,
                     std::span<std::uint32_t> slots, std::uint32_t xid,
                     const std::vector<std::uint32_t>& counts) {
  Bytes buf(65000, 0);
  pe::InterpInput in;
  in.scalars[pe::kXidVar] = xid;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    in.scalars["cnt" + std::to_string(i)] = counts[i];
  }
  in.refs["argsp"] = 0;
  in.xdrs = {0, 65000, 0};
  in.user = slots;
  in.out = MutableByteSpan(buf.data(), buf.size());
  auto r = run_ir(corpus.program, corpus.encode_call, in);
  EXPECT_TRUE(r.is_ok()) << r.status().to_string();
  EXPECT_EQ(*r, pe::kRcOk);
  return buf;
}

struct Case {
  const char* name;
  idl::TypePtr type;
};

std::vector<Case> cases() {
  using namespace idl;
  return {
      {"pair", t_struct("pair", {{"a", t_int()}, {"b", t_int()}})},
      {"scalars", t_struct("s", {{"h", t_hyper()},
                                 {"u", t_uhyper()},
                                 {"d", t_double()},
                                 {"f", t_float()},
                                 {"b", t_bool()}})},
      {"opaque", t_struct("o", {{"pre", t_uint()},
                                {"sum", t_opaque_fixed(13)},
                                {"post", t_uint()}})},
      {"ints", t_array_var(t_int(), 512)},
      {"matrix", t_array_fixed(t_array_fixed(t_double(), 3), 5)},
      {"nested", t_struct("n", {{"hdr", t_struct("h", {{"v", t_uint()}})},
                                {"body", t_array_var(t_uint(), 64)}})},
  };
}

class CrossVal : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CrossVal, ThreeEncodersAgree) {
  const Case c = cases()[GetParam()];
  Rng rng(GetParam() * 1000 + 7);

  idl::ProcDef proc;
  proc.name = c.name;
  proc.number = 5;
  proc.arg_type = c.type;
  proc.res_type = c.type;

  for (int round = 0; round < 10; ++round) {
    const idl::Value value = idl::random_value(*c.type, rng, 24);
    std::vector<std::uint32_t> counts;
    ASSERT_TRUE(pe::collect_counts(*c.type, value, counts).is_ok());
    pe::Slots slots;
    ASSERT_TRUE(pe::flatten_value(*c.type, value, counts, slots).is_ok());

    core::SpecConfig cfg;
    cfg.arg_counts = counts;
    cfg.res_counts = counts;
    cfg.unroll_factor = static_cast<std::uint32_t>(round % 3) * 3;  // 0,3,6
    auto iface = core::SpecializedInterface::build(proc, kProg, kVers, cfg);
    ASSERT_TRUE(iface.is_ok()) << iface.status().to_string();
    auto corpus = pe::build_interface_corpus(proc, kProg, kVers);
    ASSERT_TRUE(corpus.is_ok());

    const std::uint32_t xid = rng.next_u32();

    // A vs B vs C.
    const Bytes a = cpp_encode_call(5, xid, *c.type, value);
    const Bytes b = ir_encode_call(*corpus, slots, xid, counts);
    const pe::Plan& plan = iface->encode_call_plan();
    Bytes cbytes(plan.out_size, 0);
    ASSERT_EQ(run_plan_encode(plan, slots, xid,
                              MutableByteSpan(cbytes.data(), cbytes.size())),
              pe::ExecStatus::kOk);

    ASSERT_EQ(a.size(), plan.out_size) << c.name;
    EXPECT_EQ(0, std::memcmp(a.data(), b.data(), a.size()))
        << c.name << ": C++ layered vs IR interp";
    EXPECT_EQ(0, std::memcmp(a.data(), cbytes.data(), a.size()))
        << c.name << ": C++ layered vs residual plan (unroll="
        << cfg.unroll_factor << ")";

    // Decode direction: build an accepted-success reply with the C++
    // path, decode it with the residual plan, compare values.
    Bytes reply(65000);
    {
      xdr::XdrMem x(MutableByteSpan(reply.data(), reply.size()),
                    xdr::XdrOp::kEncode);
      rpc::ReplyHeader hdr;
      hdr.xid = xid;
      ASSERT_TRUE(rpc::xdr_reply_header(x, hdr));
      ASSERT_TRUE(idl::encode_value(x, *c.type, value));
      reply.resize(x.getpos());
    }
    std::vector<std::uint32_t> res_slots(
        static_cast<std::size_t>(iface->res_slots()));
    ASSERT_EQ(run_plan_decode(iface->decode_reply_plan(),
                              ByteSpan(reply.data(), reply.size()), xid,
                              res_slots),
              pe::ExecStatus::kOk)
        << c.name;
    auto back = pe::unflatten_value(*c.type, counts, res_slots);
    ASSERT_TRUE(back.is_ok());
    EXPECT_TRUE(idl::value_equal(value, *back))
        << c.name << ": plan decode diverges from the encoded value";
  }
}

INSTANTIATE_TEST_SUITE_P(Interfaces, CrossVal,
                         ::testing::Range<std::size_t>(0, 6),
                         [](const auto& info) {
                           return std::string(cases()[info.param].name);
                         });

TEST(CrossValTspec, TemplateMatchesLayeredPath) {
  // D: template stubs vs the layered C++ path, int arrays.
  constexpr std::size_t kN = 33;
  Rng rng(4242);
  idl::Value value;
  {
    idl::ValueList l(kN);
    for (auto& e : l) e.v = static_cast<std::int32_t>(rng.next_u32());
    value.v = std::move(l);
  }
  const auto arr_t = idl::t_array_var(idl::t_int(), 64);
  const std::uint32_t xid = 0xC0FFEE;
  const Bytes a = cpp_encode_call(9, xid, *arr_t, value);

  std::vector<std::uint32_t> slots;
  for (const auto& e : value.as<idl::ValueList>()) {
    slots.push_back(static_cast<std::uint32_t>(e.as<std::int32_t>()));
  }
  using Call = core::tspec::IntArrayCall<kProg, kVers, 9, kN>;
  Bytes d(Call::kBytes);
  ASSERT_TRUE(Call::encode(xid, slots,
                           std::span<std::uint8_t>(d.data(), d.size())));
  ASSERT_EQ(a.size(), d.size());
  EXPECT_EQ(a, d);
}

}  // namespace
}  // namespace tempo
