// Platform profiles for the experiments (DESIGN.md §3 substitutions).
//
//  * pc-native: real wall-clock on this host; network round trips use
//    either loopback UDP or the simulated Fast-Ethernet link.
//  * ipx-sim: virtual time from the cost model; the generic path is the
//    IR corpus run by the interpreter, the specialized path is the plan
//    executor with event counting, and round trips ride the simulated
//    ATM link.
#pragma once

#include "common/costmodel.h"
#include "net/simnet.h"

namespace tempo::core {

struct PlatformProfile {
  const char* name;
  bool native_timing;           // wall clock vs cost model
  CostParams cost;              // used when !native_timing
  net::LinkParams link;         // simulated network parameters
};

inline PlatformProfile pc_linux_profile() {
  return PlatformProfile{"PC/Linux - Ethernet 100Mbits", true, CostParams{},
                         net::LinkParams::ethernet_pc()};
}

inline PlatformProfile ipx_sunos_profile() {
  return PlatformProfile{"IPX/SunOS - ATM 100Mbits", false,
                         CostParams::ipx_sunos(), net::LinkParams::atm_ipx()};
}

}  // namespace tempo::core
