#include "rpc/rpc_msg.h"

namespace tempo::rpc {

using xdr::XdrOp;
using xdr::XdrStream;

bool xdr_opaque_auth(XdrStream& xdrs, OpaqueAuth& auth) {
  if (!xdr::xdr_enum(xdrs, auth.flavor)) return false;
  return xdr::xdr_bytes(xdrs, auth.body, kMaxAuthBytes);
}

bool xdr_call_header(XdrStream& xdrs, CallHeader& hdr) {
  MsgType mtype = MsgType::kCall;
  if (!xdr::xdr_u_int(xdrs, hdr.xid)) return false;
  if (!xdr::xdr_enum(xdrs, mtype)) return false;
  if (mtype != MsgType::kCall) return false;
  if (!xdr::xdr_u_int(xdrs, hdr.rpcvers)) return false;
  if (!xdr::xdr_u_int(xdrs, hdr.prog)) return false;
  if (!xdr::xdr_u_int(xdrs, hdr.vers)) return false;
  if (!xdr::xdr_u_int(xdrs, hdr.proc)) return false;
  if (!xdr_opaque_auth(xdrs, hdr.cred)) return false;
  if (!xdr_opaque_auth(xdrs, hdr.verf)) return false;
  return true;
}

bool xdr_reply_header(XdrStream& xdrs, ReplyHeader& hdr) {
  MsgType mtype = MsgType::kReply;
  if (!xdr::xdr_u_int(xdrs, hdr.xid)) return false;
  if (!xdr::xdr_enum(xdrs, mtype)) return false;
  if (mtype != MsgType::kReply) return false;
  if (!xdr::xdr_enum(xdrs, hdr.stat)) return false;
  switch (hdr.stat) {
    case ReplyStat::kAccepted:
      if (!xdr_opaque_auth(xdrs, hdr.verf)) return false;
      if (!xdr::xdr_enum(xdrs, hdr.accept_stat)) return false;
      if (hdr.accept_stat == AcceptStat::kProgMismatch) {
        if (!xdr::xdr_u_int(xdrs, hdr.mismatch_low)) return false;
        if (!xdr::xdr_u_int(xdrs, hdr.mismatch_high)) return false;
      }
      return true;
    case ReplyStat::kDenied:
      if (!xdr::xdr_enum(xdrs, hdr.reject_stat)) return false;
      if (hdr.reject_stat == RejectStat::kRpcMismatch) {
        if (!xdr::xdr_u_int(xdrs, hdr.rpc_mismatch_low)) return false;
        if (!xdr::xdr_u_int(xdrs, hdr.rpc_mismatch_high)) return false;
      } else {
        if (!xdr::xdr_enum(xdrs, hdr.auth_stat)) return false;
      }
      return true;
  }
  return false;
}

}  // namespace tempo::rpc
