// RPC engine tests: message codecs, auth, dispatch + protocol error
// replies, real loopback UDP/TCP round trips, port mapper, and
// retransmission behaviour under simulated loss.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "common/endian.h"
#include "net/simnet.h"
#include "net/udp.h"
#include "rpc/auth.h"
#include "rpc/client.h"
#include "rpc/pmap.h"
#include "rpc/svc.h"
#include "xdr/xdrmem.h"

namespace tempo::rpc {
namespace {

using xdr::XdrMem;
using xdr::XdrOp;
using xdr::XdrStream;

TEST(RpcMsg, CallHeaderGolden) {
  Bytes buf(256);
  XdrMem enc(MutableByteSpan(buf.data(), buf.size()), XdrOp::kEncode);
  CallHeader hdr;
  hdr.xid = 0xABCD1234;
  hdr.prog = 100003;  // NFS
  hdr.vers = 2;
  hdr.proc = 1;
  ASSERT_TRUE(xdr_call_header(enc, hdr));
  EXPECT_EQ(enc.getpos(), 40u);  // AUTH_NONE cred+verf are 4 words
  EXPECT_EQ(load_be32(buf.data() + 0), 0xABCD1234u);
  EXPECT_EQ(load_be32(buf.data() + 4), 0u);       // CALL
  EXPECT_EQ(load_be32(buf.data() + 8), 2u);       // rpcvers
  EXPECT_EQ(load_be32(buf.data() + 12), 100003u);

  XdrMem dec(MutableByteSpan(buf.data(), 40), XdrOp::kDecode);
  CallHeader out;
  ASSERT_TRUE(xdr_call_header(dec, out));
  EXPECT_EQ(out.xid, hdr.xid);
  EXPECT_EQ(out.prog, hdr.prog);
  EXPECT_EQ(out.proc, hdr.proc);
  EXPECT_EQ(out.cred.flavor, AuthFlavor::kNone);
}

TEST(RpcMsg, ReplyHeaderVariants) {
  for (auto astat :
       {AcceptStat::kSuccess, AcceptStat::kProgUnavail,
        AcceptStat::kProgMismatch, AcceptStat::kProcUnavail,
        AcceptStat::kGarbageArgs, AcceptStat::kSystemErr}) {
    Bytes buf(256);
    XdrMem enc(MutableByteSpan(buf.data(), buf.size()), XdrOp::kEncode);
    ReplyHeader hdr;
    hdr.xid = 7;
    hdr.accept_stat = astat;
    hdr.mismatch_low = 1;
    hdr.mismatch_high = 3;
    ASSERT_TRUE(xdr_reply_header(enc, hdr));
    XdrMem dec(MutableByteSpan(buf.data(), enc.getpos()), XdrOp::kDecode);
    ReplyHeader out;
    ASSERT_TRUE(xdr_reply_header(dec, out));
    EXPECT_EQ(out.accept_stat, astat);
    if (astat == AcceptStat::kProgMismatch) {
      EXPECT_EQ(out.mismatch_low, 1u);
      EXPECT_EQ(out.mismatch_high, 3u);
    }
  }
  // Denied variants.
  for (auto rstat : {RejectStat::kRpcMismatch, RejectStat::kAuthError}) {
    Bytes buf(256);
    XdrMem enc(MutableByteSpan(buf.data(), buf.size()), XdrOp::kEncode);
    ReplyHeader hdr;
    hdr.stat = ReplyStat::kDenied;
    hdr.reject_stat = rstat;
    hdr.auth_stat = AuthStat::kBadCred;
    ASSERT_TRUE(xdr_reply_header(enc, hdr));
    XdrMem dec(MutableByteSpan(buf.data(), enc.getpos()), XdrOp::kDecode);
    ReplyHeader out;
    ASSERT_TRUE(xdr_reply_header(dec, out));
    EXPECT_EQ(out.stat, ReplyStat::kDenied);
    EXPECT_EQ(out.reject_stat, rstat);
  }
}

TEST(Auth, AuthSysRoundTrip) {
  AuthSysParams params;
  params.stamp = 424242;
  params.machine_name = "testhost";
  params.uid = 1000;
  params.gid = 100;
  params.gids = {100, 4, 27};
  OpaqueAuth cred = make_auth_sys(params);
  EXPECT_EQ(cred.flavor, AuthFlavor::kSys);
  AuthSysParams out;
  ASSERT_TRUE(parse_auth_sys(ByteSpan(cred.body.data(), cred.body.size()),
                             &out));
  EXPECT_EQ(out.machine_name, "testhost");
  EXPECT_EQ(out.uid, 1000u);
  EXPECT_EQ(out.gids, params.gids);
}

// ---- dispatch over the transport-independent core ----------------------

SvcHandler echo_int_handler() {
  return [](XdrStream& in, XdrStream& out) {
    std::int32_t v = 0;
    if (!xdr::xdr_int(in, v)) return false;
    return xdr::xdr_int(out, v);
  };
}

Bytes make_call(std::uint32_t xid, std::uint32_t prog, std::uint32_t vers,
                std::uint32_t proc, std::uint32_t rpcvers = kRpcVersion,
                std::int32_t arg = 5) {
  Bytes buf(256);
  XdrMem enc(MutableByteSpan(buf.data(), buf.size()), XdrOp::kEncode);
  CallHeader hdr;
  hdr.xid = xid;
  hdr.rpcvers = rpcvers;
  hdr.prog = prog;
  hdr.vers = vers;
  hdr.proc = proc;
  EXPECT_TRUE(xdr_call_header(enc, hdr));
  EXPECT_TRUE(xdr::xdr_int(enc, arg));
  buf.resize(enc.getpos());
  return buf;
}

ReplyHeader parse_reply(const Bytes& reply) {
  Bytes copy = reply;
  XdrMem dec(MutableByteSpan(copy.data(), copy.size()), XdrOp::kDecode);
  ReplyHeader hdr;
  EXPECT_TRUE(xdr_reply_header(dec, hdr));
  return hdr;
}

TEST(Svc, DispatchSuccessAndErrors) {
  SvcRegistry reg;
  reg.register_proc(300, 1, 1, echo_int_handler());
  reg.register_proc(300, 2, 1, echo_int_handler());

  // Success.
  Bytes reply = reg.handle_datagram(make_call(10, 300, 1, 1));
  ASSERT_FALSE(reply.empty());
  ReplyHeader h = parse_reply(reply);
  EXPECT_EQ(h.xid, 10u);
  EXPECT_EQ(h.accept_stat, AcceptStat::kSuccess);
  EXPECT_EQ(load_be32(reply.data() + reply.size() - 4), 5u);  // echoed

  // RPC version mismatch -> denied.
  h = parse_reply(reg.handle_datagram(make_call(11, 300, 1, 1, 3)));
  EXPECT_EQ(h.stat, ReplyStat::kDenied);
  EXPECT_EQ(h.reject_stat, RejectStat::kRpcMismatch);

  // Unknown program.
  h = parse_reply(reg.handle_datagram(make_call(12, 999, 1, 1)));
  EXPECT_EQ(h.accept_stat, AcceptStat::kProgUnavail);

  // Unknown version: mismatch with bounds.
  h = parse_reply(reg.handle_datagram(make_call(13, 300, 9, 1)));
  EXPECT_EQ(h.accept_stat, AcceptStat::kProgMismatch);
  EXPECT_EQ(h.mismatch_low, 1u);
  EXPECT_EQ(h.mismatch_high, 2u);

  // Unknown procedure.
  h = parse_reply(reg.handle_datagram(make_call(14, 300, 1, 42)));
  EXPECT_EQ(h.accept_stat, AcceptStat::kProcUnavail);

  // Garbage args: handler fails to decode (truncated body).
  Bytes call = make_call(15, 300, 1, 1);
  call.resize(call.size() - 4);
  h = parse_reply(reg.handle_datagram(ByteSpan(call.data(), call.size())));
  EXPECT_EQ(h.accept_stat, AcceptStat::kGarbageArgs);

  // Undecodable header: dropped.
  Bytes junk = {1, 2, 3};
  EXPECT_TRUE(reg.handle_datagram(ByteSpan(junk.data(), junk.size())).empty());

  EXPECT_EQ(reg.stats().requests, 7);
  EXPECT_EQ(reg.stats().success, 1);
  EXPECT_EQ(reg.stats().undecodable, 1);
}

// ---- zero-copy dispatch: span path vs legacy copy path ------------------

SvcHandler echo_array_handler() {
  return [](XdrStream& in, XdrStream& out) {
    std::uint32_t count = 0;
    if (!xdr::xdr_u_int(in, count) || count > 1u << 18) return false;
    if (!xdr::xdr_u_int(out, count)) return false;
    for (std::uint32_t i = 0; i < count; ++i) {
      std::int32_t v = 0;
      if (!xdr::xdr_int(in, v) || !xdr::xdr_int(out, v)) return false;
    }
    return true;
  };
}

Bytes make_array_call(std::uint32_t xid, std::uint32_t count) {
  Bytes buf(64 + 4 * static_cast<std::size_t>(count));
  XdrMem enc(MutableByteSpan(buf.data(), buf.size()), XdrOp::kEncode);
  CallHeader hdr;
  hdr.xid = xid;
  hdr.prog = 300;
  hdr.vers = 1;
  hdr.proc = 2;
  EXPECT_TRUE(xdr_call_header(enc, hdr));
  EXPECT_TRUE(xdr::xdr_u_int(enc, count));
  for (std::uint32_t i = 0; i < count; ++i) {
    std::int32_t v = static_cast<std::int32_t>(i * 2654435761u);
    EXPECT_TRUE(xdr::xdr_int(enc, v));
  }
  buf.resize(enc.getpos());
  return buf;
}

void install_corpus_procs(SvcRegistry& reg) {
  reg.register_proc(300, 1, 1, echo_int_handler());
  reg.register_proc(300, 2, 1, echo_int_handler());
  reg.register_proc(300, 1, 2, echo_array_handler());
}

// The whole request corpus — success paths, every protocol error, and
// garbage — must produce byte-identical replies and identical stats
// through the legacy copy path (handle_datagram) and the zero-copy span
// path (handle_request), with the span path never touching scratch.
TEST(Svc, ZeroCopySpanPathMatchesLegacyCopyPath) {
  std::vector<Bytes> corpus;
  corpus.push_back(make_call(10, 300, 1, 1));       // success
  corpus.push_back(make_call(11, 300, 1, 1, 3));    // RPC_MISMATCH
  corpus.push_back(make_call(12, 999, 1, 1));       // PROG_UNAVAIL
  corpus.push_back(make_call(13, 300, 9, 1));       // PROG_MISMATCH
  corpus.push_back(make_call(14, 300, 1, 42));      // PROC_UNAVAIL
  Bytes truncated = make_call(15, 300, 1, 1);
  truncated.resize(truncated.size() - 4);           // GARBAGE_ARGS
  corpus.push_back(truncated);
  corpus.push_back(Bytes{1, 2, 3});                 // undecodable: drop
  corpus.push_back(make_array_call(16, 1));
  corpus.push_back(make_array_call(17, 100));
  corpus.push_back(make_array_call(18, 2000));      // paper's array size

  SvcRegistry legacy;
  SvcRegistry span;
  install_corpus_procs(legacy);
  install_corpus_procs(span);

  Bytes reply_buf;
  for (const auto& req : corpus) {
    const Bytes via_legacy =
        legacy.handle_datagram(ByteSpan(req.data(), req.size()));

    // The span path decodes the caller's buffer in place; hand it a
    // private mutable copy exactly like a transport receive buffer.
    Bytes receive = req;
    reply_buf.assign(reply_capacity(receive.size()), 0xEE);
    const std::size_t n = span.handle_request(
        ByteSpan(receive.data(), receive.size()),
        MutableByteSpan(reply_buf.data(), reply_buf.size()));
    const Bytes via_span(reply_buf.begin(),
                         reply_buf.begin() + static_cast<std::ptrdiff_t>(n));

    EXPECT_EQ(via_legacy, via_span);
    EXPECT_EQ(receive, req);  // dispatch only ever reads the request
  }

  EXPECT_EQ(legacy.stats().requests, span.stats().requests);
  EXPECT_EQ(legacy.stats().success, span.stats().success);
  EXPECT_EQ(legacy.stats().protocol_errors, span.stats().protocol_errors);
  EXPECT_EQ(legacy.stats().undecodable, span.stats().undecodable);
  EXPECT_EQ(span.stats().success, 4);
  EXPECT_EQ(span.stats().undecodable, 1);
}

// Reply buffers must scale with the request: a ~780 KB echo (200000
// ints) exceeds the old fixed 65000-byte reply scratch, which made the
// handler's encode fail and turned the reply into GARBAGE_ARGS.
TEST(Svc, LargeEchoReplySizesFromRequest) {
  SvcRegistry reg;
  install_corpus_procs(reg);
  const std::uint32_t count = 200000;
  const Bytes req = make_array_call(20, count);
  ASSERT_GT(req.size(), 65000u * 4);

  const Bytes reply = reg.handle_datagram(ByteSpan(req.data(), req.size()));
  ASSERT_FALSE(reply.empty());
  EXPECT_EQ(parse_reply(reply).accept_stat, AcceptStat::kSuccess);
  EXPECT_GT(reply.size(), 4u * count);
  EXPECT_EQ(reg.stats().success, 1);
  EXPECT_EQ(reg.stats().protocol_errors, 0);
}

TEST(Svc, AuthCheckerRejects) {
  SvcRegistry reg;
  reg.register_proc(300, 1, 1, echo_int_handler());
  reg.set_auth_checker([](const OpaqueAuth& cred) {
    return cred.flavor == AuthFlavor::kSys ? AuthStat::kOk
                                           : AuthStat::kTooWeak;
  });
  ReplyHeader h = parse_reply(reg.handle_datagram(make_call(1, 300, 1, 1)));
  EXPECT_EQ(h.stat, ReplyStat::kDenied);
  EXPECT_EQ(h.reject_stat, RejectStat::kAuthError);
}

// Clients constructed in a tight loop used to seed their XID streams
// from steady_clock microseconds alone, so two constructions in the
// same microsecond started identical streams and could adopt each
// other's replies.  Seeds must be distinct no matter how fast clients
// are created.
TEST(Client, InitialXidsDistinctForClientsCreatedInTightLoop) {
  // The deterministic pin: with the CLOCK FROZEN (every construction in
  // the same microsecond — the case a multicore host hits naturally),
  // N seeds must still be N distinct values.  Clock-only seeding
  // returns the same XID for all of them.
  {
    std::set<std::uint32_t> seeds;
    constexpr int kSameMicrosecond = 1000;
    for (int i = 0; i < kSameMicrosecond; ++i) {
      seeds.insert(initial_xid_seed(0xDEADBEEFu));
    }
    EXPECT_EQ(seeds.size(), static_cast<std::size_t>(kSameMicrosecond));
  }

  net::UdpSocket sock;
  ASSERT_TRUE(sock.ok());
  // And end-to-end: concurrently constructed real clients (which land
  // in the same microsecond on any multicore host) get distinct seeds.
  constexpr int kThreads = 8;
  constexpr int kPerThread = 64;
  std::vector<std::vector<std::uint32_t>> per_thread(kThreads);
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      per_thread[static_cast<std::size_t>(t)].reserve(kPerThread);
      while (!go.load(std::memory_order_acquire)) {
      }
      for (int i = 0; i < kPerThread; ++i) {
        UdpClient client(sock, net::Addr{0x7F000001u, 9}, 300, 1);
        per_thread[static_cast<std::size_t>(t)].push_back(client.last_xid());
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();

  std::set<std::uint32_t> seeds;
  for (const auto& v : per_thread) seeds.insert(v.begin(), v.end());
  EXPECT_EQ(seeds.size(),
            static_cast<std::size_t>(kThreads) * kPerThread);
}

// ---- real loopback UDP round trip ---------------------------------------

TEST(Client, UdpLoopbackEcho) {
  net::UdpSocket server_sock;
  ASSERT_TRUE(server_sock.ok());
  SvcRegistry reg;
  reg.register_proc(400, 1, 3, echo_int_handler());
  UdpServer server(server_sock, reg);

  std::atomic<bool> stop{false};
  std::thread server_thread([&] { server.serve(stop); });

  net::UdpSocket client_sock;
  ASSERT_TRUE(client_sock.ok());
  UdpClient client(client_sock, server_sock.local_addr(), 400, 1);

  for (std::int32_t i = 0; i < 20; ++i) {
    std::int32_t out = -1;
    Status st = client.call(
        3, [&](XdrStream& x) { return xdr::xdr_int(x, i); },
        [&](XdrStream& x) { return xdr::xdr_int(x, out); });
    ASSERT_TRUE(st.is_ok()) << st.to_string();
    EXPECT_EQ(out, i);
  }

  // Unknown procedure maps to NOT_FOUND.
  Status st = client.call(99, nullptr, nullptr);
  EXPECT_EQ(st.code(), StatusCode::kNotFound);

  stop = true;
  server_thread.join();
}

TEST(Client, UdpTimeoutWhenNoServer) {
  net::UdpSocket client_sock;
  ASSERT_TRUE(client_sock.ok());
  CallOptions opts;
  opts.retry_timeout_ms = 30;
  opts.total_timeout_ms = 120;
  UdpClient client(client_sock, net::Addr{0x7F000001, 1},  // nothing there
                   400, 1, opts);
  Status st = client.call(1, nullptr, nullptr);
  EXPECT_EQ(st.code(), StatusCode::kTimeout);
  EXPECT_GE(client.stats().retransmissions, 2);
}

// ---- TCP round trip ------------------------------------------------------

TEST(Client, TcpLoopbackEcho) {
  net::TcpListener listener;
  ASSERT_TRUE(listener.ok());
  SvcRegistry reg;
  reg.register_proc(500, 1, 1, echo_int_handler());
  TcpServer server(listener, reg);

  std::atomic<bool> stop{false};
  std::thread server_thread([&] { server.serve_one_connection(stop, 3000); });

  TcpClient client(listener.local_addr(), 500, 1);
  ASSERT_TRUE(client.ok());
  for (std::int32_t i = 0; i < 10; ++i) {
    std::int32_t out = -1;
    Status st = client.call(
        1, [&](XdrStream& x) { return xdr::xdr_int(x, i); },
        [&](XdrStream& x) { return xdr::xdr_int(x, out); });
    ASSERT_TRUE(st.is_ok()) << st.to_string();
    EXPECT_EQ(out, i);
  }
  stop = true;
  server_thread.join();
}

// ---- retransmission under loss (simulated network) ----------------------

TEST(Client, RetransmitsThroughLossyLink) {
  net::LinkParams lossy;
  lossy.drop_prob = 0.4;
  lossy.latency_us = 50;
  net::SimNetwork net(lossy, /*fault_seed=*/7);

  auto* server_ep = net.create_endpoint();
  auto* client_ep = net.create_endpoint();
  SvcRegistry reg;
  reg.register_proc(600, 1, 1, echo_int_handler());
  attach_sim_server(server_ep, reg);

  CallOptions opts;
  opts.retry_timeout_ms = 20;
  opts.total_timeout_ms = 10000;
  UdpClient client(*client_ep, server_ep->local_addr(), 600, 1, opts);

  int ok = 0;
  for (std::int32_t i = 0; i < 50; ++i) {
    std::int32_t out = -1;
    Status st = client.call(
        1, [&](XdrStream& x) { return xdr::xdr_int(x, i); },
        [&](XdrStream& x) { return xdr::xdr_int(x, out); });
    if (st.is_ok()) {
      EXPECT_EQ(out, i);
      ++ok;
    }
  }
  // With 40% loss per leg and aggressive retry, calls still succeed.
  EXPECT_EQ(ok, 50);
  EXPECT_GT(client.stats().retransmissions, 0);
  EXPECT_GT(net.packets_dropped(), 0);
}

// ---- port mapper ---------------------------------------------------------

TEST(Pmap, SetGetUnsetOverRpc) {
  net::SimNetwork net;
  auto* pmap_ep = net.create_endpoint(kPmapPort);
  auto* client_ep = net.create_endpoint();

  SvcRegistry reg;
  PortMapper pmap;
  pmap.install(reg);
  attach_sim_server(pmap_ep, reg);

  const net::Addr pmap_addr = pmap_ep->local_addr();
  Mapping m{70011, 1, kIpprotoUdp, 9001};

  auto set = pmap_set(*client_ep, pmap_addr, m);
  ASSERT_TRUE(set.is_ok()) << set.status().to_string();
  EXPECT_TRUE(*set);

  // Duplicate SET fails (RFC 1057 semantics).
  set = pmap_set(*client_ep, pmap_addr, m);
  ASSERT_TRUE(set.is_ok());
  EXPECT_FALSE(*set);

  auto port = pmap_getport(*client_ep, pmap_addr, 70011, 1, kIpprotoUdp);
  ASSERT_TRUE(port.is_ok());
  EXPECT_EQ(*port, 9001u);

  // Unknown program: port 0.
  port = pmap_getport(*client_ep, pmap_addr, 123456, 1, kIpprotoUdp);
  ASSERT_TRUE(port.is_ok());
  EXPECT_EQ(*port, 0u);

  auto unset = pmap_unset(*client_ep, pmap_addr, 70011, 1);
  ASSERT_TRUE(unset.is_ok());
  EXPECT_TRUE(*unset);
  port = pmap_getport(*client_ep, pmap_addr, 70011, 1, kIpprotoUdp);
  ASSERT_TRUE(port.is_ok());
  EXPECT_EQ(*port, 0u);
}

}  // namespace
}  // namespace tempo::rpc
