// Port mapper (RFC 1057 appendix A) — program 100000, version 2.
//
// Implemented as a genuine RPC service on top of this library's own
// engine (the same dogfooding the original rpcbind does): servers SET
// their (prog, vers, proto) -> port mapping, clients GETPORT it.
#pragma once

#include <cstdint>
#include <map>
#include <tuple>

#include "rpc/client.h"
#include "rpc/svc.h"

namespace tempo::rpc {

inline constexpr std::uint32_t kPmapProg = 100000;
inline constexpr std::uint32_t kPmapVers = 2;
inline constexpr std::uint32_t kPmapPort = 111;

enum class PmapProc : std::uint32_t {
  kNull = 0,
  kSet = 1,
  kUnset = 2,
  kGetPort = 3,
};

inline constexpr std::uint32_t kIpprotoTcp = 6;
inline constexpr std::uint32_t kIpprotoUdp = 17;

struct Mapping {
  std::uint32_t prog = 0;
  std::uint32_t vers = 0;
  std::uint32_t prot = kIpprotoUdp;
  std::uint32_t port = 0;
};

bool xdr_mapping(xdr::XdrStream& xdrs, Mapping& m);

// Server side: owns the mapping table and registers the four procedures
// with a SvcRegistry.
class PortMapper {
 public:
  void install(SvcRegistry& registry);

  bool set(const Mapping& m);
  bool unset(std::uint32_t prog, std::uint32_t vers);
  std::uint32_t getport(std::uint32_t prog, std::uint32_t vers,
                        std::uint32_t prot) const;
  std::size_t size() const { return table_.size(); }

 private:
  using Key = std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>;
  std::map<Key, std::uint32_t> table_;
};

// Client-side helpers speaking the portmap protocol over a transport.
Result<bool> pmap_set(net::DatagramTransport& transport, net::Addr pmap_addr,
                      const Mapping& m);
Result<bool> pmap_unset(net::DatagramTransport& transport,
                        net::Addr pmap_addr, std::uint32_t prog,
                        std::uint32_t vers);
// Returns 0 if the program is not registered.
Result<std::uint32_t> pmap_getport(net::DatagramTransport& transport,
                                   net::Addr pmap_addr, std::uint32_t prog,
                                   std::uint32_t vers, std::uint32_t prot);

}  // namespace tempo::rpc
