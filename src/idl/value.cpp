#include "idl/value.h"

namespace tempo::idl {

bool value_equal(const Value& a, const Value& b) {
  if (a.v.index() != b.v.index()) return false;
  if (std::holds_alternative<ValueList>(a.v)) {
    const auto& la = a.as<ValueList>();
    const auto& lb = b.as<ValueList>();
    if (la.size() != lb.size()) return false;
    for (std::size_t i = 0; i < la.size(); ++i) {
      if (!value_equal(la[i], lb[i])) return false;
    }
    return true;
  }
  if (std::holds_alternative<OptionalValue>(a.v)) {
    const auto& oa = a.as<OptionalValue>();
    const auto& ob = b.as<OptionalValue>();
    if (!oa.payload != !ob.payload) return false;
    return !oa.payload || value_equal(*oa.payload, *ob.payload);
  }
  if (std::holds_alternative<UnionValue>(a.v)) {
    const auto& ua = a.as<UnionValue>();
    const auto& ub = b.as<UnionValue>();
    if (ua.discriminant != ub.discriminant) return false;
    if (!ua.payload != !ub.payload) return false;
    return !ua.payload || value_equal(*ua.payload, *ub.payload);
  }
  return std::visit(
      [&](const auto& x) -> bool {
        using T = std::decay_t<decltype(x)>;
        if constexpr (std::is_same_v<T, ValueList> ||
                      std::is_same_v<T, OptionalValue> ||
                      std::is_same_v<T, UnionValue>) {
          return false;  // handled above
        } else {
          return x == std::get<T>(b.v);
        }
      },
      a.v);
}

std::string value_to_string(const Value& value) {
  struct Visitor {
    std::string operator()(std::monostate) const { return "void"; }
    std::string operator()(std::int32_t x) const { return std::to_string(x); }
    std::string operator()(std::uint32_t x) const { return std::to_string(x); }
    std::string operator()(std::int64_t x) const { return std::to_string(x); }
    std::string operator()(std::uint64_t x) const { return std::to_string(x); }
    std::string operator()(bool x) const { return x ? "true" : "false"; }
    std::string operator()(float x) const { return std::to_string(x); }
    std::string operator()(double x) const { return std::to_string(x); }
    std::string operator()(const std::string& s) const { return '"' + s + '"'; }
    std::string operator()(const Bytes& b) const {
      return "opaque[" + std::to_string(b.size()) + "]";
    }
    std::string operator()(const ValueList& l) const {
      std::string out = "{";
      for (std::size_t i = 0; i < l.size(); ++i) {
        if (i) out += ", ";
        out += value_to_string(l[i]);
      }
      return out + "}";
    }
    std::string operator()(const OptionalValue& o) const {
      return o.payload ? "&" + value_to_string(*o.payload) : "null";
    }
    std::string operator()(const UnionValue& u) const {
      return "case " + std::to_string(u.discriminant) + ": " +
             (u.payload ? value_to_string(*u.payload) : "void");
    }
  };
  return std::visit(Visitor{}, value.v);
}

Value zero_value(const Type& t) {
  Value out;
  switch (t.kind) {
    case Kind::kVoid:
      break;
    case Kind::kInt:
      out.v = std::int32_t{0};
      break;
    case Kind::kEnum:
      out.v = t.enumerators.empty() ? std::int32_t{0}
                                    : t.enumerators.front().value;
      break;
    case Kind::kUInt:
      out.v = std::uint32_t{0};
      break;
    case Kind::kHyper:
      out.v = std::int64_t{0};
      break;
    case Kind::kUHyper:
      out.v = std::uint64_t{0};
      break;
    case Kind::kBool:
      out.v = false;
      break;
    case Kind::kFloat:
      out.v = 0.0f;
      break;
    case Kind::kDouble:
      out.v = 0.0;
      break;
    case Kind::kString:
      out.v = std::string{};
      break;
    case Kind::kOpaqueFixed:
      out.v = Bytes(t.bound, 0);
      break;
    case Kind::kOpaqueVar:
      out.v = Bytes{};
      break;
    case Kind::kArrayFixed: {
      ValueList l;
      l.reserve(t.bound);
      for (std::uint32_t i = 0; i < t.bound; ++i) {
        l.push_back(zero_value(*t.elem));
      }
      out.v = std::move(l);
      break;
    }
    case Kind::kArrayVar:
      out.v = ValueList{};
      break;
    case Kind::kStruct: {
      ValueList l;
      l.reserve(t.fields.size());
      for (const auto& f : t.fields) l.push_back(zero_value(*f.type));
      out.v = std::move(l);
      break;
    }
    case Kind::kOptional:
      out.v = OptionalValue{};
      break;
    case Kind::kUnion: {
      UnionValue u;
      if (!t.arms.empty()) {
        u.discriminant = t.arms.front().discriminant;
        if (t.arms.front().field.type->kind != Kind::kVoid) {
          u.payload =
              std::make_shared<Value>(zero_value(*t.arms.front().field.type));
        }
      }
      out.v = std::move(u);
      break;
    }
  }
  return out;
}

Value random_value(const Type& t, Rng& rng, std::uint32_t max_elems) {
  Value out;
  switch (t.kind) {
    case Kind::kVoid:
      break;
    case Kind::kInt:
      out.v = static_cast<std::int32_t>(rng.next_u32());
      break;
    case Kind::kEnum:
      out.v = t.enumerators.empty()
                  ? static_cast<std::int32_t>(rng.next_below(8))
                  : t.enumerators[rng.next_below(t.enumerators.size())].value;
      break;
    case Kind::kUInt:
      out.v = rng.next_u32();
      break;
    case Kind::kHyper:
      out.v = static_cast<std::int64_t>(rng.next_u64());
      break;
    case Kind::kUHyper:
      out.v = rng.next_u64();
      break;
    case Kind::kBool:
      out.v = rng.next_bool();
      break;
    case Kind::kFloat:
      out.v = static_cast<float>(rng.next_double()) * 1000.0f;
      break;
    case Kind::kDouble:
      out.v = rng.next_double() * 1e6;
      break;
    case Kind::kString: {
      const std::uint32_t cap = t.bound < max_elems ? t.bound : max_elems;
      std::string s(rng.next_below(cap + 1), '\0');
      for (auto& c : s) {
        c = static_cast<char>('a' + rng.next_below(26));
      }
      out.v = std::move(s);
      break;
    }
    case Kind::kOpaqueFixed: {
      Bytes b(t.bound);
      for (auto& x : b) x = static_cast<std::uint8_t>(rng.next_u32());
      out.v = std::move(b);
      break;
    }
    case Kind::kOpaqueVar: {
      const std::uint32_t cap = t.bound < max_elems ? t.bound : max_elems;
      Bytes b(rng.next_below(cap + 1));
      for (auto& x : b) x = static_cast<std::uint8_t>(rng.next_u32());
      out.v = std::move(b);
      break;
    }
    case Kind::kArrayFixed: {
      ValueList l;
      l.reserve(t.bound);
      for (std::uint32_t i = 0; i < t.bound; ++i) {
        l.push_back(random_value(*t.elem, rng, max_elems));
      }
      out.v = std::move(l);
      break;
    }
    case Kind::kArrayVar: {
      const std::uint32_t cap = t.bound < max_elems ? t.bound : max_elems;
      ValueList l(static_cast<std::size_t>(rng.next_below(cap + 1)));
      for (auto& e : l) e = random_value(*t.elem, rng, max_elems);
      out.v = std::move(l);
      break;
    }
    case Kind::kStruct: {
      ValueList l;
      l.reserve(t.fields.size());
      for (const auto& f : t.fields) {
        l.push_back(random_value(*f.type, rng, max_elems));
      }
      out.v = std::move(l);
      break;
    }
    case Kind::kOptional: {
      OptionalValue o;
      if (rng.next_bool()) {
        o.payload = std::make_shared<Value>(random_value(*t.elem, rng, max_elems));
      }
      out.v = std::move(o);
      break;
    }
    case Kind::kUnion: {
      UnionValue u;
      const std::size_t n_arms =
          t.arms.size() + (t.default_arm.has_value() ? 1 : 0);
      const std::size_t pick = rng.next_below(n_arms ? n_arms : 1);
      if (pick < t.arms.size()) {
        u.discriminant = t.arms[pick].discriminant;
        if (t.arms[pick].field.type->kind != Kind::kVoid) {
          u.payload = std::make_shared<Value>(
              random_value(*t.arms[pick].field.type, rng, max_elems));
        }
      } else if (t.default_arm) {
        // Pick a discriminant not covered by any case.
        std::int32_t d = static_cast<std::int32_t>(rng.next_u32() | 0x40000000);
        u.discriminant = d;
        if (t.default_arm->type->kind != Kind::kVoid) {
          u.payload = std::make_shared<Value>(
              random_value(*t.default_arm->type, rng, max_elems));
        }
      }
      out.v = std::move(u);
      break;
    }
  }
  return out;
}

std::size_t wire_size(const Type& t, const Value& v) {
  switch (t.kind) {
    case Kind::kVoid:
      return 0;
    case Kind::kInt:
    case Kind::kUInt:
    case Kind::kBool:
    case Kind::kFloat:
    case Kind::kEnum:
      return 4;
    case Kind::kHyper:
    case Kind::kUHyper:
    case Kind::kDouble:
      return 8;
    case Kind::kString:
      return 4 + xdr_pad4(v.as<std::string>().size());
    case Kind::kOpaqueFixed:
      return xdr_pad4(t.bound);
    case Kind::kOpaqueVar:
      return 4 + xdr_pad4(v.as<Bytes>().size());
    case Kind::kArrayFixed: {
      std::size_t total = 0;
      for (const auto& e : v.as<ValueList>()) total += wire_size(*t.elem, e);
      return total;
    }
    case Kind::kArrayVar: {
      std::size_t total = 4;
      for (const auto& e : v.as<ValueList>()) total += wire_size(*t.elem, e);
      return total;
    }
    case Kind::kStruct: {
      std::size_t total = 0;
      const auto& l = v.as<ValueList>();
      for (std::size_t i = 0; i < t.fields.size(); ++i) {
        total += wire_size(*t.fields[i].type, l[i]);
      }
      return total;
    }
    case Kind::kOptional: {
      const auto& o = v.as<OptionalValue>();
      return 4 + (o.payload ? wire_size(*t.elem, *o.payload) : 0);
    }
    case Kind::kUnion: {
      const auto& u = v.as<UnionValue>();
      std::size_t payload = 0;
      for (const auto& arm : t.arms) {
        if (arm.discriminant == u.discriminant) {
          payload = u.payload ? wire_size(*arm.field.type, *u.payload) : 0;
          return 4 + payload;
        }
      }
      if (t.default_arm && u.payload) {
        payload = wire_size(*t.default_arm->type, *u.payload);
      }
      return 4 + payload;
    }
  }
  return 0;
}

}  // namespace tempo::idl
