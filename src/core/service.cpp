#include "core/service.h"

#include "idl/interp.h"
#include "pe/layout.h"

namespace tempo::core {

using pe::ExecStatus;

void SpecializedService::install(rpc::SvcRegistry& registry) {
  registry.register_proc(
      iface_.corpus().prog_num, iface_.corpus().vers_num,
      iface_.corpus().proc_num,
      [this](xdr::XdrStream& in, xdr::XdrStream& out) {
        return handle(in, out);
      });
}

bool SpecializedService::handle(xdr::XdrStream& in, xdr::XdrStream& out) {
  const pe::Plan& dplan = iface_.decode_args_plan();
  const pe::Plan& eplan = iface_.encode_results_plan();

  // Fast path needs direct buffer access on both streams.
  std::uint8_t* in_bytes =
      dplan.expected_in ? in.inline_bytes(dplan.expected_in) : nullptr;
  if (dplan.expected_in != 0 && in_bytes != nullptr) {
    std::vector<std::uint32_t> args(
        static_cast<std::size_t>(iface_.arg_slots()));
    if (run_plan_decode(dplan, ByteSpan(in_bytes, dplan.expected_in),
                        /*xid=*/0, args, nullptr) == ExecStatus::kOk) {
      std::vector<std::uint32_t> results(
          static_cast<std::size_t>(iface_.res_slots()));
      if (!handler_(args, results)) return false;
      std::uint8_t* out_bytes = out.inline_bytes(eplan.out_size);
      if (out_bytes != nullptr) {
        ++stats_.fast_path;
        return run_plan_encode(eplan, results, /*xid=*/0,
                               MutableByteSpan(out_bytes, eplan.out_size),
                               nullptr) == ExecStatus::kOk;
      }
      // Buffer not inlinable for the reply: encode generically.
      ++stats_.generic_path;
      auto value = pe::unflatten_value(iface_.res_type(),
                                       iface_.config().res_counts, results);
      if (!value.is_ok()) return false;
      return idl::encode_value(out, iface_.res_type(), *value);
    }
    // Guard miss: rewind is impossible on a stream, but the plan only
    // *read* via the inline span — the stream cursor already advanced,
    // so decode generically from the claimed bytes.
    xdr::XdrMem redo(MutableByteSpan(in_bytes, dplan.expected_in),
                     xdr::XdrOp::kDecode);
    ++stats_.generic_path;
    return handle_generic(redo, out);
  }
  ++stats_.generic_path;
  return handle_generic(in, out);
}

bool SpecializedService::handle_generic(xdr::XdrStream& in,
                                        xdr::XdrStream& out) {
  idl::Value value;
  if (!idl::decode_value(in, iface_.arg_type(), value)) return false;
  pe::Slots args;
  std::vector<std::uint32_t> counts;
  if (!pe::collect_counts(iface_.arg_type(), value, counts).is_ok()) {
    return false;
  }
  if (!pe::flatten_value(iface_.arg_type(), value, counts, args).is_ok()) {
    return false;
  }
  // Shape differs from the specialization: the word handler contract is
  // fixed-shape, so only matching requests can be served.
  if (counts != iface_.config().arg_counts &&
      !iface_.config().arg_counts.empty()) {
    return false;
  }
  if (args.size() != static_cast<std::size_t>(iface_.arg_slots())) {
    return false;
  }
  std::vector<std::uint32_t> results(
      static_cast<std::size_t>(iface_.res_slots()));
  if (!handler_(args, results)) return false;
  auto rvalue = pe::unflatten_value(iface_.res_type(),
                                    iface_.config().res_counts, results);
  if (!rvalue.is_ok()) return false;
  return idl::encode_value(out, iface_.res_type(), *rvalue);
}

}  // namespace tempo::core
