#!/usr/bin/env python3
"""Compare two bench JSON artifacts point-by-point.

Usage:
    bench_compare.py BASELINE.json CURRENT.json \
        [--max-drop-pct 15] [--max-rise-pct 15] [--label text] \
        [--key-fields f1,f2,...]

Points are matched on the configuration key — by default the
bench_concurrent fields (runtime, workers, clients, reactors,
workers_per_shard, tcp_depth, queue); other benches pass --key-fields
(e.g. bench_kv uses mode,writers,value_bytes).  For each matched pair
the script flags

  * calls_per_sec dropping by more than --max-drop-pct, and
  * p99_us rising by more than --max-rise-pct (only when both sides
    actually carry latency samples),

as GitHub Actions `::warning::` annotations.  The exit code is always
0: absolute numbers depend on runner hardware, so regressions here are
a signal for a human, not a gate.  Files with different schema_version
values are refused (compared fields may have changed meaning).
"""

import argparse
import json
import sys


DEFAULT_KEY_FIELDS = ("runtime", "workers", "clients", "reactors",
                      "workers_per_shard", "tcp_depth", "queue", "backend")


def config_key(point, fields):
    return tuple(point.get(f) for f in fields)


def fmt_key(key, fields):
    return " ".join(f"{n}={v}" for n, v in zip(fields, key))


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--max-drop-pct", type=float, default=15.0,
                    help="tolerated calls_per_sec drop (percent)")
    ap.add_argument("--max-rise-pct", type=float, default=15.0,
                    help="tolerated p99_us rise (percent)")
    ap.add_argument("--label", default="bench",
                    help="prefix for warning messages")
    ap.add_argument("--key-fields", default=",".join(DEFAULT_KEY_FIELDS),
                    help="comma-separated point fields forming the "
                         "configuration key")
    args = ap.parse_args()
    fields = tuple(f for f in args.key_fields.split(",") if f)

    with open(args.baseline) as f:
        base = json.load(f)
    with open(args.current) as f:
        cur = json.load(f)

    if base.get("schema_version") != cur.get("schema_version"):
        print(f"::warning::{args.label}: schema_version mismatch "
              f"({base.get('schema_version')} vs "
              f"{cur.get('schema_version')}); refusing to compare")
        return 0

    base_points = {config_key(p, fields): p for p in base.get("points", [])}
    cur_keys = {config_key(p, fields) for p in cur.get("points", [])}
    warnings = 0
    compared = 0
    # A baseline point with no current counterpart means coverage was
    # silently LOST (a sweep configuration dropped, renamed, or failed
    # to produce a point) — exactly the situation where a regression in
    # that configuration would otherwise go unnoticed.
    for key in base_points:
        if key not in cur_keys:
            print(f"::warning::{args.label}: baseline point "
                  f"{fmt_key(key, fields)} has no matching point in the "
                  f"current run; coverage lost")
            warnings += 1
    for point in cur.get("points", []):
        ref = base_points.get(config_key(point, fields))
        if ref is None:
            continue
        compared += 1
        key = fmt_key(config_key(point, fields), fields)

        ref_rate, cur_rate = ref.get("calls_per_sec", 0), point.get(
            "calls_per_sec", 0)
        if ref_rate > 0 and cur_rate < ref_rate * (
                1 - args.max_drop_pct / 100.0):
            drop = 100.0 * (1 - cur_rate / ref_rate)
            print(f"::warning::{args.label}: throughput -{drop:.1f}% "
                  f"({ref_rate:.0f} -> {cur_rate:.0f} calls/s) at {key}")
            warnings += 1

        ref_p99, cur_p99 = ref.get("p99_us", 0), point.get("p99_us", 0)
        if (ref.get("lat_count", 0) > 0 and point.get("lat_count", 0) > 0
                and ref_p99 > 0
                and cur_p99 > ref_p99 * (1 + args.max_rise_pct / 100.0)):
            rise = 100.0 * (cur_p99 / ref_p99 - 1)
            print(f"::warning::{args.label}: p99 +{rise:.1f}% "
                  f"({ref_p99:.1f} -> {cur_p99:.1f} us) at {key}")
            warnings += 1

    print(f"{args.label}: compared {compared} matched point(s), "
          f"{warnings} warning(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
