#include "pe/corpus.h"

#include "common/bytes.h"
#include "pe/layout.h"

namespace tempo::pe {

using idl::Kind;
using idl::Type;

namespace {

// x_op values in the IR world.
constexpr std::int64_t kOpEncode = 0;
constexpr std::int64_t kOpDecode = 1;

// ---- the shared runtime micro-layers (type-independent) ----------------

Function make_xdrmem_putlong() {
  // bool_t xdrmem_putlong(XDR *xdrs, long *lp)  — paper Fig. 3.
  Function fn;
  fn.name = "xdrmem_putlong";
  fn.params = {"xdrs", "lp"};
  fn.body = {
      s_field_set("xdrs", "x_handy",
                  e_bin(BinOp::kSub, e_field("xdrs", "x_handy"), e_const(4)),
                  "decrement space left in buffer"),
      s_if(e_bin(BinOp::kLt, e_field("xdrs", "x_handy"), e_const(0)),
           {s_return(e_const(0), "overflow")}, {}, "overflow check"),
      s_buf_store(e_field("xdrs", "x_private"), e_deref(e_var("lp")),
                  "htonl + copy to buffer"),
      s_field_set("xdrs", "x_private",
                  e_bin(BinOp::kAdd, e_field("xdrs", "x_private"), e_const(4)),
                  "advance buffer cursor"),
      s_return(e_const(1)),
  };
  return fn;
}

Function make_xdrmem_putlong_val() {
  // Scalar-operand variant used for header words and array counts
  // (the original passes &proc / &count; the value flavor is the same
  // store without the pointer indirection).
  Function fn;
  fn.name = "xdrmem_putlong_val";
  fn.params = {"xdrs", "v"};
  fn.body = {
      s_field_set("xdrs", "x_handy",
                  e_bin(BinOp::kSub, e_field("xdrs", "x_handy"), e_const(4))),
      s_if(e_bin(BinOp::kLt, e_field("xdrs", "x_handy"), e_const(0)),
           {s_return(e_const(0), "overflow")}, {}, "overflow check"),
      s_buf_store(e_field("xdrs", "x_private"), e_var("v"),
                  "htonl + copy to buffer"),
      s_field_set("xdrs", "x_private",
                  e_bin(BinOp::kAdd, e_field("xdrs", "x_private"), e_const(4))),
      s_return(e_const(1)),
  };
  return fn;
}

Function make_xdrmem_getlong() {
  Function fn;
  fn.name = "xdrmem_getlong";
  fn.params = {"xdrs", "lp"};
  fn.body = {
      s_field_set("xdrs", "x_handy",
                  e_bin(BinOp::kSub, e_field("xdrs", "x_handy"), e_const(4))),
      s_if(e_bin(BinOp::kLt, e_field("xdrs", "x_handy"), e_const(0)),
           {s_return(e_const(0), "underflow")}, {}, "overflow check"),
      s_store_ref(e_var("lp"), e_buf_load(e_field("xdrs", "x_private")),
                  "ntohl + copy from buffer"),
      s_field_set("xdrs", "x_private",
                  e_bin(BinOp::kAdd, e_field("xdrs", "x_private"), e_const(4))),
      s_return(e_const(1)),
  };
  return fn;
}

Function make_xdrmem_getlong_val() {
  // Returns the loaded word; records underflow in xdrs->x_err so the
  // value can be consumed directly by header-validation tests.
  Function fn;
  fn.name = "xdrmem_getlong_val";
  fn.params = {"xdrs"};
  fn.body = {
      s_field_set("xdrs", "x_handy",
                  e_bin(BinOp::kSub, e_field("xdrs", "x_handy"), e_const(4))),
      s_if(e_bin(BinOp::kLt, e_field("xdrs", "x_handy"), e_const(0)),
           {s_field_set("xdrs", "x_err", e_const(1), "flag underflow"),
            s_return(e_const(0))},
           {}, "overflow check"),
      s_assign("t", e_buf_load(e_field("xdrs", "x_private")),
               "ntohl + copy from buffer"),
      s_field_set("xdrs", "x_private",
                  e_bin(BinOp::kAdd, e_field("xdrs", "x_private"), e_const(4))),
      s_return(e_var("t")),
  };
  return fn;
}

Function make_xdr_long() {
  // bool_t xdr_long(XDR *xdrs, long *lp) — paper Fig. 2, verbatim shape.
  Function fn;
  fn.name = "xdr_long";
  fn.params = {"xdrs", "lp"};
  fn.body = {
      s_if(e_bin(BinOp::kEq, e_field("xdrs", "x_op"), e_const(kOpEncode)),
           {s_call("r", "xdrmem_putlong", {e_var("xdrs"), e_var("lp")}),
            s_return(e_var("r"))},
           {}, "if in encoding mode"),
      s_if(e_bin(BinOp::kEq, e_field("xdrs", "x_op"), e_const(kOpDecode)),
           {s_call("r", "xdrmem_getlong", {e_var("xdrs"), e_var("lp")}),
            s_return(e_var("r"))},
           {}, "if in decoding mode"),
      s_return(e_const(1), "XDR_FREE: nothing to do"),
  };
  return fn;
}

// xdr_int / xdr_u_int / xdr_enum / xdr_float: one more call layer over
// xdr_long (the "machine dependent switch on integer size" of Fig. 1).
Function make_forwarder(const char* name) {
  Function fn;
  fn.name = name;
  fn.params = {"xdrs", "lp"};
  fn.body = {
      s_call("r", "xdr_long", {e_var("xdrs"), e_var("lp")},
             "generic encoding or decoding"),
      s_return(e_var("r")),
  };
  return fn;
}

Function make_xdr_bool() {
  Function fn;
  fn.name = "xdr_bool";
  fn.params = {"xdrs", "lp"};
  fn.body = {
      s_if(e_bin(BinOp::kEq, e_field("xdrs", "x_op"), e_const(kOpEncode)),
           {s_call("r", "xdrmem_putlong", {e_var("xdrs"), e_var("lp")}),
            s_return(e_var("r"))},
           {}, "if in encoding mode"),
      s_if(e_bin(BinOp::kEq, e_field("xdrs", "x_op"), e_const(kOpDecode)),
           {s_call("t", "xdrmem_getlong_val", {e_var("xdrs")}),
            s_if(e_bin(BinOp::kGt, e_var("t"), e_const(1)),
                 {s_return(e_const(0), "not a canonical bool")}, {},
                 "RFC 4506 bool validation"),
            s_store_ref(e_var("lp"), e_var("t")),
            s_return(e_const(1))},
           {}, "if in decoding mode"),
      s_return(e_const(1)),
  };
  return fn;
}

Function make_xdr_hyper(const char* name) {
  // Two wire words, most-significant first; slots laid out hi, lo.
  Function fn;
  fn.name = name;
  fn.params = {"xdrs", "lp"};
  fn.body = {
      s_call("r", "xdr_long", {e_var("xdrs"), e_var("lp")}, "high word"),
      s_if(e_bin(BinOp::kEq, e_var("r"), e_const(0)),
           {s_return(e_const(0))}, {}, "propagate failure"),
      s_call("r", "xdr_long",
             {e_var("xdrs"), e_index(e_var("lp"), e_const(1))}, "low word"),
      s_return(e_var("r")),
  };
  return fn;
}

Function make_xdr_opaque() {
  // xdr_opaque(xdrs, lp, len, padded): fixed-length opaque with XDR pad.
  Function fn;
  fn.name = "xdr_opaque";
  fn.params = {"xdrs", "lp", "len", "padded"};
  fn.body = {
      s_if(e_bin(BinOp::kEq, e_field("xdrs", "x_op"), e_const(kOpEncode)),
           {s_field_set("xdrs", "x_handy",
                        e_bin(BinOp::kSub, e_field("xdrs", "x_handy"),
                              e_var("padded"))),
            s_if(e_bin(BinOp::kLt, e_field("xdrs", "x_handy"), e_const(0)),
                 {s_return(e_const(0))}, {}, "overflow check"),
            s_buf_store_bytes(e_field("xdrs", "x_private"), e_var("lp"),
                              e_var("len"), "bulk copy + zero pad"),
            s_field_set("xdrs", "x_private",
                        e_bin(BinOp::kAdd, e_field("xdrs", "x_private"),
                              e_var("padded"))),
            s_return(e_const(1))},
           {}, "if in encoding mode"),
      s_if(e_bin(BinOp::kEq, e_field("xdrs", "x_op"), e_const(kOpDecode)),
           {s_field_set("xdrs", "x_handy",
                        e_bin(BinOp::kSub, e_field("xdrs", "x_handy"),
                              e_var("padded"))),
            s_if(e_bin(BinOp::kLt, e_field("xdrs", "x_handy"), e_const(0)),
                 {s_return(e_const(0))}, {}, "overflow check"),
            s_buf_load_bytes(e_field("xdrs", "x_private"), e_var("lp"),
                             e_var("len"), "bulk copy from buffer"),
            s_field_set("xdrs", "x_private",
                        e_bin(BinOp::kAdd, e_field("xdrs", "x_private"),
                              e_var("padded"))),
            s_return(e_const(1))},
           {}, "if in decoding mode"),
      s_return(e_const(1)),
  };
  return fn;
}

// ---- per-interface stub generation (what rpcgen emits) -----------------

class StubBuilder {
 public:
  // Statements invoking a codec plus the count parameters it consumed
  // (which must be forwarded by every enclosing function).
  struct CodecCall {
    Block stmts;
    std::vector<std::string> counts;
  };

  StubBuilder(Program& program, std::string count_prefix)
      : program_(program), count_prefix_(std::move(count_prefix)) {}

  // Emits (if needed) the codec for `t` and returns the call invoking it
  // on reference expression `ref`, followed by the exit-status check.
  Result<CodecCall> emit_codec_call(const Type& t, ExprP ref) {
    switch (t.kind) {
      case Kind::kVoid:
        return CodecCall{};
      case Kind::kInt:
        return scalar_call("xdr_int", std::move(ref));
      case Kind::kEnum:
        return scalar_call("xdr_enum", std::move(ref));
      case Kind::kUInt:
        return scalar_call("xdr_u_int", std::move(ref));
      case Kind::kBool:
        return scalar_call("xdr_bool", std::move(ref));
      case Kind::kFloat:
        return scalar_call("xdr_float", std::move(ref));
      case Kind::kHyper:
        return scalar_call("xdr_hyper", std::move(ref));
      case Kind::kUHyper:
        return scalar_call("xdr_u_hyper", std::move(ref));
      case Kind::kDouble:
        return scalar_call("xdr_double", std::move(ref));
      case Kind::kOpaqueFixed: {
        CodecCall out;
        out.stmts.push_back(s_call(
            "r", "xdr_opaque",
            {e_var(kXdrsRecord), std::move(ref), e_const(t.bound),
             e_const(static_cast<std::int64_t>(xdr_pad4(t.bound)))},
            "fixed opaque"));
        out.stmts.push_back(propagate());
        return out;
      }
      case Kind::kStruct:
        return emit_struct_call(t, std::move(ref));
      case Kind::kArrayFixed:
        return emit_fixed_array_call(t, std::move(ref));
      case Kind::kArrayVar:
        return emit_var_array_call(t, std::move(ref));
      default:
        return Status(invalid_argument("type not plan-eligible: " +
                                       idl::type_to_string(t)));
    }
  }

  std::uint32_t counts_used() const { return next_count_; }

  std::vector<std::string> count_names() const {
    std::vector<std::string> out;
    for (std::uint32_t i = 0; i < next_count_; ++i) {
      out.push_back(count_prefix_ + std::to_string(i));
    }
    return out;
  }

 private:
  Result<CodecCall> scalar_call(const char* fn, ExprP ref) {
    CodecCall out;
    out.stmts.push_back(s_call("r", fn, {e_var(kXdrsRecord), std::move(ref)}));
    out.stmts.push_back(propagate());
    return out;
  }

  StmtP propagate() {
    // `if (!xdr_x(...)) return FALSE;` — paper Fig. 4.
    return s_if(e_bin(BinOp::kEq, e_var("r"), e_const(0)),
                {s_return(e_const(0), "propagate failure")}, {},
                "exit status check");
  }

  // Fixed slot width of a type that contains no variable arrays.
  static Result<std::int64_t> fixed_slots(const Type& t) {
    return type_slots(t, {});
  }

  Result<CodecCall> emit_struct_call(const Type& t, ExprP ref) {
    const std::string name = "xdr_" + (t.name.empty() ? "anon" : t.name) +
                             "_" + std::to_string(serial_++);
    Function fn;
    fn.name = name;
    fn.params = {kXdrsRecord, "objp"};

    std::vector<std::string> my_counts;
    // Slot offset of the current field: a constant plus count-scaled
    // terms for any preceding variable arrays.
    ExprP offset = e_const(0);
    std::int64_t const_off = 0;
    bool offset_is_const = true;

    for (const auto& f : t.fields) {
      ExprP field_ref =
          offset_is_const
              ? (const_off == 0 ? ExprP(e_var("objp"))
                                : e_index(e_var("objp"), e_const(const_off)))
              : e_index(e_var("objp"), offset);
      TEMPO_ASSIGN_OR_RETURN(call, emit_codec_call(*f.type, field_ref));
      for (auto& s : call.stmts) fn.body.push_back(std::move(s));
      for (const auto& c : call.counts) my_counts.push_back(c);

      // Advance the offset past this field.
      if (f.type->kind == Kind::kArrayVar) {
        TEMPO_ASSIGN_OR_RETURN(es, fixed_slots(*f.type->elem));
        ExprP grow =
            e_bin(BinOp::kMul, e_var(call.counts.back()), e_const(es));
        offset = offset_is_const
                     ? e_bin(BinOp::kAdd, e_const(const_off), grow)
                     : e_bin(BinOp::kAdd, offset, grow);
        offset_is_const = false;
      } else {
        TEMPO_ASSIGN_OR_RETURN(fs, fixed_slots(*f.type));
        const_off += fs;
        if (!offset_is_const) {
          offset = e_bin(BinOp::kAdd, offset, e_const(fs));
        }
      }
    }
    fn.body.push_back(s_return(e_const(1), "return success status"));
    for (const auto& c : my_counts) fn.params.push_back(c);
    program_.add(std::move(fn));

    CodecCall out;
    out.counts = my_counts;
    std::vector<ExprP> args = {e_var(kXdrsRecord), std::move(ref)};
    for (const auto& c : my_counts) args.push_back(e_var(c));
    out.stmts.push_back(s_call("r", name, std::move(args),
                               "struct " + t.name));
    out.stmts.push_back(propagate());
    return out;
  }

  Result<CodecCall> emit_fixed_array_call(const Type& t, ExprP ref) {
    auto cp = count_params(*t.elem);
    if (!cp.is_ok() || *cp != 0) {
      return Status(invalid_argument(
          "arrays of elements containing variable arrays are not "
          "plan-eligible"));
    }
    TEMPO_ASSIGN_OR_RETURN(es, fixed_slots(*t.elem));
    const std::string name = "xdr_vec_" + std::to_string(serial_++);
    Function fn;
    fn.name = name;
    fn.params = {kXdrsRecord, "arrp"};
    ExprP elem_ref =
        e_index(e_var("arrp"), e_bin(BinOp::kMul, e_var("i"), e_const(es)));
    TEMPO_ASSIGN_OR_RETURN(call, emit_codec_call(*t.elem, elem_ref));
    fn.body.push_back(s_for("i", e_const(0), e_const(t.bound),
                            std::move(call.stmts), "per-element loop"));
    fn.body.push_back(s_return(e_const(1)));
    program_.add(std::move(fn));

    CodecCall out;
    out.stmts.push_back(s_call("r", name, {e_var(kXdrsRecord), std::move(ref)},
                               "fixed array"));
    out.stmts.push_back(propagate());
    return out;
  }

  Result<CodecCall> emit_var_array_call(const Type& t, ExprP ref) {
    auto cp = count_params(*t.elem);
    if (!cp.is_ok() || *cp != 0) {
      return Status(invalid_argument(
          "arrays of elements containing variable arrays are not "
          "plan-eligible"));
    }
    TEMPO_ASSIGN_OR_RETURN(es, fixed_slots(*t.elem));
    const std::string cnt = count_prefix_ + std::to_string(next_count_++);

    const std::string name = "xdr_array_" + std::to_string(serial_++);
    Function fn;
    fn.name = name;
    fn.params = {kXdrsRecord, "arrp", "cnt"};

    // Bound check (static, folds away).
    fn.body.push_back(s_if(
        e_bin(BinOp::kGt, e_var("cnt"), e_const(t.bound)),
        {s_return(e_const(0), "count exceeds bound")}, {}, "bound check"));
    // Wire count: written on encode, verified on decode.
    fn.body.push_back(s_if(
        e_bin(BinOp::kEq, e_field(kXdrsRecord, "x_op"), e_const(kOpEncode)),
        {s_call("r", "xdrmem_putlong_val",
                {e_var(kXdrsRecord), e_var("cnt")}, "write element count"),
         s_if(e_bin(BinOp::kEq, e_var("r"), e_const(0)),
              {s_return(e_const(0))}, {}, "exit status check")},
        {s_call("t", "xdrmem_getlong_val", {e_var(kXdrsRecord)},
                "read element count"),
         s_if(e_bin(BinOp::kNe, e_var("t"), e_var("cnt")),
              {s_return(e_const(0), "unexpected element count")}, {},
              "count guard")},
        "dispatch on direction"));

    ExprP elem_ref =
        e_index(e_var("arrp"), e_bin(BinOp::kMul, e_var("i"), e_const(es)));
    TEMPO_ASSIGN_OR_RETURN(call, emit_codec_call(*t.elem, elem_ref));
    fn.body.push_back(s_for("i", e_const(0), e_var("cnt"),
                            std::move(call.stmts), "per-element loop"));
    fn.body.push_back(s_return(e_const(1)));
    program_.add(std::move(fn));

    CodecCall out;
    out.counts = {cnt};
    out.stmts.push_back(s_call("r", name,
                               {e_var(kXdrsRecord), std::move(ref), e_var(cnt)},
                               "variable array"));
    out.stmts.push_back(propagate());
    return out;
  }

  Program& program_;
  std::string count_prefix_;
  std::uint32_t next_count_ = 0;
  int serial_ = 0;
};

// Wire size of `t` as an expression over count variables.
Result<ExprP> wire_size_expr(const Type& t, const std::string& count_prefix,
                             std::uint32_t& next_count) {
  switch (t.kind) {
    case Kind::kVoid:
      return e_const(0);
    case Kind::kInt:
    case Kind::kUInt:
    case Kind::kBool:
    case Kind::kFloat:
    case Kind::kEnum:
      return e_const(4);
    case Kind::kHyper:
    case Kind::kUHyper:
    case Kind::kDouble:
      return e_const(8);
    case Kind::kOpaqueFixed:
      return e_const(static_cast<std::int64_t>(xdr_pad4(t.bound)));
    case Kind::kStruct: {
      ExprP sum = e_const(0);
      for (const auto& f : t.fields) {
        TEMPO_ASSIGN_OR_RETURN(fs,
                               wire_size_expr(*f.type, count_prefix, next_count));
        sum = e_bin(BinOp::kAdd, sum, fs);
      }
      return sum;
    }
    case Kind::kArrayFixed: {
      TEMPO_ASSIGN_OR_RETURN(es,
                             wire_size_expr(*t.elem, count_prefix, next_count));
      return e_bin(BinOp::kMul, e_const(t.bound), es);
    }
    case Kind::kArrayVar: {
      const std::string cnt = count_prefix + std::to_string(next_count++);
      TEMPO_ASSIGN_OR_RETURN(es,
                             wire_size_expr(*t.elem, count_prefix, next_count));
      return e_bin(BinOp::kAdd, e_const(4),
                   e_bin(BinOp::kMul, e_var(cnt), es));
    }
    default:
      return Status(invalid_argument("type not plan-eligible: " +
                                     idl::type_to_string(t)));
  }
}

Block put_const_header_word(std::int64_t value, const std::string& what) {
  return {
      s_call("r", "xdrmem_putlong_val",
             {e_var(kXdrsRecord), e_const(value)}, what),
      s_if(e_bin(BinOp::kEq, e_var("r"), e_const(0)),
           {s_return(e_const(0))}, {}, "exit status check"),
  };
}

Block expect_header_word(std::int64_t value, const std::string& what,
                         std::int64_t fail_code = kRcFail) {
  return {
      s_call("t", "xdrmem_getlong_val", {e_var(kXdrsRecord)}, what),
      s_if(e_bin(BinOp::kNe, e_var("t"), e_const(value)),
           {s_return(e_const(fail_code), "unexpected " + what)}, {},
           "validate " + what),
  };
}

void append(Block& dst, Block src) {
  for (auto& s : src) dst.push_back(std::move(s));
}

}  // namespace

Result<InterfaceCorpus> build_interface_corpus(const idl::ProcDef& proc,
                                               std::uint32_t prog_num,
                                               std::uint32_t vers_num) {
  if (!plan_eligible(*proc.arg_type) || !plan_eligible(*proc.res_type)) {
    return Status(invalid_argument(
        "interface uses types outside the plan-eligible subset"));
  }

  InterfaceCorpus out;
  out.prog_num = prog_num;
  out.vers_num = vers_num;
  out.proc_num = proc.number;
  out.arg_type = proc.arg_type;
  out.res_type = proc.res_type;

  Program& p = out.program;
  p.add(make_xdrmem_putlong());
  p.add(make_xdrmem_putlong_val());
  p.add(make_xdrmem_getlong());
  p.add(make_xdrmem_getlong_val());
  p.add(make_xdr_long());
  p.add(make_forwarder("xdr_int"));
  p.add(make_forwarder("xdr_u_int"));
  p.add(make_forwarder("xdr_enum"));
  p.add(make_forwarder("xdr_float"));
  p.add(make_xdr_bool());
  p.add(make_xdr_hyper("xdr_hyper"));
  p.add(make_xdr_hyper("xdr_u_hyper"));
  p.add(make_xdr_hyper("xdr_double"));
  p.add(make_xdr_opaque());

  // ---- argument codec + client encode driver ---------------------------
  StubBuilder arg_stubs(p, "cnt");
  Function encode_call;
  encode_call.name = "encode_call";
  encode_call.params = {kXdrsRecord, kXidVar, "argsp"};

  // clntudp_call: the call-message header, word by word (Fig. 1 trace).
  append(encode_call.body,
         {s_call("r", "xdrmem_putlong_val",
                 {e_var(kXdrsRecord), e_var(kXidVar)}, "write XID"),
          s_if(e_bin(BinOp::kEq, e_var("r"), e_const(0)),
               {s_return(e_const(0))}, {}, "exit status check")});
  append(encode_call.body, put_const_header_word(0, "msg type CALL"));
  append(encode_call.body, put_const_header_word(2, "RPC version"));
  append(encode_call.body, put_const_header_word(prog_num, "program"));
  append(encode_call.body, put_const_header_word(vers_num, "version"));
  append(encode_call.body,
         put_const_header_word(proc.number, "procedure identifier"));
  append(encode_call.body, put_const_header_word(0, "cred flavor AUTH_NONE"));
  append(encode_call.body, put_const_header_word(0, "cred length"));
  append(encode_call.body, put_const_header_word(0, "verf flavor AUTH_NONE"));
  append(encode_call.body, put_const_header_word(0, "verf length"));

  if (proc.arg_type->kind != Kind::kVoid) {
    TEMPO_ASSIGN_OR_RETURN(calls,
                           arg_stubs.emit_codec_call(*proc.arg_type,
                                                     e_var("argsp")));
    append(encode_call.body, std::move(calls.stmts));
  }
  encode_call.body.push_back(s_return(e_const(1)));
  out.arg_counts = arg_stubs.counts_used();
  for (const auto& c : arg_stubs.count_names()) {
    encode_call.params.push_back(c);
  }
  p.add(std::move(encode_call));
  out.encode_call = "encode_call";

  // ---- server-side argument decode driver ------------------------------
  {
    StubBuilder srv_stubs(p, "cnt");
    Function decode_args;
    decode_args.name = "decode_args";
    decode_args.params = {kXdrsRecord, "argsp", kInlenVar};
    std::uint32_t nc = 0;
    TEMPO_ASSIGN_OR_RETURN(asize, wire_size_expr(*proc.arg_type, "cnt", nc));
    // §6.2 expected-inlen guard: on the fast path, inlen becomes static.
    decode_args.body.push_back(
        s_if(e_bin(BinOp::kNe, e_var(kInlenVar), asize),
             {s_return(e_const(kRcLenMismatch), "unexpected payload size")},
             {}, "expected_inlen guard"));
    decode_args.body.push_back(
        s_field_set(kXdrsRecord, "x_handy", e_var(kInlenVar),
                    "arm decode accounting"));
    if (proc.arg_type->kind != Kind::kVoid) {
      TEMPO_ASSIGN_OR_RETURN(calls,
                             srv_stubs.emit_codec_call(*proc.arg_type,
                                                       e_var("argsp")));
      append(decode_args.body, std::move(calls.stmts));
    }
    decode_args.body.push_back(
        s_if(e_bin(BinOp::kNe, e_field(kXdrsRecord, "x_err"), e_const(0)),
             {s_return(e_const(0))}, {}, "propagate buffer underflow"));
    decode_args.body.push_back(s_return(e_const(1)));
    for (const auto& c : srv_stubs.count_names()) {
      decode_args.params.push_back(c);
    }
    p.add(std::move(decode_args));
    out.decode_args = "decode_args";
  }

  // ---- result codec + server encode driver ------------------------------
  {
    StubBuilder res_stubs(p, "rcnt");
    Function encode_results;
    encode_results.name = "encode_results";
    encode_results.params = {kXdrsRecord, "resp"};
    if (proc.res_type->kind != Kind::kVoid) {
      TEMPO_ASSIGN_OR_RETURN(calls,
                             res_stubs.emit_codec_call(*proc.res_type,
                                                       e_var("resp")));
      append(encode_results.body, std::move(calls.stmts));
    }
    encode_results.body.push_back(s_return(e_const(1)));
    out.res_counts = res_stubs.counts_used();
    for (const auto& c : res_stubs.count_names()) {
      encode_results.params.push_back(c);
    }
    p.add(std::move(encode_results));
    out.encode_results = "encode_results";
  }

  // ---- client reply decode driver ---------------------------------------
  {
    StubBuilder res_stubs(p, "rcnt");
    Function decode_reply;
    decode_reply.name = "decode_reply";
    decode_reply.params = {kXdrsRecord, kXidVar, "resp", kInlenVar};
    std::uint32_t nc = 0;
    TEMPO_ASSIGN_OR_RETURN(rsize, wire_size_expr(*proc.res_type, "rcnt", nc));
    decode_reply.body.push_back(s_if(
        e_bin(BinOp::kNe, e_var(kInlenVar),
              e_bin(BinOp::kAdd, e_const(kReplyHeaderBytes), rsize)),
        {s_return(e_const(kRcLenMismatch), "unexpected reply size")}, {},
        "expected_inlen guard (paper §6.2)"));
    decode_reply.body.push_back(
        s_field_set(kXdrsRecord, "x_handy", e_var(kInlenVar),
                    "arm decode accounting"));
    // Reply header validation.
    append(decode_reply.body,
           {s_call("t", "xdrmem_getlong_val", {e_var(kXdrsRecord)},
                   "read XID"),
            s_if(e_bin(BinOp::kNe, e_var("t"), e_var(kXidVar)),
                 {s_return(e_const(kRcXidMismatch), "stale reply")}, {},
                 "XID match")});
    append(decode_reply.body, expect_header_word(1, "msg type REPLY"));
    append(decode_reply.body, expect_header_word(0, "reply stat ACCEPTED"));
    append(decode_reply.body, expect_header_word(0, "verf flavor AUTH_NONE"));
    append(decode_reply.body, expect_header_word(0, "verf length"));
    append(decode_reply.body, expect_header_word(0, "accept stat SUCCESS"));
    if (proc.res_type->kind != Kind::kVoid) {
      TEMPO_ASSIGN_OR_RETURN(calls,
                             res_stubs.emit_codec_call(*proc.res_type,
                                                       e_var("resp")));
      append(decode_reply.body, std::move(calls.stmts));
    }
    decode_reply.body.push_back(
        s_if(e_bin(BinOp::kNe, e_field(kXdrsRecord, "x_err"), e_const(0)),
             {s_return(e_const(0))}, {}, "propagate buffer underflow"));
    decode_reply.body.push_back(s_return(e_const(1)));
    for (const auto& c : res_stubs.count_names()) {
      decode_reply.params.push_back(c);
    }
    p.add(std::move(decode_reply));
    out.decode_reply = "decode_reply";
  }

  return out;
}

namespace {

std::size_t block_weight(const Block& b);

std::size_t stmt_weight(const Stmt& s) {
  switch (s.kind) {
    case StmtKind::kIf:
      return 8 + block_weight(s.body) + block_weight(s.else_body);
    case StmtKind::kFor:
      return 12 + block_weight(s.body);
    case StmtKind::kCall:
      return 16;  // arg setup + call + return
    default:
      return 8;
  }
}

std::size_t block_weight(const Block& b) {
  std::size_t total = 0;
  for (const auto& s : b) total += stmt_weight(*s);
  return total;
}

}  // namespace

std::size_t ir_code_size(const Program& program) {
  std::size_t total = 0;
  for (const auto& [name, fn] : program.functions) {
    total += 16 + block_weight(fn.body);  // prologue/epilogue + body
  }
  return total;
}

}  // namespace tempo::pe
