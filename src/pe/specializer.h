// Online partial evaluator: generic IR + static inputs -> residual plan.
//
// Mirrors what Tempo does to the Sun RPC (paper §4), with the same four
// systems-code refinements:
//  * partially-static structures — the xdrs record is evaluated
//    field-wise: x_op / x_handy / x_private are static while the buffer
//    contents stay dynamic,
//  * flow sensitivity — binding information lives in an environment that
//    evolves per program point (e.g. `inlen` becomes static *after* the
//    expected-length guard, the §6.2 rewrite),
//  * context sensitivity — calls are inlined and specialized per call
//    site, so xdrmem_putlong specializes one way for the static
//    procedure identifier and another for dynamic argument words,
//  * static returns — a call whose store was residualized still returns
//    the static TRUE, so every `if (!r) return FALSE` exit-status check
//    folds away (§3.3).
//
// Loop handling implements Table 4's policy: full unrolling by default,
// or block unrolling with `unroll_factor` k — the specializer emits one
// concrete block, verifies against a second concrete block that the
// residual code is affine in the iteration number, folds the remaining
// blocks into a kLoop instruction, and unrolls any remainder.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "pe/interp.h"
#include "pe/ir.h"
#include "pe/plan.h"

namespace tempo::pe {

struct SpecOptions {
  // 0 = unroll completely; k >= 1 = keep loops, unrolled k-wide
  // (the paper's "250-unrolled" configuration is unroll_factor = 250).
  std::uint32_t unroll_factor = 0;
};

struct SpecInput {
  std::map<std::string, std::int64_t> static_scalars;  // pinned counts, ...
  std::map<std::string, std::int64_t> ref_params;      // argsp/resp -> slot
  std::vector<std::string> dynamic_scalars;            // xid, inlen
  XdrsInit xdrs;                                       // static handle state
  SpecOptions options;
};

// Specializes `entry` of `program` under the static inputs, producing a
// residual plan.  Fails (with a message naming the construct) when the
// residual code falls outside the plan language — the caller then keeps
// the generic path (guarded specialization).
Result<Plan> specialize(const Program& program, const std::string& entry,
                        const SpecInput& input);

}  // namespace tempo::pe
