// Byte-buffer vocabulary types and debugging helpers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace tempo {

using Bytes = std::vector<std::uint8_t>;
using ByteSpan = std::span<const std::uint8_t>;
using MutableByteSpan = std::span<std::uint8_t>;

// Render a buffer as "ab cd ef ..." for diagnostics and golden tests.
std::string hex_dump(ByteSpan bytes, std::size_t max_bytes = 256);

// XDR rounds every item up to a 4-byte boundary (RFC 4506 §3).
constexpr std::size_t xdr_pad4(std::size_t n) { return (n + 3u) & ~std::size_t{3}; }

}  // namespace tempo
