#include "xdr/xdrrec.h"

#include <cstring>

#include "common/endian.h"

namespace tempo::xdr {

XdrRec::XdrRec(XdrOp op, RecWriter writer, RecReader reader,
               std::size_t frag_size)
    : XdrStream(op), writer_(std::move(writer)), reader_(std::move(reader)) {
  send_buf_.resize(frag_size < kXdrUnit ? kXdrUnit : frag_size);
}

bool XdrRec::flush_fragment(bool last) {
  std::uint8_t header[kXdrUnit];
  std::uint32_t word = static_cast<std::uint32_t>(send_used_);
  if (last) word |= kLastFragFlag;
  store_be32(header, word);
  if (!writer_ || !writer_(ByteSpan(header, kXdrUnit))) return false;
  if (send_used_ > 0 &&
      !writer_(ByteSpan(send_buf_.data(), send_used_))) {
    return false;
  }
  send_used_ = 0;
  return true;
}

bool XdrRec::end_of_record(bool last) { return flush_fragment(last); }

bool XdrRec::putbytes(ByteSpan data) {
  while (!data.empty()) {
    const std::size_t room = send_buf_.size() - send_used_;
    if (room == 0) {
      if (!flush_fragment(/*last=*/false)) return false;
      continue;
    }
    const std::size_t n = data.size() < room ? data.size() : room;
    std::memcpy(send_buf_.data() + send_used_, data.data(), n);
    send_used_ += n;
    data = data.subspan(n);
  }
  return true;
}

bool XdrRec::putlong(std::int32_t v) {
  std::uint8_t word[kXdrUnit];
  store_be32(word, static_cast<std::uint32_t>(v));
  return putbytes(ByteSpan(word, kXdrUnit));
}

bool XdrRec::refill() {
  while (frag_remaining_ == 0) {
    if (last_frag_seen_ && !frag_header_pending_) return false;  // record exhausted
    std::uint8_t header[kXdrUnit];
    if (!read_exact(MutableByteSpan(header, kXdrUnit))) return false;
    const std::uint32_t word = load_be32(header);
    last_frag_seen_ = (word & kLastFragFlag) != 0;
    frag_remaining_ = word & ~kLastFragFlag;
    frag_header_pending_ = false;
    if (frag_remaining_ == 0 && last_frag_seen_) return false;  // empty record tail
  }
  return true;
}

bool XdrRec::read_exact(MutableByteSpan out) {
  std::size_t got = 0;
  while (got < out.size()) {
    if (!reader_) return false;
    const std::size_t n = reader_(out.subspan(got));
    if (n == 0) return false;
    got += n;
  }
  return true;
}

bool XdrRec::getbytes(MutableByteSpan out) {
  while (!out.empty()) {
    if (!refill()) return false;
    const std::size_t n =
        out.size() < frag_remaining_ ? out.size() : frag_remaining_;
    if (!read_exact(out.first(n))) return false;
    frag_remaining_ -= static_cast<std::uint32_t>(n);
    consumed_ += n;
    out = out.subspan(n);
  }
  return true;
}

bool XdrRec::getlong(std::int32_t* v) {
  std::uint8_t word[kXdrUnit];
  if (!getbytes(MutableByteSpan(word, kXdrUnit))) return false;
  *v = static_cast<std::int32_t>(load_be32(word));
  return true;
}

bool XdrRec::skip_record() {
  // Drain the remainder of the current record, fragment by fragment.
  std::uint8_t sink[256];
  for (;;) {
    while (frag_remaining_ > 0) {
      const std::size_t n = frag_remaining_ < sizeof(sink)
                                ? frag_remaining_
                                : sizeof(sink);
      if (!read_exact(MutableByteSpan(sink, n))) return false;
      frag_remaining_ -= static_cast<std::uint32_t>(n);
    }
    if (last_frag_seen_) break;
    std::uint8_t header[kXdrUnit];
    if (!read_exact(MutableByteSpan(header, kXdrUnit))) return false;
    const std::uint32_t word = load_be32(header);
    last_frag_seen_ = (word & kLastFragFlag) != 0;
    frag_remaining_ = word & ~kLastFragFlag;
  }
  // Arm for the next record.
  last_frag_seen_ = false;
  frag_remaining_ = 0;
  frag_header_pending_ = true;
  return true;
}

std::size_t XdrRec::getpos() const {
  return op() == XdrOp::kEncode ? send_used_ : consumed_;
}

bool XdrRec::setpos(std::size_t) { return false; }

std::uint8_t* XdrRec::inline_bytes(std::size_t) { return nullptr; }

}  // namespace tempo::xdr
