#include "pe/ir.h"

namespace tempo::pe {

std::string binop_name(BinOp op) {
  switch (op) {
    case BinOp::kAdd: return "+";
    case BinOp::kSub: return "-";
    case BinOp::kMul: return "*";
    case BinOp::kLt: return "<";
    case BinOp::kLe: return "<=";
    case BinOp::kGt: return ">";
    case BinOp::kGe: return ">=";
    case BinOp::kEq: return "==";
    case BinOp::kNe: return "!=";
    case BinOp::kAnd: return "&&";
    case BinOp::kOr: return "||";
  }
  return "?";
}

ExprP e_const(std::int64_t v) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kConst;
  e->imm = v;
  return e;
}

ExprP e_var(std::string name) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kVar;
  e->var = std::move(name);
  return e;
}

ExprP e_field(std::string record, std::string field) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kField;
  e->var = std::move(record);
  e->field = std::move(field);
  return e;
}

ExprP e_bin(BinOp op, ExprP a, ExprP b) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kBin;
  e->op = op;
  e->a = std::move(a);
  e->b = std::move(b);
  return e;
}

ExprP e_deref(ExprP ref) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kDeref;
  e->a = std::move(ref);
  return e;
}

ExprP e_index(ExprP ref, ExprP idx) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kIndex;
  e->a = std::move(ref);
  e->b = std::move(idx);
  return e;
}

ExprP e_field_ref(ExprP ref, std::int64_t slots) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kFieldRef;
  e->a = std::move(ref);
  e->imm = slots;
  return e;
}

ExprP e_buf_load(ExprP offset) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kBufLoad;
  e->a = std::move(offset);
  return e;
}

namespace {
std::shared_ptr<Stmt> make_stmt(StmtKind k, std::string note) {
  auto s = std::make_shared<Stmt>();
  s->kind = k;
  s->note = std::move(note);
  return s;
}
}  // namespace

StmtP s_assign(std::string var, ExprP value, std::string note) {
  auto s = make_stmt(StmtKind::kAssign, std::move(note));
  s->var = std::move(var);
  s->e0 = std::move(value);
  return s;
}

StmtP s_field_set(std::string record, std::string field, ExprP value,
                  std::string note) {
  auto s = make_stmt(StmtKind::kFieldSet, std::move(note));
  s->var = std::move(record);
  s->field = std::move(field);
  s->e0 = std::move(value);
  return s;
}

StmtP s_store_ref(ExprP ref, ExprP value, std::string note) {
  auto s = make_stmt(StmtKind::kStoreRef, std::move(note));
  s->e0 = std::move(ref);
  s->e1 = std::move(value);
  return s;
}

StmtP s_buf_store(ExprP offset, ExprP value, std::string note) {
  auto s = make_stmt(StmtKind::kBufStore, std::move(note));
  s->e0 = std::move(offset);
  s->e1 = std::move(value);
  return s;
}

StmtP s_buf_store_bytes(ExprP offset, ExprP ref, ExprP len,
                        std::string note) {
  auto s = make_stmt(StmtKind::kBufStoreBytes, std::move(note));
  s->e0 = std::move(offset);
  s->e1 = std::move(ref);
  s->e2 = std::move(len);
  return s;
}

StmtP s_buf_load_bytes(ExprP offset, ExprP ref, ExprP len, std::string note) {
  auto s = make_stmt(StmtKind::kBufLoadBytes, std::move(note));
  s->e0 = std::move(offset);
  s->e1 = std::move(ref);
  s->e2 = std::move(len);
  return s;
}

StmtP s_if(ExprP cond, Block then_body, Block else_body, std::string note) {
  auto s = make_stmt(StmtKind::kIf, std::move(note));
  s->e0 = std::move(cond);
  s->body = std::move(then_body);
  s->else_body = std::move(else_body);
  return s;
}

StmtP s_for(std::string var, ExprP from, ExprP to, Block body,
            std::string note) {
  auto s = make_stmt(StmtKind::kFor, std::move(note));
  s->var = std::move(var);
  s->e0 = std::move(from);
  s->e1 = std::move(to);
  s->body = std::move(body);
  return s;
}

StmtP s_call(std::string dst, std::string callee, std::vector<ExprP> args,
             std::string note) {
  auto s = make_stmt(StmtKind::kCall, std::move(note));
  s->var = std::move(dst);
  s->callee = std::move(callee);
  s->args = std::move(args);
  return s;
}

StmtP s_return(ExprP value, std::string note) {
  auto s = make_stmt(StmtKind::kReturn, std::move(note));
  s->e0 = std::move(value);
  return s;
}

std::string expr_to_string(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kConst:
      return std::to_string(e.imm);
    case ExprKind::kVar:
      return e.var;
    case ExprKind::kField:
      return e.var + "->" + e.field;
    case ExprKind::kBin:
      return "(" + expr_to_string(*e.a) + " " + binop_name(e.op) + " " +
             expr_to_string(*e.b) + ")";
    case ExprKind::kDeref:
      return "*" + expr_to_string(*e.a);
    case ExprKind::kIndex:
      return "&" + expr_to_string(*e.a) + "[" + expr_to_string(*e.b) + "]";
    case ExprKind::kFieldRef:
      return "&" + expr_to_string(*e.a) + ".slot" + std::to_string(e.imm);
    case ExprKind::kBufLoad:
      return "load_be32(in + " + expr_to_string(*e.a) + ")";
  }
  return "?";
}

namespace {
std::string pad(int indent) { return std::string(static_cast<std::size_t>(indent) * 2, ' '); }

std::string block_to_string(const Block& b, int indent) {
  std::string out;
  for (const auto& s : b) out += stmt_to_string(*s, indent);
  return out;
}
}  // namespace

std::string stmt_to_string(const Stmt& s, int indent) {
  std::string line = pad(indent);
  switch (s.kind) {
    case StmtKind::kAssign:
      line += s.var + " = " + expr_to_string(*s.e0) + ";";
      break;
    case StmtKind::kFieldSet:
      line += s.var + "->" + s.field + " = " + expr_to_string(*s.e0) + ";";
      break;
    case StmtKind::kStoreRef:
      line += "*" + expr_to_string(*s.e0) + " = " + expr_to_string(*s.e1) + ";";
      break;
    case StmtKind::kBufStore:
      line += "out[" + expr_to_string(*s.e0) +
              "] = be32(" + expr_to_string(*s.e1) + ");";
      break;
    case StmtKind::kBufStoreBytes:
      line += "memcpy(out + " + expr_to_string(*s.e0) + ", " +
              expr_to_string(*s.e1) + ", " + expr_to_string(*s.e2) + ");";
      break;
    case StmtKind::kBufLoadBytes:
      line += "memcpy(" + expr_to_string(*s.e1) + ", in + " +
              expr_to_string(*s.e0) + ", " + expr_to_string(*s.e2) + ");";
      break;
    case StmtKind::kIf: {
      line += "if (" + expr_to_string(*s.e0) + ") {";
      if (!s.note.empty()) line += "  // " + s.note;
      line += "\n" + block_to_string(s.body, indent + 1) + pad(indent) + "}";
      if (!s.else_body.empty()) {
        line += " else {\n" + block_to_string(s.else_body, indent + 1) +
                pad(indent) + "}";
      }
      return line + "\n";
    }
    case StmtKind::kFor: {
      line += "for (" + s.var + " = " + expr_to_string(*s.e0) + "; " + s.var +
              " < " + expr_to_string(*s.e1) + "; ++" + s.var + ") {";
      if (!s.note.empty()) line += "  // " + s.note;
      return line + "\n" + block_to_string(s.body, indent + 1) + pad(indent) +
             "}\n";
    }
    case StmtKind::kCall: {
      if (!s.var.empty()) line += s.var + " = ";
      line += s.callee + "(";
      for (std::size_t i = 0; i < s.args.size(); ++i) {
        if (i) line += ", ";
        line += expr_to_string(*s.args[i]);
      }
      line += ");";
      break;
    }
    case StmtKind::kReturn:
      line += s.e0 ? "return " + expr_to_string(*s.e0) + ";" : "return;";
      break;
  }
  if (!s.note.empty()) line += "  // " + s.note;
  return line + "\n";
}

std::string function_to_string(const Function& fn) {
  std::string out = fn.name + "(";
  for (std::size_t i = 0; i < fn.params.size(); ++i) {
    if (i) out += ", ";
    out += fn.params[i];
  }
  out += ") {\n";
  for (const auto& s : fn.body) out += stmt_to_string(*s, 1);
  return out + "}\n";
}

}  // namespace tempo::pe
