// IDL tests: .x parser coverage (the rpcgen front end), type model
// facts, and the table-driven marshaller (generic interpreter) property
// tests against random values.
#include <gtest/gtest.h>

#include "idl/interp.h"
#include "idl/parser.h"
#include "idl/value.h"
#include "xdr/primitives.h"
#include "xdr/xdrmem.h"

namespace tempo::idl {
namespace {

using xdr::XdrMem;
using xdr::XdrOp;

constexpr const char* kRminX = R"(
/* The paper's running example. */
struct pair {
    int int1;
    int int2;
};

program RMIN_PROG {
    version RMIN_VERS {
        int RMIN(pair) = 1;
    } = 1;
} = 0x20000099;
)";

TEST(Parser, RminInterface) {
  auto mod = parse_xdr_source(kRminX);
  ASSERT_TRUE(mod.is_ok()) << mod.status().to_string();
  ASSERT_TRUE(mod->types.count("pair"));
  const Type& pair = *mod->types.at("pair");
  EXPECT_EQ(pair.kind, Kind::kStruct);
  ASSERT_EQ(pair.fields.size(), 2u);
  EXPECT_EQ(pair.fields[0].name, "int1");
  EXPECT_EQ(pair.fields[1].type->kind, Kind::kInt);

  const ProgramDef* prog = mod->find_program("RMIN_PROG");
  ASSERT_NE(prog, nullptr);
  EXPECT_EQ(prog->number, 0x20000099u);
  const VersionDef* vers = prog->find_version(1);
  ASSERT_NE(vers, nullptr);
  const ProcDef* proc = vers->find_proc(1);
  ASSERT_NE(proc, nullptr);
  EXPECT_EQ(proc->name, "RMIN");
  EXPECT_EQ(proc->arg_type->kind, Kind::kStruct);
  EXPECT_EQ(proc->res_type->kind, Kind::kInt);
}

TEST(Parser, FullGrammarTour) {
  constexpr const char* kSrc = R"(
const MAX_ITEMS = 32;
const MAGIC = 0xFF;

enum color { RED = 1, GREEN, BLUE = 10 };

typedef int row<MAX_ITEMS>;
typedef opaque digest[16];
typedef unsigned hyper big_t;

struct entry {
    string name<64>;
    color tint;
    row values;
    digest sum;
    big_t serial;
    entry *next;
    bool flags[4];
    opaque blob<128>;
    float ratio;
    double precise;
};

union lookup_result switch (int status) {
case 0:
    entry match;
case 1:
    void;
default:
    string error<255>;
};

program DIR_PROG {
    version DIR_V1 {
        lookup_result LOOKUP(entry) = 1;
        void PING(void) = 2;
    } = 1;
    version DIR_V2 {
        lookup_result LOOKUP2(entry) = 1;
    } = 2;
} = 0x30303030;
)";
  auto mod = parse_xdr_source(kSrc);
  ASSERT_TRUE(mod.is_ok()) << mod.status().to_string();

  EXPECT_EQ(mod->consts.at("MAX_ITEMS"), 32);
  EXPECT_EQ(mod->consts.at("MAGIC"), 0xFF);
  EXPECT_EQ(mod->consts.at("GREEN"), 2);   // auto-increment
  EXPECT_EQ(mod->consts.at("BLUE"), 10);

  const Type& row = *mod->types.at("row");
  EXPECT_EQ(row.kind, Kind::kArrayVar);
  EXPECT_EQ(row.bound, 32u);
  EXPECT_EQ(mod->types.at("digest")->kind, Kind::kOpaqueFixed);
  EXPECT_EQ(mod->types.at("big_t")->kind, Kind::kUHyper);

  const Type& entry = *mod->types.at("entry");
  ASSERT_EQ(entry.fields.size(), 10u);
  EXPECT_EQ(entry.fields[0].type->kind, Kind::kString);
  EXPECT_EQ(entry.fields[1].type->kind, Kind::kEnum);
  EXPECT_EQ(entry.fields[5].type->kind, Kind::kOptional);  // entry* next
  EXPECT_EQ(entry.fields[6].type->kind, Kind::kArrayFixed);
  EXPECT_EQ(entry.fields[7].type->kind, Kind::kOpaqueVar);

  const Type& uni = *mod->types.at("lookup_result");
  EXPECT_EQ(uni.kind, Kind::kUnion);
  ASSERT_EQ(uni.arms.size(), 2u);
  EXPECT_EQ(uni.arms[1].field.type->kind, Kind::kVoid);
  ASSERT_TRUE(uni.default_arm.has_value());
  EXPECT_EQ(uni.default_arm->type->kind, Kind::kString);

  ASSERT_EQ(mod->programs.size(), 1u);
  EXPECT_EQ(mod->programs[0].versions.size(), 2u);
  EXPECT_EQ(mod->programs[0].versions[0].procs[1].name, "PING");
  EXPECT_EQ(mod->programs[0].versions[0].procs[1].arg_type->kind,
            Kind::kVoid);
}

TEST(Parser, ReportsErrorsWithPosition) {
  auto r1 = parse_xdr_source("struct broken {");
  EXPECT_FALSE(r1.is_ok());
  auto r2 = parse_xdr_source("const X = ;");
  EXPECT_FALSE(r2.is_ok());
  EXPECT_NE(r2.status().message().find("1:"), std::string::npos);
  auto r3 = parse_xdr_source("typedef unknown_t foo;");
  EXPECT_FALSE(r3.is_ok());
  auto r4 = parse_xdr_source("union u switch (float f) { case 0: int x; };");
  EXPECT_FALSE(r4.is_ok());  // float discriminant
  auto r5 = parse_xdr_source("const A = 1; const B = A; struct s { int x[B]; };");
  EXPECT_TRUE(r5.is_ok()) << r5.status().to_string();
}

TEST(Parser, CommentsAndPassthrough) {
  constexpr const char* kSrc = R"(
// line comment
/* block
   comment */
%#include <something.h>
const X = 3;
)";
  auto mod = parse_xdr_source(kSrc);
  ASSERT_TRUE(mod.is_ok()) << mod.status().to_string();
  EXPECT_EQ(mod->consts.at("X"), 3);
}

TEST(Types, StaticWireSize) {
  EXPECT_EQ(*static_wire_size(*t_int()), 4u);
  EXPECT_EQ(*static_wire_size(*t_double()), 8u);
  EXPECT_EQ(*static_wire_size(*t_opaque_fixed(5)), 8u);  // padded
  auto s = t_struct("s", {{"a", t_int()}, {"b", t_hyper()}});
  EXPECT_EQ(*static_wire_size(*s), 12u);
  EXPECT_EQ(*static_wire_size(*t_array_fixed(t_int(), 10)), 40u);
  EXPECT_FALSE(static_wire_size(*t_string(10)).has_value());
  EXPECT_FALSE(static_wire_size(*t_array_var(t_int(), 10)).has_value());
  EXPECT_FALSE(
      static_wire_size(*t_struct("t", {{"v", t_array_var(t_int(), 4)}}))
          .has_value());
}

// Property: random values of random-ish types round-trip through the
// table-driven marshaller, and the encoded size equals wire_size().
class InterpRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TypePtr random_type(Rng& rng, int depth) {
  if (depth > 2) return t_int();
  switch (rng.next_below(10)) {
    case 0: return t_int();
    case 1: return t_uint();
    case 2: return t_hyper();
    case 3: return t_double();
    case 4: return t_string(24);
    case 5: return t_opaque_fixed(1 + static_cast<std::uint32_t>(
                                          rng.next_below(9)));
    case 6: return t_array_var(random_type(rng, depth + 1), 8);
    case 7:
      return t_struct("s", {{"a", random_type(rng, depth + 1)},
                            {"b", random_type(rng, depth + 1)}});
    case 8: return t_optional(random_type(rng, depth + 1));
    default: {
      std::vector<UnionArm> arms;
      arms.push_back(UnionArm{0, {"x", random_type(rng, depth + 1)}});
      arms.push_back(UnionArm{1, {"", t_void()}});
      return t_union("u", std::move(arms),
                     Field{"d", random_type(rng, depth + 1)});
    }
  }
}

TEST_P(InterpRoundTrip, EncodeDecodeEquals) {
  Rng rng(GetParam());
  for (int i = 0; i < 30; ++i) {
    TypePtr t = random_type(rng, 0);
    Value v = random_value(*t, rng, 6);

    Bytes buf(16384);
    XdrMem enc(MutableByteSpan(buf.data(), buf.size()), XdrOp::kEncode);
    ASSERT_TRUE(encode_value(enc, *t, v)) << type_to_string(*t);
    EXPECT_EQ(enc.getpos(), wire_size(*t, v)) << type_to_string(*t);

    XdrMem dec(MutableByteSpan(buf.data(), enc.getpos()), XdrOp::kDecode);
    Value out;
    ASSERT_TRUE(decode_value(dec, *t, out)) << type_to_string(*t);
    EXPECT_TRUE(value_equal(v, out))
        << type_to_string(*t) << "\n " << value_to_string(v) << "\n "
        << value_to_string(out);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InterpRoundTrip,
                         ::testing::Values(101, 202, 303, 404, 505, 606,
                                           707, 808));

TEST(Interp, DecodeRejectsTruncation) {
  auto t = t_struct("s", {{"a", t_int()}, {"b", t_hyper()}});
  Value v = zero_value(*t);
  Bytes buf(64);
  XdrMem enc(MutableByteSpan(buf.data(), buf.size()), XdrOp::kEncode);
  ASSERT_TRUE(encode_value(enc, *t, v));
  for (std::size_t cut = 0; cut < enc.getpos(); cut += 4) {
    XdrMem dec(MutableByteSpan(buf.data(), cut), XdrOp::kDecode);
    Value out;
    EXPECT_FALSE(decode_value(dec, *t, out)) << "cut=" << cut;
  }
}

TEST(Interp, UnionUnknownDiscriminantWithoutDefaultFails) {
  std::vector<UnionArm> arms = {{0, {"x", t_int()}}};
  auto t = t_union("u", std::move(arms), std::nullopt);
  Bytes buf(16);
  XdrMem enc(MutableByteSpan(buf.data(), buf.size()), XdrOp::kEncode);
  std::int32_t bogus = 9;
  ASSERT_TRUE(xdr::xdr_int(enc, bogus));
  XdrMem dec(MutableByteSpan(buf.data(), 4), XdrOp::kDecode);
  Value out;
  EXPECT_FALSE(decode_value(dec, *t, out));
}

}  // namespace
}  // namespace tempo::idl
