#include "net/udp.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace tempo::net {

bool set_fd_nonblocking(int fd, bool on) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  const int want = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  return ::fcntl(fd, F_SETFL, want) == 0;
}

std::string addr_to_string(const Addr& a) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u:%u", (a.host >> 24) & 0xFF,
                (a.host >> 16) & 0xFF, (a.host >> 8) & 0xFF, a.host & 0xFF,
                a.port);
  return buf;
}

namespace {

sockaddr_in to_sockaddr(const Addr& a) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = htonl(a.host);
  sa.sin_port = htons(a.port);
  return sa;
}

Addr from_sockaddr(const sockaddr_in& sa) {
  return Addr{ntohl(sa.sin_addr.s_addr), ntohs(sa.sin_port)};
}

}  // namespace

UdpSocket::UdpSocket(std::uint16_t port, bool reuseport) {
  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd_ < 0) return;
  if (reuseport) {
#if defined(SO_REUSEPORT)
    const int one = 1;
    if (::setsockopt(fd_, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) != 0) {
      ::close(fd_);
      fd_ = -1;
      return;
    }
#else
    // No SO_REUSEPORT on this platform: fail so the caller can fall
    // back to a single receiving socket instead of silently binding a
    // second socket that steals the port.
    ::close(fd_);
    fd_ = -1;
    return;
#endif
  }
  Addr want{0x7F000001u, port};
  sockaddr_in sa = to_sockaddr(want);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
    ::close(fd_);
    fd_ = -1;
    return;
  }
  sockaddr_in got{};
  socklen_t len = sizeof(got);
  ::getsockname(fd_, reinterpret_cast<sockaddr*>(&got), &len);
  local_ = from_sockaddr(got);
}

UdpSocket::~UdpSocket() {
  if (fd_ >= 0) ::close(fd_);
}

Status UdpSocket::send_to(const Addr& dst, ByteSpan payload) {
  if (fd_ < 0) return unavailable("socket not open");
  sockaddr_in sa = to_sockaddr(dst);
  const ssize_t n =
      ::sendto(fd_, payload.data(), payload.size(), 0,
               reinterpret_cast<sockaddr*>(&sa), sizeof(sa));
  if (n < 0 || static_cast<std::size_t>(n) != payload.size()) {
    return unavailable(std::string("sendto: ") + std::strerror(errno));
  }
  return Status::ok();
}

Status UdpSocket::set_nonblocking(bool on) {
  if (fd_ < 0) return unavailable("socket not open");
  if (!set_fd_nonblocking(fd_, on)) {
    return unavailable(std::strerror(errno));
  }
  return Status::ok();
}

int UdpSocket::recv_many(std::vector<Datagram>& out, int max_msgs) {
  if (fd_ < 0 || max_msgs <= 0) return 0;
  if (out.size() < static_cast<std::size_t>(max_msgs)) {
    out.resize(static_cast<std::size_t>(max_msgs));
  }
  for (int i = 0; i < max_msgs; ++i) {
    if (out[static_cast<std::size_t>(i)].payload.size() < kMaxDatagramBytes) {
      out[static_cast<std::size_t>(i)].payload.resize(kMaxDatagramBytes);
    }
  }
#if defined(__linux__)
  std::vector<mmsghdr> msgs(static_cast<std::size_t>(max_msgs));
  std::vector<iovec> iovs(static_cast<std::size_t>(max_msgs));
  std::vector<sockaddr_in> addrs(static_cast<std::size_t>(max_msgs));
  for (int i = 0; i < max_msgs; ++i) {
    const auto u = static_cast<std::size_t>(i);
    iovs[u].iov_base = out[u].payload.data();
    iovs[u].iov_len = out[u].payload.size();
    msgs[u] = mmsghdr{};
    msgs[u].msg_hdr.msg_iov = &iovs[u];
    msgs[u].msg_hdr.msg_iovlen = 1;
    msgs[u].msg_hdr.msg_name = &addrs[u];
    msgs[u].msg_hdr.msg_namelen = sizeof(sockaddr_in);
  }
  int n;
  do {
    n = ::recvmmsg(fd_, msgs.data(), static_cast<unsigned>(max_msgs),
                   MSG_DONTWAIT, nullptr);
  } while (n < 0 && errno == EINTR);
  if (n <= 0) return 0;
  for (int i = 0; i < n; ++i) {
    const auto u = static_cast<std::size_t>(i);
    out[u].src = from_sockaddr(addrs[u]);
    out[u].len = msgs[u].msg_len;
  }
  return n;
#else
  int n = 0;
  while (n < max_msgs) {
    const auto u = static_cast<std::size_t>(n);
    sockaddr_in sa{};
    socklen_t len = sizeof(sa);
    const ssize_t got =
        ::recvfrom(fd_, out[u].payload.data(), out[u].payload.size(),
                   MSG_DONTWAIT, reinterpret_cast<sockaddr*>(&sa), &len);
    if (got < 0) {
      if (errno == EINTR) continue;
      break;  // EWOULDBLOCK: drained
    }
    out[u].src = from_sockaddr(sa);
    out[u].len = static_cast<std::size_t>(got);
    ++n;
  }
  return n;
#endif
}

int UdpSocket::send_many(const OutDatagram* msgs, int count) {
  if (fd_ < 0 || count <= 0) return 0;
#if defined(__linux__)
  // Reused per calling thread so a steady stream of batched flushes
  // does not hit the allocator (mirrors recv_many's pooled buffers).
  thread_local std::vector<mmsghdr> hdrs;
  thread_local std::vector<iovec> iovs;
  thread_local std::vector<sockaddr_in> addrs;
  hdrs.resize(static_cast<std::size_t>(count));
  iovs.resize(static_cast<std::size_t>(count));
  addrs.resize(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    const auto u = static_cast<std::size_t>(i);
    // iovec wants a non-const pointer; sendmmsg never writes through it.
    iovs[u].iov_base =
        const_cast<std::uint8_t*>(msgs[u].payload.data());
    iovs[u].iov_len = msgs[u].payload.size();
    addrs[u] = to_sockaddr(msgs[u].dst);
    hdrs[u] = mmsghdr{};
    hdrs[u].msg_hdr.msg_iov = &iovs[u];
    hdrs[u].msg_hdr.msg_iovlen = 1;
    hdrs[u].msg_hdr.msg_name = &addrs[u];
    hdrs[u].msg_hdr.msg_namelen = sizeof(sockaddr_in);
  }
  int sent = 0;
  while (sent < count) {
    const int n = ::sendmmsg(fd_, hdrs.data() + sent,
                             static_cast<unsigned>(count - sent), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // EWOULDBLOCK/ENOBUFS: caller retries the tail
    }
    if (n == 0) break;
    sent += n;
  }
  return sent;
#else
  int sent = 0;
  while (sent < count) {
    const auto u = static_cast<std::size_t>(sent);
    if (!send_to(msgs[u].dst, msgs[u].payload).is_ok()) break;
    ++sent;
  }
  return sent;
#endif
}

Result<std::size_t> UdpSocket::recv_from(Addr* src, MutableByteSpan out,
                                         int timeout_ms) {
  if (fd_ < 0) return Status(unavailable("socket not open"));
  pollfd pfd{fd_, POLLIN, 0};
  const int pr = ::poll(&pfd, 1, timeout_ms);
  if (pr == 0) return Status(timeout_error("recv_from"));
  if (pr < 0) return Status(unavailable(std::strerror(errno)));
  sockaddr_in sa{};
  socklen_t len = sizeof(sa);
  const ssize_t n = ::recvfrom(fd_, out.data(), out.size(), 0,
                               reinterpret_cast<sockaddr*>(&sa), &len);
  if (n < 0) return Status(unavailable(std::strerror(errno)));
  if (src) *src = from_sockaddr(sa);
  return static_cast<std::size_t>(n);
}

}  // namespace tempo::net
