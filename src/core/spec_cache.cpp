#include "core/spec_cache.h"

#include "pe/verify.h"

namespace tempo::core {

namespace {

inline void hash_combine(std::size_t& seed, std::size_t v) {
  seed ^= v + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2);
}

// Paranoid-mode (TEMPO_PLAN_VERIFY=2) re-verification of all four plans
// at a publish boundary.  The plans were verified at build; this
// tripwire exists so a plan corrupted between build and publish can
// never reach the hit path.  Ok() in every other mode.
Status paranoid_reverify(const SpecializedInterface& iface) {
  if (pe::verify_mode() != pe::VerifyMode::kParanoid) return Status::ok();
  const struct {
    const char* name;
    const pe::Plan& plan;
  } plans[] = {{"encode_call", iface.encode_call_plan()},
               {"decode_reply", iface.decode_reply_plan()},
               {"decode_args", iface.decode_args_plan()},
               {"encode_results", iface.encode_results_plan()}};
  for (const auto& p : plans) {
    const pe::VerifyResult res = pe::verify_plan(p.plan);
    if (!res.ok()) {
      return out_of_range("paranoid re-verify rejected " +
                          std::string(p.name) + " at cache publish: " +
                          res.to_string());
    }
  }
  return Status::ok();
}

}  // namespace

std::size_t SpecKeyHash::operator()(const SpecKey& k) const {
  std::size_t seed = 0;
  hash_combine(seed, k.prog);
  hash_combine(seed, k.vers);
  hash_combine(seed, k.proc);
  hash_combine(seed, k.unroll_factor);
  hash_combine(seed, k.buffer_bytes);
  hash_combine(seed, k.arg_counts.size());
  for (auto c : k.arg_counts) hash_combine(seed, c);
  hash_combine(seed, k.res_counts.size());
  for (auto c : k.res_counts) hash_combine(seed, c);
  return seed;
}

SpecCache::SpecCache(std::size_t capacity, std::size_t shards)
    : capacity_(capacity == 0 ? 1 : capacity) {
  if (shards == 0) shards = 1;
  if (shards > capacity_) shards = capacity_;  // every shard gets >= 1 slot
  shards_.reserve(shards);
  // Distribute the capacity as evenly as possible; the first
  // (capacity % shards) shards take the remainder.
  const std::size_t base = capacity_ / shards;
  std::size_t leftover = capacity_ % shards;
  for (std::size_t i = 0; i < shards; ++i) {
    auto s = std::make_unique<Shard>();
    s->capacity = base + (leftover > 0 ? 1 : 0);
    if (leftover > 0) --leftover;
    shards_.push_back(std::move(s));
  }
  // stats() takes the shard locks itself, so the callback stays safe
  // against concurrent get_or_build traffic.  Counters sum across
  // multiple live caches; the gauges do too (total slots vs. used).
  metrics_source_ =
      common::metrics().add_source([this](common::MetricsSnapshot& snap) {
        const SpecCacheStats st = stats();
        snap.add_counter("spec_cache.hits", st.hits);
        snap.add_counter("spec_cache.misses", st.misses);
        snap.add_counter("spec_cache.evictions", st.evictions);
        snap.add_counter("spec_cache.build_failures", st.build_failures);
        snap.add_counter("spec_cache.hot_hits", st.hot_hits);
        snap.add_counter("spec_cache.jit_stubs", st.jit_stubs);
        snap.add_counter("spec_cache.verify_rejects", st.verify_rejects);
        snap.add_gauge("spec_cache.size", static_cast<std::int64_t>(size()));
        snap.add_gauge("spec_cache.capacity",
                       static_cast<std::int64_t>(capacity_));
      });
}

void SpecCache::Shard::touch_locked(Entry& e, const SpecKey& key) {
  if (!e.in_lru) return;
  lru.erase(e.lru_it);
  lru.push_front(key);
  e.lru_it = lru.begin();
}

void SpecCache::Shard::insert_lru_locked(const std::shared_ptr<Entry>& e,
                                         const SpecKey& key) {
  lru.push_front(key);
  e->lru_it = lru.begin();
  e->in_lru = true;
  while (lru.size() > capacity) {
    const SpecKey& victim = lru.back();
    auto it = map.find(victim);
    if (it != map.end()) map.erase(it);
    lru.pop_back();
    ++stats.evictions;
  }
}

Result<SpecHandle> SpecCache::get_or_build(const idl::ProcDef& proc,
                                           std::uint32_t prog,
                                           std::uint32_t vers,
                                           const SpecConfig& config) {
  SpecKey key{prog,
              vers,
              proc.number,
              config.arg_counts,
              config.res_counts,
              config.unroll_factor,
              config.buffer_bytes};

  // Lock-free fast path: one atomic load + key compare.  On the skewed
  // workloads real servers see (~99.99% one shape) this is the whole
  // lookup.  A stale slot is harmless — interfaces are immutable and
  // keyed, so a mismatch just falls through to the shard.  One hit in
  // kHotRefreshPeriod falls through ON PURPOSE: the locked path
  // touches the key's shard LRU entry, so the hottest key never decays
  // into the shard's eviction victim while it is being served from the
  // slot (each lookup still counts in exactly one hit counter).
  std::shared_ptr<const HotSlot> refresh_hot;
  if (auto hot = hot_.load(std::memory_order_acquire);
      hot && hot->key == key) {
    const std::int64_t tick =
        hot_ticks_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (tick % kHotRefreshPeriod != 0) {
      hot_hits_.fetch_add(1, std::memory_order_relaxed);
      return hot->iface;
    }
    // Refresh tick: fall through (counted as a shard hit, not a hot
    // hit, so every lookup lands in exactly one counter).  Keep the
    // handle: if the key was meanwhile evicted, the locked path
    // reinserts it instead of rebuilding.
    refresh_hot = std::move(hot);
  }

  Shard& shard = shard_for(SpecKeyHash{}(key));

  std::shared_ptr<Entry> entry;
  {
    std::unique_lock<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      entry = it->second;
      ++shard.stats.hits;
      if (!entry->ready) {
        // Another thread is building this key: wait, do not rebuild.
        shard.ready_cv.wait(lock, [&] { return entry->ready; });
      }
      // The entry may have been evicted from the map while we waited;
      // the shared_ptr keeps the payload valid either way.  Touch the
      // LRU for negative entries too: a hot ineligible shape must stay
      // cached, or its eviction would let repeated requests re-run the
      // pipeline.
      auto relocated = shard.map.find(key);
      if (relocated != shard.map.end() && relocated->second == entry) {
        shard.touch_locked(*entry, key);
      }
      // Shard-local hit-count epoch: every kHotPublishEpoch locked hits
      // (hot-slot hits never reach this counter, so a published entry
      // stops accumulating) the entry claims the hot slot.  Negative
      // entries never publish — the slot exists to skip locks on the
      // overwhelmingly-hit GOOD shape, not to fast-path errors.
      const bool publish =
          entry->iface && (++entry->locked_hits % kHotPublishEpoch == 0);
      SpecHandle iface = entry->iface;
      Status error = entry->error;
      lock.unlock();
      // Hot-slot publish boundary: paranoid mode re-verifies before the
      // interface becomes reachable lock-free; a failure just skips
      // publication (lookups keep the locked path, which stays correct).
      if (publish && paranoid_reverify(*iface).is_ok()) {
        hot_.store(std::make_shared<const HotSlot>(HotSlot{key, iface}),
                   std::memory_order_release);
      }
      if (iface) return iface;
      return error;
    }
    // A refresh tick that raced an eviction: the published handle is
    // still valid (interfaces are immutable), so reinsert it — the
    // whole point of the refresh is that the hot key must never pay a
    // pipeline rebuild.  No waiter can exist (the entry is born ready).
    if (refresh_hot) {
      ++shard.stats.hits;
      entry = std::make_shared<Entry>();
      entry->iface = refresh_hot->iface;
      entry->ready = true;
      shard.map.emplace(key, entry);
      shard.insert_lru_locked(entry, key);
      return entry->iface;
    }
    // Miss: claim the build while holding the shard lock.
    ++shard.stats.misses;
    entry = std::make_shared<Entry>();
    shard.map.emplace(key, entry);
  }

  // Build outside the lock — this is the expensive pipeline run.
  auto built = SpecializedInterface::build(proc, prog, vers, config);

  // Ready-entry publish boundary: in paranoid mode, re-verify outside
  // the lock before the entry becomes visible to other threads.
  Status admit = Status::ok();
  if (built.is_ok()) admit = paranoid_reverify(*built);

  {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (built.is_ok() && admit.is_ok()) {
      entry->iface =
          std::make_shared<const SpecializedInterface>(std::move(*built));
      shard.stats.jit_stubs += entry->iface->jit_stub_count();
      shard.insert_lru_locked(entry, key);
    } else {
      entry->error = built.is_ok() ? admit : built.status();
      ++shard.stats.build_failures;
      // The admission pass reports verifier rejections as kOutOfRange
      // (see pe::verify_admit); account them separately — a nonzero
      // spec_cache.verify_rejects means the specializer emitted a plan
      // whose declared contract its own ops violate, which is a bug,
      // not a merely-ineligible shape.
      if (entry->error.code() == StatusCode::kOutOfRange) {
        ++shard.stats.verify_rejects;
      }
      // Negative entries take an LRU slot too: repeated requests for an
      // ineligible shape must not re-run the pipeline, but an adversary
      // minting distinct ineligible keys must not grow the map
      // unboundedly either.
      shard.insert_lru_locked(entry, key);
    }
    entry->ready = true;
  }
  shard.ready_cv.notify_all();

  if (entry->iface) return entry->iface;
  return entry->error;
}

SpecCacheStats SpecCache::stats() const {
  SpecCacheStats total;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mu);
    total.hits += s->stats.hits;
    total.misses += s->stats.misses;
    total.evictions += s->stats.evictions;
    total.build_failures += s->stats.build_failures;
    total.jit_stubs += s->stats.jit_stubs;
    total.verify_rejects += s->stats.verify_rejects;
  }
  // Hot-slot hits bypass the shards entirely; fold them in so `hits`
  // keeps meaning "every lookup served without a build".
  total.hot_hits = hot_hits_.load(std::memory_order_relaxed);
  total.hits += total.hot_hits;
  return total;
}

std::size_t SpecCache::size() const {
  std::size_t total = 0;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mu);
    total += s->lru.size();
  }
  return total;
}

SpecCacheStats SpecCache::shard_stats(std::size_t shard) const {
  std::lock_guard<std::mutex> lock(shards_[shard]->mu);
  return shards_[shard]->stats;
}

std::size_t SpecCache::shard_size(std::size_t shard) const {
  std::lock_guard<std::mutex> lock(shards_[shard]->mu);
  return shards_[shard]->lru.size();
}

}  // namespace tempo::core
