// Table 1 + Figures 6-1, 6-2, 6-5: client marshaling time, original vs
// specialized, on both platform profiles.
//
//   pc-native : wall-clock on this host — generic layered C++ encode vs
//               residual-plan encode vs the native compiled stub (plus
//               template-specialized and table-driven reference flavors),
//   ipx-sim   : virtual time from the 40 MHz/SBus cost model — generic
//               IR execution vs cost-counted plan execution.
//
// The paper's claims to check (EXPERIMENTS.md): specialized marshaling
// is several times faster everywhere; on the memory-bound IPX profile
// the speedup *peaks near 250 elements and then declines*; on the
// CPU-bound native profile it grows with size and then bends.
//
// `--json` emits the interpret-vs-plan-vs-compiled measurements as a
// machine-readable document (the CI artifact; BENCH_marshaling.json at
// the repo root is a checked-in baseline of its shape).
#include <cstring>

#include "bench/bench_util.h"
#include "core/tspec.h"
#include "pe/compile.h"
#include "pe/verify.h"

namespace tempo::bench {
namespace {

// One array size, all native encode tiers measured on this host.
struct TierSample {
  std::uint32_t n = 0;
  double generic_ms = 0;   // layered xdr_* path (tier "interpret")
  double table_ms = 0;     // table-driven reference flavor
  double plan_ms = 0;      // residual plan, plan executor (tier "plan")
  double compiled_ms = 0;  // native stub, 0 when not compiled ("compiled")
  std::size_t plan_code_bytes = 0;    // in-memory PInstr footprint
  std::size_t packed_code_bytes = 0;  // serialized Table-3 analog
  std::size_t compiled_code_bytes = 0;
  std::size_t compiled_tmpl_bytes = 0;
};

TierSample measure_encode_tiers(const core::SpecializedInterface& iface,
                                std::uint32_t n) {
  TierSample s;
  s.n = n;
  const pe::Plan& plan = iface.encode_call_plan();
  s.plan_code_bytes = plan.code_bytes();
  s.packed_code_bytes = plan.packed_code_bytes();

  std::vector<std::int32_t> args(n);
  Rng rng(n);
  for (auto& a : args) a = static_cast<std::int32_t>(rng.next_u32());
  std::vector<std::uint32_t> slots(args.begin(), args.end());
  idl::Value value;
  {
    idl::ValueList l(n);
    for (std::uint32_t i = 0; i < n; ++i) l[i].v = args[i];
    value.v = std::move(l);
  }
  const idl::TypePtr arr_t = echo_proc().arg_type;

  Bytes out(65000);
  std::uint32_t xid = 0;

  s.generic_ms = time_ms_per_call([&] {
    benchmark::DoNotOptimize(generic_encode_call(
        args, ++xid, MutableByteSpan(out.data(), out.size())));
  });
  s.table_ms = time_ms_per_call([&] {
    benchmark::DoNotOptimize(table_driven_encode_call(
        *arr_t, value, ++xid, MutableByteSpan(out.data(), out.size())));
  });
  s.plan_ms = time_ms_per_call([&] {
    benchmark::DoNotOptimize(
        run_plan_encode(plan, slots, ++xid,
                        MutableByteSpan(out.data(), out.size()), nullptr));
  });
  if (const pe::CompiledPlan* jit = iface.encode_call_jit()) {
    s.compiled_code_bytes = jit->code_size();
    s.compiled_tmpl_bytes = jit->template_size();
    s.compiled_ms = time_ms_per_call([&] {
      benchmark::DoNotOptimize(jit->run_encode(
          slots, ++xid, MutableByteSpan(out.data(), out.size())));
    });
  }
  return s;
}

void run() {
  print_header("Table 1: Client marshaling performance in ms");

  std::vector<SpeedupRow> native_rows, ipx_rows, p166_rows, tspec_rows,
      table_rows, jit_rows, plan_vs_jit_rows;

  for (std::uint32_t n : paper_sizes()) {
    core::SpecializedInterface iface = make_iface(n);
    const pe::Plan& plan = iface.encode_call_plan();
    const TierSample s = measure_encode_tiers(iface, n);

    native_rows.push_back({n, s.generic_ms, s.plan_ms});
    table_rows.push_back({n, s.table_ms, s.plan_ms});
    if (s.compiled_ms > 0) {
      jit_rows.push_back({n, s.generic_ms, s.compiled_ms});
      plan_vs_jit_rows.push_back({n, s.plan_ms, s.compiled_ms});
    }

    // -- ipx-sim and p166-sim: cost model --
    std::vector<std::uint32_t> slots(n);
    Rng rng(n);
    for (auto& w : slots) w = rng.next_u32();
    ipx_rows.push_back(
        {n, sim_generic_encode_ms(iface, slots, n, CostParams::ipx_sunos()),
         sim_plan_encode_ms(plan, slots, CostParams::ipx_sunos())});
    p166_rows.push_back(
        {n, sim_generic_encode_ms(iface, slots, n, CostParams::p166_linux()),
         sim_plan_encode_ms(plan, slots, CostParams::p166_linux())});
  }

  // Template-specialized flavor (compile-time sizes must be literal).
  {
    auto time_tspec = [&]<std::size_t N>() {
      std::vector<std::uint32_t> slots(N);
      Rng rng(N);
      for (auto& s : slots) s = rng.next_u32();
      Bytes out(65000);
      std::uint32_t xid = 0;
      using Call = core::tspec::IntArrayCall<kProg, kVers, kProc, N>;
      const double ms = time_ms_per_call([&] {
        benchmark::DoNotOptimize(Call::encode(
            ++xid, slots, std::span<std::uint8_t>(out.data(), out.size())));
      });
      return ms;
    };
    const double t20 = time_tspec.operator()<20>();
    const double t100 = time_tspec.operator()<100>();
    const double t250 = time_tspec.operator()<250>();
    const double t500 = time_tspec.operator()<500>();
    const double t1000 = time_tspec.operator()<1000>();
    const double t2000 = time_tspec.operator()<2000>();
    const double t[] = {t20, t100, t250, t500, t1000, t2000};
    for (std::size_t i = 0; i < native_rows.size(); ++i) {
      tspec_rows.push_back(
          {native_rows[i].n, native_rows[i].original_ms, t[i]});
    }
  }

  print_speedup_table("IPX/SunOS ipx-sim, cost model", ipx_rows);
  std::printf("\n");
  print_speedup_table("PC/Linux p166-sim, cost model", p166_rows);
  std::printf("\n");
  print_speedup_table("this host, native wall clock (modern CPU)",
                      native_rows);
  std::printf("\n");
  print_speedup_table("pc-native, template-specialized (tspec)", tspec_rows);
  std::printf("\n");
  print_speedup_table("pc-native, table-driven baseline vs plan",
                      table_rows);
  if (!jit_rows.empty()) {
    std::printf("\n");
    print_speedup_table("pc-native, generic vs compiled stub (JIT tier)",
                        jit_rows);
    std::printf("\n");
    print_speedup_table("pc-native, plan executor vs compiled stub",
                        plan_vs_jit_rows);
  } else {
    std::printf("\n(compiled-stub tier inactive: unsupported host or "
                "TEMPO_PLAN_JIT off)\n");
  }

  print_header("Figure 6-1: marshaling time, original code");
  print_series("IPX/Sunos original (ms)", ipx_rows, false);
  print_series("PC/Linux original (ms)", p166_rows, false);

  print_header("Figure 6-2: marshaling time, specialized code");
  {
    std::vector<SpeedupRow> ipx_spec, pc_spec;
    for (auto r : ipx_rows) {
      ipx_spec.push_back({r.n, r.specialized_ms, 1});
    }
    for (auto r : p166_rows) {
      pc_spec.push_back({r.n, r.specialized_ms, 1});
    }
    print_series("IPX/Sunos specialized (ms)", ipx_spec, false);
    print_series("PC/Linux specialized (ms)", pc_spec, false);
  }

  print_header("Figure 6-5: speedup ratio for client marshaling");
  print_series("IPX/Sunos speedup", ipx_rows, true);
  print_series("PC/Linux speedup", p166_rows, true);
  print_series("this-host-native speedup", native_rows, true);
  if (!jit_rows.empty()) {
    print_series("this-host-compiled speedup", jit_rows, true);
  }

  // Shape checks (reported, also asserted in EXPERIMENTS.md):
  const auto peak = std::max_element(
      ipx_rows.begin(), ipx_rows.end(), [](const auto& a, const auto& b) {
        return a.original_ms / a.specialized_ms <
               b.original_ms / b.specialized_ms;
      });
  std::printf("\nipx-sim speedup peaks at array size %u (paper: 250)\n",
              peak->n);
}

// Machine-readable interpret-vs-plan-vs-compiled document for CI.
void run_json() {
  JsonWriter jw(stdout);
  jw.begin_object();
  jw.schema("marshaling");
  jw.field("workload", "echo int-array call encode");
  jw.key_array("tiers");
  jw.value("interpret");
  jw.value("plan");
  jw.value("compiled");
  jw.end_array();
  jw.key_object("jit");
  jw.field("host_supported", pe::jit_supported_host());
  jw.field("env_enabled", pe::jit_enabled_by_env());
  jw.end_object();
  jw.key_array("sizes");
  for (const std::uint32_t n : paper_sizes()) {
    core::SpecializedInterface iface = make_iface(n);
    const TierSample s = measure_encode_tiers(iface, n);
    jw.begin_object();
    jw.field("n", n);
    jw.field("interpret_ms", s.generic_ms);
    jw.field("table_ms", s.table_ms);
    jw.field("plan_ms", s.plan_ms);
    jw.field("compiled_ms", s.compiled_ms);
    jw.field("speedup_plan", s.plan_ms > 0 ? s.generic_ms / s.plan_ms : 0.0);
    jw.field("speedup_compiled",
             s.compiled_ms > 0 ? s.generic_ms / s.compiled_ms : 0.0);
    jw.field("plan_code_bytes", s.plan_code_bytes);
    jw.field("packed_code_bytes", s.packed_code_bytes);
    jw.field("compiled_code_bytes", s.compiled_code_bytes);
    jw.field("compiled_tmpl_bytes", s.compiled_tmpl_bytes);
    jw.end_object();
  }
  jw.end_array();
  // A/B datapoint for the plan-verifier admission pass
  // (TEMPO_PLAN_VERIFY): the same spec build timed with the verifier
  // off vs paranoid.  The delta is the entire cost of the knob — the
  // hit path (cache lookup -> exec_*) never calls the verifier, so
  // there is no per-call number to measure.
  jw.key_object("verify_build_cost");
  {
    const std::uint32_t n = 1000;
    pe::set_verify_mode(pe::VerifyMode::kOff);
    const double off_ms =
        time_ms_per_call([&] { make_iface(n); }, /*min_iters=*/20);
    pe::set_verify_mode(pe::VerifyMode::kParanoid);
    const double on_ms =
        time_ms_per_call([&] { make_iface(n); }, /*min_iters=*/20);
    pe::set_verify_mode(pe::VerifyMode::kAdmit);
    jw.field("n", n);
    jw.field("build_ms_verify_off", off_ms);
    jw.field("build_ms_verify_paranoid", on_ms);
    jw.field("overhead_pct",
             off_ms > 0 ? 100.0 * (on_ms - off_ms) / off_ms : 0.0);
  }
  jw.end_object();
  jw.end_object();
}

}  // namespace
}  // namespace tempo::bench

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      tempo::bench::run_json();
      return 0;
    }
  }
  tempo::bench::run();
  return 0;
}
