#include "net/reactor.h"

#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

#include "net/transport.h"

#if defined(__linux__)
#include <sys/epoll.h>
#define TEMPO_HAVE_EPOLL 1
#else
#define TEMPO_HAVE_EPOLL 0
#endif

namespace tempo::net {

namespace {

#if TEMPO_HAVE_EPOLL
std::uint32_t to_epoll_mask(unsigned interest) {
  std::uint32_t m = 0;
  if (interest & kEventRead) m |= EPOLLIN;
  if (interest & kEventWrite) m |= EPOLLOUT;
  return m;
}

unsigned from_epoll_mask(std::uint32_t m) {
  unsigned ev = 0;
  if (m & (EPOLLIN | EPOLLHUP | EPOLLERR)) ev |= kEventRead;
  if (m & EPOLLOUT) ev |= kEventWrite;
  if (m & (EPOLLHUP | EPOLLERR)) ev |= kEventError;
  return ev;
}
#endif

unsigned from_poll_mask(short m) {
  unsigned ev = 0;
  if (m & (POLLIN | POLLHUP | POLLERR | POLLNVAL)) ev |= kEventRead;
  if (m & POLLOUT) ev |= kEventWrite;
  if (m & (POLLHUP | POLLERR | POLLNVAL)) ev |= kEventError;
  return ev;
}

short to_poll_mask(unsigned interest) {
  short m = 0;
  if (interest & kEventRead) m |= POLLIN;
  if (interest & kEventWrite) m |= POLLOUT;
  return m;
}

}  // namespace

Reactor::Reactor(bool force_poll) {
  int fds[2];
  if (::pipe(fds) != 0) return;
  wake_read_fd_ = fds[0];
  wake_write_fd_ = fds[1];
  if (!set_fd_nonblocking(wake_read_fd_, true) ||
      !set_fd_nonblocking(wake_write_fd_, true)) {
    ::close(wake_read_fd_);
    ::close(wake_write_fd_);
    wake_read_fd_ = wake_write_fd_ = -1;
    return;
  }
#if TEMPO_HAVE_EPOLL
  if (!force_poll) {
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    use_epoll_ = epoll_fd_ >= 0;
  }
#else
  (void)force_poll;
#endif
#if TEMPO_HAVE_EPOLL
  if (use_epoll_) {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = wake_read_fd_;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_read_fd_, &ev) != 0) {
      ::close(epoll_fd_);
      epoll_fd_ = -1;
      use_epoll_ = false;
    }
  }
#endif
}

Reactor::~Reactor() {
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_read_fd_ >= 0) ::close(wake_read_fd_);
  if (wake_write_fd_ >= 0) ::close(wake_write_fd_);
}

bool Reactor::ok() const { return wake_read_fd_ >= 0; }

const char* Reactor::backend() const { return use_epoll_ ? "epoll" : "poll"; }

bool Reactor::add(int fd, unsigned interest, EventFn fn) {
  if (fd < 0 || handlers_.count(fd) != 0) return false;
#if TEMPO_HAVE_EPOLL
  if (use_epoll_) {
    epoll_event ev{};
    ev.events = to_epoll_mask(interest);
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) return false;
  }
#endif
  handlers_[fd] = Entry{interest, std::move(fn)};
  return true;
}

bool Reactor::set_interest(int fd, unsigned interest) {
  auto it = handlers_.find(fd);
  if (it == handlers_.end()) return false;
#if TEMPO_HAVE_EPOLL
  if (use_epoll_) {
    epoll_event ev{};
    ev.events = to_epoll_mask(interest);
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) return false;
  }
#endif
  it->second.interest = interest;
  return true;
}

bool Reactor::remove(int fd) {
  auto it = handlers_.find(fd);
  if (it == handlers_.end()) return false;
#if TEMPO_HAVE_EPOLL
  if (use_epoll_) {
    // Ignore failure: the caller may have closed the fd already, which
    // removes it from the epoll set implicitly.
    (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  }
#endif
  handlers_.erase(it);
  return true;
}

void Reactor::post(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(post_mu_);
    posted_.push_back(std::move(fn));
  }
  wakeup();
}

void Reactor::wakeup() {
  // Collapse storms: one pending byte is enough to pop poll_once.
  if (wake_pending_.exchange(true, std::memory_order_acq_rel)) return;
  const char b = 1;
  ssize_t n;
  do {
    n = ::write(wake_write_fd_, &b, 1);
  } while (n < 0 && errno == EINTR);
}

void Reactor::drain_posted() {
  std::vector<std::function<void()>> run;
  {
    std::lock_guard<std::mutex> lock(post_mu_);
    run.swap(posted_);
  }
  for (auto& fn : run) fn();
}

void Reactor::drain_wakeup_pipe() {
  // Read BEFORE clearing the flag.  The reverse order loses wakeups: a
  // wakeup() racing between the store and the read writes a byte that
  // the read then consumes, leaving wake_pending_ true with an empty
  // pipe — every later wakeup() would skip its write and a reactor
  // blocked in epoll_wait(-1) would never pop.  With this order, a
  // racer that observes the still-true flag skips the write, and its
  // posted closure is picked up by the drain_posted() that follows
  // every backend_wait().
  char buf[64];
  while (::read(wake_read_fd_, buf, sizeof(buf)) > 0) {
  }
  wake_pending_.store(false, std::memory_order_release);
}

int Reactor::backend_wait(int timeout_ms,
                          std::vector<std::pair<int, unsigned>>* out) {
#if TEMPO_HAVE_EPOLL
  if (use_epoll_) {
    epoll_event events[64];
    int n;
    do {
      n = ::epoll_wait(epoll_fd_, events, 64, timeout_ms);
    } while (n < 0 && errno == EINTR);
    if (n <= 0) return n;
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_read_fd_) {
        drain_wakeup_pipe();
        continue;
      }
      out->emplace_back(fd, from_epoll_mask(events[i].events));
    }
    return n;
  }
#endif
  std::vector<pollfd> pfds;
  pfds.reserve(handlers_.size() + 1);
  pfds.push_back(pollfd{wake_read_fd_, POLLIN, 0});
  for (const auto& [fd, entry] : handlers_) {
    const short mask = to_poll_mask(entry.interest);
    if (mask != 0) pfds.push_back(pollfd{fd, mask, 0});
  }
  int n;
  do {
    n = ::poll(pfds.data(), pfds.size(), timeout_ms);
  } while (n < 0 && errno == EINTR);
  if (n <= 0) return n;
  if (pfds[0].revents != 0) drain_wakeup_pipe();
  for (std::size_t i = 1; i < pfds.size(); ++i) {
    if (pfds[i].revents != 0) {
      out->emplace_back(pfds[i].fd, from_poll_mask(pfds[i].revents));
    }
  }
  return n;
}

int Reactor::poll_once(int timeout_ms) {
  drain_posted();

  std::vector<std::pair<int, unsigned>> ready;
  const int n = backend_wait(timeout_ms, &ready);
  if (n <= 0) {
    // A wakeup() may have carried posted closures.
    drain_posted();
    return 0;
  }

  // Closures posted while we were blocked run before fd dispatch (reply
  // completions should be buffered before new reads are parsed).
  drain_posted();

  int dispatched = 0;
  for (const auto& [fd, events] : ready) {
    auto it = handlers_.find(fd);
    if (it == handlers_.end()) continue;  // removed earlier in this batch
    // Copy the callback: the handler may remove itself (erasing the
    // entry) while running.
    EventFn fn = it->second.fn;
    fn(events);
    ++dispatched;
  }
  return dispatched;
}

}  // namespace tempo::net
