// Fault injection against the REAL server runtimes.
//
// The simnet suite (test_simnet.cpp) pins the client's guarded-
// specialization behaviour under drop/dup/reorder schedules, but only
// against inline sim-endpoint servers — neither ServerRuntime nor
// EventServerRuntime ever saw a fault schedule.  This file ports that
// suite to the real loopback runtimes through a deterministic UDP
// fault proxy, and parameterizes every case over BOTH runtimes (the
// threaded one and the reactor one, single- and multi-shard), so the
// event path gets the same adversarial coverage:
//
//   * a dropped request or reply drives the client's retransmission
//     path against a live runtime;
//   * a duplicated reply arrives while the client waits for the NEXT
//     call — the residual decode plan's XID guard must surface it as a
//     stale retry (stats().stale_replies), never decode it into
//     results;
//   * reordered replies are exactly stale traffic from the client's
//     point of view, and must equally never corrupt results;
//   * the specialized client and the generic layered client must both
//     converge to correct results under the same fault parameters.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <deque>
#include <memory>
#include <thread>
#include <vector>

#include "core/service.h"
#include "core/spec_cache.h"
#include "core/spec_client.h"
#include "core/stubspec.h"
#include "net/udp.h"
#include "rpc/client.h"
#include "rpc/event_runtime.h"
#include "rpc/svc.h"
#include "test_rng.h"
#include "xdr/primitives.h"

namespace tempo {
namespace {

constexpr std::uint32_t kProg = 0x20000999;
constexpr std::uint32_t kVers = 1;
constexpr std::uint32_t kProc = 7;

idl::ProcDef echo_array_proc() {
  idl::ProcDef proc;
  proc.name = "ECHO";
  proc.number = kProc;
  proc.arg_type = idl::t_array_var(idl::t_int(), 512);
  proc.res_type = idl::t_array_var(idl::t_int(), 512);
  return proc;
}

core::SpecConfig cfg_for(std::uint32_t n) {
  core::SpecConfig cfg;
  cfg.arg_counts = {n};
  cfg.res_counts = {n};
  return cfg;
}

// ---------------------------------------------- the UDP fault proxy ---
//
// Sits between one client and a real runtime on loopback: datagrams in
// either direction are dropped, duplicated, or held back and released
// out of order according to a seeded splitmix64 schedule, so a run is
// exactly reproducible.  (Loopback itself never faults, which is why
// the runtimes had no adversarial coverage before this.)
struct FaultParams {
  double drop = 0.0;     // per-datagram drop probability
  double dup = 0.0;      // per-datagram duplication probability
  double reorder = 0.0;  // probability a datagram is held and released
                         // AFTER the next one (a pairwise swap)
};

class UdpFaultProxy {
 public:
  UdpFaultProxy(net::Addr server, FaultParams faults, std::uint64_t seed)
      : server_(server), faults_(faults), rng_{seed} {
    EXPECT_TRUE(client_side_.ok());
    EXPECT_TRUE(server_side_.ok());
    EXPECT_TRUE(client_side_.set_nonblocking(true).is_ok());
    EXPECT_TRUE(server_side_.set_nonblocking(true).is_ok());
    thread_ = std::thread([this] { pump(); });
  }

  ~UdpFaultProxy() {
    stop_.store(true, std::memory_order_release);
    if (thread_.joinable()) thread_.join();
  }

  // Where the client should send its requests.
  net::Addr addr() const { return client_side_.local_addr(); }

 private:
  bool chance(double p) { return rng_.chance(p); }

  struct Pending {
    bool to_server = false;
    Bytes payload;
  };

  void forward(bool to_server, ByteSpan payload) {
    // A refused send is just one more dropped datagram to the client.
    if (to_server) {
      (void)!server_side_.send_to(server_, payload).is_ok();
    } else if (client_.port != 0) {
      (void)!client_side_.send_to(client_, payload).is_ok();
    }
  }

  // Applies the fault schedule to one datagram, then forwards it (and
  // any datagram whose reordering hold ends with this one).
  void apply(bool to_server, ByteSpan payload) {
    if (chance(faults_.drop)) return;
    const bool hold = chance(faults_.reorder);
    if (hold) {
      held_.push_back(Pending{to_server, Bytes(payload.begin(),
                                               payload.end())});
    } else {
      forward(to_server, payload);
      if (chance(faults_.dup)) forward(to_server, payload);
    }
    // Release anything held from before this datagram: the held one now
    // arrives after its successor — a reorder.
    while (held_.size() > (hold ? 1u : 0u)) {
      Pending p = std::move(held_.front());
      held_.pop_front();
      forward(p.to_server, ByteSpan(p.payload.data(), p.payload.size()));
      if (chance(faults_.dup)) {
        forward(p.to_server, ByteSpan(p.payload.data(), p.payload.size()));
      }
    }
  }

  void pump() {
    Bytes buf(65536);
    while (!stop_.load(std::memory_order_acquire)) {
      bool idle = true;
      net::Addr src;
      // Client -> server: remember the (single) client so replies can
      // be routed back.
      auto got = client_side_.recv_from(
          &src, MutableByteSpan(buf.data(), buf.size()), 0);
      if (got.is_ok()) {
        client_ = src;
        apply(/*to_server=*/true, ByteSpan(buf.data(), *got));
        idle = false;
      }
      got = server_side_.recv_from(nullptr,
                                   MutableByteSpan(buf.data(), buf.size()), 0);
      if (got.is_ok()) {
        apply(/*to_server=*/false, ByteSpan(buf.data(), *got));
        idle = false;
      }
      if (idle) std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    // Flush stragglers so a held reply is not silently lost at exit.
    while (!held_.empty()) {
      Pending p = std::move(held_.front());
      held_.pop_front();
      forward(p.to_server, ByteSpan(p.payload.data(), p.payload.size()));
    }
  }

  net::Addr server_;
  FaultParams faults_;
  test::Rng rng_;
  net::UdpSocket client_side_;  // faces the client
  net::UdpSocket server_side_;  // faces the runtime
  net::Addr client_{};          // learned from the first request
  std::deque<Pending> held_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

// --------------------------- both runtimes behind one test surface ---

enum class RuntimeKind { kThreaded, kReactor, kReactorSharded };

const char* kind_name(RuntimeKind k) {
  switch (k) {
    case RuntimeKind::kThreaded:
      return "threaded";
    case RuntimeKind::kReactor:
      return "reactor";
    case RuntimeKind::kReactorSharded:
      return "reactor4";
  }
  return "?";
}

class RuntimeUnderTest {
 public:
  virtual ~RuntimeUnderTest() = default;
  virtual Status start() = 0;
  virtual void stop() = 0;
  virtual net::Addr udp_addr() const = 0;
};

template <typename RuntimeT, typename ConfigT>
class RuntimeWrapper final : public RuntimeUnderTest {
 public:
  RuntimeWrapper(rpc::SvcRegistry& reg, ConfigT cfg) : rt_(reg, cfg) {}
  Status start() override { return rt_.start(); }
  void stop() override { rt_.stop(); }
  net::Addr udp_addr() const override { return rt_.udp_addr(); }

 private:
  RuntimeT rt_;
};

std::unique_ptr<RuntimeUnderTest> make_runtime(RuntimeKind kind,
                                               rpc::SvcRegistry& reg) {
  switch (kind) {
    case RuntimeKind::kThreaded: {
      rpc::ServerRuntimeConfig cfg;
      cfg.workers = 2;
      cfg.enable_tcp = false;
      return std::make_unique<
          RuntimeWrapper<rpc::ServerRuntime, rpc::ServerRuntimeConfig>>(reg,
                                                                        cfg);
    }
    case RuntimeKind::kReactor:
    case RuntimeKind::kReactorSharded: {
      rpc::EventServerRuntimeConfig cfg;
      cfg.workers = 2;
      cfg.reactors = kind == RuntimeKind::kReactorSharded ? 4 : 1;
      cfg.enable_tcp = false;
      return std::make_unique<RuntimeWrapper<rpc::EventServerRuntime,
                                             rpc::EventServerRuntimeConfig>>(
          reg, cfg);
    }
  }
  return nullptr;
}

// Shared fixture: a CachedSpecService echo server on the runtime under
// test, so the fault traffic exercises the server's residual-plan
// dispatch too, not just the client.
class RuntimeFaults : public ::testing::TestWithParam<RuntimeKind> {
 protected:
  void SetUp() override {
    cache_ = std::make_unique<core::SpecCache>(32, 4);
    service_ = std::make_unique<core::CachedSpecService>(
        *cache_, echo_array_proc(), kProg, kVers,
        [](std::span<const std::uint32_t>, std::span<const std::uint32_t> args,
           std::span<std::uint32_t> results) {
          std::copy(args.begin(), args.end(), results.begin());
          return true;
        });
    service_->install(reg_);
    runtime_ = make_runtime(GetParam(), reg_);
    ASSERT_NE(runtime_, nullptr);
    ASSERT_TRUE(runtime_->start().is_ok());
  }

  void TearDown() override {
    if (runtime_) runtime_->stop();
  }

  rpc::SvcRegistry reg_;
  std::unique_ptr<core::SpecCache> cache_;
  std::unique_ptr<core::CachedSpecService> service_;
  std::unique_ptr<RuntimeUnderTest> runtime_;
};

// Aggressive per-leg loss: every call must still converge through the
// retransmission path, results never corrupted.
TEST_P(RuntimeFaults, DropScheduleDrivesRetransmission) {
  FaultParams f;
  f.drop = 0.35;
  UdpFaultProxy proxy(runtime_->udp_addr(), f, /*seed=*/42);

  const std::uint32_t n = 16;
  auto iface = core::SpecializedInterface::build(echo_array_proc(), kProg,
                                                 kVers, cfg_for(n));
  ASSERT_TRUE(iface.is_ok());
  net::UdpSocket sock;
  ASSERT_TRUE(sock.ok());
  rpc::CallOptions opts;
  opts.retry_timeout_ms = 50;
  opts.total_timeout_ms = 10000;
  core::SpecializedClient client(sock, proxy.addr(), *iface, opts);

  std::vector<std::uint32_t> args(n), results(n, 0);
  for (int round = 0; round < 10; ++round) {
    for (std::uint32_t i = 0; i < n; ++i) {
      args[i] = static_cast<std::uint32_t>(round * 77 + i);
    }
    std::fill(results.begin(), results.end(), 0);
    Status st = client.call(args, results);
    ASSERT_TRUE(st.is_ok()) << kind_name(GetParam()) << " round " << round
                            << ": " << st.to_string();
    ASSERT_EQ(results, args);
  }
  EXPECT_GT(client.stats().retransmissions, 0);
}

// Every datagram delivered twice: duplicated replies show up while the
// client waits for the NEXT call's reply.  The residual decode plan's
// XID guard must fire (stale_replies) and stale bytes must never leak
// into results.
TEST_P(RuntimeFaults, DuplicatedRepliesSurfaceAsStaleRetries) {
  FaultParams f;
  f.dup = 1.0;
  UdpFaultProxy proxy(runtime_->udp_addr(), f, /*seed=*/11);

  const std::uint32_t n = 16;
  auto iface = core::SpecializedInterface::build(echo_array_proc(), kProg,
                                                 kVers, cfg_for(n));
  ASSERT_TRUE(iface.is_ok());
  net::UdpSocket sock;
  ASSERT_TRUE(sock.ok());
  core::SpecializedClient client(sock, proxy.addr(), *iface);

  std::vector<std::uint32_t> args(n), results(n, 0);
  for (int round = 0; round < 8; ++round) {
    for (std::uint32_t i = 0; i < n; ++i) {
      args[i] = static_cast<std::uint32_t>(round * 1000 + i);
    }
    std::fill(results.begin(), results.end(), 0);
    Status st = client.call(args, results);
    ASSERT_TRUE(st.is_ok()) << kind_name(GetParam()) << " round " << round
                            << ": " << st.to_string();
    ASSERT_EQ(results, args);  // stale duplicates never leak into results
  }
  EXPECT_GT(client.stats().stale_replies, 0);
}

// Replies held back and released out of order are stale traffic from
// the client's point of view: calls converge and results stay correct.
TEST_P(RuntimeFaults, ReorderedRepliesNeverCorruptResults) {
  FaultParams f;
  f.reorder = 0.5;
  f.dup = 0.3;
  UdpFaultProxy proxy(runtime_->udp_addr(), f, /*seed=*/77);

  const std::uint32_t n = 12;
  auto iface = core::SpecializedInterface::build(echo_array_proc(), kProg,
                                                 kVers, cfg_for(n));
  ASSERT_TRUE(iface.is_ok());
  net::UdpSocket sock;
  ASSERT_TRUE(sock.ok());
  rpc::CallOptions opts;
  opts.retry_timeout_ms = 100;
  opts.total_timeout_ms = 10000;
  core::SpecializedClient client(sock, proxy.addr(), *iface, opts);

  std::vector<std::uint32_t> args(n), results(n, 0);
  for (int round = 0; round < 12; ++round) {
    for (std::uint32_t i = 0; i < n; ++i) {
      args[i] = static_cast<std::uint32_t>(round * 31 + i * 7);
    }
    std::fill(results.begin(), results.end(), 0);
    Status st = client.call(args, results);
    ASSERT_TRUE(st.is_ok()) << kind_name(GetParam()) << " round " << round
                            << ": " << st.to_string();
    ASSERT_EQ(results, args);
  }
}

// The generic layered client must survive the same fault parameters the
// specialized one does — same protocol, same convergence — against the
// same live runtime (guarded specialization means the two are
// observationally equivalent under faults).
TEST_P(RuntimeFaults, GenericClientConvergesUnderSameFaults) {
  FaultParams f;
  f.drop = 0.3;
  f.dup = 0.5;
  UdpFaultProxy proxy(runtime_->udp_addr(), f, /*seed=*/7);

  net::UdpSocket sock;
  ASSERT_TRUE(sock.ok());
  rpc::CallOptions opts;
  opts.retry_timeout_ms = 50;
  opts.total_timeout_ms = 10000;
  rpc::UdpClient client(sock, proxy.addr(), kProg, kVers, opts);

  const std::uint32_t n = 16;
  for (int round = 0; round < 10; ++round) {
    std::vector<std::int32_t> sent(n), got;
    for (std::uint32_t i = 0; i < n; ++i) {
      sent[i] = static_cast<std::int32_t>(round * 13 + i);
    }
    Status st = client.call(
        kProc,
        [&](xdr::XdrStream& x) {
          std::uint32_t count = n;
          if (!xdr::xdr_u_int(x, count)) return false;
          for (auto& v : sent) {
            if (!xdr::xdr_int(x, v)) return false;
          }
          return true;
        },
        [&](xdr::XdrStream& x) {
          std::uint32_t count = 0;
          if (!xdr::xdr_u_int(x, count) || count != n) return false;
          got.resize(count);
          for (auto& v : got) {
            if (!xdr::xdr_int(x, v)) return false;
          }
          return true;
        });
    ASSERT_TRUE(st.is_ok()) << kind_name(GetParam()) << " round " << round
                            << ": " << st.to_string();
    ASSERT_EQ(got, sent);
  }
  EXPECT_GT(client.stats().retransmissions + client.stats().stale_replies, 0);
}

INSTANTIATE_TEST_SUITE_P(BothRuntimes, RuntimeFaults,
                         ::testing::Values(RuntimeKind::kThreaded,
                                           RuntimeKind::kReactor,
                                           RuntimeKind::kReactorSharded),
                         [](const auto& info) {
                           return kind_name(info.param);
                         });

}  // namespace
}  // namespace tempo
