// Deterministic pseudo-random numbers for tests, property sweeps and the
// simulated network.  SplitMix64: tiny, seedable, reproducible across
// platforms (unlike std::default_random_engine).
#pragma once

#include <cstdint>

namespace tempo {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) : state_(seed) {}

  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  std::uint32_t next_u32() { return static_cast<std::uint32_t>(next_u64() >> 32); }

  // Uniform in [0, bound). bound == 0 yields 0.
  std::uint64_t next_below(std::uint64_t bound) {
    return bound == 0 ? 0 : next_u64() % bound;
  }

  // Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  bool next_bool(double p_true = 0.5) { return next_double() < p_true; }

 private:
  std::uint64_t state_;
};

}  // namespace tempo
