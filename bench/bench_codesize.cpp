// Table 3: size of the client code, generic vs specialized, per array
// size.
//
// The paper measures SunOS object-file bytes: generic client 20004 bytes
// flat; specialized clients grow from 24340 (20 ints) to 111348 (2000
// ints) because the array loops unroll.  Our analogs, three of them:
//
//   in-memory   — PInstr footprint the executor walks (code_bytes());
//                 over-reports by struct padding, kept for the cost
//                 model,
//   packed      — the serialized encoding (packed_code_bytes()): one
//                 opcode byte + ULEB128 operands; the honest Table-3
//                 "specialized code size" analog,
//   native stub — machine-code bytes the JIT emits (+ its baked
//                 constant template), the closest thing to the paper's
//                 gcc-compiled specialized objects.
//
// The shape to reproduce: specialized > generic at every size, and
// specialized grows linearly with the array size while generic stays
// flat.
#include "bench/bench_util.h"

#include <cstring>

#include "pe/compile.h"

namespace tempo::bench {
namespace {

void run(const char* json_path) {
  print_header("Table 3: Size of the client code (in bytes)");

  const core::SpecializedInterface probe = make_iface(20);
  const std::size_t generic = probe.generic_code_bytes();
  std::printf("%-28s %10zu (flat across array sizes)\n",
              "generic client code", generic);

  // Client-side objects = encode_call + decode_reply, like the paper.
  std::printf("\n%-10s %12s %12s %12s %12s\n", "size", "in-memory",
              "packed", "native-stub", "stub-tmpl");
  std::size_t prev = 0;
  bool monotone = true, above = true, packed_smaller = true;
  struct SizeRow {
    std::uint32_t n;
    std::size_t in_memory, packed, stub, tmpl;
  };
  std::vector<SizeRow> size_rows;
  for (std::uint32_t n : paper_sizes()) {
    core::SpecializedInterface iface = make_iface(n);
    const std::size_t spec = iface.encode_call_plan().code_bytes() +
                             iface.decode_reply_plan().code_bytes() +
                             generic;  // fallback path ships too
    const std::size_t packed = iface.encode_call_plan().packed_code_bytes() +
                               iface.decode_reply_plan().packed_code_bytes();
    std::size_t stub = 0, tmpl = 0;
    for (const pe::CompiledPlan* jit :
         {iface.encode_call_jit(), iface.decode_reply_jit()}) {
      if (jit != nullptr) {
        stub += jit->code_size();
        tmpl += jit->template_size();
      }
    }
    std::printf("%-10u %12zu %12zu %12zu %12zu\n", n, spec, packed, stub,
                tmpl);
    monotone &= spec > prev;
    above &= spec > generic;
    packed_smaller &= packed < spec - generic;
    prev = spec;
    size_rows.push_back({n, spec, packed, stub, tmpl});
  }

  // Shape checks: monotone growth, always above generic, and the packed
  // encoding strictly below the padded in-memory footprint.
  std::printf("\nspecialized > generic at every size: %s\n",
              above ? "yes (paper: yes)" : "NO");
  std::printf("specialized grows with array size:   %s\n",
              monotone ? "yes (paper: yes)" : "NO");
  std::printf("packed < in-memory at every size:    %s\n",
              packed_smaller ? "yes (PInstr padding stripped)" : "NO");

  // Partial unrolling (Table 4's configuration) caps the growth.
  print_header("Residual code bytes vs unroll factor (array size 2000)");
  std::printf("%-14s %12s %12s %12s\n", "unroll", "in-memory", "packed",
              "native-stub");
  struct UnrollSizeRow {
    std::uint32_t factor;  // 0 = full unroll
    std::size_t in_memory, packed, stub;
  };
  std::vector<UnrollSizeRow> unroll_rows;
  for (std::uint32_t factor : {0u, 1u, 8u, 50u, 250u}) {
    core::SpecializedInterface iface = make_iface(2000, factor);
    const pe::CompiledPlan* jit = iface.encode_call_jit();
    std::printf("%-14s %12zu %12zu %12zu\n",
                factor == 0 ? "full" : std::to_string(factor).c_str(),
                iface.encode_call_plan().code_bytes(),
                iface.encode_call_plan().packed_code_bytes(),
                jit != nullptr ? jit->code_size() : 0);
    unroll_rows.push_back({factor, iface.encode_call_plan().code_bytes(),
                           iface.encode_call_plan().packed_code_bytes(),
                           jit != nullptr ? jit->code_size() : 0});
  }

  if (json_path == nullptr) return;
  std::FILE* f =
      std::strcmp(json_path, "-") == 0 ? stdout : std::fopen(json_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", json_path);
    std::exit(1);
  }
  JsonWriter jw(f);
  jw.begin_object();
  jw.schema("codesize");
  jw.field("generic_client_bytes", generic);
  jw.key_object("shape_checks");
  jw.field("specialized_above_generic", above);
  jw.field("specialized_monotone", monotone);
  jw.field("packed_below_in_memory", packed_smaller);
  jw.end_object();
  jw.key_array("sizes");
  for (const auto& r : size_rows) {
    jw.begin_object();
    jw.field("n", r.n);
    jw.field("in_memory_bytes", r.in_memory);
    jw.field("packed_bytes", r.packed);
    jw.field("native_stub_bytes", r.stub);
    jw.field("stub_template_bytes", r.tmpl);
    jw.end_object();
  }
  jw.end_array();
  jw.key_array("unroll_2000");
  for (const auto& r : unroll_rows) {
    jw.begin_object();
    jw.field("unroll_factor", r.factor);  // 0 = full unroll
    jw.field("in_memory_bytes", r.in_memory);
    jw.field("packed_bytes", r.packed);
    jw.field("native_stub_bytes", r.stub);
    jw.end_object();
  }
  jw.end_array();
  jw.end_object();
  if (f != stdout) std::fclose(f);
}

}  // namespace
}  // namespace tempo::bench

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--json PATH|-]\n", argv[0]);
      return 2;
    }
  }
  tempo::bench::run(json_path);
  return 0;
}
