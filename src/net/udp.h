// Real UDP datagram transport over the host's loopback interface.
#pragma once

#include "net/transport.h"

namespace tempo::net {

class UdpSocket final : public DatagramTransport {
 public:
  // Binds to 127.0.0.1:port (0 = ephemeral).  Check ok() before use.
  explicit UdpSocket(std::uint16_t port = 0);
  ~UdpSocket() override;

  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;

  bool ok() const { return fd_ >= 0; }

  Status send_to(const Addr& dst, ByteSpan payload) override;
  Result<std::size_t> recv_from(Addr* src, MutableByteSpan out,
                                int timeout_ms) override;
  Addr local_addr() const override { return local_; }

 private:
  int fd_ = -1;
  Addr local_;
};

}  // namespace tempo::net
