// Dynamically-typed XDR values, used by the table-driven marshaller and
// by the property tests to generate random instances of arbitrary types.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"
#include "idl/types.h"

namespace tempo::idl {

struct Value;
using ValueList = std::vector<Value>;

struct UnionValue {
  std::int32_t discriminant = 0;
  std::shared_ptr<Value> payload;  // null => void arm
};

struct OptionalValue {
  std::shared_ptr<Value> payload;  // null => absent
};

struct Value {
  std::variant<std::monostate,        // void
               std::int32_t,          // int / enum
               std::uint32_t,         // uint
               std::int64_t,          // hyper
               std::uint64_t,         // uhyper
               bool,                  // bool
               float, double,
               std::string,           // string
               Bytes,                 // opaque (fixed or var)
               ValueList,             // array elements or struct fields
               OptionalValue, UnionValue>
      v;

  template <typename T>
  const T& as() const {
    return std::get<T>(v);
  }
  template <typename T>
  T& as() {
    return std::get<T>(v);
  }
};

bool value_equal(const Value& a, const Value& b);
std::string value_to_string(const Value& value);

// Default-constructed value of a type (zeros, empty containers, first
// union arm).
Value zero_value(const Type& t);

// Random instance of `t`, sizes bounded by the type's bounds and
// `max_elems` for unbounded growth control.
Value random_value(const Type& t, Rng& rng, std::uint32_t max_elems = 8);

// Wire size of a concrete (type, value) pair — always defined, unlike
// static_wire_size.
std::size_t wire_size(const Type& t, const Value& v);

}  // namespace tempo::idl
