// Transport interfaces shared by the RPC engine.
//
// Two implementations exist for datagrams: real UDP over loopback
// (udp.h) and the deterministic in-process simulated network (simnet.h)
// used for the paper's platform profiles and for failure injection.
// Byte streams (RPC-over-TCP) are provided by real sockets (tcp.h).
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.h"
#include "common/status.h"

namespace tempo::net {

// IPv4-style address; the simulated network uses the same shape so RPC
// code is transport-agnostic.
struct Addr {
  std::uint32_t host = 0x7F000001u;  // 127.0.0.1
  std::uint16_t port = 0;

  friend bool operator==(const Addr& a, const Addr& b) {
    return a.host == b.host && a.port == b.port;
  }
};

std::string addr_to_string(const Addr& a);

// Shared O_NONBLOCK toggle (fcntl), used by the socket wrappers and the
// reactor so the dance lives in exactly one place.
bool set_fd_nonblocking(int fd, bool on);

inline constexpr int kBlockForever = -1;

class DatagramTransport {
 public:
  virtual ~DatagramTransport() = default;

  virtual Status send_to(const Addr& dst, ByteSpan payload) = 0;

  // Waits up to timeout_ms (kBlockForever blocks; 0 polls).  Returns the
  // datagram size, or kTimeout / kUnavailable.
  virtual Result<std::size_t> recv_from(Addr* src, MutableByteSpan out,
                                        int timeout_ms) = 0;

  virtual Addr local_addr() const = 0;
};

class StreamConn {
 public:
  virtual ~StreamConn() = default;

  virtual Status write_all(ByteSpan data) = 0;
  // Returns bytes read (>=1), or kTimeout / kUnavailable (peer closed).
  virtual Result<std::size_t> read_some(MutableByteSpan out,
                                        int timeout_ms) = 0;
  virtual void close() = 0;
};

}  // namespace tempo::net
