#include "common/status.h"

namespace tempo {

std::string_view status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
    case StatusCode::kParseError: return "PARSE_ERROR";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kTimeout: return "TIMEOUT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kPermissionDenied: return "PERMISSION_DENIED";
    case StatusCode::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::to_string() const {
  std::string out(status_code_name(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace tempo
