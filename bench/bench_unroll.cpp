// Table 4: controlling loop unrolling — "specialization with loops of
// 250-unrolled integers".
//
// The paper hand-tuned the residual code to unroll array loops 250-wide
// instead of completely, so the loop body fits the I-cache; the 250-
// unrolled variant then beats full unrolling at 1000/2000 elements
// (0.25 ms vs 0.29 ms at 2000 on the PC).  Our specializer implements
// that policy natively (SpecOptions::unroll_factor), so this bench
// regenerates the table on the p166-sim profile and on this host.
#include "bench/bench_util.h"

namespace tempo::bench {
namespace {

void run() {
  print_header(
      "Table 4: Specialization with loops of 250-unrolled integers (ms)");

  std::printf("%-10s %12s %12s %8s %14s %10s   (p166-sim)\n", "Array Size",
              "Original", "Full-unroll", "Speedup", "250-unrolled",
              "Speedup");
  const CostParams pc = CostParams::p166_linux();
  for (std::uint32_t n : {500u, 1000u, 2000u}) {
    std::vector<std::uint32_t> slots(n);
    Rng rng(n);
    for (auto& s : slots) s = rng.next_u32();

    core::SpecializedInterface full = make_iface(n, 0);
    core::SpecializedInterface part = make_iface(n, 250);

    const double orig = sim_generic_encode_ms(full, slots, n, pc);
    const double full_ms =
        sim_plan_encode_ms(full.encode_call_plan(), slots, pc);
    const double part_ms =
        sim_plan_encode_ms(part.encode_call_plan(), slots, pc);
    std::printf("%-10u %12.4f %12.4f %8.2f %14.4f %10.2f\n", n, orig,
                full_ms, orig / full_ms, part_ms, orig / part_ms);
  }

  std::printf("\n%-10s %12s %12s %8s %14s %10s   (this host, wall clock)\n",
              "Array Size", "Original", "Full-unroll", "Speedup",
              "250-unrolled", "Speedup");
  for (std::uint32_t n : {500u, 1000u, 2000u}) {
    std::vector<std::int32_t> args(n);
    Rng rng(n);
    for (auto& a : args) a = static_cast<std::int32_t>(rng.next_u32());
    std::vector<std::uint32_t> slots(args.begin(), args.end());

    core::SpecializedInterface full = make_iface(n, 0);
    core::SpecializedInterface part = make_iface(n, 250);
    Bytes out(65000);
    std::uint32_t xid = 0;

    const double orig = time_ms_per_call([&] {
      benchmark::DoNotOptimize(generic_encode_call(
          args, ++xid, MutableByteSpan(out.data(), out.size())));
    });
    const double full_ms = time_ms_per_call([&] {
      benchmark::DoNotOptimize(run_plan_encode(
          full.encode_call_plan(), slots, ++xid,
          MutableByteSpan(out.data(), out.size()), nullptr));
    });
    const double part_ms = time_ms_per_call([&] {
      benchmark::DoNotOptimize(run_plan_encode(
          part.encode_call_plan(), slots, ++xid,
          MutableByteSpan(out.data(), out.size()), nullptr));
    });
    std::printf("%-10u %12.5f %12.5f %8.2f %14.5f %10.2f\n", n, orig,
                full_ms, orig / full_ms, part_ms, orig / part_ms);
  }

  // Full unroll-factor sweep (our extension: the paper left automatic
  // unroll control as future work for Tempo; SpecOptions implements it).
  print_header("Unroll-factor sweep, array size 2000, p166-sim (ms)");
  std::vector<std::uint32_t> slots(2000);
  Rng rng(2000);
  for (auto& s : slots) s = rng.next_u32();
  for (std::uint32_t factor : {1u, 4u, 16u, 64u, 250u, 1000u, 0u}) {
    core::SpecializedInterface iface = make_iface(2000, factor);
    const double ms =
        sim_plan_encode_ms(iface.encode_call_plan(), slots, pc);
    std::printf("unroll=%-8s %10.4f ms   plan=%7zu bytes\n",
                factor == 0 ? "full" : std::to_string(factor).c_str(), ms,
                iface.encode_call_plan().code_bytes());
  }
}

}  // namespace
}  // namespace tempo::bench

int main() {
  tempo::bench::run();
  return 0;
}
