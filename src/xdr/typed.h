// Type-safe C++ layer over the XDR primitives.
//
// The C-style codecs in primitives.h mirror the original micro-layers;
// this header is the modern face: a `Codec<T>` customization point, an
// `Xdrable` concept, and `encode()/decode()` helpers so application
// structs serialize with one member function.  Used by the examples and
// available to library users; the specializer works below this level.
//
// Usage:
//   struct Point {
//     std::int32_t x = 0, y = 0;
//     bool xdr(xdr::XdrStream& s) { return xdr::proc(s, x) && xdr::proc(s, y); }
//   };
//   ...
//   Point p;
//   xdr::encode(stream, p);   // or decode(stream, p)
#pragma once

#include <array>
#include <concepts>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "xdr/primitives.h"
#include "xdr/xdr.h"

namespace tempo::xdr {

template <typename T>
struct Codec;  // primary template: specialize for your type

// ---- scalar specializations ---------------------------------------------

template <>
struct Codec<std::int32_t> {
  static bool proc(XdrStream& s, std::int32_t& v) { return xdr_int(s, v); }
};
template <>
struct Codec<std::uint32_t> {
  static bool proc(XdrStream& s, std::uint32_t& v) { return xdr_u_int(s, v); }
};
template <>
struct Codec<std::int64_t> {
  static bool proc(XdrStream& s, std::int64_t& v) { return xdr_hyper(s, v); }
};
template <>
struct Codec<std::uint64_t> {
  static bool proc(XdrStream& s, std::uint64_t& v) {
    return xdr_u_hyper(s, v);
  }
};
template <>
struct Codec<std::int16_t> {
  static bool proc(XdrStream& s, std::int16_t& v) { return xdr_short(s, v); }
};
template <>
struct Codec<std::uint16_t> {
  static bool proc(XdrStream& s, std::uint16_t& v) {
    return xdr_u_short(s, v);
  }
};
template <>
struct Codec<bool> {
  static bool proc(XdrStream& s, bool& v) { return xdr_bool(s, v); }
};
template <>
struct Codec<float> {
  static bool proc(XdrStream& s, float& v) { return xdr_float(s, v); }
};
template <>
struct Codec<double> {
  static bool proc(XdrStream& s, double& v) { return xdr_double(s, v); }
};

// Enums ride their underlying 32-bit representation.
template <typename E>
  requires std::is_enum_v<E>
struct Codec<E> {
  static bool proc(XdrStream& s, E& v) { return xdr_enum(s, v); }
};

// ---- member-function protocol --------------------------------------------

template <typename T>
concept HasXdrMember = requires(T t, XdrStream& s) {
  { t.xdr(s) } -> std::convertible_to<bool>;
};

template <HasXdrMember T>
struct Codec<T> {
  static bool proc(XdrStream& s, T& v) { return v.xdr(s); }
};

// Single entry point: resolves through Codec<T>.
template <typename T>
bool proc(XdrStream& s, T& v) {
  return Codec<T>::proc(s, v);
}

template <typename T>
concept Xdrable = requires(T t, XdrStream& s) {
  { Codec<T>::proc(s, t) } -> std::convertible_to<bool>;
};

// ---- containers -----------------------------------------------------------

// Bounded string (counted, padded).
template <std::uint32_t MaxLen = 0xFFFFFFFFu>
struct BoundedString {
  std::string value;
  bool xdr(XdrStream& s) { return xdr_string(s, value, MaxLen); }
};

template <>
struct Codec<std::string> {
  static bool proc(XdrStream& s, std::string& v) {
    return xdr_string(s, v, 0xFFFFFFFFu);
  }
};

// std::vector<T>: variable-length array, unbounded unless wrapped.
template <Xdrable T>
struct Codec<std::vector<T>> {
  static bool proc(XdrStream& s, std::vector<T>& v) {
    std::uint32_t count = static_cast<std::uint32_t>(v.size());
    if (!xdr_u_int(s, count)) return false;
    if (s.op() == XdrOp::kDecode) {
      // Defensive cap: refuse absurd counts before allocating.
      if (count > (1u << 24)) return false;
      v.assign(count, T{});
    } else if (s.op() == XdrOp::kFree) {
      v.clear();
      return true;
    }
    for (auto& e : v) {
      if (!Codec<T>::proc(s, e)) return false;
    }
    return true;
  }
};

// std::array<T, N>: fixed-length array (count not on the wire).
template <Xdrable T, std::size_t N>
struct Codec<std::array<T, N>> {
  static bool proc(XdrStream& s, std::array<T, N>& v) {
    for (auto& e : v) {
      if (!Codec<T>::proc(s, e)) return false;
    }
    return true;
  }
};

// std::optional<T>: XDR optional-data (bool discriminant + payload).
template <Xdrable T>
struct Codec<std::optional<T>> {
  static bool proc(XdrStream& s, std::optional<T>& v) {
    bool present = v.has_value();
    if (!xdr_bool(s, present)) return false;
    if (s.op() == XdrOp::kFree) {
      v.reset();
      return true;
    }
    if (!present) {
      if (s.op() == XdrOp::kDecode) v.reset();
      return true;
    }
    if (s.op() == XdrOp::kDecode && !v.has_value()) v.emplace();
    return Codec<T>::proc(s, *v);
  }
};

// Raw byte vectors: variable-length opaque.
template <>
struct Codec<Bytes> {
  static bool proc(XdrStream& s, Bytes& v) {
    return xdr_bytes(s, v, 0xFFFFFFFFu);
  }
};

// ---- convenience drivers ---------------------------------------------------

// Encodes `v`; the stream must be in encode mode.
template <Xdrable T>
bool encode(XdrStream& s, T& v) {
  return s.op() == XdrOp::kEncode && proc(s, v);
}

template <Xdrable T>
bool decode(XdrStream& s, T& v) {
  return s.op() == XdrOp::kDecode && proc(s, v);
}

// Fold helper for structs: proc_all(s, a, b, c) == proc each in order.
template <typename... Ts>
bool proc_all(XdrStream& s, Ts&... fields) {
  return (proc(s, fields) && ...);
}

}  // namespace tempo::xdr
