// Quickstart: the paper's running example — rmin(pair) -> int — served
// over real loopback UDP, called three ways:
//   1. the generic layered client (the "original Sun RPC"),
//   2. the automatically specialized client (residual plans),
//   3. the same specialized client after the server vanishes
//      (demonstrating timeout/retransmission behaviour).
//
// Build & run:  ./examples/quickstart
#include <atomic>
#include <cstdio>
#include <thread>

#include "common/metrics.h"
#include "core/generic_client.h"
#include "core/service.h"
#include "core/spec_client.h"
#include "idl/parser.h"
#include "net/udp.h"
#include "rpc/svc.h"

using namespace tempo;

namespace {

constexpr const char* kInterface = R"(
struct pair {
    int int1;
    int int2;
};

program RMIN_PROG {
    version RMIN_VERS {
        int RMIN(pair) = 1;
    } = 1;
} = 0x20000099;
)";

}  // namespace

int main() {
  // ---- rpcgen step: parse the interface ----
  auto module = idl::parse_xdr_source(kInterface);
  if (!module.is_ok()) {
    std::fprintf(stderr, "IDL error: %s\n",
                 module.status().to_string().c_str());
    return 1;
  }
  const idl::ProgramDef& prog = module->programs.front();
  const idl::ProcDef& rmin = prog.versions.front().procs.front();

  // ---- Tempo step: specialize the stubs for this interface ----
  auto iface = core::SpecializedInterface::build(
      rmin, prog.number, prog.versions.front().number, core::SpecConfig{});
  if (!iface.is_ok()) {
    std::fprintf(stderr, "specialization error: %s\n",
                 iface.status().to_string().c_str());
    return 1;
  }
  std::printf("specialized stubs built: encode plan %zu bytes, decode plan "
              "%zu bytes\n",
              iface->encode_call_plan().code_bytes(),
              iface->decode_reply_plan().code_bytes());

  // ---- server: min(int1, int2), specialized fast path ----
  net::UdpSocket server_sock;
  rpc::SvcRegistry registry;
  core::SpecializedService service(
      *iface, [](std::span<const std::uint32_t> args,
                 std::span<std::uint32_t> results) {
        const auto a = static_cast<std::int32_t>(args[0]);
        const auto b = static_cast<std::int32_t>(args[1]);
        results[0] = static_cast<std::uint32_t>(a < b ? a : b);
        return true;
      });
  service.install(registry);
  rpc::UdpServer server(server_sock, registry);
  std::atomic<bool> stop{false};
  std::thread server_thread([&] { server.serve(stop); });
  std::printf("rmin server listening on %s\n",
              net::addr_to_string(server_sock.local_addr()).c_str());

  // ---- 1. generic client ----
  net::UdpSocket client_sock;
  core::GenericValueClient generic(client_sock, server_sock.local_addr(),
                                   prog.number, 1);
  idl::Value arg;
  arg.v = idl::ValueList(2);
  arg.as<idl::ValueList>()[0].v = std::int32_t{42};
  arg.as<idl::ValueList>()[1].v = std::int32_t{17};
  auto res = generic.call(1, *rmin.arg_type, arg, *rmin.res_type);
  if (!res.is_ok()) {
    std::fprintf(stderr, "generic call failed: %s\n",
                 res.status().to_string().c_str());
    return 1;
  }
  std::printf("generic client:     rmin(42, 17) = %d\n",
              res->as<std::int32_t>());

  // ---- 2. specialized client ----
  core::SpecializedClient specialized(client_sock,
                                      server_sock.local_addr(), *iface);
  std::uint32_t args[2] = {static_cast<std::uint32_t>(-5),
                           static_cast<std::uint32_t>(99)};
  std::uint32_t result[1] = {0};
  Status st = specialized.call(args, result);
  if (!st.is_ok()) {
    std::fprintf(stderr, "specialized call failed: %s\n",
                 st.to_string().c_str());
    return 1;
  }
  std::printf("specialized client: rmin(-5, 99) = %d\n",
              static_cast<std::int32_t>(result[0]));

  // ---- 3. timeout behaviour once the server is gone ----
  stop = true;
  server_thread.join();
  rpc::CallOptions opts;
  opts.retry_timeout_ms = 50;
  opts.total_timeout_ms = 200;
  core::SpecializedClient orphan(client_sock, server_sock.local_addr(),
                                 *iface, opts);
  st = orphan.call(args, result);
  std::printf("after server shutdown: %s (with %lld retransmissions)\n",
              st.to_string().c_str(),
              static_cast<long long>(orphan.stats().retransmissions));

  // Everything the process observed, in one snapshot: per-layer
  // counters folded in by whichever components are still alive.
  std::printf("\n--- metrics snapshot ---\n");
  common::metrics().snapshot().print(stdout);
  return 0;
}
