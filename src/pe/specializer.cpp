#include "pe/specializer.h"

#include <algorithm>

#include "common/bytes.h"
#include "pe/corpus.h"

namespace tempo::pe {

namespace {

// Specialization-time value.
struct SVal {
  enum class K : std::uint8_t { kInt, kRef, kRec, kDyn } k = K::kInt;
  std::int64_t v = 0;  // kInt value / kRef slot
  ExprP dyn;           // kDyn residual expression

  static SVal of_int(std::int64_t x) { return SVal{K::kInt, x, nullptr}; }
  static SVal of_ref(std::int64_t slot) { return SVal{K::kRef, slot, nullptr}; }
  static SVal of_rec() { return SVal{K::kRec, 0, nullptr}; }
  static SVal of_dyn(ExprP e) { return SVal{K::kDyn, 0, std::move(e)}; }
};

// Residual-expression classifiers for guard/store lowering.
bool is_var_named(const ExprP& e, const char* name) {
  return e && e->kind == ExprKind::kVar && e->var == name;
}
bool is_const(const ExprP& e, std::int64_t* out) {
  if (e && e->kind == ExprKind::kConst) {
    *out = e->imm;
    return true;
  }
  return false;
}
bool is_buf_load_const(const ExprP& e, std::int64_t* off) {
  if (e && e->kind == ExprKind::kBufLoad && e->a &&
      e->a->kind == ExprKind::kConst) {
    *off = e->a->imm;
    return true;
  }
  return false;
}
bool is_deref_const_slot(const ExprP& e, std::int64_t* slot) {
  if (e && e->kind == ExprKind::kDeref && e->a &&
      e->a->kind == ExprKind::kConst) {
    *slot = e->a->imm;
    return true;
  }
  return false;
}

enum class Flow : std::uint8_t { kContinue, kReturned };

class Specializer {
 public:
  Specializer(const Program& program, const SpecInput& in)
      : program_(program), in_(in) {
    fields_["x_op"] = SVal::of_int(in.xdrs.x_op);
    fields_["x_handy"] = SVal::of_int(in.xdrs.x_handy);
    fields_["x_private"] = SVal::of_int(in.xdrs.x_private);
    fields_["x_err"] = SVal::of_int(0);
  }

  Result<Plan> run(const std::string& entry) {
    const Function* fn = program_.find(entry);
    if (!fn) return Status(not_found("no function " + entry));
    Env env;
    for (const auto& p : fn->params) {
      if (p == kXdrsRecord) {
        env[p] = SVal::of_rec();
      } else if (auto it = in_.ref_params.find(p); it != in_.ref_params.end()) {
        env[p] = SVal::of_ref(it->second);
      } else if (auto is = in_.static_scalars.find(p);
                 is != in_.static_scalars.end()) {
        env[p] = SVal::of_int(is->second);
      } else if (std::find(in_.dynamic_scalars.begin(),
                           in_.dynamic_scalars.end(),
                           p) != in_.dynamic_scalars.end()) {
        env[p] = SVal::of_dyn(e_var(p));
      } else {
        return Status(invalid_argument("unbound entry parameter " + p));
      }
    }

    SVal result;
    Flow flow = Flow::kContinue;
    TEMPO_RETURN_IF_ERROR(spec_block(fn->body, env, &flow, &result));
    if (flow != Flow::kReturned || result.k != SVal::K::kInt) {
      return Status(internal_error(
          "entry did not return a static status (residual control flow "
          "escaped the plan language)"));
    }
    if (result.v != kRcOk) {
      return Status(internal_error(
          "entry returns failure under the declared static inputs"));
    }

    plan_.is_encode = (in_.xdrs.x_op == 0);
    if (plan_.is_encode) {
      const SVal& priv = fields_["x_private"];
      plan_.out_size = static_cast<std::uint32_t>(priv.v);
    }
    plan_.words_needed = static_cast<std::uint32_t>(max_slot_ + 1);
    return std::move(plan_);
  }

 private:
  using Env = std::map<std::string, SVal>;

  Status err(const std::string& what) { return internal_error(what); }

  // Residualize a specialization-time value into a residual expression.
  Result<ExprP> residualize(const SVal& v) {
    switch (v.k) {
      case SVal::K::kInt:
        return ExprP(e_const(v.v));
      case SVal::K::kDyn:
        return v.dyn;
      case SVal::K::kRef:
      case SVal::K::kRec:
        return Status(
            err("reference escaped into a dynamic computation"));
    }
    return Status(err("bad value"));
  }

  // ---- expressions -------------------------------------------------------
  Result<SVal> eval(const Expr& e, Env& env) {
    switch (e.kind) {
      case ExprKind::kConst:
        return SVal::of_int(e.imm);
      case ExprKind::kVar: {
        const auto it = env.find(e.var);
        if (it == env.end()) {
          return Status(err("unbound variable " + e.var));
        }
        return it->second;
      }
      case ExprKind::kField: {
        const auto it = fields_.find(e.field);
        if (it == fields_.end()) {
          return Status(err("unknown field " + e.field));
        }
        return it->second;
      }
      case ExprKind::kBin: {
        TEMPO_ASSIGN_OR_RETURN(a, eval(*e.a, env));
        TEMPO_ASSIGN_OR_RETURN(b, eval(*e.b, env));
        if (a.k == SVal::K::kInt && b.k == SVal::K::kInt) {
          return SVal::of_int(fold(e.op, a.v, b.v));
        }
        TEMPO_ASSIGN_OR_RETURN(ra, residualize(a));
        TEMPO_ASSIGN_OR_RETURN(rb, residualize(b));
        return SVal::of_dyn(e_bin(e.op, ra, rb));
      }
      case ExprKind::kDeref: {
        TEMPO_ASSIGN_OR_RETURN(r, eval(*e.a, env));
        if (r.k != SVal::K::kRef) {
          return Status(err("deref of non-static reference"));
        }
        max_slot_ = std::max(max_slot_, r.v);
        // Slot contents are dynamic; the slot address is static.
        return SVal::of_dyn(e_deref(e_const(r.v)));
      }
      case ExprKind::kIndex: {
        TEMPO_ASSIGN_OR_RETURN(r, eval(*e.a, env));
        TEMPO_ASSIGN_OR_RETURN(i, eval(*e.b, env));
        if (r.k != SVal::K::kRef || i.k != SVal::K::kInt) {
          return Status(err("dynamic indexing is not plan-eligible"));
        }
        return SVal::of_ref(r.v + i.v);
      }
      case ExprKind::kFieldRef: {
        TEMPO_ASSIGN_OR_RETURN(r, eval(*e.a, env));
        if (r.k != SVal::K::kRef) {
          return Status(err("field-ref of non-static reference"));
        }
        return SVal::of_ref(r.v + e.imm);
      }
      case ExprKind::kBufLoad: {
        TEMPO_ASSIGN_OR_RETURN(off, eval(*e.a, env));
        if (off.k != SVal::K::kInt) {
          return Status(err("dynamic buffer offset"));
        }
        return SVal::of_dyn(e_buf_load(e_const(off.v)));
      }
    }
    return Status(err("bad expr"));
  }

  static std::int64_t fold(BinOp op, std::int64_t a, std::int64_t b) {
    switch (op) {
      case BinOp::kAdd: return a + b;
      case BinOp::kSub: return a - b;
      case BinOp::kMul: return a * b;
      case BinOp::kLt: return a < b;
      case BinOp::kLe: return a <= b;
      case BinOp::kGt: return a > b;
      case BinOp::kGe: return a >= b;
      case BinOp::kEq: return a == b;
      case BinOp::kNe: return a != b;
      case BinOp::kAnd: return (a != 0) && (b != 0);
      case BinOp::kOr: return (a != 0) || (b != 0);
    }
    return 0;
  }

  // ---- statements ---------------------------------------------------------
  Status spec_block(const Block& b, Env& env, Flow* flow, SVal* ret) {
    for (const auto& s : b) {
      TEMPO_RETURN_IF_ERROR(spec(*s, env, flow, ret));
      if (*flow == Flow::kReturned) return Status::ok();
    }
    return Status::ok();
  }

  Status spec(const Stmt& s, Env& env, Flow* flow, SVal* ret) {
    switch (s.kind) {
      case StmtKind::kAssign: {
        TEMPO_ASSIGN_OR_RETURN(v, eval(*s.e0, env));
        env[s.var] = v;
        return Status::ok();
      }
      case StmtKind::kFieldSet: {
        TEMPO_ASSIGN_OR_RETURN(v, eval(*s.e0, env));
        if (v.k != SVal::K::kInt) {
          return err("record field '" + s.field +
                     "' would become dynamic — declare more inputs static "
                     "or fall back to the generic path");
        }
        fields_[s.field] = v;
        return Status::ok();
      }
      case StmtKind::kStoreRef: {
        TEMPO_ASSIGN_OR_RETURN(r, eval(*s.e0, env));
        TEMPO_ASSIGN_OR_RETURN(v, eval(*s.e1, env));
        if (r.k != SVal::K::kRef) {
          return err("store through non-static reference");
        }
        max_slot_ = std::max(max_slot_, r.v);
        if (v.k == SVal::K::kInt) {
          emit({POp::kSetWordConst, 0, static_cast<std::uint32_t>(r.v), 0,
                static_cast<std::uint64_t>(v.v)});
          return Status::ok();
        }
        std::int64_t off;
        if (v.k == SVal::K::kDyn && is_buf_load_const(v.dyn, &off)) {
          emit({POp::kGetWord, static_cast<std::uint32_t>(off),
                static_cast<std::uint32_t>(r.v), 0, 0});
          return Status::ok();
        }
        return err("result store outside the plan language");
      }
      case StmtKind::kBufStore: {
        TEMPO_ASSIGN_OR_RETURN(off, eval(*s.e0, env));
        TEMPO_ASSIGN_OR_RETURN(v, eval(*s.e1, env));
        if (off.k != SVal::K::kInt) return err("dynamic buffer offset");
        const auto o = static_cast<std::uint32_t>(off.v);
        if (v.k == SVal::K::kInt) {
          emit({POp::kPutConst, o, 0, 0, static_cast<std::uint64_t>(v.v)});
          return Status::ok();
        }
        std::int64_t slot;
        if (v.k == SVal::K::kDyn && is_deref_const_slot(v.dyn, &slot)) {
          emit({POp::kPutWord, o, static_cast<std::uint32_t>(slot), 0, 0});
          return Status::ok();
        }
        if (v.k == SVal::K::kDyn && is_var_named(v.dyn, kXidVar)) {
          emit({POp::kPutXid, o, 0, 0, 0});
          return Status::ok();
        }
        return err("buffer store outside the plan language");
      }
      case StmtKind::kBufStoreBytes:
      case StmtKind::kBufLoadBytes: {
        TEMPO_ASSIGN_OR_RETURN(off, eval(*s.e0, env));
        TEMPO_ASSIGN_OR_RETURN(r, eval(*s.e1, env));
        TEMPO_ASSIGN_OR_RETURN(len, eval(*s.e2, env));
        if (off.k != SVal::K::kInt || r.k != SVal::K::kRef ||
            len.k != SVal::K::kInt) {
          return err("bulk copy with dynamic geometry");
        }
        max_slot_ = std::max(
            max_slot_,
            r.v + static_cast<std::int64_t>(xdr_pad4(
                      static_cast<std::size_t>(len.v))) / 4 - 1);
        emit({s.kind == StmtKind::kBufStoreBytes ? POp::kPutBytes
                                                 : POp::kGetBytes,
              static_cast<std::uint32_t>(off.v),
              static_cast<std::uint32_t>(r.v * 4),
              static_cast<std::uint32_t>(len.v), 0});
        return Status::ok();
      }
      case StmtKind::kIf: {
        TEMPO_ASSIGN_OR_RETURN(c, eval(*s.e0, env));
        if (c.k == SVal::K::kInt) {
          // Static dispatch: the interpretation the specializer removes.
          return spec_block(c.v != 0 ? s.body : s.else_body, env, flow, ret);
        }
        if (c.k != SVal::K::kDyn) return err("condition on a reference");
        return spec_dynamic_if(s, c.dyn, env);
      }
      case StmtKind::kFor:
        return spec_for(s, env, flow, ret);
      case StmtKind::kCall: {
        const Function* callee = program_.find(s.callee);
        if (!callee) return not_found("no function " + s.callee);
        if (callee->params.size() != s.args.size()) {
          return err("arity mismatch calling " + s.callee);
        }
        if (++depth_ > 64) {
          --depth_;
          return err("call depth exceeded");
        }
        Env callee_env;
        for (std::size_t i = 0; i < s.args.size(); ++i) {
          TEMPO_ASSIGN_OR_RETURN(a, eval(*s.args[i], env));
          callee_env[callee->params[i]] = a;
        }
        // Polyvariant inlining: this body is re-specialized for every
        // distinct call context (context sensitivity).
        SVal result;
        Flow cflow = Flow::kContinue;
        Status st = spec_block(callee->body, callee_env, &cflow, &result);
        --depth_;
        TEMPO_RETURN_IF_ERROR(st);
        if (cflow != Flow::kReturned) {
          return err("function " + s.callee + " fell off the end");
        }
        // Static returns: `result` is usually a known constant even when
        // the body's stores were residualized.
        if (!s.var.empty()) env[s.var] = result;
        return Status::ok();
      }
      case StmtKind::kReturn: {
        if (s.e0) {
          TEMPO_ASSIGN_OR_RETURN(v, eval(*s.e0, env));
          *ret = v;
        } else {
          *ret = SVal::of_int(0);
        }
        *flow = Flow::kReturned;
        return Status::ok();
      }
    }
    return err("bad stmt");
  }

  // Dynamic conditional: only guard shapes are residualizable —
  //   if (<dyn cond>) return <const>;
  // The guard op's failure kind encodes the driver return-code
  // convention (kRcXidMismatch -> retry, anything else -> fallback).
  Status spec_dynamic_if(const Stmt& s, const ExprP& cond, Env& env) {
    if (!s.else_body.empty() || s.body.size() != 1 ||
        s.body[0]->kind != StmtKind::kReturn || !s.body[0]->e0 ||
        s.body[0]->e0->kind != ExprKind::kConst) {
      return err("dynamic conditional outside the guard pattern: " +
                 expr_to_string(*cond));
    }

    std::int64_t off, imm;
    if (cond->kind == ExprKind::kBin && cond->op == BinOp::kNe) {
      // load != const  -> header word validation
      if (is_buf_load_const(cond->a, &off) && is_const(cond->b, &imm)) {
        emit({POp::kGuardConstEq, static_cast<std::uint32_t>(off), 0, 0,
              static_cast<std::uint64_t>(imm)});
        return Status::ok();
      }
      // load != xid  -> stale-reply filter
      if (is_buf_load_const(cond->a, &off) &&
          is_var_named(cond->b, kXidVar)) {
        emit({POp::kGuardXid, static_cast<std::uint32_t>(off), 0, 0, 0});
        return Status::ok();
      }
      // inlen != const  -> the §6.2 expected-length guard.  On the fast
      // path the guard holds, so `inlen` becomes static from here on —
      // exactly the paper's manual rewrite, derived automatically.
      if (is_var_named(cond->a, kInlenVar) && is_const(cond->b, &imm)) {
        emit({POp::kGuardLen, 0, 0, 0, static_cast<std::uint64_t>(imm)});
        env[kInlenVar] = SVal::of_int(imm);
        plan_.expected_in = static_cast<std::uint32_t>(imm);
        return Status::ok();
      }
    }
    if (cond->kind == ExprKind::kBin && cond->op == BinOp::kGt &&
        is_buf_load_const(cond->a, &off) && is_const(cond->b, &imm) &&
        imm == 1) {
      emit({POp::kGuardBool, static_cast<std::uint32_t>(off), 0, 0, 0});
      return Status::ok();
    }
    return err("unsupported guard condition: " + expr_to_string(*cond));
  }

  // Loop specialization with the Table 4 unroll policy.
  Status spec_for(const Stmt& s, Env& env, Flow* flow, SVal* ret) {
    TEMPO_ASSIGN_OR_RETURN(from, eval(*s.e0, env));
    TEMPO_ASSIGN_OR_RETURN(to, eval(*s.e1, env));
    if (from.k != SVal::K::kInt || to.k != SVal::K::kInt) {
      return err("loop bounds are dynamic — not plan-eligible");
    }
    const std::int64_t lo = from.v, hi = to.v;
    const std::int64_t n = hi - lo;
    if (n <= 0) return Status::ok();

    auto run_iter = [&](std::int64_t i) -> Status {
      env[s.var] = SVal::of_int(i);
      TEMPO_RETURN_IF_ERROR(spec_block(s.body, env, flow, ret));
      if (*flow == Flow::kReturned) {
        return err("loop body returned during specialization");
      }
      return Status::ok();
    };

    const std::uint32_t k = in_.options.unroll_factor;
    if (k == 0 || n <= static_cast<std::int64_t>(k) ||
        n / static_cast<std::int64_t>(k) < 2) {
      for (std::int64_t i = lo; i < hi; ++i) {
        TEMPO_RETURN_IF_ERROR(run_iter(i));
      }
      return Status::ok();
    }

    const std::int64_t blocks = n / k;

    // Specialize two concrete blocks and check the residual code is
    // affine in the block number.
    const std::size_t mark0 = plan_.instrs.size();
    const std::int64_t handy0 = fields_["x_handy"].v;
    const std::int64_t priv0 = fields_["x_private"].v;
    for (std::int64_t i = lo; i < lo + k; ++i) {
      TEMPO_RETURN_IF_ERROR(run_iter(i));
    }
    const std::size_t mark1 = plan_.instrs.size();
    const std::int64_t handy1 = fields_["x_handy"].v;
    const std::int64_t priv1 = fields_["x_private"].v;
    for (std::int64_t i = lo + k; i < lo + 2 * k; ++i) {
      TEMPO_RETURN_IF_ERROR(run_iter(i));
    }
    const std::size_t mark2 = plan_.instrs.size();

    bool affine = (mark1 - mark0) == (mark2 - mark1);
    std::int64_t d_off = -1, d_word = -1;
    if (affine) {
      for (std::size_t j = 0; j < mark1 - mark0 && affine; ++j) {
        const PInstr& a = plan_.instrs[mark0 + j];
        const PInstr& b = plan_.instrs[mark1 + j];
        if (a.op != b.op || a.b != b.b || a.imm != b.imm) {
          affine = false;
          break;
        }
        const std::int64_t doff = static_cast<std::int64_t>(b.off) - a.off;
        std::int64_t dword;
        switch (a.op) {
          case POp::kPutWord:
          case POp::kGetWord:
          case POp::kSetWordConst:
            dword = static_cast<std::int64_t>(b.a) - a.a;
            break;
          case POp::kPutBytes:
          case POp::kGetBytes:
            dword = (static_cast<std::int64_t>(b.a) - a.a);
            if (dword % 4 != 0) {
              affine = false;
              dword = 0;
            } else {
              dword /= 4;
            }
            break;
          default:
            dword = (a.a == b.a) ? -1 : -2;  // require identical
            if (dword == -2) affine = false;
            dword = -1;
        }
        if (!affine) break;
        if (d_off < 0) {
          d_off = doff;
        } else if (d_off != doff) {
          affine = false;
        }
        if (dword >= 0) {
          if (d_word < 0) {
            d_word = dword;
          } else if (d_word != dword) {
            affine = false;
          }
        }
      }
    }

    // The packed-stride encoding holds 32 bits per stride; a stride that
    // does not round-trip through the shared codec must stay unrolled
    // (truncating here would silently corrupt every loop iteration).
    if (affine && d_off >= 0 &&
        (d_off > 0xFFFFFFFFll || d_word > 0xFFFFFFFFll)) {
      affine = false;
    }
    if (!affine || d_off < 0) {
      // Bail out: the two concrete blocks stay as straight-line code;
      // keep unrolling the remaining iterations the same way.
      for (std::int64_t i = lo + 2 * k; i < hi; ++i) {
        TEMPO_RETURN_IF_ERROR(run_iter(i));
      }
      return Status::ok();
    }
    if (d_word < 0) d_word = 0;

    // Collapse block 1 into a kLoop over block 0.
    std::vector<PInstr> body(plan_.instrs.begin() +
                                 static_cast<std::ptrdiff_t>(mark0),
                             plan_.instrs.begin() +
                                 static_cast<std::ptrdiff_t>(mark1));
    plan_.instrs.resize(mark0);
    PInstr loop;
    loop.op = POp::kLoop;
    loop.a = static_cast<std::uint32_t>(blocks);
    loop.b = static_cast<std::uint32_t>(body.size());
    loop.imm = pack_loop_strides(
        LoopStrides{static_cast<std::uint32_t>(d_off),
                    static_cast<std::uint32_t>(d_word)});
    plan_.instrs.push_back(loop);
    for (auto& ins : body) plan_.instrs.push_back(ins);

    // Fold the stream state forward over the blocks the loop will
    // execute at run time (we concretely executed 2 of `blocks`).
    fields_["x_handy"] =
        SVal::of_int(handy0 + (handy1 - handy0) * blocks);
    fields_["x_private"] =
        SVal::of_int(priv0 + (priv1 - priv0) * blocks);
    max_slot_ = std::max(
        max_slot_,
        static_cast<std::int64_t>(
            body.empty() ? 0
                         : (d_word * (blocks - 1) +
                            // Highest word slot touched in block 0 — by ANY
                            // slot-touching op.  Bulk copies carry a byte
                            // offset in `a` and span pad4(b) bytes, so a
                            // word-only scan undercounted words_needed for
                            // loops over opaque/bulk elements and the
                            // executor then indexed past the caller's
                            // words span (found by the JIT differential
                            // audit).
                            [&] {
                              std::int64_t m = 0;
                              for (const auto& ins : body) {
                                switch (ins.op) {
                                  case POp::kPutWord:
                                  case POp::kGetWord:
                                  case POp::kSetWordConst:
                                    m = std::max<std::int64_t>(m, ins.a);
                                    break;
                                  case POp::kPutBytes:
                                  case POp::kGetBytes:
                                    m = std::max<std::int64_t>(
                                        m, ins.a / 4 +
                                               static_cast<std::int64_t>(
                                                   xdr_pad4(ins.b)) /
                                                   4 -
                                               1);
                                    break;
                                  default:
                                    break;
                                }
                              }
                              return m;
                            }())));

    // Remainder iterations, unrolled after the loop.
    for (std::int64_t i = lo + blocks * k; i < hi; ++i) {
      TEMPO_RETURN_IF_ERROR(run_iter(i));
    }
    return Status::ok();
  }

  void emit(PInstr ins) { plan_.instrs.push_back(ins); }

  const Program& program_;
  const SpecInput& in_;
  std::map<std::string, SVal> fields_;  // the partially-static xdrs record
  Plan plan_;
  std::int64_t max_slot_ = -1;
  int depth_ = 0;
};

}  // namespace

Result<Plan> specialize(const Program& program, const std::string& entry,
                        const SpecInput& input) {
  Specializer spec(program, input);
  return spec.run(entry);
}

}  // namespace tempo::pe
