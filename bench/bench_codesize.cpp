// Table 3: size of the client code, generic vs specialized, per array
// size.
//
// The paper measures SunOS object-file bytes: generic client 20004 bytes
// flat; specialized clients grow from 24340 (20 ints) to 111348 (2000
// ints) because the array loops unroll.  Our analogs: the generic IR
// corpus under a compiled-code size model, and the residual plans'
// instruction bytes (client encode + reply decode, like the paper's
// client-side objects).  The shape to reproduce: specialized > generic
// at every size, and specialized grows linearly with the array size
// while generic stays flat.
#include "bench/bench_util.h"

namespace tempo::bench {
namespace {

void run() {
  print_header("Table 3: Size of the client code (in bytes)");

  const core::SpecializedInterface probe = make_iface(20);
  const std::size_t generic = probe.generic_code_bytes();
  std::printf("%-28s %10zu (flat across array sizes)\n",
              "generic client code", generic);

  std::printf("%-28s", "specialized client code");
  for (std::uint32_t n : paper_sizes()) {
    core::SpecializedInterface iface = make_iface(n);
    const std::size_t spec = iface.encode_call_plan().code_bytes() +
                             iface.decode_reply_plan().code_bytes() +
                             generic;  // fallback path ships too
    std::printf(" %10zu", spec);
  }
  std::printf("\n%-28s", "  (array size)");
  for (std::uint32_t n : paper_sizes()) std::printf(" %10u", n);
  std::printf("\n");

  // Shape checks: monotone growth, always above generic.
  std::size_t prev = 0;
  bool monotone = true, above = true;
  for (std::uint32_t n : paper_sizes()) {
    core::SpecializedInterface iface = make_iface(n);
    const std::size_t spec = iface.encode_call_plan().code_bytes() +
                             iface.decode_reply_plan().code_bytes() +
                             generic;
    monotone &= spec > prev;
    above &= spec > generic;
    prev = spec;
  }
  std::printf("\nspecialized > generic at every size: %s\n",
              above ? "yes (paper: yes)" : "NO");
  std::printf("specialized grows with array size:   %s\n",
              monotone ? "yes (paper: yes)" : "NO");

  // Partial unrolling (Table 4's configuration) caps the growth.
  print_header("Residual code bytes vs unroll factor (array size 2000)");
  for (std::uint32_t factor : {0u, 1u, 8u, 50u, 250u}) {
    core::SpecializedInterface iface = make_iface(2000, factor);
    std::printf("unroll=%-8s encode plan bytes: %8zu\n",
                factor == 0 ? "full" : std::to_string(factor).c_str(),
                iface.encode_call_plan().code_bytes());
  }
}

}  // namespace
}  // namespace tempo::bench

int main() {
  tempo::bench::run();
  return 0;
}
