// SpecCache — process-wide memo table for SpecializedInterface.
//
// Building a specialization runs the whole Tempo pipeline (IR corpus,
// binding-time analysis, partial evaluation of four entry points); at
// tens of microseconds per build it must be amortized when a server
// handles many interfaces and many distinct array shapes.  The cache
// keys on everything the residual plans depend on:
//
//   (prog, vers, proc, arg_counts, res_counts, unroll_factor,
//    buffer_bytes)
//
// and returns shared, immutable SpecializedInterface instances.
//
// Concurrency contract: get_or_build() is safe from any number of
// threads and builds each key AT MOST ONCE — the first thread to miss
// inserts an in-flight marker and builds outside the lock; later
// threads for the same key block until the build completes and share
// the result (their accesses count as hits).
//
// Bounded memory: ready entries live on an LRU list capped at
// `capacity`; inserting past the cap evicts the least-recently-used
// entry (eviction only drops the cache's reference — callers holding a
// SpecHandle keep their interface alive).  A server exposed to
// adversarial count diversity therefore degrades to rebuild churn, not
// OOM.  Failed builds (plan-ineligible types) are negative-cached so a
// hostile client cannot force a pipeline run per request.
//
// Sharding: with the event-driven runtime pushing tens of thousands of
// lookups per second from many workers, one mutex around the whole
// table becomes the next bottleneck.  The cache is therefore split into
// `shards` independently-locked sub-caches; a key's hash picks its
// shard, so "at most one build per key" still holds (a key lives in
// exactly one shard) and shards never contend with each other.  The
// total capacity is divided evenly across shards (each gets at least
// 1 slot); stats()/size() aggregate.  The default of 1 shard preserves
// the exact global-LRU semantics the single-lock cache had.
//
// Hot-spec slot (RCU-style): real servers are wildly skewed — one array
// shape takes ~99.99% of requests — so even the sharded lock is pure
// overhead on that key.  The cache therefore publishes the hottest
// (key, interface) pair through an atomic<shared_ptr> read before any
// lock is taken: a fast-path hit is one atomic load plus a key compare,
// zero mutexes.  Publication is driven by shard-local hit-count epochs:
// every kHotPublishEpoch LOCKED hits an entry accumulates (hot-slot
// hits don't count — a published entry stops re-publishing itself), it
// is re-published, so whichever key is actually taking the locked
// traffic claims the slot and a workload shift self-corrects.  Readers
// of a stale slot are still correct — entries are immutable and keyed,
// a mismatch just falls through to the shard — and the slot keeps its
// interface alive across LRU eviction exactly like any caller-held
// SpecHandle (served hits count in stats().hot_hits; stats().hits
// includes them).
#pragma once

#include <cstdint>
#include <condition_variable>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "core/stubspec.h"
#include "idl/types.h"

namespace tempo::core {

struct SpecKey {
  std::uint32_t prog = 0;
  std::uint32_t vers = 0;
  std::uint32_t proc = 0;
  std::vector<std::uint32_t> arg_counts;
  std::vector<std::uint32_t> res_counts;
  std::uint32_t unroll_factor = 0;
  std::uint32_t buffer_bytes = 0;

  friend bool operator==(const SpecKey&, const SpecKey&) = default;
};

struct SpecKeyHash {
  std::size_t operator()(const SpecKey& k) const;
};

struct SpecCacheStats {
  std::int64_t hits = 0;        // served from a ready or in-flight entry
                                // (INCLUDES hot-slot hits)
  std::int64_t misses = 0;      // builds initiated (one per distinct key)
  std::int64_t evictions = 0;   // LRU entries dropped at capacity
  std::int64_t build_failures = 0;
  std::int64_t hot_hits = 0;    // subset of hits served lock-free from
                                // the published hot-spec slot
  std::int64_t jit_stubs = 0;   // native stubs compiled across all builds
                                // (up to 4 per interface; 0 with the
                                // TEMPO_PLAN_JIT knob off)
  std::int64_t verify_rejects = 0;  // subset of build_failures where the
                                    // plan verifier's admission pass
                                    // rejected a residual plan
                                    // (TEMPO_PLAN_VERIFY)
};

using SpecHandle = std::shared_ptr<const SpecializedInterface>;

class SpecCache {
 public:
  // Locked hits an entry must accumulate between publications of the
  // hot-spec slot.  Small enough that a hot key claims the slot within
  // microseconds of real traffic; large enough that a uniform workload
  // does not thrash the slot.
  static constexpr std::int64_t kHotPublishEpoch = 64;
  // Every kHotRefreshPeriod-th hot-slot hit deliberately takes the
  // locked path instead, to re-touch the hot key's shard LRU entry.
  // Without this the hottest key — served lock-free, never touched —
  // becomes the LRU-COLDEST entry in its shard and is preferentially
  // evicted under capacity pressure, turning a later slot displacement
  // into a full rebuild of the most expensive possible miss.
  static constexpr std::int64_t kHotRefreshPeriod = 256;

  explicit SpecCache(std::size_t capacity = 128, std::size_t shards = 1);

  // Returns the interface for the key derived from
  // (prog, vers, proc.number, config), building it at most once.
  // A non-OK result reproduces the (cached) build failure.
  // no_thread_safety_analysis: the shard lock is released mid-scope
  // through a unique_lock (build runs outside it), a dynamic pattern
  // the scope-based checker cannot follow.
  Result<SpecHandle> get_or_build(const idl::ProcDef& proc,
                                  std::uint32_t prog, std::uint32_t vers,
                                  const SpecConfig& config)
      TEMPO_NO_THREAD_SAFETY_ANALYSIS;

  SpecCacheStats stats() const;      // aggregated across shards
  std::size_t size() const;          // ready entries currently cached
  std::size_t capacity() const { return capacity_; }
  std::size_t shard_count() const { return shards_.size(); }
  // Per-shard counters, for tests and shard-balance diagnostics.
  SpecCacheStats shard_stats(std::size_t shard) const;
  std::size_t shard_size(std::size_t shard) const;

 private:
  struct Entry {
    bool ready = false;
    SpecHandle iface;                 // null on build failure
    Status error = Status::ok();
    std::list<SpecKey>::iterator lru_it{};
    bool in_lru = false;
    std::int64_t locked_hits = 0;     // drives hot-slot publication
  };

  // What the hot slot publishes: an immutable (key, interface) pair.
  // Readers hold it via shared_ptr, so a concurrent re-publication
  // never invalidates an in-progress fast-path read.
  struct HotSlot {
    SpecKey key;
    SpecHandle iface;
  };

  // One independently-locked sub-cache; a key's hash selects its shard.
  struct Shard {
    mutable std::mutex mu;
    std::condition_variable ready_cv;
    std::unordered_map<SpecKey, std::shared_ptr<Entry>, SpecKeyHash> map
        TEMPO_GUARDED_BY(mu);
    std::list<SpecKey> lru TEMPO_GUARDED_BY(mu);  // front = most recently
                                                  // used; ready only
    SpecCacheStats stats TEMPO_GUARDED_BY(mu);
    std::size_t capacity = 1;  // set once at construction, then read-only

    void touch_locked(Entry& e, const SpecKey& key) TEMPO_REQUIRES(mu);
    void insert_lru_locked(const std::shared_ptr<Entry>& e,
                           const SpecKey& key) TEMPO_REQUIRES(mu);
  };

  Shard& shard_for(std::size_t hash) {
    return *shards_[hash % shards_.size()];
  }

  const std::size_t capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;

  // The RCU-style hot-spec slot: written rarely (epoch boundaries),
  // read on every lookup before any lock.
  std::atomic<std::shared_ptr<const HotSlot>> hot_{nullptr};
  std::atomic<std::int64_t> hot_hits_{0};
  // Monotonic count of slot reads, driving the periodic LRU refresh
  // (kept separate from hot_hits_ so stats stay exact).
  std::atomic<std::int64_t> hot_ticks_{0};

  // Folds spec_cache.* into the global metrics registry at snapshot
  // time.  Last member: it reads the shards, so it unregisters first.
  common::MetricsRegistry::SourceHandle metrics_source_;
};

}  // namespace tempo::core
