#include "rpc/event_runtime.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <utility>

#include "common/endian.h"
#include "xdr/xdrrec.h"

namespace tempo::rpc {

namespace {

constexpr std::size_t kReadChunk = 64 * 1024;
constexpr int kMaxReadsPerEvent = 4;

}  // namespace

EventServerRuntime::EventServerRuntime(SvcRegistry& registry,
                                       EventServerRuntimeConfig cfg)
    : registry_(registry), cfg_(cfg) {}

EventServerRuntime::~EventServerRuntime() { stop(); }

Status EventServerRuntime::start() {
  if (running_.load(std::memory_order_acquire)) return Status::ok();
  reactor_stop_.store(false, std::memory_order_release);
  workers_stop_.store(false, std::memory_order_release);
  pending_jobs_.store(0, std::memory_order_release);
  udp_sharded_ = false;
  next_conn_shard_ = 0;

  const std::size_t nshards =
      cfg_.reactors < 1 ? 1 : static_cast<std::size_t>(cfg_.reactors);
  shards_.reserve(nshards);
  for (std::size_t i = 0; i < nshards; ++i) {
    shards_.push_back(std::make_unique<Shard>(i, cfg_.force_poll_backend));
    if (!shards_.back()->reactor.ok()) {
      shards_.clear();
      return unavailable("EventServerRuntime: reactor init");
    }
  }

  if (cfg_.enable_udp) {
    if (nshards > 1) {
      // One SO_REUSEPORT socket per shard, all on the same port: the
      // kernel disperses datagrams across the group by flow hash, so
      // each client flow sticks to one shard.
      auto first = std::make_unique<net::UdpSocket>(cfg_.udp_port,
                                                    /*reuseport=*/true);
      if (first && first->ok()) {
        const std::uint16_t port = first->local_addr().port;
        shards_[0]->udp = std::move(first);
        bool all_ok = true;
        for (std::size_t i = 1; i < nshards; ++i) {
          auto sock = std::make_unique<net::UdpSocket>(port,
                                                       /*reuseport=*/true);
          if (!sock->ok()) {
            all_ok = false;
            break;
          }
          shards_[i]->udp = std::move(sock);
        }
        if (all_ok) {
          udp_sharded_ = true;
        } else {
          // Partial group: tear the members down and fall back to one
          // receiving socket below.
          for (auto& s : shards_) s->udp.reset();
        }
      }
    }
    if (!udp_sharded_) {
      // Single-loop mode, or the REUSEPORT fallback: shard 0 is the one
      // receiving shard.  Datagram JOBS still fan out over the shared
      // worker pool, so dispatch parallelism survives — only the recv
      // syscalls stay on one loop.
      shards_[0]->udp = std::make_unique<net::UdpSocket>(cfg_.udp_port);
    }
    if (!shards_[0]->udp->ok()) {
      shards_.clear();
      return unavailable("EventServerRuntime: UDP bind failed");
    }
    for (auto& sp : shards_) {
      if (!sp->udp) continue;
      Status st = sp->udp->set_nonblocking(true);
      if (!st.is_ok()) {
        shards_.clear();
        return st;
      }
      // The shard threads are not running yet, so registration from the
      // caller's thread is safe.
      Shard* s = sp.get();
      s->reactor.add(s->udp->fd(), net::kEventRead,
                     [this, s](unsigned) { on_udp_readable(*s); });
    }
  }
  if (cfg_.enable_tcp) {
    tcp_ = std::make_unique<net::TcpListener>(cfg_.tcp_port);
    if (!tcp_->ok()) {
      shards_.clear();
      tcp_.reset();
      return unavailable("EventServerRuntime: TCP bind failed");
    }
    // Non-blocking listener: a connection aborted between readiness and
    // ::accept must surface as "nothing to accept", not block the loop.
    Status st = tcp_->set_nonblocking(true);
    if (!st.is_ok()) {
      shards_.clear();
      tcp_.reset();
      return st;
    }
    shards_[0]->reactor.add(tcp_->fd(), net::kEventRead,
                            [this](unsigned) { on_accept_ready(); });
  }

  const int workers = cfg_.workers < 1 ? 1 : cfg_.workers;
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  for (auto& sp : shards_) {
    Shard* s = sp.get();
    s->thread = std::thread([this, s] { shard_loop(*s); });
  }
  running_.store(true, std::memory_order_release);
  return Status::ok();
}

void EventServerRuntime::stop() {
  if (!running_.load(std::memory_order_acquire)) return;

  // Phase 1: stop reading new requests on EVERY shard (each closure
  // runs on its own shard's thread).  Shard 0 also drops the listener.
  for (auto& sp : shards_) {
    Shard* s = sp.get();
    s->reactor.post([this, s] { close_intake(*s); });
  }

  // Phase 2: bounded drain — queued requests finish and their replies
  // are handed back to the still-running shard reactors.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(cfg_.drain_timeout_ms);
  while (pending_jobs_.load(std::memory_order_acquire) > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Past the deadline the bound wins over the drain: drop whatever is
  // still queued so stop() cannot be held hostage by a slow handler.
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (!queue_.empty()) {
      stats_.overload_drops += static_cast<std::int64_t>(queue_.size());
      pending_jobs_.fetch_sub(static_cast<std::int64_t>(queue_.size()),
                              std::memory_order_acq_rel);
      queue_.clear();
    }
  }

  // Phase 3: workers down (only in-flight jobs remain).
  workers_stop_.store(true, std::memory_order_release);
  queue_cv_.notify_all();
  for (auto& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();

  // Phase 4: every shard down; each loop flushes and closes its own
  // connections on the way out.  A drain that only covered shard 0
  // would orphan the replies buffered on shards 1..N-1.
  reactor_stop_.store(true, std::memory_order_release);
  for (auto& sp : shards_) sp->reactor.wakeup();
  for (auto& sp : shards_) {
    if (sp->thread.joinable()) sp->thread.join();
  }

  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    queue_.clear();
  }
  shards_.clear();
  tcp_.reset();
  running_.store(false, std::memory_order_release);
}

net::Addr EventServerRuntime::udp_addr() const {
  // All members of the reuseport group share one address; shard 0 is
  // also the socket of the fallback mode.
  if (shards_.empty() || !shards_[0]->udp) return net::Addr{};
  return shards_[0]->udp->local_addr();
}

net::Addr EventServerRuntime::tcp_addr() const {
  return tcp_ ? tcp_->local_addr() : net::Addr{};
}

const char* EventServerRuntime::backend() const {
  // Only a live shard knows which backend its reactor actually got
  // (epoll_create1 can fail and fall back); don't guess.
  return shards_.empty() ? "none" : shards_[0]->reactor.backend();
}

// ------------------------------------------------------ shard threads ---

void EventServerRuntime::shard_loop(Shard& s) {
  while (!reactor_stop_.load(std::memory_order_acquire)) {
    // With conns parked on a full worker queue, tick instead of
    // blocking so their records are re-dispatched as the queue drains
    // (no fd event or completion may ever fire for them otherwise).
    s.reactor.poll_once(s.stalled_conns.empty() ? -1 : 5);
    retry_stalled(s);
  }
  // Run straggler completions, give each connection one last
  // non-blocking flush, then close everything.  flush_conn can erase
  // entries, so iterate over a snapshot of ids.
  s.reactor.poll_once(0);
  std::vector<std::uint64_t> ids;
  ids.reserve(s.conns.size());
  for (auto& [id, conn] : s.conns) ids.push_back(id);
  for (auto id : ids) {
    auto it = s.conns.find(id);
    if (it != s.conns.end()) flush_conn(s, it->second);
  }
  for (auto& [id, conn] : s.conns) s.reactor.remove(conn.sock->fd());
  s.conns.clear();
}

void EventServerRuntime::close_intake(Shard& s) {
  if (s.intake_closed) return;
  s.intake_closed = true;
  if (s.udp) s.reactor.remove(s.udp->fd());
  if (s.index == 0 && tcp_) s.reactor.remove(tcp_->fd());
  // Records parsed but not yet handed to the pool are dropped here so
  // the stop() drain has a fixed amount of work: exactly the jobs the
  // pool already holds.
  s.stalled_conns.clear();
  std::vector<std::uint64_t> ids;
  ids.reserve(s.conns.size());
  for (auto& [id, conn] : s.conns) ids.push_back(id);
  for (auto id : ids) {
    auto it = s.conns.find(id);
    if (it == s.conns.end()) continue;
    it->second.ready_records.clear();
    it->second.stalled = false;
    finish_conn_if_idle(s, it->second);
  }
}

void EventServerRuntime::on_udp_readable(Shard& s) {
  std::vector<net::Datagram> buf = take_batch_buffer();
  const int n = s.udp->recv_many(buf, cfg_.udp_batch);
  if (n <= 0) {
    recycle_batch_buffer(std::move(buf));
    return;
  }
  ++stats_.udp_batches;
  stats_.udp_datagrams += n;
  const int accepted = push_datagram_jobs(s.index, buf, n);
  if (accepted < n) stats_.overload_drops += n - accepted;
  recycle_batch_buffer(std::move(buf));
}

void EventServerRuntime::on_accept_ready() {
  // Runs on shard 0, which owns the listener.  Accept everything
  // pending; the listener is level-triggered so a partial drain would
  // re-fire anyway, but batching saves wakeups.
  Shard& s0 = *shards_[0];
  const std::size_t nshards = shards_.size();
  for (;;) {
    auto conn = tcp_->accept(/*timeout_ms=*/0);
    if (!conn.is_ok()) return;
    ++stats_.tcp_connections;
    // Round-robin assignment (not fd % N: the kernel reuses the lowest
    // free fd, so under connection churn fd-hashing pins new conns to
    // whichever residues happen to be free — round-robin from the
    // single-threaded accept path is exactly even, no sync needed).
    const std::size_t target = next_conn_shard_++ % nshards;
    if (target == 0) {
      adopt_conn(s0, (*conn)->release());
    } else {
      // Hand the connection to its owning shard; from the post on,
      // only that shard's thread ever touches it.  The closure keeps
      // OWNERSHIP of the socket (shared_ptr, since std::function must
      // be copyable) until adopt: if the shard's loop exits before
      // running it — a stop() racing this accept — destruction of the
      // un-run closure still closes the fd instead of leaking it.
      Shard* t = shards_[target].get();
      std::shared_ptr<net::TcpConn> handoff(std::move(*conn));
      t->reactor.post(
          [this, t, handoff] { adopt_conn(*t, handoff->release()); });
    }
  }
}

void EventServerRuntime::adopt_conn(Shard& s, int fd) {
  auto sock = std::make_unique<net::TcpConn>(fd);
  // A handoff can race shutdown: if this shard already closed intake,
  // the connection is dropped here (the unique_ptr closes the fd).
  if (s.intake_closed) return;
  // Must be non-blocking: POLLOUT only promises SOME send-buffer
  // space, and a blocking send() of a large reply would park the
  // reactor thread on a slow reader.
  if (!sock->set_nonblocking(true).is_ok()) return;
  const std::uint64_t id = s.next_conn_id++;
  Conn c;
  c.id = id;
  c.shard = s.index;
  c.sock = std::move(sock);
  const int cfd = c.sock->fd();
  Shard* sp = &s;
  auto [it, inserted] = s.conns.emplace(id, std::move(c));
  if (!inserted ||
      !s.reactor.add(cfd, net::kEventRead, [this, sp, id](unsigned events) {
        on_conn_event(*sp, id, events);
      })) {
    s.conns.erase(id);
  }
}

void EventServerRuntime::on_conn_event(Shard& s, std::uint64_t id,
                                       unsigned events) {
  // read_conn and flush_conn can both destroy the connection (protocol
  // violation, write error); re-resolve the map entry after each.
  auto it = s.conns.find(id);
  if (it == s.conns.end()) return;
  if (events & net::kEventRead) read_conn(s, it->second);
  it = s.conns.find(id);
  if (it == s.conns.end()) return;
  if (events & net::kEventWrite) flush_conn(s, it->second);
  it = s.conns.find(id);
  if (it == s.conns.end()) return;
  dispatch_ready(s, it->second);
  finish_conn_if_idle(s, it->second);
}

void EventServerRuntime::read_conn(Shard& s, Conn& c) {
  if (c.peer_eof) return;
  std::uint8_t chunk[kReadChunk];
  for (int i = 0; i < kMaxReadsPerEvent; ++i) {
    auto r = c.sock->read_some(MutableByteSpan(chunk, sizeof(chunk)),
                               /*timeout_ms=*/0);
    if (!r.is_ok()) {
      if (r.status().code() != StatusCode::kTimeout) c.peer_eof = true;
      return;
    }
    if (!parse_records(c, ByteSpan(chunk, *r))) {
      ++stats_.conn_resets;
      destroy_conn(s, c.id);
      return;
    }
  }
}

bool EventServerRuntime::parse_records(Conn& c, ByteSpan chunk) {
  while (!chunk.empty()) {
    if (c.frag_header_pending) {
      const std::size_t need = 4 - c.header_partial.size();
      const std::size_t take = std::min(need, chunk.size());
      c.header_partial.insert(c.header_partial.end(), chunk.begin(),
                              chunk.begin() + static_cast<std::ptrdiff_t>(
                                                  take));
      chunk = chunk.subspan(take);
      if (c.header_partial.size() < 4) return true;
      const std::uint32_t word = load_be32(c.header_partial.data());
      c.header_partial.clear();
      c.last_frag = (word & xdr::XdrRec::kLastFragFlag) != 0;
      c.frag_remaining = word & ~xdr::XdrRec::kLastFragFlag;
      c.frag_header_pending = false;
      if (c.record.size() + c.frag_remaining > cfg_.max_record_bytes) {
        return false;  // oversized record: cut the peer off
      }
    }
    const std::size_t take =
        std::min<std::size_t>(c.frag_remaining, chunk.size());
    c.record.insert(c.record.end(), chunk.begin(),
                    chunk.begin() + static_cast<std::ptrdiff_t>(take));
    chunk = chunk.subspan(take);
    c.frag_remaining -= static_cast<std::uint32_t>(take);
    if (c.frag_remaining == 0) {
      c.frag_header_pending = true;
      if (c.last_frag) {
        c.last_frag = false;
        if (!c.record.empty()) {
          c.ready_records.push_back(std::move(c.record));
        }
        c.record = Bytes();
      }
    }
  }
  return true;
}

void EventServerRuntime::dispatch_ready(Shard& s, Conn& c) {
  // One request of a connection in flight at a time: replies go back in
  // call order, matching the threaded runtime's stream semantics.
  while (!c.busy && !c.ready_records.empty()) {
    Job job = TcpRequestJob{s.index, c.id, std::move(c.ready_records.front())};
    if (!push_job(job, /*droppable=*/false)) {
      // Queue full: put the record back and park the conn on the
      // stalled list; shard_loop ticks until it re-dispatches (never
      // block the reactor thread).
      c.ready_records.front() = std::move(std::get<TcpRequestJob>(job).record);
      if (!c.stalled) {
        c.stalled = true;
        s.stalled_conns.push_back(c.id);
      }
      return;
    }
    c.ready_records.pop_front();
    c.busy = true;
  }
}

void EventServerRuntime::retry_stalled(Shard& s) {
  if (s.stalled_conns.empty()) return;
  std::vector<std::uint64_t> retry;
  retry.swap(s.stalled_conns);
  for (auto id : retry) {
    auto it = s.conns.find(id);
    if (it == s.conns.end()) continue;  // conn died while parked
    it->second.stalled = false;
    dispatch_ready(s, it->second);  // re-parks itself if still full
    auto again = s.conns.find(id);
    if (again != s.conns.end()) finish_conn_if_idle(s, again->second);
  }
}

void EventServerRuntime::flush_conn(Shard& s, Conn& c) {
  while (c.out_off < c.out_buf.size()) {
    auto r = c.sock->write_some(
        ByteSpan(c.out_buf.data() + c.out_off, c.out_buf.size() - c.out_off),
        /*timeout_ms=*/0);
    if (!r.is_ok()) {
      if (r.status().code() != StatusCode::kTimeout) {
        ++stats_.conn_resets;
        destroy_conn(s, c.id);
      } else {
        // Socket full: the peer is not keeping up.  The leftover waits
        // in out_buf for writability; count the stall.
        ++stats_.write_stalls;
      }
      return;
    }
    c.out_off += *r;
  }
  c.out_buf.clear();
  c.out_off = 0;
}

void EventServerRuntime::finish_conn_if_idle(Shard& s, Conn& c) {
  const bool out_pending = c.out_off < c.out_buf.size();
  if (c.peer_eof && !c.busy && c.ready_records.empty() && !out_pending) {
    destroy_conn(s, c.id);
    return;
  }
  unsigned want = 0;
  // Backpressure: stop reading a conn whose record backlog is full; TCP
  // flow control stalls the peer until dispatch catches up.
  if (!c.peer_eof && !s.intake_closed &&
      c.ready_records.size() < cfg_.max_pipelined_records) {
    want |= net::kEventRead;
  }
  if (out_pending) want |= net::kEventWrite;
  if (want == 0 && !c.busy && c.ready_records.empty()) {
    // Intake is closed and nothing is queued: the connection can never
    // make progress again.
    destroy_conn(s, c.id);
    return;
  }
  set_conn_interest(s, c, want);
}

void EventServerRuntime::destroy_conn(Shard& s, std::uint64_t id) {
  auto it = s.conns.find(id);
  if (it == s.conns.end()) return;
  s.reactor.remove(it->second.sock->fd());
  s.conns.erase(it);  // unique_ptr closes the socket
}

void EventServerRuntime::set_conn_interest(Shard& s, Conn& c,
                                           unsigned interest) {
  if (c.interest == interest) return;
  if (s.reactor.set_interest(c.sock->fd(), interest)) {
    c.interest = interest;
  }
}

void EventServerRuntime::on_reply(Shard& s, std::uint64_t conn_id,
                                  Bytes framed) {
  auto it = s.conns.find(conn_id);
  if (it != s.conns.end()) {
    Conn& c = it->second;
    c.busy = false;
    if (!framed.empty()) {
      if (c.out_buf.size() - c.out_off + framed.size() >
          cfg_.max_write_buffer) {
        ++stats_.conn_resets;
        destroy_conn(s, conn_id);
        pending_jobs_.fetch_sub(1, std::memory_order_acq_rel);
        return;
      }
      if (c.out_buf.empty()) {
        // Common case (peer keeping up): adopt the worker's buffer
        // outright instead of copying it into the write buffer.
        c.out_buf = std::move(framed);
        c.out_off = 0;
      } else {
        c.out_buf.insert(c.out_buf.end(), framed.begin(), framed.end());
      }
      flush_conn(s, c);
    }
    auto again = s.conns.find(conn_id);
    if (again != s.conns.end()) {
      dispatch_ready(s, again->second);
      finish_conn_if_idle(s, again->second);
    }
  }
  pending_jobs_.fetch_sub(1, std::memory_order_acq_rel);
}

// ------------------------------------------------------- worker side ---

bool EventServerRuntime::push_job(Job& job, bool droppable) {
  (void)droppable;  // both kinds fail fast; the reactor never blocks
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (queue_.size() >= cfg_.queue_capacity) return false;
    queue_.push_back(std::move(job));
  }
  pending_jobs_.fetch_add(1, std::memory_order_acq_rel);
  queue_cv_.notify_one();
  return true;
}

int EventServerRuntime::push_datagram_jobs(std::size_t shard,
                                           std::vector<net::Datagram>& batch,
                                           int n) {
  int accepted = 0;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    while (accepted < n && queue_.size() < cfg_.queue_capacity) {
      auto& d = batch[static_cast<std::size_t>(accepted)];
      queue_.push_back(UdpDatagramJob{shard, d.src, std::move(d.payload),
                                      d.len});
      ++accepted;
    }
  }
  if (accepted > 0) {
    pending_jobs_.fetch_add(accepted, std::memory_order_acq_rel);
    queue_cv_.notify_all();
  }
  // Refill the moved-out slots from the payload pool (buffers the
  // workers finished with, still full-size) so the next recv_many
  // neither allocates nor zero-fills.
  {
    std::lock_guard<std::mutex> lock(pool_mu_);
    for (int i = 0; i < accepted && !payload_pool_.empty(); ++i) {
      batch[static_cast<std::size_t>(i)].payload =
          std::move(payload_pool_.back());
      payload_pool_.pop_back();
    }
  }
  return accepted;
}

void EventServerRuntime::worker_loop() {
  // Per-worker reply accumulator: datagram replies collect here and go
  // out in one sendmmsg per originating shard when the queue runs dry,
  // a TCP job interleaves, or a full recvmmsg batch's worth has piled
  // up.  Scheduling stays one-job-per-pop so a burst still fans out
  // across the pool; only the SEND syscall is batched.
  ReplyAccumulator acc;
  acc.per_shard.resize(shards_.size());
  for (;;) {
    Job job{UdpDatagramJob{}};
    bool have_job = false;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      if (acc.total == 0) {
        queue_cv_.wait(lock, [this] {
          return !queue_.empty() ||
                 workers_stop_.load(std::memory_order_acquire);
        });
        if (queue_.empty()) return;  // stopping and drained
      }
      if (!queue_.empty()) {
        job = std::move(queue_.front());
        queue_.pop_front();
        have_job = true;
      }
    }
    if (!have_job) {
      // Unflushed replies and an (momentarily) empty queue: flush now
      // rather than sit on them — this bounds added reply latency to
      // one handler execution.
      flush_udp_replies(acc);
      continue;
    }
    if (auto* d = std::get_if<UdpDatagramJob>(&job)) {
      serve_udp_datagram(*d, acc);
      if (acc.total >= static_cast<std::size_t>(
                           cfg_.udp_batch < 1 ? 1 : cfg_.udp_batch)) {
        flush_udp_replies(acc);
      }
    } else if (auto* t = std::get_if<TcpRequestJob>(&job)) {
      flush_udp_replies(acc);  // don't hold replies across a TCP call
      serve_tcp_request(*t);
    }
  }
}

void EventServerRuntime::serve_udp_datagram(UdpDatagramJob& job,
                                            ReplyAccumulator& acc) {
  // Zero-copy dispatch: the worker exclusively owns the recycled
  // receive payload, so arguments decode in place and the reply encodes
  // straight into a pooled buffer — no scratch memset/memcpy on either
  // side of the hot path.  pending_jobs_ is decremented when the reply
  // actually flushes so stop()'s drain covers the accumulator too.
  Bytes out = take_payload_buffer();
  // Pooled buffers are kMaxDatagramBytes; only a near-max request needs
  // the headroom growth the reply_capacity rule grants everywhere else.
  // Clamp at the UDP payload ceiling: letting a reply encode past what
  // a datagram can physically carry would trade an immediate
  // GARBAGE_ARGS error reply for a silent EMSGSIZE drop and a client
  // timeout.
  const std::size_t cap =
      std::min(reply_capacity(job.len), net::kMaxUdpPayloadBytes);
  if (out.size() < cap) out.resize(cap);
  const std::size_t n =
      registry_.handle_request(ByteSpan(job.payload.data(), job.len),
                               MutableByteSpan(out.data(), cap));
  recycle_payload(std::move(job.payload));
  if (n == 0) {
    recycle_payload(std::move(out));
    pending_jobs_.fetch_sub(1, std::memory_order_acq_rel);
    return;
  }
  acc.per_shard[job.shard].push_back(UdpReply{job.src, std::move(out), n});
  ++acc.total;
}

void EventServerRuntime::flush_udp_replies(ReplyAccumulator& acc) {
  if (acc.total == 0) return;
  // Reused per worker thread: the flush path, like the receive path,
  // must not allocate in steady state.
  thread_local std::vector<net::OutDatagram> msgs;
  for (std::size_t si = 0; si < acc.per_shard.size(); ++si) {
    auto& bucket = acc.per_shard[si];
    if (bucket.empty()) continue;
    Shard* shard = shards_[si].get();
    const int total = static_cast<int>(bucket.size());
    msgs.resize(bucket.size());
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      msgs[i].dst = bucket[i].dst;
      msgs[i].payload = ByteSpan(bucket[i].buf.data(), bucket[i].len);
    }
    ++stats_.udp_reply_batches;
    const int sent = shard->udp->send_many(msgs.data(), total);
    if (sent < total) {
      // The kernel refused the tail (EWOULDBLOCK on the non-blocking
      // socket, ENOBUFS, ...).  Retry once on the owning shard's
      // reactor thread instead of dropping silently; what it still
      // refuses is counted.
      stats_.reply_send_retries += total - sent;
      std::vector<UdpReply> tail(
          std::make_move_iterator(bucket.begin() + sent),
          std::make_move_iterator(bucket.end()));
      shard->reactor.post([this, shard, tail = std::move(tail)]() mutable {
        for (auto& r : tail) {
          if (!shard->udp->send_to(r.dst, ByteSpan(r.buf.data(), r.len))
                   .is_ok()) {
            ++stats_.reply_send_failures;
          }
          recycle_payload(std::move(r.buf));
        }
      });
    }
    for (int i = 0; i < sent; ++i) {
      recycle_payload(std::move(bucket[static_cast<std::size_t>(i)].buf));
    }
    pending_jobs_.fetch_sub(total, std::memory_order_acq_rel);
    bucket.clear();
  }
  acc.total = 0;
}

void EventServerRuntime::serve_tcp_request(TcpRequestJob& job) {
  // The record is a complete call message in one contiguous buffer, so
  // the same zero-copy span path as UDP serves it — arguments decode in
  // place (residual plans can XDR_INLINE them, unlike an xdrrec stream)
  // and the reply encodes directly after the 4-byte record mark in a
  // per-thread frame scratch.  TCP replies are not bounded by the
  // request (a read-style proc turns a 100-byte call into a big blob),
  // so the scratch provisions kMaxStreamReplyBytes like every other
  // stream-path adapter — once per worker thread, not per request —
  // and additionally scales with the record so a non-default
  // max_record_bytes config keeps its echo-style replies too.
  thread_local Bytes scratch;
  const std::size_t cap =
      std::max(kMaxStreamReplyBytes, reply_capacity(job.record.size()));
  if (scratch.size() < 4 + cap) scratch.resize(4 + cap);
  const std::size_t len = registry_.handle_request(
      ByteSpan(job.record.data(), job.record.size()),
      MutableByteSpan(scratch.data() + 4, cap));
  Bytes framed;
  if (len > 0) {
    ++stats_.tcp_calls;
    store_be32(scratch.data(),
               xdr::XdrRec::kLastFragFlag | static_cast<std::uint32_t>(len));
    framed.assign(scratch.begin(),
                  scratch.begin() + static_cast<std::ptrdiff_t>(4 + len));
  }
  // Hand the reply (or just the busy-clear) back to the connection's
  // owning shard, whose reactor thread owns all its state.
  // pending_jobs_ is decremented by on_reply so stop()'s drain covers
  // the write handoff too.
  Shard* shard = shards_[job.shard].get();
  shard->reactor.post([this, shard, conn_id = job.conn_id,
                       framed = std::move(framed)]() mutable {
    on_reply(*shard, conn_id, std::move(framed));
  });
}

std::vector<net::Datagram> EventServerRuntime::take_batch_buffer() {
  std::lock_guard<std::mutex> lock(pool_mu_);
  if (batch_pool_.empty()) return {};
  auto buf = std::move(batch_pool_.back());
  batch_pool_.pop_back();
  return buf;
}

void EventServerRuntime::recycle_batch_buffer(std::vector<net::Datagram> buf) {
  std::lock_guard<std::mutex> lock(pool_mu_);
  if (batch_pool_.size() < 8) batch_pool_.push_back(std::move(buf));
}

Bytes EventServerRuntime::take_payload_buffer() {
  {
    std::lock_guard<std::mutex> lock(pool_mu_);
    if (!payload_pool_.empty()) {
      Bytes buf = std::move(payload_pool_.back());
      payload_pool_.pop_back();
      if (buf.size() >= net::kMaxDatagramBytes) return buf;
      // A short buffer can only enter the pool through a code change;
      // grow it rather than propagate a truncated reply cap.
      buf.resize(net::kMaxDatagramBytes);
      return buf;
    }
  }
  return Bytes(net::kMaxDatagramBytes);
}

void EventServerRuntime::recycle_payload(Bytes payload) {
  if (payload.empty()) return;
  std::lock_guard<std::mutex> lock(pool_mu_);
  if (payload_pool_.size() < 64) payload_pool_.push_back(std::move(payload));
}

}  // namespace tempo::rpc
