#include "kv/store.h"

namespace tempo::kv {

MvccStore::~MvccStore() {
  for (auto& [key, head] : map_) unlink_chain(std::move(head));
}

void MvccStore::unlink_chain(std::shared_ptr<const Version> head) {
  while (head) {
    std::shared_ptr<const Version> next =
        std::move(const_cast<Version*>(head.get())->prev);
    head = std::move(next);  // frees exactly one node per iteration
  }
}

MvccStore::Snapshot& MvccStore::Snapshot::operator=(Snapshot&& o) noexcept {
  if (this != &o) {
    release();
    store_ = o.store_;
    seq_ = o.seq_;
    o.store_ = nullptr;
  }
  return *this;
}

std::optional<std::string> MvccStore::Snapshot::get(
    std::string_view key) const {
  if (!store_) return std::nullopt;
  return store_->read_at(seq_, key);
}

void MvccStore::Snapshot::release() {
  if (store_) {
    store_->unregister_snapshot(seq_);
    store_ = nullptr;
  }
}

bool MvccStore::apply_put(std::uint64_t seq, std::string_view key,
                          std::string_view value) {
  return apply(seq, key, value, /*tombstone=*/false);
}

bool MvccStore::apply_del(std::uint64_t seq, std::string_view key) {
  return apply(seq, key, {}, /*tombstone=*/true);
}

bool MvccStore::apply(std::uint64_t seq, std::string_view key,
                      std::string_view value, bool tombstone) {
  std::unique_lock<std::shared_mutex> lock(map_mu_);
  if (seq <= last_applied_.load(std::memory_order_relaxed)) {
    stats_.duplicate_applies.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  auto ver = std::make_shared<Version>();
  ver->seq = seq;
  ver->tombstone = tombstone;
  ver->value = std::string(value);
  auto it = map_.find(key);
  if (it == map_.end()) {
    map_.emplace(std::string(key), std::move(ver));
  } else {
    ver->prev = it->second;
    it->second = std::move(ver);
  }
  ++versions_;
  last_applied_.store(seq, std::memory_order_release);
  stats_.applied.fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::uint64_t MvccStore::put(std::string_view key, std::string_view value) {
  std::unique_lock<std::shared_mutex> lock(map_mu_);
  const std::uint64_t seq = last_applied_.load(std::memory_order_relaxed) + 1;
  auto ver = std::make_shared<Version>();
  ver->seq = seq;
  ver->value = std::string(value);
  auto it = map_.find(key);
  if (it == map_.end()) {
    map_.emplace(std::string(key), std::move(ver));
  } else {
    ver->prev = it->second;
    it->second = std::move(ver);
  }
  ++versions_;
  last_applied_.store(seq, std::memory_order_release);
  stats_.applied.fetch_add(1, std::memory_order_relaxed);
  return seq;
}

std::uint64_t MvccStore::del(std::string_view key) {
  std::unique_lock<std::shared_mutex> lock(map_mu_);
  const std::uint64_t seq = last_applied_.load(std::memory_order_relaxed) + 1;
  auto ver = std::make_shared<Version>();
  ver->seq = seq;
  ver->tombstone = true;
  auto it = map_.find(key);
  if (it == map_.end()) {
    map_.emplace(std::string(key), std::move(ver));
  } else {
    ver->prev = it->second;
    it->second = std::move(ver);
  }
  ++versions_;
  last_applied_.store(seq, std::memory_order_release);
  stats_.applied.fetch_add(1, std::memory_order_relaxed);
  return seq;
}

MvccStore::Snapshot MvccStore::snapshot() const {
  // Register BEFORE reading last_applied so a concurrent gc() that has
  // already sampled the snapshot floor cannot slip between the two.
  std::unique_lock<std::mutex> snap_lock(snap_mu_);
  const std::uint64_t seq = last_applied_.load(std::memory_order_acquire);
  open_snapshots_.insert(seq);
  return Snapshot(this, seq);
}

void MvccStore::unregister_snapshot(std::uint64_t seq) const {
  std::unique_lock<std::mutex> lock(snap_mu_);
  auto it = open_snapshots_.find(seq);
  if (it != open_snapshots_.end()) open_snapshots_.erase(it);
}

std::uint64_t MvccStore::oldest_open_snapshot() const {
  std::unique_lock<std::mutex> lock(snap_mu_);
  if (open_snapshots_.empty()) return UINT64_MAX;
  return *open_snapshots_.begin();
}

std::optional<std::string> MvccStore::read_at(std::uint64_t seq,
                                              std::string_view key) const {
  std::shared_lock<std::shared_mutex> lock(map_mu_);
  stats_.snapshot_reads.fetch_add(1, std::memory_order_relaxed);
  auto it = map_.find(key);
  if (it == map_.end()) return std::nullopt;
  for (const Version* v = it->second.get(); v != nullptr;
       v = v->prev.get()) {
    if (v->seq <= seq) {
      if (v->tombstone) return std::nullopt;
      return v->value;
    }
  }
  return std::nullopt;
}

std::optional<std::string> MvccStore::get_latest(std::string_view key) const {
  std::shared_lock<std::shared_mutex> lock(map_mu_);
  auto it = map_.find(key);
  if (it == map_.end()) return std::nullopt;
  const Version* v = it->second.get();
  if (v->tombstone) return std::nullopt;
  return v->value;
}

std::size_t MvccStore::gc() {
  const std::uint64_t floor =
      std::min(last_applied_.load(std::memory_order_acquire),
               oldest_open_snapshot());
  std::size_t reclaimed = 0;
  std::unique_lock<std::shared_mutex> lock(map_mu_);
  for (auto it = map_.begin(); it != map_.end();) {
    // Find the newest version at-or-below the floor: it (or something
    // newer) is what every open snapshot resolves to, so it must stay.
    // Everything strictly older is unreachable.
    std::shared_ptr<const Version> head = it->second;
    const Version* keep = head.get();
    while (keep != nullptr && keep->seq > floor) keep = keep->prev.get();
    if (keep != nullptr && keep->prev != nullptr) {
      for (const Version* v = keep->prev.get(); v != nullptr;
           v = v->prev.get()) {
        ++reclaimed;
      }
      // Version nodes are immutable EXCEPT for this tail cut, which is
      // safe under the exclusive lock: readers resolve chains only
      // while holding the shared lock.
      unlink_chain(std::move(const_cast<Version*>(keep)->prev));
    }
    // A head tombstone at-or-below the floor means every snapshot sees
    // "absent": the entire chain (now length 1) can go.
    if (head->tombstone && head->seq <= floor && head->prev == nullptr) {
      ++reclaimed;
      it = map_.erase(it);
    } else {
      ++it;
    }
  }
  versions_ -= reclaimed;
  stats_.gc_reclaimed.fetch_add(static_cast<std::int64_t>(reclaimed),
                                std::memory_order_relaxed);
  return reclaimed;
}

std::map<std::string, std::string> MvccStore::dump() const {
  std::map<std::string, std::string> out;
  std::shared_lock<std::shared_mutex> lock(map_mu_);
  for (const auto& [key, head] : map_) {
    if (!head->tombstone) out.emplace(key, head->value);
  }
  return out;
}

std::uint64_t MvccStore::digest() const {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  auto mix = [&h](std::string_view s) {
    for (const char c : s) {
      h ^= static_cast<std::uint8_t>(c);
      h *= 1099511628211ull;
    }
    h ^= 0xFFu;  // separator so ("ab","c") != ("a","bc")
    h *= 1099511628211ull;
  };
  for (const auto& [key, value] : dump()) {
    mix(key);
    mix(value);
  }
  return h;
}

std::size_t MvccStore::key_count() const {
  std::shared_lock<std::shared_mutex> lock(map_mu_);
  return map_.size();
}

std::size_t MvccStore::version_count() const {
  std::shared_lock<std::shared_mutex> lock(map_mu_);
  return versions_;
}

}  // namespace tempo::kv
