// Concrete IR interpreter.
//
// Runs the generic corpus code with fully concrete inputs.  Two roles:
//  * reference semantics — the specializer soundness property tests
//    compare plan output against this interpreter's output,
//  * the "original Sun RPC executing on the simulated IPX" — while
//    interpreting it reports CostEvents (calls, dispatch tests, overflow
//    checks, ALU work, buffer traffic) which the cost model converts to
//    virtual time for the Table 1/2 ipx-sim columns.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>

#include "common/bytes.h"
#include "common/costmodel.h"
#include "common/status.h"
#include "pe/ir.h"

namespace tempo::pe {

struct XdrsInit {
  std::int64_t x_op = 0;      // 0 encode, 1 decode
  std::int64_t x_handy = 0;   // buffer capacity (encode) — decode drivers load it from inlen
  std::int64_t x_private = 0; // starting byte offset
};

struct InterpInput {
  std::map<std::string, std::int64_t> scalars;  // xid, inlen, cnt0...
  std::map<std::string, std::int64_t> refs;     // argsp / resp -> base slot
  XdrsInit xdrs;
  std::span<std::uint32_t> user;  // flattened argument/result slots
  MutableByteSpan out;            // encode target
  ByteSpan in;                    // decode source
  CostEvents* cost = nullptr;     // optional event accounting
};

// Runs `entry`, returns its integer result (the kRc* driver codes).
Result<std::int64_t> run_ir(const Program& program, const std::string& entry,
                            const InterpInput& input);

}  // namespace tempo::pe
