// Server-side specialization: a SvcRegistry handler that decodes
// arguments and encodes results through residual plans, with the generic
// type-interpreter path as the guarded fallback.
//
// The plan fast path engages when the transport exposes its buffer
// (XDR_INLINE succeeds — true for the UDP XdrMem path, not for TCP
// record streams) and the request length matches the specialization;
// otherwise the request is served by the generic path.  Either way the
// application logic sees flattened words.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>

#include "common/metrics.h"
#include "common/status.h"
#include "core/spec_cache.h"
#include "core/stubspec.h"
#include "rpc/svc.h"

namespace tempo::core {

// Application logic on flattened slots: read `args`, fill `results`
// (pre-sized to iface.res_slots()).  Return false for a server fault.
using WordHandler = std::function<bool(std::span<const std::uint32_t> args,
                                       std::span<std::uint32_t> results)>;

struct SpecServiceStats {
  std::int64_t fast_path = 0;
  std::int64_t generic_path = 0;
};

// Registers `handler` for the interface; requests are served through the
// residual plans when possible.  The returned stats object is owned by
// the registry entry (lives as long as the registry).
class SpecializedService {
 public:
  SpecializedService(const SpecializedInterface& iface, WordHandler handler);

  void install(rpc::SvcRegistry& registry);

  const SpecServiceStats& stats() const { return stats_; }

 private:
  bool handle(xdr::XdrStream& in, xdr::XdrStream& out);
  bool handle_generic(xdr::XdrStream& in, xdr::XdrStream& out);

  const SpecializedInterface& iface_;
  WordHandler handler_;
  // Plain (non-atomic) counters: this pinned-shape service is used by
  // single-threaded adapters and benchmarks; the snapshot source reads
  // whatever values are visible, which is exact once traffic quiesces.
  SpecServiceStats stats_;
  common::MetricsRegistry::SourceHandle metrics_source_;  // last member
};

// Dynamic sibling of SpecializedService for servers whose clients send
// *varying* array shapes.  Instead of one pinned specialization it
// resolves each request's residual plans through a SpecCache:
//
//  * fast path — the most recently used specialization for this proc is
//    tried first; its decode plan's guards (count words, lengths) verify
//    the request actually has that shape.  ExecStatus::kFallback rewinds
//    the stream and drops to the generic path (guarded specialization,
//    paper §6.2).
//  * generic path — the layered interpreter decodes the value, the
//    actual counts are collected, and the matching specialization is
//    fetched (or built once) from the cache so the *reply* is still
//    encoded through a residual plan and the *next* request of this
//    shape hits the fast path.
//
// Thread-safe: handle() may run on many worker threads concurrently
// (see rpc::ServerRuntime); stats are atomic and the hot-spec slot is
// an atomic<shared_ptr> — the fast path reads it without any lock,
// matching the lock-free hot-spec slot inside SpecCache itself.
class CachedSpecService {
 public:
  // Application logic on flattened slots, shape passed explicitly:
  // `arg_counts` are the request's variable-array counts (preorder).
  using DynamicWordHandler = std::function<bool(
      std::span<const std::uint32_t> arg_counts,
      std::span<const std::uint32_t> args, std::span<std::uint32_t> results)>;
  // Maps request arg counts to reply res counts (echo-style identity by
  // default).
  using CountMapper = std::function<std::vector<std::uint32_t>(
      std::span<const std::uint32_t> arg_counts)>;

  struct Stats {
    std::atomic<std::int64_t> fast_path{0};     // served fully by plans
    std::atomic<std::int64_t> generic_path{0};  // interpreter decode
    std::atomic<std::int64_t> plan_fallbacks{0};  // hot-spec guard misses
    std::atomic<std::int64_t> spec_unavailable{0};  // cache build failed
    // Subset of fast_path served by an interface with compiled stubs
    // (the third tier; equals fast_path when the JIT is on and the
    // shape compiled, 0 when TEMPO_PLAN_JIT is off).
    std::atomic<std::int64_t> jit_fast_path{0};
  };

  CachedSpecService(SpecCache& cache, idl::ProcDef proc, std::uint32_t prog,
                    std::uint32_t vers, DynamicWordHandler handler,
                    CountMapper res_counts_for = {}, SpecConfig base = {});

  void install(rpc::SvcRegistry& registry);

  const Stats& stats() const { return stats_; }

 private:
  bool handle(xdr::XdrStream& in, xdr::XdrStream& out);
  bool encode_results(const SpecializedInterface& iface,
                      std::span<const std::uint32_t> results,
                      xdr::XdrStream& out);
  SpecHandle hot() const;
  void set_hot(SpecHandle h);

  SpecCache& cache_;
  idl::ProcDef proc_;
  std::uint32_t prog_, vers_;
  DynamicWordHandler handler_;
  CountMapper res_counts_for_;
  SpecConfig base_;  // unroll_factor / buffer_bytes template for cache keys
  Stats stats_;
  std::atomic<SpecHandle> hot_{nullptr};
  // Folds service.* (with the jit/plan/generic tier split) into the
  // global registry.  Last member so it unregisters before stats_ dies.
  common::MetricsRegistry::SourceHandle metrics_source_;
};

}  // namespace tempo::core
