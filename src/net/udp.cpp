#include "net/udp.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace tempo::net {

std::string addr_to_string(const Addr& a) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u:%u", (a.host >> 24) & 0xFF,
                (a.host >> 16) & 0xFF, (a.host >> 8) & 0xFF, a.host & 0xFF,
                a.port);
  return buf;
}

namespace {

sockaddr_in to_sockaddr(const Addr& a) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = htonl(a.host);
  sa.sin_port = htons(a.port);
  return sa;
}

Addr from_sockaddr(const sockaddr_in& sa) {
  return Addr{ntohl(sa.sin_addr.s_addr), ntohs(sa.sin_port)};
}

}  // namespace

UdpSocket::UdpSocket(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd_ < 0) return;
  Addr want{0x7F000001u, port};
  sockaddr_in sa = to_sockaddr(want);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
    ::close(fd_);
    fd_ = -1;
    return;
  }
  sockaddr_in got{};
  socklen_t len = sizeof(got);
  ::getsockname(fd_, reinterpret_cast<sockaddr*>(&got), &len);
  local_ = from_sockaddr(got);
}

UdpSocket::~UdpSocket() {
  if (fd_ >= 0) ::close(fd_);
}

Status UdpSocket::send_to(const Addr& dst, ByteSpan payload) {
  if (fd_ < 0) return unavailable("socket not open");
  sockaddr_in sa = to_sockaddr(dst);
  const ssize_t n =
      ::sendto(fd_, payload.data(), payload.size(), 0,
               reinterpret_cast<sockaddr*>(&sa), sizeof(sa));
  if (n < 0 || static_cast<std::size_t>(n) != payload.size()) {
    return unavailable(std::string("sendto: ") + std::strerror(errno));
  }
  return Status::ok();
}

Result<std::size_t> UdpSocket::recv_from(Addr* src, MutableByteSpan out,
                                         int timeout_ms) {
  if (fd_ < 0) return Status(unavailable("socket not open"));
  pollfd pfd{fd_, POLLIN, 0};
  const int pr = ::poll(&pfd, 1, timeout_ms);
  if (pr == 0) return Status(timeout_error("recv_from"));
  if (pr < 0) return Status(unavailable(std::strerror(errno)));
  sockaddr_in sa{};
  socklen_t len = sizeof(sa);
  const ssize_t n = ::recvfrom(fd_, out.data(), out.size(), 0,
                               reinterpret_cast<sockaddr*>(&sa), &len);
  if (n < 0) return Status(unavailable(std::strerror(errno)));
  if (src) *src = from_sockaddr(sa);
  return static_cast<std::size_t>(n);
}

}  // namespace tempo::net
