// Deterministic in-process simulated network.
//
// Substitution note (DESIGN.md §3): the paper measures round trips over a
// 100 Mb/s ATM link (IPX testbed) and a 100 Mb/s Fast-Ethernet link
// (Pentium testbed).  We reproduce the *link* with a virtual-time model:
// a datagram sent at virtual time t is deliverable at
//     t + latency + size / bandwidth
// and may be dropped, duplicated, corrupted or truncated according to a
// seeded fault plan (used by the robustness tests).
//
// Execution model: single-threaded and event-driven.  Endpoints either
// poll with recv_from() or register a handler (server style).  A recv on
// one endpoint pumps the global event queue: earlier deliveries to
// handler-endpoints run inline, which is how a simulated server "runs"
// inside a client's recv.  Virtual time only ever moves forward.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <queue>
#include <vector>

#include "common/rng.h"
#include "common/vclock.h"
#include "net/transport.h"

namespace tempo::net {

struct LinkParams {
  double latency_us = 60.0;          // one-way propagation + stack cost
  double bandwidth_mbps = 100.0;     // payload serialization rate
  double per_packet_cpu_us = 0.0;    // fixed per-datagram host cost
  double per_byte_cpu_us = 0.0;      // driver/PIO/checksum cost per byte
  double drop_prob = 0.0;
  double dup_prob = 0.0;
  double corrupt_prob = 0.0;   // flip one byte of the payload
  double truncate_prob = 0.0;  // chop the payload roughly in half

  // The paper's two links (DESIGN.md §3).  Latencies chosen so that the
  // simulated round-trip floor sits near the paper's small-message
  // numbers: ATM ESA-200 cards had notoriously high per-packet latency.
  static LinkParams atm_ipx();        // "IPX/SunOS - ATM 100Mbits"
  static LinkParams ethernet_pc();    // "PC/Linux - Ethernet 100Mbits"
  static LinkParams lossy(double drop, double dup, double corrupt,
                          std::uint64_t seed);
};

class SimNetwork;

class SimEndpoint final : public DatagramTransport {
 public:
  using Handler = std::function<void(const Addr& src, ByteSpan payload)>;

  Status send_to(const Addr& dst, ByteSpan payload) override;
  Result<std::size_t> recv_from(Addr* src, MutableByteSpan out,
                                int timeout_ms) override;
  Addr local_addr() const override { return addr_; }

  // Server style: packets for this endpoint are delivered by invoking
  // `h` inline while some other endpoint pumps the network.
  void set_handler(Handler h) { handler_ = std::move(h); }

 private:
  friend class SimNetwork;
  SimEndpoint(SimNetwork* net, Addr addr) : net_(net), addr_(addr) {}

  SimNetwork* net_;
  Addr addr_;
  Handler handler_;
  std::deque<std::pair<Addr, Bytes>> mailbox_;
};

class SimNetwork {
 public:
  explicit SimNetwork(LinkParams params = {}, std::uint64_t fault_seed = 1)
      : params_(params), rng_(fault_seed) {}

  // Endpoints must not outlive the network.
  SimEndpoint* create_endpoint(std::uint16_t port = 0);

  VirtualNanos now() const { return clock_.now(); }
  VirtualClock& clock() { return clock_; }
  const LinkParams& params() const { return params_; }
  void set_params(const LinkParams& p) { params_ = p; }

  // Deliver every event with timestamp <= `until` (kForever = drain all).
  static constexpr VirtualNanos kForever = INT64_MAX;
  void pump(VirtualNanos until = kForever);

  std::int64_t packets_sent() const { return packets_sent_; }
  std::int64_t packets_dropped() const { return packets_dropped_; }

 private:
  friend class SimEndpoint;

  struct Event {
    VirtualNanos at;
    std::uint64_t seq;  // FIFO tie-break
    Addr src, dst;
    Bytes payload;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      return a.at != b.at ? a.at > b.at : a.seq > b.seq;
    }
  };

  Status enqueue(const Addr& src, const Addr& dst, ByteSpan payload);
  // Pop+deliver the earliest event; false if queue empty or event later
  // than `until`.
  bool step(VirtualNanos until);

  LinkParams params_;
  Rng rng_;
  VirtualClock clock_;
  std::uint64_t next_seq_ = 0;
  std::uint16_t next_port_ = 2000;
  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
  std::map<std::uint16_t, std::unique_ptr<SimEndpoint>> endpoints_;
  std::int64_t packets_sent_ = 0;
  std::int64_t packets_dropped_ = 0;
};

}  // namespace tempo::net
