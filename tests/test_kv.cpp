// MVCC visibility units for the KV subsystem (src/kv/store.h):
//
//   * snapshot isolation — a snapshot is one consistent cut and never
//     observes writes that commit after it, including under concurrent
//     writers (the ASan/TSan CI jobs run exactly this file);
//   * read-your-writes on the primary — get_latest()/KvService::get()
//     see a commit the moment put() returns;
//   * version-chain GC never reclaims a version visible to an open
//     snapshot, and reclaims exactly the invisible tail once the
//     snapshot closes;
//   * strictly-increasing apply sequences — a duplicate apply is
//     rejected, counted, and leaves state untouched (the invariant the
//     replication sink's safety argument rests on).
#include <gtest/gtest.h>

#include <atomic>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "kv/service.h"
#include "kv/store.h"
#include "test_rng.h"

namespace tempo {
namespace {

TEST(KvStore, PutGetDelLatestVisibility) {
  kv::MvccStore store;
  EXPECT_EQ(store.get_latest("a"), std::nullopt);
  EXPECT_EQ(store.put("a", "1"), 1u);
  EXPECT_EQ(store.put("b", "2"), 2u);
  EXPECT_EQ(store.get_latest("a"), "1");
  EXPECT_EQ(store.get_latest("b"), "2");
  EXPECT_EQ(store.put("a", "3"), 3u);
  EXPECT_EQ(store.get_latest("a"), "3");
  EXPECT_EQ(store.del("a"), 4u);
  EXPECT_EQ(store.get_latest("a"), std::nullopt);  // tombstone hides it
  EXPECT_EQ(store.get_latest("b"), "2");
  EXPECT_EQ(store.last_applied(), 4u);
}

TEST(KvStore, SnapshotPinsAConsistentCut) {
  kv::MvccStore store;
  store.put("k", "old");
  auto snap = store.snapshot();
  store.put("k", "new");
  store.del("k");
  // The snapshot still sees the cut it was taken at...
  EXPECT_EQ(snap.get("k"), "old");
  // ...while latest sees the tombstone.
  EXPECT_EQ(store.get_latest("k"), std::nullopt);
  // A fresh snapshot sees the new cut.
  auto snap2 = store.snapshot();
  EXPECT_EQ(snap2.get("k"), std::nullopt);
  // Keys born after the snapshot are invisible to it.
  store.put("later", "x");
  EXPECT_EQ(snap.get("later"), std::nullopt);
}

TEST(KvStore, SnapshotIsolationUnderConcurrentWriters) {
  kv::MvccStore store;
  store.put("shared", "0");
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < 3; ++w) {
    writers.emplace_back([&store, &stop, w] {
      test::Rng rng{static_cast<std::uint64_t>(w) * 7919 + 1};
      while (!stop.load(std::memory_order_acquire)) {
        store.put("shared", std::to_string(rng.next()));
        store.put("w" + std::to_string(w), std::to_string(rng.next()));
      }
    });
  }
  // Readers: every snapshot must read the SAME value twice, and a value
  // written at a sequence no later than the snapshot's.
  for (int round = 0; round < 200; ++round) {
    auto snap = store.snapshot();
    const auto v1 = snap.get("shared");
    std::this_thread::yield();
    const auto v2 = snap.get("shared");
    ASSERT_TRUE(v1.has_value());
    ASSERT_EQ(v1, v2) << "snapshot observed a concurrent write";
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : writers) t.join();
  EXPECT_EQ(store.stats().duplicate_applies.load(), 0);
}

TEST(KvStore, GcNeverReclaimsVersionsVisibleToOpenSnapshot) {
  kv::MvccStore store;
  store.put("k", "v1");  // seq 1
  auto snap = store.snapshot();
  store.put("k", "v2");  // seq 2
  store.put("k", "v3");  // seq 3
  ASSERT_EQ(store.version_count(), 3u);

  // Floor is the open snapshot (seq 1): v1 is what the snapshot
  // resolves to, so nothing below it exists to reclaim, and v1 itself
  // must survive.
  EXPECT_EQ(store.gc(), 0u);
  EXPECT_EQ(snap.get("k"), "v1");
  EXPECT_EQ(store.version_count(), 3u);

  // Snapshot closed: everything older than the newest version is
  // reclaimable.
  snap.release();
  EXPECT_EQ(store.gc(), 2u);
  EXPECT_EQ(store.version_count(), 1u);
  EXPECT_EQ(store.get_latest("k"), "v3");

  // A tombstone at the head with no snapshot pinning it lets the whole
  // chain go.
  store.del("k");
  EXPECT_EQ(store.gc(), 2u);  // v3 + the tombstone
  EXPECT_EQ(store.key_count(), 0u);
  EXPECT_EQ(store.version_count(), 0u);
}

TEST(KvStore, GcUnderConcurrentSnapshotsAndWriters) {
  kv::MvccStore store;
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    test::Rng rng{99};
    while (!stop.load(std::memory_order_acquire)) {
      store.put("hot" + std::to_string(rng.next() % 8),
                std::string(64, 'x'));
    }
  });
  std::thread collector([&] {
    while (!stop.load(std::memory_order_acquire)) {
      store.gc();
      std::this_thread::yield();
    }
  });
  for (int round = 0; round < 300; ++round) {
    auto snap = store.snapshot();
    for (int k = 0; k < 8; ++k) {
      const auto v1 = snap.get("hot" + std::to_string(k));
      const auto v2 = snap.get("hot" + std::to_string(k));
      ASSERT_EQ(v1, v2);  // GC must never mutate what a snapshot sees
    }
  }
  stop.store(true, std::memory_order_release);
  writer.join();
  collector.join();
  store.gc();
  // With no snapshots open, chains are fully trimmed.
  EXPECT_LE(store.version_count(), store.key_count());
}

TEST(KvStore, DuplicateAppliesAreRejectedAndCounted) {
  kv::MvccStore store;
  EXPECT_TRUE(store.apply_put(1, "k", "v1"));
  EXPECT_TRUE(store.apply_put(2, "k", "v2"));
  // Replay of an already-applied sequence: rejected, state unchanged.
  EXPECT_FALSE(store.apply_put(2, "k", "evil"));
  EXPECT_FALSE(store.apply_put(1, "k", "evil"));
  EXPECT_FALSE(store.apply_del(2, "k"));
  EXPECT_EQ(store.get_latest("k"), "v2");
  EXPECT_EQ(store.last_applied(), 2u);
  EXPECT_EQ(store.stats().duplicate_applies.load(), 3);
  // Gapped sequences are accepted (the SINK enforces contiguity; the
  // store only enforces monotonicity).
  EXPECT_TRUE(store.apply_put(10, "k", "v10"));
  EXPECT_EQ(store.get_latest("k"), "v10");
}

TEST(KvStore, DumpAndDigestReflectLiveStateOnly) {
  kv::MvccStore a, b;
  a.put("x", "1");
  a.put("y", "2");
  a.del("x");
  b.put("y", "2");
  // Same live state through different histories: same dump, same digest.
  EXPECT_EQ(a.dump(), b.dump());
  EXPECT_EQ(a.digest(), b.digest());
  b.put("z", "3");
  EXPECT_NE(a.digest(), b.digest());
}

TEST(KvService, ReadYourWritesOnPrimary) {
  auto svc = kv::KvService::open({});
  ASSERT_TRUE(svc.is_ok());
  kv::KvService& kvs = **svc;
  auto seq = kvs.put("paper", "tempo");
  ASSERT_TRUE(seq.is_ok());
  EXPECT_EQ(kvs.get("paper"), "tempo");  // visible the moment put returns
  ASSERT_TRUE(kvs.put("paper", "sun rpc").is_ok());
  EXPECT_EQ(kvs.get("paper"), "sun rpc");
  ASSERT_TRUE(kvs.del("paper").is_ok());
  EXPECT_EQ(kvs.get("paper"), std::nullopt);
}

TEST(KvService, ShardedPutsRouteStablyAndMetricsBalance) {
  kv::KvService::Options opts;
  opts.shards = 4;
  auto svc = kv::KvService::open(opts);
  ASSERT_TRUE(svc.is_ok());
  kv::KvService& kvs = **svc;
  for (int i = 0; i < 100; ++i) {
    const std::string k = "key-" + std::to_string(i);
    ASSERT_TRUE(kvs.put(k, "v" + std::to_string(i)).is_ok());
  }
  for (int i = 0; i < 100; ++i) {
    const std::string k = "key-" + std::to_string(i);
    EXPECT_EQ(kvs.get(k), "v" + std::to_string(i));
  }
  // Rejected inputs never commit.
  EXPECT_FALSE(kvs.put("", "v").is_ok());
  EXPECT_FALSE(kvs.put(std::string(kv::kMaxKeyBytes + 1, 'k'), "v").is_ok());
  EXPECT_FALSE(kvs.put("k", std::string(kv::kMaxValueBytes + 1, 'v')).is_ok());

  auto snap = common::metrics().snapshot();
  EXPECT_EQ(snap.counters["kv.duplicate_applies"], 0);
  EXPECT_GE(snap.counters["kv.puts"], 100);
  EXPECT_GE(snap.gauges["kv.keys"], 100);
  EXPECT_GE(snap.histograms["kv.commit_latency_ns"].total(), 100u);
}

}  // namespace
}  // namespace tempo
