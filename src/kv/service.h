// KvService: the primary — per-shard MVCC stores fronted by a WAL,
// exposed through two RPC tiers in one process:
//
//  * the string-heavy client-facing KV program (PUT/GET/DEL with
//    string keys and opaque values) registers plain layered handlers —
//    strings are outside the plan-eligible subset, so this traffic
//    exercises the *generic* codecs, exactly like the original
//    examples/kvstore toy;
//  * the fixed-shape KV_REPL log-shipping program (see kv/repl.h)
//    rides the plan/JIT fast path on both ends.
//
// Commit path: encode the mutation as a WAL payload, group-commit it
// (one fsync per batch, kv/wal.h), then apply to the shard's MvccStore
// strictly in sequence order (a per-shard condition variable lines up
// the batch's committers) and append to the retained log tail the
// replicator ships from.  Commit latency (entry to applied) feeds the
// kv.commit_latency_ns histogram; WAL batching counters, store gauges
// and the duplicate-apply safety counter all surface as kv.* through
// the process metrics registry.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

#include "common/metrics.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "kv/repl.h"
#include "kv/store.h"
#include "kv/wal.h"
#include "net/udp.h"
#include "rpc/client.h"
#include "rpc/svc.h"

namespace tempo::kv {

// Client-facing program (generic tier).
constexpr std::uint32_t kKvProgram = 0x20000778;
constexpr std::uint32_t kKvVersion = 1;
constexpr std::uint32_t kKvProcPut = 1;
constexpr std::uint32_t kKvProcGet = 2;
constexpr std::uint32_t kKvProcDel = 3;

class KvService final : public ShipSource {
 public:
  struct Options {
    std::uint32_t shards = 1;
    // Directory for per-shard WAL files ("kv-shard-N.wal").  Empty =
    // volatile store, no durability (benchmarks, replicas).
    std::string wal_dir;
    Wal::Options wal;
    // Bound on the retained log tail per shard (records kept for the
    // replicator after apply).  When the bound is hit the oldest are
    // dropped — a replica further behind than this needs a full resync,
    // which is out of scope here (see src/kv/README.md).
    std::size_t tail_max_records = 1u << 16;
  };

  struct RecoveryInfo {
    std::uint64_t records = 0;          // replayed WAL records (all shards)
    std::uint64_t truncated_bytes = 0;  // torn tail bytes cut (all shards)
  };

  // Opens (and recovers, when wal_dir is set) the per-shard stores.
  static Result<std::unique_ptr<KvService>> open(Options opts,
                                                 RecoveryInfo* info = nullptr);
  ~KvService() override = default;
  KvService(const KvService&) = delete;
  KvService& operator=(const KvService&) = delete;

  // ---- local API (also what the RPC handlers call) ----
  Result<std::uint64_t> put(std::string_view key, std::string_view value);
  Result<std::uint64_t> del(std::string_view key);
  std::optional<std::string> get(std::string_view key) const;

  std::uint32_t shard_of(std::string_view key) const;
  MvccStore& store(std::uint32_t shard) { return shards_[shard]->store; }
  const MvccStore& store(std::uint32_t shard) const {
    return shards_[shard]->store;
  }
  const Wal* wal(std::uint32_t shard) const {
    return shards_[shard]->wal.get();
  }
  // Version-chain GC across every shard; returns versions reclaimed.
  std::size_t gc();
  // Order-independent across keys, shard-order dependent: matches
  // KvReplicaSink::digest() for an identical replica.
  std::uint64_t digest() const;

  // ---- client-facing RPC program (generic tier) ----
  void install(rpc::SvcRegistry& registry);

  // ---- ShipSource (what KvReplicator pulls) ----
  std::uint32_t shard_count() const override {
    return static_cast<std::uint32_t>(shards_.size());
  }
  std::uint64_t shippable_seq(std::uint32_t shard) const override;
  std::vector<LogRecord> fetch_since(std::uint32_t shard, std::uint64_t from,
                                     std::size_t max_words) const override;
  void acked(std::uint32_t shard, std::uint64_t seq) override;

  const common::LatencyHistogram& commit_latency() const {
    return commit_hist_;
  }

 private:
  struct Shard {
    MvccStore store;
    std::unique_ptr<Wal> wal;
    mutable std::mutex apply_mu;
    std::condition_variable apply_cv;
    // Applied records not yet acknowledged by the replica, seq order.
    std::deque<LogRecord> tail TEMPO_GUARDED_BY(apply_mu);
    std::uint64_t tail_dropped TEMPO_GUARDED_BY(apply_mu) = 0;
  };

  KvService() = default;
  Result<std::uint64_t> commit(LogRecord r);
  // Returns the sequence the record was applied at.
  std::uint64_t apply_in_order(Shard& shard, const LogRecord& r);

  Options opts_;
  std::vector<std::unique_ptr<Shard>> shards_;
  mutable common::Counter puts_, dels_, gets_;
  common::LatencyHistogram commit_hist_;
  common::MetricsRegistry::SourceHandle metrics_source_;  // last member
};

// Client for the string-heavy KV program over UDP — the generic
// layered tier (owns its socket; not thread-safe, one per caller).
class KvClient {
 public:
  explicit KvClient(net::Addr server, rpc::CallOptions opts = {});

  bool ok() const { return sock_.ok(); }
  Result<std::uint64_t> put(std::string_view key, std::string_view value);
  Result<std::uint64_t> del(std::string_view key);
  // nullopt = key absent (or deleted).
  Result<std::optional<std::string>> get(std::string_view key);

 private:
  net::UdpSocket sock_;
  rpc::UdpClient client_;
};

}  // namespace tempo::kv
