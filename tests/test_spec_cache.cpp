// SpecCache tests: memoization under concurrency (one build per key),
// bounded LRU eviction + rebuild, byte-identical cached plans, negative
// caching, and the cache wired into the concurrent server runtime via
// CachedSpecService over real loopback UDP and TCP.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "core/service.h"
#include "core/spec_cache.h"
#include "core/spec_client.h"
#include "core/stubspec.h"
#include "idl/interp.h"
#include "net/udp.h"
#include "rpc/client.h"
#include "rpc/svc.h"
#include "xdr/primitives.h"

namespace tempo::core {
namespace {

constexpr std::uint32_t kProg = 0x20000777;
constexpr std::uint32_t kVers = 1;

idl::ProcDef echo_array_proc(std::uint32_t bound = 2000) {
  idl::ProcDef proc;
  proc.name = "ECHO";
  proc.number = 7;
  proc.arg_type = idl::t_array_var(idl::t_int(), bound);
  proc.res_type = idl::t_array_var(idl::t_int(), bound);
  return proc;
}

SpecConfig cfg_for(std::uint32_t n) {
  SpecConfig cfg;
  cfg.arg_counts = {n};
  cfg.res_counts = {n};
  return cfg;
}

bool plans_equal(const pe::Plan& a, const pe::Plan& b) {
  if (a.is_encode != b.is_encode || a.out_size != b.out_size ||
      a.expected_in != b.expected_in || a.words_needed != b.words_needed ||
      a.instrs.size() != b.instrs.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.instrs.size(); ++i) {
    const auto& x = a.instrs[i];
    const auto& y = b.instrs[i];
    if (x.op != y.op || x.off != y.off || x.a != y.a || x.b != y.b ||
        x.imm != y.imm) {
      return false;
    }
  }
  return true;
}

TEST(SpecCache, HitsAfterFirstBuild) {
  SpecCache cache(16);
  const auto proc = echo_array_proc();
  auto a = cache.get_or_build(proc, kProg, kVers, cfg_for(50));
  ASSERT_TRUE(a.is_ok()) << a.status().to_string();
  auto b = cache.get_or_build(proc, kProg, kVers, cfg_for(50));
  ASSERT_TRUE(b.is_ok());
  EXPECT_EQ(a->get(), b->get());  // literally the same instance

  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(SpecCache, DistinctKeysBuildSeparately) {
  SpecCache cache(16);
  const auto proc = echo_array_proc();
  auto a = cache.get_or_build(proc, kProg, kVers, cfg_for(10));
  auto b = cache.get_or_build(proc, kProg, kVers, cfg_for(20));
  SpecConfig unrolled = cfg_for(10);
  unrolled.unroll_factor = 4;  // same counts, different unroll: new key
  auto c = cache.get_or_build(proc, kProg, kVers, unrolled);
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  ASSERT_TRUE(c.is_ok());
  EXPECT_NE(a->get(), b->get());
  EXPECT_NE(a->get(), c->get());
  EXPECT_EQ(cache.stats().misses, 3);
}

// 8 threads hammer a small key set concurrently; the in-flight protocol
// must make each distinct key build exactly once (miss count == distinct
// keys) and hand every thread the same shared instance per key.
TEST(SpecCache, ConcurrentHammeringBuildsOncePerKey) {
  constexpr int kThreads = 8;
  constexpr int kItersPerThread = 200;
  const std::vector<std::uint32_t> sizes = {10, 20, 30, 40, 50, 60};

  SpecCache cache(64);
  const auto proc = echo_array_proc();

  std::vector<std::vector<const SpecializedInterface*>> seen(
      kThreads, std::vector<const SpecializedInterface*>(sizes.size(),
                                                         nullptr));
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kItersPerThread; ++i) {
        const std::size_t k = static_cast<std::size_t>((i + t) %
                                                       sizes.size());
        auto r = cache.get_or_build(proc, kProg, kVers, cfg_for(sizes[k]));
        if (!r.is_ok()) {
          ++failures;
          continue;
        }
        if (seen[t][k] == nullptr) {
          seen[t][k] = r->get();
        } else if (seen[t][k] != r->get()) {
          ++failures;  // key rebuilt: memoization broken
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(failures.load(), 0);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, static_cast<std::int64_t>(sizes.size()));
  EXPECT_EQ(stats.hits,
            static_cast<std::int64_t>(kThreads) * kItersPerThread -
                static_cast<std::int64_t>(sizes.size()));
  EXPECT_EQ(stats.evictions, 0);
  // Every thread saw the same instance for each key.
  for (std::size_t k = 0; k < sizes.size(); ++k) {
    for (int t = 1; t < kThreads; ++t) {
      EXPECT_EQ(seen[t][k], seen[0][k]);
    }
  }
}

TEST(SpecCache, LruEvictionTriggersRebuild) {
  SpecCache cache(2);
  const auto proc = echo_array_proc();

  auto a1 = cache.get_or_build(proc, kProg, kVers, cfg_for(10));  // miss
  ASSERT_TRUE(a1.is_ok());
  ASSERT_TRUE(cache.get_or_build(proc, kProg, kVers, cfg_for(20)).is_ok());
  ASSERT_TRUE(cache.get_or_build(proc, kProg, kVers, cfg_for(10)).is_ok());
  // LRU order now: 10 (front), 20 (back).  Inserting 30 evicts 20.
  ASSERT_TRUE(cache.get_or_build(proc, kProg, kVers, cfg_for(30)).is_ok());
  EXPECT_EQ(cache.stats().evictions, 1);
  EXPECT_EQ(cache.size(), 2u);

  // 20 was evicted: asking again is a miss and rebuilds.
  ASSERT_TRUE(cache.get_or_build(proc, kProg, kVers, cfg_for(20)).is_ok());
  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 4);  // 10, 20, 30, 20-again
  EXPECT_EQ(stats.hits, 1);    // the middle 10
  EXPECT_EQ(stats.evictions, 2);  // 20, then 10 (LRU when 20 returned)

  // 10 survived in a caller's handle even though the cache dropped it.
  auto a2 = cache.get_or_build(proc, kProg, kVers, cfg_for(10));
  ASSERT_TRUE(a2.is_ok());
  EXPECT_NE(a1->get(), a2->get());  // rebuilt, not resurrected
  EXPECT_EQ((*a1)->encode_call_plan().out_size,
            (*a2)->encode_call_plan().out_size);
}

// A cached interface must be indistinguishable from a freshly built one:
// identical residual instructions and identical wire bytes.
TEST(SpecCache, CachedPlansByteCompareEqualToFreshBuild) {
  const std::uint32_t n = 100;
  SpecCache cache(8);
  const auto proc = echo_array_proc();

  auto cached = cache.get_or_build(proc, kProg, kVers, cfg_for(n));
  ASSERT_TRUE(cached.is_ok());
  // Hit the entry a few times so LRU bookkeeping has run.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(cache.get_or_build(proc, kProg, kVers, cfg_for(n)).is_ok());
  }

  auto fresh = SpecializedInterface::build(proc, kProg, kVers, cfg_for(n));
  ASSERT_TRUE(fresh.is_ok());

  EXPECT_TRUE(plans_equal((*cached)->encode_call_plan(),
                          fresh->encode_call_plan()));
  EXPECT_TRUE(plans_equal((*cached)->decode_reply_plan(),
                          fresh->decode_reply_plan()));
  EXPECT_TRUE(plans_equal((*cached)->decode_args_plan(),
                          fresh->decode_args_plan()));
  EXPECT_TRUE(plans_equal((*cached)->encode_results_plan(),
                          fresh->encode_results_plan()));

  // And the residual code produces identical wire bytes.
  std::vector<std::uint32_t> args(n);
  for (std::uint32_t i = 0; i < n; ++i) args[i] = i * 2654435761u;
  Bytes out_cached((*cached)->encode_call_plan().out_size);
  Bytes out_fresh(fresh->encode_call_plan().out_size);
  ASSERT_EQ(run_plan_encode((*cached)->encode_call_plan(), args, 0x1234,
                            MutableByteSpan(out_cached.data(),
                                            out_cached.size())),
            pe::ExecStatus::kOk);
  ASSERT_EQ(run_plan_encode(fresh->encode_call_plan(), args, 0x1234,
                            MutableByteSpan(out_fresh.data(),
                                            out_fresh.size())),
            pe::ExecStatus::kOk);
  EXPECT_EQ(out_cached, out_fresh);
}

TEST(SpecCache, NegativeCachingDoesNotRebuildFailures) {
  SpecCache cache(8);
  idl::ProcDef bad;
  bad.name = "BAD";
  bad.number = 3;
  bad.arg_type = idl::t_string(64);  // not plan-eligible
  bad.res_type = idl::t_void();

  auto r1 = cache.get_or_build(bad, kProg, kVers, {});
  EXPECT_FALSE(r1.is_ok());
  auto r2 = cache.get_or_build(bad, kProg, kVers, {});
  EXPECT_FALSE(r2.is_ok());
  EXPECT_EQ(r1.status().code(), r2.status().code());

  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 1);  // pipeline ran once
  EXPECT_EQ(stats.hits, 1);    // second request served from the entry
  EXPECT_EQ(stats.build_failures, 1);
}

// ---- sharding ------------------------------------------------------------

TEST(SpecCacheSharding, CountersAggregateAcrossShards) {
  SpecCache cache(64, /*shards=*/4);
  EXPECT_EQ(cache.shard_count(), 4u);
  const auto proc = echo_array_proc();

  const std::vector<std::uint32_t> sizes = {10, 20, 30, 40, 50, 60, 70, 80};
  for (auto n : sizes) {
    ASSERT_TRUE(cache.get_or_build(proc, kProg, kVers, cfg_for(n)).is_ok());
  }
  for (auto n : sizes) {  // second pass: all hits
    ASSERT_TRUE(cache.get_or_build(proc, kProg, kVers, cfg_for(n)).is_ok());
  }

  const auto total = cache.stats();
  EXPECT_EQ(total.misses, static_cast<std::int64_t>(sizes.size()));
  EXPECT_EQ(total.hits, static_cast<std::int64_t>(sizes.size()));
  EXPECT_EQ(total.evictions, 0);
  EXPECT_EQ(cache.size(), sizes.size());

  // The aggregate is exactly the sum of the per-shard counters, and the
  // keys landed somewhere (not all in shard 0).
  SpecCacheStats summed;
  std::size_t summed_size = 0;
  for (std::size_t s = 0; s < cache.shard_count(); ++s) {
    const auto ss = cache.shard_stats(s);
    summed.hits += ss.hits;
    summed.misses += ss.misses;
    summed.evictions += ss.evictions;
    summed.build_failures += ss.build_failures;
    summed_size += cache.shard_size(s);
  }
  EXPECT_EQ(summed.hits, total.hits);
  EXPECT_EQ(summed.misses, total.misses);
  EXPECT_EQ(summed.evictions, total.evictions);
  EXPECT_EQ(summed_size, cache.size());
}

TEST(SpecCacheSharding, EvictionsStayPerShardBounded) {
  // 4 shards x 2 slots each; flooding with distinct keys must bound the
  // total footprint at the overall capacity.
  SpecCache cache(8, /*shards=*/4);
  const auto proc = echo_array_proc();
  for (std::uint32_t n = 1; n <= 40; ++n) {
    ASSERT_TRUE(cache.get_or_build(proc, kProg, kVers, cfg_for(n)).is_ok());
  }
  EXPECT_LE(cache.size(), 8u);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 40);
  EXPECT_EQ(stats.evictions,
            40 - static_cast<std::int64_t>(cache.size()));
}

TEST(SpecCacheSharding, ShardCountClampedToCapacity) {
  SpecCache cache(2, /*shards=*/8);
  EXPECT_EQ(cache.shard_count(), 2u);  // every shard keeps >= 1 slot
}

// The one-build-per-key contract must survive sharding: 8 threads
// hammer keys that scatter across 4 shards; each key still builds
// exactly once and every thread sees the same shared instance.
TEST(SpecCacheSharding, OneBuildPerKeyUnder8ThreadContention) {
  constexpr int kThreads = 8;
  constexpr int kItersPerThread = 200;
  const std::vector<std::uint32_t> sizes = {11, 22, 33, 44, 55, 66, 77, 88};

  SpecCache cache(64, /*shards=*/4);
  const auto proc = echo_array_proc();

  std::vector<std::vector<const SpecializedInterface*>> seen(
      kThreads,
      std::vector<const SpecializedInterface*>(sizes.size(), nullptr));
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kItersPerThread; ++i) {
        const std::size_t k =
            static_cast<std::size_t>((i + t) % sizes.size());
        auto r = cache.get_or_build(proc, kProg, kVers, cfg_for(sizes[k]));
        if (!r.is_ok()) {
          ++failures;
          continue;
        }
        if (seen[t][k] == nullptr) {
          seen[t][k] = r->get();
        } else if (seen[t][k] != r->get()) {
          ++failures;  // key rebuilt: memoization broken
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(failures.load(), 0);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, static_cast<std::int64_t>(sizes.size()));
  EXPECT_EQ(stats.hits,
            static_cast<std::int64_t>(kThreads) * kItersPerThread -
                static_cast<std::int64_t>(sizes.size()));
  EXPECT_EQ(stats.evictions, 0);
  for (std::size_t k = 0; k < sizes.size(); ++k) {
    for (int t = 1; t < kThreads; ++t) {
      EXPECT_EQ(seen[t][k], seen[0][k]);
    }
  }
}

// ---- the cache under the concurrent server runtime -----------------------

TEST(ServerRuntime, CachedServiceOverLoopbackUdp) {
  SpecCache cache(32);
  const auto proc = echo_array_proc();

  rpc::SvcRegistry reg;
  CachedSpecService service(
      cache, proc, kProg, kVers,
      [](std::span<const std::uint32_t> /*arg_counts*/,
         std::span<const std::uint32_t> args,
         std::span<std::uint32_t> results) {
        std::copy(args.begin(), args.end(), results.begin());
        return true;
      });
  service.install(reg);

  rpc::ServerRuntimeConfig cfg;
  cfg.workers = 4;
  rpc::ServerRuntime runtime(reg, cfg);
  ASSERT_TRUE(runtime.start().is_ok());

  // Three client threads, each hammering its own array shape.
  const std::vector<std::uint32_t> sizes = {25, 50, 100};
  constexpr int kCallsPerClient = 30;
  std::atomic<int> bad{0};
  std::vector<std::thread> clients;
  for (auto n : sizes) {
    clients.emplace_back([&, n] {
      auto iface =
          SpecializedInterface::build(echo_array_proc(), kProg, kVers,
                                      cfg_for(n));
      if (!iface.is_ok()) {
        ++bad;
        return;
      }
      net::UdpSocket sock;
      if (!sock.ok()) {
        ++bad;
        return;
      }
      SpecializedClient client(sock, runtime.udp_addr(), *iface);
      std::vector<std::uint32_t> args(n), results(n, 0);
      for (std::uint32_t i = 0; i < n; ++i) args[i] = n * 1000 + i;
      for (int round = 0; round < kCallsPerClient; ++round) {
        std::fill(results.begin(), results.end(), 0);
        Status st = client.call(args, results);
        if (!st.is_ok() || results != args) {
          ++bad;
          return;
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  runtime.stop();

  EXPECT_EQ(bad.load(), 0);
  const auto& sstats = service.stats();
  const auto cstats = cache.stats();
  // One cache build per distinct shape; everything else served from it.
  EXPECT_EQ(cstats.misses, static_cast<std::int64_t>(sizes.size()));
  EXPECT_EQ(sstats.fast_path + sstats.generic_path,
            static_cast<std::int64_t>(sizes.size()) * kCallsPerClient);
  EXPECT_GT(sstats.fast_path.load(), 0);
  EXPECT_GE(runtime.stats().udp_datagrams.load(),
            static_cast<std::int64_t>(sizes.size()) * kCallsPerClient);
}

TEST(ServerRuntime, CachedServiceOverTcpStream) {
  SpecCache cache(32);
  const auto proc = echo_array_proc();

  rpc::SvcRegistry reg;
  CachedSpecService service(
      cache, proc, kProg, kVers,
      [](std::span<const std::uint32_t> /*arg_counts*/,
         std::span<const std::uint32_t> args,
         std::span<std::uint32_t> results) {
        std::copy(args.begin(), args.end(), results.begin());
        return true;
      });
  service.install(reg);

  rpc::ServerRuntimeConfig cfg;
  cfg.workers = 2;
  rpc::ServerRuntime runtime(reg, cfg);
  ASSERT_TRUE(runtime.start().is_ok());

  const std::uint32_t n = 40;
  rpc::TcpClient client(runtime.tcp_addr(), kProg, kVers);
  ASSERT_TRUE(client.ok());
  for (int round = 0; round < 5; ++round) {
    std::vector<std::int32_t> sent(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      sent[i] = static_cast<std::int32_t>(round * 100 + i);
    }
    std::vector<std::int32_t> got;
    Status st = client.call(
        7,
        [&](xdr::XdrStream& x) {
          std::uint32_t count = n;
          if (!xdr::xdr_u_int(x, count)) return false;
          for (auto& v : sent) {
            if (!xdr::xdr_int(x, v)) return false;
          }
          return true;
        },
        [&](xdr::XdrStream& x) {
          std::uint32_t count = 0;
          if (!xdr::xdr_u_int(x, count) || count != n) return false;
          got.resize(count);
          for (auto& v : got) {
            if (!xdr::xdr_int(x, v)) return false;
          }
          return true;
        });
    ASSERT_TRUE(st.is_ok()) << st.to_string();
    ASSERT_EQ(got, sent);
  }
  runtime.stop();

  EXPECT_EQ(runtime.stats().tcp_connections.load(), 1);
  EXPECT_EQ(runtime.stats().tcp_calls.load(), 5);
  // The record stream cannot be inlined, so argument decode is generic —
  // but the cache still resolved the specialization for reply encoding.
  EXPECT_EQ(cache.stats().misses, 1);
}

}  // namespace
}  // namespace tempo::core
