// Observability plane tests: histogram bucket math and quantile
// accuracy, wait-free concurrent recording, snapshot merge algebra,
// registry aggregation across shards and sources, stage tracing — and
// the acceptance pin: one metrics_snapshot() from a live multi-shard
// server returns runtime, cache, arena and JIT-tier counters that are
// coherent with each other.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/trace.h"
#include "core/service.h"
#include "core/spec_cache.h"
#include "core/spec_client.h"
#include "net/udp.h"
#include "rpc/event_runtime.h"
#include "rpc/svc.h"

namespace tempo {
namespace {

using common::HistogramSnapshot;
using common::LatencyHistogram;
using common::MetricsRegistry;
using common::MetricsSnapshot;

// ------------------------------------------------------- bucket math ---

TEST(LatencyHistogram, BucketIndexIsMonotoneAndBoundsHold) {
  // Exhaustive over the linear range and the first octaves, then
  // spot-check by doubling across the full 63-bit range.
  std::size_t prev = 0;
  for (std::uint64_t v = 0; v < 1u << 16; ++v) {
    const std::size_t idx = LatencyHistogram::bucket_index(v);
    ASSERT_GE(idx, prev) << "index not monotone at v=" << v;
    prev = idx;
    const std::uint64_t floor = LatencyHistogram::bucket_floor(idx);
    const std::uint64_t width = LatencyHistogram::bucket_width(idx);
    ASSERT_LE(floor, v) << "floor above value at v=" << v;
    ASSERT_LT(v, floor + width) << "value past bucket end at v=" << v;
  }
  for (std::uint64_t v = 1; v < (std::uint64_t{1} << 62); v *= 2) {
    for (std::uint64_t probe : {v - 1, v, v + 1, v + v / 3}) {
      const std::size_t idx = LatencyHistogram::bucket_index(probe);
      ASSERT_LT(idx, LatencyHistogram::kBuckets);
      const std::uint64_t floor = LatencyHistogram::bucket_floor(idx);
      const std::uint64_t width = LatencyHistogram::bucket_width(idx);
      ASSERT_LE(floor, probe);
      ASSERT_LT(probe - floor, width);
    }
  }
}

TEST(LatencyHistogram, NegativeInputsClampToZero) {
  LatencyHistogram h;
  h.record(-5);
  h.record(-1);
  h.record(0);
  HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.total(), 3u);
  EXPECT_EQ(s.max, 0);
  EXPECT_EQ(s.quantile(1.0), 0);
}

TEST(LatencyHistogram, EmptySnapshotIsZero) {
  LatencyHistogram h;
  HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.total(), 0u);
  EXPECT_EQ(s.p50(), 0);
  EXPECT_EQ(s.p999(), 0);
  EXPECT_EQ(s.mean(), 0.0);
}

// --------------------------------------------------- quantile accuracy ---

TEST(LatencyHistogram, QuantilesTrackSortedReference) {
  // Log-uniform samples spanning six decades — the shape real latency
  // distributions have.  The histogram guarantees ~1/32 relative
  // bucket error; assert a conservative 1/16 against the exact sorted
  // reference.
  LatencyHistogram h;
  std::vector<std::int64_t> ref;
  std::uint64_t state = 0x9E3779B97F4A7C15ull;
  auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (int i = 0; i < 200000; ++i) {
    // 2^(10..30) ns, log-uniform: exponent uniform, mantissa uniform.
    const unsigned exp = 10 + static_cast<unsigned>(next() % 21);
    const std::uint64_t lo = std::uint64_t{1} << exp;
    const std::int64_t v = static_cast<std::int64_t>(lo + next() % lo);
    ref.push_back(v);
    h.record(v);
  }
  std::sort(ref.begin(), ref.end());
  HistogramSnapshot s = h.snapshot();
  ASSERT_EQ(s.total(), ref.size());
  EXPECT_EQ(s.max, ref.back());
  for (double q : {0.50, 0.90, 0.99, 0.999}) {
    const std::size_t rank = std::min(
        ref.size() - 1,
        static_cast<std::size_t>(q * static_cast<double>(ref.size())));
    const double exact = static_cast<double>(ref[rank]);
    const double approx = static_cast<double>(s.quantile(q));
    EXPECT_NEAR(approx, exact, exact / 16.0) << "q=" << q;
  }
  // The top quantile never exceeds the exact observed maximum (the
  // clamp direction: bucket midpoints can overshoot the max, never the
  // reported quantile).
  EXPECT_LE(s.quantile(1.0), ref.back());
  EXPECT_NEAR(static_cast<double>(s.quantile(1.0)),
              static_cast<double>(ref.back()),
              static_cast<double>(ref.back()) / 16.0);
}

// ------------------------------------------------ concurrent recording ---

TEST(LatencyHistogram, ConcurrentRecordingLosesNothing) {
  LatencyHistogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.record(t * 1000 + i % 997);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.total(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  // Max is exact: the largest value any thread recorded.
  EXPECT_EQ(h.snapshot().max, (kThreads - 1) * 1000 + 996);
}

// ----------------------------------------------------- merge algebra ---

HistogramSnapshot filled(std::initializer_list<std::int64_t> vals) {
  LatencyHistogram h;
  for (auto v : vals) h.record(v);
  return h.snapshot();
}

TEST(HistogramSnapshot, MergeIsAssociativeAndCommutative) {
  const HistogramSnapshot a = filled({1, 50, 3000});
  const HistogramSnapshot b = filled({7, 7, 90000});
  const HistogramSnapshot c = filled({123456789});

  HistogramSnapshot ab = a;
  ab.merge(b);
  HistogramSnapshot ab_c = ab;
  ab_c.merge(c);

  HistogramSnapshot bc = b;
  bc.merge(c);
  HistogramSnapshot a_bc = a;
  a_bc.merge(bc);

  EXPECT_EQ(ab_c, a_bc);

  HistogramSnapshot ba = b;
  ba.merge(a);
  EXPECT_EQ(ab, ba);

  EXPECT_EQ(ab_c.total(), 7u);
  EXPECT_EQ(ab_c.max, 123456789);

  // Merging an empty snapshot is the identity.
  HistogramSnapshot id = a;
  id.merge(HistogramSnapshot{});
  EXPECT_EQ(id, a);
}

// ------------------------------------------------ registry aggregation ---

TEST(MetricsRegistry, AggregatesShardsAndMatchesPerShardSum) {
  MetricsRegistry reg;
  constexpr std::size_t kShards = 4;
  std::uint64_t expected_total = 0;
  std::int64_t expected_count = 0;
  for (std::size_t s = 0; s < kShards; ++s) {
    LatencyHistogram& h = reg.histogram("test.lat_ns", s);
    for (int i = 0; i < 100 * (static_cast<int>(s) + 1); ++i) {
      h.record(1000 * static_cast<std::int64_t>(s + 1));
      ++expected_total;
    }
    reg.counter("test.calls", s).add(10 * static_cast<std::int64_t>(s + 1));
    expected_count += 10 * static_cast<std::int64_t>(s + 1);
  }
  MetricsSnapshot snap = reg.snapshot();
  ASSERT_TRUE(snap.histograms.count("test.lat_ns"));
  EXPECT_EQ(snap.histograms["test.lat_ns"].total(), expected_total);
  EXPECT_EQ(snap.counters["test.calls"], expected_count);

  // The merged view equals the manual per-shard merge.
  HistogramSnapshot manual;
  for (std::size_t s = 0; s < kShards; ++s) {
    manual.merge(reg.histogram("test.lat_ns", s).snapshot());
  }
  EXPECT_EQ(snap.histograms["test.lat_ns"], manual);

  // Stable references: the same (name, shard) resolves to the same
  // instrument.
  EXPECT_EQ(&reg.counter("test.calls", 1), &reg.counter("test.calls", 1));
}

TEST(MetricsRegistry, SourcesFoldInAndUnregisterOnDestruction) {
  MetricsRegistry reg;
  {
    MetricsRegistry::SourceHandle handle =
        reg.add_source([](MetricsSnapshot& snap) {
          snap.add_counter("src.alpha", 5);
          snap.add_gauge("src.pool", 100);
        });
    MetricsRegistry::SourceHandle handle2 =
        reg.add_source([](MetricsSnapshot& snap) {
          snap.add_counter("src.alpha", 2);
          snap.add_gauge("src.pool", 11);
        });
    MetricsSnapshot snap = reg.snapshot();
    EXPECT_EQ(snap.counters["src.alpha"], 7);  // contributions sum
    EXPECT_EQ(snap.gauges["src.pool"], 111);
  }
  MetricsSnapshot after = reg.snapshot();
  EXPECT_EQ(after.counters.count("src.alpha"), 0u);
  EXPECT_EQ(after.gauges.count("src.pool"), 0u);
}

// ------------------------------------------------------ stage tracing ---

TEST(Tracer, StagesSumToTotalAndCommitToOriginShard) {
  common::Tracer tracer(/*shards=*/2, /*ring_capacity=*/8,
                        /*sample_every=*/1);
  ASSERT_TRUE(tracer.should_sample());
  tracer.begin(/*xid=*/0xABCD, /*shard=*/1, /*worker=*/3,
               /*queue_wait_ns=*/5000);
  common::trace_mark(common::TraceStage::kDecode);
  common::trace_mark(common::TraceStage::kExecute);
  common::trace_mark(common::TraceStage::kDecode);  // accumulates
  common::trace_set_tier(common::TraceTier::kJit);
  common::trace_end();
  EXPECT_FALSE(common::trace_active());

  const std::vector<common::TraceRecord> recs = tracer.snapshot();
  ASSERT_EQ(recs.size(), 1u);
  const common::TraceRecord& r = recs[0];
  EXPECT_EQ(r.xid, 0xABCDu);
  EXPECT_EQ(r.shard, 1);
  EXPECT_EQ(r.worker, 3);
  EXPECT_EQ(r.tier, common::TraceTier::kJit);
  EXPECT_EQ(r.stage_ns[static_cast<int>(common::TraceStage::kRecv)], 5000);
  std::int64_t stage_sum = 0;
  for (std::size_t i = 0; i < common::kTraceStageCount; ++i) {
    EXPECT_GE(r.stage_ns[i], 0) << "stage " << i;
    stage_sum += r.stage_ns[i];
  }
  // Total covers begin..end plus the backdated queue wait; unmarked
  // tail time (between the last mark and trace_end) is not attributed
  // to any stage, so the stage sum is a lower bound.
  EXPECT_LE(stage_sum, r.total_ns);
  EXPECT_GE(r.total_ns, 5000);
}

TEST(Tracer, UnsampledMarksAreNoOps) {
  common::Tracer tracer(1, 8, /*sample_every=*/0);
  EXPECT_FALSE(tracer.should_sample());
  // No active trace: marks must be safe no-ops.
  common::trace_mark(common::TraceStage::kDecode);
  common::trace_set_tier(common::TraceTier::kPlan);
  common::trace_end();
  EXPECT_EQ(tracer.committed(), 0u);
}

// ------------------------------------------- acceptance: live server ---

constexpr std::uint32_t kProg = 0x20000999;
constexpr std::uint32_t kVers = 1;
constexpr std::uint32_t kProc = 7;

idl::ProcDef echo_array_proc() {
  idl::ProcDef proc;
  proc.name = "ECHO";
  proc.number = kProc;
  proc.arg_type = idl::t_array_var(idl::t_int(), 2000);
  proc.res_type = idl::t_array_var(idl::t_int(), 2000);
  return proc;
}

// One metrics_snapshot() call on a live multi-shard server must return
// runtime, cache and tier counters that cohere: request counts line up
// across layers, the tier counters partition the served requests, and
// the latency histograms hold one sample per request.
TEST(MetricsPlane, LiveServerSnapshotIsCoherent) {
  if (!common::metrics_enabled()) GTEST_SKIP() << "TEMPO_METRICS=0";

  core::SpecCache cache(32, /*shards=*/4);
  rpc::SvcRegistry reg;
  core::CachedSpecService service(
      cache, echo_array_proc(), kProg, kVers,
      [](std::span<const std::uint32_t>, std::span<const std::uint32_t> args,
         std::span<std::uint32_t> results) {
        std::copy(args.begin(), args.end(), results.begin());
        return true;
      });
  service.install(reg);

  rpc::EventServerRuntimeConfig cfg;
  cfg.workers = 4;
  cfg.reactors = 2;
  rpc::EventServerRuntime runtime(reg, cfg);
  ASSERT_TRUE(runtime.start().is_ok());

  const std::vector<std::uint32_t> sizes = {25, 60};
  constexpr int kCallsPerClient = 40;
  std::atomic<int> bad{0};
  std::vector<std::thread> clients;
  for (auto n : sizes) {
    clients.emplace_back([&, n] {
      core::SpecConfig scfg;
      scfg.arg_counts = {n};
      scfg.res_counts = {n};
      auto iface = core::SpecializedInterface::build(echo_array_proc(),
                                                     kProg, kVers, scfg);
      net::UdpSocket sock;
      if (!iface.is_ok() || !sock.ok()) {
        ++bad;
        return;
      }
      core::SpecializedClient client(sock, runtime.udp_addr(), *iface);
      std::vector<std::uint32_t> args(n), results(n, 0);
      for (std::uint32_t i = 0; i < n; ++i) args[i] = n + i;
      for (int round = 0; round < kCallsPerClient; ++round) {
        if (!client.call(args, results).is_ok() || results != args) {
          ++bad;
          return;
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  ASSERT_EQ(bad.load(), 0);

  const std::int64_t calls =
      static_cast<std::int64_t>(sizes.size()) * kCallsPerClient;

  // The e2e histogram records after the reply is on the wire, so the
  // last client can return a beat before its sample lands; give the
  // flusher a bounded moment to catch up.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  while (static_cast<std::int64_t>(
             runtime.latency_snapshot().udp_e2e.total()) < calls &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // THE acceptance snapshot: one call, every layer visible at once.
  MetricsSnapshot snap = runtime.metrics_snapshot();

  // Runtime plane.
  EXPECT_GE(snap.counters["rpc.udp_datagrams"], calls);
  EXPECT_GE(snap.counters["rpc.udp_batches"], 1);
  EXPECT_EQ(snap.gauges["rpc.reactors"], 2);
  EXPECT_EQ(snap.gauges["rpc.workers"], 4);

  // Latency histograms: one queue-wait + one handle + one e2e sample
  // per served datagram, p-order sane.
  ASSERT_TRUE(snap.histograms.count("rpc.queue_ns"));
  ASSERT_TRUE(snap.histograms.count("rpc.handle_ns"));
  ASSERT_TRUE(snap.histograms.count("rpc.udp_e2e_ns"));
  const HistogramSnapshot& e2e = snap.histograms["rpc.udp_e2e_ns"];
  EXPECT_GE(static_cast<std::int64_t>(
                snap.histograms["rpc.queue_ns"].total()),
            calls);
  EXPECT_GE(static_cast<std::int64_t>(
                snap.histograms["rpc.handle_ns"].total()),
            calls);
  EXPECT_GE(static_cast<std::int64_t>(e2e.total()), calls);
  EXPECT_GT(e2e.p50(), 0);
  EXPECT_LE(e2e.p50(), e2e.p99());
  EXPECT_LE(e2e.p99(), e2e.max);
  // End-to-end includes the handler, so distribution-wide: max(e2e)
  // covers at least one full handle.
  EXPECT_GE(e2e.max, snap.histograms["rpc.handle_ns"].quantile(0.0));

  // Dispatch plane: every datagram that reached a handler is a
  // registry request, and all of ours succeeded.
  EXPECT_GE(snap.counters["svc.requests"], calls);
  EXPECT_GE(snap.counters["svc.success"], calls);
  EXPECT_EQ(snap.counters["svc.protocol_errors"], 0);

  // Service tiers partition the served requests exactly.
  const std::int64_t tier_sum = snap.counters["service.tier_jit"] +
                                snap.counters["service.tier_plan"] +
                                snap.counters["service.tier_generic"];
  EXPECT_EQ(tier_sum, snap.counters["service.fast_path"] +
                          snap.counters["service.generic_path"]);
  EXPECT_GE(tier_sum, calls);

  // Cache plane: one miss per distinct shape, the rest hits; gauges
  // reflect the live cache.
  EXPECT_EQ(snap.counters["spec_cache.misses"],
            static_cast<std::int64_t>(sizes.size()));
  EXPECT_GE(snap.counters["spec_cache.hits"], 1);
  EXPECT_GE(snap.gauges["spec_cache.size"],
            static_cast<std::int64_t>(sizes.size()));
  EXPECT_EQ(snap.gauges["spec_cache.capacity"], 32);

  // Arena plane is registered (counters exist even if UDP traffic
  // never borrowed a pooled buffer).
  EXPECT_TRUE(snap.counters.count("arena.hits"));
  EXPECT_TRUE(snap.gauges.count("arena.bytes_pooled"));

  // The plain-struct and registry views of the same runtime agree.
  EXPECT_EQ(snap.counters["rpc.udp_datagrams"],
            runtime.stats().udp_datagrams.load());

  runtime.stop();

  // After stop() the runtime's source is gone: a fresh global snapshot
  // no longer carries its counters (cache + service are still live and
  // still contribute).
  MetricsSnapshot after = common::metrics().snapshot();
  EXPECT_EQ(after.counters.count("rpc.udp_datagrams"), 0u);
  EXPECT_GE(after.counters["spec_cache.misses"],
            static_cast<std::int64_t>(sizes.size()));
}

}  // namespace
}  // namespace tempo
