#include "net/simnet.h"

namespace tempo::net {

LinkParams LinkParams::atm_ipx() {
  LinkParams p;
  // ESA-200 ATM adapters on SBus move payload with programmed I/O: a
  // large per-packet driver cost plus a hefty per-byte cost.  Calibrated
  // so the Table 2 IPX column lands near the paper's 2.32 ms (20 ints)
  // to 25 ms (2000 ints) range.
  p.latency_us = 500.0;
  p.bandwidth_mbps = 100.0;
  p.per_packet_cpu_us = 250.0;
  p.per_byte_cpu_us = 0.35;
  return p;
}

LinkParams LinkParams::ethernet_pc() {
  LinkParams p;
  // DMA Fast-Ethernet on a P166: modest latency, small per-byte
  // checksum/copy cost (Table 2 PC column: 0.69 ms to 7.6 ms).
  p.latency_us = 100.0;
  p.bandwidth_mbps = 100.0;
  p.per_packet_cpu_us = 120.0;
  p.per_byte_cpu_us = 0.12;
  return p;
}

LinkParams LinkParams::lossy(double drop, double dup, double corrupt,
                             std::uint64_t /*seed*/) {
  LinkParams p;
  p.drop_prob = drop;
  p.dup_prob = dup;
  p.corrupt_prob = corrupt;
  return p;
}

SimEndpoint* SimNetwork::create_endpoint(std::uint16_t port) {
  if (port == 0) {
    while (endpoints_.count(next_port_)) ++next_port_;
    port = next_port_++;
  }
  Addr addr{0x7F000001u, port};
  auto ep = std::unique_ptr<SimEndpoint>(new SimEndpoint(this, addr));
  SimEndpoint* raw = ep.get();
  endpoints_[port] = std::move(ep);
  return raw;
}

Status SimNetwork::enqueue(const Addr& src, const Addr& dst,
                           ByteSpan payload) {
  ++packets_sent_;
  if (params_.drop_prob > 0 && rng_.next_bool(params_.drop_prob)) {
    ++packets_dropped_;
    return Status::ok();  // silently lost, like real UDP
  }
  Bytes data(payload.begin(), payload.end());
  if (params_.corrupt_prob > 0 && !data.empty() &&
      rng_.next_bool(params_.corrupt_prob)) {
    data[rng_.next_below(data.size())] ^= 0xFF;
  }
  if (params_.truncate_prob > 0 && data.size() > 1 &&
      rng_.next_bool(params_.truncate_prob)) {
    data.resize(data.size() / 2);
  }

  const double wire_us =
      params_.latency_us + params_.per_packet_cpu_us +
      static_cast<double>(data.size()) *
          (8.0 / params_.bandwidth_mbps + params_.per_byte_cpu_us);
  const auto delay = static_cast<VirtualNanos>(wire_us * 1000.0);

  const bool duplicate =
      params_.dup_prob > 0 && rng_.next_bool(params_.dup_prob);
  queue_.push(Event{clock_.now() + delay, next_seq_++, src, dst, data});
  if (duplicate) {
    queue_.push(
        Event{clock_.now() + 2 * delay, next_seq_++, src, dst, std::move(data)});
  }
  return Status::ok();
}

bool SimNetwork::step(VirtualNanos until) {
  if (queue_.empty() || queue_.top().at > until) return false;
  Event ev = queue_.top();
  queue_.pop();
  clock_.advance_to(ev.at);
  auto it = endpoints_.find(ev.dst.port);
  if (it == endpoints_.end()) return true;  // no listener: datagram lost
  SimEndpoint* ep = it->second.get();
  if (ep->handler_) {
    ep->handler_(ev.src, ByteSpan(ev.payload.data(), ev.payload.size()));
  } else {
    ep->mailbox_.emplace_back(ev.src, std::move(ev.payload));
  }
  return true;
}

void SimNetwork::pump(VirtualNanos until) {
  while (step(until)) {
  }
}

Status SimEndpoint::send_to(const Addr& dst, ByteSpan payload) {
  return net_->enqueue(addr_, dst, payload);
}

Result<std::size_t> SimEndpoint::recv_from(Addr* src, MutableByteSpan out,
                                           int timeout_ms) {
  const VirtualNanos deadline =
      timeout_ms < 0 ? SimNetwork::kForever
                     : net_->now() + static_cast<VirtualNanos>(timeout_ms) *
                                         1'000'000;
  // Pump events (which may run server handlers inline) until something
  // lands in our mailbox or virtual time passes the deadline.
  while (mailbox_.empty()) {
    if (!net_->step(deadline)) break;
  }
  if (mailbox_.empty()) {
    net_->clock().advance_to(deadline == SimNetwork::kForever ? net_->now()
                                                              : deadline);
    return Status(timeout_error("sim recv_from"));
  }
  auto [from, data] = std::move(mailbox_.front());
  mailbox_.pop_front();
  if (src) *src = from;
  const std::size_t n = data.size() < out.size() ? data.size() : out.size();
  std::copy(data.begin(), data.begin() + static_cast<std::ptrdiff_t>(n),
            out.begin());
  return n;
}

}  // namespace tempo::net
