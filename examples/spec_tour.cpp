// A tour of the specialization pipeline — what Tempo's user saw (§6.1).
//
// For the paper's rmin example this prints:
//   1. the generic micro-layer code (IR) as rpcgen would emit it,
//   2. the binding-time division: "S|" static lines evaluate at
//      specialization time, "D|" dynamic lines survive into the residual
//      program (Tempo's two-color display, including the partially-static
//      xdrs record, folded dispatches/overflow checks, and the
//      static-return refinement notes),
//   3. the residual plans — the Figure-5 code — for client encode and
//      reply decode, at two unroll policies.
//
// Build & run:  ./examples/spec_tour
#include <cstdio>

#include "core/stubspec.h"
#include "idl/parser.h"

using namespace tempo;

int main() {
  constexpr const char* kInterface = R"(
struct pair {
    int int1;
    int int2;
};

struct samples {
    int values<64>;
};

program RMIN_PROG {
    version RMIN_VERS {
        int  RMIN(pair)       = 1;
        samples SMOOTH(samples) = 2;
    } = 1;
} = 0x20000099;
)";

  auto module = idl::parse_xdr_source(kInterface);
  if (!module.is_ok()) {
    std::fprintf(stderr, "%s\n", module.status().to_string().c_str());
    return 1;
  }
  const auto& prog = module->programs.front();
  const auto& rmin = prog.versions.front().procs[0];
  const auto& smooth = prog.versions.front().procs[1];

  // ---- 1+2: generic code with its binding-time division ----
  auto rmin_iface = core::SpecializedInterface::build(
      rmin, prog.number, 1, core::SpecConfig{});
  if (!rmin_iface.is_ok()) {
    std::fprintf(stderr, "%s\n", rmin_iface.status().to_string().c_str());
    return 1;
  }
  std::printf("================================================\n");
  std::printf("Binding-time division of the rmin encode path\n");
  std::printf("  (S| = evaluated at specialization time,\n");
  std::printf("   D| = residualized into the specialized stub)\n");
  std::printf("================================================\n");
  auto listing = rmin_iface->annotated_encode_listing();
  if (!listing.is_ok()) {
    std::fprintf(stderr, "%s\n", listing.status().to_string().c_str());
    return 1;
  }
  std::printf("%s\n", listing->c_str());

  // ---- 3: residual plans (the Figure-5 view) ----
  std::printf("================================================\n");
  std::printf("Residual client stubs for rmin (paper Fig. 5)\n");
  std::printf("================================================\n");
  std::printf("%s\n", rmin_iface->encode_call_plan().to_string().c_str());
  std::printf("%s\n", rmin_iface->decode_reply_plan().to_string().c_str());

  // An array interface at two unroll policies.
  core::SpecConfig full_cfg;
  full_cfg.arg_counts = {12};
  full_cfg.res_counts = {12};
  auto full = core::SpecializedInterface::build(smooth, prog.number, 1,
                                                full_cfg);
  core::SpecConfig part_cfg = full_cfg;
  part_cfg.unroll_factor = 4;
  auto part = core::SpecializedInterface::build(smooth, prog.number, 1,
                                                part_cfg);
  if (!full.is_ok() || !part.is_ok()) {
    std::fprintf(stderr, "specialization failed\n");
    return 1;
  }
  std::printf("================================================\n");
  std::printf("smooth(int values<64>) pinned at 12 elements,\n");
  std::printf("fully unrolled (Table 3 regime):\n");
  std::printf("================================================\n");
  std::printf("%s\n", full->encode_call_plan().to_string().c_str());
  std::printf("================================================\n");
  std::printf("same, block-unrolled by 4 (Table 4 regime):\n");
  std::printf("================================================\n");
  std::printf("%s\n", part->encode_call_plan().to_string().c_str());

  std::printf("code bytes: full=%zu, 4-unrolled=%zu\n",
              full->encode_call_plan().code_bytes(),
              part->encode_call_plan().code_bytes());
  return 0;
}
