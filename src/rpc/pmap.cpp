#include "rpc/pmap.h"

namespace tempo::rpc {

using xdr::XdrStream;

bool xdr_mapping(XdrStream& xdrs, Mapping& m) {
  return xdr::xdr_u_int(xdrs, m.prog) && xdr::xdr_u_int(xdrs, m.vers) &&
         xdr::xdr_u_int(xdrs, m.prot) && xdr::xdr_u_int(xdrs, m.port);
}

void PortMapper::install(SvcRegistry& registry) {
  registry.register_proc(
      kPmapProg, kPmapVers, static_cast<std::uint32_t>(PmapProc::kNull),
      [](XdrStream&, XdrStream&) { return true; });

  registry.register_proc(
      kPmapProg, kPmapVers, static_cast<std::uint32_t>(PmapProc::kSet),
      [this](XdrStream& in, XdrStream& out) {
        Mapping m;
        if (!xdr_mapping(in, m)) return false;
        bool ok = set(m);
        return xdr::xdr_bool(out, ok);
      });

  registry.register_proc(
      kPmapProg, kPmapVers, static_cast<std::uint32_t>(PmapProc::kUnset),
      [this](XdrStream& in, XdrStream& out) {
        Mapping m;
        if (!xdr_mapping(in, m)) return false;
        bool ok = unset(m.prog, m.vers);
        return xdr::xdr_bool(out, ok);
      });

  registry.register_proc(
      kPmapProg, kPmapVers, static_cast<std::uint32_t>(PmapProc::kGetPort),
      [this](XdrStream& in, XdrStream& out) {
        Mapping m;
        if (!xdr_mapping(in, m)) return false;
        std::uint32_t port = getport(m.prog, m.vers, m.prot);
        return xdr::xdr_u_int(out, port);
      });
}

bool PortMapper::set(const Mapping& m) {
  // RFC 1057: SET fails if a mapping already exists for the tuple.
  return table_.emplace(Key{m.prog, m.vers, m.prot}, m.port).second;
}

bool PortMapper::unset(std::uint32_t prog, std::uint32_t vers) {
  bool any = false;
  for (auto prot : {kIpprotoUdp, kIpprotoTcp}) {
    any |= table_.erase(Key{prog, vers, prot}) > 0;
  }
  return any;
}

std::uint32_t PortMapper::getport(std::uint32_t prog, std::uint32_t vers,
                                  std::uint32_t prot) const {
  const auto it = table_.find(Key{prog, vers, prot});
  return it == table_.end() ? 0 : it->second;
}

namespace {

Result<bool> pmap_bool_call(net::DatagramTransport& transport,
                            net::Addr pmap_addr, PmapProc proc,
                            Mapping m) {
  UdpClient client(transport, pmap_addr, kPmapProg, kPmapVers);
  bool result = false;
  Status st = client.call(
      static_cast<std::uint32_t>(proc),
      [&](XdrStream& x) { return xdr_mapping(x, m); },
      [&](XdrStream& x) { return xdr::xdr_bool(x, result); });
  if (!st.is_ok()) return st;
  return result;
}

}  // namespace

Result<bool> pmap_set(net::DatagramTransport& transport, net::Addr pmap_addr,
                      const Mapping& m) {
  return pmap_bool_call(transport, pmap_addr, PmapProc::kSet, m);
}

Result<bool> pmap_unset(net::DatagramTransport& transport,
                        net::Addr pmap_addr, std::uint32_t prog,
                        std::uint32_t vers) {
  Mapping m;
  m.prog = prog;
  m.vers = vers;
  return pmap_bool_call(transport, pmap_addr, PmapProc::kUnset, m);
}

Result<std::uint32_t> pmap_getport(net::DatagramTransport& transport,
                                   net::Addr pmap_addr, std::uint32_t prog,
                                   std::uint32_t vers, std::uint32_t prot) {
  UdpClient client(transport, pmap_addr, kPmapProg, kPmapVers);
  Mapping m;
  m.prog = prog;
  m.vers = vers;
  m.prot = prot;
  std::uint32_t port = 0;
  Status st = client.call(
      static_cast<std::uint32_t>(PmapProc::kGetPort),
      [&](XdrStream& x) { return xdr_mapping(x, m); },
      [&](XdrStream& x) { return xdr::xdr_u_int(x, port); });
  if (!st.is_ok()) return st;
  return port;
}

}  // namespace tempo::rpc
