#include "net/reactor.h"

#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <utility>

#include "net/transport.h"

#if defined(__linux__)
#include <sys/epoll.h>
#include <sys/eventfd.h>
#define TEMPO_HAVE_EPOLL 1
#else
#define TEMPO_HAVE_EPOLL 0
#endif

namespace tempo::net {

namespace {

#if TEMPO_HAVE_EPOLL
std::uint32_t to_epoll_mask(unsigned interest) {
  std::uint32_t m = 0;
  if (interest & kEventRead) m |= EPOLLIN;
  if (interest & kEventWrite) m |= EPOLLOUT;
  return m;
}

unsigned from_epoll_mask(std::uint32_t m) {
  unsigned ev = 0;
  if (m & (EPOLLIN | EPOLLHUP | EPOLLERR)) ev |= kEventRead;
  if (m & EPOLLOUT) ev |= kEventWrite;
  if (m & (EPOLLHUP | EPOLLERR)) ev |= kEventError;
  return ev;
}
#endif

unsigned from_poll_mask(short m) {
  unsigned ev = 0;
  if (m & (POLLIN | POLLHUP | POLLERR | POLLNVAL)) ev |= kEventRead;
  if (m & POLLOUT) ev |= kEventWrite;
  if (m & (POLLHUP | POLLERR | POLLNVAL)) ev |= kEventError;
  return ev;
}

short to_poll_mask(unsigned interest) {
  short m = 0;
  if (interest & kEventRead) m |= POLLIN;
  if (interest & kEventWrite) m |= POLLOUT;
  return m;
}

// Poll-CQE user_data payload: generation (24 bits, wrap-around is fine
// — a stale CQE colliding needs 2^24 re-arms while one completion sits
// unreaped) above the fd (32 bits).
constexpr unsigned kGenMask = 0xFFFFFFu;

std::uint64_t poll_user_data(int fd, unsigned gen) {
  return uring_user_data(kUringTagPoll,
                         (static_cast<std::uint64_t>(gen & kGenMask) << 32) |
                             static_cast<std::uint32_t>(fd));
}

}  // namespace

void Reactor::init_wakeup() {
#if defined(__linux__)
  // eventfd: one fd per reactor instead of a pipe pair, and draining is
  // a single 8-byte counter read.
  int efd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (efd >= 0) {
    wake_read_fd_ = wake_write_fd_ = efd;
    return;
  }
#endif
  int fds[2];
  if (::pipe(fds) != 0) return;
  wake_read_fd_ = fds[0];
  wake_write_fd_ = fds[1];
  if (!set_fd_nonblocking(wake_read_fd_, true) ||
      !set_fd_nonblocking(wake_write_fd_, true)) {
    ::close(wake_read_fd_);
    ::close(wake_write_fd_);
    wake_read_fd_ = wake_write_fd_ = -1;
  }
}

void Reactor::init_epoll() {
#if TEMPO_HAVE_EPOLL
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  use_epoll_ = epoll_fd_ >= 0;
  if (use_epoll_) {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = wake_read_fd_;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_read_fd_, &ev) != 0) {
      ::close(epoll_fd_);
      epoll_fd_ = -1;
      use_epoll_ = false;
    }
  }
#endif
}

Reactor::Reactor(ReactorBackend backend, bool sqpoll) {
  init_wakeup();
  if (!ok()) return;
  if (backend == ReactorBackend::kUring && Uring::supported()) {
    auto ring = std::make_unique<Uring>(256, sqpoll);
    if (ring->ok()) {
      uring_ = std::move(ring);
      // Arm the wakeup poll before the loop thread exists so the first
      // blocking wait can already be popped.
      uring_->prep_poll_add(wake_read_fd_, POLLIN,
                            uring_user_data(kUringTagWake, 0));
      wake_armed_ = true;
      uring_->submit();
      return;
    }
  }
  if (backend != ReactorBackend::kPoll) init_epoll();
}

Reactor::~Reactor() {
  // Close the ring (cancelling any in-flight SQEs) before the fds they
  // reference.
  uring_.reset();
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_read_fd_ >= 0) ::close(wake_read_fd_);
  if (wake_write_fd_ >= 0 && wake_write_fd_ != wake_read_fd_) {
    ::close(wake_write_fd_);
  }
}

bool Reactor::ok() const { return wake_read_fd_ >= 0; }

const char* Reactor::backend() const {
  if (uring_) return "uring";
  return use_epoll_ ? "epoll" : "poll";
}

void Reactor::uring_arm_poll(int fd, Entry& e) {
  if (e.armed) return;
  const short mask = to_poll_mask(e.interest);
  if (mask == 0) return;
  uring_->prep_poll_add(fd, static_cast<unsigned>(mask),
                        poll_user_data(fd, e.gen));
  e.armed = true;
}

void Reactor::uring_disarm_poll(int fd, Entry& e) {
  if (!e.armed) return;
  uring_->prep_poll_remove(poll_user_data(fd, e.gen),
                           uring_user_data(kUringTagIgnore, 0));
  e.gen = (e.gen + 1) & kGenMask;  // stale CQEs no longer match
  e.armed = false;
}

bool Reactor::add(int fd, unsigned interest, EventFn fn) {
  if (fd < 0 || handlers_.count(fd) != 0) return false;
#if TEMPO_HAVE_EPOLL
  if (use_epoll_) {
    epoll_event ev{};
    ev.events = to_epoll_mask(interest);
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) return false;
  }
#endif
  Entry& e = handlers_[fd];
  e.interest = interest;
  e.fn = std::move(fn);
  if (uring_) uring_arm_poll(fd, e);
  return true;
}

bool Reactor::set_interest(int fd, unsigned interest) {
  auto it = handlers_.find(fd);
  if (it == handlers_.end()) return false;
#if TEMPO_HAVE_EPOLL
  if (use_epoll_) {
    epoll_event ev{};
    ev.events = to_epoll_mask(interest);
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) return false;
  }
#endif
  if (uring_ && it->second.interest != interest) {
    uring_disarm_poll(fd, it->second);
    it->second.interest = interest;
    uring_arm_poll(fd, it->second);
    return true;
  }
  it->second.interest = interest;
  return true;
}

bool Reactor::remove(int fd) {
  auto it = handlers_.find(fd);
  if (it == handlers_.end()) return false;
#if TEMPO_HAVE_EPOLL
  if (use_epoll_) {
    // Ignore failure: the caller may have closed the fd already, which
    // removes it from the epoll set implicitly.
    (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  }
#endif
  if (uring_) uring_disarm_poll(fd, it->second);
  handlers_.erase(it);
  return true;
}

void Reactor::post(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(post_mu_);
    posted_.push_back(std::move(fn));
  }
  wakeup();
}

void Reactor::wakeup() {
  // Collapse storms: one pending signal is enough to pop poll_once.
  if (wake_pending_.exchange(true, std::memory_order_acq_rel)) return;
  ssize_t n;
  if (wake_write_fd_ == wake_read_fd_) {
    const std::uint64_t one = 1;  // eventfd counter increment
    do {
      n = ::write(wake_write_fd_, &one, sizeof(one));
    } while (n < 0 && errno == EINTR);
  } else {
    const char b = 1;
    do {
      n = ::write(wake_write_fd_, &b, 1);
    } while (n < 0 && errno == EINTR);
  }
}

void Reactor::drain_posted() {
  std::vector<std::function<void()>> run;
  {
    std::lock_guard<std::mutex> lock(post_mu_);
    run.swap(posted_);
  }
  for (auto& fn : run) fn();
}

void Reactor::drain_wakeup_pipe() {
  // Read BEFORE clearing the flag.  The reverse order loses wakeups: a
  // wakeup() racing between the store and the read writes a byte that
  // the read then consumes, leaving wake_pending_ true with an empty
  // pipe — every later wakeup() would skip its write and a reactor
  // blocked in epoll_wait(-1) would never pop.  With this order, a
  // racer that observes the still-true flag skips the write, and its
  // posted closure is picked up by the drain_posted() that follows
  // every backend_wait().
  //
  // For the eventfd the first read returns the whole 8-byte counter and
  // resets it, so the loop exits after one iteration.
  char buf[64];
  while (::read(wake_read_fd_, buf, sizeof(buf)) > 0) {
  }
  wake_pending_.store(false, std::memory_order_release);
}

int Reactor::uring_wait(int timeout_ms,
                        std::vector<std::pair<int, unsigned>>* out) {
  cqe_scratch_.clear();
  const int n = uring_->submit_and_wait(timeout_ms, cqe_scratch_);
  for (const UringCqe& c : cqe_scratch_) {
    switch (uring_tag(c.user_data)) {
      case kUringTagWake:
        wake_armed_ = false;
        drain_wakeup_pipe();
        break;
      case kUringTagPoll: {
        const int fd = static_cast<int>(c.user_data & 0xFFFFFFFFu);
        const unsigned gen =
            static_cast<unsigned>(uring_payload(c.user_data) >> 32);
        auto it = handlers_.find(fd);
        if (it == handlers_.end() || (it->second.gen & kGenMask) != gen) {
          break;  // stale: fd removed or interest replaced since arming
        }
        it->second.armed = false;
        const unsigned ev = c.res >= 0
                                ? from_poll_mask(static_cast<short>(c.res))
                                : (kEventRead | kEventError);
        if (ev != 0) out->emplace_back(fd, ev);
        break;
      }
      case kUringTagIgnore:
        break;
      default:
        if (cqe_handler_) cqe_handler_(c.user_data, c.res, c.flags);
        break;
    }
  }
  if (!wake_armed_) {
    // Re-arm the wakeup poll; submitted before the next blocking wait.
    // A wakeup() racing the unarmed window leaves the eventfd counter
    // nonzero, so the fresh (level-triggered) poll completes instantly.
    uring_->prep_poll_add(wake_read_fd_, POLLIN,
                          uring_user_data(kUringTagWake, 0));
    wake_armed_ = true;
  }
  if (cqe_drain_hook_) cqe_drain_hook_();
  return n;
}

int Reactor::backend_wait(int timeout_ms,
                          std::vector<std::pair<int, unsigned>>* out) {
  if (uring_) return uring_wait(timeout_ms, out);
#if TEMPO_HAVE_EPOLL
  if (use_epoll_) {
    epoll_event events[64];
    int n;
    do {
      n = ::epoll_wait(epoll_fd_, events, 64, timeout_ms);
    } while (n < 0 && errno == EINTR);
    if (n <= 0) return n;
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_read_fd_) {
        drain_wakeup_pipe();
        continue;
      }
      out->emplace_back(fd, from_epoll_mask(events[i].events));
    }
    return n;
  }
#endif
  std::vector<pollfd> pfds;
  pfds.reserve(handlers_.size() + 1);
  pfds.push_back(pollfd{wake_read_fd_, POLLIN, 0});
  for (const auto& [fd, entry] : handlers_) {
    const short mask = to_poll_mask(entry.interest);
    if (mask != 0) pfds.push_back(pollfd{fd, mask, 0});
  }
  int n;
  do {
    n = ::poll(pfds.data(), pfds.size(), timeout_ms);
  } while (n < 0 && errno == EINTR);
  if (n <= 0) return n;
  if (pfds[0].revents != 0) drain_wakeup_pipe();
  for (std::size_t i = 1; i < pfds.size(); ++i) {
    if (pfds[i].revents != 0) {
      out->emplace_back(pfds[i].fd, from_poll_mask(pfds[i].revents));
    }
  }
  return n;
}

int Reactor::poll_once(int timeout_ms) {
  drain_posted();

  std::vector<std::pair<int, unsigned>> ready;
  const int n = backend_wait(timeout_ms, &ready);
  if (n <= 0 && ready.empty()) {
    // A wakeup() may have carried posted closures.
    drain_posted();
    return 0;
  }

  // Closures posted while we were blocked run before fd dispatch (reply
  // completions should be buffered before new reads are parsed).
  drain_posted();

  int dispatched = 0;
  for (const auto& [fd, events] : ready) {
    auto it = handlers_.find(fd);
    if (it == handlers_.end()) continue;  // removed earlier in this batch
    // Copy the callback: the handler may remove itself (erasing the
    // entry) while running.
    EventFn fn = it->second.fn;
    fn(events);
    ++dispatched;
  }
  if (uring_) {
    // One-shot polls consumed this batch are re-armed only now, after
    // their handlers ran: a handler that read the fd dry re-arms a
    // quiet poll, one that left bytes behind gets an immediate
    // completion — level-triggered semantics, one SQE per burst.
    for (const auto& [fd, events] : ready) {
      auto it = handlers_.find(fd);
      if (it != handlers_.end()) uring_arm_poll(fd, it->second);
    }
  }
  return dispatched;
}

}  // namespace tempo::net
