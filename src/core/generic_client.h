// Value-typed convenience wrapper over the generic UDP client: call a
// remote procedure with idl::Value arguments/results, marshaled through
// the stock layered path.  This is the "original Sun RPC" flavor used
// as the baseline everywhere.
#pragma once

#include "idl/interp.h"
#include "net/transport.h"
#include "rpc/client.h"
#include "rpc/svc.h"

namespace tempo::core {

class GenericValueClient {
 public:
  GenericValueClient(net::DatagramTransport& transport, net::Addr server,
                     std::uint32_t prog, std::uint32_t vers,
                     rpc::CallOptions opts = {})
      : inner_(transport, server, prog, vers, opts) {}

  Result<idl::Value> call(std::uint32_t proc, const idl::Type& arg_type,
                          const idl::Value& arg, const idl::Type& res_type) {
    idl::Value result;
    Status st = inner_.call(
        proc,
        [&](xdr::XdrStream& x) { return idl::encode_value(x, arg_type, arg); },
        [&](xdr::XdrStream& x) {
          return idl::decode_value(x, res_type, result);
        });
    if (!st.is_ok()) return st;
    return result;
  }

  rpc::UdpClient& raw() { return inner_; }

 private:
  rpc::UdpClient inner_;
};

// Registers a Value-level handler with a SvcRegistry (generic server).
template <typename Fn>  // Fn: Result<idl::Value>(const idl::Value&)
void register_value_handler(rpc::SvcRegistry& registry, std::uint32_t prog,
                            std::uint32_t vers, std::uint32_t proc,
                            idl::TypePtr arg_type, idl::TypePtr res_type,
                            Fn fn) {
  registry.register_proc(
      prog, vers, proc,
      [arg_type, res_type, fn = std::move(fn)](xdr::XdrStream& in,
                                               xdr::XdrStream& out) {
        idl::Value arg;
        if (!idl::decode_value(in, *arg_type, arg)) return false;
        auto res = fn(arg);
        if (!res.is_ok()) return false;
        return idl::encode_value(out, *res_type, *res);
      });
}

}  // namespace tempo::core
