#include "common/bytes.h"

namespace tempo {

std::string hex_dump(ByteSpan bytes, std::size_t max_bytes) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  const std::size_t n = bytes.size() < max_bytes ? bytes.size() : max_bytes;
  out.reserve(n * 3);
  for (std::size_t i = 0; i < n; ++i) {
    if (i) out.push_back(' ');
    out.push_back(kHex[bytes[i] >> 4]);
    out.push_back(kHex[bytes[i] & 0xF]);
  }
  if (bytes.size() > max_bytes) out += " ...";
  return out;
}

}  // namespace tempo
