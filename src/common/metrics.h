// Unified observability plane (DESIGN: the measurement substrate for
// overload control, io_uring A/B and the KV workload).
//
// Three pieces, all allocation-free on the hot path:
//
//  - LatencyHistogram: HdrHistogram-style log-linear buckets.  One
//    `record(ns)` is a single relaxed fetch_add into the bucket the
//    value indexes (plus a usually-silent max update); no locks, no
//    floating point, wait-free from any number of threads.  32
//    sub-buckets per octave bound the relative quantile error at
//    ~3% (1/32), over the full [0, 2^63) nanosecond range in ~15 KB
//    of atomics.
//
//  - Counter / Gauge: relaxed atomics with names, owned by the
//    registry, stable addresses for life (callers cache the
//    reference and never look up again).
//
//  - MetricsRegistry: names instruments by (name, shard), merges
//    everything into one MetricsSnapshot, and lets components whose
//    stats already live elsewhere (SpecCache, CachedSpecService,
//    SvcRegistry, the server runtimes) fold those counters in at
//    snapshot time through registered source callbacks — one
//    `metrics().snapshot()` sees the whole process.
//
// Snapshots are plain values: mergeable (bucket-wise addition —
// associative and commutative, pinned by test_metrics), comparable,
// and serializable to JSON.  `TEMPO_METRICS=0` turns hot-path
// recording off (the <2% overhead A/B in CI flips exactly this knob);
// `TEMPO_METRICS_DUMP=<path|->` dumps the final snapshot at process
// exit.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace tempo::common {

// Steady-clock nanoseconds (the tracing/histogram time base).
std::int64_t monotonic_ns();

// Cached once from TEMPO_METRICS: unset/anything-else = on,
// "0"/"off" = off.  Runtimes consult this at start() and skip all
// hot-path clock reads and records when off.
bool metrics_enabled();

// ---------------------------------------------------------------------------
// Histogram

struct HistogramSnapshot {
  // Bucket-count vector (empty == "no samples"; otherwise
  // LatencyHistogram::kBuckets long) plus the exact observed max.
  std::vector<std::uint64_t> counts;
  std::int64_t max = 0;

  std::uint64_t total() const;
  // Value at quantile q in [0,1]: midpoint of the bucket holding the
  // rank-⌈q·total⌉ sample, clamped to the exact max.  0 when empty.
  std::int64_t quantile(double q) const;
  std::int64_t p50() const { return quantile(0.50); }
  std::int64_t p90() const { return quantile(0.90); }
  std::int64_t p99() const { return quantile(0.99); }
  std::int64_t p999() const { return quantile(0.999); }
  double mean() const;  // bucket-midpoint approximation

  // Bucket-wise addition; max-of-max.  Associative + commutative.
  void merge(const HistogramSnapshot& other);

  bool operator==(const HistogramSnapshot& other) const;
};

class LatencyHistogram {
 public:
  static constexpr unsigned kSubBits = 5;               // 32/octave
  static constexpr unsigned kSubBuckets = 1u << kSubBits;
  static constexpr unsigned kOctaves = 60;              // covers uint64
  static constexpr unsigned kBuckets = kOctaves * kSubBuckets;

  // Wait-free: one relaxed fetch_add on the indexed bucket, plus a
  // load-guarded CAS that only fires on a new maximum.  Negative
  // inputs clamp to 0 (they land in bucket 0 and never corrupt the
  // distribution; the tracing tests assert none occur).
  void record(std::int64_t ns) noexcept {
    const std::uint64_t v = ns <= 0 ? 0u : static_cast<std::uint64_t>(ns);
    counts_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    std::int64_t cur = max_.load(std::memory_order_relaxed);
    while (ns > cur && !max_.compare_exchange_weak(
                           cur, ns, std::memory_order_relaxed)) {
    }
  }

  // Log-linear index: values below 32 map 1:1; above, the top
  // kSubBits+1 bits select (octave, sub-bucket).  Monotone in v.
  static std::size_t bucket_index(std::uint64_t v) noexcept {
    if (v < kSubBuckets) return static_cast<std::size_t>(v);
    const unsigned octave =
        static_cast<unsigned>(std::bit_width(v)) - kSubBits;
    return static_cast<std::size_t>(octave) * kSubBuckets +
           static_cast<std::size_t>(v >> (octave - 1)) - kSubBuckets;
  }

  // Smallest value mapping to `index` (bucket_floor(bucket_index(v))
  // <= v, pinned by test_metrics).
  static std::uint64_t bucket_floor(std::size_t index) noexcept {
    const std::size_t octave = index / kSubBuckets;
    const std::uint64_t sub = index % kSubBuckets;
    if (octave == 0) return sub;
    return (kSubBuckets + sub) << (octave - 1);
  }

  // Bucket width (the quantile midpoint is floor + width/2).
  static std::uint64_t bucket_width(std::size_t index) noexcept {
    const std::size_t octave = index / kSubBuckets;
    return octave == 0 ? 1 : std::uint64_t{1} << (octave - 1);
  }

  HistogramSnapshot snapshot() const;
  std::uint64_t total() const;
  void reset();

 private:
  std::atomic<std::uint64_t> counts_[kBuckets]{};
  std::atomic<std::int64_t> max_{0};
};

// ---------------------------------------------------------------------------
// Counter / Gauge

class Counter {
 public:
  void add(std::int64_t d) noexcept {
    v_.fetch_add(d, std::memory_order_relaxed);
  }
  void inc() noexcept { add(1); }
  std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> v_{0};
};

class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    v_.store(v, std::memory_order_relaxed);
  }
  std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> v_{0};
};

// ---------------------------------------------------------------------------
// Snapshot + registry

struct MetricsSnapshot {
  std::map<std::string, std::int64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  void add_counter(const std::string& name, std::int64_t v) {
    counters[name] += v;
  }
  void set_gauge(const std::string& name, std::int64_t v) {
    gauges[name] = v;
  }
  // Additive gauge contribution (what sources use, so two live
  // instances of a component sum their pool sizes instead of the
  // later source overwriting the earlier one).
  void add_gauge(const std::string& name, std::int64_t v) {
    gauges[name] += v;
  }
  void merge_histogram(const std::string& name, const HistogramSnapshot& h) {
    histograms[name].merge(h);
  }
  void merge(const MetricsSnapshot& other);

  // {"counters": {...}, "gauges": {...}, "histograms": {name:
  // {count, max, mean, p50, p90, p99, p999}}}.  Metric names are
  // dotted ASCII identifiers by convention; no string escaping.
  std::string to_json() const;
  // Human-readable table (what the examples print on exit).
  void print(std::FILE* f) const;
};

class MetricsRegistry {
 public:
  // Get-or-create by (name, shard).  Returned references are stable
  // for the registry's lifetime — resolve once, record lock-free
  // forever.  Same-name instruments from different shards (or from
  // multiple component instances) sum in the snapshot.
  Counter& counter(const std::string& name, std::size_t shard = 0);
  Gauge& gauge(const std::string& name, std::size_t shard = 0);
  LatencyHistogram& histogram(const std::string& name,
                              std::size_t shard = 0);

  // Components with pre-existing stats structs contribute them at
  // snapshot time.  The handle unregisters on destruction; callbacks
  // run under the registry mutex, so after add_source() returns a
  // removed source is never mid-flight.
  using Source = std::function<void(MetricsSnapshot&)>;
  class SourceHandle {
   public:
    SourceHandle() = default;
    SourceHandle(MetricsRegistry* reg, std::uint64_t id)
        : reg_(reg), id_(id) {}
    ~SourceHandle() { reset(); }
    SourceHandle(SourceHandle&& o) noexcept : reg_(o.reg_), id_(o.id_) {
      o.reg_ = nullptr;
    }
    SourceHandle& operator=(SourceHandle&& o) noexcept {
      if (this != &o) {
        reset();
        reg_ = o.reg_;
        id_ = o.id_;
        o.reg_ = nullptr;
      }
      return *this;
    }
    SourceHandle(const SourceHandle&) = delete;
    SourceHandle& operator=(const SourceHandle&) = delete;
    void reset();

   private:
    MetricsRegistry* reg_ = nullptr;
    std::uint64_t id_ = 0;
  };
  [[nodiscard]] SourceHandle add_source(Source fn);

  // One coherent view: owned instruments (per-shard merged by name)
  // plus every registered source's contribution.
  MetricsSnapshot snapshot() const;

 private:
  friend class SourceHandle;
  void remove_source(std::uint64_t id);

  using Key = std::pair<std::string, std::size_t>;
  mutable std::mutex mu_;
  std::map<Key, std::unique_ptr<Counter>> counters_;
  std::map<Key, std::unique_ptr<Gauge>> gauges_;
  std::map<Key, std::unique_ptr<LatencyHistogram>> histograms_;
  std::map<std::uint64_t, Source> sources_;
  std::uint64_t next_source_id_ = 1;
};

// The process-wide registry (what every component registers into and
// what Runtime::metrics_snapshot() reads).  First use arms the
// TEMPO_METRICS_DUMP on-exit hook.
MetricsRegistry& metrics();

// metrics().snapshot().to_json() to f.
void dump_metrics_json(std::FILE* f);

}  // namespace tempo::common
