// End-to-end suites: whole-stack RPC under fault injection, and
// specialized/generic interop across many interface types (property
// style, parameterized).
#include <gtest/gtest.h>

#include "core/generic_client.h"
#include "core/service.h"
#include "core/spec_client.h"
#include "net/simnet.h"
#include "pe/layout.h"
#include "rpc/svc.h"

namespace tempo {
namespace {

using core::SpecConfig;
using core::SpecializedClient;
using core::SpecializedInterface;
using core::SpecializedService;

constexpr std::uint32_t kProg = 0x20000888;
constexpr std::uint32_t kVers = 3;
constexpr std::uint32_t kProc = 2;

// ---- fault injection over the full stack --------------------------------

struct FaultCase {
  const char* name;
  double drop, dup, corrupt, truncate;
  std::uint64_t seed;
};

class FaultInjection : public ::testing::TestWithParam<FaultCase> {};

TEST_P(FaultInjection, SpecializedCallsSurvive) {
  const FaultCase& fc = GetParam();
  net::LinkParams link;
  link.latency_us = 40;
  link.drop_prob = fc.drop;
  link.dup_prob = fc.dup;
  link.corrupt_prob = fc.corrupt;
  link.truncate_prob = fc.truncate;
  net::SimNetwork net(link, fc.seed);

  const std::uint32_t n = 32;
  idl::ProcDef proc;
  proc.name = "NEG";
  proc.number = kProc;
  proc.arg_type = idl::t_array_var(idl::t_int(), 256);
  proc.res_type = idl::t_array_var(idl::t_int(), 256);
  SpecConfig cfg;
  cfg.arg_counts = {n};
  cfg.res_counts = {n};
  auto iface = SpecializedInterface::build(proc, kProg, kVers, cfg);
  ASSERT_TRUE(iface.is_ok());

  auto* server_ep = net.create_endpoint();
  auto* client_ep = net.create_endpoint();
  rpc::SvcRegistry reg;
  SpecializedService service(
      *iface, [](std::span<const std::uint32_t> args,
                 std::span<std::uint32_t> results) {
        for (std::size_t i = 0; i < args.size(); ++i) results[i] = ~args[i];
        return true;
      });
  service.install(reg);
  rpc::attach_sim_server(server_ep, reg);

  rpc::CallOptions opts;
  opts.retry_timeout_ms = 15;
  opts.total_timeout_ms = 30000;  // virtual milliseconds are cheap
  SpecializedClient client(*client_ep, server_ep->local_addr(), *iface,
                           opts);

  Rng rng(fc.seed ^ 0x5555);
  std::vector<std::uint32_t> args(n), results(n);
  int ok = 0;
  constexpr int kCalls = 40;
  for (int c = 0; c < kCalls; ++c) {
    for (auto& a : args) a = rng.next_u32();
    Status st = client.call(args, results);
    if (st.is_ok()) {
      ++ok;
      // Data integrity is only guaranteed on fault models a checksum-less
      // UDP can survive: loss and duplication.  A corrupted *payload*
      // byte is undetectable by the RPC layer (real deployments rely on
      // the UDP checksum); corrupted *headers* are caught by the decode
      // guards and turn into retries/fallbacks, never wrong data.
      if (fc.corrupt == 0 && fc.truncate == 0) {
        for (std::uint32_t i = 0; i < n; ++i) {
          ASSERT_EQ(results[i], ~args[i]) << fc.name << " call " << c;
        }
      }
    }
  }
  // Retransmission must push every call through under drop/dup; corrupt
  // and truncate may surface as errors but must never crash or wedge.
  if (fc.corrupt == 0 && fc.truncate == 0) {
    EXPECT_EQ(ok, kCalls) << fc.name;
  } else {
    EXPECT_GT(ok, 0) << fc.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Faults, FaultInjection,
    ::testing::Values(
        FaultCase{"clean", 0, 0, 0, 0, 1},
        FaultCase{"drop10", 0.1, 0, 0, 0, 2},
        FaultCase{"drop40", 0.4, 0, 0, 0, 3},
        FaultCase{"dup25", 0, 0.25, 0, 0, 4},
        FaultCase{"drop_dup", 0.25, 0.25, 0, 0, 5},
        FaultCase{"corrupt15", 0, 0, 0.15, 0, 6},
        FaultCase{"truncate15", 0, 0, 0, 0.15, 7},
        FaultCase{"everything", 0.15, 0.15, 0.1, 0.1, 8}),
    [](const auto& info) { return std::string(info.param.name); });

// ---- interop across interface types --------------------------------------

struct TypeCase {
  const char* name;
  idl::TypePtr arg;
  idl::TypePtr res;
  std::vector<std::uint32_t> arg_counts;
  std::vector<std::uint32_t> res_counts;
};

TypeCase make_case(const char* name, idl::TypePtr t,
                   std::vector<std::uint32_t> counts) {
  return TypeCase{name, t, t, counts, counts};
}

// Resize every variable array in `value` to the pinned counts (preorder),
// filling new elements randomly — so the instance matches the
// specialization exactly.
void force_counts_rec(const idl::Type& t,
                      std::span<const std::uint32_t> counts, std::size_t& ci,
                      Rng& rng, idl::Value& value) {
  switch (t.kind) {
    case idl::Kind::kArrayVar: {
      auto& l = value.as<idl::ValueList>();
      const std::uint32_t want = counts[ci++];
      while (l.size() < want) l.push_back(idl::random_value(*t.elem, rng));
      l.resize(want);
      for (auto& e : l) force_counts_rec(*t.elem, counts, ci, rng, e);
      break;
    }
    case idl::Kind::kArrayFixed: {
      for (auto& e : value.as<idl::ValueList>()) {
        force_counts_rec(*t.elem, counts, ci, rng, e);
      }
      break;
    }
    case idl::Kind::kStruct: {
      auto& l = value.as<idl::ValueList>();
      for (std::size_t i = 0; i < t.fields.size(); ++i) {
        force_counts_rec(*t.fields[i].type, counts, ci, rng, l[i]);
      }
      break;
    }
    default:
      break;
  }
}

void force_counts(const idl::Type& t,
                  const std::vector<std::uint32_t>& counts, Rng& rng,
                  idl::Value& value) {
  std::size_t ci = 0;
  force_counts_rec(t, counts, ci, rng, value);
}

class TypedEcho : public ::testing::TestWithParam<int> {};

std::vector<TypeCase> type_cases() {
  using namespace idl;
  std::vector<TypeCase> cases;
  cases.push_back(make_case("scalar_int", t_int(), {}));
  cases.push_back(make_case("scalar_double", t_double(), {}));
  cases.push_back(make_case("hyper_pair",
                            t_struct("hp", {{"a", t_hyper()},
                                            {"b", t_uhyper()}}),
                            {}));
  cases.push_back(make_case(
      "mixed_struct",
      t_struct("m", {{"flag", t_bool()},
                     {"tag", t_enum("e", {{"A", 0}, {"B", 1}})},
                     {"f", t_float()},
                     {"sum", t_opaque_fixed(16)}}),
      {}));
  cases.push_back(make_case("fixed_matrix",
                            t_array_fixed(t_array_fixed(t_int(), 4), 4),
                            {}));
  cases.push_back(make_case("var_doubles", t_array_var(t_double(), 64),
                            {17}));
  cases.push_back(make_case(
      "struct_with_var",
      t_struct("sv", {{"len", t_uint()},
                      {"body", t_array_var(t_int(), 128)},
                      {"crc", t_uint()}}),
      {33}));
  cases.push_back(make_case(
      "array_of_structs",
      t_array_var(t_struct("pt", {{"x", t_int()}, {"y", t_int()}}), 64),
      {21}));
  return cases;
}

TEST_P(TypedEcho, SpecializedClientGenericServer) {
  const TypeCase tc = type_cases()[static_cast<std::size_t>(GetParam())];

  idl::ProcDef proc;
  proc.name = tc.name;
  proc.number = kProc;
  proc.arg_type = tc.arg;
  proc.res_type = tc.res;
  SpecConfig cfg;
  cfg.arg_counts = tc.arg_counts;
  cfg.res_counts = tc.res_counts;
  auto iface = SpecializedInterface::build(proc, kProg, kVers, cfg);
  ASSERT_TRUE(iface.is_ok()) << iface.status().to_string();

  net::SimNetwork net;
  auto* server_ep = net.create_endpoint();
  auto* client_ep = net.create_endpoint();
  rpc::SvcRegistry reg;
  // Generic (Value-level) echo server: the wire format must interoperate.
  core::register_value_handler(reg, kProg, kVers, kProc, tc.arg, tc.res,
                               [](const idl::Value& v) -> Result<idl::Value> {
                                 return v;
                               });
  rpc::attach_sim_server(server_ep, reg);

  SpecializedClient client(*client_ep, server_ep->local_addr(), *iface);

  Rng rng(static_cast<std::uint64_t>(GetParam()) + 99);
  for (int round = 0; round < 8; ++round) {
    // Random value whose var-array counts match the pinned counts.
    idl::Value value = idl::random_value(*tc.arg, rng, 64);
    force_counts(*tc.arg, tc.arg_counts, rng, value);
    pe::Slots slots;
    ASSERT_TRUE(
        pe::flatten_value(*tc.arg, value, cfg.arg_counts, slots).is_ok());
    std::vector<std::uint32_t> results(
        static_cast<std::size_t>(iface->res_slots()));
    Status st = client.call(slots, results);
    ASSERT_TRUE(st.is_ok()) << tc.name << ": " << st.to_string();
    EXPECT_EQ(std::vector<std::uint32_t>(slots.begin(), slots.end()),
              results)
        << tc.name;
  }
  EXPECT_EQ(client.stats().generic_fallbacks, 0) << tc.name;
}

INSTANTIATE_TEST_SUITE_P(
    Types, TypedEcho, ::testing::Range(0, 8), [](const auto& info) {
      return std::string(
          type_cases()[static_cast<std::size_t>(info.param)].name);
    });

}  // namespace
}  // namespace tempo
