// Shared benchmark scaffolding: the paper's workload (an RPC sending and
// receiving an array of integers — §5 "The test program"), the four
// marshaling flavors, timing helpers and table printers.
#pragma once

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/costmodel.h"
#include "common/rng.h"
#include "common/vclock.h"
#include "core/stubspec.h"
#include "idl/interp.h"
#include "pe/corpus.h"
#include "pe/interp.h"
#include "rpc/rpc_msg.h"
#include "xdr/primitives.h"
#include "xdr/xdrmem.h"

namespace tempo::bench {

inline constexpr std::uint32_t kProg = 0x20000555;
inline constexpr std::uint32_t kVers = 1;
inline constexpr std::uint32_t kProc = 7;
inline constexpr std::uint32_t kMaxArray = 2048;

// The paper's array sizes (Table 1/2 rows).
inline const std::vector<std::uint32_t>& paper_sizes() {
  static const std::vector<std::uint32_t> sizes = {20,  100, 250,
                                                   500, 1000, 2000};
  return sizes;
}

inline idl::ProcDef echo_proc() {
  idl::ProcDef proc;
  proc.name = "ECHO";
  proc.number = kProc;
  proc.arg_type = idl::t_array_var(idl::t_int(), kMaxArray);
  proc.res_type = idl::t_array_var(idl::t_int(), kMaxArray);
  return proc;
}

inline core::SpecializedInterface make_iface(std::uint32_t n,
                                             std::uint32_t unroll = 0) {
  core::SpecConfig cfg;
  cfg.arg_counts = {n};
  cfg.res_counts = {n};
  cfg.unroll_factor = unroll;
  auto iface = core::SpecializedInterface::build(echo_proc(), kProg, kVers,
                                                 cfg);
  if (!iface.is_ok()) {
    std::fprintf(stderr, "specialization failed: %s\n",
                 iface.status().to_string().c_str());
    std::abort();
  }
  return std::move(*iface);
}

// ---- the "original Sun RPC" flavor: layered C++ encode ------------------

// Marshals a full call message (header + int array) through the generic
// micro-layer path, exactly what rpc::UdpClient::call does.
inline std::size_t generic_encode_call(std::vector<std::int32_t>& args,
                                       std::uint32_t xid,
                                       MutableByteSpan out) {
  xdr::XdrMem x(out, xdr::XdrOp::kEncode);
  rpc::CallHeader hdr;
  hdr.xid = xid;
  hdr.prog = kProg;
  hdr.vers = kVers;
  hdr.proc = kProc;
  bool ok = rpc::xdr_call_header(x, hdr) &&
            xdr::xdr_array<std::int32_t>(x, args, kMaxArray, &xdr::xdr_int);
  if (!ok) std::abort();
  return x.getpos();
}

// Table-driven flavor (Hoschka & Huitema's baseline): interpret the type
// descriptor at run time.
inline std::size_t table_driven_encode_call(const idl::Type& type,
                                            const idl::Value& value,
                                            std::uint32_t xid,
                                            MutableByteSpan out) {
  xdr::XdrMem x(out, xdr::XdrOp::kEncode);
  rpc::CallHeader hdr;
  hdr.xid = xid;
  hdr.prog = kProg;
  hdr.vers = kVers;
  hdr.proc = kProc;
  bool ok = rpc::xdr_call_header(x, hdr) && idl::encode_value(x, type, value);
  if (!ok) std::abort();
  return x.getpos();
}

// ---- timing helpers -------------------------------------------------------

// Median-of-repeats wall time per call, in milliseconds.
template <typename Fn>
double time_ms_per_call(Fn&& fn, int min_iters = 200, int repeats = 7) {
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(repeats));
  for (int r = 0; r < repeats; ++r) {
    Stopwatch sw;
    for (int i = 0; i < min_iters; ++i) {
      fn();
    }
    samples.push_back(sw.elapsed_ms() / min_iters);
  }
  std::nth_element(samples.begin(),
                   samples.begin() + static_cast<std::ptrdiff_t>(
                                         samples.size() / 2),
                   samples.end());
  return samples[samples.size() / 2];
}

// Cost-model events for one generic encode (IR corpus run).
inline CostEvents generic_encode_events(
    const core::SpecializedInterface& iface,
    std::vector<std::uint32_t>& slots, std::uint32_t n) {
  CostEvents ev;
  Bytes buf(65000);
  pe::InterpInput in;
  in.scalars[pe::kXidVar] = 1;
  in.scalars["cnt0"] = n;
  in.refs["argsp"] = 0;
  in.xdrs = {0, 65000, 0};
  in.user = slots;
  in.out = MutableByteSpan(buf.data(), buf.size());
  in.cost = &ev;
  auto r = run_ir(iface.corpus().program, iface.corpus().encode_call, in);
  if (!r.is_ok() || *r != pe::kRcOk) std::abort();
  ev.executed_op_bytes = 0;  // compiled code, small and hot
  return ev;
}

// Cost-model events for one residual-plan encode.
inline CostEvents plan_encode_events(const pe::Plan& plan,
                                     std::vector<std::uint32_t>& slots) {
  CostEvents ev;
  Bytes buf(plan.out_size);
  if (run_plan_encode(plan, slots, 1,
                      MutableByteSpan(buf.data(), buf.size()),
                      &ev) != pe::ExecStatus::kOk) {
    std::abort();
  }
  return ev;
}

inline double sim_generic_encode_ms(const core::SpecializedInterface& iface,
                                    std::vector<std::uint32_t>& slots,
                                    std::uint32_t n,
                                    const CostParams& params) {
  return cost_to_ns(generic_encode_events(iface, slots, n), params) / 1e6;
}

inline double sim_plan_encode_ms(const pe::Plan& plan,
                                 std::vector<std::uint32_t>& slots,
                                 const CostParams& params) {
  return cost_to_ns(plan_encode_events(plan, slots), params) / 1e6;
}

// ---- output ---------------------------------------------------------------

// Version stamped into every bench JSON artifact.  Bump when a field is
// renamed or its meaning changes so the CI baseline-compare (and any
// perf-trajectory tooling reading the artifacts) can refuse to diff
// incompatible files instead of comparing garbage.
//   v1: ad-hoc per-bench layouts (no version field)
//   v2: shared JsonWriter envelope {"benchmark", "schema_version"};
//       bench_concurrent points carry server-side p50/p99/p999
inline constexpr int kBenchSchemaVersion = 2;

// Minimal streaming JSON writer shared by the bench binaries: tracks
// comma placement and indentation so emitters state structure, not
// punctuation.  Strings are written verbatim (bench fields are plain
// ASCII identifiers; there is nothing to escape).
class JsonWriter {
 public:
  explicit JsonWriter(std::FILE* f) : f_(f) {}

  void begin_object() { open('{'); }
  void end_object() { close('}'); }
  void begin_array() { open('['); }
  void end_array() { close(']'); }

  void key(const char* k) {
    comma();
    newline_indent();
    std::fprintf(f_, "\"%s\": ", k);
    pending_value_ = true;
  }
  void key_object(const char* k) {
    key(k);
    open('{');
  }
  void key_array(const char* k) {
    key(k);
    open('[');
  }

  void value(double v) {
    lead();
    std::fprintf(f_, "%.6g", v);
  }
  void value(std::int64_t v) {
    lead();
    std::fprintf(f_, "%lld", static_cast<long long>(v));
  }
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void value(unsigned v) { value(static_cast<std::int64_t>(v)); }
  void value(std::size_t v) { value(static_cast<std::int64_t>(v)); }
  void value(bool v) {
    lead();
    std::fputs(v ? "true" : "false", f_);
  }
  void value(const char* s) {
    lead();
    std::fprintf(f_, "\"%s\"", s);
  }
  void value(const std::string& s) { value(s.c_str()); }

  template <typename T>
  void field(const char* k, T v) {
    key(k);
    value(v);
  }

  // The shared envelope every bench artifact leads with.
  void schema(const char* bench_name) {
    field("benchmark", bench_name);
    field("schema_version", kBenchSchemaVersion);
  }

 private:
  void open(char c) {
    lead();
    std::fputc(c, f_);
    first_.push_back(true);
  }
  void close(char c) {
    first_.pop_back();
    std::fputc('\n', f_);
    indent();
    std::fputc(c, f_);
    if (first_.empty()) std::fputc('\n', f_);
  }
  // What precedes a value: nothing after a key, comma+indent as an
  // array element.
  void lead() {
    if (pending_value_) {
      pending_value_ = false;
      return;
    }
    comma();
    newline_indent();
  }
  void comma() {
    if (first_.empty()) return;
    if (!first_.back()) std::fputc(',', f_);
    first_.back() = false;
  }
  void newline_indent() {
    if (first_.empty()) return;
    std::fputc('\n', f_);
    indent();
  }
  void indent() {
    for (std::size_t i = 0; i < first_.size(); ++i) std::fputs("  ", f_);
  }

  std::FILE* f_;
  std::vector<bool> first_;  // per open scope: no element emitted yet
  bool pending_value_ = false;
};

inline void print_header(const char* title) {
  std::printf("\n=== %s ===\n", title);
}

struct SpeedupRow {
  std::uint32_t n;
  double original_ms;
  double specialized_ms;
};

inline void print_speedup_table(const char* platform,
                                const std::vector<SpeedupRow>& rows) {
  std::printf("%-12s %12s %12s %8s   (%s)\n", "Array Size", "Original",
              "Specialized", "Speedup", platform);
  for (const auto& r : rows) {
    std::printf("%-12u %12.4f %12.4f %8.2f\n", r.n, r.original_ms,
                r.specialized_ms,
                r.specialized_ms > 0 ? r.original_ms / r.specialized_ms : 0);
  }
}

// Figure-style series: one "name: (x,y) ..." line per curve, ready for
// plotting.
inline void print_series(const std::string& name,
                         const std::vector<SpeedupRow>& rows, bool speedup) {
  std::printf("series %-58s", name.c_str());
  for (const auto& r : rows) {
    std::printf(" (%u, %.4f)", r.n,
                speedup ? r.original_ms / r.specialized_ms
                        : r.original_ms);
  }
  std::printf("\n");
}

}  // namespace tempo::bench
