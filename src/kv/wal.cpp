#include "kv/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>

#include "common/endian.h"

namespace tempo::kv {

namespace {

constexpr std::size_t kFrameHeaderBytes = 16;  // len + crc + seq

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

// Reads the whole file (recovery path only; logs are bounded by the
// workload, and recovery runs once per open).
Result<Bytes> read_all(int fd) {
  Bytes out;
  std::array<std::uint8_t, 1 << 16> chunk;
  for (;;) {
    const ssize_t n = ::read(fd, chunk.data(), chunk.size());
    if (n < 0) {
      if (errno == EINTR) continue;
      return unavailable("wal read: " + std::string(std::strerror(errno)));
    }
    if (n == 0) break;
    out.insert(out.end(), chunk.data(), chunk.data() + n);
  }
  return out;
}

Status write_all_fd(int fd, ByteSpan bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return unavailable("wal write: " + std::string(std::strerror(errno)));
    }
    off += static_cast<std::size_t>(n);
  }
  return Status::ok();
}

}  // namespace

std::uint32_t crc32_ieee(std::uint32_t seed, ByteSpan bytes) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (const std::uint8_t b : bytes) {
    c = table[(c ^ b) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

Result<std::unique_ptr<Wal>> Wal::open(
    const std::string& path, Options opts,
    const std::function<void(std::uint64_t, ByteSpan)>& replay,
    WalRecovery* recovery) {
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) {
    return unavailable("wal open " + path + ": " +
                       std::string(std::strerror(errno)));
  }
  auto contents = read_all(fd);
  if (!contents.is_ok()) {
    ::close(fd);
    return contents.status();
  }
  const Bytes& data = *contents;

  // Scan frames forward; the first short, corrupt, or out-of-sequence
  // frame ends the committed prefix.
  std::size_t good_end = 0;
  std::uint64_t last_seq = 0;
  std::uint64_t records = 0;
  std::size_t pos = 0;
  while (data.size() - pos >= kFrameHeaderBytes) {
    const std::uint32_t len = load_be32(data.data() + pos);
    if (len > opts.max_record_bytes) break;
    if (data.size() - pos - kFrameHeaderBytes < len) break;  // torn body
    const std::uint32_t crc = load_be32(data.data() + pos + 4);
    const std::uint64_t seq = load_be64(data.data() + pos + 8);
    // CRC covers seq + payload: the 8 bytes preceding the payload.
    const std::uint32_t want =
        crc32_ieee(0, ByteSpan(data.data() + pos + 8, 8 + len));
    if (crc != want) break;
    if (seq != last_seq + 1) break;  // sequence chain broken
    if (replay) {
      replay(seq, ByteSpan(data.data() + pos + kFrameHeaderBytes, len));
    }
    last_seq = seq;
    ++records;
    pos += kFrameHeaderBytes + len;
    good_end = pos;
  }

  if (recovery) {
    recovery->last_seq = last_seq;
    recovery->records = records;
    recovery->truncated_bytes = data.size() - good_end;
  }
  // Torn-tail truncation: cut the file back to the committed prefix so
  // the next append continues from a clean boundary.
  if (good_end < data.size()) {
    if (::ftruncate(fd, static_cast<off_t>(good_end)) != 0) {
      ::close(fd);
      return unavailable("wal truncate: " +
                         std::string(std::strerror(errno)));
    }
  }
  if (::lseek(fd, 0, SEEK_END) < 0) {
    ::close(fd);
    return unavailable("wal seek: " + std::string(std::strerror(errno)));
  }
  auto wal =
      std::unique_ptr<Wal>(new Wal(path, fd, opts, last_seq));
  return wal;
}

Wal::Wal(std::string path, int fd, Options opts, std::uint64_t last_seq)
    : path_(std::move(path)), fd_(fd), opts_(opts), next_seq_(last_seq + 1) {
  durable_seq_.store(last_seq, std::memory_order_release);
}

Wal::~Wal() {
  if (fd_ >= 0) ::close(fd_);
}

std::uint64_t Wal::next_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_;
}

Result<std::uint64_t> Wal::commit(ByteSpan payload) {
  if (payload.size() > opts_.max_record_bytes) {
    return out_of_range("wal record exceeds max_record_bytes");
  }
  std::unique_lock<std::mutex> lock(mu_);
  if (!io_error_.is_ok()) return io_error_;
  const std::uint64_t seq = next_seq_++;

  // Frame into the shared pending buffer.
  const std::size_t base = pending_.size();
  pending_.resize(base + kFrameHeaderBytes + payload.size());
  store_be32(pending_.data() + base,
             static_cast<std::uint32_t>(payload.size()));
  store_be64(pending_.data() + base + 8, seq);
  std::memcpy(pending_.data() + base + kFrameHeaderBytes, payload.data(),
              payload.size());
  store_be32(pending_.data() + base + 4,
             crc32_ieee(0, ByteSpan(pending_.data() + base + 8,
                                    8 + payload.size())));
  pending_max_seq_ = seq;
  pending_records_ += 1;

  // Group commit: wait until some leader (possibly this thread) has
  // carried `seq` past the durable horizon.
  while (durable_seq_.load(std::memory_order_acquire) < seq) {
    if (!io_error_.is_ok()) return io_error_;
    if (!sync_in_progress_) {
      // Become the leader for everything pending right now.
      sync_in_progress_ = true;
      Bytes batch;
      batch.swap(pending_);
      const std::uint64_t batch_max = pending_max_seq_;
      const std::uint64_t batch_records = pending_records_;
      pending_records_ = 0;
      lock.unlock();

      Status st = write_all_fd(fd_, ByteSpan(batch.data(), batch.size()));
      if (st.is_ok() && opts_.fsync && ::fsync(fd_) != 0) {
        st = unavailable("wal fsync: " + std::string(std::strerror(errno)));
      }

      lock.lock();
      sync_in_progress_ = false;
      if (!st.is_ok()) {
        io_error_ = st;
        cv_.notify_all();
        return st;
      }
      if (opts_.fsync) stats_.fsyncs.fetch_add(1, std::memory_order_relaxed);
      stats_.records.fetch_add(static_cast<std::int64_t>(batch_records),
                               std::memory_order_relaxed);
      if (batch_records > 1) {
        stats_.batched.fetch_add(static_cast<std::int64_t>(batch_records),
                                 std::memory_order_relaxed);
      }
      stats_.bytes.fetch_add(static_cast<std::int64_t>(batch.size()) -
                                 static_cast<std::int64_t>(batch_records) *
                                     static_cast<std::int64_t>(
                                         kFrameHeaderBytes),
                             std::memory_order_relaxed);
      durable_seq_.store(batch_max, std::memory_order_release);
      cv_.notify_all();
    } else {
      cv_.wait(lock);
    }
  }
  return seq;
}

}  // namespace tempo::kv
