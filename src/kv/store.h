// MVCC key-value store: versioned values keyed by commit sequence,
// snapshot reads that never block behind writers, bounded version-chain
// GC that never reclaims a version visible to an open snapshot.
//
// Visibility rule (the whole contract): a Snapshot taken at sequence S
// sees, for every key, the NEWEST version whose commit sequence is
// <= S — a tombstone version means "absent".  Writers append new
// versions at strictly increasing sequences and never touch old ones
// (version nodes are immutable once linked), so a reader holding a
// snapshot observes one consistent cut of the history no matter how
// many commits land after it.  Read-your-writes on the primary falls
// out directly: get_latest() reads at last_applied().
//
// GC: reclaim_floor = min(last_applied, oldest open snapshot).  For
// each chain the newest version at-or-below the floor must stay (every
// open snapshot resolves to it or to something newer, which also
// stays); everything OLDER than that version is invisible to every
// open and every future snapshot and is reclaimed.  A head tombstone
// at-or-below the floor lets the whole chain go.  The CUBRID
// replicator_mvcc exemplar keeps the same shape: a map of active
// version bookkeeping pruned as transactions complete.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <shared_mutex>
#include <string>
#include <string_view>

#include "common/thread_annotations.h"

namespace tempo::kv {

struct MvccStoreStats {
  std::atomic<std::int64_t> applied{0};            // versions installed
  std::atomic<std::int64_t> duplicate_applies{0};  // seq <= last: REJECTED
  std::atomic<std::int64_t> gc_reclaimed{0};       // versions freed by gc()
  std::atomic<std::int64_t> snapshot_reads{0};
};

class MvccStore {
 public:
  MvccStore() = default;
  ~MvccStore();
  MvccStore(const MvccStore&) = delete;
  MvccStore& operator=(const MvccStore&) = delete;

  // A consistent read cut.  RAII: registers its sequence with the
  // store so gc() cannot reclaim anything it can see; movable so it
  // can be returned, not copyable.
  class Snapshot {
   public:
    Snapshot() = default;
    Snapshot(Snapshot&& o) noexcept : store_(o.store_), seq_(o.seq_) {
      o.store_ = nullptr;
    }
    Snapshot& operator=(Snapshot&& o) noexcept;
    ~Snapshot() { release(); }
    Snapshot(const Snapshot&) = delete;
    Snapshot& operator=(const Snapshot&) = delete;

    std::uint64_t seq() const { return seq_; }
    bool valid() const { return store_ != nullptr; }
    // Value visible at this snapshot, or nullopt (missing/deleted).
    std::optional<std::string> get(std::string_view key) const;
    void release();

   private:
    friend class MvccStore;
    Snapshot(const MvccStore* store, std::uint64_t seq)
        : store_(store), seq_(seq) {}
    const MvccStore* store_ = nullptr;
    std::uint64_t seq_ = 0;
  };

  // Applies a committed mutation at `seq`.  Sequences must be strictly
  // increasing; an apply at seq <= last_applied() is rejected and
  // counted (duplicate_applies) — the replication sink relies on this
  // as its last line of defense against double-applies.
  bool apply_put(std::uint64_t seq, std::string_view key,
                 std::string_view value);
  bool apply_del(std::uint64_t seq, std::string_view key);

  // Convenience for standalone (non-WAL) use: assigns the next
  // sequence internally.  Returns the assigned sequence.
  std::uint64_t put(std::string_view key, std::string_view value);
  std::uint64_t del(std::string_view key);

  std::uint64_t last_applied() const {
    return last_applied_.load(std::memory_order_acquire);
  }

  Snapshot snapshot() const;
  // Read at last_applied() without registering a snapshot (the
  // version resolved under the shared lock cannot be GC'd mid-read).
  std::optional<std::string> get_latest(std::string_view key) const;

  // Reclaims every version invisible to all open snapshots (and to any
  // snapshot that could still be taken).  Returns versions reclaimed.
  std::size_t gc();

  // Every live (non-tombstone) key -> value at last_applied(): the
  // byte-identical comparison surface for the replication tests.
  std::map<std::string, std::string> dump() const;
  // FNV-1a over dump(), for cheap equality assertions.
  std::uint64_t digest() const;

  const MvccStoreStats& stats() const { return stats_; }
  std::size_t key_count() const;
  std::size_t version_count() const;
  std::uint64_t oldest_open_snapshot() const;  // UINT64_MAX when none

 private:
  struct Version {
    std::uint64_t seq = 0;
    bool tombstone = false;
    std::string value;
    std::shared_ptr<const Version> prev;
  };

  // Tears a chain down iteratively: naive shared_ptr teardown recurses
  // once per version and overflows the stack on write-hot keys.
  static void unlink_chain(std::shared_ptr<const Version> head);
  bool apply(std::uint64_t seq, std::string_view key, std::string_view value,
             bool tombstone);
  std::optional<std::string> read_at(std::uint64_t seq,
                                     std::string_view key) const;
  void unregister_snapshot(std::uint64_t seq) const;

  mutable std::shared_mutex map_mu_;
  std::map<std::string, std::shared_ptr<const Version>, std::less<>> map_
      TEMPO_GUARDED_BY(map_mu_);
  std::size_t versions_ TEMPO_GUARDED_BY(map_mu_) = 0;
  std::atomic<std::uint64_t> last_applied_{0};

  mutable std::mutex snap_mu_;
  mutable std::multiset<std::uint64_t> open_snapshots_
      TEMPO_GUARDED_BY(snap_mu_);

  mutable MvccStoreStats stats_;
};

}  // namespace tempo::kv
