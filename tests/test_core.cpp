// Core front-end tests: SpecializedInterface construction, the
// specialized client/server over the simulated network and loopback UDP,
// guarded fallback behaviour, and template (compile-time) specialization
// equivalence.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/endian.h"
#include "core/generic_client.h"
#include "core/service.h"
#include "core/spec_client.h"
#include "core/stubspec.h"
#include "core/tspec.h"
#include "net/simnet.h"
#include "net/udp.h"
#include "rpc/svc.h"

namespace tempo::core {
namespace {

idl::ProcDef echo_array_proc(std::uint32_t bound = 2000) {
  idl::ProcDef proc;
  proc.name = "ECHO";
  proc.number = 7;
  proc.arg_type = idl::t_array_var(idl::t_int(), bound);
  proc.res_type = idl::t_array_var(idl::t_int(), bound);
  return proc;
}

constexpr std::uint32_t kProg = 0x20000777;
constexpr std::uint32_t kVers = 1;

WordHandler echo_handler() {
  return [](std::span<const std::uint32_t> args,
            std::span<std::uint32_t> results) {
    std::copy(args.begin(), args.end(), results.begin());
    return true;
  };
}

TEST(SpecializedInterfaceTest, BuildAndInspect) {
  SpecConfig cfg;
  cfg.arg_counts = {100};
  cfg.res_counts = {100};
  auto iface = SpecializedInterface::build(echo_array_proc(), kProg, kVers,
                                           cfg);
  ASSERT_TRUE(iface.is_ok()) << iface.status().to_string();

  EXPECT_EQ(iface->arg_slots(), 100);
  EXPECT_EQ(iface->encode_call_plan().out_size, 40u + 4u + 400u);
  EXPECT_EQ(iface->decode_reply_plan().expected_in, 24u + 4u + 400u);
  EXPECT_EQ(iface->decode_args_plan().expected_in, 4u + 400u);
  EXPECT_GT(iface->specialized_code_bytes(), 0u);
  EXPECT_GT(iface->generic_code_bytes(), 0u);

  auto listing = iface->annotated_encode_listing();
  ASSERT_TRUE(listing.is_ok()) << listing.status().to_string();
  EXPECT_NE(listing->find("xdrmem_putlong"), std::string::npos);
}

TEST(SpecializedInterfaceTest, RejectsNonEligibleTypes) {
  idl::ProcDef proc;
  proc.name = "BAD";
  proc.number = 1;
  proc.arg_type = idl::t_string(64);
  proc.res_type = idl::t_void();
  auto iface = SpecializedInterface::build(proc, kProg, kVers, {});
  EXPECT_FALSE(iface.is_ok());
}

TEST(SpecializedInterfaceTest, RejectsCountMismatch) {
  SpecConfig cfg;  // missing the required counts
  auto iface = SpecializedInterface::build(echo_array_proc(), kProg, kVers,
                                           cfg);
  EXPECT_FALSE(iface.is_ok());
}

// Specialized client against a *generic* server: wire compatibility.
TEST(SpecializedClientTest, InteropWithGenericServerOverSimNet) {
  const std::uint32_t n = 50;
  SpecConfig cfg;
  cfg.arg_counts = {n};
  cfg.res_counts = {n};
  auto iface =
      SpecializedInterface::build(echo_array_proc(), kProg, kVers, cfg);
  ASSERT_TRUE(iface.is_ok());

  net::SimNetwork net(net::LinkParams::ethernet_pc());
  auto* server_ep = net.create_endpoint();
  auto* client_ep = net.create_endpoint();

  rpc::SvcRegistry reg;
  const auto arg_t = echo_array_proc().arg_type;
  const auto res_t = echo_array_proc().res_type;
  register_value_handler(reg, kProg, kVers, 7, arg_t, res_t,
                         [](const idl::Value& v) -> Result<idl::Value> {
                           return v;  // echo
                         });
  rpc::attach_sim_server(server_ep, reg);

  SpecializedClient client(*client_ep, server_ep->local_addr(), *iface);
  std::vector<std::uint32_t> args(n), results(n, 0);
  Rng rng(5);
  for (auto& a : args) a = rng.next_u32();

  Status st = client.call(args, results);
  ASSERT_TRUE(st.is_ok()) << st.to_string();
  EXPECT_EQ(results, args);
  EXPECT_EQ(client.stats().generic_fallbacks, 0);
}

// Generic client against the specialized service: the other direction.
TEST(SpecializedServiceTest, InteropWithGenericClient) {
  const std::uint32_t n = 20;
  SpecConfig cfg;
  cfg.arg_counts = {n};
  cfg.res_counts = {n};
  auto iface =
      SpecializedInterface::build(echo_array_proc(), kProg, kVers, cfg);
  ASSERT_TRUE(iface.is_ok());

  net::SimNetwork net;
  auto* server_ep = net.create_endpoint();
  auto* client_ep = net.create_endpoint();

  rpc::SvcRegistry reg;
  SpecializedService service(*iface, echo_handler());
  service.install(reg);
  rpc::attach_sim_server(server_ep, reg);

  GenericValueClient client(*client_ep, server_ep->local_addr(), kProg,
                            kVers);
  const auto arg_t = echo_array_proc().arg_type;
  Rng rng(6);
  idl::Value arg = idl::random_value(*arg_t, rng, 100);
  arg.as<idl::ValueList>().resize(n, idl::zero_value(*idl::t_int()));
  auto res = client.call(7, *arg_t, arg, *arg_t);
  ASSERT_TRUE(res.is_ok()) << res.status().to_string();
  EXPECT_TRUE(idl::value_equal(arg, *res));
  EXPECT_EQ(service.stats().fast_path, 1);
}

// Specialized on both sides.
TEST(SpecializedClientTest, FullySpecializedRoundTrip) {
  const std::uint32_t n = 250;
  SpecConfig cfg;
  cfg.arg_counts = {n};
  cfg.res_counts = {n};
  auto iface =
      SpecializedInterface::build(echo_array_proc(), kProg, kVers, cfg);
  ASSERT_TRUE(iface.is_ok());

  net::SimNetwork net;
  auto* server_ep = net.create_endpoint();
  auto* client_ep = net.create_endpoint();

  rpc::SvcRegistry reg;
  SpecializedService service(*iface, echo_handler());
  service.install(reg);
  rpc::attach_sim_server(server_ep, reg);

  SpecializedClient client(*client_ep, server_ep->local_addr(), *iface);
  std::vector<std::uint32_t> args(n), results(n, 0);
  Rng rng(9);
  for (auto& a : args) a = rng.next_u32();
  for (int round = 0; round < 10; ++round) {
    Status st = client.call(args, results);
    ASSERT_TRUE(st.is_ok()) << st.to_string();
    ASSERT_EQ(results, args);
  }
  EXPECT_EQ(service.stats().fast_path, 10);
  EXPECT_EQ(client.stats().generic_fallbacks, 0);
}

// The guarded fallback: a server that replies with a *different* count
// defeats the length guard; the client must degrade to the generic
// decoder and surface a meaningful result or error, never garbage.
TEST(SpecializedClientTest, FallbackOnUnexpectedReplyShape) {
  const std::uint32_t n = 10;
  SpecConfig cfg;
  cfg.arg_counts = {n};
  cfg.res_counts = {n};
  auto iface =
      SpecializedInterface::build(echo_array_proc(), kProg, kVers, cfg);
  ASSERT_TRUE(iface.is_ok());

  net::SimNetwork net;
  auto* server_ep = net.create_endpoint();
  auto* client_ep = net.create_endpoint();

  rpc::SvcRegistry reg;
  const auto arg_t = echo_array_proc().arg_type;
  register_value_handler(
      reg, kProg, kVers, 7, arg_t, arg_t,
      [](const idl::Value& v) -> Result<idl::Value> {
        idl::Value shrunk = v;  // drop one element: different shape
        shrunk.as<idl::ValueList>().pop_back();
        return shrunk;
      });
  rpc::attach_sim_server(server_ep, reg);

  SpecializedClient client(*client_ep, server_ep->local_addr(), *iface);
  std::vector<std::uint32_t> args(n, 3), results(n, 0);
  Status st = client.call(args, results);
  EXPECT_FALSE(st.is_ok());  // shape mismatch is an error, not corruption
  EXPECT_EQ(client.stats().generic_fallbacks, 1);
}

// Protocol errors travel through the fallback too (the specialized
// client still understands PROG_UNAVAIL etc.).
TEST(SpecializedClientTest, FallbackDecodesProtocolErrors) {
  const std::uint32_t n = 5;
  SpecConfig cfg;
  cfg.arg_counts = {n};
  cfg.res_counts = {n};
  auto iface =
      SpecializedInterface::build(echo_array_proc(), kProg, kVers, cfg);
  ASSERT_TRUE(iface.is_ok());

  net::SimNetwork net;
  auto* server_ep = net.create_endpoint();
  auto* client_ep = net.create_endpoint();
  rpc::SvcRegistry reg;  // nothing registered: PROG_UNAVAIL
  rpc::attach_sim_server(server_ep, reg);

  SpecializedClient client(*client_ep, server_ep->local_addr(), *iface);
  std::vector<std::uint32_t> args(n, 1), results(n, 0);
  Status st = client.call(args, results);
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
  EXPECT_EQ(client.stats().generic_fallbacks, 1);
}

// Specialized client over *real* loopback UDP against a threaded server.
TEST(SpecializedClientTest, RealUdpLoopback) {
  const std::uint32_t n = 100;
  SpecConfig cfg;
  cfg.arg_counts = {n};
  cfg.res_counts = {n};
  auto iface =
      SpecializedInterface::build(echo_array_proc(), kProg, kVers, cfg);
  ASSERT_TRUE(iface.is_ok());

  net::UdpSocket server_sock;
  ASSERT_TRUE(server_sock.ok());
  rpc::SvcRegistry reg;
  SpecializedService service(*iface, echo_handler());
  service.install(reg);
  rpc::UdpServer server(server_sock, reg);
  std::atomic<bool> stop{false};
  std::thread server_thread([&] { server.serve(stop); });

  net::UdpSocket client_sock;
  ASSERT_TRUE(client_sock.ok());
  SpecializedClient client(client_sock, server_sock.local_addr(), *iface);
  std::vector<std::uint32_t> args(n), results(n, 0);
  for (std::uint32_t i = 0; i < n; ++i) args[i] = i * i;
  for (int round = 0; round < 25; ++round) {
    Status st = client.call(args, results);
    ASSERT_TRUE(st.is_ok()) << st.to_string();
    ASSERT_EQ(results, args);
  }
  stop = true;
  server_thread.join();
}

// ---- compile-time (template) specialization ------------------------------

TEST(Tspec, MatchesRuntimePlanBytes) {
  constexpr std::uint32_t kN = 20;
  SpecConfig cfg;
  cfg.arg_counts = {kN};
  cfg.res_counts = {kN};
  auto iface =
      SpecializedInterface::build(echo_array_proc(), kProg, kVers, cfg);
  ASSERT_TRUE(iface.is_ok());

  std::vector<std::uint32_t> args(kN);
  Rng rng(12);
  for (auto& a : args) a = rng.next_u32();

  Bytes plan_out(iface->encode_call_plan().out_size);
  ASSERT_EQ(run_plan_encode(iface->encode_call_plan(), args, 0x42,
                            MutableByteSpan(plan_out.data(), plan_out.size())),
            pe::ExecStatus::kOk);

  using Call = tspec::IntArrayCall<kProg, kVers, 7, kN>;
  static_assert(Call::kBytes == 40 + 4 + 4 * kN);
  Bytes tmpl_out(Call::kBytes);
  ASSERT_TRUE(Call::encode(0x42, args,
                           std::span<std::uint8_t>(tmpl_out.data(),
                                                   tmpl_out.size())));
  EXPECT_EQ(plan_out, tmpl_out);
}

TEST(Tspec, ReplyDecodeValidatesAndCaptures) {
  constexpr std::uint32_t kN = 4;
  using Reply = tspec::IntArrayReply<kN>;
  Bytes wire(Reply::kBytes, 0);
  store_be32(wire.data(), 0x77);      // xid
  store_be32(wire.data() + 4, 1);     // REPLY
  store_be32(wire.data() + 24, kN);   // count
  for (std::uint32_t i = 0; i < kN; ++i) {
    store_be32(wire.data() + 28 + 4 * i, 1000 + i);
  }
  std::vector<std::uint32_t> words(kN, 0);
  ASSERT_TRUE(Reply::decode(
      0x77, std::span<const std::uint8_t>(wire.data(), wire.size()), words));
  EXPECT_EQ(words[3], 1003u);

  // Wrong xid or wrong header constant rejects.
  EXPECT_FALSE(Reply::decode(
      0x78, std::span<const std::uint8_t>(wire.data(), wire.size()), words));
  store_be32(wire.data() + 8, 1);  // DENIED
  EXPECT_FALSE(Reply::decode(
      0x77, std::span<const std::uint8_t>(wire.data(), wire.size()), words));
}

}  // namespace
}  // namespace tempo::core
