// Parser for the XDR interface language (the .x files fed to rpcgen,
// RFC 4506 §6 grammar plus the program/version/procedure extension of
// RFC 1057 §11).  Supported subset: const, typedef, enum, struct, union,
// program declarations; int/unsigned/hyper/float/double/bool/string/
// opaque type specifiers; fixed [n] and variable <n> arrays; optional
// ('*') data.
#pragma once

#include <map>
#include <string>
#include <string_view>

#include "common/status.h"
#include "idl/types.h"

namespace tempo::idl {

struct Module {
  std::map<std::string, std::int64_t> consts;
  std::map<std::string, TypePtr> types;
  std::vector<ProgramDef> programs;

  const ProgramDef* find_program(std::string_view name) const;
};

// Parses .x source text.  On error, the Status message carries
// "line:col: what went wrong".
Result<Module> parse_xdr_source(std::string_view source);

}  // namespace tempo::idl
