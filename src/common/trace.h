// Sampled per-request stage tracing.
//
// A trace follows one request through the server: recv (queue wait
// between the wire timestamp and the worker pop), decode,
// cache-lookup, execute, encode, flush (reply handoff; the batched
// wire flush itself is excluded from per-request stages but included
// in the end-to-end histograms).  Each record carries the request
// XID, origin shard, serving worker, and the marshaling tier that
// served it (generic interpreter vs residual-plan executor vs
// compiled JIT stub).
//
// The mechanism is deliberately two-speed:
//
//  - the *unsampled* path costs one thread_local pointer test per
//    trace_mark() call — no clock reads, no stores;
//  - a sampled request (1 in Tracer::sample_every) carries a
//    thread_local active record; marks attribute
//    time-since-last-mark to the named stage (a stage marked twice
//    accumulates), and trace_end() commits the record into the
//    origin shard's ring buffer (mutex-protected — the sampled path
//    is cold by construction).
//
// Stage marks are free functions so any layer (CachedSpecService
// deep inside dispatch, say) can annotate without knowing which
// runtime — or whether any tracer at all — is above it.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/thread_annotations.h"

namespace tempo::common {

enum class TraceStage : std::uint8_t {
  kRecv = 0,
  kDecode,
  kCacheLookup,
  kExecute,
  kEncode,
  kFlush,
};
inline constexpr std::size_t kTraceStageCount = 6;
const char* trace_stage_name(TraceStage s);

enum class TraceTier : std::uint8_t {
  kUnknown = 0,
  kGeneric,  // layered interpreter
  kPlan,     // residual-plan executor
  kJit,      // compiled native stub
};
const char* trace_tier_name(TraceTier t);

struct TraceRecord {
  std::uint32_t xid = 0;
  std::uint16_t shard = 0;
  std::uint16_t worker = 0;
  TraceTier tier = TraceTier::kUnknown;
  std::int64_t start_ns = 0;  // monotonic_ns at wire receive
  std::int64_t total_ns = 0;  // begin..end, including queue wait
  std::int64_t stage_ns[kTraceStageCount] = {};
};

class Tracer {
 public:
  // sample_every == 0 disables sampling entirely; 1 traces every
  // request; N traces 1-in-N (a process-wide relaxed counter, so the
  // sample interleaves all shards/workers).
  Tracer(std::size_t shards, std::size_t ring_capacity,
         std::uint32_t sample_every);
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  bool sampling() const { return sample_every_ != 0; }
  std::uint32_t sample_every() const { return sample_every_; }

  // One relaxed fetch_add; true on the sampled ticks.
  bool should_sample() {
    if (sample_every_ == 0) return false;
    return tick_.fetch_add(1, std::memory_order_relaxed) %
               sample_every_ ==
           0;
  }

  // Open an active trace on the calling thread.  queue_wait_ns is
  // attributed to kRecv; start_ns is backdated by it so total_ns
  // covers wire-receive to commit.  Any still-open trace on this
  // thread is abandoned (never committed half-filled).
  void begin(std::uint32_t xid, std::uint16_t shard, std::uint16_t worker,
             std::int64_t queue_wait_ns);

  // All committed records, oldest-first per shard.
  std::vector<TraceRecord> snapshot() const;
  std::uint64_t committed() const;
  std::string to_json() const;
  void dump_text(std::FILE* f) const;

 private:
  friend void trace_mark(TraceStage);
  friend void trace_set_tier(TraceTier);
  friend void trace_end();

  struct Ring {
    mutable std::mutex mu;
    std::vector<TraceRecord> buf TEMPO_GUARDED_BY(mu);  // capacity-bounded,
                                                        // wraps
    std::size_t next TEMPO_GUARDED_BY(mu) = 0;
    std::uint64_t committed TEMPO_GUARDED_BY(mu) = 0;
  };
  void commit(const TraceRecord& rec);

  std::vector<std::unique_ptr<Ring>> rings_;
  std::size_t capacity_;
  std::uint32_t sample_every_;
  std::atomic<std::uint32_t> tick_{0};
};

// Attribute time since the previous mark (or since begin) to `s` on
// this thread's active trace; single-branch no-op when inactive.
void trace_mark(TraceStage s);
// Tag the active trace with the tier that served the request.
void trace_set_tier(TraceTier t);
// Commit the active trace to its tracer's ring and deactivate.
void trace_end();
// Is a trace active on this thread?  (Lets callers skip building
// annotations that only matter when traced.)
bool trace_active();

}  // namespace tempo::common
