#include "common/trace.h"

#include "common/metrics.h"

namespace tempo::common {

const char* trace_stage_name(TraceStage s) {
  switch (s) {
    case TraceStage::kRecv: return "recv";
    case TraceStage::kDecode: return "decode";
    case TraceStage::kCacheLookup: return "cache-lookup";
    case TraceStage::kExecute: return "execute";
    case TraceStage::kEncode: return "encode";
    case TraceStage::kFlush: return "flush";
  }
  return "?";
}

const char* trace_tier_name(TraceTier t) {
  switch (t) {
    case TraceTier::kUnknown: return "unknown";
    case TraceTier::kGeneric: return "generic";
    case TraceTier::kPlan: return "plan";
    case TraceTier::kJit: return "jit";
  }
  return "?";
}

namespace {

// The calling thread's open trace.  One per thread: workers serve
// one request at a time, and begin() abandons any leftover.
struct ActiveTrace {
  Tracer* tracer = nullptr;
  TraceRecord rec;
  std::int64_t last_ns = 0;
};

thread_local ActiveTrace g_active;

}  // namespace

Tracer::Tracer(std::size_t shards, std::size_t ring_capacity,
               std::uint32_t sample_every)
    : capacity_(ring_capacity == 0 ? 1 : ring_capacity),
      sample_every_(sample_every) {
  if (shards == 0) shards = 1;
  rings_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    rings_.push_back(std::make_unique<Ring>());
  }
}

Tracer::~Tracer() {
  if (g_active.tracer == this) g_active.tracer = nullptr;
}

void Tracer::begin(std::uint32_t xid, std::uint16_t shard,
                   std::uint16_t worker, std::int64_t queue_wait_ns) {
  const std::int64_t now = monotonic_ns();
  g_active.tracer = this;
  g_active.rec = TraceRecord{};
  g_active.rec.xid = xid;
  g_active.rec.shard = shard;
  g_active.rec.worker = worker;
  g_active.rec.start_ns = now - queue_wait_ns;
  g_active.rec.stage_ns[static_cast<std::size_t>(TraceStage::kRecv)] =
      queue_wait_ns;
  g_active.last_ns = now;
}

void Tracer::commit(const TraceRecord& rec) {
  Ring& ring =
      *rings_[rec.shard < rings_.size() ? rec.shard : rings_.size() - 1];
  std::lock_guard<std::mutex> lock(ring.mu);
  if (ring.buf.size() < capacity_) {
    ring.buf.push_back(rec);
  } else {
    ring.buf[ring.next] = rec;
  }
  ring.next = (ring.next + 1) % capacity_;
  ++ring.committed;
}

std::vector<TraceRecord> Tracer::snapshot() const {
  std::vector<TraceRecord> out;
  for (const auto& ring : rings_) {
    std::lock_guard<std::mutex> lock(ring->mu);
    if (ring->buf.size() < capacity_) {
      out.insert(out.end(), ring->buf.begin(), ring->buf.end());
    } else {
      // Wrapped: oldest record sits at `next`.
      out.insert(out.end(), ring->buf.begin() + ring->next,
                 ring->buf.end());
      out.insert(out.end(), ring->buf.begin(),
                 ring->buf.begin() + ring->next);
    }
  }
  return out;
}

std::uint64_t Tracer::committed() const {
  std::uint64_t n = 0;
  for (const auto& ring : rings_) {
    std::lock_guard<std::mutex> lock(ring->mu);
    n += ring->committed;
  }
  return n;
}

std::string Tracer::to_json() const {
  const std::vector<TraceRecord> recs = snapshot();
  std::string out = "{\n  \"traces\": [";
  char buf[512];
  for (std::size_t i = 0; i < recs.size(); ++i) {
    const TraceRecord& r = recs[i];
    std::snprintf(
        buf, sizeof(buf),
        "%s\n    {\"xid\": %u, \"shard\": %u, \"worker\": %u, "
        "\"tier\": \"%s\", \"total_ns\": %lld, \"stages\": {",
        i == 0 ? "" : ",", r.xid, r.shard, r.worker,
        trace_tier_name(r.tier), static_cast<long long>(r.total_ns));
    out += buf;
    for (std::size_t s = 0; s < kTraceStageCount; ++s) {
      std::snprintf(buf, sizeof(buf), "%s\"%s\": %lld", s == 0 ? "" : ", ",
                    trace_stage_name(static_cast<TraceStage>(s)),
                    static_cast<long long>(r.stage_ns[s]));
      out += buf;
    }
    out += "}}";
  }
  out += recs.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

void Tracer::dump_text(std::FILE* f) const {
  for (const TraceRecord& r : snapshot()) {
    std::fprintf(f, "xid=%08x shard=%u worker=%u tier=%-7s total=%lldns",
                 r.xid, r.shard, r.worker, trace_tier_name(r.tier),
                 static_cast<long long>(r.total_ns));
    for (std::size_t s = 0; s < kTraceStageCount; ++s) {
      if (r.stage_ns[s] == 0) continue;
      std::fprintf(f, " %s=%lldns",
                   trace_stage_name(static_cast<TraceStage>(s)),
                   static_cast<long long>(r.stage_ns[s]));
    }
    std::fprintf(f, "\n");
  }
}

void trace_mark(TraceStage s) {
  if (g_active.tracer == nullptr) return;
  const std::int64_t now = monotonic_ns();
  g_active.rec.stage_ns[static_cast<std::size_t>(s)] +=
      now - g_active.last_ns;
  g_active.last_ns = now;
}

void trace_set_tier(TraceTier t) {
  if (g_active.tracer == nullptr) return;
  g_active.rec.tier = t;
}

void trace_end() {
  if (g_active.tracer == nullptr) return;
  g_active.rec.total_ns = monotonic_ns() - g_active.rec.start_ns;
  g_active.tracer->commit(g_active.rec);
  g_active.tracer = nullptr;
}

bool trace_active() { return g_active.tracer != nullptr; }

}  // namespace tempo::common
