#include "core/service.h"

#include "common/trace.h"
#include "idl/interp.h"
#include "pe/layout.h"

namespace tempo::core {

using pe::ExecStatus;

SpecializedService::SpecializedService(const SpecializedInterface& iface,
                                       WordHandler handler)
    : iface_(iface), handler_(std::move(handler)) {
  metrics_source_ =
      common::metrics().add_source([this](common::MetricsSnapshot& snap) {
        snap.add_counter("service.fast_path", stats_.fast_path);
        snap.add_counter("service.generic_path", stats_.generic_path);
        snap.add_counter("service.tier_plan", stats_.fast_path);
        snap.add_counter("service.tier_generic", stats_.generic_path);
      });
}

void SpecializedService::install(rpc::SvcRegistry& registry) {
  registry.register_proc(
      iface_.corpus().prog_num, iface_.corpus().vers_num,
      iface_.corpus().proc_num,
      [this](xdr::XdrStream& in, xdr::XdrStream& out) {
        return handle(in, out);
      });
}

bool SpecializedService::handle(xdr::XdrStream& in, xdr::XdrStream& out) {
  const pe::Plan& dplan = iface_.decode_args_plan();
  const pe::Plan& eplan = iface_.encode_results_plan();

  // Fast path needs direct buffer access on both streams.
  std::uint8_t* in_bytes =
      dplan.expected_in ? in.inline_bytes(dplan.expected_in) : nullptr;
  if (dplan.expected_in != 0 && in_bytes != nullptr) {
    std::vector<std::uint32_t> args(
        static_cast<std::size_t>(iface_.arg_slots()));
    if (iface_.exec_decode_args(ByteSpan(in_bytes, dplan.expected_in),
                                args) == ExecStatus::kOk) {
      std::vector<std::uint32_t> results(
          static_cast<std::size_t>(iface_.res_slots()));
      if (!handler_(args, results)) return false;
      std::uint8_t* out_bytes = out.inline_bytes(eplan.out_size);
      if (out_bytes != nullptr) {
        ++stats_.fast_path;
        return iface_.exec_encode_results(
                   results, MutableByteSpan(out_bytes, eplan.out_size)) ==
               ExecStatus::kOk;
      }
      // Buffer not inlinable for the reply: encode generically.
      ++stats_.generic_path;
      auto value = pe::unflatten_value(iface_.res_type(),
                                       iface_.config().res_counts, results);
      if (!value.is_ok()) return false;
      return idl::encode_value(out, iface_.res_type(), *value);
    }
    // Guard miss: rewind is impossible on a stream, but the plan only
    // *read* via the inline span — the stream cursor already advanced,
    // so decode generically from the claimed bytes.
    xdr::XdrMem redo(MutableByteSpan(in_bytes, dplan.expected_in),
                     xdr::XdrOp::kDecode);
    ++stats_.generic_path;
    return handle_generic(redo, out);
  }
  ++stats_.generic_path;
  return handle_generic(in, out);
}

CachedSpecService::CachedSpecService(SpecCache& cache, idl::ProcDef proc,
                                     std::uint32_t prog, std::uint32_t vers,
                                     DynamicWordHandler handler,
                                     CountMapper res_counts_for,
                                     SpecConfig base)
    : cache_(cache),
      proc_(std::move(proc)),
      prog_(prog),
      vers_(vers),
      handler_(std::move(handler)),
      res_counts_for_(std::move(res_counts_for)),
      base_(std::move(base)) {
  // Tier attribution: every request lands in exactly one of jit / plan
  // / generic, so the three tier counters partition service.requests —
  // the acceptance test asserts the sum.  fast_path counts plans AND
  // jit (jit_fast_path is its subset), hence the subtraction.
  metrics_source_ =
      common::metrics().add_source([this](common::MetricsSnapshot& snap) {
        const auto c = [](const std::atomic<std::int64_t>& v) {
          return v.load(std::memory_order_relaxed);
        };
        const std::int64_t fast = c(stats_.fast_path);
        const std::int64_t jit = c(stats_.jit_fast_path);
        snap.add_counter("service.fast_path", fast);
        snap.add_counter("service.generic_path", c(stats_.generic_path));
        snap.add_counter("service.plan_fallbacks", c(stats_.plan_fallbacks));
        snap.add_counter("service.spec_unavailable",
                         c(stats_.spec_unavailable));
        snap.add_counter("service.jit_fast_path", jit);
        snap.add_counter("service.tier_jit", jit);
        snap.add_counter("service.tier_plan", fast - jit);
        snap.add_counter("service.tier_generic", c(stats_.generic_path));
      });
}

void CachedSpecService::install(rpc::SvcRegistry& registry) {
  registry.register_proc(prog_, vers_, proc_.number,
                         [this](xdr::XdrStream& in, xdr::XdrStream& out) {
                           return handle(in, out);
                         });
}

SpecHandle CachedSpecService::hot() const {
  return hot_.load(std::memory_order_acquire);
}

void CachedSpecService::set_hot(SpecHandle h) {
  hot_.store(std::move(h), std::memory_order_release);
}

namespace {
enum class PathResult {
  kServed,        // request fully handled through the plans
  kGuardMiss,     // shape mismatch; stream cursor advanced, rewind needed
  kStreamOpaque,  // stream cannot inline; cursor untouched
  kHandlerFault,  // application handler failed: GARBAGE_ARGS
};
}  // namespace

bool CachedSpecService::encode_results(const SpecializedInterface& iface,
                                       std::span<const std::uint32_t> results,
                                       xdr::XdrStream& out) {
  const pe::Plan& eplan = iface.encode_results_plan();
  std::uint8_t* out_bytes = out.inline_bytes(eplan.out_size);
  if (out_bytes != nullptr) {
    return iface.exec_encode_results(
               results, MutableByteSpan(out_bytes, eplan.out_size)) ==
           ExecStatus::kOk;
  }
  auto value = pe::unflatten_value(iface.res_type(),
                                   iface.config().res_counts, results);
  if (!value.is_ok()) return false;
  return idl::encode_value(out, iface.res_type(), *value);
}

bool CachedSpecService::handle(xdr::XdrStream& in, xdr::XdrStream& out) {
  const std::size_t pos = in.getpos();

  SpecHandle h = hot();
  if (h) {
    // Re-resolve the residual plan through the cache on every call: the
    // memo lookup counts the hit, keeps the LRU ordering honest for
    // actively served shapes, and transparently picks up a rebuilt
    // instance if the entry was evicted meanwhile.
    auto refreshed = cache_.get_or_build(proc_, prog_, vers_, h->config());
    if (refreshed.is_ok()) h = *refreshed;
    // Stage marks are no-ops unless the runtime sampled this request
    // (one thread_local null check), so the unsampled hot path pays
    // nothing.
    common::trace_mark(common::TraceStage::kCacheLookup);
  }
  if (h) {
    PathResult r = PathResult::kStreamOpaque;
    const pe::Plan& dplan = h->decode_args_plan();
    std::uint8_t* in_bytes =
        dplan.expected_in ? in.inline_bytes(dplan.expected_in) : nullptr;
    if (in_bytes != nullptr) {
      std::vector<std::uint32_t> args(
          static_cast<std::size_t>(h->arg_slots()));
      if (h->exec_decode_args(ByteSpan(in_bytes, dplan.expected_in), args) ==
          ExecStatus::kOk) {
        common::trace_mark(common::TraceStage::kDecode);
        std::vector<std::uint32_t> results(
            static_cast<std::size_t>(h->res_slots()));
        if (!handler_(h->config().arg_counts, args, results)) {
          r = PathResult::kHandlerFault;
        } else {
          common::trace_mark(common::TraceStage::kExecute);
          if (encode_results(*h, results, out)) {
            common::trace_mark(common::TraceStage::kEncode);
            r = PathResult::kServed;
          } else {
            r = PathResult::kHandlerFault;
          }
        }
      } else {
        r = PathResult::kGuardMiss;  // count/length guard rejected shape
      }
    }
    switch (r) {
      case PathResult::kServed:
        stats_.fast_path.fetch_add(1, std::memory_order_relaxed);
        common::trace_set_tier(h->jit_active() ? common::TraceTier::kJit
                                               : common::TraceTier::kPlan);
        if (h->jit_active()) {
          stats_.jit_fast_path.fetch_add(1, std::memory_order_relaxed);
        }
        return true;
      case PathResult::kHandlerFault:
        return false;
      case PathResult::kGuardMiss:
        stats_.plan_fallbacks.fetch_add(1, std::memory_order_relaxed);
        if (!in.setpos(pos)) return false;  // cannot rewind: drop request
        break;
      case PathResult::kStreamOpaque:
        break;
    }
  }

  // Generic path: interpret the value, learn its shape, resolve the
  // specialization through the cache so the reply (and the next call of
  // this shape) still runs residual code.
  stats_.generic_path.fetch_add(1, std::memory_order_relaxed);
  common::trace_set_tier(common::TraceTier::kGeneric);
  idl::Value value;
  if (!idl::decode_value(in, *proc_.arg_type, value)) return false;
  std::vector<std::uint32_t> counts;
  if (!pe::collect_counts(*proc_.arg_type, value, counts).is_ok()) {
    return false;
  }
  common::trace_mark(common::TraceStage::kDecode);

  SpecConfig cfg = base_;
  cfg.arg_counts = counts;
  cfg.res_counts = res_counts_for_ ? res_counts_for_(counts) : counts;

  auto iface = cache_.get_or_build(proc_, prog_, vers_, cfg);
  if (!iface.is_ok()) {
    stats_.spec_unavailable.fetch_add(1, std::memory_order_relaxed);
  }
  common::trace_mark(common::TraceStage::kCacheLookup);

  pe::Slots args;
  if (!pe::flatten_value(*proc_.arg_type, value, counts, args).is_ok()) {
    return false;
  }
  // Flattening is decode-side work even though it runs after the cache
  // lookup; accumulate it into the decode stage.
  common::trace_mark(common::TraceStage::kDecode);
  auto res_slots = pe::type_slots(*proc_.res_type, cfg.res_counts);
  if (!res_slots.is_ok() || *res_slots < 0) return false;
  std::vector<std::uint32_t> results(static_cast<std::size_t>(*res_slots));
  if (!handler_(counts, args, results)) return false;
  common::trace_mark(common::TraceStage::kExecute);

  if (iface.is_ok()) {
    set_hot(*iface);
    const bool ok = encode_results(**iface, results, out);
    common::trace_mark(common::TraceStage::kEncode);
    return ok;
  }
  auto rvalue = pe::unflatten_value(*proc_.res_type, cfg.res_counts, results);
  if (!rvalue.is_ok()) return false;
  const bool ok = idl::encode_value(out, *proc_.res_type, *rvalue);
  common::trace_mark(common::TraceStage::kEncode);
  return ok;
}

bool SpecializedService::handle_generic(xdr::XdrStream& in,
                                        xdr::XdrStream& out) {
  idl::Value value;
  if (!idl::decode_value(in, iface_.arg_type(), value)) return false;
  pe::Slots args;
  std::vector<std::uint32_t> counts;
  if (!pe::collect_counts(iface_.arg_type(), value, counts).is_ok()) {
    return false;
  }
  if (!pe::flatten_value(iface_.arg_type(), value, counts, args).is_ok()) {
    return false;
  }
  // Shape differs from the specialization: the word handler contract is
  // fixed-shape, so only matching requests can be served.
  if (counts != iface_.config().arg_counts &&
      !iface_.config().arg_counts.empty()) {
    return false;
  }
  if (args.size() != static_cast<std::size_t>(iface_.arg_slots())) {
    return false;
  }
  std::vector<std::uint32_t> results(
      static_cast<std::size_t>(iface_.res_slots()));
  if (!handler_(args, results)) return false;
  auto rvalue = pe::unflatten_value(iface_.res_type(),
                                    iface_.config().res_counts, results);
  if (!rvalue.is_ok()) return false;
  return idl::encode_value(out, iface_.res_type(), *rvalue);
}

}  // namespace tempo::core
