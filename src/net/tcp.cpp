#include "net/tcp.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace tempo::net {

namespace {

sockaddr_in loopback_sockaddr(std::uint16_t port, std::uint32_t host) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = htonl(host);
  sa.sin_port = htons(port);
  return sa;
}

}  // namespace

std::unique_ptr<TcpConn> TcpConn::connect(const Addr& dst, int timeout_ms) {
  (void)timeout_ms;  // loopback connects complete immediately or fail
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return nullptr;
  sockaddr_in sa = loopback_sockaddr(dst.port, dst.host);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
    ::close(fd);
    return nullptr;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::make_unique<TcpConn>(fd);
}

Status TcpConn::write_all(ByteSpan data) {
  if (fd_ < 0) return unavailable("connection closed");
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd_, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (errno == EINTR) continue;
      return unavailable(std::string("send: ") + std::strerror(errno));
    }
    sent += static_cast<std::size_t>(n);
  }
  return Status::ok();
}

Result<std::size_t> TcpConn::read_some(MutableByteSpan out, int timeout_ms) {
  if (fd_ < 0) return Status(unavailable("connection closed"));
  pollfd pfd{fd_, POLLIN, 0};
  const int pr = ::poll(&pfd, 1, timeout_ms);
  if (pr == 0) return Status(timeout_error("read_some"));
  if (pr < 0) return Status(unavailable(std::strerror(errno)));
  const ssize_t n = ::recv(fd_, out.data(), out.size(), 0);
  if (n == 0) return Status(unavailable("peer closed"));
  if (n < 0) {
    // A non-blocking socket can still report EAGAIN after poll()
    // (spurious readiness); that is "try again", not "peer gone".
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
      return Status(timeout_error("read_some"));
    }
    return Status(unavailable(std::strerror(errno)));
  }
  return static_cast<std::size_t>(n);
}

Status TcpConn::set_nonblocking(bool on) {
  if (fd_ < 0) return unavailable("connection closed");
  if (!set_fd_nonblocking(fd_, on)) {
    return unavailable(std::strerror(errno));
  }
  return Status::ok();
}

Result<std::size_t> TcpConn::write_some(ByteSpan data, int timeout_ms) {
  if (fd_ < 0) return Status(unavailable("connection closed"));
  pollfd pfd{fd_, POLLOUT, 0};
  const int pr = ::poll(&pfd, 1, timeout_ms);
  if (pr == 0) return Status(timeout_error("write_some"));
  if (pr < 0) return Status(unavailable(std::strerror(errno)));
  const ssize_t n = ::send(fd_, data.data(), data.size(), MSG_NOSIGNAL);
  if (n < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
      return Status(timeout_error("write_some"));
    }
    return Status(unavailable(std::strerror(errno)));
  }
  return static_cast<std::size_t>(n);
}

void TcpConn::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

TcpListener::TcpListener(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return;
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in sa = loopback_sockaddr(port, 0x7F000001u);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0 ||
      ::listen(fd_, 16) != 0) {
    ::close(fd_);
    fd_ = -1;
    return;
  }
  sockaddr_in got{};
  socklen_t len = sizeof(got);
  ::getsockname(fd_, reinterpret_cast<sockaddr*>(&got), &len);
  local_ = Addr{ntohl(got.sin_addr.s_addr), ntohs(got.sin_port)};
}

TcpListener::~TcpListener() {
  if (fd_ >= 0) ::close(fd_);
}

Status TcpListener::set_nonblocking(bool on) {
  if (fd_ < 0) return unavailable("listener not open");
  if (!set_fd_nonblocking(fd_, on)) {
    return unavailable(std::strerror(errno));
  }
  return Status::ok();
}

Result<std::unique_ptr<TcpConn>> TcpListener::accept(int timeout_ms) {
  if (fd_ < 0) return Status(unavailable("listener not open"));
  pollfd pfd{fd_, POLLIN, 0};
  const int pr = ::poll(&pfd, 1, timeout_ms);
  if (pr == 0) return Status(timeout_error("accept"));
  if (pr < 0) return Status(unavailable(std::strerror(errno)));
  const int cfd = ::accept(fd_, nullptr, nullptr);
  if (cfd < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR ||
        errno == ECONNABORTED) {
      return Status(timeout_error("accept"));
    }
    return Status(unavailable(std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::make_unique<TcpConn>(cfd);
}

}  // namespace tempo::net
