// Partial-evaluator tests: corpus semantics, specialization soundness
// (the plan must produce byte-identical output to the generic IR code),
// guard behaviour, unroll policies, and the BTA paper-claims.
#include <gtest/gtest.h>

#include "common/endian.h"
#include "idl/value.h"
#include "pe/bta.h"
#include "pe/corpus.h"
#include "pe/interp.h"
#include "pe/layout.h"
#include "pe/plan.h"
#include "pe/specializer.h"

namespace tempo::pe {
namespace {

using idl::t_array_var;
using idl::t_int;

idl::ProcDef int_array_proc(std::uint32_t bound) {
  idl::ProcDef proc;
  proc.name = "ECHO";
  proc.number = 7;
  proc.arg_type = t_array_var(t_int(), bound);
  proc.res_type = t_array_var(t_int(), bound);
  return proc;
}

idl::ProcDef rmin_proc() {
  // The paper's running example: int RMIN(pair{int1,int2}).
  idl::ProcDef proc;
  proc.name = "RMIN";
  proc.number = 1;
  proc.arg_type = idl::t_struct(
      "pair", {{"int1", t_int()}, {"int2", t_int()}});
  proc.res_type = t_int();
  return proc;
}

// Runs the generic encode_call through the interpreter.
Bytes interp_encode(const InterfaceCorpus& corpus,
                    std::span<std::uint32_t> args, std::uint32_t xid,
                    const std::vector<std::uint32_t>& counts,
                    std::size_t buf_size = 65000) {
  Bytes buf(buf_size, 0xAA);
  InterpInput in;
  in.scalars[kXidVar] = xid;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    in.scalars["cnt" + std::to_string(i)] = counts[i];
  }
  in.refs["argsp"] = 0;
  in.xdrs = {/*x_op=*/0, static_cast<std::int64_t>(buf_size), 0};
  in.user = args;
  in.out = MutableByteSpan(buf.data(), buf.size());
  auto r = run_ir(corpus.program, corpus.encode_call, in);
  EXPECT_TRUE(r.is_ok()) << r.status().to_string();
  EXPECT_EQ(*r, kRcOk);
  return buf;
}

TEST(CorpusInterp, RminEncodeMatchesWireFormat) {
  auto corpus = build_interface_corpus(rmin_proc(), 0x20000001, 1);
  ASSERT_TRUE(corpus.is_ok()) << corpus.status().to_string();

  std::vector<std::uint32_t> args = {41, 42};
  Bytes buf = interp_encode(*corpus, args, /*xid=*/0xDEADBEEF, {});

  // Header: xid, CALL, rpcvers, prog, vers, proc, 4x auth zeros.
  EXPECT_EQ(load_be32(buf.data() + 0), 0xDEADBEEFu);
  EXPECT_EQ(load_be32(buf.data() + 4), 0u);   // CALL
  EXPECT_EQ(load_be32(buf.data() + 8), 2u);   // RPC version
  EXPECT_EQ(load_be32(buf.data() + 12), 0x20000001u);
  EXPECT_EQ(load_be32(buf.data() + 16), 1u);
  EXPECT_EQ(load_be32(buf.data() + 20), 1u);  // proc RMIN
  for (int i = 24; i < 40; i += 4) {
    EXPECT_EQ(load_be32(buf.data() + i), 0u) << "auth word at " << i;
  }
  EXPECT_EQ(load_be32(buf.data() + 40), 41u);
  EXPECT_EQ(load_be32(buf.data() + 44), 42u);
}

TEST(Specializer, RminEncodePlanMatchesInterp) {
  auto corpus = build_interface_corpus(rmin_proc(), 0x20000001, 1);
  ASSERT_TRUE(corpus.is_ok());

  SpecInput sin;
  sin.ref_params = {{"argsp", 0}};
  sin.dynamic_scalars = {kXidVar};
  sin.xdrs = {0, 65000, 0};
  auto plan = specialize(corpus->program, corpus->encode_call, sin);
  ASSERT_TRUE(plan.is_ok()) << plan.status().to_string();
  EXPECT_TRUE(plan->is_encode);
  EXPECT_EQ(plan->out_size, 48u);  // 40-byte header + two ints

  std::vector<std::uint32_t> args = {7, 99};
  Bytes expect = interp_encode(*corpus, args, 123, {});
  Bytes got(plan->out_size, 0);
  ASSERT_EQ(run_plan_encode(*plan, args, 123,
                            MutableByteSpan(got.data(), got.size())),
            ExecStatus::kOk);
  EXPECT_EQ(0, std::memcmp(got.data(), expect.data(), plan->out_size));
}

TEST(Specializer, EncodePlanFoldsEverythingStatic) {
  // The residual rmin encode must be: 1 xid store + 9 const header
  // stores + 2 word copies = 12 instructions, no guards, no loops
  // (Fig. 5).
  auto corpus = build_interface_corpus(rmin_proc(), 0x20000001, 1);
  ASSERT_TRUE(corpus.is_ok());
  SpecInput sin;
  sin.ref_params = {{"argsp", 0}};
  sin.dynamic_scalars = {kXidVar};
  sin.xdrs = {0, 65000, 0};
  auto plan = specialize(corpus->program, corpus->encode_call, sin);
  ASSERT_TRUE(plan.is_ok());
  EXPECT_EQ(plan->instrs.size(), 12u);
  int puts = 0, consts = 0, xids = 0;
  for (const auto& ins : plan->instrs) {
    if (ins.op == POp::kPutWord) ++puts;
    if (ins.op == POp::kPutConst) ++consts;
    if (ins.op == POp::kPutXid) ++xids;
  }
  EXPECT_EQ(puts, 2);
  EXPECT_EQ(consts, 9);
  EXPECT_EQ(xids, 1);
}

// Property: for random word-regular interfaces and random arguments, the
// residual plan and the generic interpreter produce identical bytes.
TEST(Specializer, SoundnessOnRandomInterfaces) {
  Rng rng(20260613);
  for (int round = 0; round < 40; ++round) {
    // Random plan-eligible argument type.
    idl::TypePtr arg;
    switch (rng.next_below(5)) {
      case 0:
        arg = idl::t_struct(
            "s", {{"a", t_int()},
                  {"b", idl::t_hyper()},
                  {"c", idl::t_bool()},
                  {"d", idl::t_opaque_fixed(
                            1 + static_cast<std::uint32_t>(
                                    rng.next_below(9)))}});
        break;
      case 1:
        arg = t_array_var(t_int(), 64);
        break;
      case 2:
        arg = idl::t_array_fixed(idl::t_double(),
                                 1 + static_cast<std::uint32_t>(
                                         rng.next_below(8)));
        break;
      case 3:
        arg = idl::t_struct(
            "t", {{"n", idl::t_uint()},
                  {"v", t_array_var(idl::t_float(), 32)}});
        break;
      default:
        arg = idl::t_array_fixed(
            idl::t_struct("e", {{"x", t_int()}, {"y", t_int()}}),
            1 + static_cast<std::uint32_t>(rng.next_below(6)));
        break;
    }
    idl::ProcDef proc;
    proc.name = "P";
    proc.number = static_cast<std::uint32_t>(rng.next_below(100));
    proc.arg_type = arg;
    proc.res_type = idl::t_void();

    auto corpus = build_interface_corpus(proc, 99, 1);
    ASSERT_TRUE(corpus.is_ok()) << corpus.status().to_string();

    // Random instance; its var-array counts become the pinned counts.
    idl::Value value = idl::random_value(*arg, rng, 16);
    std::vector<std::uint32_t> counts;
    ASSERT_TRUE(collect_counts(*arg, value, counts).is_ok());
    Slots slots;
    ASSERT_TRUE(flatten_value(*arg, value, counts, slots).is_ok());

    SpecInput sin;
    for (std::size_t i = 0; i < counts.size(); ++i) {
      sin.static_scalars["cnt" + std::to_string(i)] = counts[i];
    }
    sin.ref_params = {{"argsp", 0}};
    sin.dynamic_scalars = {kXidVar};
    sin.xdrs = {0, 65000, 0};
    sin.options.unroll_factor =
        static_cast<std::uint32_t>(rng.next_below(3) * 2);  // 0, 2 or 4
    auto plan = specialize(corpus->program, corpus->encode_call, sin);
    ASSERT_TRUE(plan.is_ok())
        << plan.status().to_string() << " round " << round;

    const std::uint32_t xid = rng.next_u32();
    Bytes expect = interp_encode(*corpus, slots, xid, counts);
    Bytes got(plan->out_size, 0);
    ASSERT_EQ(run_plan_encode(*plan, slots, xid,
                              MutableByteSpan(got.data(), got.size())),
              ExecStatus::kOk)
        << "round " << round;
    ASSERT_EQ(0, std::memcmp(got.data(), expect.data(), plan->out_size))
        << "round " << round << " plan:\n"
        << plan->to_string();
  }
}

// Round-trip through plans: encode args with the client plan, decode the
// args with the server plan; then encode results and decode the reply.
TEST(Specializer, ClientServerPlansRoundTrip) {
  const std::uint32_t n = 20;
  auto corpus = build_interface_corpus(int_array_proc(2000), 55, 2);
  ASSERT_TRUE(corpus.is_ok());

  SpecInput enc_in;
  enc_in.static_scalars = {{"cnt0", n}};
  enc_in.ref_params = {{"argsp", 0}};
  enc_in.dynamic_scalars = {kXidVar};
  enc_in.xdrs = {0, 65000, 0};
  auto eplan = specialize(corpus->program, corpus->encode_call, enc_in);
  ASSERT_TRUE(eplan.is_ok()) << eplan.status().to_string();

  SpecInput dec_in;
  dec_in.static_scalars = {{"cnt0", n}};
  dec_in.ref_params = {{"argsp", 0}};
  dec_in.dynamic_scalars = {kInlenVar};
  dec_in.xdrs = {1, 0, 0};
  auto aplan = specialize(corpus->program, corpus->decode_args, dec_in);
  ASSERT_TRUE(aplan.is_ok()) << aplan.status().to_string();
  EXPECT_EQ(aplan->expected_in, 4 + 4 * n);

  std::vector<std::uint32_t> args(n);
  Rng rng(7);
  for (auto& a : args) a = rng.next_u32();

  Bytes wire(eplan->out_size);
  ASSERT_EQ(run_plan_encode(*eplan, args, 0x1234,
                            MutableByteSpan(wire.data(), wire.size())),
            ExecStatus::kOk);

  // Server sees the payload after the 40-byte call header.
  std::vector<std::uint32_t> decoded(n, 0);
  ASSERT_EQ(run_plan_decode(*aplan,
                            ByteSpan(wire.data() + kCallHeaderBytes,
                                     wire.size() - kCallHeaderBytes),
                            0, decoded),
            ExecStatus::kOk);
  EXPECT_EQ(decoded, args);

  // Results: server encodes, client decodes the full reply.
  SpecInput renc_in;
  renc_in.static_scalars = {{"rcnt0", n}};
  renc_in.ref_params = {{"resp", 0}};
  renc_in.xdrs = {0, 65000, 0};
  auto rplan = specialize(corpus->program, corpus->encode_results, renc_in);
  ASSERT_TRUE(rplan.is_ok()) << rplan.status().to_string();

  SpecInput rdec_in;
  rdec_in.static_scalars = {{"rcnt0", n}};
  rdec_in.ref_params = {{"resp", 0}};
  rdec_in.dynamic_scalars = {kXidVar, kInlenVar};
  rdec_in.xdrs = {1, 0, 0};
  auto dplan = specialize(corpus->program, corpus->decode_reply, rdec_in);
  ASSERT_TRUE(dplan.is_ok()) << dplan.status().to_string();
  EXPECT_EQ(dplan->expected_in, kReplyHeaderBytes + 4 + 4 * n);

  // Assemble a full reply: 6 header words + results payload.
  Bytes reply(static_cast<std::size_t>(dplan->expected_in), 0);
  store_be32(reply.data() + 0, 0x1234);  // xid
  store_be32(reply.data() + 4, 1);       // REPLY
  // words 2..5 zero: ACCEPTED, AUTH_NONE verf, SUCCESS
  ASSERT_EQ(
      run_plan_encode(*rplan, decoded, 0,
                      MutableByteSpan(reply.data() + kReplyHeaderBytes,
                                      reply.size() - kReplyHeaderBytes)),
      ExecStatus::kOk);

  std::vector<std::uint32_t> results(n, 0);
  ASSERT_EQ(run_plan_decode(*dplan,
                            ByteSpan(reply.data(), reply.size()), 0x1234,
                            results),
            ExecStatus::kOk);
  EXPECT_EQ(results, args);

  // Guard behaviour: stale xid -> retry; wrong length -> fallback;
  // wrong header constant -> fallback.
  ASSERT_EQ(run_plan_decode(*dplan, ByteSpan(reply.data(), reply.size()),
                            0x9999, results),
            ExecStatus::kRetryXid);
  ASSERT_EQ(run_plan_decode(*dplan,
                            ByteSpan(reply.data(), reply.size() - 4), 0x1234,
                            results),
            ExecStatus::kFallback);
  store_be32(reply.data() + 8, 1);  // MSG_DENIED
  ASSERT_EQ(run_plan_decode(*dplan, ByteSpan(reply.data(), reply.size()),
                            0x1234, results),
            ExecStatus::kFallback);
}

TEST(Specializer, PartialUnrollMatchesFullUnroll) {
  const std::uint32_t n = 1000;
  auto corpus = build_interface_corpus(int_array_proc(2000), 55, 2);
  ASSERT_TRUE(corpus.is_ok());

  std::vector<std::uint32_t> args(n);
  Rng rng(11);
  for (auto& a : args) a = rng.next_u32();

  Bytes full_bytes, part_bytes;
  std::size_t full_code = 0, part_code = 0;
  for (std::uint32_t factor : {0u, 250u}) {
    SpecInput sin;
    sin.static_scalars = {{"cnt0", n}};
    sin.ref_params = {{"argsp", 0}};
    sin.dynamic_scalars = {kXidVar};
    sin.xdrs = {0, 65000, 0};
    sin.options.unroll_factor = factor;
    auto plan = specialize(corpus->program, corpus->encode_call, sin);
    ASSERT_TRUE(plan.is_ok()) << plan.status().to_string();
    Bytes out(plan->out_size);
    ASSERT_EQ(run_plan_encode(*plan, args, 42,
                              MutableByteSpan(out.data(), out.size())),
              ExecStatus::kOk);
    if (factor == 0) {
      full_bytes = out;
      full_code = plan->code_bytes();
    } else {
      part_bytes = out;
      part_code = plan->code_bytes();
      // The partial plan must contain a loop op.
      bool has_loop = false;
      for (const auto& ins : plan->instrs) {
        has_loop |= ins.op == POp::kLoop;
      }
      EXPECT_TRUE(has_loop);
    }
  }
  EXPECT_EQ(full_bytes, part_bytes);
  // Partial unrolling shrinks residual code dramatically (Table 4's
  // I-cache motivation).
  EXPECT_LT(part_code * 3, full_code);
}

TEST(Specializer, CodeSizeGrowsWithArraySize) {
  // Table 3: specialized code grows with the array size, generic doesn't.
  auto corpus = build_interface_corpus(int_array_proc(2000), 55, 2);
  ASSERT_TRUE(corpus.is_ok());
  std::size_t prev = 0;
  for (std::uint32_t n : {20u, 100u, 250u}) {
    SpecInput sin;
    sin.static_scalars = {{"cnt0", n}};
    sin.ref_params = {{"argsp", 0}};
    sin.dynamic_scalars = {kXidVar};
    sin.xdrs = {0, 65000, 0};
    auto plan = specialize(corpus->program, corpus->encode_call, sin);
    ASSERT_TRUE(plan.is_ok());
    EXPECT_GT(plan->code_bytes(), prev);
    prev = plan->code_bytes();
  }
  EXPECT_GT(ir_code_size(corpus->program), 0u);
}

TEST(Bta, PaperClaimsHoldForEncode) {
  auto corpus = build_interface_corpus(int_array_proc(2000), 55, 2);
  ASSERT_TRUE(corpus.is_ok());
  BtaDivision div;
  div.dynamic_params = {kXidVar};
  div.ref_params = {"argsp"};
  div.known_fields = {{"x_op", 0}};
  auto bta = analyze_binding_times(corpus->program, corpus->encode_call, div);
  ASSERT_TRUE(bta.is_ok()) << bta.status().to_string();

  // §3.1: every encode/decode dispatch is static.
  EXPECT_GT(bta->static_dispatches, 0);
  EXPECT_EQ(bta->dynamic_dispatches, 0);
  // §3.2: every buffer overflow check is static.
  EXPECT_GT(bta->static_overflow_checks, 0);
  EXPECT_EQ(bta->dynamic_overflow_checks, 0);
  // §3.3: every exit-status check is static.
  EXPECT_GT(bta->static_status_checks, 0);
  EXPECT_EQ(bta->dynamic_status_checks, 0);
  // The entry returns a static status even though it writes the buffer.
  EXPECT_EQ(bta->entry_return, BT::kStatic);
  EXPECT_TRUE(bta->entry_effects_dynamic);

  // The annotated listing marks buffer stores dynamic and shows the
  // static-return refinement on at least one call.
  const std::string listing = annotated_to_string(*bta);
  EXPECT_NE(listing.find("D| "), std::string::npos);
  EXPECT_NE(listing.find("S| "), std::string::npos);
  EXPECT_NE(listing.find("STATIC return"), std::string::npos);
}

TEST(Bta, DecodeKeepsValidationDynamic) {
  auto corpus = build_interface_corpus(int_array_proc(2000), 55, 2);
  ASSERT_TRUE(corpus.is_ok());
  BtaDivision div;
  div.dynamic_params = {kXidVar, kInlenVar};
  div.ref_params = {"resp"};
  div.known_fields = {{"x_op", 1}};
  auto bta = analyze_binding_times(corpus->program, corpus->decode_reply, div);
  ASSERT_TRUE(bta.is_ok()) << bta.status().to_string();
  // Reply validation depends on received data: the entry's return value
  // is dynamic (unlike encode).
  EXPECT_EQ(bta->entry_return, BT::kDynamic);
}

TEST(Layout, FlattenUnflattenRoundTrip) {
  Rng rng(99);
  auto t = idl::t_struct(
      "mix",
      {{"a", t_int()},
       {"b", idl::t_hyper()},
       {"c", idl::t_opaque_fixed(7)},
       {"d", t_array_var(idl::t_double(), 16)},
       {"e", idl::t_array_fixed(idl::t_bool(), 3)}});
  for (int i = 0; i < 50; ++i) {
    idl::Value v = idl::random_value(*t, rng, 10);
    std::vector<std::uint32_t> counts;
    ASSERT_TRUE(collect_counts(*t, v, counts).is_ok());
    Slots slots;
    ASSERT_TRUE(flatten_value(*t, v, counts, slots).is_ok());
    auto back = unflatten_value(*t, counts, slots);
    ASSERT_TRUE(back.is_ok()) << back.status().to_string();
    EXPECT_TRUE(idl::value_equal(v, *back)) << idl::value_to_string(v);
  }
}

TEST(Layout, EligibilityRules) {
  EXPECT_TRUE(plan_eligible(*t_int()));
  EXPECT_TRUE(plan_eligible(*t_array_var(t_int(), 10)));
  EXPECT_FALSE(plan_eligible(*idl::t_string(10)));
  EXPECT_FALSE(plan_eligible(*idl::t_optional(t_int())));
  auto nested = t_array_var(t_array_var(t_int(), 4), 4);
  EXPECT_TRUE(plan_eligible(*nested));  // eligible as layout...
  EXPECT_FALSE(count_params(*nested).is_ok());  // ...but not countable
}

}  // namespace
}  // namespace tempo::pe
