// Table 2 + Figures 6-3, 6-4, 6-6: complete RPC round-trip time,
// original vs specialized, on both platform profiles.
//
// A round trip decomposes as (paper §5 "Round-trip RPC"):
//   client encode + request wire time + server bzero + server decode +
//   server encode + reply wire time + client bzero + client decode
// CPU legs come from the platform cost model (all four marshaling legs
// counted by the IR interpreter for the original, by the plan executor
// for the specialized version); wire time comes from the simulated link
// (latency + serialization + per-packet + per-byte driver cost).  The
// input-buffer bzero (which the paper singles out as a round-trip-only
// cost) is charged on both sides for both versions.
//
// A real end-to-end sanity run over loopback UDP (generic vs specialized
// client/server) is printed last — wall-clock on this host, where the
// modern CPU makes marshaling a negligible share of the round trip.
#include <atomic>
#include <thread>

#include "bench/bench_util.h"
#include "common/endian.h"
#include "common/metrics.h"
#include "core/generic_client.h"
#include "core/service.h"
#include "core/spec_client.h"
#include "net/udp.h"

namespace tempo::bench {
namespace {

// UDPMSGSIZE in the 1984 code: the receive buffer each side clears.
constexpr std::int64_t kUdpBufBytes = 8800;

struct Leg {
  CostEvents events;
};

// Events for the four marshaling legs of one call (original flavor).
CostEvents generic_roundtrip_events(const core::SpecializedInterface& iface,
                                    std::vector<std::uint32_t>& slots,
                                    std::uint32_t n) {
  const auto& corpus = iface.corpus();
  CostEvents total;

  Bytes request(65000), reply(65000);
  // Client encode.
  {
    pe::InterpInput in;
    in.scalars[pe::kXidVar] = 1;
    in.scalars["cnt0"] = n;
    in.refs["argsp"] = 0;
    in.xdrs = {0, 65000, 0};
    in.user = slots;
    in.out = MutableByteSpan(request.data(), request.size());
    in.cost = &total;
    if (!run_ir(corpus.program, corpus.encode_call, in).is_ok()) std::abort();
  }
  const std::int64_t req_len = 40 + 4 + 4 * n;
  // Server decode (args payload after the header).
  std::vector<std::uint32_t> srv_args(n);
  {
    pe::InterpInput in;
    in.scalars[pe::kInlenVar] = req_len - 40;
    in.scalars["cnt0"] = n;
    in.refs["argsp"] = 0;
    in.xdrs = {1, 0, 0};
    in.user = srv_args;
    in.in = ByteSpan(request.data() + 40, static_cast<std::size_t>(req_len - 40));
    in.cost = &total;
    if (!run_ir(corpus.program, corpus.decode_args, in).is_ok()) std::abort();
  }
  // Server encode results.
  {
    pe::InterpInput in;
    in.scalars["rcnt0"] = n;
    in.refs["resp"] = 0;
    in.xdrs = {0, 65000, 0};
    in.user = srv_args;
    in.out = MutableByteSpan(reply.data() + 24, reply.size() - 24);
    in.cost = &total;
    if (!run_ir(corpus.program, corpus.encode_results, in).is_ok()) {
      std::abort();
    }
  }
  // Client decode reply (header words are zero except xid/type, close
  // enough for cost purposes; build a real header).
  store_be32(reply.data(), 1);
  store_be32(reply.data() + 4, 1);
  const std::int64_t rep_len = 24 + 4 + 4 * n;
  std::vector<std::uint32_t> results(n);
  {
    pe::InterpInput in;
    in.scalars[pe::kXidVar] = 1;
    in.scalars[pe::kInlenVar] = rep_len;
    in.scalars["rcnt0"] = n;
    in.refs["resp"] = 0;
    in.xdrs = {1, 0, 0};
    in.user = results;
    in.in = ByteSpan(reply.data(), static_cast<std::size_t>(rep_len));
    in.cost = &total;
    if (!run_ir(corpus.program, corpus.decode_reply, in).is_ok()) {
      std::abort();
    }
  }
  total.executed_op_bytes = 0;  // compiled generic code
  return total;
}

CostEvents specialized_roundtrip_events(
    const core::SpecializedInterface& iface,
    std::vector<std::uint32_t>& slots, std::uint32_t n) {
  CostEvents total;
  Bytes request(iface.encode_call_plan().out_size);
  if (run_plan_encode(iface.encode_call_plan(), slots, 1,
                      MutableByteSpan(request.data(), request.size()),
                      &total) != pe::ExecStatus::kOk) {
    std::abort();
  }
  std::vector<std::uint32_t> srv_args(n);
  if (run_plan_decode(iface.decode_args_plan(),
                      ByteSpan(request.data() + 40, request.size() - 40), 0,
                      srv_args, &total) != pe::ExecStatus::kOk) {
    std::abort();
  }
  Bytes reply(24 + iface.encode_results_plan().out_size);
  if (run_plan_encode(iface.encode_results_plan(), srv_args, 0,
                      MutableByteSpan(reply.data() + 24, reply.size() - 24),
                      &total) != pe::ExecStatus::kOk) {
    std::abort();
  }
  store_be32(reply.data(), 1);
  store_be32(reply.data() + 4, 1);
  std::vector<std::uint32_t> results(n);
  if (run_plan_decode(iface.decode_reply_plan(),
                      ByteSpan(reply.data(), reply.size()), 1, results,
                      &total) != pe::ExecStatus::kOk) {
    std::abort();
  }
  return total;
}

double wire_ms(const net::LinkParams& link, std::int64_t req_bytes,
               std::int64_t rep_bytes) {
  auto one = [&](std::int64_t bytes) {
    return link.latency_us + link.per_packet_cpu_us +
           static_cast<double>(bytes) *
               (8.0 / link.bandwidth_mbps + link.per_byte_cpu_us);
  };
  return (one(req_bytes) + one(rep_bytes)) / 1000.0;
}

double bzero_ms(const CostParams& cpu) {
  // memset of the UDP receive buffer on each side, ~1 byte/cycle.
  return 2.0 * static_cast<double>(kUdpBufBytes) *
         cpu.cycles_per_buffer_byte_cached * cpu.ns_per_cycle / 1e6;
}

void run_platform(const char* name, const CostParams& cpu,
                  const net::LinkParams& link,
                  std::vector<SpeedupRow>& rows) {
  for (std::uint32_t n : paper_sizes()) {
    core::SpecializedInterface iface = make_iface(n);
    std::vector<std::uint32_t> slots(n);
    Rng rng(n);
    for (auto& s : slots) s = rng.next_u32();

    const std::int64_t req = 40 + 4 + 4 * n;
    const std::int64_t rep = 24 + 4 + 4 * n;
    const double shared = wire_ms(link, req, rep) + bzero_ms(cpu);

    const double orig_cpu =
        cost_to_ns(generic_roundtrip_events(iface, slots, n), cpu) / 1e6;
    const double spec_cpu =
        cost_to_ns(specialized_roundtrip_events(iface, slots, n), cpu) / 1e6;
    rows.push_back({n, orig_cpu + shared, spec_cpu + shared});
  }
  print_speedup_table(name, rows);
  std::printf("\n");
}

// Per-call latency distributions for one native-loopback row; the sim
// platforms are deterministic cost models with no distribution to
// report, so percentiles exist only here.
struct NativeLatRow {
  std::uint32_t n = 0;
  common::HistogramSnapshot generic;
  common::HistogramSnapshot specialized;
};

// Real loopback UDP end-to-end: generic vs specialized, wall clock.
void run_native_loopback(std::vector<SpeedupRow>& rows,
                         std::vector<NativeLatRow>& lat_rows) {
  for (std::uint32_t n : paper_sizes()) {
    core::SpecializedInterface iface = make_iface(n);

    net::UdpSocket server_sock;
    rpc::SvcRegistry reg;
    core::SpecializedService service(
        iface, [](std::span<const std::uint32_t> args,
                  std::span<std::uint32_t> results) {
          std::copy(args.begin(), args.end(), results.begin());
          return true;
        });
    service.install(reg);
    rpc::UdpServer server(server_sock, reg);
    std::atomic<bool> stop{false};
    std::thread server_thread([&] { server.serve(stop); });

    net::UdpSocket client_sock;
    // Generic client.
    const auto arr_t = echo_proc().arg_type;
    core::GenericValueClient gclient(client_sock, server_sock.local_addr(),
                                     kProg, kVers);
    idl::Value arg;
    {
      idl::ValueList l(n);
      Rng rng(n);
      for (auto& e : l) e.v = static_cast<std::int32_t>(rng.next_u32());
      arg.v = std::move(l);
    }
    // Every timed call also lands in a histogram, so the JSON rows for
    // this platform carry a real p50/p99/p999, not just the median the
    // table prints.
    common::LatencyHistogram ghist, shist;
    const double generic_ms = time_ms_per_call(
        [&] {
          const std::int64_t t0 = common::monotonic_ns();
          auto r = gclient.call(kProc, *arr_t, arg, *arr_t);
          if (!r.is_ok()) std::abort();
          ghist.record(common::monotonic_ns() - t0);
        },
        /*min_iters=*/60, /*repeats=*/5);

    // Specialized client.
    core::SpecializedClient sclient(client_sock, server_sock.local_addr(),
                                    iface);
    std::vector<std::uint32_t> slots(n), results(n);
    Rng rng(n);
    for (auto& s : slots) s = rng.next_u32();
    const double spec_ms = time_ms_per_call(
        [&] {
          const std::int64_t t0 = common::monotonic_ns();
          if (!sclient.call(slots, results).is_ok()) std::abort();
          shist.record(common::monotonic_ns() - t0);
        },
        /*min_iters=*/60, /*repeats=*/5);

    rows.push_back({n, generic_ms, spec_ms});
    lat_rows.push_back({n, ghist.snapshot(), shist.snapshot()});
    stop = true;
    server_thread.join();
  }
  print_speedup_table("this host, real loopback UDP end-to-end", rows);
}

// Machine-readable dump of every (platform, array size) measurement for
// the bench trajectory: `bench_roundtrip --json PATH` (or `-` = stdout).
void emit_json(const char* path,
               const std::vector<std::pair<const char*,
                                           const std::vector<SpeedupRow>*>>&
                   series,
               const std::vector<NativeLatRow>& native_lat) {
  std::FILE* f =
      std::strcmp(path, "-") == 0 ? stdout : std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path);
    std::exit(1);
  }
  JsonWriter jw(f);
  jw.begin_object();
  jw.schema("roundtrip");
  jw.key_array("platforms");
  for (const auto& [name, rows] : series) {
    jw.begin_object();
    jw.field("name", name);
    jw.key_array("rows");
    for (const auto& r : *rows) {
      jw.begin_object();
      jw.field("n", r.n);
      jw.field("original_ms", r.original_ms);
      jw.field("specialized_ms", r.specialized_ms);
      jw.field("speedup", r.specialized_ms > 0
                              ? r.original_ms / r.specialized_ms
                              : 0.0);
      // The native platform has per-call distributions; attach them.
      for (const auto& lr : native_lat) {
        if (std::strcmp(name, "native_loopback_udp") != 0 || lr.n != r.n) {
          continue;
        }
        jw.field("original_p50_us",
                 static_cast<double>(lr.generic.p50()) / 1000.0);
        jw.field("original_p99_us",
                 static_cast<double>(lr.generic.p99()) / 1000.0);
        jw.field("original_p999_us",
                 static_cast<double>(lr.generic.p999()) / 1000.0);
        jw.field("specialized_p50_us",
                 static_cast<double>(lr.specialized.p50()) / 1000.0);
        jw.field("specialized_p99_us",
                 static_cast<double>(lr.specialized.p99()) / 1000.0);
        jw.field("specialized_p999_us",
                 static_cast<double>(lr.specialized.p999()) / 1000.0);
      }
      jw.end_object();
    }
    jw.end_array();
    jw.end_object();
  }
  jw.end_array();
  jw.end_object();
  if (f != stdout) std::fclose(f);
}

void run(const char* json_path) {
  print_header("Table 2: Round trip performance in ms");
  std::vector<SpeedupRow> ipx_rows, p166_rows, native_rows;
  std::vector<NativeLatRow> native_lat_rows;
  run_platform("IPX/SunOS ipx-sim + ATM link", CostParams::ipx_sunos(),
               net::LinkParams::atm_ipx(), ipx_rows);
  run_platform("PC/Linux p166-sim + Fast Ethernet link",
               CostParams::p166_linux(), net::LinkParams::ethernet_pc(),
               p166_rows);
  run_native_loopback(native_rows, native_lat_rows);

  print_header("Figure 6-3: round trip time, original code");
  print_series("IPX/Sunos - ATM 100Mbits original (ms)", ipx_rows, false);
  print_series("PC/Linux - Ethernet 100Mbits original (ms)", p166_rows,
               false);

  print_header("Figure 6-4: round trip time, specialized code");
  {
    std::vector<SpeedupRow> a, b;
    for (auto r : ipx_rows) a.push_back({r.n, r.specialized_ms, 1});
    for (auto r : p166_rows) b.push_back({r.n, r.specialized_ms, 1});
    print_series("IPX/Sunos - ATM 100Mbits specialized (ms)", a, false);
    print_series("PC/Linux - Ethernet 100Mbits specialized (ms)", b, false);
  }

  print_header("Figure 6-6: speedup ratio for RPC round trip");
  print_series("IPX/Sunos - ATM 100Mbits speedup", ipx_rows, true);
  print_series("PC/Linux - Ethernet 100Mbits speedup", p166_rows, true);
  print_series("this-host loopback speedup", native_rows, true);

  if (json_path != nullptr) {
    emit_json(json_path,
              {{"ipx_sunos_atm", &ipx_rows},
               {"pc_linux_ethernet", &p166_rows},
               {"native_loopback_udp", &native_rows}},
              native_lat_rows);
  }
}

}  // namespace
}  // namespace tempo::bench

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--json PATH|-]\n", argv[0]);
      return 2;
    }
  }
  tempo::bench::run(json_path);
  return 0;
}
