#include "rpc/event_runtime.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <utility>

#include "common/endian.h"
#include "xdr/xdrrec.h"

namespace tempo::rpc {

namespace {

constexpr std::size_t kReadChunk = 64 * 1024;
constexpr int kMaxReadsPerEvent = 4;

}  // namespace

EventServerRuntime::EventServerRuntime(SvcRegistry& registry,
                                       EventServerRuntimeConfig cfg)
    : registry_(registry),
      cfg_(cfg),
      reactor_(cfg.force_poll_backend) {}

EventServerRuntime::~EventServerRuntime() { stop(); }

Status EventServerRuntime::start() {
  if (running_.load(std::memory_order_acquire)) return Status::ok();
  if (!reactor_.ok()) return unavailable("EventServerRuntime: reactor init");
  reactor_stop_.store(false, std::memory_order_release);
  workers_stop_.store(false, std::memory_order_release);
  pending_jobs_.store(0, std::memory_order_release);
  intake_closed_ = false;

  if (cfg_.enable_udp) {
    udp_ = std::make_unique<net::UdpSocket>(cfg_.udp_port);
    if (!udp_->ok()) {
      udp_.reset();
      return unavailable("EventServerRuntime: UDP bind failed");
    }
    TEMPO_RETURN_IF_ERROR(udp_->set_nonblocking(true));
    // The reactor thread is not running yet, so registration from the
    // caller's thread is safe.
    reactor_.add(udp_->fd(), net::kEventRead,
                 [this](unsigned) { on_udp_readable(); });
  }
  if (cfg_.enable_tcp) {
    tcp_ = std::make_unique<net::TcpListener>(cfg_.tcp_port);
    if (!tcp_->ok()) {
      if (udp_) reactor_.remove(udp_->fd());
      udp_.reset();
      tcp_.reset();
      return unavailable("EventServerRuntime: TCP bind failed");
    }
    // Non-blocking listener: a connection aborted between readiness and
    // ::accept must surface as "nothing to accept", not block the loop.
    TEMPO_RETURN_IF_ERROR(tcp_->set_nonblocking(true));
    reactor_.add(tcp_->fd(), net::kEventRead,
                 [this](unsigned) { on_accept_ready(); });
  }

  const int workers = cfg_.workers < 1 ? 1 : cfg_.workers;
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  reactor_thread_ = std::thread([this] { reactor_loop(); });
  running_.store(true, std::memory_order_release);
  return Status::ok();
}

void EventServerRuntime::stop() {
  if (!running_.load(std::memory_order_acquire)) return;

  // Phase 1: stop reading new requests (runs on the reactor thread).
  reactor_.post([this] { close_intake(); });

  // Phase 2: bounded drain — queued requests finish and their replies
  // are handed back to the still-running reactor.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(cfg_.drain_timeout_ms);
  while (pending_jobs_.load(std::memory_order_acquire) > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Past the deadline the bound wins over the drain: drop whatever is
  // still queued so stop() cannot be held hostage by a slow handler.
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (!queue_.empty()) {
      stats_.overload_drops += static_cast<std::int64_t>(queue_.size());
      pending_jobs_.fetch_sub(static_cast<std::int64_t>(queue_.size()),
                              std::memory_order_acq_rel);
      queue_.clear();
    }
  }

  // Phase 3: workers down (only in-flight jobs remain).
  workers_stop_.store(true, std::memory_order_release);
  queue_cv_.notify_all();
  for (auto& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();

  // Phase 4: reactor down; its loop flushes and closes connections.
  reactor_stop_.store(true, std::memory_order_release);
  reactor_.wakeup();
  if (reactor_thread_.joinable()) reactor_thread_.join();

  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    queue_.clear();
  }
  udp_.reset();
  tcp_.reset();
  running_.store(false, std::memory_order_release);
}

net::Addr EventServerRuntime::udp_addr() const {
  return udp_ ? udp_->local_addr() : net::Addr{};
}

net::Addr EventServerRuntime::tcp_addr() const {
  return tcp_ ? tcp_->local_addr() : net::Addr{};
}

// ---------------------------------------------------- reactor thread ---

void EventServerRuntime::reactor_loop() {
  while (!reactor_stop_.load(std::memory_order_acquire)) {
    // With conns parked on a full worker queue, tick instead of
    // blocking so their records are re-dispatched as the queue drains
    // (no fd event or completion may ever fire for them otherwise).
    reactor_.poll_once(stalled_conns_.empty() ? -1 : 5);
    retry_stalled();
  }
  // Run straggler completions, give each connection one last
  // non-blocking flush, then close everything.  flush_conn can erase
  // entries, so iterate over a snapshot of ids.
  reactor_.poll_once(0);
  std::vector<std::uint64_t> ids;
  ids.reserve(conns_.size());
  for (auto& [id, conn] : conns_) ids.push_back(id);
  for (auto id : ids) {
    auto it = conns_.find(id);
    if (it != conns_.end()) flush_conn(it->second);
  }
  for (auto& [id, conn] : conns_) reactor_.remove(conn.sock->fd());
  conns_.clear();
}

void EventServerRuntime::close_intake() {
  if (intake_closed_) return;
  intake_closed_ = true;
  if (udp_) reactor_.remove(udp_->fd());
  if (tcp_) reactor_.remove(tcp_->fd());
  // Records parsed but not yet handed to the pool are dropped here so
  // the stop() drain has a fixed amount of work: exactly the jobs the
  // pool already holds.
  stalled_conns_.clear();
  std::vector<std::uint64_t> ids;
  ids.reserve(conns_.size());
  for (auto& [id, conn] : conns_) ids.push_back(id);
  for (auto id : ids) {
    auto it = conns_.find(id);
    if (it == conns_.end()) continue;
    it->second.ready_records.clear();
    it->second.stalled = false;
    finish_conn_if_idle(it->second);
  }
}

void EventServerRuntime::on_udp_readable() {
  std::vector<net::Datagram> buf = take_batch_buffer();
  const int n = udp_->recv_many(buf, cfg_.udp_batch);
  if (n <= 0) {
    recycle_batch_buffer(std::move(buf));
    return;
  }
  ++stats_.udp_batches;
  stats_.udp_datagrams += n;
  const int accepted = push_datagram_jobs(buf, n);
  if (accepted < n) stats_.overload_drops += n - accepted;
  recycle_batch_buffer(std::move(buf));
}

void EventServerRuntime::on_accept_ready() {
  // Accept everything pending; the listener is level-triggered so a
  // partial drain would re-fire anyway, but batching saves wakeups.
  for (;;) {
    auto conn = tcp_->accept(/*timeout_ms=*/0);
    if (!conn.is_ok()) return;
    ++stats_.tcp_connections;
    const std::uint64_t id = next_conn_id_++;
    Conn c;
    c.id = id;
    c.sock = std::move(*conn);
    // Must be non-blocking: POLLOUT only promises SOME send-buffer
    // space, and a blocking send() of a large reply would park the
    // reactor thread on a slow reader.
    if (!c.sock->set_nonblocking(true).is_ok()) continue;
    const int fd = c.sock->fd();
    auto [it, inserted] = conns_.emplace(id, std::move(c));
    if (!inserted || !reactor_.add(fd, net::kEventRead, [this, id](
                                                            unsigned events) {
          on_conn_event(id, events);
        })) {
      conns_.erase(id);
    }
  }
}

void EventServerRuntime::on_conn_event(std::uint64_t id, unsigned events) {
  // read_conn and flush_conn can both destroy the connection (protocol
  // violation, write error); re-resolve the map entry after each.
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  if (events & net::kEventRead) read_conn(it->second);
  it = conns_.find(id);
  if (it == conns_.end()) return;
  if (events & net::kEventWrite) flush_conn(it->second);
  it = conns_.find(id);
  if (it == conns_.end()) return;
  dispatch_ready(it->second);
  finish_conn_if_idle(it->second);
}

void EventServerRuntime::read_conn(Conn& c) {
  if (c.peer_eof) return;
  std::uint8_t chunk[kReadChunk];
  for (int i = 0; i < kMaxReadsPerEvent; ++i) {
    auto r = c.sock->read_some(MutableByteSpan(chunk, sizeof(chunk)),
                               /*timeout_ms=*/0);
    if (!r.is_ok()) {
      if (r.status().code() != StatusCode::kTimeout) c.peer_eof = true;
      return;
    }
    if (!parse_records(c, ByteSpan(chunk, *r))) {
      ++stats_.conn_resets;
      destroy_conn(c.id);
      return;
    }
  }
}

bool EventServerRuntime::parse_records(Conn& c, ByteSpan chunk) {
  while (!chunk.empty()) {
    if (c.frag_header_pending) {
      const std::size_t need = 4 - c.header_partial.size();
      const std::size_t take = std::min(need, chunk.size());
      c.header_partial.insert(c.header_partial.end(), chunk.begin(),
                              chunk.begin() + static_cast<std::ptrdiff_t>(
                                                  take));
      chunk = chunk.subspan(take);
      if (c.header_partial.size() < 4) return true;
      const std::uint32_t word = load_be32(c.header_partial.data());
      c.header_partial.clear();
      c.last_frag = (word & xdr::XdrRec::kLastFragFlag) != 0;
      c.frag_remaining = word & ~xdr::XdrRec::kLastFragFlag;
      c.frag_header_pending = false;
      if (c.record.size() + c.frag_remaining > cfg_.max_record_bytes) {
        return false;  // oversized record: cut the peer off
      }
    }
    const std::size_t take =
        std::min<std::size_t>(c.frag_remaining, chunk.size());
    c.record.insert(c.record.end(), chunk.begin(),
                    chunk.begin() + static_cast<std::ptrdiff_t>(take));
    chunk = chunk.subspan(take);
    c.frag_remaining -= static_cast<std::uint32_t>(take);
    if (c.frag_remaining == 0) {
      c.frag_header_pending = true;
      if (c.last_frag) {
        c.last_frag = false;
        if (!c.record.empty()) {
          c.ready_records.push_back(std::move(c.record));
        }
        c.record = Bytes();
      }
    }
  }
  return true;
}

void EventServerRuntime::dispatch_ready(Conn& c) {
  // One request of a connection in flight at a time: replies go back in
  // call order, matching the threaded runtime's stream semantics.
  while (!c.busy && !c.ready_records.empty()) {
    Job job = TcpRequestJob{c.id, std::move(c.ready_records.front())};
    if (!push_job(job, /*droppable=*/false)) {
      // Queue full: put the record back and park the conn on the
      // stalled list; reactor_loop ticks until it re-dispatches (never
      // block the reactor thread).
      c.ready_records.front() = std::move(std::get<TcpRequestJob>(job).record);
      if (!c.stalled) {
        c.stalled = true;
        stalled_conns_.push_back(c.id);
      }
      return;
    }
    c.ready_records.pop_front();
    c.busy = true;
  }
}

void EventServerRuntime::retry_stalled() {
  if (stalled_conns_.empty()) return;
  std::vector<std::uint64_t> retry;
  retry.swap(stalled_conns_);
  for (auto id : retry) {
    auto it = conns_.find(id);
    if (it == conns_.end()) continue;  // conn died while parked
    it->second.stalled = false;
    dispatch_ready(it->second);  // re-parks itself if still full
    auto again = conns_.find(id);
    if (again != conns_.end()) finish_conn_if_idle(again->second);
  }
}

void EventServerRuntime::flush_conn(Conn& c) {
  while (c.out_off < c.out_buf.size()) {
    auto r = c.sock->write_some(
        ByteSpan(c.out_buf.data() + c.out_off, c.out_buf.size() - c.out_off),
        /*timeout_ms=*/0);
    if (!r.is_ok()) {
      if (r.status().code() != StatusCode::kTimeout) {
        ++stats_.conn_resets;
        destroy_conn(c.id);
      }
      return;
    }
    c.out_off += *r;
  }
  c.out_buf.clear();
  c.out_off = 0;
}

void EventServerRuntime::finish_conn_if_idle(Conn& c) {
  const bool out_pending = c.out_off < c.out_buf.size();
  if (c.peer_eof && !c.busy && c.ready_records.empty() && !out_pending) {
    destroy_conn(c.id);
    return;
  }
  unsigned want = 0;
  // Backpressure: stop reading a conn whose record backlog is full; TCP
  // flow control stalls the peer until dispatch catches up.
  if (!c.peer_eof && !intake_closed_ &&
      c.ready_records.size() < cfg_.max_pipelined_records) {
    want |= net::kEventRead;
  }
  if (out_pending) want |= net::kEventWrite;
  if (want == 0 && !c.busy && c.ready_records.empty()) {
    // Intake is closed and nothing is queued: the connection can never
    // make progress again.
    destroy_conn(c.id);
    return;
  }
  set_conn_interest(c, want);
}

void EventServerRuntime::destroy_conn(std::uint64_t id) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  reactor_.remove(it->second.sock->fd());
  conns_.erase(it);  // unique_ptr closes the socket
}

void EventServerRuntime::set_conn_interest(Conn& c, unsigned interest) {
  if (c.interest == interest) return;
  if (reactor_.set_interest(c.sock->fd(), interest)) {
    c.interest = interest;
  }
}

void EventServerRuntime::on_reply(std::uint64_t conn_id, Bytes framed) {
  auto it = conns_.find(conn_id);
  if (it != conns_.end()) {
    Conn& c = it->second;
    c.busy = false;
    if (!framed.empty()) {
      if (c.out_buf.size() - c.out_off + framed.size() >
          cfg_.max_write_buffer) {
        ++stats_.conn_resets;
        destroy_conn(conn_id);
        pending_jobs_.fetch_sub(1, std::memory_order_acq_rel);
        return;
      }
      if (c.out_buf.empty()) {
        // Common case (peer keeping up): adopt the worker's buffer
        // outright instead of copying it into the write buffer.
        c.out_buf = std::move(framed);
        c.out_off = 0;
      } else {
        c.out_buf.insert(c.out_buf.end(), framed.begin(), framed.end());
      }
      flush_conn(c);
    }
    auto again = conns_.find(conn_id);
    if (again != conns_.end()) {
      dispatch_ready(again->second);
      finish_conn_if_idle(again->second);
    }
  }
  pending_jobs_.fetch_sub(1, std::memory_order_acq_rel);
}

// ------------------------------------------------------- worker side ---

bool EventServerRuntime::push_job(Job& job, bool droppable) {
  (void)droppable;  // both kinds fail fast; the reactor never blocks
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (queue_.size() >= cfg_.queue_capacity) return false;
    queue_.push_back(std::move(job));
  }
  pending_jobs_.fetch_add(1, std::memory_order_acq_rel);
  queue_cv_.notify_one();
  return true;
}

int EventServerRuntime::push_datagram_jobs(std::vector<net::Datagram>& batch,
                                           int n) {
  int accepted = 0;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    while (accepted < n && queue_.size() < cfg_.queue_capacity) {
      auto& d = batch[static_cast<std::size_t>(accepted)];
      queue_.push_back(UdpDatagramJob{d.src, std::move(d.payload), d.len});
      ++accepted;
    }
  }
  if (accepted > 0) {
    pending_jobs_.fetch_add(accepted, std::memory_order_acq_rel);
    queue_cv_.notify_all();
  }
  // Refill the moved-out slots from the payload pool (buffers the
  // workers finished with, still full-size) so the next recv_many
  // neither allocates nor zero-fills.
  {
    std::lock_guard<std::mutex> lock(pool_mu_);
    for (int i = 0; i < accepted && !payload_pool_.empty(); ++i) {
      batch[static_cast<std::size_t>(i)].payload =
          std::move(payload_pool_.back());
      payload_pool_.pop_back();
    }
  }
  return accepted;
}

void EventServerRuntime::worker_loop() {
  // Per-worker reply accumulator: datagram replies collect here and go
  // out in one sendmmsg when the queue runs dry, a TCP job interleaves,
  // or a full recvmmsg batch's worth has piled up.  Scheduling stays
  // one-job-per-pop so a burst still fans out across the pool; only the
  // SEND syscall is batched.
  std::vector<UdpReply> acc;
  for (;;) {
    Job job{UdpDatagramJob{}};
    bool have_job = false;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      if (acc.empty()) {
        queue_cv_.wait(lock, [this] {
          return !queue_.empty() ||
                 workers_stop_.load(std::memory_order_acquire);
        });
        if (queue_.empty()) return;  // stopping and drained
      }
      if (!queue_.empty()) {
        job = std::move(queue_.front());
        queue_.pop_front();
        have_job = true;
      }
    }
    if (!have_job) {
      // Unflushed replies and an (momentarily) empty queue: flush now
      // rather than sit on them — this bounds added reply latency to
      // one handler execution.
      flush_udp_replies(acc);
      continue;
    }
    if (auto* d = std::get_if<UdpDatagramJob>(&job)) {
      serve_udp_datagram(*d, acc);
      if (acc.size() >= static_cast<std::size_t>(
                            cfg_.udp_batch < 1 ? 1 : cfg_.udp_batch)) {
        flush_udp_replies(acc);
      }
    } else if (auto* t = std::get_if<TcpRequestJob>(&job)) {
      flush_udp_replies(acc);  // don't hold replies across a TCP call
      serve_tcp_request(*t);
    }
  }
}

void EventServerRuntime::serve_udp_datagram(UdpDatagramJob& job,
                                            std::vector<UdpReply>& acc) {
  // Zero-copy dispatch: the worker exclusively owns the recycled
  // receive payload, so arguments decode in place and the reply encodes
  // straight into a pooled buffer — no scratch memset/memcpy on either
  // side of the hot path.  pending_jobs_ is decremented when the reply
  // actually flushes so stop()'s drain covers the accumulator too.
  Bytes out = take_payload_buffer();
  // Pooled buffers are kMaxDatagramBytes; only a near-max request needs
  // the headroom growth the reply_capacity rule grants everywhere else.
  // Clamp at the UDP payload ceiling: letting a reply encode past what
  // a datagram can physically carry would trade an immediate
  // GARBAGE_ARGS error reply for a silent EMSGSIZE drop and a client
  // timeout.
  const std::size_t cap =
      std::min(reply_capacity(job.len), net::kMaxUdpPayloadBytes);
  if (out.size() < cap) out.resize(cap);
  const std::size_t n =
      registry_.handle_request(ByteSpan(job.payload.data(), job.len),
                               MutableByteSpan(out.data(), cap));
  recycle_payload(std::move(job.payload));
  if (n == 0) {
    recycle_payload(std::move(out));
    pending_jobs_.fetch_sub(1, std::memory_order_acq_rel);
    return;
  }
  acc.push_back(UdpReply{job.src, std::move(out), n});
}

void EventServerRuntime::flush_udp_replies(std::vector<UdpReply>& acc) {
  if (acc.empty()) return;
  const int total = static_cast<int>(acc.size());
  // Reused per worker thread: the flush path, like the receive path,
  // must not allocate in steady state.
  thread_local std::vector<net::OutDatagram> msgs;
  msgs.resize(acc.size());
  for (std::size_t i = 0; i < acc.size(); ++i) {
    msgs[i].dst = acc[i].dst;
    msgs[i].payload = ByteSpan(acc[i].buf.data(), acc[i].len);
  }
  ++stats_.udp_reply_batches;
  const int sent = udp_->send_many(msgs.data(), total);
  if (sent < total) {
    // The kernel refused the tail (EWOULDBLOCK on the non-blocking
    // socket, ENOBUFS, ...).  Retry once on the reactor thread instead
    // of dropping silently; what it still refuses is counted.
    stats_.reply_send_retries += total - sent;
    std::vector<UdpReply> tail(
        std::make_move_iterator(acc.begin() + sent),
        std::make_move_iterator(acc.end()));
    reactor_.post([this, tail = std::move(tail)]() mutable {
      for (auto& r : tail) {
        if (!udp_->send_to(r.dst, ByteSpan(r.buf.data(), r.len)).is_ok()) {
          ++stats_.reply_send_failures;
        }
        recycle_payload(std::move(r.buf));
      }
    });
  }
  for (int i = 0; i < sent; ++i) {
    recycle_payload(std::move(acc[static_cast<std::size_t>(i)].buf));
  }
  pending_jobs_.fetch_sub(total, std::memory_order_acq_rel);
  acc.clear();
}

void EventServerRuntime::serve_tcp_request(TcpRequestJob& job) {
  // The record is a complete call message in one contiguous buffer, so
  // the same zero-copy span path as UDP serves it — arguments decode in
  // place (residual plans can XDR_INLINE them, unlike an xdrrec stream)
  // and the reply encodes directly after the 4-byte record mark in a
  // per-thread frame scratch.  TCP replies are not bounded by the
  // request (a read-style proc turns a 100-byte call into a big blob),
  // so the scratch provisions kMaxStreamReplyBytes like every other
  // stream-path adapter — once per worker thread, not per request —
  // and additionally scales with the record so a non-default
  // max_record_bytes config keeps its echo-style replies too.
  thread_local Bytes scratch;
  const std::size_t cap =
      std::max(kMaxStreamReplyBytes, reply_capacity(job.record.size()));
  if (scratch.size() < 4 + cap) scratch.resize(4 + cap);
  const std::size_t len = registry_.handle_request(
      ByteSpan(job.record.data(), job.record.size()),
      MutableByteSpan(scratch.data() + 4, cap));
  Bytes framed;
  if (len > 0) {
    ++stats_.tcp_calls;
    store_be32(scratch.data(),
               xdr::XdrRec::kLastFragFlag | static_cast<std::uint32_t>(len));
    framed.assign(scratch.begin(),
                  scratch.begin() + static_cast<std::ptrdiff_t>(4 + len));
  }
  // Hand the reply (or just the busy-clear) back to the reactor thread,
  // which owns all connection state.  pending_jobs_ is decremented by
  // on_reply so stop()'s drain covers the write handoff too.
  reactor_.post([this, conn_id = job.conn_id,
                 framed = std::move(framed)]() mutable {
    on_reply(conn_id, std::move(framed));
  });
}

std::vector<net::Datagram> EventServerRuntime::take_batch_buffer() {
  std::lock_guard<std::mutex> lock(pool_mu_);
  if (batch_pool_.empty()) return {};
  auto buf = std::move(batch_pool_.back());
  batch_pool_.pop_back();
  return buf;
}

void EventServerRuntime::recycle_batch_buffer(std::vector<net::Datagram> buf) {
  std::lock_guard<std::mutex> lock(pool_mu_);
  if (batch_pool_.size() < 8) batch_pool_.push_back(std::move(buf));
}

Bytes EventServerRuntime::take_payload_buffer() {
  {
    std::lock_guard<std::mutex> lock(pool_mu_);
    if (!payload_pool_.empty()) {
      Bytes buf = std::move(payload_pool_.back());
      payload_pool_.pop_back();
      if (buf.size() >= net::kMaxDatagramBytes) return buf;
      // A short buffer can only enter the pool through a code change;
      // grow it rather than propagate a truncated reply cap.
      buf.resize(net::kMaxDatagramBytes);
      return buf;
    }
  }
  return Bytes(net::kMaxDatagramBytes);
}

void EventServerRuntime::recycle_payload(Bytes payload) {
  if (payload.empty()) return;
  std::lock_guard<std::mutex> lock(pool_mu_);
  if (payload_pool_.size() < 64) payload_pool_.push_back(std::move(payload));
}

}  // namespace tempo::rpc
