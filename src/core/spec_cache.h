// SpecCache — process-wide memo table for SpecializedInterface.
//
// Building a specialization runs the whole Tempo pipeline (IR corpus,
// binding-time analysis, partial evaluation of four entry points); at
// tens of microseconds per build it must be amortized when a server
// handles many interfaces and many distinct array shapes.  The cache
// keys on everything the residual plans depend on:
//
//   (prog, vers, proc, arg_counts, res_counts, unroll_factor,
//    buffer_bytes)
//
// and returns shared, immutable SpecializedInterface instances.
//
// Concurrency contract: get_or_build() is safe from any number of
// threads and builds each key AT MOST ONCE — the first thread to miss
// inserts an in-flight marker and builds outside the lock; later
// threads for the same key block until the build completes and share
// the result (their accesses count as hits).
//
// Bounded memory: ready entries live on an LRU list capped at
// `capacity`; inserting past the cap evicts the least-recently-used
// entry (eviction only drops the cache's reference — callers holding a
// SpecHandle keep their interface alive).  A server exposed to
// adversarial count diversity therefore degrades to rebuild churn, not
// OOM.  Failed builds (plan-ineligible types) are negative-cached so a
// hostile client cannot force a pipeline run per request.
#pragma once

#include <cstdint>
#include <condition_variable>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/stubspec.h"
#include "idl/types.h"

namespace tempo::core {

struct SpecKey {
  std::uint32_t prog = 0;
  std::uint32_t vers = 0;
  std::uint32_t proc = 0;
  std::vector<std::uint32_t> arg_counts;
  std::vector<std::uint32_t> res_counts;
  std::uint32_t unroll_factor = 0;
  std::uint32_t buffer_bytes = 0;

  friend bool operator==(const SpecKey&, const SpecKey&) = default;
};

struct SpecKeyHash {
  std::size_t operator()(const SpecKey& k) const;
};

struct SpecCacheStats {
  std::int64_t hits = 0;        // served from a ready or in-flight entry
  std::int64_t misses = 0;      // builds initiated (one per distinct key)
  std::int64_t evictions = 0;   // LRU entries dropped at capacity
  std::int64_t build_failures = 0;
};

using SpecHandle = std::shared_ptr<const SpecializedInterface>;

class SpecCache {
 public:
  explicit SpecCache(std::size_t capacity = 128);

  // Returns the interface for the key derived from
  // (prog, vers, proc.number, config), building it at most once.
  // A non-OK result reproduces the (cached) build failure.
  Result<SpecHandle> get_or_build(const idl::ProcDef& proc,
                                  std::uint32_t prog, std::uint32_t vers,
                                  const SpecConfig& config);

  SpecCacheStats stats() const;
  std::size_t size() const;          // ready entries currently cached
  std::size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    bool ready = false;
    SpecHandle iface;                 // null on build failure
    Status error = Status::ok();
    std::list<SpecKey>::iterator lru_it{};
    bool in_lru = false;
  };

  void touch_locked(Entry& e, const SpecKey& key);
  void insert_lru_locked(const std::shared_ptr<Entry>& e, const SpecKey& key);

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable ready_cv_;
  std::unordered_map<SpecKey, std::shared_ptr<Entry>, SpecKeyHash> map_;
  std::list<SpecKey> lru_;  // front = most recently used; ready entries only
  SpecCacheStats stats_;
};

}  // namespace tempo::core
