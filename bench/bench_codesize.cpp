// Table 3: size of the client code, generic vs specialized, per array
// size.
//
// The paper measures SunOS object-file bytes: generic client 20004 bytes
// flat; specialized clients grow from 24340 (20 ints) to 111348 (2000
// ints) because the array loops unroll.  Our analogs, three of them:
//
//   in-memory   — PInstr footprint the executor walks (code_bytes());
//                 over-reports by struct padding, kept for the cost
//                 model,
//   packed      — the serialized encoding (packed_code_bytes()): one
//                 opcode byte + ULEB128 operands; the honest Table-3
//                 "specialized code size" analog,
//   native stub — machine-code bytes the JIT emits (+ its baked
//                 constant template), the closest thing to the paper's
//                 gcc-compiled specialized objects.
//
// The shape to reproduce: specialized > generic at every size, and
// specialized grows linearly with the array size while generic stays
// flat.
#include "bench/bench_util.h"
#include "pe/compile.h"

namespace tempo::bench {
namespace {

void run() {
  print_header("Table 3: Size of the client code (in bytes)");

  const core::SpecializedInterface probe = make_iface(20);
  const std::size_t generic = probe.generic_code_bytes();
  std::printf("%-28s %10zu (flat across array sizes)\n",
              "generic client code", generic);

  // Client-side objects = encode_call + decode_reply, like the paper.
  std::printf("\n%-10s %12s %12s %12s %12s\n", "size", "in-memory",
              "packed", "native-stub", "stub-tmpl");
  std::size_t prev = 0;
  bool monotone = true, above = true, packed_smaller = true;
  for (std::uint32_t n : paper_sizes()) {
    core::SpecializedInterface iface = make_iface(n);
    const std::size_t spec = iface.encode_call_plan().code_bytes() +
                             iface.decode_reply_plan().code_bytes() +
                             generic;  // fallback path ships too
    const std::size_t packed = iface.encode_call_plan().packed_code_bytes() +
                               iface.decode_reply_plan().packed_code_bytes();
    std::size_t stub = 0, tmpl = 0;
    for (const pe::CompiledPlan* jit :
         {iface.encode_call_jit(), iface.decode_reply_jit()}) {
      if (jit != nullptr) {
        stub += jit->code_size();
        tmpl += jit->template_size();
      }
    }
    std::printf("%-10u %12zu %12zu %12zu %12zu\n", n, spec, packed, stub,
                tmpl);
    monotone &= spec > prev;
    above &= spec > generic;
    packed_smaller &= packed < spec - generic;
    prev = spec;
  }

  // Shape checks: monotone growth, always above generic, and the packed
  // encoding strictly below the padded in-memory footprint.
  std::printf("\nspecialized > generic at every size: %s\n",
              above ? "yes (paper: yes)" : "NO");
  std::printf("specialized grows with array size:   %s\n",
              monotone ? "yes (paper: yes)" : "NO");
  std::printf("packed < in-memory at every size:    %s\n",
              packed_smaller ? "yes (PInstr padding stripped)" : "NO");

  // Partial unrolling (Table 4's configuration) caps the growth.
  print_header("Residual code bytes vs unroll factor (array size 2000)");
  std::printf("%-14s %12s %12s %12s\n", "unroll", "in-memory", "packed",
              "native-stub");
  for (std::uint32_t factor : {0u, 1u, 8u, 50u, 250u}) {
    core::SpecializedInterface iface = make_iface(2000, factor);
    const pe::CompiledPlan* jit = iface.encode_call_jit();
    std::printf("%-14s %12zu %12zu %12zu\n",
                factor == 0 ? "full" : std::to_string(factor).c_str(),
                iface.encode_call_plan().code_bytes(),
                iface.encode_call_plan().packed_code_bytes(),
                jit != nullptr ? jit->code_size() : 0);
  }
}

}  // namespace
}  // namespace tempo::bench

int main() {
  tempo::bench::run();
  return 0;
}
