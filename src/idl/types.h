// XDR-language type model — what rpcgen sees after parsing a .x file.
//
// Types drive three consumers:
//  * the table-driven generic marshaller (interp.h) — the
//    Hoschka-Huitema-style baseline that interprets this descriptor at
//    run time,
//  * the IR stub generator (pe/corpus.h) — the rpcgen analog emitting
//    micro-layer code for the specializer to work on,
//  * the wire-size analysis below — the binding-time fact ("is the
//    encoded size a static function of the type?") the specializer
//    exploits to fold buffer-overflow checks.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace tempo::idl {

enum class Kind : std::uint8_t {
  kVoid,
  kInt,       // 32-bit signed
  kUInt,      // 32-bit unsigned
  kHyper,     // 64-bit signed
  kUHyper,    // 64-bit unsigned
  kBool,
  kFloat,
  kDouble,
  kEnum,        // named constants, wire = i32
  kString,      // variable, bounded by `bound`
  kOpaqueFixed, // exactly `bound` bytes
  kOpaqueVar,   // up to `bound` bytes
  kArrayFixed,  // exactly `bound` elements of `elem`
  kArrayVar,    // up to `bound` elements of `elem`
  kStruct,
  kOptional,    // XDR pointer / "optional data"
  kUnion,       // discriminated by an int/enum
};

struct Type;
using TypePtr = std::shared_ptr<const Type>;

struct Field {
  std::string name;
  TypePtr type;
};

struct UnionArm {
  std::int32_t discriminant = 0;
  Field field;  // field.type may be kVoid
};

struct EnumValue {
  std::string name;
  std::int32_t value = 0;
};

struct Type {
  Kind kind = Kind::kVoid;
  std::string name;                   // for named enum/struct/union/typedef
  std::uint32_t bound = 0;            // array/opaque/string bound
  TypePtr elem;                       // array element / optional payload
  std::vector<Field> fields;          // struct members
  std::vector<EnumValue> enumerators; // enum members
  std::vector<UnionArm> arms;         // union cases
  std::optional<Field> default_arm;   // union default (may be void)
};

// Leaf constructors.
TypePtr t_void();
TypePtr t_int();
TypePtr t_uint();
TypePtr t_hyper();
TypePtr t_uhyper();
TypePtr t_bool();
TypePtr t_float();
TypePtr t_double();
TypePtr t_string(std::uint32_t bound);
TypePtr t_opaque_fixed(std::uint32_t n);
TypePtr t_opaque_var(std::uint32_t bound);
TypePtr t_array_fixed(TypePtr elem, std::uint32_t n);
TypePtr t_array_var(TypePtr elem, std::uint32_t bound);
TypePtr t_struct(std::string name, std::vector<Field> fields);
TypePtr t_enum(std::string name, std::vector<EnumValue> values);
TypePtr t_optional(TypePtr payload);
TypePtr t_union(std::string name, std::vector<UnionArm> arms,
                std::optional<Field> default_arm);

// Encoded size in bytes when it is a static function of the type alone
// (no strings, variable arrays/opaques, optionals or unions anywhere).
// This is the specializer's key static fact: when present, every buffer
// overflow check in the marshaling of this type folds away.
std::optional<std::size_t> static_wire_size(const Type& t);

// True if the type contains only 4-byte integer-class scalars laid out
// contiguously (int/uint/bool/enum and fixed arrays/structs of those) —
// the plan emitter uses this to produce pure word-copy residual code.
bool is_word_regular(const Type& t);

std::string type_to_string(const Type& t);

// ---- interface descriptors (program / version / procedure) -----------

struct ProcDef {
  std::string name;
  std::uint32_t number = 0;
  TypePtr arg_type;
  TypePtr res_type;
};

struct VersionDef {
  std::string name;
  std::uint32_t number = 0;
  std::vector<ProcDef> procs;

  const ProcDef* find_proc(std::uint32_t number) const;
};

struct ProgramDef {
  std::string name;
  std::uint32_t number = 0;
  std::vector<VersionDef> versions;

  const VersionDef* find_version(std::uint32_t number) const;
};

}  // namespace tempo::idl
