#include "kv/service.h"

#include <functional>

#include "xdr/primitives.h"

namespace tempo::kv {

Result<std::unique_ptr<KvService>> KvService::open(Options opts,
                                                   RecoveryInfo* info) {
  if (opts.shards == 0) opts.shards = 1;
  auto svc = std::unique_ptr<KvService>(new KvService());
  svc->opts_ = opts;
  if (info) *info = RecoveryInfo{};
  for (std::uint32_t i = 0; i < opts.shards; ++i) {
    auto shard = std::make_unique<Shard>();
    if (!opts.wal_dir.empty()) {
      Shard* s = shard.get();
      const std::size_t tail_max = opts.tail_max_records;
      WalRecovery rec;
      auto wal = Wal::open(
          opts.wal_dir + "/kv-shard-" + std::to_string(i) + ".wal", opts.wal,
          [s, tail_max](std::uint64_t seq, ByteSpan payload) {
            auto r = decode_wal_payload(seq, payload);
            if (!r.is_ok()) return;  // CRC passed but payload malformed
            if (r->op == KvOp::kDel) {
              s->store.apply_del(seq, r->key);
            } else {
              s->store.apply_put(seq, r->key, r->value);
            }
            // Rebuild the retained tail so a lagging replica can still
            // be served after a primary restart.  (Recovery is
            // single-threaded; the lock keeps the annotated contract.)
            std::lock_guard<std::mutex> lock(s->apply_mu);
            s->tail.push_back(std::move(*r));
            while (s->tail.size() > tail_max) {
              s->tail.pop_front();
              ++s->tail_dropped;
            }
          },
          &rec);
      if (!wal.is_ok()) return wal.status();
      shard->wal = std::move(*wal);
      if (info) {
        info->records += rec.records;
        info->truncated_bytes += rec.truncated_bytes;
      }
    }
    svc->shards_.push_back(std::move(shard));
  }
  auto* raw = svc.get();
  svc->metrics_source_ =
      common::metrics().add_source([raw](common::MetricsSnapshot& snap) {
        snap.add_counter("kv.puts", raw->puts_.value());
        snap.add_counter("kv.dels", raw->dels_.value());
        snap.add_counter("kv.gets", raw->gets_.value());
        snap.merge_histogram("kv.commit_latency_ns",
                             raw->commit_hist_.snapshot());
        std::int64_t keys = 0, versions = 0, last = 0, dup = 0, gc = 0;
        std::int64_t wal_records = 0, wal_fsyncs = 0, wal_batched = 0;
        std::int64_t wal_bytes = 0, tail_records = 0, tail_dropped = 0;
        for (const auto& sh : raw->shards_) {
          keys += static_cast<std::int64_t>(sh->store.key_count());
          versions += static_cast<std::int64_t>(sh->store.version_count());
          last += static_cast<std::int64_t>(sh->store.last_applied());
          dup += sh->store.stats().duplicate_applies.load(
              std::memory_order_relaxed);
          gc += sh->store.stats().gc_reclaimed.load(
              std::memory_order_relaxed);
          if (sh->wal) {
            const WalStats& ws = sh->wal->stats();
            wal_records += ws.records.load(std::memory_order_relaxed);
            wal_fsyncs += ws.fsyncs.load(std::memory_order_relaxed);
            wal_batched += ws.batched.load(std::memory_order_relaxed);
            wal_bytes += ws.bytes.load(std::memory_order_relaxed);
          }
          std::lock_guard<std::mutex> lock(sh->apply_mu);
          tail_records += static_cast<std::int64_t>(sh->tail.size());
          tail_dropped += static_cast<std::int64_t>(sh->tail_dropped);
        }
        snap.add_gauge("kv.keys", keys);
        snap.add_gauge("kv.versions", versions);
        snap.add_gauge("kv.last_applied", last);
        snap.add_gauge("kv.tail_records", tail_records);
        snap.add_counter("kv.duplicate_applies", dup);
        snap.add_counter("kv.gc_reclaimed", gc);
        snap.add_counter("kv.tail_dropped", tail_dropped);
        snap.add_counter("kv.wal_records", wal_records);
        snap.add_counter("kv.wal_fsyncs", wal_fsyncs);
        snap.add_counter("kv.wal_batched", wal_batched);
        snap.add_counter("kv.wal_bytes", wal_bytes);
      });
  return svc;
}

std::uint32_t KvService::shard_of(std::string_view key) const {
  return static_cast<std::uint32_t>(std::hash<std::string_view>{}(key) %
                                    shards_.size());
}

Result<std::uint64_t> KvService::put(std::string_view key,
                                     std::string_view value) {
  if (key.empty() || key.size() > kMaxKeyBytes) {
    return out_of_range("kv: bad key length");
  }
  if (value.size() > kMaxValueBytes) {
    return out_of_range("kv: bad value length");
  }
  puts_.inc();
  LogRecord r;
  r.op = KvOp::kPut;
  r.key = std::string(key);
  r.value = std::string(value);
  return commit(std::move(r));
}

Result<std::uint64_t> KvService::del(std::string_view key) {
  if (key.empty() || key.size() > kMaxKeyBytes) {
    return out_of_range("kv: bad key length");
  }
  dels_.inc();
  LogRecord r;
  r.op = KvOp::kDel;
  r.key = std::string(key);
  return commit(std::move(r));
}

Result<std::uint64_t> KvService::commit(LogRecord r) {
  Shard& shard = *shards_[shard_of(r.key)];
  // TEMPO_METRICS=0 no-ops every record path, here included.
  const bool timed = common::metrics_enabled();
  const std::int64_t t0 = timed ? common::monotonic_ns() : 0;
  if (shard.wal) {
    auto seq = shard.wal->commit(encode_wal_payload(r));
    if (!seq.is_ok()) return seq.status();
    r.seq = *seq;
  } else {
    // Volatile mode: sequence is assigned under the apply lock below.
    r.seq = 0;
  }
  const std::uint64_t seq = apply_in_order(shard, r);
  if (timed) commit_hist_.record(common::monotonic_ns() - t0);
  return seq;
}

std::uint64_t KvService::apply_in_order(Shard& shard, const LogRecord& r) {
  std::unique_lock<std::mutex> lock(shard.apply_mu);
  LogRecord rec = r;
  if (rec.seq == 0) {
    rec.seq = shard.store.last_applied() + 1;
  } else {
    // Group commit wakes a whole batch at once; line its members up so
    // the store sees sequences strictly in order.
    shard.apply_cv.wait(lock, [&] {
      return shard.store.last_applied() + 1 >= rec.seq;
    });
  }
  if (rec.op == KvOp::kDel) {
    shard.store.apply_del(rec.seq, rec.key);
  } else {
    shard.store.apply_put(rec.seq, rec.key, rec.value);
  }
  const std::uint64_t seq = rec.seq;
  shard.tail.push_back(std::move(rec));
  while (shard.tail.size() > opts_.tail_max_records) {
    shard.tail.pop_front();
    ++shard.tail_dropped;
  }
  shard.apply_cv.notify_all();
  return seq;
}

std::optional<std::string> KvService::get(std::string_view key) const {
  gets_.inc();
  return shards_[shard_of(key)]->store.get_latest(key);
}

std::size_t KvService::gc() {
  std::size_t total = 0;
  for (auto& sh : shards_) total += sh->store.gc();
  return total;
}

std::uint64_t KvService::digest() const {
  std::uint64_t h = 1469598103934665603ull;
  for (const auto& sh : shards_) {
    h = (h ^ sh->store.digest()) * 1099511628211ull;
  }
  return h;
}

std::uint64_t KvService::shippable_seq(std::uint32_t shard) const {
  return shards_[shard]->store.last_applied();
}

std::vector<LogRecord> KvService::fetch_since(std::uint32_t shard,
                                              std::uint64_t from,
                                              std::size_t max_words) const {
  std::vector<LogRecord> out;
  const Shard& sh = *shards_[shard];
  std::lock_guard<std::mutex> lock(sh.apply_mu);
  std::size_t words = 0;
  for (const LogRecord& r : sh.tail) {
    if (r.seq <= from) continue;
    const std::size_t cost = record_ship_words(r);
    if (words + cost > max_words) break;
    words += cost;
    out.push_back(r);
  }
  return out;
}

void KvService::acked(std::uint32_t shard, std::uint64_t seq) {
  Shard& sh = *shards_[shard];
  std::lock_guard<std::mutex> lock(sh.apply_mu);
  while (!sh.tail.empty() && sh.tail.front().seq <= seq) {
    sh.tail.pop_front();
  }
}

void KvService::install(rpc::SvcRegistry& registry) {
  registry.register_proc(
      kKvProgram, kKvVersion, kKvProcPut,
      [this](xdr::XdrStream& in, xdr::XdrStream& out) {
        std::string key;
        Bytes value;
        if (!xdr::xdr_string(in, key,
                             static_cast<std::uint32_t>(kMaxKeyBytes)) ||
            !xdr::xdr_bytes(in, value,
                            static_cast<std::uint32_t>(kMaxValueBytes))) {
          return false;
        }
        auto seq = put(key, std::string_view(
                                reinterpret_cast<const char*>(value.data()),
                                value.size()));
        if (!seq.is_ok()) return false;
        return xdr::xdr_u_hyper(out, *seq);
      });
  registry.register_proc(
      kKvProgram, kKvVersion, kKvProcGet,
      [this](xdr::XdrStream& in, xdr::XdrStream& out) {
        std::string key;
        if (!xdr::xdr_string(in, key,
                             static_cast<std::uint32_t>(kMaxKeyBytes))) {
          return false;
        }
        auto value = get(key);
        bool found = value.has_value();
        Bytes bytes;
        if (found) bytes.assign(value->begin(), value->end());
        return xdr::xdr_bool(out, found) &&
               xdr::xdr_bytes(out, bytes,
                              static_cast<std::uint32_t>(kMaxValueBytes));
      });
  registry.register_proc(
      kKvProgram, kKvVersion, kKvProcDel,
      [this](xdr::XdrStream& in, xdr::XdrStream& out) {
        std::string key;
        if (!xdr::xdr_string(in, key,
                             static_cast<std::uint32_t>(kMaxKeyBytes))) {
          return false;
        }
        auto seq = del(key);
        if (!seq.is_ok()) return false;
        return xdr::xdr_u_hyper(out, *seq);
      });
}

// -------------------------------------------------------------- client

KvClient::KvClient(net::Addr server, rpc::CallOptions opts)
    : client_(sock_, server, kKvProgram, kKvVersion, opts) {}

Result<std::uint64_t> KvClient::put(std::string_view key,
                                    std::string_view value) {
  std::string k(key);
  Bytes v(value.begin(), value.end());
  std::uint64_t seq = 0;
  Status st = client_.call(
      kKvProcPut,
      [&](xdr::XdrStream& x) {
        return xdr::xdr_string(x, k,
                               static_cast<std::uint32_t>(kMaxKeyBytes)) &&
               xdr::xdr_bytes(x, v,
                              static_cast<std::uint32_t>(kMaxValueBytes));
      },
      [&](xdr::XdrStream& x) { return xdr::xdr_u_hyper(x, seq); });
  if (!st.is_ok()) return st;
  return seq;
}

Result<std::uint64_t> KvClient::del(std::string_view key) {
  std::string k(key);
  std::uint64_t seq = 0;
  Status st = client_.call(
      kKvProcDel,
      [&](xdr::XdrStream& x) {
        return xdr::xdr_string(x, k,
                               static_cast<std::uint32_t>(kMaxKeyBytes));
      },
      [&](xdr::XdrStream& x) { return xdr::xdr_u_hyper(x, seq); });
  if (!st.is_ok()) return st;
  return seq;
}

Result<std::optional<std::string>> KvClient::get(std::string_view key) {
  std::string k(key);
  bool found = false;
  Bytes bytes;
  Status st = client_.call(
      kKvProcGet,
      [&](xdr::XdrStream& x) {
        return xdr::xdr_string(x, k,
                               static_cast<std::uint32_t>(kMaxKeyBytes));
      },
      [&](xdr::XdrStream& x) {
        return xdr::xdr_bool(x, found) &&
               xdr::xdr_bytes(x, bytes,
                              static_cast<std::uint32_t>(kMaxValueBytes));
      });
  if (!st.is_ok()) return st;
  if (!found) return std::optional<std::string>();
  return std::optional<std::string>(
      std::string(reinterpret_cast<const char*>(bytes.data()), bytes.size()));
}

}  // namespace tempo::kv
