// SpecializedInterface: the user-facing product of the pipeline —
// "rpcgen, then Tempo" in one object.
//
// Construction runs the whole toolchain for one (program, version,
// procedure) and one set of pinned array counts:
//   1. build the generic micro-layer stubs in IR (pe/corpus),
//   2. partially evaluate all four entry points under the static inputs
//      (pe/specializer) into residual plans,
//   3. keep the generic IR around for the annotated view and as the
//      reference/fallback semantics.
//
// One instance corresponds to one row of the paper's Table 3: a
// specialized client for one array size.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "idl/types.h"
#include "pe/bta.h"
#include "pe/compile.h"
#include "pe/corpus.h"
#include "pe/layout.h"
#include "pe/plan.h"
#include "pe/specializer.h"

namespace tempo::core {

struct SpecConfig {
  std::vector<std::uint32_t> arg_counts;  // pinned var-array counts, preorder
  std::vector<std::uint32_t> res_counts;
  std::uint32_t unroll_factor = 0;        // 0 = full unroll (paper default)
  std::uint32_t buffer_bytes = 65000;     // encode capacity (static input)
  // Third execution tier: lower the residual plans to native stubs
  // (pe::CompiledPlan).  The effective setting is this flag AND the
  // process-wide TEMPO_PLAN_JIT env knob AND host support; it is
  // deliberately NOT part of the SpecCache key — the tier changes how a
  // plan runs, never what it produces.
  bool enable_jit = true;
};

class SpecializedInterface {
 public:
  // Fails if the interface is not plan-eligible; callers keep the
  // generic path then (guarded specialization).
  static Result<SpecializedInterface> build(const idl::ProcDef& proc,
                                            std::uint32_t prog,
                                            std::uint32_t vers,
                                            SpecConfig config);

  const pe::Plan& encode_call_plan() const { return encode_call_; }
  const pe::Plan& decode_reply_plan() const { return decode_reply_; }
  const pe::Plan& decode_args_plan() const { return decode_args_; }
  const pe::Plan& encode_results_plan() const { return encode_results_; }

  // Compiled tier (null when the JIT is off, unsupported, or the plan
  // was not compilable — the exec_* helpers below then use the plan
  // executor, which is always correct).
  const pe::CompiledPlan* encode_call_jit() const {
    return encode_call_jit_.get();
  }
  const pe::CompiledPlan* decode_reply_jit() const {
    return decode_reply_jit_.get();
  }
  const pe::CompiledPlan* decode_args_jit() const {
    return decode_args_jit_.get();
  }
  const pe::CompiledPlan* encode_results_jit() const {
    return encode_results_jit_.get();
  }

  // Tier-aware execution: the compiled stub when present, the plan
  // executor otherwise.  Byte- and status-identical either way (the
  // differential suite enforces this), so callers never branch on tier.
  pe::ExecStatus exec_encode_call(std::span<const std::uint32_t> words,
                                  std::uint32_t xid, MutableByteSpan out) const;
  pe::ExecStatus exec_decode_reply(ByteSpan in, std::uint32_t xid,
                                   std::span<std::uint32_t> words) const;
  pe::ExecStatus exec_decode_args(ByteSpan in,
                                  std::span<std::uint32_t> words) const;
  pe::ExecStatus exec_encode_results(std::span<const std::uint32_t> words,
                                     MutableByteSpan out) const;

  // Number of entry points running on the compiled tier (0..4).
  int jit_stub_count() const;
  bool jit_active() const { return jit_stub_count() > 0; }

  const pe::InterfaceCorpus& corpus() const { return corpus_; }
  const SpecConfig& config() const { return config_; }
  const idl::Type& arg_type() const { return *corpus_.arg_type; }
  const idl::Type& res_type() const { return *corpus_.res_type; }

  std::int64_t arg_slots() const { return arg_slots_; }
  std::int64_t res_slots() const { return res_slots_; }

  // Tempo-style annotated listing of the generic encode path under this
  // interface's binding-time division (§6.1 visualization).
  Result<std::string> annotated_encode_listing() const;

  // Total residual code bytes across the four plans (Table 3 analog).
  std::size_t specialized_code_bytes() const;
  // Same, under the compact serialized encoding (no struct padding) —
  // the honest Table 3 number.
  std::size_t packed_code_bytes() const;
  // Native bytes across the compiled stubs (0 when the JIT is off).
  std::size_t compiled_code_bytes() const;
  // Generic code-model size (constant across array sizes, like the
  // original 20004-byte client objects).
  std::size_t generic_code_bytes() const;

 private:
  SpecializedInterface() = default;

  pe::InterfaceCorpus corpus_;
  SpecConfig config_;
  pe::Plan encode_call_, decode_reply_, decode_args_, encode_results_;
  // shared_ptr so SpecializedInterface stays copyable; the stubs are
  // immutable after build.
  std::shared_ptr<const pe::CompiledPlan> encode_call_jit_, decode_reply_jit_,
      decode_args_jit_, encode_results_jit_;
  std::int64_t arg_slots_ = 0, res_slots_ = 0;
};

}  // namespace tempo::core
