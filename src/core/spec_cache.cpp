#include "core/spec_cache.h"

namespace tempo::core {

namespace {

inline void hash_combine(std::size_t& seed, std::size_t v) {
  seed ^= v + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2);
}

}  // namespace

std::size_t SpecKeyHash::operator()(const SpecKey& k) const {
  std::size_t seed = 0;
  hash_combine(seed, k.prog);
  hash_combine(seed, k.vers);
  hash_combine(seed, k.proc);
  hash_combine(seed, k.unroll_factor);
  hash_combine(seed, k.buffer_bytes);
  hash_combine(seed, k.arg_counts.size());
  for (auto c : k.arg_counts) hash_combine(seed, c);
  hash_combine(seed, k.res_counts.size());
  for (auto c : k.res_counts) hash_combine(seed, c);
  return seed;
}

SpecCache::SpecCache(std::size_t capacity, std::size_t shards)
    : capacity_(capacity == 0 ? 1 : capacity) {
  if (shards == 0) shards = 1;
  if (shards > capacity_) shards = capacity_;  // every shard gets >= 1 slot
  shards_.reserve(shards);
  // Distribute the capacity as evenly as possible; the first
  // (capacity % shards) shards take the remainder.
  const std::size_t base = capacity_ / shards;
  std::size_t leftover = capacity_ % shards;
  for (std::size_t i = 0; i < shards; ++i) {
    auto s = std::make_unique<Shard>();
    s->capacity = base + (leftover > 0 ? 1 : 0);
    if (leftover > 0) --leftover;
    shards_.push_back(std::move(s));
  }
}

void SpecCache::Shard::touch_locked(Entry& e, const SpecKey& key) {
  if (!e.in_lru) return;
  lru.erase(e.lru_it);
  lru.push_front(key);
  e.lru_it = lru.begin();
}

void SpecCache::Shard::insert_lru_locked(const std::shared_ptr<Entry>& e,
                                         const SpecKey& key) {
  lru.push_front(key);
  e->lru_it = lru.begin();
  e->in_lru = true;
  while (lru.size() > capacity) {
    const SpecKey& victim = lru.back();
    auto it = map.find(victim);
    if (it != map.end()) map.erase(it);
    lru.pop_back();
    ++stats.evictions;
  }
}

Result<SpecHandle> SpecCache::get_or_build(const idl::ProcDef& proc,
                                           std::uint32_t prog,
                                           std::uint32_t vers,
                                           const SpecConfig& config) {
  SpecKey key{prog,
              vers,
              proc.number,
              config.arg_counts,
              config.res_counts,
              config.unroll_factor,
              config.buffer_bytes};
  Shard& shard = shard_for(SpecKeyHash{}(key));

  std::shared_ptr<Entry> entry;
  {
    std::unique_lock<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      entry = it->second;
      ++shard.stats.hits;
      if (!entry->ready) {
        // Another thread is building this key: wait, do not rebuild.
        shard.ready_cv.wait(lock, [&] { return entry->ready; });
      }
      // The entry may have been evicted from the map while we waited;
      // the shared_ptr keeps the payload valid either way.  Touch the
      // LRU for negative entries too: a hot ineligible shape must stay
      // cached, or its eviction would let repeated requests re-run the
      // pipeline.
      auto relocated = shard.map.find(key);
      if (relocated != shard.map.end() && relocated->second == entry) {
        shard.touch_locked(*entry, key);
      }
      if (entry->iface) return entry->iface;
      return entry->error;
    }
    // Miss: claim the build while holding the shard lock.
    ++shard.stats.misses;
    entry = std::make_shared<Entry>();
    shard.map.emplace(key, entry);
  }

  // Build outside the lock — this is the expensive pipeline run.
  auto built = SpecializedInterface::build(proc, prog, vers, config);

  {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (built.is_ok()) {
      entry->iface =
          std::make_shared<const SpecializedInterface>(std::move(*built));
      shard.insert_lru_locked(entry, key);
    } else {
      entry->error = built.status();
      ++shard.stats.build_failures;
      // Negative entries take an LRU slot too: repeated requests for an
      // ineligible shape must not re-run the pipeline, but an adversary
      // minting distinct ineligible keys must not grow the map
      // unboundedly either.
      shard.insert_lru_locked(entry, key);
    }
    entry->ready = true;
  }
  shard.ready_cv.notify_all();

  if (entry->iface) return entry->iface;
  return entry->error;
}

SpecCacheStats SpecCache::stats() const {
  SpecCacheStats total;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mu);
    total.hits += s->stats.hits;
    total.misses += s->stats.misses;
    total.evictions += s->stats.evictions;
    total.build_failures += s->stats.build_failures;
  }
  return total;
}

std::size_t SpecCache::size() const {
  std::size_t total = 0;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mu);
    total += s->lru.size();
  }
  return total;
}

SpecCacheStats SpecCache::shard_stats(std::size_t shard) const {
  std::lock_guard<std::mutex> lock(shards_[shard]->mu);
  return shards_[shard]->stats;
}

std::size_t SpecCache::shard_size(std::size_t shard) const {
  std::lock_guard<std::mutex> lock(shards_[shard]->mu);
  return shards_[shard]->lru.size();
}

}  // namespace tempo::core
