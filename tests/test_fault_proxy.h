// Deterministic UDP fault proxy shared by the fault-injection suites
// (test_faults.cpp) and the KV replication-consistency suite
// (test_kv_repl.cpp).
//
// Sits between one client and a real runtime on loopback: datagrams in
// either direction are dropped, duplicated, or held back and released
// out of order according to a seeded splitmix64 schedule, so a run is
// exactly reproducible.  (Loopback itself never faults, which is why
// the runtimes had no adversarial coverage before the proxy existed.)
#pragma once

#include <gtest/gtest.h>

#include <atomic>
#include <deque>
#include <thread>

#include "common/bytes.h"
#include "net/udp.h"
#include "test_rng.h"

namespace tempo::test {

struct FaultParams {
  double drop = 0.0;     // per-datagram drop probability
  double dup = 0.0;      // per-datagram duplication probability
  double reorder = 0.0;  // probability a datagram is held and released
                         // AFTER the next one (a pairwise swap)
};

class UdpFaultProxy {
 public:
  UdpFaultProxy(net::Addr server, FaultParams faults, std::uint64_t seed)
      : server_(server), faults_(faults), rng_{seed} {
    EXPECT_TRUE(client_side_.ok());
    EXPECT_TRUE(server_side_.ok());
    EXPECT_TRUE(client_side_.set_nonblocking(true).is_ok());
    EXPECT_TRUE(server_side_.set_nonblocking(true).is_ok());
    thread_ = std::thread([this] { pump(); });
  }

  ~UdpFaultProxy() {
    stop_.store(true, std::memory_order_release);
    if (thread_.joinable()) thread_.join();
  }

  // Where the client should send its requests.
  net::Addr addr() const { return client_side_.local_addr(); }

 private:
  bool chance(double p) { return rng_.chance(p); }

  struct Pending {
    bool to_server = false;
    Bytes payload;
  };

  void forward(bool to_server, ByteSpan payload) {
    // A refused send is just one more dropped datagram to the client.
    if (to_server) {
      (void)!server_side_.send_to(server_, payload).is_ok();
    } else if (client_.port != 0) {
      (void)!client_side_.send_to(client_, payload).is_ok();
    }
  }

  // Applies the fault schedule to one datagram, then forwards it (and
  // any datagram whose reordering hold ends with this one).
  void apply(bool to_server, ByteSpan payload) {
    if (chance(faults_.drop)) return;
    const bool hold = chance(faults_.reorder);
    if (hold) {
      held_.push_back(Pending{to_server, Bytes(payload.begin(),
                                               payload.end())});
    } else {
      forward(to_server, payload);
      if (chance(faults_.dup)) forward(to_server, payload);
    }
    // Release anything held from before this datagram: the held one now
    // arrives after its successor — a reorder.
    while (held_.size() > (hold ? 1u : 0u)) {
      Pending p = std::move(held_.front());
      held_.pop_front();
      forward(p.to_server, ByteSpan(p.payload.data(), p.payload.size()));
      if (chance(faults_.dup)) {
        forward(p.to_server, ByteSpan(p.payload.data(), p.payload.size()));
      }
    }
  }

  void pump() {
    Bytes buf(65536);
    while (!stop_.load(std::memory_order_acquire)) {
      bool idle = true;
      net::Addr src;
      // Client -> server: remember the (single) client so replies can
      // be routed back.
      auto got = client_side_.recv_from(
          &src, MutableByteSpan(buf.data(), buf.size()), 0);
      if (got.is_ok()) {
        client_ = src;
        apply(/*to_server=*/true, ByteSpan(buf.data(), *got));
        idle = false;
      }
      got = server_side_.recv_from(nullptr,
                                   MutableByteSpan(buf.data(), buf.size()), 0);
      if (got.is_ok()) {
        apply(/*to_server=*/false, ByteSpan(buf.data(), *got));
        idle = false;
      }
      if (idle) std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    // Flush stragglers so a held reply is not silently lost at exit.
    while (!held_.empty()) {
      Pending p = std::move(held_.front());
      held_.pop_front();
      forward(p.to_server, ByteSpan(p.payload.data(), p.payload.size()));
    }
  }

  net::Addr server_;
  FaultParams faults_;
  test::Rng rng_;
  net::UdpSocket client_side_;  // faces the client
  net::UdpSocket server_side_;  // faces the runtime
  net::Addr client_{};          // learned from the first request
  std::deque<Pending> held_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

}  // namespace tempo::test
