// SpecCache tests: memoization under concurrency (one build per key),
// bounded LRU eviction + rebuild, byte-identical cached plans, negative
// caching, and the cache wired into the concurrent server runtime via
// CachedSpecService over real loopback UDP and TCP.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "core/service.h"
#include "core/spec_cache.h"
#include "core/spec_client.h"
#include "core/stubspec.h"
#include "idl/interp.h"
#include "net/udp.h"
#include "pe/compile.h"
#include "rpc/client.h"
#include "rpc/svc.h"
#include "xdr/primitives.h"

namespace tempo::core {
namespace {

constexpr std::uint32_t kProg = 0x20000777;
constexpr std::uint32_t kVers = 1;

idl::ProcDef echo_array_proc(std::uint32_t bound = 2000) {
  idl::ProcDef proc;
  proc.name = "ECHO";
  proc.number = 7;
  proc.arg_type = idl::t_array_var(idl::t_int(), bound);
  proc.res_type = idl::t_array_var(idl::t_int(), bound);
  return proc;
}

SpecConfig cfg_for(std::uint32_t n) {
  SpecConfig cfg;
  cfg.arg_counts = {n};
  cfg.res_counts = {n};
  return cfg;
}

bool plans_equal(const pe::Plan& a, const pe::Plan& b) {
  if (a.is_encode != b.is_encode || a.out_size != b.out_size ||
      a.expected_in != b.expected_in || a.words_needed != b.words_needed ||
      a.instrs.size() != b.instrs.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.instrs.size(); ++i) {
    const auto& x = a.instrs[i];
    const auto& y = b.instrs[i];
    if (x.op != y.op || x.off != y.off || x.a != y.a || x.b != y.b ||
        x.imm != y.imm) {
      return false;
    }
  }
  return true;
}

TEST(SpecCache, HitsAfterFirstBuild) {
  SpecCache cache(16);
  const auto proc = echo_array_proc();
  auto a = cache.get_or_build(proc, kProg, kVers, cfg_for(50));
  ASSERT_TRUE(a.is_ok()) << a.status().to_string();
  auto b = cache.get_or_build(proc, kProg, kVers, cfg_for(50));
  ASSERT_TRUE(b.is_ok());
  EXPECT_EQ(a->get(), b->get());  // literally the same instance

  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(SpecCache, DistinctKeysBuildSeparately) {
  SpecCache cache(16);
  const auto proc = echo_array_proc();
  auto a = cache.get_or_build(proc, kProg, kVers, cfg_for(10));
  auto b = cache.get_or_build(proc, kProg, kVers, cfg_for(20));
  SpecConfig unrolled = cfg_for(10);
  unrolled.unroll_factor = 4;  // same counts, different unroll: new key
  auto c = cache.get_or_build(proc, kProg, kVers, unrolled);
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  ASSERT_TRUE(c.is_ok());
  EXPECT_NE(a->get(), b->get());
  EXPECT_NE(a->get(), c->get());
  EXPECT_EQ(cache.stats().misses, 3);
}

// 8 threads hammer a small key set concurrently; the in-flight protocol
// must make each distinct key build exactly once (miss count == distinct
// keys) and hand every thread the same shared instance per key.
TEST(SpecCache, ConcurrentHammeringBuildsOncePerKey) {
  constexpr int kThreads = 8;
  constexpr int kItersPerThread = 200;
  const std::vector<std::uint32_t> sizes = {10, 20, 30, 40, 50, 60};

  SpecCache cache(64);
  const auto proc = echo_array_proc();

  std::vector<std::vector<const SpecializedInterface*>> seen(
      kThreads, std::vector<const SpecializedInterface*>(sizes.size(),
                                                         nullptr));
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kItersPerThread; ++i) {
        const std::size_t k = static_cast<std::size_t>((i + t) %
                                                       sizes.size());
        auto r = cache.get_or_build(proc, kProg, kVers, cfg_for(sizes[k]));
        if (!r.is_ok()) {
          ++failures;
          continue;
        }
        if (seen[t][k] == nullptr) {
          seen[t][k] = r->get();
        } else if (seen[t][k] != r->get()) {
          ++failures;  // key rebuilt: memoization broken
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(failures.load(), 0);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, static_cast<std::int64_t>(sizes.size()));
  EXPECT_EQ(stats.hits,
            static_cast<std::int64_t>(kThreads) * kItersPerThread -
                static_cast<std::int64_t>(sizes.size()));
  EXPECT_EQ(stats.evictions, 0);
  // Every thread saw the same instance for each key.
  for (std::size_t k = 0; k < sizes.size(); ++k) {
    for (int t = 1; t < kThreads; ++t) {
      EXPECT_EQ(seen[t][k], seen[0][k]);
    }
  }
}

TEST(SpecCache, LruEvictionTriggersRebuild) {
  SpecCache cache(2);
  const auto proc = echo_array_proc();

  auto a1 = cache.get_or_build(proc, kProg, kVers, cfg_for(10));  // miss
  ASSERT_TRUE(a1.is_ok());
  ASSERT_TRUE(cache.get_or_build(proc, kProg, kVers, cfg_for(20)).is_ok());
  ASSERT_TRUE(cache.get_or_build(proc, kProg, kVers, cfg_for(10)).is_ok());
  // LRU order now: 10 (front), 20 (back).  Inserting 30 evicts 20.
  ASSERT_TRUE(cache.get_or_build(proc, kProg, kVers, cfg_for(30)).is_ok());
  EXPECT_EQ(cache.stats().evictions, 1);
  EXPECT_EQ(cache.size(), 2u);

  // 20 was evicted: asking again is a miss and rebuilds.
  ASSERT_TRUE(cache.get_or_build(proc, kProg, kVers, cfg_for(20)).is_ok());
  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 4);  // 10, 20, 30, 20-again
  EXPECT_EQ(stats.hits, 1);    // the middle 10
  EXPECT_EQ(stats.evictions, 2);  // 20, then 10 (LRU when 20 returned)

  // 10 survived in a caller's handle even though the cache dropped it.
  auto a2 = cache.get_or_build(proc, kProg, kVers, cfg_for(10));
  ASSERT_TRUE(a2.is_ok());
  EXPECT_NE(a1->get(), a2->get());  // rebuilt, not resurrected
  EXPECT_EQ((*a1)->encode_call_plan().out_size,
            (*a2)->encode_call_plan().out_size);
}

// A cached interface must be indistinguishable from a freshly built one:
// identical residual instructions and identical wire bytes.
TEST(SpecCache, CachedPlansByteCompareEqualToFreshBuild) {
  const std::uint32_t n = 100;
  SpecCache cache(8);
  const auto proc = echo_array_proc();

  auto cached = cache.get_or_build(proc, kProg, kVers, cfg_for(n));
  ASSERT_TRUE(cached.is_ok());
  // Hit the entry a few times so LRU bookkeeping has run.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(cache.get_or_build(proc, kProg, kVers, cfg_for(n)).is_ok());
  }

  auto fresh = SpecializedInterface::build(proc, kProg, kVers, cfg_for(n));
  ASSERT_TRUE(fresh.is_ok());

  EXPECT_TRUE(plans_equal((*cached)->encode_call_plan(),
                          fresh->encode_call_plan()));
  EXPECT_TRUE(plans_equal((*cached)->decode_reply_plan(),
                          fresh->decode_reply_plan()));
  EXPECT_TRUE(plans_equal((*cached)->decode_args_plan(),
                          fresh->decode_args_plan()));
  EXPECT_TRUE(plans_equal((*cached)->encode_results_plan(),
                          fresh->encode_results_plan()));

  // And the residual code produces identical wire bytes.
  std::vector<std::uint32_t> args(n);
  for (std::uint32_t i = 0; i < n; ++i) args[i] = i * 2654435761u;
  Bytes out_cached((*cached)->encode_call_plan().out_size);
  Bytes out_fresh(fresh->encode_call_plan().out_size);
  ASSERT_EQ(run_plan_encode((*cached)->encode_call_plan(), args, 0x1234,
                            MutableByteSpan(out_cached.data(),
                                            out_cached.size())),
            pe::ExecStatus::kOk);
  ASSERT_EQ(run_plan_encode(fresh->encode_call_plan(), args, 0x1234,
                            MutableByteSpan(out_fresh.data(),
                                            out_fresh.size())),
            pe::ExecStatus::kOk);
  EXPECT_EQ(out_cached, out_fresh);
}

TEST(SpecCache, NegativeCachingDoesNotRebuildFailures) {
  SpecCache cache(8);
  idl::ProcDef bad;
  bad.name = "BAD";
  bad.number = 3;
  bad.arg_type = idl::t_string(64);  // not plan-eligible
  bad.res_type = idl::t_void();

  auto r1 = cache.get_or_build(bad, kProg, kVers, {});
  EXPECT_FALSE(r1.is_ok());
  auto r2 = cache.get_or_build(bad, kProg, kVers, {});
  EXPECT_FALSE(r2.is_ok());
  EXPECT_EQ(r1.status().code(), r2.status().code());

  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 1);  // pipeline ran once
  EXPECT_EQ(stats.hits, 1);    // second request served from the entry
  EXPECT_EQ(stats.build_failures, 1);
}

// ---- sharding ------------------------------------------------------------

TEST(SpecCacheSharding, CountersAggregateAcrossShards) {
  SpecCache cache(64, /*shards=*/4);
  EXPECT_EQ(cache.shard_count(), 4u);
  const auto proc = echo_array_proc();

  const std::vector<std::uint32_t> sizes = {10, 20, 30, 40, 50, 60, 70, 80};
  for (auto n : sizes) {
    ASSERT_TRUE(cache.get_or_build(proc, kProg, kVers, cfg_for(n)).is_ok());
  }
  for (auto n : sizes) {  // second pass: all hits
    ASSERT_TRUE(cache.get_or_build(proc, kProg, kVers, cfg_for(n)).is_ok());
  }

  const auto total = cache.stats();
  EXPECT_EQ(total.misses, static_cast<std::int64_t>(sizes.size()));
  EXPECT_EQ(total.hits, static_cast<std::int64_t>(sizes.size()));
  EXPECT_EQ(total.evictions, 0);
  EXPECT_EQ(cache.size(), sizes.size());

  // The aggregate is exactly the sum of the per-shard counters, and the
  // keys landed somewhere (not all in shard 0).
  SpecCacheStats summed;
  std::size_t summed_size = 0;
  for (std::size_t s = 0; s < cache.shard_count(); ++s) {
    const auto ss = cache.shard_stats(s);
    summed.hits += ss.hits;
    summed.misses += ss.misses;
    summed.evictions += ss.evictions;
    summed.build_failures += ss.build_failures;
    summed_size += cache.shard_size(s);
  }
  EXPECT_EQ(summed.hits, total.hits);
  EXPECT_EQ(summed.misses, total.misses);
  EXPECT_EQ(summed.evictions, total.evictions);
  EXPECT_EQ(summed_size, cache.size());
}

TEST(SpecCacheSharding, EvictionsStayPerShardBounded) {
  // 4 shards x 2 slots each; flooding with distinct keys must bound the
  // total footprint at the overall capacity.
  SpecCache cache(8, /*shards=*/4);
  const auto proc = echo_array_proc();
  for (std::uint32_t n = 1; n <= 40; ++n) {
    ASSERT_TRUE(cache.get_or_build(proc, kProg, kVers, cfg_for(n)).is_ok());
  }
  EXPECT_LE(cache.size(), 8u);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 40);
  EXPECT_EQ(stats.evictions,
            40 - static_cast<std::int64_t>(cache.size()));
}

TEST(SpecCacheSharding, ShardCountClampedToCapacity) {
  SpecCache cache(2, /*shards=*/8);
  EXPECT_EQ(cache.shard_count(), 2u);  // every shard keeps >= 1 slot
}

// The one-build-per-key contract must survive sharding: 8 threads
// hammer keys that scatter across 4 shards; each key still builds
// exactly once and every thread sees the same shared instance.
TEST(SpecCacheSharding, OneBuildPerKeyUnder8ThreadContention) {
  constexpr int kThreads = 8;
  constexpr int kItersPerThread = 200;
  const std::vector<std::uint32_t> sizes = {11, 22, 33, 44, 55, 66, 77, 88};

  SpecCache cache(64, /*shards=*/4);
  const auto proc = echo_array_proc();

  std::vector<std::vector<const SpecializedInterface*>> seen(
      kThreads,
      std::vector<const SpecializedInterface*>(sizes.size(), nullptr));
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kItersPerThread; ++i) {
        const std::size_t k =
            static_cast<std::size_t>((i + t) % sizes.size());
        auto r = cache.get_or_build(proc, kProg, kVers, cfg_for(sizes[k]));
        if (!r.is_ok()) {
          ++failures;
          continue;
        }
        if (seen[t][k] == nullptr) {
          seen[t][k] = r->get();
        } else if (seen[t][k] != r->get()) {
          ++failures;  // key rebuilt: memoization broken
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(failures.load(), 0);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, static_cast<std::int64_t>(sizes.size()));
  EXPECT_EQ(stats.hits,
            static_cast<std::int64_t>(kThreads) * kItersPerThread -
                static_cast<std::int64_t>(sizes.size()));
  EXPECT_EQ(stats.evictions, 0);
  for (std::size_t k = 0; k < sizes.size(); ++k) {
    for (int t = 1; t < kThreads; ++t) {
      EXPECT_EQ(seen[t][k], seen[0][k]);
    }
  }
}

// ---- the RCU-style hot-spec slot ------------------------------------------

// After kHotPublishEpoch locked hits on one key, the cache publishes it
// through the atomic hot slot: later lookups of that key are served
// lock-free (counted in hot_hits) and still return the same instance.
TEST(SpecCacheHotSlot, PublishesAfterEpochAndServesLockFree) {
  SpecCache cache(32, /*shards=*/4);
  const auto proc = echo_array_proc();

  auto first = cache.get_or_build(proc, kProg, kVers, cfg_for(10));
  ASSERT_TRUE(first.is_ok());
  const auto* instance = first->get();

  // Epoch-1 locked hits leave the slot unpublished...
  for (std::int64_t i = 0; i < SpecCache::kHotPublishEpoch - 1; ++i) {
    auto r = cache.get_or_build(proc, kProg, kVers, cfg_for(10));
    ASSERT_TRUE(r.is_ok());
    EXPECT_EQ(r->get(), instance);
  }
  EXPECT_EQ(cache.stats().hot_hits, 0);

  // ...the epoch-boundary hit publishes...
  ASSERT_TRUE(cache.get_or_build(proc, kProg, kVers, cfg_for(10)).is_ok());

  // ...and every later hit of this key is lock-free.
  constexpr int kHotRounds = 10;
  for (int i = 0; i < kHotRounds; ++i) {
    auto r = cache.get_or_build(proc, kProg, kVers, cfg_for(10));
    ASSERT_TRUE(r.is_ok());
    EXPECT_EQ(r->get(), instance);  // same shared instance, slot or shard
  }
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hot_hits, kHotRounds);
  EXPECT_EQ(stats.misses, 1);
  // hits includes the hot-slot hits.
  EXPECT_EQ(stats.hits, SpecCache::kHotPublishEpoch + kHotRounds);

  // A different key never matches the slot: correct instance, no
  // hot-hit accounting drift.
  auto other = cache.get_or_build(proc, kProg, kVers, cfg_for(20));
  ASSERT_TRUE(other.is_ok());
  EXPECT_NE(other->get(), instance);
  EXPECT_EQ(cache.stats().hot_hits, kHotRounds);
}

// The slot holds a SpecHandle, so the published interface survives LRU
// eviction exactly like a caller-held handle: the hot key keeps being
// served (without a rebuild) even after distinct-key flooding pushed it
// out of every shard.
TEST(SpecCacheHotSlot, HotKeySurvivesEvictionWithoutRebuild) {
  SpecCache cache(4, /*shards=*/1);
  const auto proc = echo_array_proc();

  auto hot = cache.get_or_build(proc, kProg, kVers, cfg_for(10));
  ASSERT_TRUE(hot.is_ok());
  const auto* instance = hot->get();
  for (std::int64_t i = 0; i < SpecCache::kHotPublishEpoch; ++i) {
    ASSERT_TRUE(cache.get_or_build(proc, kProg, kVers, cfg_for(10)).is_ok());
  }

  // Flood with 8 distinct keys: capacity 4, so key 10 is long evicted.
  for (std::uint32_t n = 100; n < 108; ++n) {
    ASSERT_TRUE(cache.get_or_build(proc, kProg, kVers, cfg_for(n)).is_ok());
  }
  EXPECT_LE(cache.size(), 4u);
  const auto before = cache.stats();

  auto again = cache.get_or_build(proc, kProg, kVers, cfg_for(10));
  ASSERT_TRUE(again.is_ok());
  EXPECT_EQ(again->get(), instance);  // not rebuilt, not resurrected
  const auto after = cache.stats();
  EXPECT_EQ(after.misses, before.misses);  // no pipeline run
  EXPECT_EQ(after.hot_hits, before.hot_hits + 1);
}

// Every kHotRefreshPeriod-th slot read takes the locked path to
// re-touch the hot key's LRU entry: the hottest key must not decay
// into the shard's eviction victim just because its hits bypass the
// shard, and after a slot displacement it must still be served from
// the shard without a rebuild.
TEST(SpecCacheHotSlot, RefreshKeepsHotKeyWarmInShardLru) {
  SpecCache cache(4, /*shards=*/1);
  const auto proc = echo_array_proc();

  auto a = cache.get_or_build(proc, kProg, kVers, cfg_for(10));  // miss 1
  ASSERT_TRUE(a.is_ok());
  const auto* instance = a->get();
  for (std::int64_t i = 0; i < SpecCache::kHotPublishEpoch; ++i) {
    ASSERT_TRUE(cache.get_or_build(proc, kProg, kVers, cfg_for(10)).is_ok());
  }
  // Slot published; burn kHotRefreshPeriod - 1 hot reads...
  for (std::int64_t i = 0; i < SpecCache::kHotRefreshPeriod - 1; ++i) {
    ASSERT_TRUE(cache.get_or_build(proc, kProg, kVers, cfg_for(10)).is_ok());
  }
  // ...then fill the other three slots, leaving key 10 LRU-coldest.
  for (std::uint32_t n : {20u, 30u, 40u}) {  // misses 2..4
    ASSERT_TRUE(cache.get_or_build(proc, kProg, kVers, cfg_for(n)).is_ok());
  }
  // The next slot read is the refresh tick: it re-touches key 10.
  ASSERT_TRUE(cache.get_or_build(proc, kProg, kVers, cfg_for(10)).is_ok());
  // A fifth key now evicts the true LRU victim (20), NOT the hot key.
  ASSERT_TRUE(cache.get_or_build(proc, kProg, kVers,
                                 cfg_for(50)).is_ok());  // miss 5
  EXPECT_EQ(cache.stats().evictions, 1);

  // Displace the slot (key 50 earns it), then fetch the old hot key:
  // it must come from the SHARD — no rebuild — with the same instance.
  for (std::int64_t i = 0; i < SpecCache::kHotPublishEpoch; ++i) {
    ASSERT_TRUE(cache.get_or_build(proc, kProg, kVers, cfg_for(50)).is_ok());
  }
  auto again = cache.get_or_build(proc, kProg, kVers, cfg_for(10));
  ASSERT_TRUE(again.is_ok());
  EXPECT_EQ(again->get(), instance);
  EXPECT_EQ(cache.stats().misses, 5);  // no rebuild of the hot key
}

// A refresh tick that lands AFTER the hot key was evicted must
// reinsert the published handle, not re-run the pipeline: the shard
// miss path consults the slot the lookup fell through from.
TEST(SpecCacheHotSlot, RefreshTickReinsertsEvictedHotKeyWithoutRebuild) {
  SpecCache cache(4, /*shards=*/1);
  const auto proc = echo_array_proc();

  auto a = cache.get_or_build(proc, kProg, kVers, cfg_for(10));  // miss 1
  ASSERT_TRUE(a.is_ok());
  const auto* instance = a->get();
  for (std::int64_t i = 0; i < SpecCache::kHotPublishEpoch; ++i) {
    ASSERT_TRUE(cache.get_or_build(proc, kProg, kVers, cfg_for(10)).is_ok());
  }
  // Burn all pre-refresh slot reads while the key is still cached...
  for (std::int64_t i = 0; i < SpecCache::kHotRefreshPeriod - 1; ++i) {
    ASSERT_TRUE(cache.get_or_build(proc, kProg, kVers, cfg_for(10)).is_ok());
  }
  // ...then evict it: five fresh keys through a 4-slot shard push the
  // untouched hot key out first.
  for (std::uint32_t n : {20u, 30u, 40u, 50u, 60u}) {  // misses 2..6
    ASSERT_TRUE(cache.get_or_build(proc, kProg, kVers, cfg_for(n)).is_ok());
  }
  const auto before = cache.stats();
  ASSERT_EQ(before.misses, 6);

  // The refresh tick finds the shard entry gone and reinserts the
  // published handle: a hit, not a rebuild.
  auto again = cache.get_or_build(proc, kProg, kVers, cfg_for(10));
  ASSERT_TRUE(again.is_ok());
  EXPECT_EQ(again->get(), instance);
  const auto after = cache.stats();
  EXPECT_EQ(after.misses, 6);             // no pipeline run
  EXPECT_EQ(after.hits, before.hits + 1);  // counted as a shard hit
  EXPECT_EQ(cache.size(), 4u);             // reinserted under the cap
}

// When traffic shifts, the new hot key takes the slot over (its locked
// hits accumulate while the old key's don't), and the displaced key is
// still served correctly through its shard.
TEST(SpecCacheHotSlot, WorkloadShiftHandsTheSlotOver) {
  SpecCache cache(32, /*shards=*/4);
  const auto proc = echo_array_proc();

  ASSERT_TRUE(cache.get_or_build(proc, kProg, kVers, cfg_for(10)).is_ok());
  for (std::int64_t i = 0; i < SpecCache::kHotPublishEpoch; ++i) {
    ASSERT_TRUE(cache.get_or_build(proc, kProg, kVers, cfg_for(10)).is_ok());
  }
  const auto hot10 = cache.stats().hot_hits;

  // Key 20 becomes the traffic: it accumulates locked hits (key 10
  // holds the slot, so 20's lookups go through its shard) until it
  // publishes itself at its own epoch boundary.
  ASSERT_TRUE(cache.get_or_build(proc, kProg, kVers, cfg_for(20)).is_ok());
  for (std::int64_t i = 0; i < SpecCache::kHotPublishEpoch; ++i) {
    ASSERT_TRUE(cache.get_or_build(proc, kProg, kVers, cfg_for(20)).is_ok());
  }
  // Now 20 owns the slot...
  const auto before = cache.stats();
  auto r20 = cache.get_or_build(proc, kProg, kVers, cfg_for(20));
  ASSERT_TRUE(r20.is_ok());
  EXPECT_EQ(cache.stats().hot_hits, before.hot_hits + 1);
  // ...and 10, displaced, is still served correctly from its shard.
  auto r10 = cache.get_or_build(proc, kProg, kVers, cfg_for(10));
  ASSERT_TRUE(r10.is_ok());
  EXPECT_NE(r10->get(), r20->get());
  EXPECT_EQ(cache.stats().hot_hits, before.hot_hits + 1);  // not via slot
  EXPECT_GE(cache.stats().hot_hits, hot10);
  EXPECT_EQ(cache.stats().misses, 2);
}

// 8 threads hammer a skewed workload (one dominant key + churn keys)
// while the slot publishes and republishes underneath them: every
// lookup must still return the one shared instance per key.  This is
// the test the TSan CI job pins the publication protocol with.
TEST(SpecCacheHotSlot, ConcurrentSkewedTrafficStaysConsistent) {
  constexpr int kThreads = 8;
  constexpr int kItersPerThread = 400;
  SpecCache cache(64, /*shards=*/4);
  const auto proc = echo_array_proc();

  std::atomic<int> failures{0};
  std::vector<const SpecializedInterface*> dominant(kThreads, nullptr);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kItersPerThread; ++i) {
        // 7 of 8 lookups hit the dominant key; the rest churn.
        const std::uint32_t n =
            (i % 8 != 0) ? 10u : 30u + static_cast<std::uint32_t>((i + t) % 4);
        auto r = cache.get_or_build(proc, kProg, kVers, cfg_for(n));
        if (!r.is_ok()) {
          ++failures;
          continue;
        }
        if (n == 10) {
          if (dominant[static_cast<std::size_t>(t)] == nullptr) {
            dominant[static_cast<std::size_t>(t)] = r->get();
          } else if (dominant[static_cast<std::size_t>(t)] != r->get()) {
            ++failures;  // instance changed: memoization broken
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(failures.load(), 0);
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(dominant[static_cast<std::size_t>(t)], dominant[0]);
  }
  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 5);  // key 10 + churn keys 30..33
  EXPECT_GT(stats.hot_hits, 0);
  EXPECT_EQ(stats.hits,
            static_cast<std::int64_t>(kThreads) * kItersPerThread - 5);
}

// ---- the cache under the concurrent server runtime -----------------------

TEST(ServerRuntime, CachedServiceOverLoopbackUdp) {
  SpecCache cache(32);
  const auto proc = echo_array_proc();

  rpc::SvcRegistry reg;
  CachedSpecService service(
      cache, proc, kProg, kVers,
      [](std::span<const std::uint32_t> /*arg_counts*/,
         std::span<const std::uint32_t> args,
         std::span<std::uint32_t> results) {
        std::copy(args.begin(), args.end(), results.begin());
        return true;
      });
  service.install(reg);

  rpc::ServerRuntimeConfig cfg;
  cfg.workers = 4;
  rpc::ServerRuntime runtime(reg, cfg);
  ASSERT_TRUE(runtime.start().is_ok());

  // Three client threads, each hammering its own array shape.
  const std::vector<std::uint32_t> sizes = {25, 50, 100};
  constexpr int kCallsPerClient = 30;
  std::atomic<int> bad{0};
  std::vector<std::thread> clients;
  for (auto n : sizes) {
    clients.emplace_back([&, n] {
      auto iface =
          SpecializedInterface::build(echo_array_proc(), kProg, kVers,
                                      cfg_for(n));
      if (!iface.is_ok()) {
        ++bad;
        return;
      }
      net::UdpSocket sock;
      if (!sock.ok()) {
        ++bad;
        return;
      }
      SpecializedClient client(sock, runtime.udp_addr(), *iface);
      std::vector<std::uint32_t> args(n), results(n, 0);
      for (std::uint32_t i = 0; i < n; ++i) args[i] = n * 1000 + i;
      for (int round = 0; round < kCallsPerClient; ++round) {
        std::fill(results.begin(), results.end(), 0);
        Status st = client.call(args, results);
        if (!st.is_ok() || results != args) {
          ++bad;
          return;
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  runtime.stop();

  EXPECT_EQ(bad.load(), 0);
  const auto& sstats = service.stats();
  const auto cstats = cache.stats();
  // One cache build per distinct shape; everything else served from it.
  EXPECT_EQ(cstats.misses, static_cast<std::int64_t>(sizes.size()));
  EXPECT_EQ(sstats.fast_path + sstats.generic_path,
            static_cast<std::int64_t>(sizes.size()) * kCallsPerClient);
  EXPECT_GT(sstats.fast_path.load(), 0);
  EXPECT_GE(runtime.stats().udp_datagrams.load(),
            static_cast<std::int64_t>(sizes.size()) * kCallsPerClient);
  // Third-tier accounting: these shapes are all compilable, so every
  // fast-path request was served by an interface with native stubs (or
  // none was, when the JIT is gated off).
  if (pe::jit_supported_host() && pe::jit_enabled_by_env()) {
    EXPECT_EQ(cstats.jit_stubs,
              4 * static_cast<std::int64_t>(sizes.size()));
    EXPECT_EQ(sstats.jit_fast_path.load(), sstats.fast_path.load());
  } else {
    EXPECT_EQ(cstats.jit_stubs, 0);
    EXPECT_EQ(sstats.jit_fast_path.load(), 0);
  }
}

TEST(ServerRuntime, CachedServiceOverTcpStream) {
  SpecCache cache(32);
  const auto proc = echo_array_proc();

  rpc::SvcRegistry reg;
  CachedSpecService service(
      cache, proc, kProg, kVers,
      [](std::span<const std::uint32_t> /*arg_counts*/,
         std::span<const std::uint32_t> args,
         std::span<std::uint32_t> results) {
        std::copy(args.begin(), args.end(), results.begin());
        return true;
      });
  service.install(reg);

  rpc::ServerRuntimeConfig cfg;
  cfg.workers = 2;
  rpc::ServerRuntime runtime(reg, cfg);
  ASSERT_TRUE(runtime.start().is_ok());

  const std::uint32_t n = 40;
  rpc::TcpClient client(runtime.tcp_addr(), kProg, kVers);
  ASSERT_TRUE(client.ok());
  for (int round = 0; round < 5; ++round) {
    std::vector<std::int32_t> sent(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      sent[i] = static_cast<std::int32_t>(round * 100 + i);
    }
    std::vector<std::int32_t> got;
    Status st = client.call(
        7,
        [&](xdr::XdrStream& x) {
          std::uint32_t count = n;
          if (!xdr::xdr_u_int(x, count)) return false;
          for (auto& v : sent) {
            if (!xdr::xdr_int(x, v)) return false;
          }
          return true;
        },
        [&](xdr::XdrStream& x) {
          std::uint32_t count = 0;
          if (!xdr::xdr_u_int(x, count) || count != n) return false;
          got.resize(count);
          for (auto& v : got) {
            if (!xdr::xdr_int(x, v)) return false;
          }
          return true;
        });
    ASSERT_TRUE(st.is_ok()) << st.to_string();
    ASSERT_EQ(got, sent);
  }
  runtime.stop();

  EXPECT_EQ(runtime.stats().tcp_connections.load(), 1);
  EXPECT_EQ(runtime.stats().tcp_calls.load(), 5);
  // The record stream cannot be inlined, so argument decode is generic —
  // but the cache still resolved the specialization for reply encoding.
  EXPECT_EQ(cache.stats().misses, 1);
}

}  // namespace
}  // namespace tempo::core
