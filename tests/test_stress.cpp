// Randomized soak of the multi-reactor event runtime.
//
// Mixed UDP and TCP clients hammer a 4-shard EventServerRuntime with
// random procedures, random array sizes, random truncated ("garbage")
// calls and random mid-record TCP aborts for a bounded wall-clock
// window, then the books must balance:
//
//   * XID accounting — every UDP reply's XID must be one we sent and
//     never seen before (no duplicated replies, no replies minted from
//     thin air), and the number of missing replies must be exactly the
//     number of losses the server itself accounted (queue-overload
//     drops + refused sends); nothing disappears silently;
//   * TCP calls that ran to completion must all have received their
//     correct in-order replies, with aborted connections harming
//     nobody;
//   * the runtime survives to serve a clean call afterwards.
//
// Deterministic by default: the schedule derives from TEMPO_STRESS_SEED
// (default 0xC0FFEE) and runs for TEMPO_STRESS_MS (default 2000 ms), so
// CI pins one reproducible schedule — the short deterministic-seed
// variant — while a soak box can crank the duration up.
//
// TEMPO_STRESS_KV=1 additionally enables the KV soak: a client mix of
// puts/gets/deletes against a live KvService (generic string tier)
// while one replica tails the commit log over the plan/JIT tier, with
// commit-vs-apply books balanced at soak end.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <unordered_set>
#include <vector>

#include "common/endian.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "kv/repl.h"
#include "kv/service.h"
#include "net/tcp.h"
#include "net/udp.h"
#include "rpc/event_runtime.h"
#include "rpc/rpc_msg.h"
#include "rpc/svc.h"
#include "test_rng.h"
#include "xdr/primitives.h"
#include "xdr/xdrmem.h"
#include "xdr/xdrrec.h"

namespace tempo {
namespace {

constexpr std::uint32_t kProg = 0x20000AAA;
constexpr std::uint32_t kVers = 1;
constexpr std::uint32_t kProcEchoInt = 1;
constexpr std::uint32_t kProcEchoArray = 2;
constexpr std::uint32_t kProcRead = 3;  // tiny call -> count-int reply

int stress_ms() {
  const char* e = std::getenv("TEMPO_STRESS_MS");
  const int v = e ? std::atoi(e) : 2000;
  return v > 0 ? v : 2000;
}

std::uint64_t stress_seed() {
  const char* e = std::getenv("TEMPO_STRESS_SEED");
  if (e) return std::strtoull(e, nullptr, 0);
  return 0xC0FFEEull;
}

// TCP clients pipeline up to this many requests per burst (> 1 so the
// per-connection reply ring is always under test; CI's TSan job cranks
// it to the runtime's full default depth).
int stress_tcp_depth() {
  const char* e = std::getenv("TEMPO_STRESS_TCP_DEPTH");
  const int v = e ? std::atoi(e) : 4;
  return v > 1 ? v : 2;
}

// The KV soak is opt-in: it stacks a full KvService + replica on top
// of the runtime soak, so plain tier-1 runs keep their wall-clock
// while CI's stress lanes set TEMPO_STRESS_KV=1.
bool stress_kv_enabled() {
  const char* e = std::getenv("TEMPO_STRESS_KV");
  return e != nullptr && *e != '\0' && *e != '0';
}

// TEMPO_STRESS_BACKEND={auto,epoll,poll,uring} pins the reactor backend
// for every soak runtime; CI's sanitizer lanes run the suite once per
// event path.  "uring" on a kernel without support falls back to the
// auto choice (the runtime downgrades; the soak still runs).
rpc::EventBackend stress_backend() {
  const char* e = std::getenv("TEMPO_STRESS_BACKEND");
  if (e == nullptr) return rpc::EventBackend::kAuto;
  if (std::strcmp(e, "epoll") == 0) return rpc::EventBackend::kEpoll;
  if (std::strcmp(e, "poll") == 0) return rpc::EventBackend::kPoll;
  if (std::strcmp(e, "uring") == 0 &&
      rpc::EventServerRuntime::uring_supported()) {
    return rpc::EventBackend::kUring;
  }
  return rpc::EventBackend::kAuto;
}

// One RNG instance per client thread: deterministic given the seed,
// uncorrelated across clients.
using test::Rng;

void install_procs(rpc::SvcRegistry& reg) {
  reg.register_proc(kProg, kVers, kProcEchoInt,
                    [](xdr::XdrStream& in, xdr::XdrStream& out) {
                      std::int32_t v = 0;
                      if (!xdr::xdr_int(in, v)) return false;
                      return xdr::xdr_int(out, v);
                    });
  reg.register_proc(kProg, kVers, kProcEchoArray,
                    [](xdr::XdrStream& in, xdr::XdrStream& out) {
                      std::uint32_t count = 0;
                      if (!xdr::xdr_u_int(in, count) || count > 4096) {
                        return false;
                      }
                      if (!xdr::xdr_u_int(out, count)) return false;
                      for (std::uint32_t i = 0; i < count; ++i) {
                        std::int32_t v = 0;
                        if (!xdr::xdr_int(in, v) || !xdr::xdr_int(out, v)) {
                          return false;
                        }
                      }
                      return true;
                    });
  reg.register_proc(kProg, kVers, kProcRead,
                    [](xdr::XdrStream& in, xdr::XdrStream& out) {
                      std::uint32_t count = 0;
                      if (!xdr::xdr_u_int(in, count) || count > 4096) {
                        return false;
                      }
                      if (!xdr::xdr_u_int(out, count)) return false;
                      for (std::uint32_t i = 0; i < count; ++i) {
                        std::int32_t v = static_cast<std::int32_t>(i ^ count);
                        if (!xdr::xdr_int(out, v)) return false;
                      }
                      return true;
                    });
}

// Encodes one random call (possibly truncated into a GARBAGE_ARGS case
// — the server still replies, with an error status, so it stays in the
// XID books).  Returns the encoded length.
std::size_t encode_random_call(Rng& rng, std::uint32_t xid, Bytes& buf) {
  const std::uint32_t pick = rng.below(3);
  const std::uint32_t proc =
      pick == 0 ? kProcEchoInt : (pick == 1 ? kProcEchoArray : kProcRead);
  xdr::XdrMem x(MutableByteSpan(buf.data(), buf.size()), xdr::XdrOp::kEncode);
  rpc::CallHeader hdr;
  hdr.xid = xid;
  hdr.prog = kProg;
  hdr.vers = kVers;
  hdr.proc = proc;
  EXPECT_TRUE(rpc::xdr_call_header(x, hdr));
  if (proc == kProcEchoInt) {
    std::int32_t v = static_cast<std::int32_t>(rng.next());
    EXPECT_TRUE(xdr::xdr_int(x, v));
  } else if (proc == kProcEchoArray) {
    std::uint32_t n = 1 + rng.below(300);
    EXPECT_TRUE(xdr::xdr_u_int(x, n));
    for (std::uint32_t i = 0; i < n; ++i) {
      std::int32_t v = static_cast<std::int32_t>(rng.next());
      EXPECT_TRUE(xdr::xdr_int(x, v));
    }
  } else {
    std::uint32_t n = 1 + rng.below(300);
    EXPECT_TRUE(xdr::xdr_u_int(x, n));
  }
  std::size_t len = x.getpos();
  // ~5% of calls arrive truncated mid-arguments: the handler fails to
  // decode and the server answers GARBAGE_ARGS — still a reply, still
  // carrying our XID, so accounting is unaffected.
  if (len > 44 && rng.chance(0.05)) len -= 4;
  return len;
}

TEST(StressSoak, MixedRandomTrafficBalancesTheBooks) {
  rpc::SvcRegistry reg;
  install_procs(reg);

  rpc::EventServerRuntimeConfig cfg;
  cfg.workers = 4;
  cfg.reactors = 4;
  cfg.backend = stress_backend();
  // Trace EVERY request through the soak: the stage-attribution
  // arithmetic must hold under full concurrency, aborts and overload,
  // not just on the happy path.
  cfg.trace_sample = 1;
  rpc::EventServerRuntime runtime(reg, cfg);
  ASSERT_TRUE(runtime.start().is_ok());

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(stress_ms());
  const std::uint64_t seed = stress_seed();

  // ---- UDP clients: windowed pipelining with strict XID books -------
  constexpr int kUdpClients = 4;
  std::atomic<std::int64_t> udp_sent{0}, udp_received{0};
  std::atomic<int> duplicate_replies{0}, foreign_replies{0};
  std::atomic<int> client_errors{0};

  std::vector<std::thread> threads;
  for (int c = 0; c < kUdpClients; ++c) {
    threads.emplace_back([&, c] {
      Rng rng{seed + static_cast<std::uint64_t>(c) * 0x1234567ull};
      net::UdpSocket sock;
      if (!sock.ok()) {
        ++client_errors;
        return;
      }
      const net::Addr server = runtime.udp_addr();
      // XIDs are globally unique across clients by construction.
      std::uint32_t next_xid = 0x10000000u * static_cast<std::uint32_t>(c + 1);
      std::unordered_set<std::uint32_t> sent_xids, received_xids;
      Bytes send_buf(8192), recv_buf(65000);
      std::int64_t my_sent = 0, my_received = 0;

      auto drain = [&](int timeout_ms) {
        for (;;) {
          auto r = sock.recv_from(
              nullptr, MutableByteSpan(recv_buf.data(), recv_buf.size()),
              timeout_ms);
          if (!r.is_ok()) return;
          if (*r < 4) continue;
          const std::uint32_t xid = load_be32(recv_buf.data());
          if (sent_xids.count(xid) == 0) {
            ++foreign_replies;  // a reply we never asked for
          } else if (!received_xids.insert(xid).second) {
            ++duplicate_replies;  // the same reply twice
          } else {
            ++my_received;
          }
        }
      };

      // Self-clocking: cap the requests outstanding per client so that
      // even on a starved box (TSan CI) unserved datagrams can never
      // pile past a socket's SO_RCVBUF — a kernel-level drop there
      // would be a loss no server counter accounts for, and the books
      // below must stay exact.  Sized for the worst case: the reuseport
      // flow hash may land ALL clients on one shard socket, so
      // kUdpClients * kMaxOutstanding datagrams (~2-4 KB skb truesize
      // each) must fit one default ~212 KB rcvbuf.
      constexpr std::int64_t kMaxOutstanding = 8;
      while (std::chrono::steady_clock::now() < deadline) {
        const int window = 1 + static_cast<int>(rng.below(8));
        for (int i = 0; i < window; ++i) {
          const std::uint32_t xid = next_xid++;
          const std::size_t len = encode_random_call(rng, xid, send_buf);
          if (!sock.send_to(server, ByteSpan(send_buf.data(), len)).is_ok()) {
            ++client_errors;
            break;
          }
          sent_xids.insert(xid);
          ++my_sent;
        }
        // Collect what has arrived; replies may trickle across windows.
        drain(20);
        while (my_sent - my_received > kMaxOutstanding &&
               std::chrono::steady_clock::now() < deadline) {
          drain(50);
        }
      }
      // Final quiet-period drain so in-flight replies get counted.
      for (int i = 0; i < 10 && my_received < my_sent; ++i) drain(100);
      udp_sent += my_sent;
      udp_received += my_received;
    });
  }

  // ---- TCP clients: PIPELINED random calls, random mid-record aborts --
  //
  // Each burst writes up to stress_tcp_depth() complete records before
  // reading a single reply — the shape the per-connection reply ring
  // reorders under the hood (requests execute concurrently across the
  // shard workers).  The books are strict: reply i of a fully-written
  // burst must carry EXACTLY call i's XID and echo call i's array (no
  // reordering, no leaks, no replies minted from thin air), and every
  // fully-written call must get its reply.  ~10% of calls still abort
  // mid-record, killing the burst's connection — completed-but-unread
  // predecessors in that burst are intentionally not counted.
  constexpr int kTcpClients = 2;
  const int tcp_depth = stress_tcp_depth();
  std::atomic<std::int64_t> tcp_completed{0}, tcp_aborts{0};
  std::atomic<int> tcp_order_violations{0};
  for (int c = 0; c < kTcpClients; ++c) {
    threads.emplace_back([&, c] {
      Rng rng{seed + 0xABCDEFull + static_cast<std::uint64_t>(c) * 0x777ull};
      std::uint32_t next_xid = 0x60000000u + 0x01000000u *
                                                static_cast<std::uint32_t>(c);
      Bytes frame(16384), reply(16384), wire;

      auto read_exact = [&](net::TcpConn& conn, std::uint8_t* dst,
                            std::size_t n) {
        std::size_t off = 0;
        const auto give_up = std::chrono::steady_clock::now() +
                             std::chrono::seconds(5);
        while (off < n && std::chrono::steady_clock::now() < give_up) {
          auto r = conn.read_some(MutableByteSpan(dst + off, n - off), 50);
          if (!r.is_ok()) {
            if (r.status().code() != StatusCode::kTimeout) return false;
            continue;
          }
          if (*r == 0) return false;
          off += *r;
        }
        return off == n;
      };

      struct Sent {
        std::uint32_t xid = 0;
        std::uint32_t n = 0;
      };
      std::vector<Sent> burst;

      while (std::chrono::steady_clock::now() < deadline) {
        auto conn = net::TcpConn::connect(runtime.tcp_addr());
        if (!conn) {
          ++client_errors;
          return;
        }
        const int bursts = 1 + static_cast<int>(rng.below(4));
        bool conn_dead = false;
        for (int b = 0; b < bursts && !conn_dead; ++b) {
          if (std::chrono::steady_clock::now() >= deadline) break;
          const int calls =
              1 + static_cast<int>(rng.below(
                      static_cast<std::uint32_t>(tcp_depth)));
          burst.clear();
          wire.clear();
          for (int i = 0; i < calls && !conn_dead; ++i) {
            const std::uint32_t xid = next_xid++;
            xdr::XdrMem x(MutableByteSpan(frame.data() + 4, frame.size() - 4),
                          xdr::XdrOp::kEncode);
            rpc::CallHeader hdr;
            hdr.xid = xid;
            hdr.prog = kProg;
            hdr.vers = kVers;
            hdr.proc = kProcEchoArray;
            const std::uint32_t n = 1 + rng.below(400);
            std::uint32_t count = n;
            bool ok = rpc::xdr_call_header(x, hdr) && xdr::xdr_u_int(x, count);
            for (std::uint32_t j = 0; ok && j < n; ++j) {
              std::int32_t v = static_cast<std::int32_t>(j * 2654435761u);
              ok = xdr::xdr_int(x, v);
            }
            if (!ok) {
              ++client_errors;
              conn_dead = true;
              break;
            }
            const std::uint32_t len = static_cast<std::uint32_t>(x.getpos());
            store_be32(frame.data(), xdr::XdrRec::kLastFragFlag | len);
            // ~10% of calls abort mid-record: ship the burst so far
            // plus a prefix of this record, hang up.  Predecessors in
            // the burst reached the server complete and execute there;
            // their replies die with the connection — harming nobody.
            if (rng.chance(0.10)) {
              const std::size_t cut = 1 + rng.below(len);
              wire.insert(wire.end(), frame.begin(),
                          frame.begin() + static_cast<std::ptrdiff_t>(cut));
              (void)!conn->write_all(ByteSpan(wire.data(), wire.size()))
                  .is_ok();
              ++tcp_aborts;
              conn_dead = true;
              break;
            }
            wire.insert(wire.end(), frame.begin(),
                        frame.begin() +
                            static_cast<std::ptrdiff_t>(4 + len));
            burst.push_back(Sent{xid, n});
          }
          if (conn_dead) break;
          if (!conn->write_all(ByteSpan(wire.data(), wire.size())).is_ok()) {
            break;  // server may have reset a previous abort; reconnect
          }
          // Drain the whole burst: replies must land 1:1, in exactly
          // the order the calls went out.
          for (std::size_t i = 0; i < burst.size(); ++i) {
            std::uint8_t rhdr[4];
            if (!read_exact(*conn, rhdr, 4)) {
              ++client_errors;  // a fully-written call must get a reply
              conn_dead = true;
              break;
            }
            const std::uint32_t rlen =
                load_be32(rhdr) & ~xdr::XdrRec::kLastFragFlag;
            if (rlen > reply.size()) reply.resize(rlen);
            if (!read_exact(*conn, reply.data(), rlen)) {
              ++client_errors;
              conn_dead = true;
              break;
            }
            const std::uint32_t n = burst[i].n;
            if (load_be32(reply.data()) != burst[i].xid) {
              ++tcp_order_violations;  // wrong position in the stream
              conn_dead = true;
              break;
            }
            if (rlen < 4u * n + 8u ||
                load_be32(reply.data() + rlen - 4 * n - 4) != n) {
              ++client_errors;  // right XID, wrong payload
              conn_dead = true;
              break;
            }
            ++tcp_completed;
          }
        }
        conn->close();
      }
    });
  }

  for (auto& t : threads) t.join();

  // ---- the books ----------------------------------------------------
  EXPECT_EQ(client_errors.load(), 0);
  EXPECT_EQ(duplicate_replies.load(), 0);
  EXPECT_EQ(foreign_replies.load(), 0);
  EXPECT_EQ(tcp_order_violations.load(), 0)
      << "a pipelined reply overtook an earlier call on the wire";
  EXPECT_GT(udp_sent.load(), 0);
  EXPECT_GT(tcp_completed.load(), 0);

  // Every request either got its one reply or was lost somewhere the
  // SERVER accounted: queue-overload drops or twice-refused sends.  (A
  // reply datagram cannot vanish on loopback without one of those
  // counters moving.)
  const std::int64_t lost = udp_sent.load() - udp_received.load();
  const std::int64_t accounted =
      runtime.stats().overload_drops.load() +
      runtime.stats().reply_send_failures.load();
  EXPECT_GE(lost, 0);
  EXPECT_LE(lost, accounted)
      << "replies vanished without server-side accounting: sent="
      << udp_sent.load() << " received=" << udp_received.load()
      << " overload_drops=" << runtime.stats().overload_drops.load()
      << " reply_send_failures="
      << runtime.stats().reply_send_failures.load();

  // ---- the metrics books --------------------------------------------
  //
  // The latency histograms must agree with the XID accounting above:
  // the server records one e2e sample per reply it actually put on the
  // wire, so the sample count is bracketed by what the clients
  // received (a reply cannot arrive unrecorded... modulo the recording
  // happening just after the send — hence the bounded catch-up wait)
  // and what they sent.
  if (common::metrics_enabled()) {
    const auto catch_up =
        std::chrono::steady_clock::now() + std::chrono::seconds(2);
    while (static_cast<std::int64_t>(
               runtime.latency_snapshot().udp_e2e.total()) <
               udp_received.load() &&
           std::chrono::steady_clock::now() < catch_up) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    const rpc::RuntimeLatencySnapshot lat = runtime.latency_snapshot();
    EXPECT_GE(static_cast<std::int64_t>(lat.udp_e2e.total()),
              udp_received.load());
    EXPECT_LE(static_cast<std::int64_t>(lat.udp_e2e.total()),
              udp_sent.load());
    // TCP e2e is recorded when the ordered ring emits the reply, which
    // precedes the client reading it: every completed call is counted.
    EXPECT_GE(static_cast<std::int64_t>(lat.tcp_e2e.total()),
              tcp_completed.load());
    // Queue-wait and handle samples land once per executed job (UDP and
    // TCP combined), before the reply is sent.  Jobs from aborted TCP
    // bursts may still be mid-handler at snapshot time, so the pop-side
    // count can lead the handle-side count, never trail it.
    EXPECT_GE(static_cast<std::int64_t>(lat.handle.total()),
              udp_received.load() + tcp_completed.load());
    EXPECT_GE(lat.queue.total(), lat.handle.total());

    // Every request was traced (trace_sample=1): stage attribution
    // must never go negative and never exceed the record's total.
    const std::vector<common::TraceRecord> traces = runtime.trace_snapshot();
    EXPECT_FALSE(traces.empty());
    for (const auto& t : traces) {
      std::int64_t stage_sum = 0;
      for (std::size_t s = 0; s < common::kTraceStageCount; ++s) {
        EXPECT_GE(t.stage_ns[s], 0)
            << "negative stage " << s << " in xid " << t.xid;
        stage_sum += t.stage_ns[s];
      }
      EXPECT_GE(t.total_ns, 0) << "negative total in xid " << t.xid;
      EXPECT_LE(stage_sum, t.total_ns) << "stages overrun total in xid "
                                       << t.xid;
      EXPECT_LT(t.shard, cfg.reactors);
    }
  }

  // The runtime survives the soak and still serves.
  {
    net::UdpSocket sock;
    ASSERT_TRUE(sock.ok());
    Bytes msg(128);
    xdr::XdrMem x(MutableByteSpan(msg.data(), msg.size()),
                  xdr::XdrOp::kEncode);
    rpc::CallHeader hdr;
    hdr.xid = 0xFEEDF00Du;
    hdr.prog = kProg;
    hdr.vers = kVers;
    hdr.proc = kProcEchoInt;
    std::int32_t v = 31337;
    ASSERT_TRUE(rpc::xdr_call_header(x, hdr));
    ASSERT_TRUE(xdr::xdr_int(x, v));
    ASSERT_TRUE(sock.send_to(runtime.udp_addr(),
                             ByteSpan(msg.data(), x.getpos()))
                    .is_ok());
    Bytes reply(256);
    auto r = sock.recv_from(nullptr,
                            MutableByteSpan(reply.data(), reply.size()), 2000);
    ASSERT_TRUE(r.is_ok());
    EXPECT_EQ(load_be32(reply.data()), 0xFEEDF00Du);
  }

  const auto arena = runtime.arena_stats();
  std::printf(
      "soak: %lld UDP sent, %lld received (%lld lost, %lld accounted), "
      "%lld TCP calls @depth %d, %lld aborts, %lld conns, %lld resets, "
      "%lld steals, arena %lld hits / %lld misses\n",
      static_cast<long long>(udp_sent.load()),
      static_cast<long long>(udp_received.load()),
      static_cast<long long>(lost), static_cast<long long>(accounted),
      static_cast<long long>(tcp_completed.load()), tcp_depth,
      static_cast<long long>(tcp_aborts.load()),
      static_cast<long long>(runtime.stats().tcp_connections.load()),
      static_cast<long long>(runtime.stats().conn_resets.load()),
      static_cast<long long>(runtime.stats().work_steals.load()),
      static_cast<long long>(arena.hits), static_cast<long long>(arena.misses));
  runtime.stop();
}

// ---- KV soak (TEMPO_STRESS_KV=1) ------------------------------------
//
// A client mix of puts/gets/deletes hammers a live KvService through
// the string-heavy generic RPC tier while ONE replica tails the commit
// log over the fixed-shape plan/JIT tier, for the same seeded,
// bounded wall-clock window as the runtime soak.  At soak end the
// books must balance:
//
//   * every primary commit (WAL sequence) is applied on the replica
//     EXACTLY once: per-shard last_applied equality, and the replica's
//     applied count equals the summed primary sequences;
//   * the store-level double-apply counter stays 0 (the pinned
//     replication-safety invariant, kv.repl_duplicate_applies);
//   * the replica's live state is byte-identical to the primary's
//     (dump + digest equality);
//   * every RPC the clients issued succeeded, and the primary
//     committed at least one sequence per acknowledged mutation.
TEST(StressSoak, KvClientMixBalancesCommitAndReplicaBooks) {
  if (!stress_kv_enabled()) {
    GTEST_SKIP() << "set TEMPO_STRESS_KV=1 to run the KV soak";
  }

  kv::KvService::Options kv_opts;
  kv_opts.shards = 2;
  auto primary = kv::KvService::open(kv_opts);
  ASSERT_TRUE(primary.is_ok());

  rpc::SvcRegistry primary_reg;
  (*primary)->install(primary_reg);
  rpc::EventServerRuntimeConfig primary_cfg;
  primary_cfg.workers = 2;
  primary_cfg.enable_tcp = false;
  primary_cfg.backend = stress_backend();
  rpc::EventServerRuntime primary_rt(primary_reg, primary_cfg);
  ASSERT_TRUE(primary_rt.start().is_ok());

  rpc::SvcRegistry replica_reg;
  kv::KvReplicaSink sink(kv_opts.shards);
  sink.install(replica_reg);
  rpc::EventServerRuntimeConfig replica_cfg;
  replica_cfg.workers = 2;
  replica_cfg.enable_tcp = false;
  replica_cfg.backend = stress_backend();
  rpc::EventServerRuntime replica_rt(replica_reg, replica_cfg);
  ASSERT_TRUE(replica_rt.start().is_ok());

  kv::KvReplicator repl(**primary, replica_rt.udp_addr());
  ASSERT_TRUE(repl.start().is_ok());

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(stress_ms());
  const std::uint64_t seed = stress_seed();

  constexpr int kKvClients = 3;
  std::atomic<std::int64_t> kv_mutations{0}, kv_reads{0}, kv_hits{0};
  std::atomic<int> kv_errors{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kKvClients; ++c) {
    threads.emplace_back([&, c] {
      Rng rng{seed + 0x4B56ull + static_cast<std::uint64_t>(c) * 0x9E37ull};
      rpc::CallOptions copts;
      copts.retry_timeout_ms = 100;
      copts.total_timeout_ms = 5000;
      kv::KvClient client(primary_rt.udp_addr(), copts);
      if (!client.ok()) {
        ++kv_errors;
        return;
      }
      // Keys are partitioned per client ("cN-…") so deletes and puts
      // from different threads never interleave on one key; the value
      // mix spans the small and mid ship size classes.
      while (std::chrono::steady_clock::now() < deadline) {
        const std::string key = "c" + std::to_string(c) + "-key-" +
                                std::to_string(rng.below(64));
        const std::uint32_t pick = rng.below(10);
        if (pick < 6) {
          std::string value;
          if (rng.chance(0.2)) {
            value.assign(500 + rng.below(1500), 'x');
          } else {
            value = "v" + std::to_string(rng.next() % 100000);
          }
          if (client.put(key, value).is_ok()) {
            ++kv_mutations;
          } else {
            ++kv_errors;
          }
        } else if (pick < 8) {
          if (client.del(key).is_ok()) {
            ++kv_mutations;
          } else {
            ++kv_errors;
          }
        } else {
          auto got = client.get(key);
          if (got.is_ok()) {
            ++kv_reads;
            if (got->has_value()) ++kv_hits;
          } else {
            ++kv_errors;
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  // Drain the ship stream, then settle the books.
  ASSERT_TRUE(repl.wait_caught_up(60000)) << "replica lag " << repl.lag();
  repl.stop();

  EXPECT_EQ(kv_errors.load(), 0);
  EXPECT_GT(kv_mutations.load(), 0);
  EXPECT_GT(kv_reads.load(), 0);

  std::int64_t primary_commits = 0;
  for (std::uint32_t s = 0; s < (*primary)->shard_count(); ++s) {
    EXPECT_EQ(sink.last_applied(s), (*primary)->store(s).last_applied())
        << "shard " << s;
    EXPECT_EQ(sink.store(s).dump(), (*primary)->store(s).dump())
        << "shard " << s;
    primary_commits +=
        static_cast<std::int64_t>((*primary)->store(s).last_applied());
  }
  // Every acknowledged mutation committed a sequence (retries may add
  // more, never fewer), and the replica applied each exactly once.
  EXPECT_GE(primary_commits, kv_mutations.load());
  EXPECT_EQ(sink.stats().applied.load(), primary_commits);
  EXPECT_EQ(sink.duplicate_applies(), 0);
  EXPECT_EQ(sink.digest(), (*primary)->digest());
  if (common::metrics_enabled()) {
    auto snap = common::metrics().snapshot();
    EXPECT_EQ(snap.counters["kv.repl_duplicate_applies"], 0);
  }

  std::printf(
      "kv soak: %lld mutations, %lld reads (%lld hits), %lld commits, "
      "%lld replica applies, %lld duplicate skips, %lld ship calls\n",
      static_cast<long long>(kv_mutations.load()),
      static_cast<long long>(kv_reads.load()),
      static_cast<long long>(kv_hits.load()),
      static_cast<long long>(primary_commits),
      static_cast<long long>(sink.stats().applied.load()),
      static_cast<long long>(sink.stats().duplicate_skips.load()),
      static_cast<long long>(repl.stats().ship_calls.load()));

  primary_rt.stop();
  replica_rt.stop();
}

}  // namespace
}  // namespace tempo
