// EventServerRuntime — the reactor-based successor of ServerRuntime.
//
// ServerRuntime (svc.h) burns one blocking thread per listener and
// parks a whole worker on each TCP connection, so a peer that trickles
// bytes pins a worker for its connection's lifetime.  This runtime puts
// every socket behind net::Reactor shards instead:
//
//   * N reactor shards (cfg.reactors), each with its OWN event loop
//     thread, its own SO_REUSEPORT-bound UDP socket (the kernel
//     disperses inbound datagrams across the group by flow hash) and
//     its own partition of the accepted TCP connections — once one
//     event loop saturates, the I/O plane scales out instead of
//     becoming the throughput ceiling.  Where SO_REUSEPORT is
//     unavailable the runtime falls back to a single receiving socket
//     on shard 0 (TCP still shards);
//   * every UDP socket is non-blocking and drained in recvmmsg batches —
//     one syscall per burst, not per datagram — and replies flush back
//     out through per-worker, per-shard accumulators and sendmmsg
//     (UdpSocket::send_many) on the shard that received the request, so
//     a burst pairs one syscall per batch in BOTH directions;
//   * the TCP listener lives on shard 0; an accepted connection is
//     handed round-robin to its owning shard by posting the socket to
//     that shard's reactor, which wraps and owns it from then on.  Each
//     connection carries its own record-reassembly buffer and
//     pending-write buffer on its owning shard — a slow peer therefore
//     delays nobody but itself;
//   * workers (one shared pool across all shards) dispatch through
//     SvcRegistry::handle_request — decoding each request IN PLACE from
//     the receive buffer and encoding the reply into a caller-owned
//     buffer, no scratch memset/memcpy — and post framed TCP replies
//     back to the connection's owning shard, which writes them without
//     ever blocking (leftover bytes wait for writability).
//
// Because a TCP request reaches the worker as one contiguous record,
// argument decode goes through XdrMem — XDR_INLINE succeeds and the
// residual-plan fast path engages on TCP too, which the xdrrec stream
// of the threaded runtime could never offer.
//
// Ownership (see src/net/README.md for the full model): each shard's
// reactor thread exclusively owns that shard's connection state;
// workers only ever own a copy of a request's bytes plus the (shard,
// conn_id) pair naming its origin; handoff back is by that shard's
// Reactor::post().  Stats are process-wide atomics every shard adds
// into, so stats() aggregates across shards by construction.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <variant>
#include <vector>

#include "common/status.h"
#include "net/reactor.h"
#include "net/tcp.h"
#include "net/udp.h"
#include "rpc/svc.h"

namespace tempo::rpc {

struct EventServerRuntimeConfig {
  int workers = 4;
  // Reactor shards.  Each shard runs its own event loop thread with its
  // own SO_REUSEPORT UDP socket and its own slice of the TCP
  // connections; 1 keeps the single-loop behaviour of PR 2/3.
  int reactors = 1;
  std::uint16_t udp_port = 0;  // 0 = ephemeral
  std::uint16_t tcp_port = 0;
  bool enable_udp = true;
  bool enable_tcp = true;
  std::size_t queue_capacity = 1024;
  // Datagrams pulled per recvmmsg syscall.
  int udp_batch = 32;
  // Per-connection caps; a peer exceeding either is reset.
  std::size_t max_record_bytes = 1u << 20;
  std::size_t max_write_buffer = 4u << 20;
  // Backpressure: once this many complete records queue on one
  // connection, the reactor stops reading it (TCP flow control pushes
  // back on the peer) until dispatch catches up.
  std::size_t max_pipelined_records = 64;
  // Test hook: exercise the portable poll(2) backend on Linux too.
  bool force_poll_backend = false;
  // stop() waits this long for queued work to finish before tearing
  // down the pool.
  int drain_timeout_ms = 2000;
};

struct EventServerRuntimeStats {
  std::atomic<std::int64_t> udp_datagrams{0};
  std::atomic<std::int64_t> udp_batches{0};  // recv_many calls that got >0
  std::atomic<std::int64_t> udp_reply_batches{0};  // send_many flushes
  // Replies the kernel refused on first send (EWOULDBLOCK on the
  // non-blocking socket, ENOBUFS, ...), handed to the reactor for one
  // retry — and the ones still refused there, which are dropped.
  std::atomic<std::int64_t> reply_send_retries{0};
  std::atomic<std::int64_t> reply_send_failures{0};
  std::atomic<std::int64_t> tcp_connections{0};
  std::atomic<std::int64_t> tcp_calls{0};
  std::atomic<std::int64_t> overload_drops{0};  // queue-full datagram drops
  std::atomic<std::int64_t> conn_resets{0};  // peers cut off at a cap
  // Times a connection flush left bytes buffered because the socket
  // stopped accepting (the peer is not reading fast enough).  Grows
  // while a reply sits in out_buf waiting for writability; a reset at
  // max_write_buffer is the cap this stall accounting leads up to.
  std::atomic<std::int64_t> write_stalls{0};
};

class EventServerRuntime {
 public:
  explicit EventServerRuntime(SvcRegistry& registry,
                              EventServerRuntimeConfig cfg = {});
  ~EventServerRuntime();

  EventServerRuntime(const EventServerRuntime&) = delete;
  EventServerRuntime& operator=(const EventServerRuntime&) = delete;

  // Binds sockets, registers them with the per-shard reactors and
  // spawns the reactor threads + worker pool.  Call after all
  // register_proc calls.
  Status start();
  // Stops intake on every shard, drains queued requests (bounded by
  // drain_timeout_ms), then joins everything.  Idempotent.
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  net::Addr udp_addr() const;
  net::Addr tcp_addr() const;
  const EventServerRuntimeStats& stats() const { return stats_; }
  const char* backend() const;
  // Shards actually running (valid between start() and stop()).
  int reactor_count() const { return static_cast<int>(shards_.size()); }
  // True when every shard owns its own SO_REUSEPORT UDP socket; false
  // in the single-receiving-socket fallback (or with reactors == 1).
  bool udp_sharded() const { return udp_sharded_; }

 private:
  // ---- connection state (owning shard's reactor thread only) ----------
  struct Conn {
    std::uint64_t id = 0;
    std::size_t shard = 0;  // owning shard index, fixed for life
    std::unique_ptr<net::TcpConn> sock;
    unsigned interest = net::kEventRead;
    // Record-marking reassembly (RFC 1057 §10): 4-byte fragment header,
    // then payload; top bit marks the record's last fragment.
    std::uint32_t frag_remaining = 0;
    bool frag_header_pending = true;
    bool last_frag = false;
    Bytes header_partial;       // < 4 buffered header bytes
    Bytes record;               // payload of the record being assembled
    std::deque<Bytes> ready_records;  // complete, awaiting a worker
    bool busy = false;          // one request of this conn is in a worker
    bool stalled = false;       // a ready record hit a full worker queue
    Bytes out_buf;              // framed replies not yet written
    std::size_t out_off = 0;
    bool peer_eof = false;      // stop reading; flush, then close
  };

  // One reactor shard: an event loop thread plus everything it
  // exclusively owns.  Shards live in unique_ptrs so Shard* captures in
  // reactor callbacks stay stable.
  struct Shard {
    explicit Shard(std::size_t idx, bool force_poll)
        : index(idx), reactor(force_poll) {}
    std::size_t index;
    net::Reactor reactor;
    std::unique_ptr<net::UdpSocket> udp;  // null on non-receiving shards
    std::unordered_map<std::uint64_t, Conn> conns;
    std::uint64_t next_conn_id = 1;  // ids are per-shard; (shard, id) is
                                     // the global connection name
    bool intake_closed = false;
    std::vector<std::uint64_t> stalled_conns;
    std::thread thread;
  };

  // One datagram per job: the recvmmsg batch amortizes the syscall, but
  // each request schedules on its own worker so a batch never serializes
  // behind one thread.  The payload buffer is full-size with `len`
  // valid bytes; workers recycle it through the payload pool so the
  // receive path neither allocates nor zero-fills in steady state.
  // `shard` names the socket the datagram arrived on — the reply goes
  // back out through that shard's socket (and its reactor on retry).
  struct UdpDatagramJob {
    std::size_t shard = 0;
    net::Addr src;
    Bytes payload;
    std::size_t len = 0;
  };
  struct TcpRequestJob {
    std::size_t shard = 0;
    std::uint64_t conn_id = 0;
    Bytes record;
  };
  using Job = std::variant<UdpDatagramJob, TcpRequestJob>;

  // One encoded-but-unsent UDP reply in a worker's accumulator: `buf`
  // is a pooled full-size buffer with `len` valid bytes.  Accumulated
  // replies flush through UdpSocket::send_many so a served burst costs
  // one sendmmsg, pairing with the recvmmsg receive path.  Accumulators
  // are kept per shard so each flush goes out the right socket.
  struct UdpReply {
    net::Addr dst;
    Bytes buf;
    std::size_t len = 0;
  };
  // Per-worker accumulator: one reply vector per shard plus the total
  // across shards (the flush threshold is global so a worker never sits
  // on more than a batch's worth of replies).
  struct ReplyAccumulator {
    std::vector<std::vector<UdpReply>> per_shard;
    std::size_t total = 0;
  };

  // ---- reactor-shard handlers (run on that shard's thread) ------------
  void shard_loop(Shard& s);
  void on_udp_readable(Shard& s);
  void on_accept_ready();  // shard 0 only (owns the listener)
  // Wraps a handed-off fd into a Conn owned by shard `s`.
  void adopt_conn(Shard& s, int fd);
  void on_conn_event(Shard& s, std::uint64_t id, unsigned events);
  void read_conn(Shard& s, Conn& conn);
  bool parse_records(Conn& conn, ByteSpan chunk);  // false = protocol violation
  void dispatch_ready(Shard& s, Conn& conn);
  void retry_stalled(Shard& s);    // re-dispatch conns parked on a full queue
  void flush_conn(Shard& s, Conn& conn);  // non-blocking write of out_buf
  void finish_conn_if_idle(Shard& s, Conn& conn);
  void destroy_conn(Shard& s, std::uint64_t id);
  void set_conn_interest(Shard& s, Conn& conn, unsigned interest);
  void on_reply(Shard& s, std::uint64_t conn_id, Bytes framed);
  void close_intake(Shard& s);     // stop reading new requests on `s`

  // ---- worker side ----------------------------------------------------
  // Moves from `job` only on success so a failed push can be retried.
  bool push_job(Job& job, bool droppable);
  // Queues the first n entries of `batch` as individual jobs under one
  // lock acquisition; returns how many fit (the rest are drops).
  int push_datagram_jobs(std::size_t shard, std::vector<net::Datagram>& batch,
                         int n);
  void worker_loop();
  // Serves one datagram with the zero-copy span path; the reply lands
  // in `acc` (flushed by flush_udp_replies), not on the wire yet.
  void serve_udp_datagram(UdpDatagramJob& job, ReplyAccumulator& acc);
  // One send_many per non-empty shard bucket; refused tails are retried
  // once on that shard's reactor before counting as reply_send_failures.
  void flush_udp_replies(ReplyAccumulator& acc);
  void serve_tcp_request(TcpRequestJob& job);
  std::vector<net::Datagram> take_batch_buffer();
  void recycle_batch_buffer(std::vector<net::Datagram> buf);
  Bytes take_payload_buffer();
  void recycle_payload(Bytes payload);

  SvcRegistry& registry_;
  EventServerRuntimeConfig cfg_;
  EventServerRuntimeStats stats_;

  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<net::TcpListener> tcp_;
  bool udp_sharded_ = false;
  // Round-robin accept counter (shard 0's thread only).
  std::size_t next_conn_shard_ = 0;

  std::atomic<bool> running_{false};
  std::atomic<bool> reactor_stop_{false};
  std::atomic<bool> workers_stop_{false};
  std::atomic<std::int64_t> pending_jobs_{0};

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Job> queue_;

  std::mutex pool_mu_;
  std::vector<std::vector<net::Datagram>> batch_pool_;
  std::vector<Bytes> payload_pool_;

  std::vector<std::thread> workers_;
};

}  // namespace tempo::rpc
