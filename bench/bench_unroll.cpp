// Table 4: controlling loop unrolling — "specialization with loops of
// 250-unrolled integers".
//
// The paper hand-tuned the residual code to unroll array loops 250-wide
// instead of completely, so the loop body fits the I-cache; the 250-
// unrolled variant then beats full unrolling at 1000/2000 elements
// (0.25 ms vs 0.29 ms at 2000 on the PC).  Our specializer implements
// that policy natively (SpecOptions::unroll_factor), so this bench
// regenerates the table on the p166-sim profile and on this host.
#include "bench/bench_util.h"

#include <cstring>

namespace tempo::bench {
namespace {

// One Table-4 measurement: original vs full-unroll vs 250-unrolled.
struct UnrollRow {
  std::uint32_t n;
  double original_ms;
  double full_ms;
  double part_ms;
};

void emit_unroll_rows(JsonWriter& jw, const char* name,
                      const std::vector<UnrollRow>& rows) {
  jw.key_array(name);
  for (const auto& r : rows) {
    jw.begin_object();
    jw.field("n", r.n);
    jw.field("original_ms", r.original_ms);
    jw.field("full_unroll_ms", r.full_ms);
    jw.field("unroll_250_ms", r.part_ms);
    jw.field("speedup_full", r.full_ms > 0 ? r.original_ms / r.full_ms : 0.0);
    jw.field("speedup_250", r.part_ms > 0 ? r.original_ms / r.part_ms : 0.0);
    jw.end_object();
  }
  jw.end_array();
}

void run(const char* json_path) {
  print_header(
      "Table 4: Specialization with loops of 250-unrolled integers (ms)");

  std::vector<UnrollRow> sim_rows, host_rows;
  std::printf("%-10s %12s %12s %8s %14s %10s   (p166-sim)\n", "Array Size",
              "Original", "Full-unroll", "Speedup", "250-unrolled",
              "Speedup");
  const CostParams pc = CostParams::p166_linux();
  for (std::uint32_t n : {500u, 1000u, 2000u}) {
    std::vector<std::uint32_t> slots(n);
    Rng rng(n);
    for (auto& s : slots) s = rng.next_u32();

    core::SpecializedInterface full = make_iface(n, 0);
    core::SpecializedInterface part = make_iface(n, 250);

    const double orig = sim_generic_encode_ms(full, slots, n, pc);
    const double full_ms =
        sim_plan_encode_ms(full.encode_call_plan(), slots, pc);
    const double part_ms =
        sim_plan_encode_ms(part.encode_call_plan(), slots, pc);
    std::printf("%-10u %12.4f %12.4f %8.2f %14.4f %10.2f\n", n, orig,
                full_ms, orig / full_ms, part_ms, orig / part_ms);
    sim_rows.push_back({n, orig, full_ms, part_ms});
  }

  std::printf("\n%-10s %12s %12s %8s %14s %10s   (this host, wall clock)\n",
              "Array Size", "Original", "Full-unroll", "Speedup",
              "250-unrolled", "Speedup");
  for (std::uint32_t n : {500u, 1000u, 2000u}) {
    std::vector<std::int32_t> args(n);
    Rng rng(n);
    for (auto& a : args) a = static_cast<std::int32_t>(rng.next_u32());
    std::vector<std::uint32_t> slots(args.begin(), args.end());

    core::SpecializedInterface full = make_iface(n, 0);
    core::SpecializedInterface part = make_iface(n, 250);
    Bytes out(65000);
    std::uint32_t xid = 0;

    const double orig = time_ms_per_call([&] {
      benchmark::DoNotOptimize(generic_encode_call(
          args, ++xid, MutableByteSpan(out.data(), out.size())));
    });
    const double full_ms = time_ms_per_call([&] {
      benchmark::DoNotOptimize(run_plan_encode(
          full.encode_call_plan(), slots, ++xid,
          MutableByteSpan(out.data(), out.size()), nullptr));
    });
    const double part_ms = time_ms_per_call([&] {
      benchmark::DoNotOptimize(run_plan_encode(
          part.encode_call_plan(), slots, ++xid,
          MutableByteSpan(out.data(), out.size()), nullptr));
    });
    std::printf("%-10u %12.5f %12.5f %8.2f %14.5f %10.2f\n", n, orig,
                full_ms, orig / full_ms, part_ms, orig / part_ms);
    host_rows.push_back({n, orig, full_ms, part_ms});
  }

  // Full unroll-factor sweep (our extension: the paper left automatic
  // unroll control as future work for Tempo; SpecOptions implements it).
  print_header("Unroll-factor sweep, array size 2000, p166-sim (ms)");
  struct SweepRow {
    std::uint32_t factor;  // 0 = full unroll
    double ms;
    std::size_t plan_bytes;
  };
  std::vector<SweepRow> sweep_rows;
  std::vector<std::uint32_t> slots(2000);
  Rng rng(2000);
  for (auto& s : slots) s = rng.next_u32();
  for (std::uint32_t factor : {1u, 4u, 16u, 64u, 250u, 1000u, 0u}) {
    core::SpecializedInterface iface = make_iface(2000, factor);
    const double ms =
        sim_plan_encode_ms(iface.encode_call_plan(), slots, pc);
    std::printf("unroll=%-8s %10.4f ms   plan=%7zu bytes\n",
                factor == 0 ? "full" : std::to_string(factor).c_str(), ms,
                iface.encode_call_plan().code_bytes());
    sweep_rows.push_back({factor, ms, iface.encode_call_plan().code_bytes()});
  }

  if (json_path == nullptr) return;
  std::FILE* f =
      std::strcmp(json_path, "-") == 0 ? stdout : std::fopen(json_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", json_path);
    std::exit(1);
  }
  JsonWriter jw(f);
  jw.begin_object();
  jw.schema("unroll");
  emit_unroll_rows(jw, "p166_sim", sim_rows);
  emit_unroll_rows(jw, "host_wall_clock", host_rows);
  jw.key_array("sweep_2000_p166_sim");
  for (const auto& r : sweep_rows) {
    jw.begin_object();
    jw.field("unroll_factor", r.factor);  // 0 = full unroll
    jw.field("ms", r.ms);
    jw.field("plan_bytes", r.plan_bytes);
    jw.end_object();
  }
  jw.end_array();
  jw.end_object();
  if (f != stdout) std::fclose(f);
}

}  // namespace
}  // namespace tempo::bench

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--json PATH|-]\n", argv[0]);
      return 2;
    }
  }
  tempo::bench::run(json_path);
  return 0;
}
