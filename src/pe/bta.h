// Offline binding-time analysis (BTA).
//
// Tempo is an *offline* specializer: before any concrete value is seen,
// a BTA divides the program into static (specialization-time) and
// dynamic (run-time) parts from a description of the inputs alone, and
// the user inspects the division before specializing (paper §6.1
// describes the two-color visualization).  This module reproduces that
// division and the visualization:
//
//  * values are Static, Dynamic, or Ref (a static address whose pointee
//    is dynamic — the partially-static structure refinement applied to
//    user data),
//  * the xdrs record is analyzed per field (partially-static structures),
//  * the environment evolves per program point (flow sensitivity),
//  * each call is analyzed in its caller's context and memoized per
//    context signature (context sensitivity / polyvariance),
//  * a function's return binding time is computed independently of
//    whether its effects were dynamic (static returns).
//
// The online specializer (specializer.h) does not consume this result —
// it discovers the same division on the fly — but the property tests
// assert the two agree on the paper's claims (e.g. "every overflow check
// is static in the encode context").
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "pe/ir.h"

namespace tempo::pe {

enum class BT : std::uint8_t { kStatic, kDynamic };

inline BT bt_join(BT a, BT b) {
  return (a == BT::kDynamic || b == BT::kDynamic) ? BT::kDynamic
                                                  : BT::kStatic;
}

// Description of the entry point's inputs.
struct BtaDivision {
  std::set<std::string> dynamic_params;  // e.g. {"xid", "inlen"}
  std::set<std::string> ref_params;      // argsp / resp (static address,
                                         // dynamic content)
  // Record fields not listed here default to static.
  std::set<std::string> dynamic_fields;
  // Configuration statics with *known* values (x_op, pinned counts):
  // knowing the value lets the analysis prune static dispatches to the
  // branch the specializer will take, so the division shown for the
  // encode context really is the encode division.
  std::map<std::string, std::int64_t> known_fields;
  std::map<std::string, std::int64_t> known_params;
};

struct AnnotatedFunction {
  std::string name;
  std::string context;  // readable context signature
  const Function* fn = nullptr;
  std::map<const Stmt*, BT> stmt_bt;
  // For call statements with dynamic effects but a static return value
  // (the static-returns refinement), the pretty printer adds a note.
  std::set<const Stmt*> static_return_calls;
};

struct BtaResult {
  std::vector<AnnotatedFunction> functions;  // entry first, then callees
  BT entry_return = BT::kStatic;
  bool entry_effects_dynamic = false;

  // Paper-claim checks used by tests:
  // every If whose note starts with "overflow" that was analyzed static.
  int static_overflow_checks = 0;
  int dynamic_overflow_checks = 0;
  int static_dispatches = 0;   // Ifs dispatching on x_op
  int dynamic_dispatches = 0;
  int static_status_checks = 0;  // "exit status check" Ifs
  int dynamic_status_checks = 0;
};

Result<BtaResult> analyze_binding_times(const Program& program,
                                        const std::string& entry,
                                        const BtaDivision& division);

// Two-color listing: "S|" prefix for static lines, "D|" for dynamic —
// the terminal version of Tempo's color display (paper §6.1).
std::string annotated_to_string(const BtaResult& result);

}  // namespace tempo::pe
