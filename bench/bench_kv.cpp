// KV subsystem benchmark: commit throughput/latency across the three
// durability modes, plus log-shipping throughput to a local replica.
//
// Commit points (mode x writers):
//   * volatile    — MvccStore apply only, no WAL: the ceiling;
//   * wal-nofsync — WAL framing + write(2), fsync off: the framing and
//     group-commit coordination cost;
//   * wal-fsync   — full durability: what fsync batching buys shows up
//     as calls/sec holding up when writers > 1 (one fsync absorbs the
//     whole batch).
// Each point reports calls/sec plus the kv.commit_latency_ns
// distribution (entry to applied-in-order), fresh per point.
//
// The repl point pre-fills a volatile primary, then times a
// KvReplicator draining the backlog into a KvReplicaSink over
// loopback UDP (the fixed-shape plan/JIT tier): calls_per_sec is
// replicated RECORDS per second, and the books are checked (byte-
// identical digest, zero duplicate applies) before the number is
// trusted.
//
// Usage: bench_kv [--duration-ms N] [--value-bytes N] [--json PATH|-]
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "bench/bench_util.h"
#include "common/metrics.h"
#include "kv/repl.h"
#include "kv/service.h"
#include "rpc/event_runtime.h"
#include "rpc/svc.h"

namespace tempo::bench {
namespace {

struct Options {
  int duration_ms = 300;
  int value_bytes = 64;
  std::string json_path;  // empty = no JSON
};

struct Point {
  std::string mode;  // volatile | wal-nofsync | wal-fsync | repl
  int writers = 0;
  int value_bytes = 0;
  double calls_per_sec = 0.0;
  std::int64_t lat_count = 0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
  // WAL modes only: how many commits shared their batch's fsync.
  std::int64_t wal_fsyncs = 0;
  std::int64_t wal_batched = 0;
};

// Fresh WAL directory per point so recovery scans start empty.
std::string make_wal_dir() {
  char tmpl[] = "/tmp/bench_kv_XXXXXX";
  if (::mkdtemp(tmpl) == nullptr) {
    std::perror("mkdtemp");
    std::exit(1);
  }
  return tmpl;
}

void remove_wal_dir(const std::string& dir, std::uint32_t shards) {
  for (std::uint32_t s = 0; s < shards; ++s) {
    const std::string f = dir + "/kv-shard-" + std::to_string(s) + ".wal";
    ::unlink(f.c_str());
  }
  ::rmdir(dir.c_str());
}

Point run_commit_point(const std::string& mode, int writers,
                       const Options& opt) {
  kv::KvService::Options kv_opts;
  kv_opts.shards = 1;
  std::string wal_dir;
  if (mode != "volatile") {
    wal_dir = make_wal_dir();
    kv_opts.wal_dir = wal_dir;
    kv_opts.wal.fsync = mode == "wal-fsync";
  }
  auto svc = kv::KvService::open(kv_opts);
  if (!svc.is_ok()) {
    std::fprintf(stderr, "cannot open KvService: %s\n",
                 svc.status().to_string().c_str());
    std::exit(1);
  }

  std::atomic<bool> go{false}, stop{false};
  std::atomic<std::int64_t> total{0};
  std::atomic<int> errors{0};
  const std::string value(static_cast<std::size_t>(opt.value_bytes), 'v');

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(writers));
  for (int w = 0; w < writers; ++w) {
    threads.emplace_back([&, w] {
      // Per-writer key space: contention is on the commit path (WAL +
      // apply order), not on one map entry.
      std::uint64_t i = 0;
      std::int64_t mine = 0;
      while (!go.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      while (!stop.load(std::memory_order_acquire)) {
        const std::string key =
            "w" + std::to_string(w) + "-" + std::to_string(i++ % 1024);
        if (!(*svc)->put(key, value).is_ok()) {
          ++errors;
          break;
        }
        ++mine;
      }
      total += mine;
    });
  }

  go.store(true, std::memory_order_release);
  const auto t0 = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(std::chrono::milliseconds(opt.duration_ms));
  stop.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (errors.load() != 0) {
    std::fprintf(stderr, "commit errors at mode=%s writers=%d\n",
                 mode.c_str(), writers);
    std::exit(1);
  }

  Point p;
  p.mode = mode;
  p.writers = writers;
  p.value_bytes = opt.value_bytes;
  p.calls_per_sec = static_cast<double>(total.load()) / secs;
  const common::HistogramSnapshot lat = (*svc)->commit_latency().snapshot();
  p.lat_count = static_cast<std::int64_t>(lat.total());
  p.p50_us = static_cast<double>(lat.p50()) / 1000.0;
  p.p99_us = static_cast<double>(lat.p99()) / 1000.0;
  p.p999_us = static_cast<double>(lat.p999()) / 1000.0;
  if (const kv::Wal* wal = (*svc)->wal(0)) {
    p.wal_fsyncs = wal->stats().fsyncs.load();
    p.wal_batched = wal->stats().batched.load();
  }
  if (!wal_dir.empty()) remove_wal_dir(wal_dir, kv_opts.shards);
  return p;
}

// Pre-fill, then time the replicator draining the backlog.
Point run_repl_point(const Options& opt) {
  kv::KvService::Options kv_opts;
  kv_opts.shards = 1;
  kv_opts.tail_max_records = 1u << 20;  // retain the whole backlog
  auto primary = kv::KvService::open(kv_opts);
  if (!primary.is_ok()) {
    std::fprintf(stderr, "cannot open primary\n");
    std::exit(1);
  }
  const std::string value(static_cast<std::size_t>(opt.value_bytes), 'v');
  // Size the backlog off the duration knob so --duration-ms scales the
  // whole bench, not just the commit points.
  const int records = 200 * opt.duration_ms;
  for (int i = 0; i < records; ++i) {
    if (!(*primary)->put("key-" + std::to_string(i % 4096), value).is_ok()) {
      std::fprintf(stderr, "prefill put failed\n");
      std::exit(1);
    }
  }

  rpc::SvcRegistry reg;
  kv::KvReplicaSink sink(kv_opts.shards);
  sink.install(reg);
  rpc::EventServerRuntimeConfig cfg;
  cfg.workers = 2;
  cfg.enable_tcp = false;
  rpc::EventServerRuntime runtime(reg, cfg);
  if (!runtime.start().is_ok()) {
    std::fprintf(stderr, "cannot start replica runtime\n");
    std::exit(1);
  }

  kv::KvReplicator repl(**primary, runtime.udp_addr());
  const auto t0 = std::chrono::steady_clock::now();
  if (!repl.start().is_ok() || !repl.wait_caught_up(120000)) {
    std::fprintf(stderr, "replicator failed to catch up (lag %lld)\n",
                 static_cast<long long>(repl.lag()));
    std::exit(1);
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  repl.stop();
  // The number is only meaningful if the books balance.
  if (sink.digest() != (*primary)->digest() ||
      sink.duplicate_applies() != 0 ||
      sink.stats().applied.load() != records) {
    std::fprintf(stderr, "replication books do not balance\n");
    std::exit(1);
  }
  runtime.stop();

  Point p;
  p.mode = "repl";
  p.writers = 1;
  p.value_bytes = opt.value_bytes;
  p.calls_per_sec = static_cast<double>(records) / secs;
  return p;
}

void run(const Options& opt) {
  std::printf("bench_kv: %d-byte values, %dms per commit point\n\n",
              opt.value_bytes, opt.duration_ms);
  std::printf("%-12s %-8s %14s %10s %10s %10s %10s\n", "mode", "writers",
              "calls/sec", "p50_us", "p99_us", "fsyncs", "batched");

  std::vector<Point> points;
  for (const char* mode : {"volatile", "wal-nofsync", "wal-fsync"}) {
    for (int writers : {1, 4}) {
      Point p = run_commit_point(mode, writers, opt);
      std::printf("%-12s %-8d %14.0f %10.1f %10.1f %10lld %10lld\n",
                  p.mode.c_str(), p.writers, p.calls_per_sec, p.p50_us,
                  p.p99_us, static_cast<long long>(p.wal_fsyncs),
                  static_cast<long long>(p.wal_batched));
      points.push_back(p);
    }
  }
  {
    Point p = run_repl_point(opt);
    std::printf("%-12s %-8d %14.0f   (replicated records/sec)\n",
                p.mode.c_str(), p.writers, p.calls_per_sec);
    points.push_back(p);
  }

  // Self-check: group commit must make durability scale — 4 fsync
  // writers share batches, so their aggregate rate should beat one
  // writer's (each batch amortizes one fsync across its members).
  auto rate = [&](const std::string& mode, int writers) {
    for (const auto& p : points) {
      if (p.mode == mode && p.writers == writers) return p.calls_per_sec;
    }
    return 0.0;
  };
  const double f1 = rate("wal-fsync", 1);
  const double f4 = rate("wal-fsync", 4);
  std::printf("\ngroup commit scaling 1->4 fsync writers: %.0f -> %.0f "
              "(%.2fx) %s\n",
              f1, f4, f1 > 0 ? f4 / f1 : 0.0, f4 > f1 ? "PASS" : "FAIL");

  if (!opt.json_path.empty()) {
    std::FILE* f = opt.json_path == "-"
                       ? stdout
                       : std::fopen(opt.json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", opt.json_path.c_str());
      std::exit(1);
    }
    JsonWriter jw(f);
    jw.begin_object();
    jw.schema("kv");
    jw.field("duration_ms", opt.duration_ms);
    jw.field("metrics_enabled", common::metrics_enabled());
    jw.key_array("points");
    for (const Point& p : points) {
      jw.begin_object();
      jw.field("mode", p.mode);
      jw.field("writers", p.writers);
      jw.field("value_bytes", p.value_bytes);
      jw.field("calls_per_sec", p.calls_per_sec);
      jw.field("lat_count", p.lat_count);
      jw.field("p50_us", p.p50_us);
      jw.field("p99_us", p.p99_us);
      jw.field("p999_us", p.p999_us);
      jw.field("wal_fsyncs", p.wal_fsyncs);
      jw.field("wal_batched", p.wal_batched);
      jw.end_object();
    }
    jw.end_array();
    jw.end_object();
    if (f != stdout) std::fclose(f);
  }
}

}  // namespace
}  // namespace tempo::bench

int main(int argc, char** argv) {
  tempo::bench::Options opt;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--duration-ms") == 0 && i + 1 < argc) {
      opt.duration_ms = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--value-bytes") == 0 && i + 1 < argc) {
      opt.value_bytes = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      opt.json_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--duration-ms N] [--value-bytes N] "
                   "[--json PATH|-]\n",
                   argv[0]);
      return 2;
    }
  }
  if (opt.duration_ms <= 0 || opt.value_bytes <= 0 ||
      static_cast<std::size_t>(opt.value_bytes) > tempo::kv::kMaxValueBytes) {
    std::fprintf(stderr, "invalid --duration-ms / --value-bytes\n");
    return 2;
  }
  tempo::bench::run(opt);
  return 0;
}
