// A small key-value service defined in the XDR language and served over
// RPC-over-TCP (record-marked streams) — the kind of string-heavy
// interface that stays on the *generic* path: strings and unions are
// outside the plan-eligible subset, so guarded specialization falls back
// to the layered codecs while the wire format stays standard.
//
// Build & run:  ./examples/kvstore
#include <atomic>
#include <cstdio>
#include <map>
#include <thread>

#include "common/metrics.h"
#include "idl/interp.h"
#include "idl/parser.h"
#include "net/tcp.h"
#include "pe/layout.h"
#include "rpc/client.h"
#include "rpc/svc.h"

using namespace tempo;

namespace {

constexpr const char* kInterface = R"(
const MAX_KEY = 64;
const MAX_VAL = 512;

struct kv_pair {
    string key<MAX_KEY>;
    string val<MAX_VAL>;
};

union get_result switch (int found) {
case 1:
    string val<MAX_VAL>;
case 0:
    void;
};

program KV_PROG {
    version KV_V1 {
        bool PUT(kv_pair) = 1;
        get_result GET(kv_pair) = 2;
    } = 1;
} = 0x20000321;
)";

idl::Value make_pair_value(const std::string& key, const std::string& val) {
  idl::Value v;
  idl::ValueList fields(2);
  fields[0].v = key;
  fields[1].v = val;
  v.v = std::move(fields);
  return v;
}

}  // namespace

int main() {
  auto module = idl::parse_xdr_source(kInterface);
  if (!module.is_ok()) {
    std::fprintf(stderr, "%s\n", module.status().to_string().c_str());
    return 1;
  }
  const auto& prog = module->programs.front();
  const idl::TypePtr pair_t = module->types.at("kv_pair");
  const idl::TypePtr get_t = module->types.at("get_result");
  const idl::TypePtr bool_t = idl::t_bool();

  // Confirm the eligibility story: strings/unions fall back.
  std::printf("kv_pair plan-eligible: %s (falls back to generic codecs)\n",
              pe::plan_eligible(*pair_t) ? "yes" : "no");

  // ---- server: in-memory map behind PUT/GET ----
  std::map<std::string, std::string> store;
  rpc::SvcRegistry registry;
  registry.register_proc(
      prog.number, 1, 1, [&](xdr::XdrStream& in, xdr::XdrStream& out) {
        idl::Value req;
        if (!idl::decode_value(in, *pair_t, req)) return false;
        const auto& fields = req.as<idl::ValueList>();
        store[fields[0].as<std::string>()] = fields[1].as<std::string>();
        idl::Value ok;
        ok.v = true;
        return idl::encode_value(out, *bool_t, ok);
      });
  registry.register_proc(
      prog.number, 1, 2, [&](xdr::XdrStream& in, xdr::XdrStream& out) {
        idl::Value req;
        if (!idl::decode_value(in, *pair_t, req)) return false;
        const auto it =
            store.find(req.as<idl::ValueList>()[0].as<std::string>());
        idl::Value res;
        idl::UnionValue u;
        if (it != store.end()) {
          u.discriminant = 1;
          auto payload = std::make_shared<idl::Value>();
          payload->v = it->second;
          u.payload = std::move(payload);
        } else {
          u.discriminant = 0;
        }
        res.v = std::move(u);
        return idl::encode_value(out, *get_t, res);
      });

  net::TcpListener listener;
  rpc::TcpServer server(listener, registry);
  std::atomic<bool> stop{false};
  std::thread server_thread([&] { server.serve(stop); });
  std::printf("kvstore listening on %s (TCP, record-marked)\n",
              net::addr_to_string(listener.local_addr()).c_str());

  // ---- client over TCP ----
  rpc::TcpClient client(listener.local_addr(), prog.number, 1);
  if (!client.ok()) {
    std::fprintf(stderr, "connect failed\n");
    return 1;
  }

  auto put = [&](const std::string& k, const std::string& v) {
    idl::Value arg = make_pair_value(k, v);
    idl::Value res;
    Status st = client.call(
        1,
        [&](xdr::XdrStream& x) { return idl::encode_value(x, *pair_t, arg); },
        [&](xdr::XdrStream& x) { return idl::decode_value(x, *bool_t, res); });
    std::printf("PUT %-10s = %-24s -> %s\n", k.c_str(), v.c_str(),
                st.is_ok() ? "ok" : st.to_string().c_str());
  };
  auto get = [&](const std::string& k) {
    idl::Value arg = make_pair_value(k, "");
    idl::Value res;
    Status st = client.call(
        2,
        [&](xdr::XdrStream& x) { return idl::encode_value(x, *pair_t, arg); },
        [&](xdr::XdrStream& x) { return idl::decode_value(x, *get_t, res); });
    if (!st.is_ok()) {
      std::printf("GET %-10s -> error: %s\n", k.c_str(),
                  st.to_string().c_str());
      return;
    }
    const auto& u = res.as<idl::UnionValue>();
    if (u.discriminant == 1) {
      std::printf("GET %-10s -> \"%s\"\n", k.c_str(),
                  u.payload->as<std::string>().c_str());
    } else {
      std::printf("GET %-10s -> (not found)\n", k.c_str());
    }
  };

  put("paper", "Fast, Optimized Sun RPC");
  put("tool", "Tempo partial evaluator");
  put("venue", "ICDCS 1998");
  get("paper");
  get("tool");
  get("missing");

  stop = true;
  server_thread.join();

  // One snapshot of every live instrument on the way out (the dispatch
  // counters here — this example's string/union interface stays on the
  // generic path, which the svc.* numbers make visible).
  std::printf("\n--- metrics snapshot ---\n");
  common::metrics().snapshot().print(stdout);
  return 0;
}
