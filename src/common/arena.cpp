#include "common/arena.h"

#include <algorithm>
#include <bit>

namespace tempo::common {

namespace {

std::size_t round_up_pow2(std::size_t n) {
  return n <= 1 ? 1 : std::bit_ceil(n);
}

}  // namespace

BufferArena::BufferArena(BufferArenaConfig cfg)
    : min_class_(round_up_pow2(cfg.min_class_bytes < 64
                                   ? 64
                                   : cfg.min_class_bytes)) {
  const std::size_t max_class =
      round_up_pow2(cfg.max_class_bytes < min_class_ ? min_class_
                                                     : cfg.max_class_bytes);
  for (std::size_t bytes = min_class_; bytes <= max_class; bytes *= 2) {
    class_bytes_.push_back(bytes);
    const std::size_t by_bytes = cfg.max_bytes_per_class / bytes;
    std::size_t bound = std::min(cfg.max_buffers_per_class, by_bytes);
    if (bound < 1) bound = 1;
    class_bound_.push_back(bound);
  }
  classes_ = std::vector<SizeClass>(class_bytes_.size());
}

std::size_t BufferArena::class_for_take(std::size_t n) const {
  if (n > class_bytes_.back()) return class_bytes_.size();
  const std::size_t rounded = n <= min_class_ ? min_class_ : round_up_pow2(n);
  // log2 distance from the smallest class is the index.
  return static_cast<std::size_t>(std::bit_width(rounded / min_class_) - 1);
}

Bytes BufferArena::take(std::size_t min_bytes) {
  if (min_bytes == 0) min_bytes = 1;
  const std::size_t ci = class_for_take(min_bytes);
  if (ci >= classes_.size()) {
    // Oversize: a plain heap one-off, never pooled.
    ++misses_;
    return Bytes(min_bytes);
  }
  {
    std::lock_guard<std::mutex> lock(classes_[ci].mu);
    if (!classes_[ci].free.empty()) {
      Bytes buf = std::move(classes_[ci].free.back());
      classes_[ci].free.pop_back();
      bytes_pooled_ -= static_cast<std::int64_t>(buf.size());
      ++hits_;
      return buf;
    }
  }
  ++misses_;
  return Bytes(class_bytes_[ci]);
}

void BufferArena::recycle(Bytes buf) {
  if (buf.empty()) return;
  if (buf.size() < min_class_ || buf.size() > class_bytes_.back()) {
    ++discards_;
    return;
  }
  // Largest class that fits entirely inside the buffer: pooled buffers
  // are never smaller than their class, so a later take(class) cannot
  // receive a short buffer.
  const std::size_t ci =
      static_cast<std::size_t>(std::bit_width(buf.size() / min_class_) - 1);
  if (buf.size() != class_bytes_[ci]) {
    // A foreign or shrunken buffer: trim to the class it claims (a
    // downward resize never reallocates or fills).
    buf.resize(class_bytes_[ci]);
  }
  {
    std::lock_guard<std::mutex> lock(classes_[ci].mu);
    if (classes_[ci].free.size() < class_bound_[ci]) {
      bytes_pooled_ += static_cast<std::int64_t>(buf.size());
      classes_[ci].free.push_back(std::move(buf));
      ++recycles_;
      return;
    }
  }
  ++discards_;
}

std::size_t BufferArena::class_size_for(std::size_t n) const {
  if (n == 0) n = 1;
  const std::size_t ci = class_for_take(n);
  return ci >= class_bytes_.size() ? n : class_bytes_[ci];
}

void BufferArena::pin(std::size_t bytes) {
  bytes_pinned_ += static_cast<std::int64_t>(bytes);
}

void BufferArena::unpin(std::size_t bytes) {
  bytes_pinned_ -= static_cast<std::int64_t>(bytes);
}

BufferArenaStats BufferArena::stats() const {
  BufferArenaStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.recycles = recycles_.load(std::memory_order_relaxed);
  s.discards = discards_.load(std::memory_order_relaxed);
  s.bytes_pooled = bytes_pooled_.load(std::memory_order_relaxed);
  s.bytes_pinned = bytes_pinned_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace tempo::common
