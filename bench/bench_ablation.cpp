// Ablation study (our extension; DESIGN.md "Ablations").
//
// Two questions the paper motivates but does not isolate:
//  1. Where does the marshaling speedup come from?  The cost model lets
//     us attribute cycles to interpretation layers (calls, dispatches,
//     overflow checks) vs irreducible data movement — the event
//     breakdown below is the quantitative version of the paper's §3.
//  2. How do the marshaling flavors of §7's related work compare?
//     procedure-driven (layered xdr_*), table-driven (descriptor
//     interpreter, Hoschka & Huitema), residual plans (Tempo analog) and
//     compile-time templates (the modern rpcgen-style codegen endpoint).
#include "bench/bench_util.h"
#include "core/tspec.h"
#include "pe/compile.h"

namespace tempo::bench {
namespace {

void event_breakdown() {
  print_header("Ablation 1: cycle attribution per marshal (ipx-sim)");
  const CostParams ipx = CostParams::ipx_sunos();
  std::printf("%-8s %-12s %10s %10s %10s %10s %10s %12s\n", "size",
              "flavor", "calls", "dispatch", "ovfl", "alu", "mem(B)",
              "total ms");
  for (std::uint32_t n : {20u, 250u, 2000u}) {
    core::SpecializedInterface iface = make_iface(n);
    std::vector<std::uint32_t> slots(n);
    Rng rng(n);
    for (auto& s : slots) s = rng.next_u32();

    const CostEvents g = generic_encode_events(iface, slots, n);
    const CostEvents s = plan_encode_events(iface.encode_call_plan(), slots);
    for (const auto& [name, ev] :
         {std::pair<const char*, const CostEvents*>{"generic", &g},
          {"specialized", &s}}) {
      std::printf("%-8u %-12s %10lld %10lld %10lld %10lld %10lld %12.4f\n",
                  n, name, static_cast<long long>(ev->calls),
                  static_cast<long long>(ev->dispatches),
                  static_cast<long long>(ev->overflow_checks),
                  static_cast<long long>(ev->alu_ops),
                  static_cast<long long>(ev->buffer_bytes),
                  cost_to_ns(*ev, ipx) / 1e6);
    }
  }
  std::printf(
      "\nInterpretation overhead eliminated by specialization:\n");
  for (std::uint32_t n : {20u, 250u, 2000u}) {
    core::SpecializedInterface iface = make_iface(n);
    std::vector<std::uint32_t> slots(n);
    for (auto& s : slots) s = 1;
    const CostEvents g = generic_encode_events(iface, slots, n);
    const double layer_cycles = static_cast<double>(g.calls) * ipx.cycles_call +
                                static_cast<double>(g.dispatches) * ipx.cycles_dispatch +
                                static_cast<double>(g.overflow_checks) *
                                    ipx.cycles_overflow_check;
    const double total_cycles = cost_to_ns(g, ipx) / ipx.ns_per_cycle;
    std::printf("  n=%-6u %5.1f%% of generic marshal cycles are "
                "call/dispatch/overflow interpretation\n",
                n, 100.0 * layer_cycles / total_cycles);
  }
}

void flavor_comparison() {
  print_header(
      "Ablation 2: marshaling flavors on this host (ms per encode)");
  std::printf("%-8s %14s %14s %14s %14s %14s\n", "size", "procedure-drv",
              "table-driven", "plan(Tempo)", "compiled", "template");
  const idl::TypePtr arr_t = echo_proc().arg_type;

  auto run_size = [&]<std::size_t N>() {
    std::vector<std::int32_t> args(N);
    Rng rng(N);
    for (auto& a : args) a = static_cast<std::int32_t>(rng.next_u32());
    std::vector<std::uint32_t> slots(args.begin(), args.end());
    idl::Value value;
    {
      idl::ValueList l(N);
      for (std::size_t i = 0; i < N; ++i) l[i].v = args[i];
      value.v = std::move(l);
    }
    core::SpecializedInterface iface =
        make_iface(static_cast<std::uint32_t>(N));
    Bytes out(65000);
    std::uint32_t xid = 0;

    const double proc_ms = time_ms_per_call([&] {
      benchmark::DoNotOptimize(generic_encode_call(
          args, ++xid, MutableByteSpan(out.data(), out.size())));
    });
    const double table_ms = time_ms_per_call([&] {
      benchmark::DoNotOptimize(table_driven_encode_call(
          *arr_t, value, ++xid, MutableByteSpan(out.data(), out.size())));
    });
    const double plan_ms = time_ms_per_call([&] {
      benchmark::DoNotOptimize(run_plan_encode(
          iface.encode_call_plan(), slots, ++xid,
          MutableByteSpan(out.data(), out.size()), nullptr));
    });
    double jit_ms = 0;
    if (const pe::CompiledPlan* jit = iface.encode_call_jit()) {
      jit_ms = time_ms_per_call([&] {
        benchmark::DoNotOptimize(jit->run_encode(
            slots, ++xid, MutableByteSpan(out.data(), out.size())));
      });
    }
    using Call = core::tspec::IntArrayCall<kProg, kVers, kProc, N>;
    const double tmpl_ms = time_ms_per_call([&] {
      benchmark::DoNotOptimize(Call::encode(
          ++xid, slots, std::span<std::uint8_t>(out.data(), out.size())));
    });
    std::printf("%-8zu %14.5f %14.5f %14.5f %14.5f %14.5f\n", N, proc_ms,
                table_ms, plan_ms, jit_ms, tmpl_ms);
  };
  run_size.operator()<20>();
  run_size.operator()<250>();
  run_size.operator()<2000>();
  std::printf(
      "\nExpected ordering: table-driven >= procedure-driven > plan > "
      "compiled ~ template\n(each step removes one level of "
      "interpretation; compiled is the JIT'd plan)\n");
}

void guard_cost() {
  print_header(
      "Ablation 3: price of guarded specialization (decode guards)");
  // Decode with guards (safety kept) vs raw word copies (what an unsafe
  // hand optimization would do) — the paper's §3.2 point is that the
  // *encode* checks fold for free; decode keeps validation.  Measure
  // what that remaining validation costs.
  const std::uint32_t n = 1000;
  core::SpecializedInterface iface = make_iface(n);
  std::vector<std::uint32_t> slots(n);
  Rng rng(1);
  for (auto& s : slots) s = rng.next_u32();

  Bytes reply(iface.decode_reply_plan().expected_in, 0);
  store_be32(reply.data(), 7);
  store_be32(reply.data() + 4, 1);
  store_be32(reply.data() + 24, n);
  std::vector<std::uint32_t> results(n);

  const double guarded_ms = time_ms_per_call([&] {
    benchmark::DoNotOptimize(
        run_plan_decode(iface.decode_reply_plan(),
                        ByteSpan(reply.data(), reply.size()), 7, results,
                        nullptr));
  });
  // Raw copy of the same payload (no guards at all).
  const double raw_ms = time_ms_per_call([&] {
    for (std::uint32_t i = 0; i < n; ++i) {
      results[i] = load_be32(reply.data() + 28 + 4 * i);
    }
    benchmark::DoNotOptimize(results.data());
  });
  std::printf("guarded decode: %.5f ms   unguarded copy: %.5f ms   "
              "guard overhead: %.1f%%\n",
              guarded_ms, raw_ms, 100.0 * (guarded_ms - raw_ms) / raw_ms);
}

}  // namespace
}  // namespace tempo::bench

int main() {
  tempo::bench::event_breakdown();
  tempo::bench::flavor_comparison();
  tempo::bench::guard_cost();
  return 0;
}
