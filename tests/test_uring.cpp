// io_uring backend specifics that the generic reactor e2e suites do not
// pin down:
//
//   * registered-buffer ownership — every provided-buffer-ring slice is
//     pinned arena memory while the kernel may write into it, and the
//     pin books must stay exactly (shards x ring entries x slot class)
//     through arbitrary TCP connection churn and hard resets (a slice
//     is never recycled while the kernel still references it, and never
//     leaks when a conn dies mid-receive);
//   * stop() drain — tearing the runtime down with multishot receives
//     armed and reply sends in flight must complete promptly, unpin
//     every ring slice, and lose no reply to the shutdown itself.
//
// Every test self-skips on kernels without io_uring support, so the
// suite is safe in any CI lane.
#include <gtest/gtest.h>

#include <sys/socket.h>

#include <atomic>
#include <bit>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "common/endian.h"
#include "net/tcp.h"
#include "net/udp.h"
#include "rpc/event_runtime.h"
#include "rpc/rpc_msg.h"
#include "rpc/svc.h"
#include "xdr/primitives.h"
#include "xdr/xdrmem.h"

namespace tempo {
namespace {

constexpr std::uint32_t kProg = 0x20000BBB;
constexpr std::uint32_t kVers = 1;
constexpr std::uint32_t kProcEcho = 1;

void install_echo(rpc::SvcRegistry& reg) {
  reg.register_proc(kProg, kVers, kProcEcho,
                    [](xdr::XdrStream& in, xdr::XdrStream& out) {
                      std::int32_t v = 0;
                      if (!xdr::xdr_int(in, v)) return false;
                      return xdr::xdr_int(out, v);
                    });
}

std::size_t encode_echo_call(std::uint32_t xid, std::int32_t v, Bytes& buf) {
  xdr::XdrMem x(MutableByteSpan(buf.data(), buf.size()), xdr::XdrOp::kEncode);
  rpc::CallHeader hdr;
  hdr.xid = xid;
  hdr.prog = kProg;
  hdr.vers = kVers;
  hdr.proc = kProcEcho;
  EXPECT_TRUE(rpc::xdr_call_header(x, hdr));
  EXPECT_TRUE(xdr::xdr_int(x, v));
  return x.getpos();
}

// One blocking UDP echo call with a short retry loop (UDP may drop).
bool echo_once(net::UdpSocket& sock, const net::Addr& dst, std::uint32_t xid) {
  Bytes call(256), reply(256);
  const std::size_t len = encode_echo_call(xid, 7, call);
  for (int attempt = 0; attempt < 5; ++attempt) {
    if (!sock.send_to(dst, ByteSpan(call.data(), len)).is_ok()) return false;
    net::Addr src;
    auto r = sock.recv_from(&src, MutableByteSpan(reply.data(), reply.size()),
                            200);
    if (r.is_ok() && *r >= 4 && load_be32(reply.data()) == xid) return true;
  }
  return false;
}

// The steady-state pin expectation: every shard keeps one registered
// ring of `uring_buffers` (rounded up to a power of two, floor 8)
// slices, each a kMaxDatagramBytes take — a 65536-byte arena class.
std::int64_t expected_pinned(const rpc::EventServerRuntimeConfig& cfg) {
  const unsigned entries = std::bit_ceil(
      static_cast<unsigned>(cfg.uring_buffers < 8 ? 8 : cfg.uring_buffers));
  return static_cast<std::int64_t>(cfg.reactors) * entries * 65536;
}

// Wait until bytes_pinned settles at `want` (receive completions unpin
// a travelling slice and pin its replacement, so there are legitimate
// transient dips while traffic is in flight).
bool pinned_settles_at(const rpc::EventServerRuntime& rt, std::int64_t want) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < deadline) {
    if (rt.arena_stats().bytes_pinned == want) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return false;
}

TEST(UringRuntime, RegisteredBufferPinsStableUnderConnResets) {
  if (!rpc::EventServerRuntime::uring_supported()) {
    GTEST_SKIP() << "io_uring unavailable on this kernel";
  }
  rpc::SvcRegistry reg;
  install_echo(reg);

  rpc::EventServerRuntimeConfig cfg;
  cfg.backend = rpc::EventBackend::kUring;
  cfg.reactors = 2;
  cfg.workers = 2;
  cfg.uring_buffers = 32;
  rpc::EventServerRuntime runtime(reg, cfg);
  ASSERT_TRUE(runtime.start().is_ok());
  ASSERT_STREQ(runtime.backend(), "uring");

  const std::int64_t want = expected_pinned(cfg);
  EXPECT_TRUE(pinned_settles_at(runtime, want));

  // Churn: connections that send a partial garbage record and then die
  // with an RST while the shard's multishot recv is armed on them.  The
  // slice the kernel picked for the doomed read must return to the ring
  // (re-provided), not leak and not double-recycle.
  for (int round = 0; round < 40; ++round) {
    auto conn = net::TcpConn::connect(runtime.tcp_addr());
    ASSERT_NE(conn, nullptr);
    unsigned char junk[64];
    std::memset(junk, 0xAB, sizeof(junk));
    // A huge record-fragment header so the record never completes.
    store_be32(junk, 0x7FFFFFF0u);
    (void)conn->write_all(ByteSpan(junk, sizeof(junk)));
    struct linger lg {
      1, 0
    };
    ::setsockopt(conn->fd(), SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
    conn.reset();  // close() with linger0 = RST in flight
  }

  // The runtime still serves, and the pin books are back to exactly the
  // ring inventory.
  net::UdpSocket sock;
  ASSERT_TRUE(sock.ok());
  EXPECT_TRUE(echo_once(sock, runtime.udp_addr(), 0xABC1));
  EXPECT_TRUE(pinned_settles_at(runtime, want));

  runtime.stop();
  // Teardown reaped every kernel reference and unpinned every slice.
  EXPECT_EQ(runtime.arena_stats().bytes_pinned, 0);
}

TEST(UringRuntime, StopDrainsInFlightOpsAndUnpinsEverything) {
  if (!rpc::EventServerRuntime::uring_supported()) {
    GTEST_SKIP() << "io_uring unavailable on this kernel";
  }
  rpc::SvcRegistry reg;
  install_echo(reg);

  rpc::EventServerRuntimeConfig cfg;
  cfg.backend = rpc::EventBackend::kUring;
  cfg.reactors = 2;
  cfg.workers = 4;
  rpc::EventServerRuntime runtime(reg, cfg);
  ASSERT_TRUE(runtime.start().is_ok());
  ASSERT_STREQ(runtime.backend(), "uring");

  // Blast pipelined datagrams from several sockets and stop() while
  // receives, worker dispatch and linked reply sends are all in flight.
  std::vector<net::UdpSocket> socks(4);
  Bytes call(256);
  std::uint32_t xid = 1;
  for (int burst = 0; burst < 50; ++burst) {
    for (auto& s : socks) {
      const std::size_t len = encode_echo_call(++xid, 11, call);
      (void)s.send_to(runtime.udp_addr(), ByteSpan(call.data(), len));
    }
  }
  const auto t0 = std::chrono::steady_clock::now();
  runtime.stop();
  const auto took = std::chrono::steady_clock::now() - t0;
  // The drain is bounded (500ms per shard budget, sequential worst
  // case) — far under this ceiling in practice.
  EXPECT_LT(took, std::chrono::seconds(5));
  // Every provided slice came off the ring through a terminal CQE and
  // was unpinned; nothing is left with the kernel.
  EXPECT_EQ(runtime.arena_stats().bytes_pinned, 0);
  // Shutdown must not manufacture send errors: any reply the runtime
  // chose to send either reached the socket or was retried there.
  EXPECT_EQ(runtime.stats().reply_send_failures.load(), 0);
}

}  // namespace
}  // namespace tempo
