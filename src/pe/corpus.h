// Builds the generic Sun RPC marshaling code in IR form for a given
// interface procedure — the input the partial evaluator works on.
//
// The emitted program mirrors the original micro-layer structure the
// paper's Figure 1 traces:
//
//   encode_call                   (clntudp_call: header words + stub)
//     xdrmem_putlong_val            (XDR_PUTLONG of proc id, versions...)
//     xdr_<argtype>                 (the rpcgen-generated stub, Fig. 4)
//       xdr_int / xdr_long          (per-field dispatch, Fig. 2)
//         xdrmem_putlong            (overflow check + store, Fig. 3)
//
// plus the exit-status propagation after every call (`if (!r) return 0`)
// that §3.3 shows being folded away.
//
// Return-code convention for driver entry points:
//   1 = success, 0 = failure (protocol garbage -> fall back to generic),
//   2 = length-guard miss (the §6.2 expected_inlen test -> fall back),
//   3 = XID mismatch (stale reply -> keep waiting).
#pragma once

#include <cstdint>

#include "common/status.h"
#include "idl/types.h"
#include "pe/ir.h"

namespace tempo::pe {

// Names of reserved entry parameters.
inline constexpr const char* kXdrsRecord = "xdrs";
inline constexpr const char* kXidVar = "xid";
inline constexpr const char* kInlenVar = "inlen";

// Driver return codes (see above).
inline constexpr std::int64_t kRcFail = 0;
inline constexpr std::int64_t kRcOk = 1;
inline constexpr std::int64_t kRcLenMismatch = 2;
inline constexpr std::int64_t kRcXidMismatch = 3;

// Wire sizes of the fixed message prefixes with AUTH_NONE credentials.
inline constexpr std::int64_t kCallHeaderBytes = 40;   // 10 words
inline constexpr std::int64_t kReplyHeaderBytes = 24;  // 6 words

struct InterfaceCorpus {
  Program program;

  // Entry-point function names.
  std::string encode_call;     // (xdrs, xid, argsp, cnt0..)   client
  std::string decode_reply;    // (xdrs, xid, resp, inlen, rcnt0..)
  std::string decode_args;     // (xdrs, argsp, inlen, cnt0..) server
  std::string encode_results;  // (xdrs, resp, rcnt0..)

  // Number of pinned variable-array counts per side; the corresponding
  // parameters are named cnt0..cntN-1 / rcnt0..rcntM-1.
  std::uint32_t arg_counts = 0;
  std::uint32_t res_counts = 0;

  std::uint32_t prog_num = 0, vers_num = 0, proc_num = 0;
  idl::TypePtr arg_type, res_type;
};

// Fails when arg or result type is not plan-eligible (strings, unions,
// optionals, variable opaques, or variable arrays nested under arrays).
Result<InterfaceCorpus> build_interface_corpus(const idl::ProcDef& proc,
                                               std::uint32_t prog_num,
                                               std::uint32_t vers_num);

// Rough object-code size model for generic IR (bytes), used as the
// Table 3 "generic client code" size analog: statements weighted like
// compiled RISC instructions.
std::size_t ir_code_size(const Program& program);

}  // namespace tempo::pe
