// EventServerRuntime — the reactor-based successor of ServerRuntime.
//
// ServerRuntime (svc.h) burns one blocking thread per listener and
// parks a whole worker on each TCP connection, so a peer that trickles
// bytes pins a worker for its connection's lifetime.  This runtime puts
// every socket behind a net::Reactor instead:
//
//   * one reactor thread multiplexes the UDP socket, the TCP listener
//     and every accepted connection (epoll on Linux, poll elsewhere);
//   * the UDP socket is non-blocking and drained in recvmmsg batches —
//     one syscall per burst, not per datagram — and replies flush back
//     out through per-worker accumulators and sendmmsg
//     (UdpSocket::send_many), so a burst pairs one syscall per batch in
//     BOTH directions;
//   * each TCP connection carries its own record-reassembly buffer and
//     pending-write buffer.  The reactor reads whatever bytes are
//     available, assembles record-marked fragments, and only when a
//     COMPLETE call record exists hands it to the worker pool — a slow
//     peer therefore delays nobody but itself;
//   * workers dispatch through SvcRegistry::handle_request — decoding
//     each request IN PLACE from the receive buffer and encoding the
//     reply into a caller-owned buffer, no scratch memset/memcpy — and
//     post framed TCP replies back to the reactor, which writes them
//     without ever blocking (leftover bytes wait for writability).
//
// Because a TCP request reaches the worker as one contiguous record,
// argument decode goes through XdrMem — XDR_INLINE succeeds and the
// residual-plan fast path engages on TCP too, which the xdrrec stream
// of the threaded runtime could never offer.
//
// Ownership (see src/net/README.md for the full model): the reactor
// thread owns all connection state; workers only ever own a copy of a
// request's bytes; handoff back is by Reactor::post().
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <variant>
#include <vector>

#include "common/status.h"
#include "net/reactor.h"
#include "net/tcp.h"
#include "net/udp.h"
#include "rpc/svc.h"

namespace tempo::rpc {

struct EventServerRuntimeConfig {
  int workers = 4;
  std::uint16_t udp_port = 0;  // 0 = ephemeral
  std::uint16_t tcp_port = 0;
  bool enable_udp = true;
  bool enable_tcp = true;
  std::size_t queue_capacity = 1024;
  // Datagrams pulled per recvmmsg syscall.
  int udp_batch = 32;
  // Per-connection caps; a peer exceeding either is reset.
  std::size_t max_record_bytes = 1u << 20;
  std::size_t max_write_buffer = 4u << 20;
  // Backpressure: once this many complete records queue on one
  // connection, the reactor stops reading it (TCP flow control pushes
  // back on the peer) until dispatch catches up.
  std::size_t max_pipelined_records = 64;
  // Test hook: exercise the portable poll(2) backend on Linux too.
  bool force_poll_backend = false;
  // stop() waits this long for queued work to finish before tearing
  // down the pool.
  int drain_timeout_ms = 2000;
};

struct EventServerRuntimeStats {
  std::atomic<std::int64_t> udp_datagrams{0};
  std::atomic<std::int64_t> udp_batches{0};  // recv_many calls that got >0
  std::atomic<std::int64_t> udp_reply_batches{0};  // send_many flushes
  // Replies the kernel refused on first send (EWOULDBLOCK on the
  // non-blocking socket, ENOBUFS, ...), handed to the reactor for one
  // retry — and the ones still refused there, which are dropped.
  std::atomic<std::int64_t> reply_send_retries{0};
  std::atomic<std::int64_t> reply_send_failures{0};
  std::atomic<std::int64_t> tcp_connections{0};
  std::atomic<std::int64_t> tcp_calls{0};
  std::atomic<std::int64_t> overload_drops{0};  // queue-full datagram drops
  std::atomic<std::int64_t> conn_resets{0};  // peers cut off at a cap
};

class EventServerRuntime {
 public:
  explicit EventServerRuntime(SvcRegistry& registry,
                              EventServerRuntimeConfig cfg = {});
  ~EventServerRuntime();

  EventServerRuntime(const EventServerRuntime&) = delete;
  EventServerRuntime& operator=(const EventServerRuntime&) = delete;

  // Binds sockets, registers them with the reactor and spawns the
  // reactor thread + worker pool.  Call after all register_proc calls.
  Status start();
  // Stops intake, drains queued requests (bounded by drain_timeout_ms),
  // then joins everything.  Idempotent.
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  net::Addr udp_addr() const;
  net::Addr tcp_addr() const;
  const EventServerRuntimeStats& stats() const { return stats_; }
  const char* backend() const { return reactor_.backend(); }

 private:
  // ---- connection state (reactor thread only) -------------------------
  struct Conn {
    std::uint64_t id = 0;
    std::unique_ptr<net::TcpConn> sock;
    unsigned interest = net::kEventRead;
    // Record-marking reassembly (RFC 1057 §10): 4-byte fragment header,
    // then payload; top bit marks the record's last fragment.
    std::uint32_t frag_remaining = 0;
    bool frag_header_pending = true;
    bool last_frag = false;
    Bytes header_partial;       // < 4 buffered header bytes
    Bytes record;               // payload of the record being assembled
    std::deque<Bytes> ready_records;  // complete, awaiting a worker
    bool busy = false;          // one request of this conn is in a worker
    bool stalled = false;       // a ready record hit a full worker queue
    Bytes out_buf;              // framed replies not yet written
    std::size_t out_off = 0;
    bool peer_eof = false;      // stop reading; flush, then close
  };

  // One datagram per job: the recvmmsg batch amortizes the syscall, but
  // each request schedules on its own worker so a batch never serializes
  // behind one thread.  The payload buffer is full-size with `len`
  // valid bytes; workers recycle it through the payload pool so the
  // receive path neither allocates nor zero-fills in steady state.
  struct UdpDatagramJob {
    net::Addr src;
    Bytes payload;
    std::size_t len = 0;
  };
  struct TcpRequestJob {
    std::uint64_t conn_id = 0;
    Bytes record;
  };
  using Job = std::variant<UdpDatagramJob, TcpRequestJob>;

  // One encoded-but-unsent UDP reply in a worker's accumulator: `buf`
  // is a pooled full-size buffer with `len` valid bytes.  Accumulated
  // replies flush through UdpSocket::send_many so a served burst costs
  // one sendmmsg, pairing with the recvmmsg receive path.
  struct UdpReply {
    net::Addr dst;
    Bytes buf;
    std::size_t len = 0;
  };

  // ---- reactor-thread handlers ---------------------------------------
  void reactor_loop();
  void on_udp_readable();
  void on_accept_ready();
  void on_conn_event(std::uint64_t id, unsigned events);
  void read_conn(Conn& conn);
  bool parse_records(Conn& conn, ByteSpan chunk);  // false = protocol violation
  void dispatch_ready(Conn& conn);
  void retry_stalled();            // re-dispatch conns parked on a full queue
  void flush_conn(Conn& conn);     // non-blocking write of out_buf
  void finish_conn_if_idle(Conn& conn);
  void destroy_conn(std::uint64_t id);
  void set_conn_interest(Conn& conn, unsigned interest);
  void on_reply(std::uint64_t conn_id, Bytes framed);
  void close_intake();             // stop reading new requests

  // ---- worker side ----------------------------------------------------
  // Moves from `job` only on success so a failed push can be retried.
  bool push_job(Job& job, bool droppable);
  // Queues the first n entries of `batch` as individual jobs under one
  // lock acquisition; returns how many fit (the rest are drops).
  int push_datagram_jobs(std::vector<net::Datagram>& batch, int n);
  void worker_loop();
  // Serves one datagram with the zero-copy span path; the reply lands
  // in `acc` (flushed by flush_udp_replies), not on the wire yet.
  void serve_udp_datagram(UdpDatagramJob& job, std::vector<UdpReply>& acc);
  // One send_many per accumulator; refused tails are retried once on
  // the reactor thread before counting as reply_send_failures.
  void flush_udp_replies(std::vector<UdpReply>& acc);
  void serve_tcp_request(TcpRequestJob& job);
  std::vector<net::Datagram> take_batch_buffer();
  void recycle_batch_buffer(std::vector<net::Datagram> buf);
  Bytes take_payload_buffer();
  void recycle_payload(Bytes payload);

  SvcRegistry& registry_;
  EventServerRuntimeConfig cfg_;
  EventServerRuntimeStats stats_;

  net::Reactor reactor_;
  std::unique_ptr<net::UdpSocket> udp_;
  std::unique_ptr<net::TcpListener> tcp_;

  std::unordered_map<std::uint64_t, Conn> conns_;  // reactor thread only
  std::uint64_t next_conn_id_ = 1;
  bool intake_closed_ = false;  // reactor thread only
  std::vector<std::uint64_t> stalled_conns_;  // reactor thread only

  std::atomic<bool> running_{false};
  std::atomic<bool> reactor_stop_{false};
  std::atomic<bool> workers_stop_{false};
  std::atomic<std::int64_t> pending_jobs_{0};

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Job> queue_;

  std::mutex pool_mu_;
  std::vector<std::vector<net::Datagram>> batch_pool_;
  std::vector<Bytes> payload_pool_;

  std::thread reactor_thread_;
  std::vector<std::thread> workers_;
};

}  // namespace tempo::rpc
