// Unit tests for the native plan compiler (src/pe/compile.cpp): the
// knob / host gating, the guard ExecStatus contract, tail-padding
// zeroing on recycled buffers, the fusion pass (template baking, copy
// merging, loop unrolling) via the jit_internal hooks, and the code /
// template size accounting.  tests/test_plan_diff.cpp covers the
// randomized end-to-end equivalence; this file pins the mechanisms.
#include <gtest/gtest.h>

#include <cstring>

#include "common/endian.h"
#include "core/stubspec.h"
#include "idl/interp.h"
#include "pe/compile.h"
#include "pe/layout.h"

namespace tempo {
namespace {

using pe::ExecStatus;
using pe::PInstr;
using pe::Plan;
using pe::POp;
namespace ji = pe::jit_internal;

bool jit_tier_live() {
  return pe::jit_supported_host() && pe::jit_enabled_by_env();
}

PInstr ins(POp op, std::uint32_t off, std::uint32_t a, std::uint32_t b,
           std::uint64_t imm = 0) {
  PInstr i;
  i.op = op;
  i.off = off;
  i.a = a;
  i.b = b;
  i.imm = imm;
  return i;
}

// ---- knob / host gating ------------------------------------------------

TEST(JitGating, EnvKnobIsStablePerProcess) {
  // Read-once semantics: two calls must agree even if the environment
  // mutates between them.
  const bool first = pe::jit_enabled_by_env();
  EXPECT_EQ(first, pe::jit_enabled_by_env());
}

TEST(JitGating, SpecConfigKnobDisablesTier) {
  idl::ProcDef proc;
  proc.name = "echo";
  proc.number = 1;
  proc.arg_type = idl::t_array_var(idl::t_int(), 64);
  proc.res_type = proc.arg_type;

  core::SpecConfig cfg;
  cfg.arg_counts = {8};
  cfg.res_counts = {8};
  cfg.enable_jit = false;
  auto off = core::SpecializedInterface::build(proc, 1, 1, cfg);
  ASSERT_TRUE(off.is_ok());
  EXPECT_EQ(off->jit_stub_count(), 0);
  EXPECT_FALSE(off->jit_active());
  EXPECT_EQ(off->compiled_code_bytes(), 0u);

  cfg.enable_jit = true;
  auto on = core::SpecializedInterface::build(proc, 1, 1, cfg);
  ASSERT_TRUE(on.is_ok());
  if (jit_tier_live()) {
    EXPECT_EQ(on->jit_stub_count(), 4);
    EXPECT_TRUE(on->jit_active());
    EXPECT_GT(on->compiled_code_bytes(), 0u);
  } else {
    EXPECT_EQ(on->jit_stub_count(), 0);
  }
  // The knob must not leak into behavior: both interfaces marshal
  // identically (exec_* falls back to the executor when no stub).
  std::vector<std::uint32_t> slots(on->arg_slots(), 0);
  slots[0] = 8;
  for (std::size_t i = 1; i < slots.size(); ++i) {
    slots[i] = static_cast<std::uint32_t>(i * 0x01010101u);
  }
  const auto& plan = on->encode_call_plan();
  Bytes a(plan.out_size, 0xA5), b(plan.out_size, 0x5A);
  ASSERT_EQ(off->exec_encode_call(slots, 42, MutableByteSpan(a.data(),
                                                             a.size())),
            ExecStatus::kOk);
  ASSERT_EQ(on->exec_encode_call(slots, 42, MutableByteSpan(b.data(),
                                                            b.size())),
            ExecStatus::kOk);
  EXPECT_EQ(a, b);
}

// ---- guard ExecStatus contract through native code ---------------------

TEST(JitGuards, AllFailureCodesMatchExecutor) {
  Plan plan;
  plan.is_encode = false;
  plan.expected_in = 12;
  plan.words_needed = 1;
  plan.instrs = {
      ins(POp::kGuardLen, 0, 0, 0, 12),
      ins(POp::kGuardXid, 0, 0, 0),
      ins(POp::kGuardConstEq, 4, 0, 0, 0xDEADBEEFu),
      ins(POp::kGuardBool, 8, 0, 0),
      ins(POp::kGetWord, 8, 0, 0),
  };
  // compile() gates on the host only; the env knob is applied by the
  // callers in core::SpecializedInterface.
  auto jit = pe::CompiledPlan::compile(plan);
  if (!pe::jit_supported_host()) {
    EXPECT_EQ(jit, nullptr);
    return;
  }
  ASSERT_NE(jit, nullptr);
  EXPECT_FALSE(jit->is_encode());

  const std::uint32_t xid = 0xCAFE0001u;
  Bytes good(12);
  store_be32(good.data(), xid);
  store_be32(good.data() + 4, 0xDEADBEEFu);
  store_be32(good.data() + 8, 1);

  auto both = [&](ByteSpan in, std::uint32_t x,
                  std::span<std::uint32_t> words) {
    std::vector<std::uint32_t> w2(words.begin(), words.end());
    const ExecStatus se = run_plan_decode(plan, in, x, w2);
    const ExecStatus sj = jit->run_decode(in, x, words);
    EXPECT_EQ(static_cast<int>(se), static_cast<int>(sj));
    EXPECT_TRUE(std::equal(words.begin(), words.end(), w2.begin()));
    return sj;
  };

  std::vector<std::uint32_t> words(1, 0x6B6B6B6Bu);
  EXPECT_EQ(both(ByteSpan(good.data(), good.size()), xid, words),
            ExecStatus::kOk);
  EXPECT_EQ(words[0], 1u);

  // Stale XID → kRetryXid.
  EXPECT_EQ(both(ByteSpan(good.data(), good.size()), xid + 1, words),
            ExecStatus::kRetryXid);
  // Constant guard miss → kFallback.
  Bytes bad = good;
  store_be32(bad.data() + 4, 0xDEADBEEEu);
  EXPECT_EQ(both(ByteSpan(bad.data(), bad.size()), xid, words),
            ExecStatus::kFallback);
  // Bool guard: 2 is not a bool → kFallback.
  bad = good;
  store_be32(bad.data() + 8, 2);
  EXPECT_EQ(both(ByteSpan(bad.data(), bad.size()), xid, words),
            ExecStatus::kFallback);
  // Oversized input → the kGuardLen op fires (precheck passes).
  Bytes big = good;
  big.resize(16, 0);
  EXPECT_EQ(both(ByteSpan(big.data(), big.size()), xid, words),
            ExecStatus::kFallback);
  // Undersized input → the capacity precheck fires.
  EXPECT_EQ(both(ByteSpan(good.data(), 8), xid, words),
            ExecStatus::kFallback);
  // Undersized word array → the capacity precheck fires.
  std::vector<std::uint32_t> none;
  EXPECT_EQ(both(ByteSpan(good.data(), good.size()), xid, none),
            ExecStatus::kFallback);
}

// ---- tail padding on recycled (poisoned) buffers -----------------------
//
// kPutBytes must zero the wire pad; kGetBytes must zero the slot tail.
// With pooled arenas recycling buffers, a stub that skips the memset
// leaks stale bytes of a *previous* request onto the wire — so both the
// executor and the compiled stub are run on poisoned memory and the
// padding is checked for literal zero, not just for equality.
TEST(JitPadding, EncodePadZeroedOnPoisonedBuffer) {
  Plan plan;
  plan.is_encode = true;
  plan.out_size = 16;
  plan.words_needed = 4;
  plan.instrs = {ins(POp::kPutBytes, 0, 0, 13)};

  std::vector<std::uint32_t> slots(4);
  std::memset(slots.data(), 0xEE, 16);

  Bytes exec_buf(16, 0xA5);
  ASSERT_EQ(run_plan_encode(plan, slots, 0,
                            MutableByteSpan(exec_buf.data(), 16)),
            ExecStatus::kOk);
  EXPECT_EQ(exec_buf[12], 0xEE);  // last payload byte
  EXPECT_EQ(exec_buf[13], 0x00);  // pad bytes: poison must be gone
  EXPECT_EQ(exec_buf[14], 0x00);
  EXPECT_EQ(exec_buf[15], 0x00);

  auto jit = pe::CompiledPlan::compile(plan);
  if (!pe::jit_supported_host()) return;
  ASSERT_NE(jit, nullptr);
  Bytes jit_buf(16, 0xA5);
  ASSERT_EQ(jit->run_encode(slots, 0, MutableByteSpan(jit_buf.data(), 16)),
            ExecStatus::kOk);
  EXPECT_EQ(jit_buf, exec_buf);
}

TEST(JitPadding, DecodeSlotTailZeroedOnPoisonedWords) {
  Plan plan;
  plan.is_encode = false;
  plan.expected_in = 16;
  plan.words_needed = 4;
  plan.instrs = {ins(POp::kGuardLen, 0, 0, 0, 16),
                 ins(POp::kGetBytes, 0, 0, 13)};

  Bytes in(16, 0x11);

  std::vector<std::uint32_t> exec_words(4, 0x6B6B6B6Bu);
  ASSERT_EQ(run_plan_decode(plan, ByteSpan(in.data(), in.size()), 0,
                            exec_words),
            ExecStatus::kOk);
  const auto* tail = reinterpret_cast<const std::uint8_t*>(exec_words.data());
  EXPECT_EQ(tail[12], 0x11);  // last payload byte
  EXPECT_EQ(tail[13], 0x00);  // slot-tail poison must be gone
  EXPECT_EQ(tail[14], 0x00);
  EXPECT_EQ(tail[15], 0x00);

  auto jit = pe::CompiledPlan::compile(plan);
  if (!pe::jit_supported_host()) return;
  ASSERT_NE(jit, nullptr);
  std::vector<std::uint32_t> jit_words(4, 0x6B6B6B6Bu);
  ASSERT_EQ(jit->run_decode(ByteSpan(in.data(), in.size()), 0, jit_words),
            ExecStatus::kOk);
  EXPECT_EQ(jit_words, exec_words);
}

// ---- fusion pass (host-independent, byte-level) ------------------------

TEST(JitFuse, ConsecutiveConstantsBakeIntoOneTemplateCopy) {
  Plan plan;
  plan.is_encode = true;
  plan.out_size = 16;
  plan.words_needed = 1;
  plan.instrs = {
      ins(POp::kPutConst, 0, 0, 0, 0x11223344u),
      ins(POp::kPutConst, 4, 0, 0, 0x55667788u),
      ins(POp::kPutConst, 8, 0, 0, 0x99AABBCCu),
      ins(POp::kPutWord, 12, 0, 0),
  };
  ji::FusedProgram prog;
  ASSERT_TRUE(ji::fuse_plan(plan, &prog));
  ASSERT_EQ(prog.ops.size(), 2u);
  EXPECT_EQ(prog.ops[0].k, ji::FusedOp::K::kCopyTmpl);
  EXPECT_EQ(prog.ops[0].off, 0u);
  EXPECT_EQ(prog.ops[0].b, 12u);
  EXPECT_EQ(prog.ops[1].k, ji::FusedOp::K::kStoreWord);

  // The template image holds the big-endian constants.
  ASSERT_GE(prog.tmpl.size(), 12u);
  EXPECT_EQ(load_be32(prog.tmpl.data()), 0x11223344u);
  EXPECT_EQ(load_be32(prog.tmpl.data() + 4), 0x55667788u);
  EXPECT_EQ(load_be32(prog.tmpl.data() + 8), 0x99AABBCCu);
}

TEST(JitFuse, ConflictingTemplateBytesRefuseToCompile) {
  // Two constants at the same offset with different values cannot share
  // one baked template — fusion must refuse, not pick one.
  Plan plan;
  plan.is_encode = true;
  plan.out_size = 4;
  plan.words_needed = 0;
  plan.instrs = {
      ins(POp::kPutConst, 0, 0, 0, 1),
      ins(POp::kPutConst, 0, 0, 0, 2),
  };
  ji::FusedProgram prog;
  EXPECT_FALSE(ji::fuse_plan(plan, &prog));
  // Same value at the same offset is fine (idempotent bake).
  plan.instrs[1].imm = 1;
  EXPECT_TRUE(ji::fuse_plan(plan, &prog));
}

TEST(JitFuse, AdjacentBulkCopiesMerge) {
  Plan plan;
  plan.is_encode = true;
  plan.out_size = 24;
  plan.words_needed = 6;
  // Word-aligned 8-byte copies, contiguous in both buffer and slots.
  plan.instrs = {
      ins(POp::kPutBytes, 0, 0, 8),
      ins(POp::kPutBytes, 8, 8, 8),
      ins(POp::kPutBytes, 16, 16, 8),
  };
  ji::FusedProgram prog;
  ASSERT_TRUE(ji::fuse_plan(plan, &prog));
  ASSERT_EQ(prog.ops.size(), 1u);
  EXPECT_EQ(prog.ops[0].k, ji::FusedOp::K::kCopyArgBytes);
  EXPECT_EQ(prog.ops[0].b, 24u);
}

TEST(JitFuse, SmallLoopsUnrollLargeLoopsStay) {
  auto loop_plan = [&](std::uint32_t iters) {
    Plan plan;
    plan.is_encode = true;
    plan.out_size = iters * 4;
    plan.words_needed = iters;
    plan.instrs = {
        ins(POp::kLoop, 0, iters, 1,
            pe::pack_loop_strides({/*off_stride=*/4, /*word_stride=*/1})),
        ins(POp::kPutWord, 0, 0, 0),
    };
    return plan;
  };

  ji::FusedProgram small;
  ASSERT_TRUE(ji::fuse_plan(loop_plan(pe::kJitFullUnrollOps), &small));
  for (const auto& op : small.ops) {
    EXPECT_NE(op.k, ji::FusedOp::K::kLoopBegin) << "small loop kept";
  }

  ji::FusedProgram big;
  ASSERT_TRUE(ji::fuse_plan(loop_plan(pe::kJitFullUnrollOps + 1), &big));
  bool kept = false;
  for (const auto& op : big.ops) kept |= op.k == ji::FusedOp::K::kLoopBegin;
  EXPECT_TRUE(kept) << "big loop should keep a native counter loop";
}

TEST(JitFuse, OutOfBoundsSlotsRefuseToCompile) {
  // A plan whose ops touch slots beyond its own words_needed is the
  // executor-OOB bug shape; the compiler must refuse it outright.
  Plan plan;
  plan.is_encode = true;
  plan.out_size = 8;
  plan.words_needed = 1;
  plan.instrs = {ins(POp::kPutWord, 0, 0, 0), ins(POp::kPutWord, 4, 1, 0)};
  ji::FusedProgram prog;
  EXPECT_FALSE(ji::fuse_plan(plan, &prog));
}

// ---- cross-arch emitters (pure byte generation) ------------------------

TEST(JitEmit, BothBackendsEmitPlausibleCode) {
  Plan plan;
  plan.is_encode = false;
  plan.expected_in = 4020;
  plan.words_needed = 1001;
  plan.instrs = {
      ins(POp::kGuardLen, 0, 0, 0, 4020),
      ins(POp::kGetWord, 0, 0, 0),
      // 500 iterations × 2-op body stays a native loop in both backends.
      ins(POp::kLoop, 0, 500, 2, pe::pack_loop_strides({8, 2})),
      ins(POp::kGetWord, 16, 1, 0),
      ins(POp::kGetBytes, 20, 8, 3),
  };
  ji::FusedProgram prog;
  ASSERT_TRUE(ji::fuse_plan(plan, &prog));

  const auto x86 = ji::emit_x86_64(prog);
  ASSERT_FALSE(x86.empty());
  EXPECT_EQ(x86.back(), 0xC3) << "x86-64 code must end in ret";

  const auto a64 = ji::emit_aarch64(prog);
  ASSERT_FALSE(a64.empty());
  ASSERT_EQ(a64.size() % 4, 0u) << "aarch64 is fixed-width";
  std::uint32_t last;
  std::memcpy(&last, a64.data() + a64.size() - 4, 4);
  EXPECT_EQ(last, 0xD65F03C0u) << "aarch64 code must end in ret";
}

// ---- size accounting ---------------------------------------------------

TEST(JitSize, PackedAndCompiledSizesReported) {
  idl::ProcDef proc;
  proc.name = "sizes";
  proc.number = 2;
  proc.arg_type = idl::t_array_var(idl::t_int(), 256);
  proc.res_type = proc.arg_type;

  core::SpecConfig cfg;
  cfg.arg_counts = {64};
  cfg.res_counts = {64};
  auto iface = core::SpecializedInterface::build(proc, 1, 1, cfg);
  ASSERT_TRUE(iface.is_ok());

  // The packed serialization strips PInstr struct padding, so it is
  // strictly smaller than the in-memory footprint (Table 3 analog).
  EXPECT_GT(iface->packed_code_bytes(), 0u);
  EXPECT_LT(iface->packed_code_bytes(), iface->specialized_code_bytes());

  if (jit_tier_live()) {
    ASSERT_EQ(iface->jit_stub_count(), 4);
    EXPECT_GT(iface->compiled_code_bytes(), 0u);
    EXPECT_GT(iface->encode_call_jit()->template_size(), 0u)
        << "call header constants should bake into the template";
    EXPECT_GT(iface->encode_call_jit()->code_size(), 0u);
  }
}

}  // namespace
}  // namespace tempo
