#include "idl/interp.h"

#include "xdr/primitives.h"

namespace tempo::idl {

using xdr::XdrStream;

bool encode_value(XdrStream& xdrs, const Type& t, const Value& value) {
  switch (t.kind) {
    case Kind::kVoid:
      return true;
    case Kind::kInt:
    case Kind::kEnum: {
      std::int32_t x = value.as<std::int32_t>();
      return xdr::xdr_int(xdrs, x);
    }
    case Kind::kUInt: {
      std::uint32_t x = value.as<std::uint32_t>();
      return xdr::xdr_u_int(xdrs, x);
    }
    case Kind::kHyper: {
      std::int64_t x = value.as<std::int64_t>();
      return xdr::xdr_hyper(xdrs, x);
    }
    case Kind::kUHyper: {
      std::uint64_t x = value.as<std::uint64_t>();
      return xdr::xdr_u_hyper(xdrs, x);
    }
    case Kind::kBool: {
      bool x = value.as<bool>();
      return xdr::xdr_bool(xdrs, x);
    }
    case Kind::kFloat: {
      float x = value.as<float>();
      return xdr::xdr_float(xdrs, x);
    }
    case Kind::kDouble: {
      double x = value.as<double>();
      return xdr::xdr_double(xdrs, x);
    }
    case Kind::kString: {
      std::string s = value.as<std::string>();
      return xdr::xdr_string(xdrs, s, t.bound);
    }
    case Kind::kOpaqueFixed: {
      Bytes b = value.as<Bytes>();
      if (b.size() != t.bound) return false;
      return xdr::xdr_opaque(xdrs, MutableByteSpan(b.data(), b.size()));
    }
    case Kind::kOpaqueVar: {
      Bytes b = value.as<Bytes>();
      return xdr::xdr_bytes(xdrs, b, t.bound);
    }
    case Kind::kArrayFixed: {
      const auto& l = value.as<ValueList>();
      if (l.size() != t.bound) return false;
      for (const auto& e : l) {
        if (!encode_value(xdrs, *t.elem, e)) return false;
      }
      return true;
    }
    case Kind::kArrayVar: {
      const auto& l = value.as<ValueList>();
      if (l.size() > t.bound) return false;
      std::uint32_t count = static_cast<std::uint32_t>(l.size());
      if (!xdr::xdr_u_int(xdrs, count)) return false;
      for (const auto& e : l) {
        if (!encode_value(xdrs, *t.elem, e)) return false;
      }
      return true;
    }
    case Kind::kStruct: {
      const auto& l = value.as<ValueList>();
      if (l.size() != t.fields.size()) return false;
      for (std::size_t i = 0; i < l.size(); ++i) {
        if (!encode_value(xdrs, *t.fields[i].type, l[i])) return false;
      }
      return true;
    }
    case Kind::kOptional: {
      const auto& o = value.as<OptionalValue>();
      bool present = o.payload != nullptr;
      if (!xdr::xdr_bool(xdrs, present)) return false;
      return !present || encode_value(xdrs, *t.elem, *o.payload);
    }
    case Kind::kUnion: {
      const auto& u = value.as<UnionValue>();
      std::int32_t d = u.discriminant;
      if (!xdr::xdr_int(xdrs, d)) return false;
      for (const auto& arm : t.arms) {
        if (arm.discriminant == u.discriminant) {
          if (arm.field.type->kind == Kind::kVoid) return true;
          return u.payload && encode_value(xdrs, *arm.field.type, *u.payload);
        }
      }
      if (!t.default_arm) return false;
      if (t.default_arm->type->kind == Kind::kVoid) return true;
      return u.payload && encode_value(xdrs, *t.default_arm->type, *u.payload);
    }
  }
  return false;
}

bool decode_value(XdrStream& xdrs, const Type& t, Value& out) {
  switch (t.kind) {
    case Kind::kVoid:
      out.v = std::monostate{};
      return true;
    case Kind::kInt:
    case Kind::kEnum: {
      std::int32_t x = 0;
      if (!xdr::xdr_int(xdrs, x)) return false;
      out.v = x;
      return true;
    }
    case Kind::kUInt: {
      std::uint32_t x = 0;
      if (!xdr::xdr_u_int(xdrs, x)) return false;
      out.v = x;
      return true;
    }
    case Kind::kHyper: {
      std::int64_t x = 0;
      if (!xdr::xdr_hyper(xdrs, x)) return false;
      out.v = x;
      return true;
    }
    case Kind::kUHyper: {
      std::uint64_t x = 0;
      if (!xdr::xdr_u_hyper(xdrs, x)) return false;
      out.v = x;
      return true;
    }
    case Kind::kBool: {
      bool x = false;
      if (!xdr::xdr_bool(xdrs, x)) return false;
      out.v = x;
      return true;
    }
    case Kind::kFloat: {
      float x = 0;
      if (!xdr::xdr_float(xdrs, x)) return false;
      out.v = x;
      return true;
    }
    case Kind::kDouble: {
      double x = 0;
      if (!xdr::xdr_double(xdrs, x)) return false;
      out.v = x;
      return true;
    }
    case Kind::kString: {
      std::string s;
      if (!xdr::xdr_string(xdrs, s, t.bound)) return false;
      out.v = std::move(s);
      return true;
    }
    case Kind::kOpaqueFixed: {
      Bytes b(t.bound);
      if (!xdr::xdr_opaque(xdrs, MutableByteSpan(b.data(), b.size()))) {
        return false;
      }
      out.v = std::move(b);
      return true;
    }
    case Kind::kOpaqueVar: {
      Bytes b;
      if (!xdr::xdr_bytes(xdrs, b, t.bound)) return false;
      out.v = std::move(b);
      return true;
    }
    case Kind::kArrayFixed: {
      ValueList l(t.bound);
      for (auto& e : l) {
        if (!decode_value(xdrs, *t.elem, e)) return false;
      }
      out.v = std::move(l);
      return true;
    }
    case Kind::kArrayVar: {
      std::uint32_t count = 0;
      if (!xdr::xdr_u_int(xdrs, count)) return false;
      if (count > t.bound) return false;
      ValueList l(count);
      for (auto& e : l) {
        if (!decode_value(xdrs, *t.elem, e)) return false;
      }
      out.v = std::move(l);
      return true;
    }
    case Kind::kStruct: {
      ValueList l(t.fields.size());
      for (std::size_t i = 0; i < l.size(); ++i) {
        if (!decode_value(xdrs, *t.fields[i].type, l[i])) return false;
      }
      out.v = std::move(l);
      return true;
    }
    case Kind::kOptional: {
      bool present = false;
      if (!xdr::xdr_bool(xdrs, present)) return false;
      OptionalValue o;
      if (present) {
        o.payload = std::make_shared<Value>();
        if (!decode_value(xdrs, *t.elem, *o.payload)) return false;
      }
      out.v = std::move(o);
      return true;
    }
    case Kind::kUnion: {
      std::int32_t d = 0;
      if (!xdr::xdr_int(xdrs, d)) return false;
      UnionValue u;
      u.discriminant = d;
      const Type* arm_type = nullptr;
      for (const auto& arm : t.arms) {
        if (arm.discriminant == d) {
          arm_type = arm.field.type.get();
          break;
        }
      }
      if (!arm_type) {
        if (!t.default_arm) return false;
        arm_type = t.default_arm->type.get();
      }
      if (arm_type->kind != Kind::kVoid) {
        u.payload = std::make_shared<Value>();
        if (!decode_value(xdrs, *arm_type, *u.payload)) return false;
      }
      out.v = std::move(u);
      return true;
    }
  }
  return false;
}

}  // namespace tempo::idl
