// Concurrent server throughput: the paper's echo-array workload served
// by the ServerRuntime worker pool, with every call's residual plans
// resolved through the process-wide SpecCache.
//
// What is measured:
//   * aggregate calls/sec at 1, 4 and 16 concurrent clients, for a
//     1-worker and a 4-worker server — the scaling the dispatch loop
//     buys once specialization is amortized through the cache;
//   * the SpecCache hit rate across the whole run (every call resolves
//     its plan through the cache; only the first call of each distinct
//     array shape builds).
//
// Each handler invocation dwells for a configurable simulated backend
// latency (default 200us, --dwell-us to change, 0 to disable).  That
// models the database/disk wait a real RPC server overlaps across its
// worker pool; with --dwell-us=0 on a single-core host the workload is
// pure CPU and worker scaling flattens out.
//
// Usage: bench_concurrent [--duration-ms N] [--dwell-us N] [--json PATH]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "core/service.h"
#include "core/spec_cache.h"
#include "core/spec_client.h"
#include "net/udp.h"
#include "rpc/svc.h"

namespace tempo::bench {
namespace {

struct Point {
  int workers = 0;
  int clients = 0;
  double calls_per_sec = 0.0;
};

struct Options {
  int duration_ms = 400;
  int dwell_us = 200;
  std::string json_path;  // empty = no JSON
};

constexpr std::uint32_t kArraySize = 100;

// One measurement: `clients` threads in closed loop against a runtime
// with `workers` workers, all sharing `cache`.
Point run_point(core::SpecCache& cache, int workers, int clients,
                const Options& opt) {
  rpc::SvcRegistry reg;
  core::CachedSpecService service(
      cache, echo_proc(), kProg, kVers,
      [&](std::span<const std::uint32_t>, std::span<const std::uint32_t> args,
          std::span<std::uint32_t> results) {
        std::copy(args.begin(), args.end(), results.begin());
        if (opt.dwell_us > 0) {
          std::this_thread::sleep_for(std::chrono::microseconds(opt.dwell_us));
        }
        return true;
      });
  service.install(reg);

  rpc::ServerRuntimeConfig cfg;
  cfg.workers = workers;
  cfg.enable_tcp = false;
  rpc::ServerRuntime runtime(reg, cfg);
  if (!runtime.start().is_ok()) {
    std::fprintf(stderr, "cannot start runtime\n");
    std::exit(1);
  }

  std::atomic<bool> go{false}, stop{false};
  std::atomic<std::int64_t> total_calls{0};
  std::atomic<int> errors{0};

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&] {
      core::SpecializedInterface iface = make_iface(kArraySize);
      net::UdpSocket sock;
      if (!sock.ok()) {
        ++errors;
        return;
      }
      core::SpecializedClient client(sock, runtime.udp_addr(), iface);
      std::vector<std::uint32_t> args(kArraySize), results(kArraySize);
      Rng rng(static_cast<std::uint64_t>(kArraySize));
      for (auto& a : args) a = rng.next_u32();
      while (!go.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      std::int64_t mine = 0;
      while (!stop.load(std::memory_order_acquire)) {
        if (!client.call(args, results).is_ok() || results != args) {
          ++errors;
          break;
        }
        ++mine;
      }
      total_calls += mine;
    });
  }

  go.store(true, std::memory_order_release);
  const auto t0 = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(std::chrono::milliseconds(opt.duration_ms));
  stop.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  runtime.stop();

  if (errors.load() != 0) {
    std::fprintf(stderr, "client errors at workers=%d clients=%d\n", workers,
                 clients);
    std::exit(1);
  }
  Point p;
  p.workers = workers;
  p.clients = clients;
  p.calls_per_sec = static_cast<double>(total_calls.load()) / secs;
  return p;
}

void run(const Options& opt) {
  core::SpecCache cache(64);

  const std::vector<int> worker_counts = {1, 4};
  const std::vector<int> client_counts = {1, 4, 16};

  std::printf(
      "bench_concurrent: echo-array n=%u over loopback UDP, "
      "dwell=%dus, %dms per point\n\n",
      kArraySize, opt.dwell_us, opt.duration_ms);
  std::printf("%-10s %-10s %14s\n", "workers", "clients", "calls/sec");

  std::vector<Point> points;
  for (int w : worker_counts) {
    for (int c : client_counts) {
      Point p = run_point(cache, w, c, opt);
      std::printf("%-10d %-10d %14.0f\n", p.workers, p.clients,
                  p.calls_per_sec);
      points.push_back(p);
    }
  }

  const auto cstats = cache.stats();
  const double total =
      static_cast<double>(cstats.hits) + static_cast<double>(cstats.misses);
  const double hit_rate =
      total > 0 ? static_cast<double>(cstats.hits) / total : 0.0;
  std::printf("\nSpecCache: %lld hits, %lld misses, %lld evictions "
              "(hit rate %.4f)\n",
              static_cast<long long>(cstats.hits),
              static_cast<long long>(cstats.misses),
              static_cast<long long>(cstats.evictions), hit_rate);

  // Scaling self-check at the most parallel client count.
  auto rate_at = [&](int w, int c) {
    for (const auto& p : points) {
      if (p.workers == w && p.clients == c) return p.calls_per_sec;
    }
    return 0.0;
  };
  const double r1 = rate_at(1, 16);
  const double r4 = rate_at(4, 16);
  std::printf("scaling 1->4 workers @16 clients: %.0f -> %.0f (%.2fx) %s\n",
              r1, r4, r1 > 0 ? r4 / r1 : 0.0, r4 > r1 ? "PASS" : "FAIL");
  std::printf("cache hit rate >= 0.90: %s\n",
              hit_rate >= 0.90 ? "PASS" : "FAIL");

  if (!opt.json_path.empty()) {
    std::FILE* f = opt.json_path == "-"
                       ? stdout
                       : std::fopen(opt.json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", opt.json_path.c_str());
      std::exit(1);
    }
    std::fprintf(f,
                 "{\n  \"benchmark\": \"concurrent\",\n"
                 "  \"array_size\": %u,\n  \"dwell_us\": %d,\n"
                 "  \"duration_ms\": %d,\n  \"points\": [\n",
                 kArraySize, opt.dwell_us, opt.duration_ms);
    for (std::size_t i = 0; i < points.size(); ++i) {
      std::fprintf(f,
                   "    {\"workers\": %d, \"clients\": %d, "
                   "\"calls_per_sec\": %.1f}%s\n",
                   points[i].workers, points[i].clients,
                   points[i].calls_per_sec,
                   i + 1 < points.size() ? "," : "");
    }
    std::fprintf(f,
                 "  ],\n  \"cache\": {\"hits\": %lld, \"misses\": %lld, "
                 "\"evictions\": %lld, \"hit_rate\": %.6f}\n}\n",
                 static_cast<long long>(cstats.hits),
                 static_cast<long long>(cstats.misses),
                 static_cast<long long>(cstats.evictions), hit_rate);
    if (f != stdout) std::fclose(f);
  }
}

}  // namespace
}  // namespace tempo::bench

int main(int argc, char** argv) {
  tempo::bench::Options opt;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--duration-ms") == 0 && i + 1 < argc) {
      opt.duration_ms = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--dwell-us") == 0 && i + 1 < argc) {
      opt.dwell_us = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      opt.json_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--duration-ms N] [--dwell-us N] "
                   "[--json PATH|-]\n",
                   argv[0]);
      return 2;
    }
  }
  tempo::bench::run(opt);
  return 0;
}
