#include "common/metrics.h"

#include <chrono>
#include <cstdlib>
#include <cstring>

namespace tempo::common {

std::int64_t monotonic_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool metrics_enabled() {
  static const bool enabled = [] {
    const char* env = std::getenv("TEMPO_METRICS");
    if (env == nullptr) return true;
    return std::strcmp(env, "0") != 0 && std::strcmp(env, "off") != 0;
  }();
  return enabled;
}

// ---------------------------------------------------------------------------
// HistogramSnapshot

std::uint64_t HistogramSnapshot::total() const {
  std::uint64_t t = 0;
  for (std::uint64_t c : counts) t += c;
  return t;
}

std::int64_t HistogramSnapshot::quantile(double q) const {
  const std::uint64_t n = total();
  if (n == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  // Rank of the target sample, 1-based; q=0 means the first sample.
  std::uint64_t rank = static_cast<std::uint64_t>(q * static_cast<double>(n));
  if (rank < 1) rank = 1;
  if (rank > n) rank = n;
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    cum += counts[i];
    if (cum >= rank) {
      const std::uint64_t mid = LatencyHistogram::bucket_floor(i) +
                                LatencyHistogram::bucket_width(i) / 2;
      const auto v = static_cast<std::int64_t>(mid);
      return max > 0 && v > max ? max : v;
    }
  }
  return max;
}

double HistogramSnapshot::mean() const {
  const std::uint64_t n = total();
  if (n == 0) return 0;
  double sum = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const double mid =
        static_cast<double>(LatencyHistogram::bucket_floor(i)) +
        static_cast<double>(LatencyHistogram::bucket_width(i)) / 2.0;
    sum += mid * static_cast<double>(counts[i]);
  }
  return sum / static_cast<double>(n);
}

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
  if (other.counts.empty()) {
    if (other.max > max) max = other.max;
    return;
  }
  if (counts.empty()) {
    counts = other.counts;
  } else {
    if (counts.size() < other.counts.size()) {
      counts.resize(other.counts.size(), 0);
    }
    for (std::size_t i = 0; i < other.counts.size(); ++i) {
      counts[i] += other.counts[i];
    }
  }
  if (other.max > max) max = other.max;
}

bool HistogramSnapshot::operator==(const HistogramSnapshot& other) const {
  if (max != other.max) return false;
  const std::size_t n = counts.size() > other.counts.size()
                            ? counts.size()
                            : other.counts.size();
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t a = i < counts.size() ? counts[i] : 0;
    const std::uint64_t b = i < other.counts.size() ? other.counts[i] : 0;
    if (a != b) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// LatencyHistogram

HistogramSnapshot LatencyHistogram::snapshot() const {
  HistogramSnapshot s;
  s.counts.resize(kBuckets, 0);
  bool any = false;
  for (unsigned i = 0; i < kBuckets; ++i) {
    s.counts[i] = counts_[i].load(std::memory_order_relaxed);
    any |= s.counts[i] != 0;
  }
  if (!any) s.counts.clear();
  s.max = max_.load(std::memory_order_relaxed);
  return s;
}

std::uint64_t LatencyHistogram::total() const {
  std::uint64_t t = 0;
  for (unsigned i = 0; i < kBuckets; ++i) {
    t += counts_[i].load(std::memory_order_relaxed);
  }
  return t;
}

void LatencyHistogram::reset() {
  for (unsigned i = 0; i < kBuckets; ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
  max_.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// MetricsSnapshot

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  for (const auto& [k, v] : other.counters) counters[k] += v;
  for (const auto& [k, v] : other.gauges) gauges[k] = v;
  for (const auto& [k, h] : other.histograms) histograms[k].merge(h);
}

std::string MetricsSnapshot::to_json() const {
  std::string out;
  out.reserve(1024);
  char buf[256];
  auto emit = [&](const char* fmt, auto... args) {
    std::snprintf(buf, sizeof(buf), fmt, args...);
    out += buf;
  };
  out += "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [k, v] : counters) {
    emit("%s\n    \"%s\": %lld", first ? "" : ",", k.c_str(),
         static_cast<long long>(v));
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [k, v] : gauges) {
    emit("%s\n    \"%s\": %lld", first ? "" : ",", k.c_str(),
         static_cast<long long>(v));
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [k, h] : histograms) {
    emit("%s\n    \"%s\": {\"count\": %llu, \"max\": %lld, "
         "\"mean\": %.1f, \"p50\": %lld, \"p90\": %lld, \"p99\": %lld, "
         "\"p999\": %lld}",
         first ? "" : ",", k.c_str(),
         static_cast<unsigned long long>(h.total()),
         static_cast<long long>(h.max), h.mean(),
         static_cast<long long>(h.p50()), static_cast<long long>(h.p90()),
         static_cast<long long>(h.p99()), static_cast<long long>(h.p999()));
    first = false;
  }
  out += first ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

void MetricsSnapshot::print(std::FILE* f) const {
  std::fprintf(f, "-- metrics snapshot --\n");
  for (const auto& [k, v] : counters) {
    std::fprintf(f, "%-32s %12lld\n", k.c_str(),
                 static_cast<long long>(v));
  }
  for (const auto& [k, v] : gauges) {
    std::fprintf(f, "%-32s %12lld (gauge)\n", k.c_str(),
                 static_cast<long long>(v));
  }
  for (const auto& [k, h] : histograms) {
    if (h.total() == 0) continue;
    std::fprintf(f,
                 "%-32s count=%llu p50=%lldns p90=%lldns p99=%lldns "
                 "p999=%lldns max=%lldns\n",
                 k.c_str(), static_cast<unsigned long long>(h.total()),
                 static_cast<long long>(h.p50()),
                 static_cast<long long>(h.p90()),
                 static_cast<long long>(h.p99()),
                 static_cast<long long>(h.p999()),
                 static_cast<long long>(h.max));
  }
}

// ---------------------------------------------------------------------------
// MetricsRegistry

Counter& MetricsRegistry::counter(const std::string& name,
                                  std::size_t shard) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[{name, shard}];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name, std::size_t shard) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[{name, shard}];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

LatencyHistogram& MetricsRegistry::histogram(const std::string& name,
                                             std::size_t shard) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[{name, shard}];
  if (!slot) slot = std::make_unique<LatencyHistogram>();
  return *slot;
}

MetricsRegistry::SourceHandle MetricsRegistry::add_source(Source fn) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t id = next_source_id_++;
  sources_.emplace(id, std::move(fn));
  return SourceHandle(this, id);
}

void MetricsRegistry::remove_source(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  sources_.erase(id);
}

void MetricsRegistry::SourceHandle::reset() {
  if (reg_ != nullptr) {
    reg_->remove_source(id_);
    reg_ = nullptr;
  }
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [key, c] : counters_) {
    snap.add_counter(key.first, c->value());
  }
  for (const auto& [key, g] : gauges_) {
    // Shards of the same gauge sum (pool sizes, queue depths).
    auto [it, fresh] = snap.gauges.emplace(key.first, g->value());
    if (!fresh) it->second += g->value();
  }
  for (const auto& [key, h] : histograms_) {
    snap.merge_histogram(key.first, h->snapshot());
  }
  for (const auto& [id, fn] : sources_) fn(snap);
  return snap;
}

// ---------------------------------------------------------------------------
// Global registry + on-exit dump

namespace {

void dump_at_exit() {
  const char* path = std::getenv("TEMPO_METRICS_DUMP");
  if (path == nullptr || *path == '\0') return;
  std::FILE* f =
      std::strcmp(path, "-") == 0 ? stdout : std::fopen(path, "w");
  if (f == nullptr) return;
  dump_metrics_json(f);
  if (f != stdout) std::fclose(f);
}

}  // namespace

MetricsRegistry& metrics() {
  static MetricsRegistry* reg = [] {
    // Leak deliberately: instruments are referenced from atexit
    // handlers and from components destroyed after main() returns.
    auto* r = new MetricsRegistry();
    if (std::getenv("TEMPO_METRICS_DUMP") != nullptr) {
      std::atexit(dump_at_exit);
    }
    return r;
  }();
  return *reg;
}

void dump_metrics_json(std::FILE* f) {
  const std::string json = metrics().snapshot().to_json();
  std::fwrite(json.data(), 1, json.size(), f);
}

}  // namespace tempo::common
