#include "pe/verify.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>

#include "common/bytes.h"

namespace tempo::pe {

const char* verify_code_name(VerifyCode code) {
  switch (code) {
    case VerifyCode::kDirectionMixed: return "direction-mixed";
    case VerifyCode::kTruncatedLoopBody: return "truncated-loop-body";
    case VerifyCode::kNestedLoop: return "nested-loop";
    case VerifyCode::kOutOfBoundsOut: return "out-of-bounds-out";
    case VerifyCode::kOutOfBoundsIn: return "out-of-bounds-in";
    case VerifyCode::kSlotOverflow: return "slot-overflow";
    case VerifyCode::kStrideOverflow: return "stride-overflow";
    case VerifyCode::kMissingLenContract: return "missing-len-contract";
    case VerifyCode::kGuardLenMismatch: return "guard-len-mismatch";
    case VerifyCode::kIncompleteOutput: return "incomplete-output";
  }
  return "unknown";
}

std::string VerifyIssue::to_string() const {
  return std::string(verify_code_name(code)) + " @instr " +
         std::to_string(instr_index) + ": " + detail;
}

std::string VerifyResult::to_string() const {
  if (ok()) return "verified";
  std::string out;
  for (const VerifyIssue& issue : issues) {
    if (!out.empty()) out += "; ";
    out += issue.to_string();
  }
  return out;
}

namespace {

// Half-open byte range [lo, hi); empty when lo == hi.
struct Interval {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
};

// Per-iteration (closed-form) footprint of one instruction.  All values
// are iteration-0 positions; the loop context adds (iters-1)*stride to
// get the final-iteration end.  A field is "unused" when its size is 0.
struct OpAccess {
  bool is_encode_op = false;
  bool is_decode_op = false;
  std::uint64_t out_off = 0, out_len = 0;   // output bytes written
  std::uint64_t in_off = 0, in_len = 0;     // input bytes read
  std::uint64_t slot_off = 0, slot_len = 0; // word-array bytes touched
  bool slot_strided = false;  // slot_off advances by word_stride*4/iter
};

// What one instruction touches, mirroring apply_encode / apply_decode
// in plan.cpp byte for byte.  kLoop and unknown ops return false.
bool op_access(const PInstr& ins, OpAccess* a) {
  *a = OpAccess{};
  switch (ins.op) {
    case POp::kPutConst:
    case POp::kPutXid:
      a->is_encode_op = true;
      a->out_off = ins.off;
      a->out_len = 4;
      return true;
    case POp::kPutWord:
      a->is_encode_op = true;
      a->out_off = ins.off;
      a->out_len = 4;
      a->slot_off = std::uint64_t{ins.a} * 4;
      a->slot_len = 4;
      a->slot_strided = true;
      return true;
    case POp::kPutBytes:
      // Reads ins.b bytes from the word array at BYTE offset ins.a,
      // writes pad4(ins.b) to the output (pad tail zeroed).
      a->is_encode_op = true;
      a->out_off = ins.off;
      a->out_len = xdr_pad4(ins.b);
      a->slot_off = ins.a;
      a->slot_len = ins.b;
      a->slot_strided = true;
      return true;
    case POp::kGetWord:
      a->is_decode_op = true;
      a->in_off = ins.off;
      a->in_len = 4;
      a->slot_off = std::uint64_t{ins.a} * 4;
      a->slot_len = 4;
      a->slot_strided = true;
      return true;
    case POp::kSetWordConst:
      a->is_decode_op = true;
      a->slot_off = std::uint64_t{ins.a} * 4;
      a->slot_len = 4;
      a->slot_strided = true;
      return true;
    case POp::kGetBytes:
      // memsets pad4(ins.b) slot bytes at BYTE offset ins.a, then
      // copies ins.b bytes read from the input.
      a->is_decode_op = true;
      a->in_off = ins.off;
      a->in_len = ins.b;
      a->slot_off = ins.a;
      a->slot_len = xdr_pad4(ins.b);
      a->slot_strided = true;
      return true;
    case POp::kGuardConstEq:
    case POp::kGuardXid:
    case POp::kGuardBool:
      a->is_decode_op = true;
      a->in_off = ins.off;
      a->in_len = 4;
      return true;
    case POp::kGuardLen:
      a->is_decode_op = true;  // compares in.size(); touches no bytes
      return true;
    case POp::kLoop:
      return false;
  }
  return false;
}

std::string range_detail(const char* what, std::uint64_t end,
                         std::uint64_t bound) {
  return std::string(what) + " access ends at byte " + std::to_string(end) +
         " but the declared bound is " + std::to_string(bound);
}

// Sorted-merge of intervals in place; empties dropped.
void merge_intervals(std::vector<Interval>* v) {
  std::sort(v->begin(), v->end(),
            [](const Interval& a, const Interval& b) { return a.lo < b.lo; });
  std::vector<Interval> out;
  for (const Interval& iv : *v) {
    if (iv.lo >= iv.hi) continue;
    if (!out.empty() && iv.lo <= out.back().hi) {
      out.back().hi = std::max(out.back().hi, iv.hi);
    } else {
      out.push_back(iv);
    }
  }
  *v = std::move(out);
}

// Cap on write-interval expansion for loops whose per-iteration
// coverage is not contiguous: beyond this the verifier records
// coverage as inexact instead of rejecting (bounds stay exact).
constexpr std::uint64_t kCoverageExpandLimit = 4096;

}  // namespace

VerifyResult verify_plan(const Plan& plan) {
  VerifyResult r;
  VerifyFacts& f = r.facts;
  f.coverage_exact = plan.is_encode;
  const std::uint64_t out_size = plan.out_size;
  const std::uint64_t in_size = plan.expected_in;
  const std::uint64_t word_bytes = std::uint64_t{plan.words_needed} * 4;

  auto reject = [&](VerifyCode code, std::size_t idx, std::string detail) {
    r.issues.push_back(VerifyIssue{code, idx, std::move(detail)});
  };

  std::vector<Interval> writes;  // encode output coverage

  // One instruction under a loop context: `iters` >= 1 executions with
  // byte displacement it*off_stride and slot displacement
  // it*word_stride (both 0 outside loops).  All arithmetic is 64-bit;
  // the final-iteration end is the maximum because strides are
  // non-negative, so one closed-form check covers every iteration.
  auto check_op = [&](const PInstr& ins, std::size_t idx, std::uint64_t iters,
                      std::uint64_t off_stride, std::uint64_t word_stride) {
    OpAccess a;
    if (!op_access(ins, &a)) return;  // loop headers handled by the walk
    if (a.is_encode_op != plan.is_encode) {
      reject(VerifyCode::kDirectionMixed, idx,
             plan.is_encode ? "decode op in an encode plan"
                            : "encode op in a decode plan");
      return;
    }
    const std::uint64_t max_doff = (iters - 1) * off_stride;
    const std::uint64_t max_dslots = (iters - 1) * word_stride;
    if (a.out_len != 0) {
      const std::uint64_t end = a.out_off + max_doff + a.out_len;
      if (end > out_size) {
        reject(VerifyCode::kOutOfBoundsOut, idx,
               range_detail("output write", end, out_size));
      }
      f.out_end = std::max(f.out_end, end);
    }
    if (a.in_len != 0) {
      f.reads_input = true;
      if (in_size == 0) {
        reject(VerifyCode::kMissingLenContract, idx,
               "decode plan reads the input buffer but declares "
               "expected_in == 0, so the executor performs no length "
               "precheck");
      } else {
        const std::uint64_t end = a.in_off + max_doff + a.in_len;
        if (end > in_size) {
          reject(VerifyCode::kOutOfBoundsIn, idx,
                 range_detail("input read", end, in_size));
        }
        f.in_end = std::max(f.in_end, end);
      }
    }
    if (a.slot_len != 0) {
      const std::uint64_t end =
          a.slot_off + (a.slot_strided ? max_dslots * 4 : 0) + a.slot_len;
      if (end > word_bytes) {
        reject(VerifyCode::kSlotOverflow, idx,
               range_detail("word-slot", end, word_bytes) +
                   " (words_needed = " + std::to_string(plan.words_needed) +
                   ")");
      }
      f.slot_end = std::max(f.slot_end, (end + 3) / 4);
    }
    if (ins.op == POp::kGuardLen) {
      f.has_len_guard = true;
      if (ins.imm != plan.expected_in) {
        reject(VerifyCode::kGuardLenMismatch, idx,
               "kGuardLen checks in.size() == " + std::to_string(ins.imm) +
                   " but the plan declares expected_in = " +
                   std::to_string(plan.expected_in));
      }
    }
    // Record write coverage (encode only; bounds issues already noted).
    if (plan.is_encode && a.out_len != 0 && f.coverage_exact) {
      if (iters == 1 || off_stride == 0) {
        writes.push_back({a.out_off, a.out_off + a.out_len});
      } else if (a.out_len >= off_stride) {
        // Each iteration's write overlaps or abuts the next: the union
        // across all iterations is one contiguous interval.
        writes.push_back({a.out_off, a.out_off + max_doff + a.out_len});
      } else if (iters <= kCoverageExpandLimit) {
        for (std::uint64_t it = 0; it < iters; ++it) {
          const std::uint64_t lo = a.out_off + it * off_stride;
          writes.push_back({lo, lo + a.out_len});
        }
      } else {
        f.coverage_exact = false;
      }
    }
  };

  const std::size_t n = plan.instrs.size();
  std::size_t i = 0;
  while (i < n) {
    const PInstr& ins = plan.instrs[i];
    if (ins.op != POp::kLoop) {
      check_op(ins, i, /*iters=*/1, 0, 0);
      ++i;
      continue;
    }
    const std::uint64_t iters = ins.a;
    const std::uint64_t body = ins.b;
    if (i + 1 + body > n) {
      reject(VerifyCode::kTruncatedLoopBody, i,
             "loop declares a " + std::to_string(body) +
                 "-instruction body but only " + std::to_string(n - i - 1) +
                 " instructions remain; the executor would walk past the "
                 "instruction stream");
      break;  // the stream shape is broken; nothing past here is meaningful
    }
    const LoopStrides s = unpack_loop_strides(ins.imm);
    ++f.loop_count;
    f.max_loop_iters = std::max(f.max_loop_iters, iters);
    bool nested = false;
    for (std::uint64_t j = 0; j < body; ++j) {
      if (plan.instrs[i + 1 + j].op == POp::kLoop) {
        reject(VerifyCode::kNestedLoop, i + 1 + j,
               "kLoop inside a kLoop body; the executor interprets the "
               "stream flat and would misexecute it");
        nested = true;
      }
    }
    if (!nested && iters > 0) {
      // The executor computes it*stride in uint32; a displacement that
      // does not fit 32 bits would silently wrap there.  (Any such plan
      // also fails a bounds check, but the distinct diagnostic names
      // the actual defect.)
      const std::uint64_t max_doff = (iters - 1) * s.off_stride;
      const std::uint64_t max_dwbytes = (iters - 1) * s.word_stride * 4;
      if (max_doff > 0xFFFFFFFFull || max_dwbytes > 0xFFFFFFFFull) {
        reject(VerifyCode::kStrideOverflow, i,
               "loop displacement reaches " +
                   std::to_string(std::max(max_doff, max_dwbytes)) +
                   " bytes on the final iteration, past the executor's "
                   "32-bit displacement arithmetic");
      } else {
        for (std::uint64_t j = 0; j < body; ++j) {
          check_op(plan.instrs[i + 1 + j], i + 1 + j, iters, s.off_stride,
                   s.word_stride);
        }
      }
    }
    i += 1 + static_cast<std::size_t>(body);
  }

  // Output completeness: an admitted encode plan must write every byte
  // of [0, out_size) or unwritten caller-buffer bytes ship on the wire.
  if (plan.is_encode && f.coverage_exact && r.issues.empty()) {
    merge_intervals(&writes);
    std::uint64_t covered_to = 0;
    for (const Interval& iv : writes) {
      if (iv.lo > covered_to) break;
      covered_to = iv.hi;
    }
    if (covered_to < out_size) {
      reject(VerifyCode::kIncompleteOutput, n == 0 ? 0 : n - 1,
             "encode plan declares out_size = " + std::to_string(out_size) +
                 " but provably never writes byte " +
                 std::to_string(covered_to) +
                 "; the gap would leak uninitialized buffer bytes");
    }
  }

  return r;
}

// ---------------------------------------------------------------------------
// TEMPO_PLAN_VERIFY knob + admission accounting
// ---------------------------------------------------------------------------

namespace {

std::atomic<int> g_mode_override{-1};
std::atomic<std::int64_t> g_verify_rejects{0};

int verify_mode_from_env() {
  static const int mode = [] {
    int v = 1;  // default: verify at spec build
    if (const char* e = std::getenv("TEMPO_PLAN_VERIFY")) {
      if (e[0] == '0' && e[1] == '\0') v = 0;
      if (e[0] == '1' && e[1] == '\0') v = 1;
      if (e[0] == '2' && e[1] == '\0') v = 2;
    }
#ifndef NDEBUG
    // Debug builds keep the admission pass on regardless of the knob.
    if (v < 1) v = 1;
#endif
    return v;
  }();
  return mode;
}

}  // namespace

VerifyMode verify_mode() {
  const int o = g_mode_override.load(std::memory_order_relaxed);
  return static_cast<VerifyMode>(o >= 0 ? o : verify_mode_from_env());
}

void set_verify_mode(VerifyMode mode) {
  g_mode_override.store(static_cast<int>(mode), std::memory_order_relaxed);
}

std::int64_t verify_reject_count() {
  return g_verify_rejects.load(std::memory_order_relaxed);
}

Status verify_admit(const Plan& plan, const char* what) {
  if (verify_mode() == VerifyMode::kOff) return Status::ok();
  const VerifyResult res = verify_plan(plan);
  if (res.ok()) return Status::ok();
  g_verify_rejects.fetch_add(1, std::memory_order_relaxed);
  return out_of_range("plan verification rejected " + std::string(what) +
                      ": " + res.to_string());
}

}  // namespace tempo::pe
