// Server-side specialization: a SvcRegistry handler that decodes
// arguments and encodes results through residual plans, with the generic
// type-interpreter path as the guarded fallback.
//
// The plan fast path engages when the transport exposes its buffer
// (XDR_INLINE succeeds — true for the UDP XdrMem path, not for TCP
// record streams) and the request length matches the specialization;
// otherwise the request is served by the generic path.  Either way the
// application logic sees flattened words.
#pragma once

#include <cstdint>
#include <functional>

#include "common/status.h"
#include "core/stubspec.h"
#include "rpc/svc.h"

namespace tempo::core {

// Application logic on flattened slots: read `args`, fill `results`
// (pre-sized to iface.res_slots()).  Return false for a server fault.
using WordHandler = std::function<bool(std::span<const std::uint32_t> args,
                                       std::span<std::uint32_t> results)>;

struct SpecServiceStats {
  std::int64_t fast_path = 0;
  std::int64_t generic_path = 0;
};

// Registers `handler` for the interface; requests are served through the
// residual plans when possible.  The returned stats object is owned by
// the registry entry (lives as long as the registry).
class SpecializedService {
 public:
  SpecializedService(const SpecializedInterface& iface, WordHandler handler)
      : iface_(iface), handler_(std::move(handler)) {}

  void install(rpc::SvcRegistry& registry);

  const SpecServiceStats& stats() const { return stats_; }

 private:
  bool handle(xdr::XdrStream& in, xdr::XdrStream& out);
  bool handle_generic(xdr::XdrStream& in, xdr::XdrStream& out);

  const SpecializedInterface& iface_;
  WordHandler handler_;
  SpecServiceStats stats_;
};

}  // namespace tempo::core
