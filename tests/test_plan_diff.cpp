// Differential testing for the three execution tiers:
//   A. the layered C++ XDR stack (generic),
//   B. the plan executor (src/pe/plan.cpp),
//   C. the native compiled stubs (src/pe/compile.cpp).
//
// Randomized plan-eligible interfaces are pushed through all three on
// the same inputs — including poisoned output buffers, stale XIDs,
// truncated / extended / bit-flipped payloads — and every byte and
// every ExecStatus must agree.  Divergences this harness has flushed
// out are pinned as named regression tests at the bottom so they stay
// fixed.
#include <gtest/gtest.h>

#include <cstring>

#include "common/rng.h"
#include "core/stubspec.h"
#include "idl/interp.h"
#include "pe/compile.h"
#include "pe/layout.h"
#include "rpc/rpc_msg.h"
#include "xdr/xdrmem.h"

namespace tempo {
namespace {

constexpr std::uint32_t kProg = 0x20000DD1;
constexpr std::uint32_t kVers = 3;
constexpr std::uint32_t kProcNum = 9;
constexpr std::uint32_t kPoisonWord = 0x6B6B6B6Bu;
constexpr std::uint8_t kPoisonByte = 0xA5;

// ---- random plan-eligible shapes --------------------------------------
//
// The specializer only residualizes types whose layout is static once
// the variable-array counts are pinned: scalars, fixed opaques, structs,
// fixed arrays, and variable arrays whose *element* layout is fixed.
// Strings / optionals / unions stay on the generic path, and variable
// arrays must not nest under another array (their count would multiply).
idl::TypePtr random_eligible_type(Rng& rng, int depth, bool allow_var) {
  using namespace idl;
  // Leaf-only once nested two deep, to keep shapes bounded.
  const std::uint32_t kinds = depth >= 2 ? 8u : (allow_var ? 11u : 10u);
  switch (rng.next_below(kinds)) {
    case 0: return t_int();
    case 1: return t_uint();
    case 2: return t_bool();
    case 3: return t_hyper();
    case 4: return t_uhyper();
    case 5: return t_float();
    case 6: return t_double();
    case 7:
      // 1..17 exercises every pad4 tail residue.
      return t_opaque_fixed(1 + rng.next_below(17));
    case 8: {
      std::vector<Field> fields;
      const std::uint32_t n = 1 + rng.next_below(4);
      for (std::uint32_t i = 0; i < n; ++i) {
        fields.push_back({"f" + std::to_string(i),
                          random_eligible_type(rng, depth + 1, allow_var)});
      }
      return t_struct("s" + std::to_string(depth), std::move(fields));
    }
    case 9:
      return t_array_fixed(random_eligible_type(rng, depth + 1, false),
                           1 + rng.next_below(6));
    default:
      // Bounds past ~85 push iterations*body over the JIT's full-unroll
      // threshold, so kept loops get native coverage too.
      return t_array_var(random_eligible_type(rng, depth + 1, false),
                         1 + rng.next_below(300));
  }
}

// ---- tier A: the layered C++ path -------------------------------------

Bytes cpp_encode_call(std::uint32_t xid, const idl::Type& arg_type,
                      const idl::Value& arg) {
  Bytes buf(200000);
  xdr::XdrMem x(MutableByteSpan(buf.data(), buf.size()), xdr::XdrOp::kEncode);
  rpc::CallHeader hdr;
  hdr.xid = xid;
  hdr.prog = kProg;
  hdr.vers = kVers;
  hdr.proc = kProcNum;
  EXPECT_TRUE(rpc::xdr_call_header(x, hdr));
  EXPECT_TRUE(idl::encode_value(x, arg_type, arg));
  buf.resize(x.getpos());
  return buf;
}

Bytes cpp_encode_reply(std::uint32_t xid, const idl::Type& res_type,
                       const idl::Value& res) {
  Bytes buf(200000);
  xdr::XdrMem x(MutableByteSpan(buf.data(), buf.size()), xdr::XdrOp::kEncode);
  rpc::ReplyHeader hdr;
  hdr.xid = xid;
  EXPECT_TRUE(rpc::xdr_reply_header(x, hdr));
  EXPECT_TRUE(idl::encode_value(x, res_type, res));
  buf.resize(x.getpos());
  return buf;
}

// ---- executor-vs-stub lockstep ----------------------------------------

// Runs a decode plan and (when compiled) its native stub on identically
// poisoned word arrays sized EXACTLY words_needed — any out-of-bounds
// slot write trips ASan, any divergence in status or partial writes
// (guard-failure paths included) fails here.  Returns the agreed status
// and the executor's words.
pe::ExecStatus diff_decode(const pe::Plan& plan, const pe::CompiledPlan* jit,
                           ByteSpan in, std::uint32_t xid,
                           std::vector<std::uint32_t>* words_out) {
  std::vector<std::uint32_t> wc(plan.words_needed, kPoisonWord);
  const pe::ExecStatus sc = run_plan_decode(plan, in, xid, wc);
  if (jit != nullptr) {
    std::vector<std::uint32_t> wj(plan.words_needed, kPoisonWord);
    const pe::ExecStatus sj = jit->run_decode(in, xid, wj);
    EXPECT_EQ(static_cast<int>(sc), static_cast<int>(sj));
    EXPECT_EQ(wc, wj);
  }
  if (words_out != nullptr) *words_out = std::move(wc);
  return sc;
}

// Same lockstep for an encode plan, poisoned output buffers.
pe::ExecStatus diff_encode(const pe::Plan& plan, const pe::CompiledPlan* jit,
                           std::span<const std::uint32_t> words,
                           std::uint32_t xid, Bytes* bytes_out) {
  Bytes bc(plan.out_size, kPoisonByte);
  const pe::ExecStatus sc =
      run_plan_encode(plan, words, xid, MutableByteSpan(bc.data(), bc.size()));
  if (jit != nullptr) {
    Bytes bj(plan.out_size, kPoisonByte);
    const pe::ExecStatus sj =
        jit->run_encode(words, xid, MutableByteSpan(bj.data(), bj.size()));
    EXPECT_EQ(static_cast<int>(sc), static_cast<int>(sj));
    EXPECT_EQ(bc, bj);
  }
  if (bytes_out != nullptr) *bytes_out = std::move(bc);
  return sc;
}

bool jit_tier_live() {
  return pe::jit_supported_host() && pe::jit_enabled_by_env();
}

TEST(PlanDiff, RandomizedThreeTierAgreement) {
  Rng rng(0x1CDC5'1998u);
  int interfaces = 0;
  int compiled_stubs = 0;
  int kept_loop_plans = 0;

  for (int iter = 0; iter < 48; ++iter) {
    const idl::TypePtr type = random_eligible_type(rng, 0, /*allow_var=*/true);
    idl::ProcDef proc;
    proc.name = "diff";
    proc.number = kProcNum;
    proc.arg_type = type;
    proc.res_type = type;

    const idl::Value value = idl::random_value(*type, rng, 12);
    std::vector<std::uint32_t> counts;
    ASSERT_TRUE(pe::collect_counts(*type, value, counts).is_ok());
    pe::Slots slots;
    ASSERT_TRUE(pe::flatten_value(*type, value, counts, slots).is_ok());

    core::SpecConfig cfg;
    cfg.arg_counts = counts;
    cfg.res_counts = counts;
    // 0 = full unroll, small factors keep loops, 250 keeps big bodies.
    static constexpr std::uint32_t kUnrolls[] = {0, 1, 4, 250};
    cfg.unroll_factor = kUnrolls[iter % 4];
    auto iface = core::SpecializedInterface::build(proc, kProg, kVers, cfg);
    ASSERT_TRUE(iface.is_ok()) << iface.status().to_string();
    ++interfaces;
    compiled_stubs += iface->jit_stub_count();

    const std::uint32_t xid = rng.next_u32();
    SCOPED_TRACE("iter=" + std::to_string(iter) +
                 " unroll=" + std::to_string(cfg.unroll_factor) +
                 " jit_stubs=" + std::to_string(iface->jit_stub_count()));

    // ---- encode_call: A vs B vs C, byte-for-byte ----------------------
    const pe::Plan& eplan = iface->encode_call_plan();
    for (const auto& ins : eplan.instrs) {
      if (ins.op == pe::POp::kLoop) ++kept_loop_plans;
    }
    const Bytes generic = cpp_encode_call(xid, *type, value);
    ASSERT_EQ(generic.size(), eplan.out_size);
    Bytes call_bytes;
    ASSERT_EQ(diff_encode(eplan, iface->encode_call_jit(), slots, xid,
                          &call_bytes),
              pe::ExecStatus::kOk);
    ASSERT_EQ(call_bytes, generic);

    // ---- decode_reply: valid, stale-xid, truncated, extended ----------
    const pe::Plan& rplan = iface->decode_reply_plan();
    ASSERT_GE(rplan.words_needed, slots.size());
    const Bytes reply = cpp_encode_reply(xid, *type, value);
    ASSERT_EQ(reply.size(), rplan.expected_in);

    std::vector<std::uint32_t> words;
    ASSERT_EQ(diff_decode(rplan, iface->decode_reply_jit(),
                          ByteSpan(reply.data(), reply.size()), xid, &words),
              pe::ExecStatus::kOk);
    ASSERT_TRUE(std::equal(slots.begin(), slots.end(), words.begin()));

    ASSERT_EQ(diff_decode(rplan, iface->decode_reply_jit(),
                          ByteSpan(reply.data(), reply.size()), xid + 1,
                          nullptr),
              pe::ExecStatus::kRetryXid);
    ASSERT_EQ(diff_decode(rplan, iface->decode_reply_jit(),
                          ByteSpan(reply.data(), reply.size() - 1), xid,
                          nullptr),
              pe::ExecStatus::kFallback);
    Bytes extended = reply;
    extended.resize(extended.size() + 4, 0);
    ASSERT_EQ(diff_decode(rplan, iface->decode_reply_jit(),
                          ByteSpan(extended.data(), extended.size()), xid,
                          nullptr),
              pe::ExecStatus::kFallback);

    // ---- decode_reply: bit flips anywhere must diverge nowhere --------
    // A flip in the header trips a guard (identical status AND identical
    // partial writes); a flip in the body yields kOk with identical
    // wrong words.  Either way the tiers stay in lockstep.
    for (int flip = 0; flip < 12; ++flip) {
      Bytes corrupt = reply;
      corrupt[rng.next_below(static_cast<std::uint32_t>(corrupt.size()))] ^=
          static_cast<std::uint8_t>(1u << rng.next_below(8));
      diff_decode(rplan, iface->decode_reply_jit(),
                  ByteSpan(corrupt.data(), corrupt.size()), xid, nullptr);
    }

    // ---- server side: decode_args / encode_results --------------------
    const pe::Plan& aplan = iface->decode_args_plan();
    ASSERT_GT(aplan.expected_in, 0u);
    ASSERT_GE(generic.size(), aplan.expected_in);
    const std::size_t body_off = generic.size() - aplan.expected_in;
    const ByteSpan args_body(generic.data() + body_off, aplan.expected_in);

    ASSERT_EQ(diff_decode(aplan, iface->decode_args_jit(), args_body,
                          /*xid=*/0, &words),
              pe::ExecStatus::kOk);
    ASSERT_TRUE(std::equal(slots.begin(), slots.end(), words.begin()));
    for (int flip = 0; flip < 8; ++flip) {
      Bytes corrupt(args_body.begin(), args_body.end());
      corrupt[rng.next_below(static_cast<std::uint32_t>(corrupt.size()))] ^=
          static_cast<std::uint8_t>(1u << rng.next_below(8));
      diff_decode(aplan, iface->decode_args_jit(),
                  ByteSpan(corrupt.data(), corrupt.size()), /*xid=*/0,
                  nullptr);
    }

    const pe::Plan& splan = iface->encode_results_plan();
    ASSERT_EQ(splan.out_size, aplan.expected_in);
    Bytes results_bytes;
    ASSERT_EQ(diff_encode(splan, iface->encode_results_jit(), slots,
                          /*xid=*/0, &results_bytes),
              pe::ExecStatus::kOk);
    ASSERT_EQ(0, std::memcmp(results_bytes.data(), args_body.data(),
                             results_bytes.size()));
  }

  // On a supported host with TEMPO_PLAN_JIT on, the corpus must actually
  // exercise tier C — a silent mass fallback to the executor would make
  // this whole test vacuous.
  if (jit_tier_live()) {
    EXPECT_GT(compiled_stubs, interfaces)
        << "native tier compiled almost nothing";
  } else {
    EXPECT_EQ(compiled_stubs, 0);
  }
  // And the shape generator must produce kept loops, or the native loop
  // codegen path is never compared.
  EXPECT_GT(kept_loop_plans, 0);
}

// The differential corpus above uses matching counts everywhere; this
// case aims specifically at guard-failure lockstep when the *shape*
// disagrees with the specialization (a different client's counts).
TEST(PlanDiff, ShapeMismatchStaysInLockstep) {
  using namespace idl;
  Rng rng(77);
  const TypePtr type =
      t_struct("m", {{"hdr", t_uint()},
                     {"body", t_array_var(t_uint(), 128)},
                     {"tail", t_opaque_fixed(5)}});
  idl::ProcDef proc;
  proc.name = "mismatch";
  proc.number = kProcNum;
  proc.arg_type = type;
  proc.res_type = type;

  for (std::uint32_t unroll : {0u, 4u}) {
    core::SpecConfig cfg;
    cfg.arg_counts = {16};
    cfg.res_counts = {16};
    cfg.unroll_factor = unroll;
    auto iface = core::SpecializedInterface::build(proc, kProg, kVers, cfg);
    ASSERT_TRUE(iface.is_ok());

    // A request whose array really has 9 elements, sent to the
    // 16-element specialization.
    idl::Value value = idl::random_value(*type, rng, 9);
    std::vector<std::uint32_t> counts;
    ASSERT_TRUE(pe::collect_counts(*type, value, counts).is_ok());
    if (counts[0] == 16) continue;  // (can't happen with max_elems=9)
    const Bytes call = cpp_encode_call(1, *type, value);
    const pe::Plan& aplan = iface->decode_args_plan();

    // Shorter than expected → the length precheck fires in both tiers.
    // Same length, different count word → the count guard fires in both.
    ASSERT_EQ(diff_decode(aplan, iface->decode_args_jit(),
                          ByteSpan(call.data() + 40, call.size() - 40),
                          /*xid=*/0, nullptr),
              pe::ExecStatus::kFallback);

    Bytes padded(call.begin() + 40, call.end());
    padded.resize(aplan.expected_in, 0);
    ASSERT_EQ(diff_decode(aplan, iface->decode_args_jit(),
                          ByteSpan(padded.data(), padded.size()),
                          /*xid=*/0, nullptr),
              pe::ExecStatus::kFallback);
  }
}

// ---- named regressions flushed out by this harness --------------------

// The specializer's loop-extrapolation pass computed words_needed from
// kPutWord/kGetWord slots only; loops whose bodies move data with bulk
// ops (kPutBytes/kGetBytes, byte-offset addressing) or kSetWordConst
// under-reported it.  The executor then indexed past the caller's
// exactly-sized slot vector (latent OOB, caught under ASan), and the
// JIT's defensive bounds audit refused to compile such plans at all —
// which is how the differential pass found it.
TEST(PlanDiffRegression, LoopWordsNeededCoversBulkOps) {
  using namespace idl;
  const TypePtr type = t_array_var(t_opaque_fixed(8), 64);
  idl::ProcDef proc;
  proc.name = "bulkloop";
  proc.number = kProcNum;
  proc.arg_type = type;
  proc.res_type = type;

  core::SpecConfig cfg;
  cfg.arg_counts = {20};
  cfg.res_counts = {20};
  cfg.unroll_factor = 4;  // keeps the loop: 20 iterations of a bulk body
  auto iface = core::SpecializedInterface::build(proc, kProg, kVers, cfg);
  ASSERT_TRUE(iface.is_ok());

  auto needed = pe::type_slots(*type, cfg.arg_counts);
  ASSERT_TRUE(needed.is_ok());
  ASSERT_EQ(*needed, 40u);  // 20 * 2 slots of opaque(8)
  // Pre-fix these reported 33 (count + 16 extrapolated + pad slop).
  EXPECT_GE(iface->encode_call_plan().words_needed, *needed);
  EXPECT_GE(iface->decode_args_plan().words_needed, *needed);

  // Round-trip through vectors sized EXACTLY words_needed; under ASan
  // this is the regression proper.
  Rng rng(3);
  idl::Value value;
  std::vector<std::uint32_t> counts;
  do {  // random_value draws the element count too; we need exactly 20
    value = idl::random_value(*type, rng, 20);
    counts.clear();
    ASSERT_TRUE(pe::collect_counts(*type, value, counts).is_ok());
  } while (counts != cfg.arg_counts);
  pe::Slots slots;
  ASSERT_TRUE(pe::flatten_value(*type, value, counts, slots).is_ok());

  const Bytes call = cpp_encode_call(7, *type, value);
  Bytes encoded;
  ASSERT_EQ(diff_encode(iface->encode_call_plan(), iface->encode_call_jit(),
                        slots, 7, &encoded),
            pe::ExecStatus::kOk);
  ASSERT_EQ(encoded, call);

  const pe::Plan& aplan = iface->decode_args_plan();
  std::vector<std::uint32_t> words;
  ASSERT_EQ(diff_decode(aplan, iface->decode_args_jit(),
                        ByteSpan(call.data() + 40, call.size() - 40),
                        /*xid=*/0, &words),
            pe::ExecStatus::kOk);
  ASSERT_EQ(words.size(), aplan.words_needed);
  ASSERT_TRUE(std::equal(slots.begin(), slots.end(), words.begin()));

  // The fix is also what lets the native tier accept these plans.
  if (jit_tier_live()) {
    EXPECT_NE(iface->encode_call_jit(), nullptr);
    EXPECT_NE(iface->decode_args_jit(), nullptr);
  }
}

// kLoop strides ride packed in PInstr::imm as
// (byte-stride << 32) | word-stride.  The packer, the executor and the
// native compiler must agree bit-for-bit; historically the unpacking
// was open-coded at each site, where a missing cast silently truncates
// or sign-extends.  Boundary values through the one shared codec.
TEST(PlanDiffRegression, LoopStridePackingBoundaries) {
  using pe::LoopStrides;
  const std::uint32_t probes[] = {0u,          1u,          2u,
                                  0x7FFFFFFFu, 0x80000000u, 0xFFFFFFFFu};
  for (std::uint32_t off : probes) {
    for (std::uint32_t word : probes) {
      const std::uint64_t imm =
          pe::pack_loop_strides(LoopStrides{off, word});
      EXPECT_EQ(imm, (static_cast<std::uint64_t>(off) << 32) | word);
      const LoopStrides back = pe::unpack_loop_strides(imm);
      EXPECT_EQ(back.off_stride, off);
      EXPECT_EQ(back.word_stride, word);
    }
  }
  // A large byte stride must never bleed into the word stride (the
  // truncation bug a 32-bit intermediate would cause).
  const LoopStrides s = pe::unpack_loop_strides(0xFFFFFFFF'00000000ull);
  EXPECT_EQ(s.off_stride, 0xFFFFFFFFu);
  EXPECT_EQ(s.word_stride, 0u);
}

}  // namespace
}  // namespace tempo
