#include "pe/bta.h"

#include <algorithm>

namespace tempo::pe {

namespace {

// Abstract value: binding time plus, for configuration-like statics
// (x_op, counts), the known constant.  Knowing the *value* of such
// statics lets the analysis prune static dispatches to the taken branch
// — which is exactly what the specializer will do — so the division
// shown for the encode context is the encode division, not a join with
// the decode path.
struct AVal {
  enum class BTK : std::uint8_t { kStat, kDyn, kRef } bt = BTK::kStat;
  bool has_value = false;
  std::int64_t value = 0;

  static AVal stat() { return AVal{}; }
  static AVal stat_val(std::int64_t v) { return AVal{BTK::kStat, true, v}; }
  static AVal dyn() { return AVal{BTK::kDyn, false, 0}; }
  static AVal ref() { return AVal{BTK::kRef, false, 0}; }

  bool operator==(const AVal&) const = default;
};

using BTK = AVal::BTK;

AVal aval_join(const AVal& a, const AVal& b) {
  if (a == b) return a;
  if (a.bt == b.bt && a.bt == BTK::kStat) return AVal::stat();  // drop value
  if (a.bt == BTK::kDyn || b.bt == BTK::kDyn) return AVal::dyn();
  if (a.bt == BTK::kRef && b.bt == BTK::kRef) return AVal::ref();
  return AVal::dyn();
}

BT aval_bt(const AVal& v) {
  return v.bt == BTK::kDyn ? BT::kDynamic : BT::kStatic;
}

using Env = std::map<std::string, AVal>;

std::string sig_of(const AVal& v) {
  switch (v.bt) {
    case BTK::kStat:
      return v.has_value ? "S" + std::to_string(v.value) : "S";
    case BTK::kDyn:
      return "D";
    case BTK::kRef:
      return "R";
  }
  return "?";
}

std::string env_sig(const std::vector<AVal>& params, const Env& fields) {
  std::string sig;
  for (const AVal& p : params) sig += sig_of(p) + ",";
  sig += '|';
  for (const auto& [k, v] : fields) sig += sig_of(v) + ",";
  return sig;
}

std::int64_t fold_op(BinOp op, std::int64_t a, std::int64_t b) {
  switch (op) {
    case BinOp::kAdd: return a + b;
    case BinOp::kSub: return a - b;
    case BinOp::kMul: return a * b;
    case BinOp::kLt: return a < b;
    case BinOp::kLe: return a <= b;
    case BinOp::kGt: return a > b;
    case BinOp::kGe: return a >= b;
    case BinOp::kEq: return a == b;
    case BinOp::kNe: return a != b;
    case BinOp::kAnd: return (a != 0) && (b != 0);
    case BinOp::kOr: return (a != 0) || (b != 0);
  }
  return 0;
}

class Bta {
 public:
  Bta(const Program& program, const BtaDivision& division)
      : program_(program), division_(division) {}

  Result<BtaResult> run(const std::string& entry) {
    const Function* fn = program_.find(entry);
    if (!fn) return Status(not_found("no function " + entry));

    Env fields;
    fields["x_op"] = AVal::stat();
    fields["x_handy"] = AVal::stat();
    fields["x_private"] = AVal::stat();
    fields["x_err"] = AVal::stat();
    for (const auto& [name, value] : division_.known_fields) {
      fields[name] = AVal::stat_val(value);
    }
    for (const auto& f : division_.dynamic_fields) fields[f] = AVal::dyn();

    std::vector<AVal> params;
    for (const auto& p : fn->params) {
      if (division_.dynamic_params.count(p)) {
        params.push_back(AVal::dyn());
      } else if (division_.ref_params.count(p)) {
        params.push_back(AVal::ref());
      } else if (const auto it = division_.known_params.find(p);
                 it != division_.known_params.end()) {
        params.push_back(AVal::stat_val(it->second));
      } else {
        params.push_back(AVal::stat());
      }
    }

    Summary s;
    TEMPO_RETURN_IF_ERROR(analyze_function(*fn, params, fields, &s));
    result_.entry_return = s.ret;
    result_.entry_effects_dynamic = s.effects_dynamic;
    return std::move(result_);
  }

 private:
  struct Summary {
    BT ret = BT::kStatic;
    bool effects_dynamic = false;
    Env fields_out;
  };

  struct Ctx {
    Env env;
    Env fields;
    AnnotatedFunction* ann = nullptr;
    BT ret = BT::kStatic;
    bool effects_dynamic = false;
  };

  Status analyze_function(const Function& fn, const std::vector<AVal>& params,
                          Env fields_in, Summary* out) {
    const std::string key = fn.name + "/" + env_sig(params, fields_in);
    if (const auto it = cache_.find(key); it != cache_.end()) {
      *out = it->second;
      return Status::ok();
    }
    if (++depth_ > 64) {
      --depth_;
      return internal_error("BTA call depth exceeded");
    }

    AnnotatedFunction ann;
    ann.name = fn.name;
    ann.fn = &fn;
    ann.context = env_sig(params, fields_in);

    Ctx ctx;
    for (std::size_t i = 0; i < fn.params.size(); ++i) {
      ctx.env[fn.params[i]] = params[i];
    }
    ctx.fields = std::move(fields_in);
    ctx.ann = &ann;
    Status st = analyze_block(fn.body, ctx, BT::kStatic);
    --depth_;
    TEMPO_RETURN_IF_ERROR(st);

    Summary s;
    s.ret = ctx.ret;
    s.effects_dynamic = ctx.effects_dynamic;
    s.fields_out = ctx.fields;
    cache_[key] = s;
    result_.functions.push_back(std::move(ann));
    *out = s;
    return Status::ok();
  }

  Result<AVal> eval(const Expr& e, Ctx& ctx) {
    switch (e.kind) {
      case ExprKind::kConst:
        return AVal::stat_val(e.imm);
      case ExprKind::kVar: {
        const auto it = ctx.env.find(e.var);
        if (it == ctx.env.end()) {
          return Status(invalid_argument("BTA: unbound variable " + e.var));
        }
        return it->second;
      }
      case ExprKind::kField: {
        const auto it = ctx.fields.find(e.field);
        if (it == ctx.fields.end()) {
          return Status(invalid_argument("BTA: unknown field " + e.field));
        }
        return it->second;
      }
      case ExprKind::kBin: {
        TEMPO_ASSIGN_OR_RETURN(a, eval(*e.a, ctx));
        TEMPO_ASSIGN_OR_RETURN(b, eval(*e.b, ctx));
        if (a.bt == BTK::kDyn || b.bt == BTK::kDyn) return AVal::dyn();
        if (a.has_value && b.has_value) {
          return AVal::stat_val(fold_op(e.op, a.value, b.value));
        }
        return AVal::stat();
      }
      case ExprKind::kDeref:
        // Static address, dynamic pointee — partially-static user data.
        return AVal::dyn();
      case ExprKind::kIndex: {
        TEMPO_ASSIGN_OR_RETURN(r, eval(*e.a, ctx));
        TEMPO_ASSIGN_OR_RETURN(i, eval(*e.b, ctx));
        if (r.bt == BTK::kRef && i.bt == BTK::kStat) return AVal::ref();
        return AVal::dyn();
      }
      case ExprKind::kFieldRef: {
        TEMPO_ASSIGN_OR_RETURN(r, eval(*e.a, ctx));
        return r.bt == BTK::kRef ? AVal::ref() : AVal::dyn();
      }
      case ExprKind::kBufLoad:
        return AVal::dyn();
    }
    return AVal::dyn();
  }

  void mark(Ctx& ctx, const Stmt& s, BT bt) {
    auto [it, inserted] = ctx.ann->stmt_bt.try_emplace(&s, bt);
    if (!inserted) it->second = bt_join(it->second, bt);
    if (bt == BT::kDynamic) ctx.effects_dynamic = true;
  }

  void tally_if(const Stmt& s, BT bt) {
    if (s.note.rfind("overflow", 0) == 0) {
      (bt == BT::kStatic ? result_.static_overflow_checks
                         : result_.dynamic_overflow_checks)++;
    } else if (s.note.find("mode") != std::string::npos ||
               s.note.find("dispatch") != std::string::npos) {
      (bt == BT::kStatic ? result_.static_dispatches
                         : result_.dynamic_dispatches)++;
    } else if (s.note.find("status") != std::string::npos) {
      (bt == BT::kStatic ? result_.static_status_checks
                         : result_.dynamic_status_checks)++;
    }
  }

  Status analyze_block(const Block& b, Ctx& ctx, BT ctrl) {
    for (const auto& s : b) {
      TEMPO_RETURN_IF_ERROR(analyze_stmt(*s, ctx, ctrl));
    }
    return Status::ok();
  }

  Status analyze_stmt(const Stmt& s, Ctx& ctx, BT ctrl) {
    switch (s.kind) {
      case StmtKind::kAssign: {
        TEMPO_ASSIGN_OR_RETURN(v, eval(*s.e0, ctx));
        if (ctrl == BT::kDynamic && v.bt == BTK::kStat) v = AVal::dyn();
        ctx.env[s.var] = v;
        mark(ctx, s, aval_bt(v));
        return Status::ok();
      }
      case StmtKind::kFieldSet: {
        TEMPO_ASSIGN_OR_RETURN(v, eval(*s.e0, ctx));
        if (ctrl == BT::kDynamic && v.bt == BTK::kStat) v = AVal::dyn();
        ctx.fields[s.field] = v;
        mark(ctx, s, aval_bt(v));
        return Status::ok();
      }
      case StmtKind::kStoreRef:
      case StmtKind::kBufStore:
      case StmtKind::kBufStoreBytes:
      case StmtKind::kBufLoadBytes:
        // Run-time data movement is always residual.
        mark(ctx, s, BT::kDynamic);
        return Status::ok();
      case StmtKind::kIf: {
        TEMPO_ASSIGN_OR_RETURN(c, eval(*s.e0, ctx));
        BT cbt = aval_bt(c);
        if (ctrl == BT::kDynamic) cbt = BT::kDynamic;
        mark(ctx, s, cbt);
        tally_if(s, cbt);
        if (cbt == BT::kStatic && c.has_value) {
          // The specializer takes exactly this branch.
          return analyze_block(c.value != 0 ? s.body : s.else_body, ctx,
                               ctrl);
        }
        const BT inner = cbt == BT::kStatic ? ctrl : BT::kDynamic;
        Ctx then_ctx = ctx;
        TEMPO_RETURN_IF_ERROR(analyze_block(s.body, then_ctx, inner));
        Ctx else_ctx = ctx;
        TEMPO_RETURN_IF_ERROR(analyze_block(s.else_body, else_ctx, inner));
        join_into(ctx, then_ctx, else_ctx);
        return Status::ok();
      }
      case StmtKind::kFor: {
        TEMPO_ASSIGN_OR_RETURN(from, eval(*s.e0, ctx));
        TEMPO_ASSIGN_OR_RETURN(to, eval(*s.e1, ctx));
        BT bounds = bt_join(aval_bt(from), aval_bt(to));
        if (ctrl == BT::kDynamic) bounds = BT::kDynamic;
        mark(ctx, s, bounds);
        // Loop variable: static iff the bounds are (value not tracked —
        // the loop runs many times).
        ctx.env[s.var] =
            bounds == BT::kStatic ? AVal::stat() : AVal::dyn();
        for (int pass = 0; pass < 4; ++pass) {
          Env env_before = ctx.env;
          Env fields_before = ctx.fields;
          TEMPO_RETURN_IF_ERROR(analyze_block(s.body, ctx, bounds));
          if (ctx.env == env_before && ctx.fields == fields_before) break;
        }
        return Status::ok();
      }
      case StmtKind::kCall: {
        const Function* callee = program_.find(s.callee);
        if (!callee) return not_found("BTA: no function " + s.callee);
        std::vector<AVal> args;
        for (const auto& a : s.args) {
          TEMPO_ASSIGN_OR_RETURN(v, eval(*a, ctx));
          args.push_back(v);
        }
        Summary sum;
        TEMPO_RETURN_IF_ERROR(
            analyze_function(*callee, args, ctx.fields, &sum));
        ctx.fields = sum.fields_out;
        BT ret = sum.ret;
        if (ctrl == BT::kDynamic) ret = BT::kDynamic;
        if (!s.var.empty()) {
          ctx.env[s.var] =
              ret == BT::kStatic ? AVal::stat() : AVal::dyn();
        }
        // The call's *effects* decide its color; a static return with
        // dynamic effects is the static-returns refinement.
        mark(ctx, s, sum.effects_dynamic ? BT::kDynamic : ret);
        if (sum.effects_dynamic && ret == BT::kStatic) {
          ctx.ann->static_return_calls.insert(&s);
        }
        if (sum.effects_dynamic) ctx.effects_dynamic = true;
        return Status::ok();
      }
      case StmtKind::kReturn: {
        BT bt = BT::kStatic;
        if (s.e0) {
          TEMPO_ASSIGN_OR_RETURN(v, eval(*s.e0, ctx));
          bt = aval_bt(v);
        }
        if (ctrl == BT::kDynamic) {
          // Whether this return is taken is decided at run time: the
          // function's result joins to dynamic.
          mark(ctx, s, BT::kDynamic);
          ctx.ret = BT::kDynamic;
        } else {
          mark(ctx, s, bt);
          ctx.ret = bt_join(ctx.ret, bt);
        }
        return Status::ok();
      }
    }
    return internal_error("BTA: bad stmt");
  }

  void join_into(Ctx& dst, const Ctx& a, const Ctx& b) {
    for (auto& [k, v] : dst.env) {
      const auto ia = a.env.find(k);
      const auto ib = b.env.find(k);
      const AVal va = ia != a.env.end() ? ia->second : v;
      const AVal vb = ib != b.env.end() ? ib->second : v;
      v = aval_join(va, vb);
    }
    for (auto& [k, v] : dst.fields) {
      const auto ia = a.fields.find(k);
      const auto ib = b.fields.find(k);
      const AVal va = ia != a.fields.end() ? ia->second : v;
      const AVal vb = ib != b.fields.end() ? ib->second : v;
      v = aval_join(va, vb);
    }
    dst.ret = bt_join(a.ret, b.ret);
    dst.effects_dynamic = a.effects_dynamic || b.effects_dynamic;
  }

  const Program& program_;
  const BtaDivision& division_;
  std::map<std::string, Summary> cache_;
  BtaResult result_;
  int depth_ = 0;
};

// ---- annotated listing ---------------------------------------------------

void print_stmt(const AnnotatedFunction& ann, const Stmt& s, int indent,
                std::string& out) {
  const auto it = ann.stmt_bt.find(&s);
  const BT bt = it != ann.stmt_bt.end() ? it->second : BT::kStatic;
  const char* tag = bt == BT::kStatic ? "S| " : "D| ";

  std::string text = stmt_to_string(s, indent);
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    out += tag;
    out.append(text, start, end - start);
    if (s.kind == StmtKind::kCall && start == 0 &&
        ann.static_return_calls.count(&s)) {
      out += "  // dynamic effects, STATIC return";
    }
    out += '\n';
    start = end + 1;
  }
}

void print_block(const AnnotatedFunction& ann, const Block& b, int indent,
                 std::string& out) {
  for (const auto& s : b) print_stmt(ann, *s, indent, out);
}

}  // namespace

Result<BtaResult> analyze_binding_times(const Program& program,
                                        const std::string& entry,
                                        const BtaDivision& division) {
  Bta bta(program, division);
  return bta.run(entry);
}

std::string annotated_to_string(const BtaResult& result) {
  std::string out;
  // Entry was pushed last (post-order); print in reverse for readability.
  for (auto it = result.functions.rbegin(); it != result.functions.rend();
       ++it) {
    const AnnotatedFunction& ann = *it;
    out += "=== " + ann.name + "  [context " + ann.context + "]\n";
    print_block(ann, ann.fn->body, 1, out);
    out += '\n';
  }
  return out;
}

}  // namespace tempo::pe
