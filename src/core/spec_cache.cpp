#include "core/spec_cache.h"

namespace tempo::core {

namespace {

inline void hash_combine(std::size_t& seed, std::size_t v) {
  seed ^= v + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2);
}

}  // namespace

std::size_t SpecKeyHash::operator()(const SpecKey& k) const {
  std::size_t seed = 0;
  hash_combine(seed, k.prog);
  hash_combine(seed, k.vers);
  hash_combine(seed, k.proc);
  hash_combine(seed, k.unroll_factor);
  hash_combine(seed, k.buffer_bytes);
  hash_combine(seed, k.arg_counts.size());
  for (auto c : k.arg_counts) hash_combine(seed, c);
  hash_combine(seed, k.res_counts.size());
  for (auto c : k.res_counts) hash_combine(seed, c);
  return seed;
}

SpecCache::SpecCache(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void SpecCache::touch_locked(Entry& e, const SpecKey& key) {
  if (!e.in_lru) return;
  lru_.erase(e.lru_it);
  lru_.push_front(key);
  e.lru_it = lru_.begin();
}

void SpecCache::insert_lru_locked(const std::shared_ptr<Entry>& e,
                                  const SpecKey& key) {
  lru_.push_front(key);
  e->lru_it = lru_.begin();
  e->in_lru = true;
  while (lru_.size() > capacity_) {
    const SpecKey& victim = lru_.back();
    auto it = map_.find(victim);
    if (it != map_.end()) map_.erase(it);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

Result<SpecHandle> SpecCache::get_or_build(const idl::ProcDef& proc,
                                           std::uint32_t prog,
                                           std::uint32_t vers,
                                           const SpecConfig& config) {
  SpecKey key{prog,
              vers,
              proc.number,
              config.arg_counts,
              config.res_counts,
              config.unroll_factor,
              config.buffer_bytes};

  std::shared_ptr<Entry> entry;
  {
    std::unique_lock<std::mutex> lock(mu_);
    auto it = map_.find(key);
    if (it != map_.end()) {
      entry = it->second;
      ++stats_.hits;
      if (!entry->ready) {
        // Another thread is building this key: wait, do not rebuild.
        ready_cv_.wait(lock, [&] { return entry->ready; });
      }
      // The entry may have been evicted from the map while we waited;
      // the shared_ptr keeps the payload valid either way.  Touch the
      // LRU for negative entries too: a hot ineligible shape must stay
      // cached, or its eviction would let repeated requests re-run the
      // pipeline.
      auto relocated = map_.find(key);
      if (relocated != map_.end() && relocated->second == entry) {
        touch_locked(*entry, key);
      }
      if (entry->iface) return entry->iface;
      return entry->error;
    }
    // Miss: claim the build while holding the lock.
    ++stats_.misses;
    entry = std::make_shared<Entry>();
    map_.emplace(key, entry);
  }

  // Build outside the lock — this is the expensive pipeline run.
  auto built = SpecializedInterface::build(proc, prog, vers, config);

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (built.is_ok()) {
      entry->iface =
          std::make_shared<const SpecializedInterface>(std::move(*built));
      insert_lru_locked(entry, key);
    } else {
      entry->error = built.status();
      ++stats_.build_failures;
      // Negative entries take an LRU slot too: repeated requests for an
      // ineligible shape must not re-run the pipeline, but an adversary
      // minting distinct ineligible keys must not grow the map
      // unboundedly either.
      insert_lru_locked(entry, key);
    }
    entry->ready = true;
  }
  ready_cv_.notify_all();

  if (entry->iface) return entry->iface;
  return entry->error;
}

SpecCacheStats SpecCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::size_t SpecCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

}  // namespace tempo::core
