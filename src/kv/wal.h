// Write-ahead log for the KV subsystem: CRC-framed append-only records,
// fsync-batched group commit, torn-tail truncation on recovery.
//
// Frame layout (all integers big-endian, matching the XDR wire
// convention used everywhere else in this repo):
//
//   +--------+--------+----------------+=================+
//   | u32 len| u32 crc|    u64 seq     | payload (len B) |
//   +--------+--------+----------------+=================+
//
// `len` counts payload bytes only; `crc` is CRC-32 (IEEE polynomial)
// over the 8 seq bytes followed by the payload, so a record whose
// header survived but whose body was torn mid-write still fails
// validation.  Sequence numbers start at 1 and are strictly
// contiguous; recovery stops at the first frame that is short, fails
// its CRC, or breaks the seq chain, and TRUNCATES the file there —
// the committed prefix is exactly what replays, and a second replay
// of the same log is byte-identical (recovery is idempotent).
//
// Group commit: every committer appends its frame to a shared pending
// buffer under the log mutex and then either becomes the batch leader
// (writes + fsyncs everything pending, including frames that arrived
// while the previous batch was syncing) or waits for a leader to carry
// its sequence number past the durable horizon.  N concurrent
// committers therefore cost ~1 fsync per batch, not per record —
// `stats().fsyncs` vs `stats().records` measures the batching factor.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace tempo::kv {

// CRC-32 (IEEE 802.3 polynomial, reflected), the classic table-driven
// byte-at-a-time implementation.  Exposed for tests that corrupt
// frames surgically.
std::uint32_t crc32_ieee(std::uint32_t seed, ByteSpan bytes);

struct WalStats {
  std::atomic<std::int64_t> records{0};       // commits made durable
  std::atomic<std::int64_t> fsyncs{0};        // batches synced
  std::atomic<std::int64_t> batched{0};       // records that shared a sync
  std::atomic<std::int64_t> bytes{0};         // payload bytes appended
};

// What recovery found when the log was opened.
struct WalRecovery {
  std::uint64_t last_seq = 0;        // highest replayed sequence
  std::uint64_t records = 0;         // frames replayed
  std::uint64_t truncated_bytes = 0; // torn/corrupt tail bytes cut off
};

class Wal {
 public:
  struct Options {
    // fsync(2) after each batch write.  Off trades durability for
    // speed (benchmark/teaching configurations only).
    bool fsync = true;
    // Frames whose len field exceeds this are treated as corruption.
    std::size_t max_record_bytes = 1u << 20;
  };

  // Opens (creating if absent) and recovers `path`: every valid frame
  // is handed to `replay` in sequence order, then the file is
  // truncated after the last valid frame.  New commits continue the
  // recovered sequence.
  static Result<std::unique_ptr<Wal>> open(
      const std::string& path, Options opts,
      const std::function<void(std::uint64_t seq, ByteSpan payload)>& replay,
      WalRecovery* recovery = nullptr);

  ~Wal();
  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  // Appends one record and returns once it (and every earlier record)
  // is durable.  The assigned sequence number is the append order:
  // contiguous from recovery's last_seq + 1.
  // no_thread_safety_analysis: the batch leader releases the lock
  // mid-scope through a unique_lock for the write+fsync, a dynamic
  // pattern the scope-based checker cannot follow.
  Result<std::uint64_t> commit(ByteSpan payload)
      TEMPO_NO_THREAD_SAFETY_ANALYSIS;

  // Highest sequence number known durable.
  std::uint64_t durable_seq() const {
    return durable_seq_.load(std::memory_order_acquire);
  }
  // Next sequence number commit() would assign.
  std::uint64_t next_seq() const;

  const WalStats& stats() const { return stats_; }
  const std::string& path() const { return path_; }

 private:
  Wal(std::string path, int fd, Options opts, std::uint64_t last_seq);

  std::string path_;
  int fd_ = -1;
  Options opts_;
  WalStats stats_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::uint64_t next_seq_ TEMPO_GUARDED_BY(mu_) = 1;
  Bytes pending_ TEMPO_GUARDED_BY(mu_);       // framed, not yet written
  std::uint64_t pending_max_seq_ TEMPO_GUARDED_BY(mu_) = 0;
  std::uint64_t pending_records_ TEMPO_GUARDED_BY(mu_) = 0;
  bool sync_in_progress_ TEMPO_GUARDED_BY(mu_) = false;
  Status io_error_ TEMPO_GUARDED_BY(mu_) = Status::ok();
  std::atomic<std::uint64_t> durable_seq_{0};
};

}  // namespace tempo::kv
